package main

import (
	"bytes"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/httpserve"
)

func defaultTestConfig() config {
	return config{
		tenants: 4, shards: 2, channels: 12, gateways: 4,
		rounds: 2, batch: 4, departEvery: 3, churnEvery: 5,
		resolveEvery: 8, seed: 21, policy: "online",
	}
}

func TestRunProducesReport(t *testing.T) {
	var out, timing bytes.Buffer
	if err := run(defaultTestConfig(), &out, &timing); err != nil {
		t.Fatal(err)
	}
	report := out.String()
	for _, want := range []string{
		"mmdserve: policy=online", "fleet: 4 tenants on 2 shards",
		"feasible  true", "shard  tenants", "tenant  policy",
	} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
	if !strings.Contains(timing.String(), "events/s") {
		t.Fatalf("timing line missing: %q", timing.String())
	}
}

// TestRunByteIdentical is the CLI half of the determinism acceptance
// check: the stdout report of a fixed-seed run is byte-identical across
// invocations (timing goes to stderr precisely so this holds).
func TestRunByteIdentical(t *testing.T) {
	render := func() []byte {
		t.Helper()
		var out bytes.Buffer
		if err := run(defaultTestConfig(), &out, io.Discard); err != nil {
			t.Fatal(err)
		}
		return out.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatalf("reports differ across identical invocations:\n--- run 1\n%s\n--- run 2\n%s", a, b)
	}
}

// TestDriveParityAcrossVias is the in-repo version of the CI streaming
// smoke: the same synthetic workload driven against three identically
// configured remote fleets — over one /v1/stream connection, as :batch
// posts, and as single posts — prints byte-identical per-tenant tables
// (all three paths preserve per-tenant submission order).
func TestDriveParityAcrossVias(t *testing.T) {
	cfg := defaultTestConfig()
	outputs := map[string]string{}
	for _, via := range []string{"stream", "batch", "single"} {
		c, _, err := buildCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(httpserve.NewHandler(c))
		var out bytes.Buffer
		if err := drive(cfg, ts.URL, via, &out, io.Discard); err != nil {
			t.Fatalf("drive via %s: %v", via, err)
		}
		ts.Close()
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		outputs[via] = out.String()
	}
	if outputs["stream"] == "" || !strings.Contains(outputs["stream"], "tenant  policy") {
		t.Fatalf("stream output not a tenant table:\n%s", outputs["stream"])
	}
	if outputs["stream"] != outputs["batch"] || outputs["stream"] != outputs["single"] {
		t.Fatalf("tenant tables diverge across -via modes:\n--- stream\n%s\n--- batch\n%s\n--- single\n%s",
			outputs["stream"], outputs["batch"], outputs["single"])
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	cfg := defaultTestConfig()
	cfg.tenants = 0
	if err := run(cfg, io.Discard, io.Discard); err == nil {
		t.Fatal("zero tenants accepted")
	}
	cfg = defaultTestConfig()
	cfg.policy = "nope"
	if err := run(cfg, io.Discard, io.Discard); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
