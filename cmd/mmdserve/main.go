// Command mmdserve runs a sharded multi-tenant head-end cluster from
// generator configs, either driving a deterministic synthetic workload
// and printing per-shard and fleet-wide tables, or serving the fleet
// over HTTP.
//
// Usage:
//
//	mmdserve [-tenants 8] [-shards 0] [-channels 40] [-gateways 10]
//	         [-seed 1] [-rounds 2] [-batch 16] [-policy online]
//	         [-depart-every 3] [-churn-every 0] [-resolve-every 0]
//	         [-http addr]
//
// Without -http the deterministic report (fleet summary, per-shard
// stats, per-tenant table) goes to stdout: two invocations with the
// same flags produce byte-identical output. Wall-clock throughput,
// which is not deterministic, goes to stderr.
//
// With -http the fleet serves a JSON ingestion front end instead — a
// thin codec over the serving API v2 request/response structs:
//
//	POST /v1/tenants/{id}/events   {"type":"offer","stream":3}
//	GET  /v1/fleet/snapshot
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	videodist "repro"
	"repro/internal/generator"
)

func main() {
	var cfg config
	var httpAddr string
	flag.IntVar(&cfg.tenants, "tenants", 8, "number of tenant head-ends")
	flag.IntVar(&cfg.shards, "shards", 0, "shard workers (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.channels, "channels", 40, "channels per tenant")
	flag.IntVar(&cfg.gateways, "gateways", 10, "gateways per tenant")
	flag.Int64Var(&cfg.seed, "seed", 1, "workload seed")
	flag.IntVar(&cfg.rounds, "rounds", 2, "catalog replays per tenant")
	flag.IntVar(&cfg.batch, "batch", 16, "arrivals coalesced per shard before admission")
	flag.StringVar(&cfg.policy, "policy", "online", "admission policy: online, online-unguarded, threshold, oracle, static")
	flag.IntVar(&cfg.departEvery, "depart-every", 3, "inject a stream departure every k arrivals (0 = off)")
	flag.IntVar(&cfg.churnEvery, "churn-every", 0, "inject a gateway leave/join every k arrivals (0 = off)")
	flag.IntVar(&cfg.resolveEvery, "resolve-every", 0, "offline re-solve after every n churn events (0 = off)")
	flag.StringVar(&httpAddr, "http", "", "serve the fleet over HTTP on this address instead of running the synthetic workload")
	flag.Parse()
	if httpAddr != "" {
		if err := serve(cfg, httpAddr, os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "mmdserve:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(cfg, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "mmdserve:", err)
		os.Exit(1)
	}
}

type config struct {
	tenants, shards, channels, gateways   int
	rounds, batch                         int
	departEvery, churnEvery, resolveEvery int
	seed                                  int64
	policy                                string
}

// buildCluster builds the fleet described by cfg: cfg.tenants cable-TV
// head-ends with the chosen admission policy.
func buildCluster(cfg config) (*videodist.Cluster, error) {
	if cfg.tenants < 1 {
		return nil, fmt.Errorf("need at least one tenant")
	}
	tenants := make([]videodist.ClusterTenant, cfg.tenants)
	for i := range tenants {
		in, err := generator.CableTV{
			Channels: cfg.channels, Gateways: cfg.gateways,
			Seed: cfg.seed + int64(i), EgressFraction: 0.25,
		}.Generate()
		if err != nil {
			return nil, err
		}
		pol, err := videodist.NewAdmissionPolicy(in, cfg.policy)
		if err != nil {
			return nil, err
		}
		tenants[i] = videodist.ClusterTenant{Instance: in, Policy: pol}
	}
	return videodist.NewCluster(tenants, videodist.ClusterOptions{
		Shards:       cfg.shards,
		BatchSize:    cfg.batch,
		ResolveEvery: cfg.resolveEvery,
	})
}

// serve builds the fleet and serves the HTTP front end until the
// listener fails (or forever).
func serve(cfg config, addr string, log io.Writer) error {
	c, err := buildCluster(cfg)
	if err != nil {
		return err
	}
	defer c.Close()
	fmt.Fprintf(log, "mmdserve: %d tenants on %d shards, policy=%s, listening on %s\n",
		c.NumTenants(), c.NumShards(), cfg.policy, addr)
	return http.ListenAndServe(addr, newHandler(c))
}

// run builds the fleet, drives the workload, and writes the
// deterministic report to out and timing to timing.
func run(cfg config, out, timing io.Writer) error {
	c, err := buildCluster(cfg)
	if err != nil {
		return err
	}
	start := time.Now()
	fs, total, err := c.RunWorkload(videodist.ClusterWorkload{
		Seed:        cfg.seed,
		Rounds:      cfg.rounds,
		DepartEvery: cfg.departEvery,
		ChurnEvery:  cfg.churnEvery,
	})
	elapsed := time.Since(start)
	if err != nil {
		_ = c.Close()
		return err
	}
	if err := c.Close(); err != nil {
		return err
	}

	fmt.Fprintf(out, "mmdserve: policy=%s seed=%d rounds=%d batch=%d\n\n",
		cfg.policy, cfg.seed, cfg.rounds, cfg.batch)
	fmt.Fprint(out, fs.Render())
	fmt.Fprintf(timing, "processed %d events in %v (%.0f events/s)\n",
		total, elapsed.Round(time.Microsecond), float64(total)/elapsed.Seconds())
	return nil
}
