// Command mmdserve runs a sharded multi-tenant head-end cluster from
// generator configs, either driving a deterministic synthetic workload
// and printing per-shard and fleet-wide tables, or serving the fleet
// over HTTP.
//
// Usage:
//
//	mmdserve [-tenants 8] [-shards 0] [-channels 40] [-gateways 10]
//	         [-seed 1] [-rounds 2] [-batch 16] [-policy online]
//	         [-depart-every 3] [-churn-every 0] [-resolve-every 0]
//	         [-cost-model isolated|shared|off] [-share-fraction 0.25]
//	         [-http addr]
//
// Without -http the deterministic report (fleet summary, per-shard
// stats, per-tenant table, catalog table) goes to stdout: two
// invocations with the same flags produce byte-identical output.
// Wall-clock throughput, which is not deterministic, goes to stderr.
//
// Every channel is bound into the fleet catalog as stream "ch-NNN" at
// every tenant; -cost-model shared prices later admissions of an
// already-carried stream at -share-fraction of the origin cost.
//
// With -http the fleet serves a JSON ingestion front end instead — a
// thin codec over the serving API v2/v3 request/response structs:
//
//	POST /v1/tenants/{id}/events        {"type":"offer","stream":3}
//	POST /v1/tenants/{id}/events        {"type":"catalog-offer","catalog_id":"ch-003"}
//	POST /v1/tenants/{id}/events:batch  [{"type":"offer","stream":3}, ...]
//	GET  /v1/fleet/snapshot
//	GET  /v1/catalog
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	videodist "repro"
	"repro/internal/generator"
)

func main() {
	var cfg config
	var httpAddr string
	flag.IntVar(&cfg.tenants, "tenants", 8, "number of tenant head-ends")
	flag.IntVar(&cfg.shards, "shards", 0, "shard workers (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.channels, "channels", 40, "channels per tenant")
	flag.IntVar(&cfg.gateways, "gateways", 10, "gateways per tenant")
	flag.Int64Var(&cfg.seed, "seed", 1, "workload seed")
	flag.IntVar(&cfg.rounds, "rounds", 2, "catalog replays per tenant")
	flag.IntVar(&cfg.batch, "batch", 16, "arrivals coalesced per shard before admission")
	flag.StringVar(&cfg.policy, "policy", "online", "admission policy: online, online-unguarded, threshold, oracle, static")
	flag.IntVar(&cfg.departEvery, "depart-every", 3, "inject a stream departure every k arrivals (0 = off)")
	flag.IntVar(&cfg.churnEvery, "churn-every", 0, "inject a gateway leave/join every k arrivals (0 = off)")
	flag.IntVar(&cfg.resolveEvery, "resolve-every", 0, "offline re-solve after every n churn events (0 = off)")
	flag.StringVar(&cfg.costModel, "cost-model", "isolated", "fleet catalog cost model: isolated, shared, or off (no catalog)")
	flag.Float64Var(&cfg.shareFraction, "share-fraction", 0.25, "replication fraction later tenants pay under -cost-model shared")
	flag.StringVar(&httpAddr, "http", "", "serve the fleet over HTTP on this address instead of running the synthetic workload")
	flag.Parse()
	if httpAddr != "" {
		if err := serve(cfg, httpAddr, os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "mmdserve:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(cfg, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "mmdserve:", err)
		os.Exit(1)
	}
}

type config struct {
	tenants, shards, channels, gateways   int
	rounds, batch                         int
	departEvery, churnEvery, resolveEvery int
	seed                                  int64
	policy                                string
	costModel                             string
	shareFraction                         float64
}

// catalogOptions builds the fleet catalog config: every channel index s
// is the same fleet stream "ch-NNN" at every tenant (the tenants are
// same-shaped CableTV head-ends, so local and fleet indexes coincide —
// the fully-overlapping regional-CDN workload).
func catalogOptions(cfg config) (*videodist.CatalogOptions, error) {
	var model videodist.CatalogCostModel
	switch cfg.costModel {
	case "", "isolated":
		model = videodist.CatalogIsolated{}
	case "shared":
		model = videodist.CatalogSharedOrigin{ReplicationFraction: cfg.shareFraction}
	case "off":
		return nil, nil
	default:
		return nil, fmt.Errorf("unknown cost model %q (want isolated, shared, or off)", cfg.costModel)
	}
	return &videodist.CatalogOptions{
		Streams:   videodist.IdentityCatalogBindings(cfg.tenants, cfg.channels, channelID),
		CostModel: model,
	}, nil
}

// channelID is the single binding between a channel index and its
// fleet catalog identity (used both when binding the catalog and when
// offering through it).
func channelID(s int) videodist.CatalogID {
	return videodist.CatalogID(fmt.Sprintf("ch-%03d", s))
}

// buildCluster builds the fleet described by cfg: cfg.tenants cable-TV
// head-ends with the chosen admission policy.
func buildCluster(cfg config) (*videodist.Cluster, error) {
	if cfg.tenants < 1 {
		return nil, fmt.Errorf("need at least one tenant")
	}
	tenants := make([]videodist.ClusterTenant, cfg.tenants)
	for i := range tenants {
		in, err := generator.CableTV{
			Channels: cfg.channels, Gateways: cfg.gateways,
			Seed: cfg.seed + int64(i), EgressFraction: 0.25,
		}.Generate()
		if err != nil {
			return nil, err
		}
		pol, err := videodist.NewAdmissionPolicy(in, cfg.policy)
		if err != nil {
			return nil, err
		}
		tenants[i] = videodist.ClusterTenant{Instance: in, Policy: pol}
	}
	cat, err := catalogOptions(cfg)
	if err != nil {
		return nil, err
	}
	return videodist.NewCluster(tenants, videodist.ClusterOptions{
		Shards:       cfg.shards,
		BatchSize:    cfg.batch,
		ResolveEvery: cfg.resolveEvery,
		Catalog:      cat,
	})
}

// serve builds the fleet and serves the HTTP front end until the
// listener fails (or forever).
func serve(cfg config, addr string, log io.Writer) error {
	c, err := buildCluster(cfg)
	if err != nil {
		return err
	}
	defer c.Close()
	fmt.Fprintf(log, "mmdserve: %d tenants on %d shards, policy=%s, listening on %s\n",
		c.NumTenants(), c.NumShards(), cfg.policy, addr)
	return http.ListenAndServe(addr, newHandler(c))
}

// run builds the fleet, drives the workload, and writes the
// deterministic report to out and timing to timing. With a catalog
// configured, a retune phase follows the synthetic workload: every
// tenant departs its lineup and re-admits the fleet catalog by
// CatalogID in index order — so the report's catalog table shows live
// cross-shard reference counts and, under -cost-model shared, the
// origin-cost savings of transcoding each popular stream once.
func run(cfg config, out, timing io.Writer) error {
	c, err := buildCluster(cfg)
	if err != nil {
		return err
	}
	start := time.Now()
	fs, total, err := c.RunWorkload(videodist.ClusterWorkload{
		Seed:        cfg.seed,
		Rounds:      cfg.rounds,
		DepartEvery: cfg.departEvery,
		ChurnEvery:  cfg.churnEvery,
	})
	if err == nil && cfg.costModel != "off" {
		ctx := context.Background()
		for ti := 0; ti < cfg.tenants && err == nil; ti++ {
			for s := 0; s < cfg.channels; s++ {
				if _, err = c.DepartStream(ctx, ti, s); err != nil {
					break
				}
				total++
			}
		}
		for s := 0; s < cfg.channels && err == nil; s++ {
			for ti := 0; ti < cfg.tenants; ti++ {
				if _, err = c.OfferCatalogStream(ctx, ti, channelID(s)); err != nil {
					break
				}
				total++
			}
		}
		if err == nil {
			fs, err = c.Snapshot()
		}
	}
	elapsed := time.Since(start)
	if err != nil {
		_ = c.Close()
		return err
	}
	if err := c.Close(); err != nil {
		return err
	}

	fmt.Fprintf(out, "mmdserve: policy=%s seed=%d rounds=%d batch=%d\n\n",
		cfg.policy, cfg.seed, cfg.rounds, cfg.batch)
	fmt.Fprint(out, fs.Render())
	fmt.Fprintf(timing, "processed %d events in %v (%.0f events/s)\n",
		total, elapsed.Round(time.Microsecond), float64(total)/elapsed.Seconds())
	return nil
}
