// Command mmdserve runs a sharded multi-tenant head-end cluster from
// generator configs: driving a deterministic synthetic workload and
// printing per-shard and fleet-wide tables, serving the fleet over
// HTTP, or driving the same workload against a remote fleet as a
// streaming load client.
//
// Usage:
//
//	mmdserve [-tenants 8] [-shards 0] [-channels 40] [-gateways 10]
//	         [-seed 1] [-rounds 2] [-batch 16] [-policy online]
//	         [-depart-every 3] [-churn-every 0] [-resolve-every 0]
//	         [-cost-model isolated|shared|off] [-share-fraction 0.25]
//	         [-wal-dir dir] [-wal-sync none|interval|batch] [-checkpoint-every n]
//	         [-shed-p99 dur] [-shed-retry-after dur] [-stream-write-timeout dur]
//	         [-http addr [-role node|catalog|router] [-nodes urls] [-catalog-url url]
//	          | -stream url [-via stream|batch|single]]
//
// Without -http or -stream the deterministic report (fleet summary,
// per-shard stats, per-tenant table, catalog table) goes to stdout: two
// invocations with the same flags produce byte-identical output.
// Wall-clock throughput, which is not deterministic, goes to stderr.
//
// Every channel is bound into the fleet catalog as stream "ch-NNN" at
// every tenant; -cost-model shared prices later admissions of an
// already-carried stream at -share-fraction of the origin cost.
//
// With -http the fleet serves the JSON ingestion front end
// (internal/httpserve) — a thin codec over the serving API v2/v3/v4
// request/response structs:
//
//	POST /v1/tenants/{id}/events        {"type":"offer","stream":3}
//	POST /v1/tenants/{id}/events        {"type":"catalog-offer","catalog_id":"ch-003"}
//	POST /v1/tenants/{id}/events:batch  [{"type":"offer","stream":3}, ...]
//	POST /v1/stream                     NDJSON in, NDJSON out (persistent)
//	POST /v1/admin/reshard              {"shards":4} (live cutover; needs -wal-dir)
//	GET  /v1/fleet/snapshot
//	GET  /v1/catalog
//
// With -wal-dir the fleet is durable: every acked event is appended to
// a per-shard write-ahead log before its ack (under the default
// -wal-sync batch, fsynced too — group commit), so a SIGKILL loses
// nothing acknowledged. Restarting with the same flags and the same
// -wal-dir recovers: the log replays through the normal ingest path,
// the result is verified against the last checkpoint manifest, and the
// recovered fleet is bit-identical to one that never crashed. The
// shard count on restart is free — recovery replays into whatever
// -shards says, and /v1/admin/reshard changes it live.
//
// Serving is resilient by default (see internal/httpserve): /v1/stream
// connections may claim a resumable session (X-Stream-Session) whose
// seq watermark — recovered from the WAL across restarts — keeps
// client replays exactly-once; -stream-write-timeout disconnects
// consumers that stop reading instead of pinning handler goroutines;
// and -shed-p99 turns saturation into fast 503 + Retry-After responses
// instead of unbounded queueing.
//
// With -role the same binary becomes one process of a distributed
// fleet (serving API v7, see internal/fleet): "catalog" serves the
// fleet catalog registry on its NDJSON wire protocol, "node" serves a
// cluster whose registry is a wire client against -catalog-url, and
// "router" fans /v1/stream sessions out across -nodes (comma-separated
// node URLs, routing tenant → shard → node), merging per-node
// snapshots into one fleet view. All processes must share the tenant
// flags; a 3-process quickstart:
//
//	mmdserve -http :9101 -role catalog
//	mmdserve -http :9102 -role node -catalog-url http://127.0.0.1:9101
//	mmdserve -http :9103 -role node -catalog-url http://127.0.0.1:9101
//	mmdserve -http :9100 -role router -nodes http://127.0.0.1:9102,http://127.0.0.1:9103 \
//	         -catalog-url http://127.0.0.1:9101
//	mmdserve -stream http://127.0.0.1:9100
//
// The driven fleet's per-tenant table is byte-identical to a
// 1-process run's — node-count invariance, the fleet tier's pinned
// property.
//
// With -stream it is the load client instead: the synthetic workload
// schedule the local mode's RunWorkload phase would submit (arrivals,
// departures, churn; the local report's closing catalog retune phase is
// not replayed) is derived from the flags and piped to a remote
// mmdserve -http fleet — over one persistent /v1/stream connection
// (-via stream, the default), as :batch posts of -batch events (-via
// batch), or as one POST per event (-via single). The remote per-tenant
// table goes to stdout; because all three submission paths preserve
// per-tenant order, it is byte-identical across -via modes — the parity
// check CI runs.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	videodist "repro"
	"repro/internal/catalog"
	"repro/internal/catalog/remote"
	"repro/internal/fleet"
	"repro/internal/generator"
	"repro/internal/httpserve"
	"repro/internal/loaddrive"
	"repro/streamclient"
)

func main() {
	var cfg config
	var httpAddr, streamURL, via string
	var role, nodesCSV, catalogURL string
	flag.IntVar(&cfg.tenants, "tenants", 8, "number of tenant head-ends")
	flag.IntVar(&cfg.shards, "shards", 0, "shard workers (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.channels, "channels", 40, "channels per tenant")
	flag.IntVar(&cfg.gateways, "gateways", 10, "gateways per tenant")
	flag.Int64Var(&cfg.seed, "seed", 1, "workload seed")
	flag.IntVar(&cfg.rounds, "rounds", 2, "catalog replays per tenant")
	flag.IntVar(&cfg.batch, "batch", 16, "arrivals coalesced per shard before admission (and events per -via batch post)")
	flag.StringVar(&cfg.policy, "policy", "online", "admission policy: online, online-unguarded, threshold, oracle, static")
	flag.IntVar(&cfg.departEvery, "depart-every", 3, "inject a stream departure every k arrivals (0 = off)")
	flag.IntVar(&cfg.churnEvery, "churn-every", 0, "inject a gateway leave/join every k arrivals (0 = off)")
	flag.IntVar(&cfg.resolveEvery, "resolve-every", 0, "offline re-solve after every n churn events (0 = off)")
	flag.StringVar(&cfg.costModel, "cost-model", "isolated", "fleet catalog cost model: isolated, shared, or off (no catalog)")
	flag.Float64Var(&cfg.shareFraction, "share-fraction", 0.25, "replication fraction later tenants pay under -cost-model shared")
	flag.StringVar(&cfg.walDir, "wal-dir", "", "write-ahead log directory; reopening a directory that already holds a log recovers the fleet from it (empty = no durability)")
	flag.StringVar(&cfg.walSync, "wal-sync", "batch", "WAL sync policy: none, interval, or batch (group commit; every acked event durable)")
	flag.IntVar(&cfg.checkpointEvery, "checkpoint-every", 0, "log records between automatic checkpoints (0 = checkpoint only on clean close)")
	flag.DurationVar(&cfg.shedP99, "shed-p99", 0, "overload threshold: shed load (fast 503 + Retry-After) while the rolling ack p99 is above this (0 = never shed)")
	flag.DurationVar(&cfg.shedRetryAfter, "shed-retry-after", time.Second, "Retry-After hint sent while shedding, and the cool-off before probing again")
	flag.DurationVar(&cfg.streamWriteTimeout, "stream-write-timeout", time.Minute, "per-write deadline on /v1/stream responses; a consumer stalled past it is disconnected (0 = wait forever)")
	flag.StringVar(&httpAddr, "http", "", "serve the fleet over HTTP on this address instead of running the synthetic workload")
	flag.StringVar(&streamURL, "stream", "", "drive the synthetic workload against a remote mmdserve -http fleet at this base URL")
	flag.StringVar(&via, "via", "stream", "remote submission path for -stream: stream, batch, or single")
	flag.StringVar(&role, "role", "", "fleet role for -http (serving API v7): node (cluster against a remote catalog service), catalog (the registry service), router (stream fan-out tier); empty serves the whole fleet in one process")
	flag.StringVar(&nodesCSV, "nodes", "", "comma-separated node base URLs in node-index order (-role router)")
	flag.StringVar(&catalogURL, "catalog-url", "", "catalog service base URL (-role node; optional for -role router's merged snapshot)")
	flag.Parse()
	switch {
	case httpAddr != "":
		var err error
		switch role {
		case "":
			err = serve(cfg, httpAddr, os.Stderr)
		case "node":
			err = serveNode(cfg, httpAddr, catalogURL, os.Stderr)
		case "catalog":
			err = serveCatalog(cfg, httpAddr, os.Stderr)
		case "router":
			err = serveRouter(cfg, httpAddr, nodesCSV, catalogURL, os.Stderr)
		default:
			err = fmt.Errorf("unknown -role %q (want node, catalog, or router)", role)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "mmdserve:", err)
			os.Exit(1)
		}
	case streamURL != "":
		if err := drive(cfg, streamURL, via, os.Stdout, os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "mmdserve:", err)
			os.Exit(1)
		}
	default:
		if err := run(cfg, os.Stdout, os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "mmdserve:", err)
			os.Exit(1)
		}
	}
}

type config struct {
	tenants, shards, channels, gateways   int
	rounds, batch                         int
	departEvery, churnEvery, resolveEvery int
	seed                                  int64
	policy                                string
	costModel                             string
	shareFraction                         float64
	walDir, walSync                       string
	checkpointEvery                       int
	shedP99, shedRetryAfter               time.Duration
	streamWriteTimeout                    time.Duration
	// catalogRemote, when set (-role node), replaces the in-process
	// registry with a wire client against the catalog service.
	catalogRemote catalog.Service
}

// catalogOptions builds the fleet catalog config: every channel index s
// is the same fleet stream "ch-NNN" at every tenant (the tenants are
// same-shaped CableTV head-ends, so local and fleet indexes coincide —
// the fully-overlapping regional-CDN workload).
func catalogOptions(cfg config) (*videodist.CatalogOptions, error) {
	var model videodist.CatalogCostModel
	switch cfg.costModel {
	case "", "isolated":
		model = videodist.CatalogIsolated{}
	case "shared":
		model = videodist.CatalogSharedOrigin{ReplicationFraction: cfg.shareFraction}
	case "off":
		return nil, nil
	default:
		return nil, fmt.Errorf("unknown cost model %q (want isolated, shared, or off)", cfg.costModel)
	}
	return &videodist.CatalogOptions{
		Streams:   videodist.IdentityCatalogBindings(cfg.tenants, cfg.channels, channelID),
		CostModel: model,
	}, nil
}

// channelID is the single binding between a channel index and its
// fleet catalog identity (used both when binding the catalog and when
// offering through it).
func channelID(s int) videodist.CatalogID {
	return videodist.CatalogID(fmt.Sprintf("ch-%03d", s))
}

// instances generates the fleet's tenant instances from cfg — shared by
// the local serving modes and the remote load client, which must derive
// the identical workload schedule.
func instances(cfg config) ([]*videodist.Instance, error) {
	if cfg.tenants < 1 {
		return nil, fmt.Errorf("need at least one tenant")
	}
	out := make([]*videodist.Instance, cfg.tenants)
	for i := range out {
		in, err := generator.CableTV{
			Channels: cfg.channels, Gateways: cfg.gateways,
			Seed: cfg.seed + int64(i), EgressFraction: 0.25,
		}.Generate()
		if err != nil {
			return nil, err
		}
		out[i] = in
	}
	return out, nil
}

// buildCluster builds the fleet described by cfg: cfg.tenants cable-TV
// head-ends with the chosen admission policy. With -wal-dir it is also
// the recovery switch: a directory already holding a log reopens it
// with RecoverCluster (replay, verify, repair, go live — the non-nil
// report says what happened); a fresh directory starts logging from
// genesis. The default "online" policy stays nil in the tenant configs
// so WAL-backed fleets keep live resharding available (Reshard rebuilds
// tenants by replay, which a caller-supplied policy object would
// break).
func buildCluster(cfg config) (*videodist.Cluster, *videodist.RecoveryReport, error) {
	ins, err := instances(cfg)
	if err != nil {
		return nil, nil, err
	}
	tenants := make([]videodist.ClusterTenant, len(ins))
	for i, in := range ins {
		tenants[i] = videodist.ClusterTenant{Instance: in}
		if cfg.policy != "" && cfg.policy != "online" {
			pol, err := videodist.NewAdmissionPolicy(in, cfg.policy)
			if err != nil {
				return nil, nil, err
			}
			tenants[i].Policy = pol
		}
	}
	cat, err := catalogOptions(cfg)
	if err != nil {
		return nil, nil, err
	}
	if cfg.catalogRemote != nil {
		if cat == nil {
			return nil, nil, fmt.Errorf("-role node needs a catalog (-cost-model %q disables it)", cfg.costModel)
		}
		cat.Remote = cfg.catalogRemote
	}
	opts := videodist.ClusterOptions{
		Shards:       cfg.shards,
		BatchSize:    cfg.batch,
		ResolveEvery: cfg.resolveEvery,
		Catalog:      cat,
	}
	if cfg.walDir != "" {
		sync, err := videodist.ParseWALSyncPolicy(cfg.walSync)
		if err != nil {
			return nil, nil, err
		}
		opts.WAL = &videodist.WALOptions{
			Dir:             cfg.walDir,
			Sync:            sync,
			CheckpointEvery: cfg.checkpointEvery,
		}
		if walDirHasLog(cfg.walDir) {
			return videodist.RecoverCluster(tenants, opts)
		}
	}
	c, err := videodist.NewCluster(tenants, opts)
	return c, nil, err
}

// walDirHasLog reports whether dir already holds log segments — the
// new-fleet vs recover-fleet switch.
func walDirHasLog(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "seg-") {
			return true
		}
	}
	return false
}

// serve builds the fleet and serves the HTTP front end until the
// listener fails (or forever).
func serve(cfg config, addr string, log io.Writer) error {
	c, rep, err := buildCluster(cfg)
	if err != nil {
		return err
	}
	defer c.Close()
	reportRecovery(log, rep)
	opts := httpserve.Options{
		ShedP99:            cfg.shedP99,
		RetryAfter:         cfg.shedRetryAfter,
		StreamWriteTimeout: cfg.streamWriteTimeout,
	}
	if rep != nil {
		// Recovered fleets carry their resume watermarks forward, so a
		// client replaying into the restarted server stays exactly-once.
		opts.Sessions = rep.SessionWatermarks
	}
	fmt.Fprintf(log, "mmdserve: %d tenants on %d shards, policy=%s, listening on %s\n",
		c.NumTenants(), c.NumShards(), cfg.policy, addr)
	return http.ListenAndServe(addr, httpserve.NewHandlerOpts(c, opts))
}

// serveNode is -role node: the same cluster as serve, but its catalog
// registry is a wire client against the catalog service — this process
// owns its tenants' assignment state while cross-node refcounts settle
// with the remote owner. The router in front sends it only the events
// of the tenants it owns.
func serveNode(cfg config, addr, catalogURL string, log io.Writer) error {
	if catalogURL == "" {
		return fmt.Errorf("-role node needs -catalog-url")
	}
	if cfg.walDir != "" {
		return fmt.Errorf("-role node cannot take -wal-dir (the registry's durability plane lives with the catalog service)")
	}
	rc, err := remote.Dial(catalogURL, remote.Options{})
	if err != nil {
		return err
	}
	cfg.catalogRemote = rc
	fmt.Fprintf(log, "mmdserve: node against catalog %s\n", catalogURL)
	return serve(cfg, addr, log)
}

// serveCatalog is -role catalog: the fleet catalog registry in its own
// process, serving the NDJSON wire protocol nodes settle against (see
// internal/catalog/remote) plus GET /v1/catalog.
func serveCatalog(cfg config, addr string, log io.Writer) error {
	cat, err := catalogOptions(cfg)
	if err != nil {
		return err
	}
	if cat == nil {
		return fmt.Errorf("-role catalog needs a catalog (-cost-model %q disables it)", cfg.costModel)
	}
	reg, err := catalog.NewRegistry(cat.Streams, cat.CostModel)
	if err != nil {
		return err
	}
	defer reg.Close()
	fmt.Fprintf(log, "mmdserve: catalog service (%s, %d streams), listening on %s\n",
		cat.CostModel.Name(), cfg.channels, addr)
	return http.ListenAndServe(addr, remote.NewHandler(reg))
}

// serveRouter is -role router: the stream fan-out tier. -shards is the
// plan's routing modulus (0 uses -tenants, one logical shard per
// tenant); it is pinned for the router's lifetime and independent of
// the nodes' internal shard counts.
func serveRouter(cfg config, addr, nodesCSV, catalogURL string, log io.Writer) error {
	if nodesCSV == "" {
		return fmt.Errorf("-role router needs -nodes")
	}
	var urls []string
	for _, u := range strings.Split(nodesCSV, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	shards := cfg.shards
	if shards <= 0 {
		shards = cfg.tenants
	}
	rt, err := fleet.NewRouter(fleet.Options{
		Plan:       fleet.Plan{Nodes: len(urls), Shards: shards},
		Nodes:      urls,
		CatalogURL: catalogURL,
		ID:         fmt.Sprintf("router-%d-%d", os.Getpid(), time.Now().UnixNano()),
	})
	if err != nil {
		return err
	}
	defer rt.Close()
	fmt.Fprintf(log, "mmdserve: router over %d nodes (%d logical shards), listening on %s\n",
		len(urls), shards, addr)
	return http.ListenAndServe(addr, rt.Handler())
}

// reportRecovery summarizes a WAL recovery on the timing stream (rep
// nil — a fresh fleet — prints nothing).
func reportRecovery(log io.Writer, rep *videodist.RecoveryReport) {
	if rep == nil {
		return
	}
	fmt.Fprintf(log, "mmdserve: recovered WAL gen %d: %d events + %d catalog ops replayed (max seq %d), %d fences verified (newest gen %d, verified=%v), %d torn segments truncated, %d dangling refs released, %d reconciled\n",
		rep.Gen, rep.Events, rep.CatalogOps, rep.MaxSeq,
		rep.FencesVerified, rep.CheckpointGen, rep.CheckpointVerified,
		len(rep.TruncatedSegments), rep.DanglingReleased, rep.Reconciled)
}

// run builds the fleet, drives the workload, and writes the
// deterministic report to out and timing to timing. With a catalog
// configured, a retune phase follows the synthetic workload: every
// tenant departs its lineup and re-admits the fleet catalog by
// CatalogID in index order — so the report's catalog table shows live
// cross-shard reference counts and, under -cost-model shared, the
// origin-cost savings of transcoding each popular stream once.
func run(cfg config, out, timing io.Writer) error {
	c, rep, err := buildCluster(cfg)
	if err != nil {
		return err
	}
	reportRecovery(timing, rep)
	start := time.Now()
	fs, total, err := c.RunWorkload(videodist.ClusterWorkload{
		Seed:        cfg.seed,
		Rounds:      cfg.rounds,
		DepartEvery: cfg.departEvery,
		ChurnEvery:  cfg.churnEvery,
	})
	if err == nil && cfg.costModel != "off" {
		ctx := context.Background()
		for ti := 0; ti < cfg.tenants && err == nil; ti++ {
			for s := 0; s < cfg.channels; s++ {
				if _, err = c.DepartStream(ctx, ti, s); err != nil {
					break
				}
				total++
			}
		}
		for s := 0; s < cfg.channels && err == nil; s++ {
			for ti := 0; ti < cfg.tenants; ti++ {
				if _, err = c.OfferCatalogStream(ctx, ti, channelID(s)); err != nil {
					break
				}
				total++
			}
		}
		if err == nil {
			fs, err = c.Snapshot()
		}
	}
	elapsed := time.Since(start)
	if err != nil {
		_ = c.Close()
		return err
	}
	if err := c.Close(); err != nil {
		return err
	}

	fmt.Fprintf(out, "mmdserve: policy=%s seed=%d rounds=%d batch=%d\n\n",
		cfg.policy, cfg.seed, cfg.rounds, cfg.batch)
	fmt.Fprint(out, fs.Render())
	fmt.Fprintf(timing, "processed %d events in %v (%.0f events/s)\n",
		total, elapsed.Round(time.Microsecond), float64(total)/elapsed.Seconds())
	return nil
}

// wireType maps a routed event type onto its wire name.
func wireType(t videodist.ClusterEvent) (string, error) {
	switch t.Type {
	case videodist.ClusterStreamArrival:
		return "offer", nil
	case videodist.ClusterStreamDeparture:
		return "depart", nil
	case videodist.ClusterUserLeave:
		return "leave", nil
	case videodist.ClusterUserJoin:
		return "join", nil
	case videodist.ClusterResolve:
		return "resolve", nil
	}
	return "", fmt.Errorf("event type %d has no wire form", t.Type)
}

// schedules derives every tenant's synthetic event schedule from cfg —
// the exact sequence a local RunWorkload would submit — already mapped
// onto the wire form.
func schedules(cfg config) ([][]streamclient.Event, error) {
	ins, err := instances(cfg)
	if err != nil {
		return nil, err
	}
	w := videodist.ClusterWorkload{
		Seed:        cfg.seed,
		Rounds:      cfg.rounds,
		DepartEvery: cfg.departEvery,
		ChurnEvery:  cfg.churnEvery,
	}
	out := make([][]streamclient.Event, len(ins))
	for ti, in := range ins {
		for _, ev := range w.EventsForInstance(in, ti) {
			typ, err := wireType(ev)
			if err != nil {
				return nil, err
			}
			out[ti] = append(out[ti], streamclient.Event{
				Tenant: ti, Type: typ, Stream: ev.Stream, User: ev.User, Install: ev.Install,
			})
		}
	}
	return out, nil
}

// drive is the remote load client: it submits the synthetic workload's
// arrival/departure/churn schedule (the RunWorkload half of the local
// mode; the local report's catalog retune phase is not replayed — under
// a shared cost model its pipelined pricing would depend on settlement
// timing) to a remote fleet over the chosen path, fetches the final
// snapshot, and prints the per-tenant table — which is byte-identical
// across -via modes (all three preserve per-tenant submission order).
func drive(cfg config, target, via string, out, timing io.Writer) error {
	start := time.Now()
	var total int
	if cfg.rounds > 0 {
		seqs, err := schedules(cfg)
		if err != nil {
			return err
		}
		switch via {
		case "", "stream":
			total, err = loaddrive.Stream(target, loaddrive.Interleave(seqs))
		case "batch":
			total, err = loaddrive.Batch(target, seqs, cfg.batch)
		case "single":
			total, err = loaddrive.Single(target, loaddrive.Interleave(seqs))
		default:
			return fmt.Errorf("unknown -via %q (want stream, batch, or single)", via)
		}
		if err != nil {
			return err
		}
	}
	// -rounds 0 submits nothing: the client only fetches and prints the
	// remote per-tenant table (the crash-recovery smoke reads a
	// recovered fleet's state this way without perturbing it).
	elapsed := time.Since(start)

	resp, err := http.Get(target + "/v1/fleet/snapshot")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("snapshot: server status %s", resp.Status)
	}
	var fs videodist.FleetSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&fs); err != nil {
		return err
	}
	fmt.Fprint(out, fs.RenderTenants())
	fmt.Fprintf(timing, "submitted %d events via %s in %v (%.0f events/s)\n",
		total, via, elapsed.Round(time.Microsecond), float64(total)/elapsed.Seconds())
	return nil
}
