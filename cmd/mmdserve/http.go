package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	videodist "repro"
)

// The HTTP front end is a thin JSON codec over the serving API v2: one
// event per POST, decoded into the typed per-operation call, with the
// typed result marshaled straight back. No state lives in the handler
// — the cluster session is the whole contract.

// eventRequest is the wire form of one tenant event.
type eventRequest struct {
	// Type selects the operation: "offer", "depart", "leave", "join",
	// or "resolve".
	Type string `json:"type"`
	// Stream is the stream index (offer, depart).
	Stream int `json:"stream,omitempty"`
	// User is the gateway index (leave, join).
	User int `json:"user,omitempty"`
	// Install asks a resolve to install the offline assignment.
	Install bool `json:"install,omitempty"`
}

// eventResponse is the wire form of a typed result; exactly the field
// matching the request type is set.
type eventResponse struct {
	Type    string                   `json:"type"`
	Offer   *videodist.OfferResult   `json:"offer,omitempty"`
	Depart  *videodist.DepartResult  `json:"depart,omitempty"`
	Churn   *videodist.ChurnResult   `json:"churn,omitempty"`
	Resolve *videodist.ResolveResult `json:"resolve,omitempty"`
}

// errorResponse is the wire form of a failure.
type errorResponse struct {
	Error string `json:"error"`
}

// newHandler returns the HTTP/JSON ingestion front end over a cluster:
//
//	POST /v1/tenants/{id}/events
//	GET  /v1/fleet/snapshot
func newHandler(c *videodist.Cluster) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/tenants/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		handleEvent(c, w, r)
	})
	mux.HandleFunc("GET /v1/fleet/snapshot", func(w http.ResponseWriter, r *http.Request) {
		handleSnapshot(c, w)
	})
	return mux
}

func handleEvent(c *videodist.Cluster, w http.ResponseWriter, r *http.Request) {
	tenant, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad tenant id %q", r.PathValue("id")))
		return
	}
	var req eventRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad event body: %w", err))
		return
	}
	ctx := r.Context()
	resp := eventResponse{Type: req.Type}
	switch req.Type {
	case "offer":
		res, err := c.OfferStream(ctx, tenant, req.Stream)
		if err != nil {
			writeTransportError(w, err)
			return
		}
		resp.Offer = &res
	case "depart":
		res, err := c.DepartStream(ctx, tenant, req.Stream)
		if err != nil {
			writeTransportError(w, err)
			return
		}
		resp.Depart = &res
	case "leave":
		res, err := c.UserLeave(ctx, tenant, req.User)
		if err != nil {
			writeTransportError(w, err)
			return
		}
		resp.Churn = &res
	case "join":
		res, err := c.UserJoin(ctx, tenant, req.User)
		if err != nil {
			writeTransportError(w, err)
			return
		}
		resp.Churn = &res
	case "resolve":
		res, err := c.Resolve(ctx, tenant, videodist.ResolveOptions{Install: req.Install})
		if err != nil {
			writeTransportError(w, err)
			return
		}
		resp.Resolve = &res
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown event type %q", req.Type))
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func handleSnapshot(c *videodist.Cluster, w http.ResponseWriter) {
	fs, err := c.Snapshot()
	if err != nil {
		writeTransportError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, fs)
}

// writeTransportError maps the sentinel error taxonomy onto HTTP
// status codes.
func writeTransportError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, videodist.ErrUnknownTenant):
		code = http.StatusNotFound
	case errors.Is(err, videodist.ErrQueueFull):
		code = http.StatusTooManyRequests
	case errors.Is(err, videodist.ErrClosed):
		code = http.StatusServiceUnavailable
	case errors.Is(err, videodist.ErrCanceled):
		code = http.StatusRequestTimeout
	}
	writeError(w, code, err)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
