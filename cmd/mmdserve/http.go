package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	videodist "repro"
)

// The HTTP front end is a thin JSON codec over the serving API v2/v3:
// events decoded into the typed per-operation calls, with the typed
// results marshaled straight back. No state lives in the handler — the
// cluster session is the whole contract.

// eventRequest is the wire form of one tenant event.
type eventRequest struct {
	// Type selects the operation: "offer", "depart", "leave", "join",
	// "resolve", "catalog-offer", or "catalog-depart".
	Type string `json:"type"`
	// Stream is the stream index (offer, depart).
	Stream int `json:"stream,omitempty"`
	// User is the gateway index (leave, join).
	User int `json:"user,omitempty"`
	// Install asks a resolve to install the offline assignment.
	Install bool `json:"install,omitempty"`
	// CatalogID is the fleet-wide stream identity (catalog-offer,
	// catalog-depart).
	CatalogID string `json:"catalog_id,omitempty"`
}

// eventResponse is the wire form of a typed result; exactly the field
// matching the request type is set. Error carries a per-event failure
// inside a batch response (the batch itself still succeeds).
type eventResponse struct {
	Type    string                   `json:"type"`
	Offer   *videodist.OfferResult   `json:"offer,omitempty"`
	Depart  *videodist.DepartResult  `json:"depart,omitempty"`
	Churn   *videodist.ChurnResult   `json:"churn,omitempty"`
	Resolve *videodist.ResolveResult `json:"resolve,omitempty"`
	Catalog *videodist.CatalogResult `json:"catalog,omitempty"`
	Error   string                   `json:"error,omitempty"`
}

// errorResponse is the wire form of a failure.
type errorResponse struct {
	Error string `json:"error"`
}

// newHandler returns the HTTP/JSON ingestion front end over a cluster:
//
//	POST /v1/tenants/{id}/events
//	POST /v1/tenants/{id}/events:batch
//	GET  /v1/fleet/snapshot
//	GET  /v1/catalog
func newHandler(c *videodist.Cluster) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/tenants/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		handleEvent(c, w, r)
	})
	mux.HandleFunc("POST /v1/tenants/{id}/events:batch", func(w http.ResponseWriter, r *http.Request) {
		handleBatch(c, w, r)
	})
	mux.HandleFunc("GET /v1/fleet/snapshot", func(w http.ResponseWriter, r *http.Request) {
		handleSnapshot(c, w)
	})
	mux.HandleFunc("GET /v1/catalog", func(w http.ResponseWriter, r *http.Request) {
		handleCatalog(c, w)
	})
	return mux
}

func handleEvent(c *videodist.Cluster, w http.ResponseWriter, r *http.Request) {
	tenant, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad tenant id %q", r.PathValue("id")))
		return
	}
	var req eventRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad event body: %w", err))
		return
	}
	ctx := r.Context()
	resp := eventResponse{Type: req.Type}
	switch req.Type {
	case "offer":
		res, err := c.OfferStream(ctx, tenant, req.Stream)
		if err != nil {
			writeTransportError(w, err)
			return
		}
		resp.Offer = &res
	case "depart":
		res, err := c.DepartStream(ctx, tenant, req.Stream)
		if err != nil {
			writeTransportError(w, err)
			return
		}
		resp.Depart = &res
	case "leave":
		res, err := c.UserLeave(ctx, tenant, req.User)
		if err != nil {
			writeTransportError(w, err)
			return
		}
		resp.Churn = &res
	case "join":
		res, err := c.UserJoin(ctx, tenant, req.User)
		if err != nil {
			writeTransportError(w, err)
			return
		}
		resp.Churn = &res
	case "resolve":
		res, err := c.Resolve(ctx, tenant, videodist.ResolveOptions{Install: req.Install})
		if err != nil {
			writeTransportError(w, err)
			return
		}
		resp.Resolve = &res
	case "catalog-offer":
		res, err := c.OfferCatalogStream(ctx, tenant, videodist.CatalogID(req.CatalogID))
		if err != nil {
			writeTransportError(w, err)
			return
		}
		resp.Catalog = &res
	case "catalog-depart":
		res, err := c.DepartCatalogStream(ctx, tenant, videodist.CatalogID(req.CatalogID))
		if err != nil {
			writeTransportError(w, err)
			return
		}
		resp.Catalog = &res
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown event type %q", req.Type))
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// batchEventTypes maps the wire names accepted by the batch endpoint to
// routed event types. Catalog events are orchestrated across the
// registry and the shard and cannot ride in a single shard message.
var batchEventTypes = map[string]videodist.ClusterEvent{
	"offer":   {Type: videodist.ClusterStreamArrival},
	"depart":  {Type: videodist.ClusterStreamDeparture},
	"leave":   {Type: videodist.ClusterUserLeave},
	"join":    {Type: videodist.ClusterUserJoin},
	"resolve": {Type: videodist.ClusterResolve},
}

// handleBatch applies a JSON array of events as one Cluster.ApplyBatch
// call: the whole sequence crosses the tenant's shard queue as a single
// message, so remote callers get the same arrival coalescing the
// RunWorkload replay path enjoys. The response is one eventResponse per
// event, positionally.
func handleBatch(c *videodist.Cluster, w http.ResponseWriter, r *http.Request) {
	tenant, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad tenant id %q", r.PathValue("id")))
		return
	}
	var reqs []eventRequest
	if err := json.NewDecoder(r.Body).Decode(&reqs); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad batch body: %w", err))
		return
	}
	events := make([]videodist.ClusterEvent, len(reqs))
	for i, req := range reqs {
		ev, ok := batchEventTypes[req.Type]
		if !ok {
			if req.Type == "catalog-offer" || req.Type == "catalog-depart" {
				writeError(w, http.StatusBadRequest, fmt.Errorf(
					"batch event %d: catalog events cannot ride in a batch; use POST /v1/tenants/{id}/events", i))
				return
			}
			writeError(w, http.StatusBadRequest, fmt.Errorf("batch event %d: unknown event type %q", i, req.Type))
			return
		}
		ev.Stream, ev.User, ev.Install = req.Stream, req.User, req.Install
		events[i] = ev
	}
	results, err := c.ApplyBatch(r.Context(), tenant, events)
	if err != nil {
		writeTransportError(w, err)
		return
	}
	resps := make([]eventResponse, len(results))
	for i, res := range results {
		resps[i] = eventResponse{Type: reqs[i].Type}
		switch res.Type {
		case videodist.ClusterStreamArrival:
			offer := res.Offer
			resps[i].Offer = &offer
		case videodist.ClusterStreamDeparture:
			depart := res.Depart
			resps[i].Depart = &depart
		case videodist.ClusterUserLeave, videodist.ClusterUserJoin:
			churn := res.Churn
			resps[i].Churn = &churn
		case videodist.ClusterResolve:
			resolve := res.Resolve
			resps[i].Resolve = &resolve
		}
		if res.Err != nil {
			resps[i].Error = res.Err.Error()
		}
	}
	writeJSON(w, http.StatusOK, resps)
}

// handleCatalog serves the fleet catalog snapshot; 404 when the fleet
// was built without a catalog.
func handleCatalog(c *videodist.Cluster, w http.ResponseWriter) {
	snap, err := c.CatalogSnapshot()
	if err != nil {
		writeTransportError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func handleSnapshot(c *videodist.Cluster, w http.ResponseWriter) {
	fs, err := c.Snapshot()
	if err != nil {
		writeTransportError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, fs)
}

// writeTransportError maps the sentinel error taxonomy onto HTTP
// status codes.
func writeTransportError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, videodist.ErrUnknownTenant),
		errors.Is(err, videodist.ErrNoCatalog),
		errors.Is(err, videodist.ErrUnknownCatalogStream):
		code = http.StatusNotFound
	case errors.Is(err, videodist.ErrQueueFull):
		code = http.StatusTooManyRequests
	case errors.Is(err, videodist.ErrClosed):
		code = http.StatusServiceUnavailable
	case errors.Is(err, videodist.ErrCanceled):
		code = http.StatusRequestTimeout
	}
	writeError(w, code, err)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
