package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	videodist "repro"
)

// postEvent POSTs one event and decodes the response into out (which
// may be nil when only the status code matters).
func postEvent(t *testing.T, ts *httptest.Server, tenant int, req eventRequest, out any) int {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(fmt.Sprintf("%s/v1/tenants/%d/events", ts.URL, tenant),
		"application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp.StatusCode
}

// TestHTTPRoundTrip is the acceptance check for the HTTP front end:
// driving the same event sequence over HTTP and in process yields the
// same typed OfferResults, and the fleet snapshot round-trips.
func TestHTTPRoundTrip(t *testing.T) {
	cfg := defaultTestConfig()

	// In-process reference fleet.
	ref, err := buildCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	// Identically configured fleet behind the HTTP codec.
	c, err := buildCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ts := httptest.NewServer(newHandler(c))
	defer ts.Close()

	ctx := context.Background()
	for s := 0; s < cfg.channels; s++ {
		want, err := ref.OfferStream(ctx, 1, s)
		if err != nil {
			t.Fatal(err)
		}
		var got eventResponse
		if code := postEvent(t, ts, 1, eventRequest{Type: "offer", Stream: s}, &got); code != http.StatusOK {
			t.Fatalf("offer %d: status %d", s, code)
		}
		if got.Offer == nil {
			t.Fatalf("offer %d: no offer result in %+v", s, got)
		}
		if !reflect.DeepEqual(*got.Offer, want) {
			t.Fatalf("offer %d over HTTP = %+v, in-process = %+v", s, *got.Offer, want)
		}
	}

	// Churn and resolve round-trip through the same codec.
	var leave eventResponse
	if code := postEvent(t, ts, 1, eventRequest{Type: "leave", User: 0}, &leave); code != http.StatusOK {
		t.Fatalf("leave: status %d", code)
	}
	if leave.Churn == nil || !leave.Churn.Changed {
		t.Fatalf("leave = %+v", leave)
	}
	var res eventResponse
	if code := postEvent(t, ts, 1, eventRequest{Type: "resolve", Install: true}, &res); code != http.StatusOK {
		t.Fatalf("resolve: status %d", code)
	}
	if res.Resolve == nil || res.Resolve.OfflineValue <= 0 {
		t.Fatalf("resolve = %+v", res)
	}

	// Snapshot: the HTTP fleet must mirror an in-process snapshot of
	// the same sequence.
	if _, err := ref.UserLeave(ctx, 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Resolve(ctx, 1, videodist.ResolveOptions{Install: true}); err != nil {
		t.Fatal(err)
	}
	wantFS, err := ref.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/fleet/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: status %d", resp.StatusCode)
	}
	var gotFS videodist.FleetSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&gotFS); err != nil {
		t.Fatal(err)
	}
	if gotFS.Utility != wantFS.Utility || gotFS.Offered != wantFS.Offered ||
		gotFS.Installs != wantFS.Installs || !gotFS.AllFeasible {
		t.Fatalf("snapshot over HTTP = %+v\nin-process = %+v", gotFS, wantFS)
	}
	if gotFS.Tenants[1].StreamsOffered != cfg.channels {
		t.Fatalf("tenant 1 offered = %d, want %d", gotFS.Tenants[1].StreamsOffered, cfg.channels)
	}
}

// TestHTTPErrorMapping pins the sentinel-to-status translation and the
// 400 paths of the codec.
func TestHTTPErrorMapping(t *testing.T) {
	c, err := buildCluster(defaultTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newHandler(c))
	defer ts.Close()

	var e errorResponse
	if code := postEvent(t, ts, 99, eventRequest{Type: "offer"}, &e); code != http.StatusNotFound {
		t.Fatalf("unknown tenant: status %d (%+v)", code, e)
	}
	if code := postEvent(t, ts, 0, eventRequest{Type: "frobnicate"}, &e); code != http.StatusBadRequest {
		t.Fatalf("unknown type: status %d", code)
	}
	resp, err := http.Post(ts.URL+"/v1/tenants/zero/events", "application/json",
		bytes.NewReader([]byte(`{"type":"offer"}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad tenant id: status %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/tenants/0/events", "application/json",
		bytes.NewReader([]byte(`{not json`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: status %d", resp.StatusCode)
	}

	// Closed cluster maps to 503.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if code := postEvent(t, ts, 0, eventRequest{Type: "offer"}, &e); code != http.StatusServiceUnavailable {
		t.Fatalf("closed cluster: status %d", code)
	}
}
