package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	videodist "repro"
)

// postEvent POSTs one event and decodes the response into out (which
// may be nil when only the status code matters).
func postEvent(t *testing.T, ts *httptest.Server, tenant int, req eventRequest, out any) int {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(fmt.Sprintf("%s/v1/tenants/%d/events", ts.URL, tenant),
		"application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp.StatusCode
}

// TestHTTPRoundTrip is the acceptance check for the HTTP front end:
// driving the same event sequence over HTTP and in process yields the
// same typed OfferResults, and the fleet snapshot round-trips.
func TestHTTPRoundTrip(t *testing.T) {
	cfg := defaultTestConfig()

	// In-process reference fleet.
	ref, err := buildCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	// Identically configured fleet behind the HTTP codec.
	c, err := buildCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ts := httptest.NewServer(newHandler(c))
	defer ts.Close()

	ctx := context.Background()
	for s := 0; s < cfg.channels; s++ {
		want, err := ref.OfferStream(ctx, 1, s)
		if err != nil {
			t.Fatal(err)
		}
		var got eventResponse
		if code := postEvent(t, ts, 1, eventRequest{Type: "offer", Stream: s}, &got); code != http.StatusOK {
			t.Fatalf("offer %d: status %d", s, code)
		}
		if got.Offer == nil {
			t.Fatalf("offer %d: no offer result in %+v", s, got)
		}
		if !reflect.DeepEqual(*got.Offer, want) {
			t.Fatalf("offer %d over HTTP = %+v, in-process = %+v", s, *got.Offer, want)
		}
	}

	// Churn and resolve round-trip through the same codec.
	var leave eventResponse
	if code := postEvent(t, ts, 1, eventRequest{Type: "leave", User: 0}, &leave); code != http.StatusOK {
		t.Fatalf("leave: status %d", code)
	}
	if leave.Churn == nil || !leave.Churn.Changed {
		t.Fatalf("leave = %+v", leave)
	}
	var res eventResponse
	if code := postEvent(t, ts, 1, eventRequest{Type: "resolve", Install: true}, &res); code != http.StatusOK {
		t.Fatalf("resolve: status %d", code)
	}
	if res.Resolve == nil || res.Resolve.OfflineValue <= 0 {
		t.Fatalf("resolve = %+v", res)
	}

	// Snapshot: the HTTP fleet must mirror an in-process snapshot of
	// the same sequence.
	if _, err := ref.UserLeave(ctx, 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Resolve(ctx, 1, videodist.ResolveOptions{Install: true}); err != nil {
		t.Fatal(err)
	}
	wantFS, err := ref.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/fleet/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: status %d", resp.StatusCode)
	}
	var gotFS videodist.FleetSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&gotFS); err != nil {
		t.Fatal(err)
	}
	if gotFS.Utility != wantFS.Utility || gotFS.Offered != wantFS.Offered ||
		gotFS.Installs != wantFS.Installs || !gotFS.AllFeasible {
		t.Fatalf("snapshot over HTTP = %+v\nin-process = %+v", gotFS, wantFS)
	}
	if gotFS.Tenants[1].StreamsOffered != cfg.channels {
		t.Fatalf("tenant 1 offered = %d, want %d", gotFS.Tenants[1].StreamsOffered, cfg.channels)
	}
}

// TestHTTPErrorMapping pins the sentinel-to-status translation and the
// 400 paths of the codec.
func TestHTTPErrorMapping(t *testing.T) {
	c, err := buildCluster(defaultTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newHandler(c))
	defer ts.Close()

	var e errorResponse
	if code := postEvent(t, ts, 99, eventRequest{Type: "offer"}, &e); code != http.StatusNotFound {
		t.Fatalf("unknown tenant: status %d (%+v)", code, e)
	}
	if code := postEvent(t, ts, 0, eventRequest{Type: "frobnicate"}, &e); code != http.StatusBadRequest {
		t.Fatalf("unknown type: status %d", code)
	}
	resp, err := http.Post(ts.URL+"/v1/tenants/zero/events", "application/json",
		bytes.NewReader([]byte(`{"type":"offer"}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad tenant id: status %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/tenants/0/events", "application/json",
		bytes.NewReader([]byte(`{not json`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: status %d", resp.StatusCode)
	}

	// Closed cluster maps to 503.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if code := postEvent(t, ts, 0, eventRequest{Type: "offer"}, &e); code != http.StatusServiceUnavailable {
		t.Fatalf("closed cluster: status %d", code)
	}
}

// TestHTTPBatchParity is the batched-ingestion acceptance check: one
// POST to /v1/tenants/{id}/events:batch must yield exactly the same
// positional results and final fleet state as N single posts of the
// same events — while the whole batch crosses the shard queue as one
// message (the server-side coalescing RunWorkload enjoys).
func TestHTTPBatchParity(t *testing.T) {
	cfg := defaultTestConfig()

	single, err := buildCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	batched, err := buildCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer batched.Close()
	singleTS := httptest.NewServer(newHandler(single))
	defer singleTS.Close()
	batchTS := httptest.NewServer(newHandler(batched))
	defer batchTS.Close()

	var events []eventRequest
	for s := 0; s < cfg.channels; s++ {
		events = append(events, eventRequest{Type: "offer", Stream: s})
	}
	events = append(events,
		eventRequest{Type: "depart", Stream: 2},
		eventRequest{Type: "leave", User: 1},
		eventRequest{Type: "offer", Stream: 2},
		eventRequest{Type: "join", User: 1},
		eventRequest{Type: "resolve"},
	)

	// Reference: N single posts.
	var want []eventResponse
	for _, ev := range events {
		var resp eventResponse
		if code := postEvent(t, singleTS, 0, ev, &resp); code != http.StatusOK {
			t.Fatalf("single %+v: status %d", ev, code)
		}
		want = append(want, resp)
	}

	// One batch post.
	body, err := json.Marshal(events)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(batchTS.URL+"/v1/tenants/0/events:batch", "application/json",
		bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d", resp.StatusCode)
	}
	var got []eventResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("batch returned %d results, want %d", len(got), len(want))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("event %d: batch %+v vs single %+v", i, got[i], want[i])
		}
	}

	// Final state parity plus the coalescing evidence: the batch fleet
	// processed the same events in fewer, larger admission windows.
	sfs, err := single.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	bfs, err := batched.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if sfs.RenderTenants() != bfs.RenderTenants() {
		t.Fatalf("tenant tables diverge:\n--- batch\n%s\n--- single\n%s",
			bfs.RenderTenants(), sfs.RenderTenants())
	}
	singleBatches, batchBatches := 0, 0
	for _, st := range sfs.ShardStats {
		singleBatches += st.Batches
	}
	for _, st := range bfs.ShardStats {
		batchBatches += st.Batches
	}
	if batchBatches >= singleBatches {
		t.Fatalf("batch ingestion used %d admission windows, singles used %d — no coalescing",
			batchBatches, singleBatches)
	}

	// Error paths: unknown type inside the batch, catalog ops rejected.
	for _, bad := range []string{
		`[{"type":"frobnicate"}]`,
		`[{"type":"catalog-offer","catalog_id":"ch-000"}]`,
		`{not json`,
	} {
		resp, err := http.Post(batchTS.URL+"/v1/tenants/0/events:batch", "application/json",
			bytes.NewReader([]byte(bad)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad batch %q: status %d", bad, resp.StatusCode)
		}
	}
}

// TestHTTPCatalog drives the catalog surface over the wire: shared
// admissions with discounts, the /v1/catalog snapshot, and the 404
// taxonomy (unknown id, catalog disabled).
func TestHTTPCatalog(t *testing.T) {
	cfg := defaultTestConfig()
	cfg.costModel = "shared"
	cfg.shareFraction = 0.25
	c, err := buildCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ts := httptest.NewServer(newHandler(c))
	defer ts.Close()

	var first eventResponse
	if code := postEvent(t, ts, 0, eventRequest{Type: "catalog-offer", CatalogID: "ch-003"}, &first); code != http.StatusOK {
		t.Fatalf("catalog-offer: status %d", code)
	}
	if first.Catalog == nil || !first.Catalog.Admitted || first.Catalog.CostScale != 1 {
		t.Fatalf("first catalog offer = %+v", first)
	}
	var second eventResponse
	if code := postEvent(t, ts, 1, eventRequest{Type: "catalog-offer", CatalogID: "ch-003"}, &second); code != http.StatusOK {
		t.Fatalf("second catalog-offer: status %d", code)
	}
	if second.Catalog == nil || !second.Catalog.Admitted ||
		second.Catalog.CostScale != 0.25 || second.Catalog.Refs != 2 {
		t.Fatalf("second catalog offer = %+v", second.Catalog)
	}

	resp, err := http.Get(ts.URL + "/v1/catalog")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("catalog snapshot: status %d", resp.StatusCode)
	}
	var snap videodist.CatalogSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Model != "shared-origin" || snap.ActiveShared != 1 || snap.OriginSavings <= 0 {
		t.Fatalf("catalog snapshot = %+v", snap)
	}

	var dep eventResponse
	if code := postEvent(t, ts, 1, eventRequest{Type: "catalog-depart", CatalogID: "ch-003"}, &dep); code != http.StatusOK {
		t.Fatalf("catalog-depart: status %d", code)
	}
	if dep.Catalog == nil || !dep.Catalog.Removed || dep.Catalog.Refs != 1 || dep.Catalog.Evicted {
		t.Fatalf("catalog depart = %+v", dep.Catalog)
	}

	var e errorResponse
	if code := postEvent(t, ts, 0, eventRequest{Type: "catalog-offer", CatalogID: "nope"}, &e); code != http.StatusNotFound {
		t.Fatalf("unknown catalog id: status %d (%+v)", code, e)
	}

	// A fleet built with the catalog off 404s the whole surface.
	off := cfg
	off.costModel = "off"
	bare, err := buildCluster(off)
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	bareTS := httptest.NewServer(newHandler(bare))
	defer bareTS.Close()
	resp2, err := http.Get(bareTS.URL + "/v1/catalog")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("catalog-off snapshot: status %d", resp2.StatusCode)
	}
	if code := postEvent(t, bareTS, 0, eventRequest{Type: "catalog-offer", CatalogID: "ch-000"}, &e); code != http.StatusNotFound {
		t.Fatalf("catalog-off offer: status %d", code)
	}
}
