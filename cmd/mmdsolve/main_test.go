package main

import (
	"testing"

	"repro/internal/generator"
)

func TestSolveAllAlgorithms(t *testing.T) {
	in, err := generator.SmallStreams{
		Base: generator.RandomMMD{Streams: 10, Users: 3, M: 2, MC: 1, Seed: 2, Skew: 2},
	}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []string{"pipeline", "enum", "online", "threshold", "static", "cheapest", "exact"} {
		a, _, err := solve(in, algo)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if err := a.CheckFeasible(in); err != nil {
			t.Fatalf("%s: infeasible: %v", algo, err)
		}
	}
}

func TestSolveUnknownAlgorithm(t *testing.T) {
	in, err := generator.RandomSMD{Streams: 4, Users: 2, Seed: 3}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := solve(in, "bogus"); err == nil {
		t.Fatal("solve accepted an unknown algorithm")
	}
}

func TestNameFallback(t *testing.T) {
	if got := name("", "stream", 3); got != "stream3" {
		t.Fatalf("name() = %q", got)
	}
	if got := name("hbo", "stream", 3); got != "hbo" {
		t.Fatalf("name() = %q", got)
	}
}
