package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/generator"
	"repro/internal/mmd"
)

// writeInstance encodes a small solvable instance to a temp file and
// returns its path.
func writeInstance(t *testing.T) string {
	t.Helper()
	in, err := generator.SmallStreams{
		Base: generator.RandomMMD{Streams: 8, Users: 3, M: 2, MC: 1, Seed: 5, Skew: 2},
	}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "instance.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := mmd.Encode(f, in); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunSmoke drives the full CLI path (decode file, solve, report,
// lineups, exact OPT) end to end for every algorithm.
func TestRunSmoke(t *testing.T) {
	path := writeInstance(t)
	for _, algo := range []string{"pipeline", "online", "exact"} {
		if err := run(path, algo, true, true); err != nil {
			t.Fatalf("run(%s): %v", algo, err)
		}
	}
	if err := run(path, "bogus", false, false); err == nil {
		t.Fatal("run accepted an unknown algorithm")
	}
	if err := run(filepath.Join(t.TempDir(), "missing.json"), "pipeline", false, false); err == nil {
		t.Fatal("run accepted a missing instance file")
	}
}

func TestSolveAllAlgorithms(t *testing.T) {
	in, err := generator.SmallStreams{
		Base: generator.RandomMMD{Streams: 10, Users: 3, M: 2, MC: 1, Seed: 2, Skew: 2},
	}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []string{"pipeline", "enum", "online", "threshold", "static", "cheapest", "exact"} {
		a, _, err := solve(in, algo)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if err := a.CheckFeasible(in); err != nil {
			t.Fatalf("%s: infeasible: %v", algo, err)
		}
	}
}

func TestSolveUnknownAlgorithm(t *testing.T) {
	in, err := generator.RandomSMD{Streams: 4, Users: 2, Seed: 3}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := solve(in, "bogus"); err == nil {
		t.Fatal("solve accepted an unknown algorithm")
	}
}

func TestNameFallback(t *testing.T) {
	if got := name("", "stream", 3); got != "stream3" {
		t.Fatalf("name() = %q", got)
	}
	if got := name("hbo", "stream", 3); got != "hbo" {
		t.Fatalf("name() = %q", got)
	}
}
