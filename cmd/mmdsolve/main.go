// Command mmdsolve solves an MMD instance file with a chosen algorithm
// and prints the assignment value, resource utilization, and (for small
// instances) the gap to the exact optimum.
//
// Usage:
//
//	mmdsolve -in instance.json [-algo pipeline|enum|online|threshold|static|cheapest|exact]
//	         [-lineup] [-opt]
package main

import (
	"errors"
	"fmt"
	"io"
	"os"

	"flag"

	"repro/internal/baseline"
	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/mmd"
	"repro/internal/online"
)

func main() {
	var (
		inPath  = flag.String("in", "", "instance JSON (default stdin)")
		algo    = flag.String("algo", "pipeline", "pipeline, enum, online, threshold, static, cheapest, exact")
		lineup  = flag.Bool("lineup", false, "print per-user stream lineups")
		withOpt = flag.Bool("opt", false, "also compute the exact optimum (small instances only)")
	)
	flag.Parse()
	if err := run(*inPath, *algo, *lineup, *withOpt); err != nil {
		fmt.Fprintln(os.Stderr, "mmdsolve:", err)
		os.Exit(1)
	}
}

func run(inPath, algo string, lineup, withOpt bool) error {
	var r io.Reader = os.Stdin
	if inPath != "" {
		file, err := os.Open(inPath)
		if err != nil {
			return err
		}
		defer file.Close()
		r = file
	}
	in, err := mmd.Decode(r)
	if err != nil {
		return err
	}

	assn, extra, err := solve(in, algo)
	if err != nil {
		return err
	}
	value := assn.Utility(in)
	fmt.Printf("algorithm: %s\n", algo)
	fmt.Printf("value:     %.3f\n", value)
	if extra != "" {
		fmt.Println(extra)
	}
	if err := assn.CheckFeasible(in); err != nil {
		fmt.Printf("FEASIBILITY VIOLATION: %v\n", err)
	} else {
		fmt.Println("feasible:  yes")
	}
	fmt.Printf("streams:   %d of %d transmitted\n", assn.RangeSize(), in.NumStreams())
	for i := range in.Budgets {
		fmt.Printf("budget %d:  %.3f / %.3f\n", i, assn.ServerCost(in, i), in.Budgets[i])
	}
	fmt.Printf("upper bound: %.3f (value achieves >= %.0f%% of OPT)\n",
		bounds.UpperBound(in), 100*value/bounds.UpperBound(in))

	if withOpt {
		res, err := exact.Solve(in, exact.Options{})
		if err != nil {
			return fmt.Errorf("exact: %w", err)
		}
		fmt.Printf("exact OPT: %.3f (ratio %.3f)\n", res.Value, res.Value/value)
	}
	if lineup {
		for u := range in.Users {
			fmt.Printf("%s:", name(in.Users[u].Name, "user", u))
			for _, s := range assn.UserStreams(u) {
				fmt.Printf(" %s", name(in.Streams[s].Name, "stream", s))
			}
			fmt.Println()
		}
	}
	return nil
}

func name(n, kind string, idx int) string {
	if n != "" {
		return n
	}
	return fmt.Sprintf("%s%d", kind, idx)
}

func solve(in *mmd.Instance, algo string) (*mmd.Assignment, string, error) {
	switch algo {
	case "pipeline":
		a, rep, err := core.Solve(in, core.Options{})
		if err != nil {
			return nil, "", err
		}
		return a, fmt.Sprintf("skew alpha: %.2f, bands: %d, guarantee: %.1fx",
			rep.Alpha, rep.Bands, rep.ApproxFactor), nil
	case "enum":
		a, rep, err := core.Solve(in, core.Options{Algorithm: core.AlgoPartialEnum})
		if err != nil {
			return nil, "", err
		}
		return a, fmt.Sprintf("skew alpha: %.2f, bands: %d", rep.Alpha, rep.Bands), nil
	case "online":
		a, norm, err := online.Solve(in)
		if err != nil {
			return nil, "", err
		}
		return a, fmt.Sprintf("gamma: %.2f, mu: %.1f, competitive bound: %.1f",
			norm.Gamma, norm.Mu(), norm.CompetitiveBound()), nil
	case "threshold":
		a, err := baseline.Threshold(in, nil, 1)
		return a, "", err
	case "static":
		a, err := baseline.StaticGreedy(in)
		return a, "", err
	case "cheapest":
		a, err := baseline.CheapestFirst(in)
		return a, "", err
	case "exact":
		res, err := exact.Solve(in, exact.Options{})
		if err != nil {
			return nil, "", err
		}
		return res.Assignment, fmt.Sprintf("search nodes: %d", res.Nodes), nil
	default:
		return nil, "", errors.New("unknown algorithm " + algo)
	}
}
