package main

import (
	"bytes"
	"testing"

	"repro/internal/mmd"
)

func defaultParams() genParams {
	return genParams{
		seed: 1, channels: 10, gateways: 4, egress: 0.3,
		streams: 8, users: 3, skew: 4, m: 2, mc: 2,
	}
}

func TestGenerateAllFamilies(t *testing.T) {
	for _, family := range []string{"cabletv", "smd", "mmd", "small", "tightness"} {
		in, err := generate(family, defaultParams())
		if err != nil {
			t.Fatalf("%s: %v", family, err)
		}
		if err := in.Validate(); err != nil {
			t.Fatalf("%s: invalid: %v", family, err)
		}
		// Generated instances must survive the codec (the tool's output
		// is JSON consumed by mmdsolve).
		var buf bytes.Buffer
		if err := mmd.Encode(&buf, in); err != nil {
			t.Fatalf("%s: encode: %v", family, err)
		}
		if _, err := mmd.Decode(&buf); err != nil {
			t.Fatalf("%s: decode: %v", family, err)
		}
	}
}

func TestGenerateUnknownFamily(t *testing.T) {
	if _, err := generate("bogus", defaultParams()); err == nil {
		t.Fatal("generate accepted an unknown family")
	}
}
