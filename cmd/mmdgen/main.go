// Command mmdgen generates MMD problem instances as JSON.
//
// Usage:
//
//	mmdgen -family cabletv -channels 60 -gateways 16 -seed 1 > instance.json
//	mmdgen -family smd -streams 20 -users 8 -skew 16 > instance.json
//	mmdgen -family mmd -streams 20 -users 8 -m 3 -mc 2 > instance.json
//	mmdgen -family small -streams 40 -users 8 -m 2 > instance.json
//	mmdgen -family tightness -m 4 -mc 3 > instance.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/generator"
	"repro/internal/mmd"
	"repro/internal/reduction"
)

func main() {
	var (
		family   = flag.String("family", "cabletv", "instance family: cabletv, smd, mmd, small, tightness")
		out      = flag.String("o", "", "output file (default stdout)")
		seed     = flag.Int64("seed", 1, "random seed")
		channels = flag.Int("channels", 60, "cabletv: catalog size")
		gateways = flag.Int("gateways", 16, "cabletv: gateway count")
		egress   = flag.Float64("egress", 0.25, "cabletv: egress budget fraction")
		streams  = flag.Int("streams", 20, "smd/mmd/small: stream count")
		users    = flag.Int("users", 8, "smd/mmd/small: user count")
		skewFlag = flag.Float64("skew", 4, "smd/mmd: target local skew")
		m        = flag.Int("m", 2, "mmd/small/tightness: server budget count")
		mc       = flag.Int("mc", 1, "mmd/tightness: per-user capacity count")
	)
	flag.Parse()

	in, err := generate(*family, genParams{
		seed: *seed, channels: *channels, gateways: *gateways, egress: *egress,
		streams: *streams, users: *users, skew: *skewFlag, m: *m, mc: *mc,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmdgen:", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		file, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mmdgen:", err)
			os.Exit(1)
		}
		defer file.Close()
		w = file
	}
	if err := mmd.Encode(w, in); err != nil {
		fmt.Fprintln(os.Stderr, "mmdgen:", err)
		os.Exit(1)
	}
}

type genParams struct {
	seed               int64
	channels, gateways int
	egress             float64
	streams, users     int
	skew               float64
	m, mc              int
}

func generate(family string, p genParams) (*mmd.Instance, error) {
	switch family {
	case "cabletv":
		return generator.CableTV{
			Channels: p.channels, Gateways: p.gateways, Seed: p.seed,
			EgressFraction: p.egress,
		}.Generate()
	case "smd":
		return generator.RandomSMD{
			Streams: p.streams, Users: p.users, Seed: p.seed, Skew: p.skew,
		}.Generate()
	case "mmd":
		return generator.RandomMMD{
			Streams: p.streams, Users: p.users, M: p.m, MC: p.mc,
			Seed: p.seed, Skew: p.skew,
		}.Generate()
	case "small":
		return generator.SmallStreams{
			Base: generator.RandomMMD{
				Streams: p.streams, Users: p.users, M: p.m, MC: p.mc,
				Seed: p.seed, Skew: p.skew,
			},
		}.Generate()
	case "tightness":
		return reduction.TightnessInstance(p.m, p.mc)
	default:
		return nil, fmt.Errorf("unknown family %q", family)
	}
}
