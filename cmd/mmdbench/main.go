// Command mmdbench runs the full experiment suite (E1-E10 plus the
// ablations A1-A3, see DESIGN.md section 4) and prints the results as
// Markdown — the tables recorded in EXPERIMENTS.md.
//
// With -json it instead runs the serving-path benchmark suite
// (guarded admission rescan vs ledger, the end-to-end online policy
// sweep, and the cluster workload/ack benchmarks) via testing.Benchmark
// and writes a machine-readable baseline — ns/op, allocs/op, B/op, and
// events/op — to the given file (conventionally BENCH_serving.json at
// the repo root), so successive PRs have a trajectory to diff against.
// The baseline's "saturation" section is the scaling curve: the
// concurrent-submitter harness swept over a shards x GOMAXPROCS grid,
// each cell reporting acked events/sec and p50/p99 ack latency
// (-sat-shards, -sat-procs, -sat-rounds tune the sweep; -sat-workload
// swaps the uniform session workload for a generator schedule). The
// "durability" section prices the WAL: StreamIngest/stream rerun with
// each sync policy journaling before the ack, each as a ratio of the
// WAL-off reference. The "workloads" section records the
// generator-driven ingestion runs (Zipf flash crowd, diurnal churn)
// against a catalog-enabled fleet.
//
// Usage:
//
//	mmdbench                        # run every experiment
//	mmdbench -only E5               # run one experiment
//	mmdbench -json BENCH_serving.json  # write the serving perf baseline
//	mmdbench -json out.json -sat-shards 1,8 -sat-procs 2 -sat-rounds 1
//	mmdbench -json out.json -sat-workload zipf-flash
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/benchkit"
	"repro/internal/experiments"
)

func main() {
	only := flag.String("only", "", "run a single experiment (E1..E10, A1..A3)")
	jsonPath := flag.String("json", "", "write the serving benchmark baseline to this file instead of running experiments")
	satShards := flag.String("sat-shards", "1,2,4,8", "comma-separated shard counts for the saturation sweep")
	satProcs := flag.String("sat-procs", "1,2,4,8", "comma-separated GOMAXPROCS values for the saturation sweep")
	satRounds := flag.Int("sat-rounds", 2, "workload rounds per saturation cell")
	satWorkload := flag.String("sat-workload", "", "generator workload for the saturation sweep (zipf-flash, diurnal; empty = uniform sessions)")
	flag.Parse()
	if *jsonPath != "" {
		if err := writeServingBaseline(*jsonPath, *satShards, *satProcs, *satRounds, *satWorkload); err != nil {
			fmt.Fprintln(os.Stderr, "mmdbench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*only); err != nil {
		fmt.Fprintln(os.Stderr, "mmdbench:", err)
		os.Exit(1)
	}
}

func run(only string) error {
	start := time.Now()
	tables, err := experiments.All()
	if err != nil {
		return err
	}
	printed := 0
	for _, t := range tables {
		if only != "" && !strings.EqualFold(t.ID, only) {
			continue
		}
		fmt.Println(t.Markdown())
		printed++
	}
	if only != "" && printed == 0 {
		return fmt.Errorf("no experiment named %q", only)
	}
	fmt.Printf("---\n%d experiments in %v\n", printed, time.Since(start).Round(time.Millisecond))
	return nil
}

// benchRecord is one benchmark's snapshot in the JSON baseline.
type benchRecord struct {
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	EventsPerOp float64 `json:"events_per_op,omitempty"`
	// EventsPerSec is reported by the ingestion benchmarks
	// (StreamIngest/*) — the serving API v4 acceptance metric.
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
}

// saturationRecord is one cell of the baseline's scaling curve: the
// concurrent-submitter session workload measured at one
// (shards, GOMAXPROCS) setting.
type saturationRecord struct {
	// Workload names the generator schedule driven through the cell;
	// empty means the uniform session workload.
	Workload     string  `json:"workload,omitempty"`
	Shards       int     `json:"shards"`
	GoMaxProcs   int     `json:"gomaxprocs"`
	Submitters   int     `json:"submitters"`
	Events       int     `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	// AckP50Ms and AckP99Ms are histogram-quantile upper bounds on
	// per-call ack latency, in milliseconds.
	AckP50Ms float64 `json:"ack_p50_ms"`
	AckP99Ms float64 `json:"ack_p99_ms"`
}

// durabilityRecord is one WAL-on ingestion measurement: the
// StreamIngest/stream workload with the named sync policy journaling
// every event before the ack.
type durabilityRecord struct {
	Sync         string  `json:"sync"`
	Iterations   int     `json:"iterations"`
	NsPerOp      float64 `json:"ns_per_op"`
	EventsPerSec float64 `json:"events_per_sec"`
	// RatioVsOff is this run's events/sec over the WAL-off reference —
	// the fraction of throughput the durability policy preserves.
	RatioVsOff float64 `json:"ratio_vs_off"`
}

// durabilitySection records the WAL's price on the hot ingest path:
// the WAL-off StreamIngest/stream reference and the same run under
// each sync policy. The acceptance bar (sync=batch >= 0.70 of WAL-off)
// is checked against this section by TestBenchServingBaselineSchema.
type durabilitySection struct {
	WALOffEventsPerSec float64            `json:"wal_off_events_per_sec"`
	SyncPolicies       []durabilityRecord `json:"sync_policies"`
	Note               string             `json:"note"`
}

// servingBaseline is the BENCH_serving.json document.
type servingBaseline struct {
	Command    string `json:"command"`
	GoVersion  string `json:"go_version"`
	GoMaxProcs int    `json:"gomaxprocs"`
	// NumCPU records the host parallelism the saturation sweep's
	// GOMAXPROCS axis should be read against.
	NumCPU     int                    `json:"num_cpu"`
	Benchmarks map[string]benchRecord `json:"benchmarks"`
	// Workloads snapshots the generator-driven ingestion benchmarks
	// (WorkloadIngest/*), keyed by workload kind.
	Workloads  map[string]benchRecord `json:"workloads"`
	Durability *durabilitySection     `json:"durability"`
	Saturation []saturationRecord     `json:"saturation"`
}

// parseGrid parses a comma-separated list of positive ints.
func parseGrid(flagName, s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("-%s: bad value %q", flagName, f)
		}
		out = append(out, v)
	}
	return out, nil
}

func writeServingBaseline(path, satShards, satProcs string, satRounds int, satWorkload string) error {
	shardGrid, err := parseGrid("sat-shards", satShards)
	if err != nil {
		return err
	}
	procGrid, err := parseGrid("sat-procs", satProcs)
	if err != nil {
		return err
	}
	base := servingBaseline{
		Command:    "mmdbench -json",
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Benchmarks: map[string]benchRecord{},
		Workloads:  map[string]benchRecord{},
	}
	for _, bench := range benchkit.ServingBenchmarks() {
		fmt.Fprintf(os.Stderr, "benchmarking %s...\n", bench.Name)
		res := testing.Benchmark(bench.F)
		if res.N == 0 {
			return fmt.Errorf("benchmark %s did not run (failed inside testing.Benchmark)", bench.Name)
		}
		rec := benchRecord{
			Iterations:  res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		}
		if v, ok := res.Extra["events/op"]; ok {
			rec.EventsPerOp = v
		}
		if v, ok := res.Extra["events/sec"]; ok {
			rec.EventsPerSec = v
		}
		base.Benchmarks[bench.Name] = rec
	}
	for _, bench := range benchkit.WorkloadBenchmarks() {
		fmt.Fprintf(os.Stderr, "benchmarking %s...\n", bench.Name)
		res := testing.Benchmark(bench.F)
		if res.N == 0 {
			return fmt.Errorf("benchmark %s did not run (failed inside testing.Benchmark)", bench.Name)
		}
		rec := benchRecord{
			Iterations:  res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		}
		if v, ok := res.Extra["events/op"]; ok {
			rec.EventsPerOp = v
		}
		if v, ok := res.Extra["events/sec"]; ok {
			rec.EventsPerSec = v
		}
		base.Workloads[strings.TrimPrefix(bench.Name, "WorkloadIngest/")] = rec
	}
	walOff := base.Benchmarks["StreamIngest/stream"].EventsPerSec
	base.Durability = &durabilitySection{
		WALOffEventsPerSec: walOff,
		Note: "StreamIngest/stream with per-shard WAL journaling before the ack, " +
			"per sync policy, vs the WAL-off reference above. Ratios are from one " +
			"host — read them against this file's num_cpu stamp: on a single-CPU " +
			"host the device flush stalls the serving path's only core (committer " +
			"overlap needs a second CPU), so group commit amortizes less than it " +
			"would with real parallelism. Acceptance: sync=batch ratio_vs_off " +
			">= 0.70 with num_cpu > 1, >= 0.45 (the measured single-core floor) " +
			"with num_cpu == 1.",
	}
	for _, bench := range benchkit.DurabilityBenchmarks() {
		fmt.Fprintf(os.Stderr, "benchmarking %s...\n", bench.Name)
		res := testing.Benchmark(bench.F)
		if res.N == 0 {
			return fmt.Errorf("benchmark %s did not run (failed inside testing.Benchmark)", bench.Name)
		}
		rec := durabilityRecord{
			Sync:       strings.TrimPrefix(bench.Name, "StreamIngestWAL/"),
			Iterations: res.N,
			NsPerOp:    float64(res.T.Nanoseconds()) / float64(res.N),
		}
		if v, ok := res.Extra["events/sec"]; ok {
			rec.EventsPerSec = v
		}
		if walOff > 0 {
			rec.RatioVsOff = rec.EventsPerSec / walOff
		}
		base.Durability.SyncPolicies = append(base.Durability.SyncPolicies, rec)
	}
	for _, s := range shardGrid {
		for _, p := range procGrid {
			fmt.Fprintf(os.Stderr, "saturating shards=%d gomaxprocs=%d...\n", s, p)
			pt, err := benchkit.SaturateWorkload(s, p, satRounds, satWorkload)
			if err != nil {
				return fmt.Errorf("saturation shards=%d procs=%d: %w", s, p, err)
			}
			base.Saturation = append(base.Saturation, saturationRecord{
				Workload:     satWorkload,
				Shards:       pt.Shards,
				GoMaxProcs:   pt.GoMaxProcs,
				Submitters:   pt.Submitters,
				Events:       pt.Events,
				EventsPerSec: pt.EventsPerSec,
				AckP50Ms:     pt.AckP50Micros / 1e3,
				AckP99Ms:     pt.AckP99Micros / 1e3,
			})
		}
	}
	buf, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d benchmarks and %d saturation cells to %s\n", len(base.Benchmarks), len(base.Saturation), path)
	return nil
}
