// Command mmdbench runs the full experiment suite (E1-E10 plus the
// ablations A1-A3, see DESIGN.md section 4) and prints the results as
// Markdown — the tables recorded in EXPERIMENTS.md.
//
// Usage:
//
//	mmdbench            # run everything
//	mmdbench -only E5   # run one experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	only := flag.String("only", "", "run a single experiment (E1..E10, A1..A3)")
	flag.Parse()
	if err := run(*only); err != nil {
		fmt.Fprintln(os.Stderr, "mmdbench:", err)
		os.Exit(1)
	}
}

func run(only string) error {
	start := time.Now()
	tables, err := experiments.All()
	if err != nil {
		return err
	}
	printed := 0
	for _, t := range tables {
		if only != "" && !strings.EqualFold(t.ID, only) {
			continue
		}
		fmt.Println(t.Markdown())
		printed++
	}
	if only != "" && printed == 0 {
		return fmt.Errorf("no experiment named %q", only)
	}
	fmt.Printf("---\n%d experiments in %v\n", printed, time.Since(start).Round(time.Millisecond))
	return nil
}
