// Command mmdbench runs the full experiment suite (E1-E10 plus the
// ablations A1-A3, see DESIGN.md section 4) and prints the results as
// Markdown — the tables recorded in EXPERIMENTS.md.
//
// With -json it instead runs the serving-path benchmark suite
// (guarded admission rescan vs ledger, the end-to-end online policy
// sweep, and the cluster workload/ack benchmarks) via testing.Benchmark
// and writes a machine-readable baseline — ns/op, allocs/op, B/op, and
// events/op — to the given file (conventionally BENCH_serving.json at
// the repo root), so successive PRs have a trajectory to diff against.
//
// Usage:
//
//	mmdbench                        # run every experiment
//	mmdbench -only E5               # run one experiment
//	mmdbench -json BENCH_serving.json  # write the serving perf baseline
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/benchkit"
	"repro/internal/experiments"
)

func main() {
	only := flag.String("only", "", "run a single experiment (E1..E10, A1..A3)")
	jsonPath := flag.String("json", "", "write the serving benchmark baseline to this file instead of running experiments")
	flag.Parse()
	if *jsonPath != "" {
		if err := writeServingBaseline(*jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "mmdbench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*only); err != nil {
		fmt.Fprintln(os.Stderr, "mmdbench:", err)
		os.Exit(1)
	}
}

func run(only string) error {
	start := time.Now()
	tables, err := experiments.All()
	if err != nil {
		return err
	}
	printed := 0
	for _, t := range tables {
		if only != "" && !strings.EqualFold(t.ID, only) {
			continue
		}
		fmt.Println(t.Markdown())
		printed++
	}
	if only != "" && printed == 0 {
		return fmt.Errorf("no experiment named %q", only)
	}
	fmt.Printf("---\n%d experiments in %v\n", printed, time.Since(start).Round(time.Millisecond))
	return nil
}

// benchRecord is one benchmark's snapshot in the JSON baseline.
type benchRecord struct {
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	EventsPerOp float64 `json:"events_per_op,omitempty"`
	// EventsPerSec is reported by the ingestion benchmarks
	// (StreamIngest/*) — the serving API v4 acceptance metric.
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
}

// servingBaseline is the BENCH_serving.json document.
type servingBaseline struct {
	Command    string                 `json:"command"`
	GoVersion  string                 `json:"go_version"`
	GoMaxProcs int                    `json:"gomaxprocs"`
	Benchmarks map[string]benchRecord `json:"benchmarks"`
}

func writeServingBaseline(path string) error {
	base := servingBaseline{
		Command:    "mmdbench -json",
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Benchmarks: map[string]benchRecord{},
	}
	for _, bench := range benchkit.ServingBenchmarks() {
		fmt.Fprintf(os.Stderr, "benchmarking %s...\n", bench.Name)
		res := testing.Benchmark(bench.F)
		if res.N == 0 {
			return fmt.Errorf("benchmark %s did not run (failed inside testing.Benchmark)", bench.Name)
		}
		rec := benchRecord{
			Iterations:  res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		}
		if v, ok := res.Extra["events/op"]; ok {
			rec.EventsPerOp = v
		}
		if v, ok := res.Extra["events/sec"]; ok {
			rec.EventsPerSec = v
		}
		base.Benchmarks[bench.Name] = rec
	}
	buf, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d benchmarks to %s\n", len(base.Benchmarks), path)
	return nil
}
