// Command vodsim runs the simulated head-end: streams arrive over
// virtual time, the chosen admission policy decides, the multicast
// plant underneath accounts delivery, and the final assignment is
// optionally re-run as a live goroutine emulation.
//
// Usage:
//
//	vodsim -channels 40 -gateways 10 -policy oracle [-trace out.jsonl] [-emulate]
//	vodsim -policy all        # compare all policies on the same workload
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/emulation"
	"repro/internal/generator"
	"repro/internal/headend"
	"repro/internal/mmd"
	"repro/internal/trace"
)

func main() {
	var (
		channels = flag.Int("channels", 40, "catalog size")
		gateways = flag.Int("gateways", 10, "gateway count")
		seed     = flag.Int64("seed", 1, "workload and arrival seed")
		egress   = flag.Float64("egress", 0.25, "egress budget fraction")
		policy   = flag.String("policy", "oracle", "oracle, online, threshold, static, all")
		tracePth = flag.String("trace", "", "write a JSONL decision trace to this file")
		emulate  = flag.Bool("emulate", false, "re-run the final assignment as live goroutines")
		churn    = flag.Bool("churn", false, "dynamic mode: finite stream durations + gateway churn")
	)
	flag.Parse()
	if *churn {
		if err := runChurn(*channels, *gateways, *seed, *egress, *policy); err != nil {
			fmt.Fprintln(os.Stderr, "vodsim:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*channels, *gateways, *seed, *egress, *policy, *tracePth, *emulate); err != nil {
		fmt.Fprintln(os.Stderr, "vodsim:", err)
		os.Exit(1)
	}
}

// runChurn runs the dynamic scenario (streams of finite duration plus
// gateway churn) under the requested policies.
func runChurn(channels, gateways int, seed int64, egress float64, policyName string) error {
	in, err := generator.CableTV{
		Channels: channels, Gateways: gateways, Seed: seed, EgressFraction: egress,
	}.Generate()
	if err != nil {
		return err
	}
	names := []string{policyName}
	if policyName == "all" {
		names = []string{"online", "threshold"}
	}
	for _, name := range names {
		pol, err := makePolicy(name, in)
		if err != nil {
			return err
		}
		sc := &headend.ChurnScenario{
			Instance: in, Seed: seed, Rounds: 3,
			MeanSessionTime: 10, MeanAwayTime: 4,
		}
		res, err := sc.Run(pol, nil)
		if err != nil {
			return err
		}
		fmt.Printf("policy %-24s utility-seconds %9.1f  peak %6.1f  admitted %3d  departed %3d  gw-churn %d/%d  overloads %d/%d\n",
			res.Policy, res.UtilitySeconds, res.PeakUtility, res.Admissions,
			res.Departures, res.UserLeaves, res.UserJoins,
			res.OverloadSamples, res.TotalSamples)
	}
	return nil
}

func run(channels, gateways int, seed int64, egress float64, policyName, tracePath string, emulate bool) error {
	in, err := generator.CableTV{
		Channels: channels, Gateways: gateways, Seed: seed, EgressFraction: egress,
	}.Generate()
	if err != nil {
		return err
	}
	sc := &headend.Scenario{Instance: in, Seed: seed}

	names := []string{policyName}
	if policyName == "all" {
		names = []string{"oracle", "online", "threshold", "static"}
	}
	for _, name := range names {
		pol, err := makePolicy(name, in)
		if err != nil {
			return err
		}
		var tw *trace.Writer
		var traceFile *os.File
		if tracePath != "" && policyName != "all" {
			traceFile, err = os.Create(tracePath)
			if err != nil {
				return err
			}
			tw = trace.NewWriter(traceFile)
		}
		res, err := sc.Run(pol, tw)
		if err != nil {
			return err
		}
		if tw != nil {
			if err := tw.Flush(); err != nil {
				return err
			}
			if err := traceFile.Close(); err != nil {
				return err
			}
		}
		feasible := "yes"
		if res.FeasibilityErr != nil {
			feasible = res.FeasibilityErr.Error()
		}
		fmt.Printf("policy %-24s utility %8.1f  admitted %3d/%d  delivered %9.0f Mb  overloads %d/%d  feasible: %s\n",
			res.Policy, res.Utility, res.StreamsAdmitted, res.StreamsOffered,
			res.DeliveredMb, res.OverloadSamples, res.TotalSamples, feasible)

		if emulate {
			rep, err := emulation.Run(in, res.Assignment, emulation.Config{
				ChunkInterval: time.Millisecond, Chunks: 40,
			})
			if err != nil {
				return err
			}
			total := int64(0)
			for _, b := range rep.BytesReceived {
				total += b
			}
			fmt.Printf("  live emulation: %d bytes across %d gateways in %v (dropped %d chunks)\n",
				total, len(rep.BytesReceived), rep.Elapsed.Round(time.Millisecond), rep.ChunksDropped)
		}
	}
	return nil
}

func makePolicy(name string, in *mmd.Instance) (headend.Policy, error) {
	return headend.NewPolicyByName(in, name)
}
