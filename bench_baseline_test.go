// Schema check for the checked-in serving perf baseline. CI runs this
// test by name right after regenerating a throwaway baseline, so a
// drive-by edit to BENCH_serving.json — or a mmdbench change that
// silently drops a section — fails fast instead of rotting the
// trajectory future PRs diff against.
package videodist_test

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"
)

// benchBaseline mirrors the BENCH_serving.json document written by
// `mmdbench -json`. It is intentionally redeclared here (the writer
// lives in package main) so the schema is pinned from the consumer
// side: a writer-side field rename breaks this test, not just readers.
type benchBaseline struct {
	Command    string `json:"command"`
	GoVersion  string `json:"go_version"`
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	Benchmarks map[string]struct {
		Iterations   int     `json:"iterations"`
		NsPerOp      float64 `json:"ns_per_op"`
		AllocsPerOp  int64   `json:"allocs_per_op"`
		BytesPerOp   int64   `json:"bytes_per_op"`
		EventsPerOp  float64 `json:"events_per_op"`
		EventsPerSec float64 `json:"events_per_sec"`
	} `json:"benchmarks"`
	Workloads map[string]struct {
		Iterations   int     `json:"iterations"`
		NsPerOp      float64 `json:"ns_per_op"`
		AllocsPerOp  int64   `json:"allocs_per_op"`
		BytesPerOp   int64   `json:"bytes_per_op"`
		EventsPerOp  float64 `json:"events_per_op"`
		EventsPerSec float64 `json:"events_per_sec"`
	} `json:"workloads"`
	Durability *struct {
		WALOffEventsPerSec float64 `json:"wal_off_events_per_sec"`
		SyncPolicies       []struct {
			Sync         string  `json:"sync"`
			Iterations   int     `json:"iterations"`
			NsPerOp      float64 `json:"ns_per_op"`
			EventsPerSec float64 `json:"events_per_sec"`
			RatioVsOff   float64 `json:"ratio_vs_off"`
		} `json:"sync_policies"`
		Note string `json:"note"`
	} `json:"durability"`
	Saturation []struct {
		Workload     string  `json:"workload"`
		Shards       int     `json:"shards"`
		GoMaxProcs   int     `json:"gomaxprocs"`
		Submitters   int     `json:"submitters"`
		Events       int     `json:"events"`
		EventsPerSec float64 `json:"events_per_sec"`
		AckP50Ms     float64 `json:"ack_p50_ms"`
		AckP99Ms     float64 `json:"ack_p99_ms"`
	} `json:"saturation"`
}

// benchBaselinePath lets CI point the schema check at a freshly
// generated file; default is the checked-in baseline.
func benchBaselinePath() string {
	if p := os.Getenv("BENCH_SERVING_PATH"); p != "" {
		return p
	}
	return "BENCH_serving.json"
}

func TestBenchServingBaselineSchema(t *testing.T) {
	buf, err := os.ReadFile(benchBaselinePath())
	if err != nil {
		t.Fatal(err)
	}
	var base benchBaseline
	dec := json.NewDecoder(bytes.NewReader(buf))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&base); err != nil {
		t.Fatalf("baseline has fields outside the pinned schema: %v", err)
	}
	if base.Command != "mmdbench -json" {
		t.Fatalf("command = %q", base.Command)
	}
	if base.GoVersion == "" || base.GoMaxProcs < 1 || base.NumCPU < 1 {
		t.Fatalf("bad environment stamp: go_version=%q gomaxprocs=%d num_cpu=%d",
			base.GoVersion, base.GoMaxProcs, base.NumCPU)
	}

	// Every serving benchmark must be present with a real measurement;
	// the ingestion trio and the session benchmarks must carry their
	// headline extras.
	required := []string{
		"GuardedAdmission/rescan", "GuardedAdmission/ledger",
		"CatalogAdmission/isolated", "CatalogAdmission/shared",
		"OnlinePolicySweep/rescan", "OnlinePolicySweep/ledger",
		"ClusterSerial", "ClusterSharded", "ClusterAck",
		"ClusterCatalog/isolated", "ClusterCatalog/shared",
		"StreamIngest/stream", "StreamIngest/batch16", "StreamIngest/single",
	}
	for _, name := range required {
		rec, ok := base.Benchmarks[name]
		if !ok {
			t.Fatalf("benchmark %q missing from baseline", name)
		}
		if rec.Iterations < 1 || rec.NsPerOp <= 0 {
			t.Fatalf("benchmark %q: iterations=%d ns_per_op=%v", name, rec.Iterations, rec.NsPerOp)
		}
	}
	for _, name := range []string{"StreamIngest/stream", "StreamIngest/batch16", "StreamIngest/single"} {
		if rec := base.Benchmarks[name]; rec.EventsPerSec <= 0 {
			t.Fatalf("benchmark %q: events_per_sec=%v", name, rec.EventsPerSec)
		}
	}

	// The generator-workload section: both skewed ingestion runs must be
	// present with real measurements, so the baseline always records how
	// the serving path handles non-uniform traffic.
	for _, name := range []string{"zipf-flash", "diurnal"} {
		rec, ok := base.Workloads[name]
		if !ok {
			t.Fatalf("workload %q missing from baseline", name)
		}
		if rec.Iterations < 1 || rec.NsPerOp <= 0 || rec.EventsPerSec <= 0 {
			t.Fatalf("workload %q: iterations=%d ns_per_op=%v events_per_sec=%v",
				name, rec.Iterations, rec.NsPerOp, rec.EventsPerSec)
		}
	}

	// The durability section: the WAL-off reference, one complete
	// measurement per sync policy in hardness order, and internally
	// consistent ratios. The checked-in baseline (no override path) is
	// additionally the acceptance record for the durability subsystem:
	// group commit must preserve at least 70% of WAL-off throughput
	// wherever the committer's fsync can overlap the apply loop — i.e.
	// any host with more than one CPU. A single-CPU host cannot overlap
	// anything: the device flush stalls the serving path's only core
	// (measured on the CI host: a tight fdatasync loop costs ~40% of
	// guest CPU in hypervisor steal), so the bar there is the measured
	// single-core floor, 0.45 — low enough to tolerate flush jitter,
	// high enough to catch a real regression (an unbatched fsync-per-ack
	// policy lands near 0.05).
	if base.Durability == nil {
		t.Fatal("durability section missing")
	}
	dur := base.Durability
	if dur.WALOffEventsPerSec <= 0 {
		t.Fatalf("durability: wal_off_events_per_sec=%v", dur.WALOffEventsPerSec)
	}
	if dur.Note == "" {
		t.Fatal("durability: note missing")
	}
	wantSync := []string{"none", "interval", "batch"}
	if len(dur.SyncPolicies) != len(wantSync) {
		t.Fatalf("durability: %d sync policies, want %d", len(dur.SyncPolicies), len(wantSync))
	}
	for i, rec := range dur.SyncPolicies {
		if rec.Sync != wantSync[i] {
			t.Fatalf("durability[%d]: sync=%q, want %q", i, rec.Sync, wantSync[i])
		}
		if rec.Iterations < 1 || rec.NsPerOp <= 0 || rec.EventsPerSec <= 0 {
			t.Fatalf("durability[%d]: incomplete measurement %+v", i, rec)
		}
		want := rec.EventsPerSec / dur.WALOffEventsPerSec
		if diff := rec.RatioVsOff - want; diff < -1e-9 || diff > 1e-9 {
			t.Fatalf("durability[%d]: ratio_vs_off=%v inconsistent with events_per_sec (want %v)", i, rec.RatioVsOff, want)
		}
		if os.Getenv("BENCH_SERVING_PATH") == "" && rec.Sync == "batch" {
			bar := 0.70
			if base.NumCPU == 1 {
				bar = 0.45
			}
			if rec.RatioVsOff < bar {
				t.Fatalf("durability: sync=batch ratio_vs_off=%v below the %.2f acceptance bar (num_cpu=%d)",
					rec.RatioVsOff, bar, base.NumCPU)
			}
		}
	}

	// The scaling curve: the full shard axis must be covered, the
	// GOMAXPROCS axis must extend past 1, and every cell must be a
	// complete measurement with ordered quantiles.
	if len(base.Saturation) == 0 {
		t.Fatal("saturation section empty")
	}
	shardsSeen := map[int]bool{}
	procsAbove1 := false
	for i, pt := range base.Saturation {
		if pt.Shards < 1 || pt.GoMaxProcs < 1 || pt.Submitters < 1 || pt.Events < 1 {
			t.Fatalf("saturation[%d]: incomplete cell %+v", i, pt)
		}
		if pt.EventsPerSec <= 0 {
			t.Fatalf("saturation[%d]: events_per_sec=%v", i, pt.EventsPerSec)
		}
		if pt.AckP50Ms <= 0 || pt.AckP99Ms < pt.AckP50Ms {
			t.Fatalf("saturation[%d]: quantiles p50=%v p99=%v", i, pt.AckP50Ms, pt.AckP99Ms)
		}
		shardsSeen[pt.Shards] = true
		if pt.GoMaxProcs > 1 {
			procsAbove1 = true
		}
	}
	for _, s := range []int{1, 2, 4, 8} {
		if !shardsSeen[s] {
			t.Fatalf("saturation curve missing shards=%d", s)
		}
	}
	if !procsAbove1 {
		t.Fatal("saturation curve has no GOMAXPROCS>1 cell")
	}
}
