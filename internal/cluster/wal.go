package cluster

// Durability subsystem (serving API v5): per-shard write-ahead
// logging, checkpointed recovery, and live resharding.
//
// # Two log planes
//
// The fleet's durable history is written on two planes, because the
// fleet has two serialization orders that cannot be derived from each
// other:
//
//   - The event plane: each shard worker appends one record per
//     applied event (arrival, departure, churn, resolve) to its own
//     segment, at apply time, before the result is delivered. The
//     record carries the event exactly as applied — including the
//     catalog cost scale and origin-payer election the admission ran
//     under — stamped with a globally unique sequence number.
//   - The registry plane: the catalog registry's owner goroutine logs
//     every acquisition and settlement to its own segment, in its own
//     serialization order. This plane exists because registry state is
//     not a function of per-shard event order: the eviction gate
//     counts in-flight acquisitions (a release while an acquisition is
//     pending must NOT evict), and per-shard logs lose exactly that
//     interleaving. See internal/catalog's walog.go.
//
// Recovery feeds the event plane back through the normal worker ingest
// path (global sequence order, which preserves every per-tenant
// suborder) with catalog settlements suppressed, and replays the
// registry plane directly into the owner — re-deriving every quote and
// verifying it against the logged one. After a torn crash the two
// planes may disagree about the final few references; recovery drains
// dangling acquisitions and reconciles held-versus-holders through the
// normal (logged) settlement path, so the log itself records the
// repair and every future replay reproduces it.
//
// # Checkpoints fence, they do not truncate
//
// A checkpoint quiesces the fleet (the same barrier Snapshot uses,
// under the write lock so no submission is in flight), renders the
// per-tenant tables and the catalog, writes the render into a manifest
// that fences the log at the current sequence number, and rotates
// every writer to a fresh segment generation. Recovery replays from
// genesis and byte-compares its state against each fence it crosses —
// the manifest is a verification artifact, not a restore point.
// History is deliberately not truncated: tenant policy state is an
// order-sensitive accumulation (allocator loads, ledger sums, phase
// restarts), so a faithful restore-from-snapshot would have to
// serialize every policy internals; replay-from-genesis needs nothing
// but the event codec and is exactly as deterministic as the serving
// path itself (the shard-count-invariance contract).
//
// # Resharding
//
// Reshard(n) builds a shadow cluster with the new layout and replays
// the log into it while the old layout keeps serving; the cutover
// quiesces the old fleet once, replays the tail, verifies the shadow
// renders byte-identical, rotates the log to the new writer set, and
// swaps the layouts — make-before-break, with the write lock held only
// for the tail.

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/catalog"
	"repro/internal/wal"
)

// WALOptions configures the durability subsystem (Options.WAL).
type WALOptions struct {
	// Dir is the log directory (created if absent; must not already
	// hold a log — use Recover for that).
	Dir string
	// Sync is the durability policy: wal.SyncNone, wal.SyncInterval,
	// or wal.SyncBatch (group commit — an acknowledged event is
	// durable; the default zero value is SyncNone).
	Sync wal.SyncPolicy
	// SyncInterval is the background fsync cadence under SyncInterval
	// (default 50ms).
	SyncInterval time.Duration
	// CheckpointEvery takes an automatic checkpoint after roughly
	// every N logged records (0 disables automatic checkpoints;
	// explicit Checkpoint calls always work).
	CheckpointEvery int
	// FS opens segment files. Nil means the real filesystem; chaos
	// tests inject fault-scripted filesystems (internal/chaos) to
	// exercise latched fsync errors and torn tails without
	// hand-crafting corrupt segments.
	FS wal.FS
}

// ErrNoWAL reports a durability operation (Checkpoint, Reshard,
// Recover) on a cluster built without Options.WAL.
var ErrNoWAL = fmt.Errorf("cluster: no WAL configured")

// RecoveryReport summarizes what Recover rebuilt.
type RecoveryReport struct {
	// Events and CatalogOps count replayed event-plane and
	// registry-plane records.
	Events     int `json:"events"`
	CatalogOps int `json:"catalog_ops"`
	// MaxSeq is the highest sequence number replayed.
	MaxSeq uint64 `json:"max_seq"`
	// CheckpointGen is the newest checkpoint generation whose manifest
	// render the replayed state was verified against (0 when the log
	// had no checkpoint); CheckpointVerified reports the byte-compare
	// passed. Replay pauses at every fence in order and verifies each
	// one — FencesVerified counts them.
	CheckpointGen      int  `json:"checkpoint_gen,omitempty"`
	CheckpointVerified bool `json:"checkpoint_verified"`
	FencesVerified     int  `json:"fences_verified,omitempty"`
	// TruncatedSegments lists segment files whose torn final line was
	// truncated away (sorted).
	TruncatedSegments []string `json:"truncated_segments,omitempty"`
	// DanglingReleased counts in-flight acquisitions the crash left
	// unbalanced, drained through the normal settlement path;
	// Reconciled counts held-versus-holders repairs across the two
	// planes' torn window.
	DanglingReleased int `json:"dangling_released,omitempty"`
	Reconciled       int `json:"reconciled,omitempty"`
	// Gen is the active segment generation after recovery (the
	// "recovered" checkpoint opens it).
	Gen int `json:"gen"`
	// SessionWatermarks maps each resumable ingestion session id found
	// in the log to its highest replayed client sequence number (see
	// Event.Session). The serving layer seeds its dedup table from
	// this map, so a client resuming across a server crash replays its
	// unacked events and every one the log already holds is applied at
	// most once.
	SessionWatermarks map[string]uint64 `json:"session_watermarks,omitempty"`
}

// walStart opens a fresh durability log for a newly built cluster
// (the New path; Recover has its own sequence).
func (c *Cluster) walStart() error {
	l, err := wal.Open(c.walLogOptions())
	if err != nil {
		return err
	}
	if !l.Empty() {
		_ = l.Close(nil)
		return fmt.Errorf("cluster: WAL directory %q already holds a log — use Recover", c.opts.WAL.Dir)
	}
	if err := l.Begin(wal.ShardWriters(len(c.shards), c.catalog != nil)); err != nil {
		_ = l.Close(nil)
		return err
	}
	c.wlog = l
	if err := c.attachAppenders(); err != nil {
		return err
	}
	c.goLive()
	c.startCheckpointLoop()
	return nil
}

func (c *Cluster) walLogOptions() wal.Options {
	w := c.opts.WAL
	return wal.Options{Dir: w.Dir, Sync: w.Sync, SyncInterval: w.SyncInterval, FS: w.FS}
}

// attachAppenders points every shard worker (and the registry logger)
// at the active generation's appenders. Called only while the workers
// are provably idle: at construction before any traffic, and at
// checkpoint/reshard rotation under the write lock after the barrier
// drained — the next channel receive publishes the new pointers. The
// catalog appender goes through the shared atomic pointer, so the
// rotation repoints the live workers even when they belong to the
// other struct of a primary/shadow pair (see Cluster.walCatApp).
func (c *Cluster) attachAppenders() error {
	for _, sh := range c.shards {
		sh.wal = c.wlog.Appender(wal.ShardWriter(sh.id))
	}
	if c.catalog != nil {
		c.walCatApp.Store(c.wlog.Appender(wal.CatalogWriter))
		if err := c.catalog.SetLogger(&catalogWALLogger{c: c}); err != nil {
			return err
		}
	}
	return nil
}

// goLive flips a replay-mode cluster into logging mode. Workers must
// be idle (replay fed and barrier-drained, no external traffic yet).
func (c *Cluster) goLive() {
	for _, sh := range c.shards {
		sh.replay = false
	}
	c.walLive = true
}

// logEvent appends one applied event to the shard's segment, stamping
// the next global sequence number, and kicks the automatic checkpoint
// when the count crosses the configured cadence. Called on the worker
// goroutine, before the event's result is delivered.
func (c *Cluster) logEvent(sh *shard, ev *Event) {
	rec := wal.Record{
		Seq:     c.walSeq.Add(1),
		Type:    eventTypeToken(ev.Type),
		Tenant:  ev.Tenant,
		Stream:  ev.Stream,
		User:    ev.User,
		Install: ev.Install,
		Catalog: string(ev.CatalogID),
		Scale:   ev.CostScale,
		Origin:  ev.originPayer,
		Sess:    ev.Session,
		CSeq:    ev.SessionSeq,
	}
	if err := sh.wal.Append(&rec); err != nil && sh.err == nil {
		sh.err = err
	}
	c.kickCheckpoint(rec.Seq)
}

// kickCheckpoint nudges the checkpoint goroutine (non-blocking; a kick
// while one is pending is absorbed).
func (c *Cluster) kickCheckpoint(seq uint64) {
	if c.ckptKick == nil || c.ckptEvery == 0 || seq%c.ckptEvery != 0 {
		return
	}
	select {
	case c.ckptKick <- struct{}{}:
	default:
	}
}

// startCheckpointLoop runs the automatic-checkpoint goroutine (a
// no-op unless CheckpointEvery is set).
func (c *Cluster) startCheckpointLoop() {
	if c.opts.WAL.CheckpointEvery <= 0 {
		return
	}
	c.ckptKick = make(chan struct{}, 1)
	c.ckptQuit = make(chan struct{})
	c.ckptDone = make(chan struct{})
	go func() {
		defer close(c.ckptDone)
		for {
			select {
			case <-c.ckptQuit:
				return
			case <-c.ckptKick:
				if _, err := c.Checkpoint("auto"); err != nil {
					// ErrClosed at shutdown, or a latched I/O error the
					// next explicit operation will surface.
					return
				}
			}
		}
	}()
}

// eventTypeToken maps a cluster event type onto the shared codec
// vocabulary (internal/wal).
func eventTypeToken(t EventType) string {
	switch t {
	case EventStreamArrival:
		return wal.TypeStreamArrival
	case EventStreamDeparture:
		return wal.TypeStreamDeparture
	case EventUserLeave:
		return wal.TypeUserLeave
	case EventUserJoin:
		return wal.TypeUserJoin
	case EventResolve:
		return wal.TypeResolve
	}
	return ""
}

// eventFromRecord rebuilds the as-applied event from its log record.
func eventFromRecord(r *wal.Record) (Event, error) {
	var typ EventType
	switch r.Type {
	case wal.TypeStreamArrival:
		typ = EventStreamArrival
	case wal.TypeStreamDeparture:
		typ = EventStreamDeparture
	case wal.TypeUserLeave:
		typ = EventUserLeave
	case wal.TypeUserJoin:
		typ = EventUserJoin
	case wal.TypeResolve:
		typ = EventResolve
	default:
		return Event{}, fmt.Errorf("cluster: replay: record seq %d: unexpected type %q", r.Seq, r.Type)
	}
	return Event{
		Tenant:      r.Tenant,
		Type:        typ,
		Stream:      r.Stream,
		User:        r.User,
		Install:     r.Install,
		CostScale:   r.Scale,
		CatalogID:   catalog.ID(r.Catalog),
		originPayer: r.Origin,
	}, nil
}

// settleOpToken / settleOpFromToken map registry settlement ops onto
// the shared codec vocabulary.
func settleOpToken(op catalog.SettleOp) string {
	switch op {
	case catalog.SettleCommit:
		return wal.OpCommit
	case catalog.SettleRecharge:
		return wal.OpRecharge
	case catalog.SettleRelease:
		return wal.OpRelease
	case catalog.SettleReleasePending:
		return wal.OpReleasePending
	case catalog.SettleAdopt:
		return wal.OpAdopt
	}
	return ""
}

func settleOpFromToken(s string) (catalog.SettleOp, error) {
	switch s {
	case wal.OpCommit:
		return catalog.SettleCommit, nil
	case wal.OpRecharge:
		return catalog.SettleRecharge, nil
	case wal.OpRelease:
		return catalog.SettleRelease, nil
	case wal.OpReleasePending:
		return catalog.SettleReleasePending, nil
	case wal.OpAdopt:
		return catalog.SettleAdopt, nil
	}
	return 0, fmt.Errorf("cluster: replay: unknown settle op %q", s)
}

// catalogWALLogger is the registry-plane appender: installed on the
// registry owner goroutine, it stamps each registry operation with the
// shared sequence counter and appends it to the "catalog" segment. It
// loads the appender from the shared pointer per append, so a rotation
// by either struct of a primary/shadow pair takes effect immediately.
type catalogWALLogger struct {
	c *Cluster
}

func (l *catalogWALLogger) LogAcquire(tenant int, id catalog.ID, scale float64, origin bool) {
	rec := wal.Record{
		Seq:     l.c.walSeq.Add(1),
		Type:    wal.TypeCatalogAcquire,
		Tenant:  tenant,
		Catalog: string(id),
		Scale:   scale,
		Origin:  origin,
	}
	_ = l.c.walCatApp.Load().Append(&rec) // latched; surfaced at commit/rotate/close
	l.c.kickCheckpoint(rec.Seq)
}

func (l *catalogWALLogger) LogSettle(s catalog.Settlement) {
	rec := wal.Record{
		Seq:     l.c.walSeq.Add(1),
		Type:    wal.TypeCatalogSettle,
		Tenant:  s.Tenant,
		Catalog: string(s.ID),
		Op:      settleOpToken(s.Op),
		Full:    s.Full,
		Charged: s.Charged,
		Origin:  s.Origin,
	}
	_ = l.c.walCatApp.Load().Append(&rec)
	l.c.kickCheckpoint(rec.Seq)
}

// manifestFor renders a quiesced fleet snapshot into a checkpoint
// manifest fencing the log at the current sequence number.
func (c *Cluster) manifestFor(fs *FleetSnapshot, reason string) wal.Manifest {
	m := wal.Manifest{
		Seq:           c.walSeq.Load(),
		Shards:        len(c.shards),
		Tenants:       len(c.tenants),
		Reason:        reason,
		TenantsRender: fs.RenderTenants(),
	}
	if fs.Catalog != nil {
		m.CatalogRender = fs.Catalog.Render()
	}
	return m
}

// Checkpoint quiesces the fleet (write-lock barrier: every queued
// event applies, every pending acknowledgement delivers, nothing new
// can enqueue), writes a manifest carrying the rendered per-tenant and
// catalog state as the recovery verification artifact, and rotates
// every writer to a fresh segment generation. reason is recorded in
// the manifest ("auto" for the cadence-driven ones).
func (c *Cluster) Checkpoint(reason string) (*wal.Manifest, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if c.wlog == nil || !c.walLive {
		return nil, ErrNoWAL
	}
	fs, err := c.barrierSnapshot()
	if err != nil {
		return nil, err
	}
	m := c.manifestFor(fs, reason)
	if err := c.wlog.Rotate(&m, wal.ShardWriters(len(c.shards), c.catalog != nil)); err != nil {
		return nil, err
	}
	if err := c.attachAppenders(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Recover rebuilds a fleet from a durability log directory: it loads
// every segment (truncating torn final lines — the crash signature),
// replays the event plane through the normal worker ingest path and
// the registry plane through the owner, pauses at every checkpoint
// fence to verify the rebuilt state against its manifest's renders
// (so a divergence is caught at the first fence after it), repairs the torn
// window between the two planes, and goes live on a fresh segment
// generation opened by a "recovered" checkpoint. tenants must be the
// same configs (same instances, same policy construction) the crashed
// cluster was built with — replay determinism is the caller's contract
// exactly as it is for shard-count invariance; opts.Shards may differ
// freely.
func Recover(tenants []TenantConfig, opts Options) (*Cluster, *RecoveryReport, error) {
	if opts.WAL == nil || opts.WAL.Dir == "" {
		return nil, nil, ErrNoWAL
	}
	c, err := newCluster(tenants, opts, true)
	if err != nil {
		return nil, nil, err
	}
	l, err := wal.Open(c.walLogOptions())
	if err != nil {
		c.Close()
		return nil, nil, err
	}
	c.wlog = l
	replay, err := l.ReadAll(true)
	if err != nil {
		c.Close()
		return nil, nil, err
	}
	rep := &RecoveryReport{MaxSeq: replay.MaxSeq}
	for f := range replay.Truncated {
		rep.TruncatedSegments = append(rep.TruncatedSegments, f)
	}
	sort.Strings(rep.TruncatedSegments)
	for i := range replay.Records {
		r := &replay.Records[i]
		if r.Sess != "" && r.CSeq > 0 {
			if rep.SessionWatermarks == nil {
				rep.SessionWatermarks = make(map[string]uint64)
			}
			if r.CSeq > rep.SessionWatermarks[r.Sess] {
				rep.SessionWatermarks[r.Sess] = r.CSeq
			}
		}
	}

	fail := func(err error) (*Cluster, *RecoveryReport, error) {
		c.Close()
		return nil, nil, err
	}
	// Replay from genesis, pausing at every checkpoint fence to
	// byte-compare the rebuilt renders against its manifest — each
	// fence is a verification waypoint, so corruption in any window is
	// caught at the first fence after it, not only if it survives to
	// the final render.
	fence := uint64(0)
	for i := range replay.Manifests {
		m := &replay.Manifests[i]
		if m.Seq > replay.MaxSeq {
			return fail(fmt.Errorf("cluster: recover: log ends at seq %d, before checkpoint fence %d (segments missing)",
				replay.MaxSeq, m.Seq))
		}
		ev, cat, err := c.feedReplay(replay.Records, fence, m.Seq)
		rep.Events, rep.CatalogOps = rep.Events+ev, rep.CatalogOps+cat
		if err != nil {
			return fail(err)
		}
		if err := c.verifyManifest(m); err != nil {
			return fail(err)
		}
		rep.CheckpointGen, rep.CheckpointVerified = m.Gen, true
		rep.FencesVerified++
		fence = m.Seq
	}
	ev, cat, err := c.feedReplay(replay.Records, fence, ^uint64(0))
	rep.Events, rep.CatalogOps = rep.Events+ev, rep.CatalogOps+cat
	if err != nil {
		return fail(err)
	}

	c.walSeq.Store(replay.MaxSeq)
	if err := l.Begin(wal.ShardWriters(len(c.shards), c.catalog != nil)); err != nil {
		return fail(err)
	}
	if err := c.attachAppenders(); err != nil {
		return fail(err)
	}
	c.goLive()
	if c.catalog != nil {
		// Drain the acquisitions the crash left in flight — through the
		// normal, logged settlement path, so the log itself records the
		// drain and future replays reproduce it (including the
		// evictions it fires). Then reconcile the torn window between
		// the planes: an event record may have been durable while its
		// settlement was still buffered, or vice versa.
		dang, err := c.catalog.DanglingPending()
		if err != nil {
			return fail(err)
		}
		if len(dang) > 0 {
			if err := c.catalog.SettleBatch(dang, nil); err != nil {
				return fail(err)
			}
			rep.DanglingReleased = len(dang)
		}
		n, err := c.reconcileCatalog()
		if err != nil {
			return fail(err)
		}
		rep.Reconciled = n
	}
	c.startCheckpointLoop()
	m, err := c.Checkpoint("recovered")
	if err != nil {
		return fail(err)
	}
	rep.Gen = m.Gen + 1
	return c, rep, nil
}

// verifyManifest byte-compares the cluster's current (barriered) state
// renders against a checkpoint manifest — the recovery verification.
func (c *Cluster) verifyManifest(m *wal.Manifest) error {
	if m.Tenants != len(c.tenants) {
		return fmt.Errorf("cluster: recover: log has %d tenants, config has %d", m.Tenants, len(c.tenants))
	}
	fs, err := c.Snapshot()
	if err != nil {
		return err
	}
	if got := fs.RenderTenants(); got != m.TenantsRender {
		return fmt.Errorf("cluster: recover: tenant state diverges from checkpoint gen %d (%s) at seq %d",
			m.Gen, m.Reason, m.Seq)
	}
	var catRender string
	if fs.Catalog != nil {
		catRender = fs.Catalog.Render()
	}
	if catRender != m.CatalogRender {
		return fmt.Errorf("cluster: recover: catalog state diverges from checkpoint gen %d (%s) at seq %d",
			m.Gen, m.Reason, m.Seq)
	}
	return nil
}

// feedReplay drives log records with from < Seq <= to into the
// cluster: event-plane records go through the shard channels
// (fire-and-forget, exactly the normal ingest path), registry-plane
// records replay synchronously into the owner. The final barrier
// (Snapshot) is the caller's job.
func (c *Cluster) feedReplay(recs []wal.Record, from, to uint64) (events, catOps int, err error) {
	for i := range recs {
		r := &recs[i]
		if r.Seq <= from || r.Seq > to {
			continue
		}
		switch r.Type {
		case wal.TypeCatalogAcquire:
			if c.catalog == nil {
				return events, catOps, fmt.Errorf("cluster: replay: catalog record seq %d without a catalog", r.Seq)
			}
			if err := c.catalog.ReplayAcquire(catalog.ID(r.Catalog), r.Tenant, r.Scale, r.Origin); err != nil {
				return events, catOps, err
			}
			catOps++
		case wal.TypeCatalogSettle:
			if c.catalog == nil {
				return events, catOps, fmt.Errorf("cluster: replay: catalog record seq %d without a catalog", r.Seq)
			}
			op, err := settleOpFromToken(r.Op)
			if err != nil {
				return events, catOps, err
			}
			if err := c.catalog.ReplaySettle(catalog.Settlement{
				Op: op, ID: catalog.ID(r.Catalog), Tenant: r.Tenant,
				Full: r.Full, Charged: r.Charged, Origin: r.Origin,
			}); err != nil {
				return events, catOps, err
			}
			catOps++
		default:
			ev, err := eventFromRecord(r)
			if err != nil {
				return events, catOps, err
			}
			if ev.Tenant < 0 || ev.Tenant >= len(c.tenants) {
				return events, catOps, fmt.Errorf("cluster: replay: record seq %d: tenant %d out of range [0,%d)",
					r.Seq, ev.Tenant, len(c.tenants))
			}
			c.shards[c.shardOf[ev.Tenant]].ch <- message{ev: ev}
			events++
		}
	}
	if _, err := c.Snapshot(); err != nil {
		return events, catOps, err
	}
	return events, catOps, nil
}

// contiguousSeqPrefix returns the highest seq S such that every
// sequence number from the first record's up to S is present in recs
// (which are sorted by Seq) or permanently absent. Records past the
// first live gap are left for a later quiesced read — writers flush
// independently, so a missing seq above the fence may still be
// buffered in a writer. A gap entirely at or below fence (the newest
// checkpoint's quiesced barrier) can never be filled — every seq the
// fence covers was already durable when it was written — so the scan
// continues past it instead of stranding the prefix behind history.
func contiguousSeqPrefix(recs []wal.Record, fence uint64) uint64 {
	if len(recs) == 0 {
		return 0
	}
	s := recs[0].Seq
	for _, r := range recs[1:] {
		if r.Seq != s+1 && r.Seq-1 > fence {
			break
		}
		s = r.Seq
	}
	return s
}

// reconcileCatalog repairs the torn window between the two log planes
// after a crash: for every (tenant, catalog stream) pair it compares
// the worker-held reference set (event-plane truth — the tenant's
// admissions are what was acknowledged) against the registry's
// confirmed holders (registry-plane truth) and settles the difference
// through the normal, logged path: a held-but-not-holding pair adopts
// a full-price reference, a holding-but-not-held pair releases it.
// Deterministic walk order (tenant ascending, bindings in catalog
// declaration order); a consistent log reconciles nothing.
func (c *Cluster) reconcileCatalog() (int, error) {
	snap := c.catalog.Snapshot()
	holding := make(map[catalog.ID]map[int]bool, len(snap.Entries))
	for _, e := range snap.Entries {
		m := make(map[int]bool, len(e.Holders))
		for _, t := range e.Holders {
			m[t] = true
		}
		holding[e.ID] = m
	}
	var fixes []catalog.Settlement
	for t := range c.tenants {
		held := c.heldCatalog[t]
		for _, cl := range c.catalogLocals[t] {
			switch {
			case held[cl.id] && !holding[cl.id][t]:
				fixes = append(fixes, catalog.Settlement{
					Op: catalog.SettleAdopt, ID: cl.id, Tenant: t,
					Full: c.tenants[t].Instance().StreamCostSum(cl.local),
				})
			case !held[cl.id] && holding[cl.id][t]:
				fixes = append(fixes, catalog.Settlement{Op: catalog.SettleRelease, ID: cl.id, Tenant: t})
			}
		}
	}
	if len(fixes) == 0 {
		return 0, nil
	}
	if err := c.catalog.SettleBatch(fixes, nil); err != nil {
		return 0, err
	}
	return len(fixes), nil
}

// Reshard rebuilds the fleet onto newShards shard workers without
// stopping service: a shadow cluster with the new layout replays the
// durability log while the old layout keeps serving, then a single
// write-locked cutover drains the old fleet, replays the tail,
// verifies the shadow's per-tenant and catalog renders byte-identical
// to the live fleet's, rotates the log to the new writer set, and
// swaps the layouts (make-before-break; the old workers retire after
// the swap). Requires a WAL, and tenants built with the default
// policy (TenantConfig.Policy nil) — a caller-supplied policy object
// cannot be rebuilt by replay.
//
// Results are unchanged by construction — the same shard-count
// invariance the differential tests pin — and the shared global
// sequence keeps every per-tenant order intact across any layout
// change. Concurrent Reshard calls serialize; sessions keep working
// throughout (pinned StreamConns included — their tenant moves shard
// transparently).
func (c *Cluster) Reshard(newShards int) error {
	if newShards <= 0 {
		return fmt.Errorf("cluster: reshard: need at least one shard, got %d", newShards)
	}
	c.reshardMu.Lock()
	defer c.reshardMu.Unlock()

	c.mu.RLock()
	if c.closed {
		c.mu.RUnlock()
		return ErrClosed
	}
	if c.wlog == nil || !c.walLive {
		c.mu.RUnlock()
		return fmt.Errorf("%w (resharding replays the log)", ErrNoWAL)
	}
	for i := range c.cfgs {
		if c.cfgs[i].Policy != nil {
			c.mu.RUnlock()
			return fmt.Errorf("cluster: reshard: tenant %d has a caller-supplied policy, which replay cannot rebuild", i)
		}
	}
	cur := len(c.shards)
	c.mu.RUnlock()
	if newShards > len(c.cfgs) {
		newShards = len(c.cfgs)
	}
	if newShards == cur {
		return nil
	}

	// Phase 1 — bulk: replay everything logged so far into a shadow
	// cluster with the new layout, while the old one keeps serving.
	// The shadow shares the log, the sequence counter, the catalog
	// appender pointer (so post-cutover rotations by either struct
	// repoint the live workers), and the checkpoint kick channel; it
	// gets appenders only at cutover.
	opts := c.opts
	opts.Shards = newShards
	shadow, err := newCluster(c.cfgs, opts, true)
	if err != nil {
		return err
	}
	shadow.wlog = c.wlog
	shadow.walSeq = c.walSeq
	shadow.walCatApp = c.walCatApp
	shadow.ckptKick = c.ckptKick
	discard := func(err error) error {
		for _, sh := range shadow.shards {
			close(sh.ch)
		}
		for _, sh := range shadow.shards {
			<-sh.done
		}
		if shadow.catalog != nil {
			shadow.catalog.Close()
		}
		return err
	}
	if err := c.wlog.FlushAll(); err != nil {
		return discard(err)
	}
	bulk, err := c.wlog.ReadAll(false)
	if err != nil {
		return discard(err)
	}
	// Feed only the contiguous sequence prefix: writers flush
	// independently, so a live read can hold seq N while N-1 is still
	// buffered in another writer — feeding past the first gap and then
	// cutting the tail at MaxSeq would lose the gap forever. Everything
	// after the prefix is replayed by the quiesced tail read below.
	// Gaps at or below the newest checkpoint fence are permanent (every
	// seq the fence covers was durable at its quiesced barrier, so a
	// missing one can never be filled in — e.g. a torn record a prior
	// recovery truncated whose seq was never re-issued) and must not end
	// the prefix: stalling on one would push the whole replay into the
	// write-locked tail phase.
	fence := uint64(0)
	if lm := bulk.LastManifest(); lm != nil {
		fence = lm.Seq
	}
	fed := contiguousSeqPrefix(bulk.Records, fence)
	if _, _, err := shadow.feedReplay(bulk.Records, 0, fed); err != nil {
		return discard(err)
	}

	// Phase 2 — cutover, under the write lock: quiesce the old fleet,
	// replay the tail the bulk pass missed, verify, rotate, swap.
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return discard(ErrClosed)
	}
	fsOld, err := c.barrierSnapshot()
	if err != nil {
		c.mu.Unlock()
		return discard(err)
	}
	if err := c.wlog.FlushAll(); err != nil {
		c.mu.Unlock()
		return discard(err)
	}
	tail, err := c.wlog.ReadAll(false)
	if err != nil {
		c.mu.Unlock()
		return discard(err)
	}
	if _, _, err := shadow.feedReplay(tail.Records, fed, ^uint64(0)); err != nil {
		c.mu.Unlock()
		return discard(err)
	}
	fsNew, err := shadow.Snapshot()
	if err != nil {
		c.mu.Unlock()
		return discard(err)
	}
	if got, want := fsNew.RenderTenants(), fsOld.RenderTenants(); got != want {
		c.mu.Unlock()
		return discard(fmt.Errorf("cluster: reshard: shadow tenant state diverges from live fleet — cutover aborted"))
	}
	var oldCat, newCat string
	if fsOld.Catalog != nil {
		oldCat = fsOld.Catalog.Render()
	}
	if fsNew.Catalog != nil {
		newCat = fsNew.Catalog.Render()
	}
	if oldCat != newCat {
		c.mu.Unlock()
		return discard(fmt.Errorf("cluster: reshard: shadow catalog state diverges from live fleet — cutover aborted"))
	}
	m := c.manifestFor(fsOld, "reshard")
	m.Shards = newShards
	if err := c.wlog.Rotate(&m, wal.ShardWriters(newShards, shadow.catalog != nil)); err != nil {
		c.mu.Unlock()
		return discard(err)
	}
	if err := shadow.attachAppenders(); err != nil {
		c.mu.Unlock()
		return discard(err)
	}
	shadow.goLive()
	oldShards, oldCatReg := c.shards, c.catalog
	c.opts.Shards = newShards
	c.tenants = shadow.tenants
	c.shardOf = shadow.shardOf
	c.shards = shadow.shards
	c.catalog = shadow.catalog
	c.catalogLocals = shadow.catalogLocals
	c.catalogByLocal = shadow.catalogByLocal
	c.heldCatalog = shadow.heldCatalog
	for _, sh := range oldShards {
		close(sh.ch)
	}
	c.mu.Unlock()
	for _, sh := range oldShards {
		<-sh.done
	}
	if oldCatReg != nil {
		oldCatReg.Close()
	}
	return nil
}
