package cluster

// Allocation-budget regression tests for the pooled serving hot path.
// The v6 pooling work (recycled completion channels, recycled stream
// entries, scratch buffers in the allocator and guard) made the steady
// states below allocation-free; these tests pin that with
// testing.AllocsPerRun so a stray per-event allocation fails CI rather
// than silently eroding the BENCH_serving.json numbers.

import (
	"context"
	"testing"

	"repro/internal/generator"
)

func allocTestCluster(t *testing.T) *Cluster {
	t.Helper()
	in, err := generator.CableTV{Channels: 20, Gateways: 6, Seed: 401, EgressFraction: 0.25}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	c, err := New([]TenantConfig{{Instance: in}}, Options{Shards: 1, BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// admittedStream probes for a stream the tenant's policy admits (and
// departs it again so the caller starts from a clean slate).
func admittedStream(t *testing.T, c *Cluster) int {
	t.Helper()
	ctx := context.Background()
	for s := 0; s < 20; s++ {
		res, err := c.OfferStream(ctx, 0, s)
		if err != nil {
			t.Fatal(err)
		}
		if res.Accepted {
			if _, err := c.DepartStream(ctx, 0, s); err != nil {
				t.Fatal(err)
			}
			return s
		}
	}
	t.Fatal("no admissible stream")
	return -1
}

// TestSessionSteadyStateAllocationFree pins the pooled session path
// (the ClusterAck benchmark's hot path): once warm, an offer that the
// tenant rejects (already carried) and a departure of a stream it does
// not carry cross the shard queue, settle, and reply without a single
// allocation — the completion channel comes from the pool and goes
// back, and no result payload is built for a no-op.
func TestSessionSteadyStateAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counters are unreliable under -race")
	}
	c := allocTestCluster(t)
	ctx := context.Background()
	s := admittedStream(t, c)
	if res, err := c.OfferStream(ctx, 0, s); err != nil || !res.Accepted {
		t.Fatalf("warmup offer = %+v, %v", res, err)
	}

	if avg := testing.AllocsPerRun(200, func() {
		if _, err := c.OfferStream(ctx, 0, s); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("rejected re-offer allocates %.2f per op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		if _, err := c.DepartStream(ctx, 0, 19); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("no-op departure allocates %.2f per op, want 0", avg)
	}
}

// TestSessionOfferDepartCycleAllocBudget pins the full admit/release
// cycle: the only per-cycle allocations left are the ones that must
// outlive the call (the tenant's retained subscriber list and the
// churn of its sorted stream sets). The budget has slack for exactly
// those; the pre-pooling path spent ~6 allocations on channels and
// result plumbing alone.
func TestSessionOfferDepartCycleAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counters are unreliable under -race")
	}
	c := allocTestCluster(t)
	ctx := context.Background()
	// admittedStream warms one full cycle, growing every slice to its
	// steady capacity.
	s := admittedStream(t, c)
	if avg := testing.AllocsPerRun(200, func() {
		if res, err := c.OfferStream(ctx, 0, s); err != nil || !res.Accepted {
			t.Fatalf("offer = %+v, %v", res, err)
		}
		if res, err := c.DepartStream(ctx, 0, s); err != nil || !res.Removed {
			t.Fatalf("depart = %+v, %v", res, err)
		}
	}); avg > 6 {
		t.Fatalf("offer+depart cycle allocates %.2f per cycle, budget 6", avg)
	}
}

// TestStreamSteadyStateAllocationFree pins the pooled pipelined path
// (the StreamIngest benchmark's cluster-side hot path): a warm
// StreamConn recycles its pending entries and ack channels, so a
// submit+recv of a rejected offer allocates nothing at all.
func TestStreamSteadyStateAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counters are unreliable under -race")
	}
	c := allocTestCluster(t)
	ctx := context.Background()
	s := admittedStream(t, c)
	if res, err := c.OfferStream(ctx, 0, s); err != nil || !res.Accepted {
		t.Fatalf("warmup offer = %+v, %v", res, err)
	}
	sc, err := c.OpenStream(StreamOptions{Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Warm: cycle the window once so the free list is populated (the
	// offers are rejections — the tenant already carries s).
	for i := 0; i < 8; i++ {
		if err := sc.Submit(ctx, Event{Tenant: 0, Type: EventStreamArrival, Stream: s}); err != nil {
			t.Fatal(err)
		}
		if _, err := sc.Recv(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if avg := testing.AllocsPerRun(200, func() {
		if err := sc.Submit(ctx, Event{Tenant: 0, Type: EventStreamArrival, Stream: s}); err != nil {
			t.Fatal(err)
		}
		if res, err := sc.Recv(ctx); err != nil || res.Err != nil {
			t.Fatalf("recv = %+v, %v", res, err)
		}
	}); avg != 0 {
		t.Fatalf("warm stream submit+recv allocates %.2f per op, want 0", avg)
	}
}
