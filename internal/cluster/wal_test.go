package cluster

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/wal"
)

// walCatalogFleet builds a catalog fleet (identity bindings, like
// catalogTestFleet) with the durability log enabled. No Cleanup is
// registered: crash tests abandon the cluster without Close on
// purpose, and closing twice is safe for the ones that do close.
func walCatalogFleet(t *testing.T, n, channels, gateways int, seed int64, shards int,
	model catalog.CostModel, wopts *WALOptions) *Cluster {
	t.Helper()
	cfgs := walTenantConfigs(t, n, channels, gateways, seed)
	c, err := New(cfgs, walFleetOptions(n, channels, shards, model, wopts))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func walTenantConfigs(t *testing.T, n, channels, gateways int, seed int64) []TenantConfig {
	t.Helper()
	// Same construction as tenantInstances: regenerating from the seed
	// stands in for the restarted process rebuilding its static config.
	return tenantInstances(t, n, channels, gateways, seed)
}

func walFleetOptions(n, channels, shards int, model catalog.CostModel, wopts *WALOptions) Options {
	opts := Options{Shards: shards, BatchSize: 8, WAL: wopts}
	if model != nil {
		bindings := catalog.IdentityBindings(n, channels, func(s int) catalog.ID {
			return catalog.ID(fmt.Sprintf("s-%03d", s))
		})
		opts.Catalog = &CatalogOptions{Streams: bindings, CostModel: model}
	}
	return opts
}

// driveCatalogSchedule drives an interleaved offer/depart schedule
// through the catalog surface, with a churn and a resolve sprinkled in
// so every logged event type appears.
func driveCatalogSchedule(t *testing.T, c *Cluster, steps []catalogStep, salt int) {
	t.Helper()
	ctx := context.Background()
	for i, st := range steps {
		id := catalog.ID(fmt.Sprintf("s-%03d", st.stream))
		var err error
		if st.depart {
			_, err = c.DepartCatalogStream(ctx, st.tenant, id)
		} else {
			_, err = c.OfferCatalogStream(ctx, st.tenant, id)
		}
		if err != nil {
			t.Fatalf("schedule step %d (%+v): %v", i, st, err)
		}
		switch (i + salt) % 13 {
		case 3:
			if _, err := c.UserLeave(ctx, st.tenant, 1); err != nil {
				t.Fatalf("schedule step %d churn: %v", i, err)
			}
		case 7:
			if _, err := c.UserJoin(ctx, st.tenant, 1); err != nil {
				t.Fatalf("schedule step %d churn: %v", i, err)
			}
		case 11:
			if _, err := c.Resolve(ctx, st.tenant, ResolveOptions{}); err != nil {
				t.Fatalf("schedule step %d resolve: %v", i, err)
			}
		}
	}
}

// fleetRenders quiesces the fleet and returns its differential
// artifacts: the shard-count-invariant per-tenant table and the
// catalog render.
func fleetRenders(t *testing.T, c *Cluster) (tenants, cat string) {
	t.Helper()
	fs, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if fs.Catalog != nil {
		cat = fs.Catalog.Render()
	}
	return fs.RenderTenants(), cat
}

// TestWALRecoveryBitIdentical is the tentpole acceptance check: a
// fleet that crashes (abandoned without Close — every acknowledged
// event is durable under SyncBatch) and recovers from its log must
// render per-tenant tables and catalog state bit-identical to the
// never-crashed cluster — at shard counts 1, 2, 4, 8, under both cost
// models, recovering into a different shard count than it crashed
// with, and staying identical under continued traffic.
func TestWALRecoveryBitIdentical(t *testing.T) {
	const tenants, channels, gateways, seed = 5, 12, 5, 9100
	models := []struct {
		name  string
		model catalog.CostModel
	}{
		{"Isolated", catalog.Isolated{}},
		{"SharedOrigin", catalog.SharedOrigin{ReplicationFraction: 0.25}},
	}
	steps := catalogScheduleFor(tenants, channels, 31)
	half := len(steps) / 2
	for _, m := range models {
		for si, shards := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("%s/shards=%d", m.name, shards), func(t *testing.T) {
				// The never-crashed control fleet.
				control := walCatalogFleet(t, tenants, channels, gateways, seed, shards, m.model, nil)
				defer control.Close()
				driveCatalogSchedule(t, control, steps[:half], 0)

				// The fleet that will crash, WAL on, group commit.
				dir := t.TempDir()
				crashed := walCatalogFleet(t, tenants, channels, gateways, seed, shards, m.model,
					&WALOptions{Dir: dir, Sync: wal.SyncBatch})
				driveCatalogSchedule(t, crashed, steps[:half], 0)

				wantTen, wantCat := fleetRenders(t, control)
				gotTen, gotCat := fleetRenders(t, crashed)
				if gotTen != wantTen || gotCat != wantCat {
					t.Fatalf("WAL-on fleet diverged from control before the crash:\n--- control\n%s%s\n--- wal\n%s%s",
						wantTen, wantCat, gotTen, gotCat)
				}
				// Crash: abandon without Close. Everything acknowledged is
				// already on disk (SyncBatch commits before each ack).

				// Recover into a different shard count than the crash's.
				recShards := []int{2, 4, 8, 1}[si]
				rec, rep, err := Recover(walTenantConfigs(t, tenants, channels, gateways, seed),
					walFleetOptions(tenants, channels, recShards, m.model,
						&WALOptions{Dir: dir, Sync: wal.SyncBatch}))
				if err != nil {
					t.Fatalf("Recover: %v", err)
				}
				defer rec.Close()
				if rep.Events == 0 || rep.CatalogOps == 0 || rep.MaxSeq == 0 {
					t.Fatalf("empty recovery report: %+v", rep)
				}
				if rep.DanglingReleased != 0 || rep.Reconciled != 0 {
					t.Fatalf("quiesced crash should need no repair: %+v", rep)
				}
				gotTen, gotCat = fleetRenders(t, rec)
				if gotTen != wantTen || gotCat != wantCat {
					t.Fatalf("recovered state diverges:\n--- want\n%s%s\n--- got\n%s%s",
						wantTen, wantCat, gotTen, gotCat)
				}

				// Continued traffic on both fleets stays identical.
				driveCatalogSchedule(t, control, steps[half:], 1)
				driveCatalogSchedule(t, rec, steps[half:], 1)
				wantTen, wantCat = fleetRenders(t, control)
				gotTen, gotCat = fleetRenders(t, rec)
				if gotTen != wantTen || gotCat != wantCat {
					t.Fatalf("post-recovery traffic diverges:\n--- want\n%s%s\n--- got\n%s%s",
						wantTen, wantCat, gotTen, gotCat)
				}
				if err := rec.Close(); err != nil {
					t.Fatalf("closing recovered fleet: %v", err)
				}
			})
		}
	}
}

// TestWALCheckpointVerification pins the fence mechanics: recovery
// crossing a mid-log checkpoint byte-compares its replayed state
// against the manifest render, and a clean close's manifest verifies
// the whole log.
func TestWALCheckpointVerification(t *testing.T) {
	const tenants, channels, gateways, seed = 4, 10, 5, 9200
	steps := catalogScheduleFor(tenants, channels, 33)
	half := len(steps) / 2
	model := catalog.SharedOrigin{ReplicationFraction: 0.25}

	t.Run("mid-log checkpoint", func(t *testing.T) {
		dir := t.TempDir()
		c := walCatalogFleet(t, tenants, channels, gateways, seed, 3, model,
			&WALOptions{Dir: dir, Sync: wal.SyncBatch})
		driveCatalogSchedule(t, c, steps[:half], 0)
		m, err := c.Checkpoint("checkpoint")
		if err != nil {
			t.Fatal(err)
		}
		if m.Gen != 1 || m.Seq == 0 || m.TenantsRender == "" || m.CatalogRender == "" {
			t.Fatalf("manifest: %+v", m)
		}
		driveCatalogSchedule(t, c, steps[half:], 1)
		wantTen, wantCat := fleetRenders(t, c)
		// Crash after the checkpoint; replay must pause at the fence,
		// verify, then continue through the tail.
		rec, rep, err := Recover(walTenantConfigs(t, tenants, channels, gateways, seed),
			walFleetOptions(tenants, channels, 2, model, &WALOptions{Dir: dir, Sync: wal.SyncBatch}))
		if err != nil {
			t.Fatal(err)
		}
		defer rec.Close()
		if !rep.CheckpointVerified || rep.CheckpointGen != 1 {
			t.Fatalf("checkpoint not verified: %+v", rep)
		}
		if rep.Gen != 4 {
			t.Fatalf("active generation after recovery = %d, want 4 (crashed in gen 2, replay opens 3, the recovered checkpoint seals it and opens 4)", rep.Gen)
		}
		gotTen, gotCat := fleetRenders(t, rec)
		if gotTen != wantTen || gotCat != wantCat {
			t.Fatalf("recovered state diverges after fence verification")
		}
	})

	t.Run("clean close verifies whole log", func(t *testing.T) {
		dir := t.TempDir()
		c := walCatalogFleet(t, tenants, channels, gateways, seed, 2, model,
			&WALOptions{Dir: dir, Sync: wal.SyncNone})
		driveCatalogSchedule(t, c, steps[:half], 0)
		wantTen, wantCat := fleetRenders(t, c)
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		rec, rep, err := Recover(walTenantConfigs(t, tenants, channels, gateways, seed),
			walFleetOptions(tenants, channels, 4, model, &WALOptions{Dir: dir, Sync: wal.SyncNone}))
		if err != nil {
			t.Fatal(err)
		}
		defer rec.Close()
		if !rep.CheckpointVerified {
			t.Fatalf("close manifest not verified: %+v", rep)
		}
		gotTen, gotCat := fleetRenders(t, rec)
		if gotTen != wantTen || gotCat != wantCat {
			t.Fatal("recovered state diverges from cleanly closed fleet")
		}
	})

	t.Run("tampered manifest fails loudly", func(t *testing.T) {
		dir := t.TempDir()
		c := walCatalogFleet(t, tenants, channels, gateways, seed, 2, model,
			&WALOptions{Dir: dir, Sync: wal.SyncNone})
		driveCatalogSchedule(t, c, steps[:half], 0)
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "ckpt-000001.json")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		tampered := strings.Replace(string(data), "\"tenants_render\": \"", "\"tenants_render\": \"X", 1)
		if tampered == string(data) {
			t.Fatal("tamper replacement did not apply")
		}
		if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, err = Recover(walTenantConfigs(t, tenants, channels, gateways, seed),
			walFleetOptions(tenants, channels, 2, model, &WALOptions{Dir: dir, Sync: wal.SyncNone}))
		if err == nil || !strings.Contains(err.Error(), "diverges") {
			t.Fatalf("tampered manifest accepted: %v", err)
		}
	})
}

// TestWALTornTail pins the crash signature end to end: a torn final
// line in a shard's newest segment is truncated and reported; corruption
// mid-log fails recovery loudly.
func TestWALTornTail(t *testing.T) {
	const tenants, channels, gateways, seed = 3, 10, 5, 9300
	steps := catalogScheduleFor(tenants, channels, 35)
	model := catalog.Isolated{}
	build := func(t *testing.T) string {
		dir := t.TempDir()
		c := walCatalogFleet(t, tenants, channels, gateways, seed, 2, model,
			&WALOptions{Dir: dir, Sync: wal.SyncBatch})
		driveCatalogSchedule(t, c, steps[:len(steps)/2], 0)
		// Crash (abandon). The segments are durable and clean.
		return dir
	}
	segFor := func(t *testing.T, dir, writer string) string {
		t.Helper()
		return filepath.Join(dir, "seg-000001-"+writer+".ndjson")
	}

	t.Run("torn tail tolerated and truncated", func(t *testing.T) {
		dir := build(t)
		seg := segFor(t, dir, "s0")
		f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteString(`{"seq":999999,"type":"stream_arr`); err != nil {
			t.Fatal(err)
		}
		f.Close()
		rec, rep, err := Recover(walTenantConfigs(t, tenants, channels, gateways, seed),
			walFleetOptions(tenants, channels, 2, model, &WALOptions{Dir: dir, Sync: wal.SyncBatch}))
		if err != nil {
			t.Fatalf("torn tail not tolerated: %v", err)
		}
		defer rec.Close()
		// Abandoned segments carry a preallocated zero tail, so every
		// writer's segment is truncated on recovery; the one with the
		// injected partial line must be among them.
		found := false
		for _, name := range rep.TruncatedSegments {
			if name == filepath.Base(seg) {
				found = true
			}
		}
		if !found {
			t.Fatalf("torn segment %s not truncated (truncated: %v)",
				filepath.Base(seg), rep.TruncatedSegments)
		}
	})

	t.Run("mid-log corruption fails recovery", func(t *testing.T) {
		dir := build(t)
		seg := segFor(t, dir, "s1")
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.SplitAfter(string(data), "\n")
		if len(lines) < 3 {
			t.Fatalf("segment too short to corrupt (%d lines)", len(lines))
		}
		lines[1] = "{corrupt}\n"
		if err := os.WriteFile(seg, []byte(strings.Join(lines, "")), 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, err = Recover(walTenantConfigs(t, tenants, channels, gateways, seed),
			walFleetOptions(tenants, channels, 2, model, &WALOptions{Dir: dir, Sync: wal.SyncBatch}))
		if err == nil || !strings.Contains(err.Error(), "mid-log") {
			t.Fatalf("mid-log corruption not rejected: %v", err)
		}
	})
}

// TestWALDanglingPendingDrain pins the two-plane repair: acquisitions
// a crash leaves in flight are drained through the normal logged
// settlement path, so a second recovery reproduces the repaired state
// exactly (the drain is itself in the log).
func TestWALDanglingPendingDrain(t *testing.T) {
	const tenants, channels, gateways, seed = 3, 10, 5, 9400
	model := catalog.SharedOrigin{ReplicationFraction: 0.25}
	dir := t.TempDir()
	c := walCatalogFleet(t, tenants, channels, gateways, seed, 2, model,
		&WALOptions{Dir: dir, Sync: wal.SyncBatch})
	driveCatalogSchedule(t, c, catalogScheduleFor(tenants, channels, 37)[:40], 0)
	// Take provisional references that will never settle: the crash
	// window between a session's Acquire and its worker settlement.
	for _, st := range []struct{ tenant, stream int }{{0, 3}, {1, 3}, {2, 7}} {
		id := catalog.ID(fmt.Sprintf("s-%03d", st.stream))
		if _, err := c.catalog.Acquire(id, st.tenant); err != nil {
			t.Fatal(err)
		}
	}
	// The acquires are logged but only buffered (no worker ack followed
	// them); force them to disk as the crash image.
	if err := c.wlog.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Crash (abandon).
	rec, rep, err := Recover(walTenantConfigs(t, tenants, channels, gateways, seed),
		walFleetOptions(tenants, channels, 2, model, &WALOptions{Dir: dir, Sync: wal.SyncBatch}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.DanglingReleased != 3 {
		t.Fatalf("DanglingReleased = %d, want 3 (report %+v)", rep.DanglingReleased, rep)
	}
	tenRender, catRender := fleetRenders(t, rec)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	// Second recovery: the drain is in the log, so the repaired state
	// replays bit-identically and the "close" manifest verifies it.
	rec2, rep2, err := Recover(walTenantConfigs(t, tenants, channels, gateways, seed),
		walFleetOptions(tenants, channels, 4, model, &WALOptions{Dir: dir, Sync: wal.SyncBatch}))
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	defer rec2.Close()
	if rep2.DanglingReleased != 0 || !rep2.CheckpointVerified {
		t.Fatalf("second recovery report: %+v", rep2)
	}
	ten2, cat2 := fleetRenders(t, rec2)
	if ten2 != tenRender || cat2 != catRender {
		t.Fatal("second recovery does not reproduce the repaired state")
	}
}

// TestWALAutoCheckpoint drives enough traffic past CheckpointEvery that
// the maintenance goroutine rotates generations on its own.
func TestWALAutoCheckpoint(t *testing.T) {
	const tenants, channels, gateways, seed = 3, 12, 5, 9500
	dir := t.TempDir()
	c := walCatalogFleet(t, tenants, channels, gateways, seed, 2, catalog.Isolated{},
		&WALOptions{Dir: dir, Sync: wal.SyncNone, CheckpointEvery: 50})
	steps := catalogScheduleFor(tenants, channels, 39)
	driveCatalogSchedule(t, c, steps, 0)
	wantTen, wantCat := fleetRenders(t, c)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	manifests := 0
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "ckpt-") {
			manifests++
		}
	}
	if manifests < 2 {
		t.Fatalf("got %d manifests, want at least an auto checkpoint plus the close", manifests)
	}
	rec, rep, err := Recover(walTenantConfigs(t, tenants, channels, gateways, seed),
		walFleetOptions(tenants, channels, 2, catalog.Isolated{},
			&WALOptions{Dir: dir, Sync: wal.SyncNone, CheckpointEvery: 50}))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if !rep.CheckpointVerified {
		t.Fatalf("recovery did not verify: %+v", rep)
	}
	gotTen, gotCat := fleetRenders(t, rec)
	if gotTen != wantTen || gotCat != wantCat {
		t.Fatal("recovered state diverges after auto checkpoints")
	}
}

// TestWALErrors pins the control-plane error taxonomy.
func TestWALErrors(t *testing.T) {
	t.Run("checkpoint without WAL", func(t *testing.T) {
		c, err := New(tenantInstances(t, 2, 8, 4, 9600), Options{Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := c.Checkpoint("x"); !errors.Is(err, ErrNoWAL) {
			t.Fatalf("Checkpoint without WAL: %v", err)
		}
		if err := c.Reshard(2); !errors.Is(err, ErrNoWAL) {
			t.Fatalf("Reshard without WAL: %v", err)
		}
	})
	t.Run("new on an existing log", func(t *testing.T) {
		dir := t.TempDir()
		c := walCatalogFleet(t, 2, 8, 4, 9600, 1, nil, &WALOptions{Dir: dir})
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		_, err := New(tenantInstances(t, 2, 8, 4, 9600), Options{Shards: 1, WAL: &WALOptions{Dir: dir}})
		if err == nil || !strings.Contains(err.Error(), "use Recover") {
			t.Fatalf("New on a used WAL dir: %v", err)
		}
	})
	t.Run("recover without WAL options", func(t *testing.T) {
		if _, _, err := Recover(tenantInstances(t, 2, 8, 4, 9600), Options{Shards: 1}); !errors.Is(err, ErrNoWAL) {
			t.Fatalf("Recover without WAL: %v", err)
		}
	})
	t.Run("closed cluster", func(t *testing.T) {
		dir := t.TempDir()
		c := walCatalogFleet(t, 2, 8, 4, 9600, 1, nil, &WALOptions{Dir: dir})
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Checkpoint("x"); !errors.Is(err, ErrClosed) {
			t.Fatalf("Checkpoint after Close: %v", err)
		}
		if err := c.Reshard(2); !errors.Is(err, ErrClosed) {
			t.Fatalf("Reshard after Close: %v", err)
		}
	})
}

// TestWALCheckpointRacingTraffic races explicit checkpoints against
// in-flight batches and streamed catalog events (run under -race in
// CI), then crashes and verifies the recovered state matches the final
// quiesced snapshot exactly.
func TestWALCheckpointRacingTraffic(t *testing.T) {
	const tenants, channels, gateways, seed = 4, 12, 5, 9700
	model := catalog.SharedOrigin{ReplicationFraction: 0.25}
	dir := t.TempDir()
	c := walCatalogFleet(t, tenants, channels, gateways, seed, 2, model,
		&WALOptions{Dir: dir, Sync: wal.SyncBatch})
	ctx := context.Background()
	var wg sync.WaitGroup
	for ti := 0; ti < tenants; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				var evs []Event
				for s := 0; s < channels; s += 2 {
					evs = append(evs, Event{Type: EventStreamArrival,
						CatalogID: catalog.ID(fmt.Sprintf("s-%03d", s))})
				}
				if _, err := c.ApplyBatch(ctx, ti, evs); err != nil {
					t.Errorf("tenant %d batch: %v", ti, err)
					return
				}
				for s := 0; s < channels; s += 4 {
					if _, err := c.DepartCatalogStream(ctx, ti, catalog.ID(fmt.Sprintf("s-%03d", s))); err != nil {
						t.Errorf("tenant %d depart: %v", ti, err)
						return
					}
				}
			}
		}(ti)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			if _, err := c.Checkpoint("race"); err != nil {
				t.Errorf("checkpoint: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}
	wantTen, wantCat := fleetRenders(t, c)
	// Crash (abandon) and recover: the final quiesced state was fully
	// acknowledged, so recovery must land exactly on it.
	rec, _, err := Recover(walTenantConfigs(t, tenants, channels, gateways, seed),
		walFleetOptions(tenants, channels, 4, model, &WALOptions{Dir: dir, Sync: wal.SyncBatch}))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	gotTen, gotCat := fleetRenders(t, rec)
	if gotTen != wantTen || gotCat != wantCat {
		t.Fatal("recovered state diverges after checkpoint/traffic race")
	}
}

// TestWALStreamDisconnectReplay replays a disconnect-settlement
// sequence: a pipelined stream submits catalog offers and departs,
// the connection is dropped with results unread (the worker still
// settles every reference), and the recovered fleet must reproduce the
// post-disconnect state bit-identically. Run under -race in CI.
func TestWALStreamDisconnectReplay(t *testing.T) {
	const tenants, channels, gateways, seed = 3, 10, 5, 9800
	model := catalog.SharedOrigin{ReplicationFraction: 0.25}
	dir := t.TempDir()
	c := walCatalogFleet(t, tenants, channels, gateways, seed, 2, model,
		&WALOptions{Dir: dir, Sync: wal.SyncBatch})
	ctx := context.Background()
	sc, err := c.OpenStream(StreamOptions{Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	var drained sync.WaitGroup
	drained.Add(1)
	go func() {
		defer drained.Done()
		for {
			if _, err := sc.Recv(ctx); err != nil {
				return
			}
		}
	}()
	for i := 0; i < 3*channels; i++ {
		ti, s := i%tenants, i%channels
		ev := Event{Tenant: ti, Type: EventStreamArrival, CatalogID: catalog.ID(fmt.Sprintf("s-%03d", s))}
		if i%5 == 4 {
			ev.Type = EventStreamDeparture
		}
		if err := sc.Submit(ctx, ev); err != nil {
			t.Fatal(err)
		}
	}
	// Drop the connection mid-stream: unread results are discarded but
	// every enqueued event applies and settles.
	sc.Close()
	drained.Wait()
	wantTen, wantCat := fleetRenders(t, c)
	// Crash (abandon) and recover.
	rec, rep, err := Recover(walTenantConfigs(t, tenants, channels, gateways, seed),
		walFleetOptions(tenants, channels, 1, model, &WALOptions{Dir: dir, Sync: wal.SyncBatch}))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rep.Reconciled != 0 {
		t.Fatalf("disconnect settlement left planes inconsistent: %+v", rep)
	}
	gotTen, gotCat := fleetRenders(t, rec)
	if gotTen != wantTen || gotCat != wantCat {
		t.Fatal("recovered state diverges after stream disconnect")
	}
}

// TestReshardPreservesState is the live-resharding acceptance check:
// growing 2→4 and shrinking 4→2 mid-workload must preserve per-tenant
// tables and catalog renders exactly (the shard-count-invariance
// contract, now exercised across a layout change on a live cluster),
// and the resharded fleet must keep serving and stay recoverable.
func TestReshardPreservesState(t *testing.T) {
	const tenants, channels, gateways, seed = 5, 12, 5, 9900
	for _, tc := range []struct{ from, to int }{{2, 4}, {4, 2}} {
		t.Run(fmt.Sprintf("%d_to_%d", tc.from, tc.to), func(t *testing.T) {
			model := catalog.SharedOrigin{ReplicationFraction: 0.25}
			steps := catalogScheduleFor(tenants, channels, 41)
			half := len(steps) / 2

			control := walCatalogFleet(t, tenants, channels, gateways, seed, tc.from, model, nil)
			defer control.Close()
			dir := t.TempDir()
			c := walCatalogFleet(t, tenants, channels, gateways, seed, tc.from, model,
				&WALOptions{Dir: dir, Sync: wal.SyncBatch})
			defer c.Close()

			driveCatalogSchedule(t, control, steps[:half], 0)
			driveCatalogSchedule(t, c, steps[:half], 0)
			if err := c.Reshard(tc.to); err != nil {
				t.Fatalf("Reshard(%d): %v", tc.to, err)
			}
			if got := c.NumShards(); got != tc.to {
				t.Fatalf("NumShards after reshard = %d, want %d", got, tc.to)
			}
			wantTen, wantCat := fleetRenders(t, control)
			gotTen, gotCat := fleetRenders(t, c)
			if gotTen != wantTen || gotCat != wantCat {
				t.Fatalf("reshard changed state:\n--- want\n%s%s\n--- got\n%s%s",
					wantTen, wantCat, gotTen, gotCat)
			}
			// The resharded fleet keeps serving identically.
			driveCatalogSchedule(t, control, steps[half:], 1)
			driveCatalogSchedule(t, c, steps[half:], 1)
			wantTen, wantCat = fleetRenders(t, control)
			gotTen, gotCat = fleetRenders(t, c)
			if gotTen != wantTen || gotCat != wantCat {
				t.Fatal("post-reshard traffic diverges")
			}
			// And its mixed-layout log recovers (replaying generations
			// written by both shard counts).
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
			rec, rep, err := Recover(walTenantConfigs(t, tenants, channels, gateways, seed),
				walFleetOptions(tenants, channels, 3, model, &WALOptions{Dir: dir, Sync: wal.SyncBatch}))
			if err != nil {
				t.Fatalf("recovery across reshard generations: %v", err)
			}
			defer rec.Close()
			if !rep.CheckpointVerified {
				t.Fatalf("reshard log not verified: %+v", rep)
			}
			gotTen, gotCat = fleetRenders(t, rec)
			if gotTen != wantTen || gotCat != wantCat {
				t.Fatal("recovery across reshard generations diverges")
			}
		})
	}
}

// TestReshardThenCheckpointCatalogDurability pins the commit-group
// plumbing across a reshard: after the cutover the live workers belong
// to the shadow cluster's struct, but checkpoint rotation runs on the
// primary — the catalog-plane appender the committers fsync must be
// the one the rotation opened (the shared pointer), not a stale
// per-struct capture of the sealed generation's. A stale capture makes
// Commit a silent no-op, so every catalog settlement acknowledged
// after a post-reshard checkpoint would evaporate in a crash. So:
// reshard, checkpoint, drive acknowledged catalog traffic, crash, and
// require recovery to land exactly on the last quiesced state with no
// cross-plane repair.
func TestReshardThenCheckpointCatalogDurability(t *testing.T) {
	const tenants, channels, gateways, seed = 4, 12, 5, 10200
	model := catalog.SharedOrigin{ReplicationFraction: 0.25}
	steps := catalogScheduleFor(tenants, channels, 43)
	half := len(steps) / 2
	dir := t.TempDir()
	c := walCatalogFleet(t, tenants, channels, gateways, seed, 2, model,
		&WALOptions{Dir: dir, Sync: wal.SyncBatch})
	driveCatalogSchedule(t, c, steps[:half], 0)
	if err := c.Reshard(4); err != nil {
		t.Fatalf("Reshard(4): %v", err)
	}
	if _, err := c.Checkpoint("post-reshard"); err != nil {
		t.Fatalf("Checkpoint after reshard: %v", err)
	}
	// Every event past here is acknowledged under SyncBatch, so it must
	// be durable — on both planes — before its call returns.
	driveCatalogSchedule(t, c, steps[half:], 1)
	wantTen, wantCat := fleetRenders(t, c)
	// Crash (abandon without Close).
	rec, rep, err := Recover(walTenantConfigs(t, tenants, channels, gateways, seed),
		walFleetOptions(tenants, channels, 3, model, &WALOptions{Dir: dir, Sync: wal.SyncBatch}))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rep.DanglingReleased != 0 || rep.Reconciled != 0 {
		t.Fatalf("acknowledged post-checkpoint traffic needed repair (a plane lost records): %+v", rep)
	}
	if rep.FencesVerified != 2 {
		t.Fatalf("FencesVerified = %d, want 2 (reshard manifest + post-reshard checkpoint): %+v",
			rep.FencesVerified, rep)
	}
	gotTen, gotCat := fleetRenders(t, rec)
	if gotTen != wantTen || gotCat != wantCat {
		t.Fatalf("state acknowledged after a post-reshard checkpoint was lost:\n--- want\n%s%s\n--- got\n%s%s",
			wantTen, wantCat, gotTen, gotCat)
	}
}

// TestContiguousSeqPrefix pins the resharding bulk-phase scan: a live
// gap (possibly still buffered in a writer) ends the prefix, while a
// gap at or below the checkpoint fence is permanent and is skipped —
// otherwise a single historical hole would push the whole replay into
// the write-locked cutover phase.
func TestContiguousSeqPrefix(t *testing.T) {
	recs := func(seqs ...uint64) []wal.Record {
		out := make([]wal.Record, len(seqs))
		for i, s := range seqs {
			out[i] = wal.Record{Seq: s}
		}
		return out
	}
	cases := []struct {
		name  string
		recs  []wal.Record
		fence uint64
		want  uint64
	}{
		{"empty", nil, 0, 0},
		{"contiguous", recs(1, 2, 3, 4), 0, 4},
		{"live gap ends prefix", recs(1, 2, 4, 5), 0, 2},
		{"gap below fence skipped", recs(1, 2, 4, 5), 3, 5},
		{"gap ending at fence skipped", recs(1, 2, 5, 6), 4, 6},
		{"gap past fence ends prefix", recs(1, 2, 5, 6), 3, 2},
		{"second gap above fence ends prefix", recs(1, 3, 4, 7, 8), 2, 4},
	}
	for _, tc := range cases {
		if got := contiguousSeqPrefix(tc.recs, tc.fence); got != tc.want {
			t.Errorf("%s: contiguousSeqPrefix(fence=%d) = %d, want %d", tc.name, tc.fence, got, tc.want)
		}
	}
}

// TestReshardConcurrentTraffic reshards while sessions are actively
// submitting (run under -race in CI): no call may fail, and the final
// state must match a control fleet that saw the same schedule.
func TestReshardConcurrentTraffic(t *testing.T) {
	const tenants, channels, gateways, seed = 4, 10, 5, 10000
	model := catalog.Isolated{}
	dir := t.TempDir()
	c := walCatalogFleet(t, tenants, channels, gateways, seed, 2, model,
		&WALOptions{Dir: dir, Sync: wal.SyncBatch})
	defer c.Close()
	ctx := context.Background()
	var wg sync.WaitGroup
	for ti := 0; ti < tenants; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			for round := 0; round < 4; round++ {
				for s := 0; s < channels; s++ {
					if _, err := c.OfferCatalogStream(ctx, ti, catalog.ID(fmt.Sprintf("s-%03d", s))); err != nil {
						t.Errorf("tenant %d offer during reshard: %v", ti, err)
						return
					}
				}
				for s := 0; s < channels; s += 3 {
					if _, err := c.DepartCatalogStream(ctx, ti, catalog.ID(fmt.Sprintf("s-%03d", s))); err != nil {
						t.Errorf("tenant %d depart during reshard: %v", ti, err)
						return
					}
				}
			}
		}(ti)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, n := range []int{4, 1, 3} {
			if err := c.Reshard(n); err != nil {
				t.Errorf("Reshard(%d): %v", n, err)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}
	if got := c.NumShards(); got != 3 {
		t.Fatalf("NumShards = %d, want 3", got)
	}
	// Per-tenant traffic was serial per tenant, so the per-tenant tables
	// must match a control fleet that ran the same per-tenant schedule
	// (tenant interleaving does not affect per-tenant state under
	// Isolated pricing).
	control := walCatalogFleet(t, tenants, channels, gateways, seed, 2, model, nil)
	defer control.Close()
	for ti := 0; ti < tenants; ti++ {
		for round := 0; round < 4; round++ {
			for s := 0; s < channels; s++ {
				if _, err := control.OfferCatalogStream(ctx, ti, catalog.ID(fmt.Sprintf("s-%03d", s))); err != nil {
					t.Fatal(err)
				}
			}
			for s := 0; s < channels; s += 3 {
				if _, err := control.DepartCatalogStream(ctx, ti, catalog.ID(fmt.Sprintf("s-%03d", s))); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	wantTen, _ := fleetRenders(t, control)
	gotTen, _ := fleetRenders(t, c)
	if gotTen != wantTen {
		t.Fatalf("concurrent reshard changed per-tenant state:\n--- want\n%s\n--- got\n%s", wantTen, gotTen)
	}
}

// TestReshardRejectsCallerPolicies pins the replay constraint: a
// caller-supplied policy object cannot be rebuilt by log replay, so
// Reshard refuses.
func TestReshardRejectsCallerPolicies(t *testing.T) {
	cfgs := tenantInstances(t, 2, 8, 4, 10100)
	cfgs[1].Policy = plainPolicy{}
	dir := t.TempDir()
	c, err := New(cfgs, Options{Shards: 1, WAL: &WALOptions{Dir: dir}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Reshard(2); err == nil || !strings.Contains(err.Error(), "policy") {
		t.Fatalf("Reshard with caller policy: %v", err)
	}
	// Same shard count is a no-op even then.
	if err := c.Reshard(1); err == nil || !strings.Contains(err.Error(), "policy") {
		t.Fatalf("Reshard validates before the no-op check: %v", err)
	}
}
