package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"reflect"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/generator"
)

// streamTestClusters builds n same-shaped fleets so the same schedule
// can be driven through different submission surfaces and compared.
func streamTestClusters(t *testing.T, n, tenants, shards int) []*Cluster {
	t.Helper()
	out := make([]*Cluster, n)
	for k := range out {
		cfgs := make([]TenantConfig, tenants)
		for i := range cfgs {
			in, err := generator.CableTV{
				Channels: 15, Gateways: 5, Seed: 910 + int64(i), EgressFraction: 0.3,
			}.Generate()
			if err != nil {
				t.Fatal(err)
			}
			cfgs[i] = TenantConfig{Instance: in}
		}
		c, err := New(cfgs, Options{Shards: shards, BatchSize: 8})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		out[k] = c
	}
	return out
}

// streamSchedule interleaves every tenant's mixed schedule round-robin
// (the same interleaving RunWorkload uses), so shard queues see events
// from different tenants back to back.
func streamSchedule(tenants int) []Event {
	perTenant := make([][]Event, tenants)
	for ti := 0; ti < tenants; ti++ {
		evs := batchTestEvents()
		for i := range evs {
			evs[i].Tenant = ti
		}
		perTenant[ti] = evs
	}
	var all []Event
	for i := 0; ; i++ {
		any := false
		for ti := range perTenant {
			if i < len(perTenant[ti]) {
				all = append(all, perTenant[ti][i])
				any = true
			}
		}
		if !any {
			return all
		}
	}
}

// applySingle drives one event through the matching per-operation
// session method and wraps the outcome as a StreamResult for 1:1
// comparison with the streamed run.
func applySingle(t *testing.T, c *Cluster, seq int, ev Event) StreamResult {
	t.Helper()
	ctx := context.Background()
	out := StreamResult{Seq: seq, Type: ev.Type}
	var err error
	switch ev.Type {
	case EventStreamArrival:
		out.Offer, err = c.OfferStream(ctx, ev.Tenant, ev.Stream)
	case EventStreamDeparture:
		out.Depart, err = c.DepartStream(ctx, ev.Tenant, ev.Stream)
	case EventUserLeave:
		out.Churn, err = c.UserLeave(ctx, ev.Tenant, ev.User)
	case EventUserJoin:
		out.Churn, err = c.UserJoin(ctx, ev.Tenant, ev.User)
	case EventResolve:
		out.Resolve, err = c.Resolve(ctx, ev.Tenant, ResolveOptions{Install: ev.Install})
	}
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestStreamMatchesSingleAndBatch is the v4 parity acceptance check: a
// pipelined stream must produce per-event results and fleet snapshots
// bit-identical to the same schedule submitted as single session calls
// — including the shard stats, since an acked arrival is its own flush
// boundary on both paths — and per-tenant tables identical to the
// ApplyBatch path, at every shard count.
func TestStreamMatchesSingleAndBatch(t *testing.T) {
	const tenants = 3
	schedule := streamSchedule(tenants)
	for _, shards := range []int{1, 2, 4, 8} {
		cs := streamTestClusters(t, 3, tenants, shards)
		single, streamed, batched := cs[0], cs[1], cs[2]

		// Reference: single session calls in schedule order.
		want := make([]StreamResult, len(schedule))
		for i, ev := range schedule {
			want[i] = applySingle(t, single, i, ev)
		}

		// Streamed: one submitter pipelines the whole schedule; one
		// receiver collects results in submission order.
		sc, err := streamed.OpenStream(StreamOptions{Window: 16})
		if err != nil {
			t.Fatal(err)
		}
		got := make([]StreamResult, 0, len(schedule))
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				res, err := sc.Recv(context.Background())
				if err == io.EOF {
					return
				}
				if err != nil {
					t.Error(err)
					return
				}
				got = append(got, res)
			}
		}()
		for _, ev := range schedule {
			if err := sc.Submit(context.Background(), ev); err != nil {
				t.Fatal(err)
			}
		}
		sc.CloseSend()
		wg.Wait()
		if len(got) != len(want) {
			t.Fatalf("shards=%d: %d stream results, want %d", shards, len(got), len(want))
		}
		for i := range got {
			if got[i].Err != nil {
				t.Fatalf("shards=%d seq %d: unexpected stream error %v", shards, i, got[i].Err)
			}
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("shards=%d seq %d: stream %+v vs single %+v", shards, i, got[i], want[i])
			}
		}

		// Batched: each tenant's schedule as one ApplyBatch call.
		for ti := 0; ti < tenants; ti++ {
			var evs []Event
			for _, ev := range schedule {
				if ev.Tenant == ti {
					evs = append(evs, ev)
				}
			}
			if _, err := batched.ApplyBatch(context.Background(), ti, evs); err != nil {
				t.Fatal(err)
			}
		}

		sfs, err := single.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		stfs, err := streamed.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		bfs, err := batched.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if got, want := stfs.Render(), sfs.Render(); got != want {
			t.Fatalf("shards=%d: streamed snapshot diverged from single posts:\n--- stream\n%s\n--- single\n%s",
				shards, got, want)
		}
		if got, want := bfs.RenderTenants(), sfs.RenderTenants(); got != want {
			t.Fatalf("shards=%d: batch tenant tables diverged:\n--- batch\n%s\n--- single\n%s",
				shards, got, want)
		}
	}
}

// TestStreamCatalogEventsMatchSessions drives catalog offers and
// departures over a stream one at a time (submit, then receive, so
// pricing sees exactly the serial reference counts) and pins the typed
// CatalogResult bit-identical to the OfferCatalogStream /
// DepartCatalogStream session calls over the same schedule.
func TestStreamCatalogEventsMatchSessions(t *testing.T) {
	const tenants, channels = 4, 12
	model := catalog.SharedOrigin{ReplicationFraction: 0.25}
	sessions := catalogTestFleet(t, tenants, channels, 5, 930, 0.3, 2, model)
	streamed := catalogTestFleet(t, tenants, channels, 5, 930, 0.3, 2, model)
	steps := catalogScheduleFor(tenants, channels, 930)
	ctx := context.Background()

	sc, err := streamed.OpenStream(StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range steps {
		id := catalog.ID(fmt.Sprintf("s-%03d", st.stream))
		var want CatalogResult
		typ := EventStreamArrival
		if st.depart {
			typ = EventStreamDeparture
			want, err = sessions.DepartCatalogStream(ctx, st.tenant, id)
		} else {
			want, err = sessions.OfferCatalogStream(ctx, st.tenant, id)
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := sc.Submit(ctx, Event{Tenant: st.tenant, Type: typ, CatalogID: id}); err != nil {
			t.Fatal(err)
		}
		res, err := sc.Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if res.Err != nil {
			t.Fatalf("step %d: stream error %v", i, res.Err)
		}
		if res.CatalogID != id || res.Seq != i {
			t.Fatalf("step %d: result header %+v", i, res)
		}
		if !reflect.DeepEqual(res.Catalog, want) {
			t.Fatalf("step %d: stream catalog result %+v vs session %+v", i, res.Catalog, want)
		}
	}
	sc.CloseSend()
	if _, err := sc.Recv(ctx); err != io.EOF {
		t.Fatalf("drained stream Recv = %v, want io.EOF", err)
	}

	ss, err := sessions.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	st, err := streamed.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := st.Render(), ss.Render(); got != want {
		t.Fatalf("catalog stream snapshot diverged:\n--- stream\n%s\n--- sessions\n%s", got, want)
	}
}

// TestStreamPipelinedCatalogSettlesOnAbandon pins the disconnect
// contract: a stream dropped with results unread leaks nothing — every
// enqueued catalog event settles on its shard worker, so after a
// barrier the fleet reference count equals the carried-stream count
// exactly, and draining ends at zero. Run under -race this also proves
// the settlement path is data-race free.
func TestStreamPipelinedCatalogSettlesOnAbandon(t *testing.T) {
	const tenants, channels = 4, 12
	c := catalogTestFleet(t, tenants, channels, 5, 940, 0.3, 4, catalog.SharedOrigin{ReplicationFraction: 0.25})
	sc, err := c.OpenStream(StreamOptions{Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	// A receiver drains just enough results for the submitter to keep
	// pipelining, then abandons the rest mid-flight — the disconnect
	// shape: the submitter's next Submit parks on the full window until
	// its context is canceled, exactly like an HTTP reader losing its
	// client.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer cancel()
		for i := 0; i < 20; i++ {
			if _, err := sc.Recv(context.Background()); err != nil {
				return
			}
		}
	}()
	steps := catalogScheduleFor(tenants, channels, 940)
	submitted := 0
	for _, st := range steps {
		typ := EventStreamArrival
		if st.depart {
			typ = EventStreamDeparture
		}
		id := catalog.ID(fmt.Sprintf("s-%03d", st.stream))
		if err := sc.Submit(ctx, Event{Tenant: st.tenant, Type: typ, CatalogID: id}); err != nil {
			if !errors.Is(err, ErrCanceled) {
				t.Fatal(err)
			}
			break
		}
		submitted++
	}
	sc.CloseSend()
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}
	<-done
	if submitted < 20 {
		t.Fatalf("only %d events submitted; the abandon path was not exercised", submitted)
	}

	fs, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	refs := 0
	for _, e := range fs.Catalog.Entries {
		refs += e.Refs
	}
	carried := 0
	for _, ts := range fs.Tenants {
		carried += ts.ActiveStreams
	}
	if refs != carried {
		t.Fatalf("abandoned stream desynced the registry: %d refs, %d carried streams", refs, carried)
	}

	// Drain everything; no reference may survive.
	ctx = context.Background()
	for ti := 0; ti < tenants; ti++ {
		for s := 0; s < channels; s++ {
			if _, err := c.DepartCatalogStream(ctx, ti, catalog.ID(fmt.Sprintf("s-%03d", s))); err != nil {
				t.Fatal(err)
			}
		}
	}
	final, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range final.Catalog.Entries {
		if e.Refs != 0 {
			t.Fatalf("%s: %d refs leaked after drain", e.ID, e.Refs)
		}
	}
}

// TestStreamWindowBackpressure pins the window taxonomy: a full window
// rejects with ErrQueueFull under BackpressureReject and parks the
// submitter until ctx cancellation under the default block mode.
func TestStreamWindowBackpressure(t *testing.T) {
	cs := streamTestClusters(t, 1, 2, 2)
	c := cs[0]

	rej, err := c.OpenStream(StreamOptions{Window: 2, Backpressure: BackpressureReject})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := rej.Submit(context.Background(), Event{Tenant: 0, Type: EventStreamArrival, Stream: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := rej.Submit(context.Background(), Event{Tenant: 0, Type: EventStreamArrival, Stream: 2}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("full window submit = %v, want ErrQueueFull", err)
	}
	if _, err := rej.Recv(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := rej.Submit(context.Background(), Event{Tenant: 0, Type: EventStreamArrival, Stream: 2}); err != nil {
		t.Fatalf("submit after drain = %v", err)
	}
	rej.CloseSend()

	blk, err := c.OpenStream(StreamOptions{Window: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer blk.Close()
	if err := blk.Submit(context.Background(), Event{Tenant: 1, Type: EventStreamArrival, Stream: 0}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	blocked := make(chan error, 1)
	go func() {
		blocked <- blk.Submit(ctx, Event{Tenant: 1, Type: EventStreamArrival, Stream: 1})
	}()
	cancel()
	if err := <-blocked; !errors.Is(err, ErrCanceled) {
		t.Fatalf("blocked submit after cancel = %v, want ErrCanceled", err)
	}
}

// TestStreamPerEventErrors pins the in-band error contract: data-level
// failures (unknown tenant, unknown catalog stream, bad event type)
// surface as StreamResult.Err in submission order and the stream stays
// usable; submit-side failures after CloseSend fail with ErrClosed.
func TestStreamPerEventErrors(t *testing.T) {
	c := catalogTestFleet(t, 2, 5, 3, 950, 0.5, 1, nil)
	sc, err := c.OpenStream(StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	evs := []Event{
		{Tenant: 9, Type: EventStreamArrival, Stream: 0},                // unknown tenant
		{Tenant: 0, Type: EventType(42), Stream: 0},                     // bad type
		{Tenant: 0, Type: EventStreamArrival, CatalogID: "nope"},        // unknown catalog id
		{Tenant: 0, Type: EventStreamDeparture, CatalogID: "nope"},      // unknown catalog id (depart)
		{Tenant: 0, Type: EventStreamArrival, Stream: 0},                // fine
		{Tenant: 0, Type: EventUserLeave, User: 1, CatalogID: "s-0001"}, // stray id on churn: ignored
	}
	for _, ev := range evs {
		if err := sc.Submit(context.Background(), ev); err != nil {
			t.Fatal(err)
		}
	}
	sc.CloseSend()
	if err := sc.Submit(context.Background(), evs[4]); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after CloseSend = %v, want ErrClosed", err)
	}
	var got []StreamResult
	for {
		res, err := sc.Recv(context.Background())
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, res)
	}
	if len(got) != len(evs) {
		t.Fatalf("%d results, want %d", len(got), len(evs))
	}
	if !errors.Is(got[0].Err, ErrUnknownTenant) {
		t.Fatalf("seq 0 err = %v, want ErrUnknownTenant", got[0].Err)
	}
	if got[1].Err == nil {
		t.Fatal("seq 1: bad event type accepted")
	}
	if !errors.Is(got[2].Err, ErrUnknownCatalogStream) || !errors.Is(got[3].Err, ErrUnknownCatalogStream) {
		t.Fatalf("seq 2/3 err = %v / %v, want ErrUnknownCatalogStream", got[2].Err, got[3].Err)
	}
	if got[4].Err != nil || !got[4].Offer.Accepted {
		t.Fatalf("seq 4 = %+v, want clean admission", got[4])
	}
	if got[5].Err != nil || got[5].CatalogID != "" || !got[5].Churn.Changed {
		t.Fatalf("seq 5 = %+v, want plain churn with the stray catalog id dropped", got[5])
	}
}

// TestOpenStreamOnClosedCluster pins the open-time taxonomy.
func TestOpenStreamOnClosedCluster(t *testing.T) {
	cs := streamTestClusters(t, 1, 1, 1)
	c := cs[0]
	sc, err := c.OpenStream(StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// In-band: the cluster closed under an open stream.
	if err := sc.Submit(context.Background(), Event{Tenant: 0, Type: EventStreamArrival}); err != nil {
		t.Fatal(err)
	}
	res, err := sc.Recv(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.Err, ErrClosed) {
		t.Fatalf("submit on closed cluster: in-band err = %v, want ErrClosed", res.Err)
	}
	if _, err := c.OpenStream(StreamOptions{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("OpenStream on closed cluster = %v, want ErrClosed", err)
	}
}
