package cluster

import (
	"context"
	"errors"
	"fmt"
)

// Serving API v2: the typed, context-aware request/response surface.
//
// Each per-operation method routes one event to the owning shard with a
// per-event completion channel attached, blocks until the shard worker
// has applied the event, and returns a typed result. The sentinel
// errors below form the error taxonomy; every failure returned by the
// session methods matches exactly one of them under errors.Is (solver
// failures during a resolve are the exception — they are returned
// verbatim, wrapped with the tenant index).
//
// Backpressure is configurable per cluster (Options.Backpressure):
// BackpressureBlock parks the caller until the shard queue has room or
// ctx is done; BackpressureReject fails fast with ErrQueueFull.

// Sentinel errors returned by the serving API. Match with errors.Is;
// returned errors may wrap additional detail (tenant index, ctx cause).
var (
	// ErrUnknownTenant reports a tenant index outside [0, NumTenants).
	ErrUnknownTenant = errors.New("cluster: unknown tenant")
	// ErrQueueFull reports a full shard queue under BackpressureReject.
	ErrQueueFull = errors.New("cluster: shard queue full")
	// ErrClosed reports an operation on a closed cluster.
	ErrClosed = errors.New("cluster: closed")
	// ErrCanceled reports a context canceled or expired while enqueuing
	// or waiting for a result. It wraps ctx.Err(), so errors.Is also
	// matches context.Canceled / context.DeadlineExceeded.
	ErrCanceled = errors.New("cluster: canceled")
	// ErrNotDurable reports that an event was applied but its group
	// commit failed: the log record backing the result never reached
	// the disk, so the acknowledgement would have been a lie. Under
	// SyncBatch every result in the failed group (and every later one
	// — the appender error is latched) carries this error; after a
	// restart, recovery resumes from the last durable watermark and
	// the event may or may not survive. Callers treat it like a crash:
	// re-submit after recovery and let seq-level dedup sort it out.
	ErrNotDurable = errors.New("cluster: event not durable")
)

// Backpressure selects what happens when a shard queue is full.
type Backpressure int

const (
	// BackpressureBlock (the default) blocks the caller until the shard
	// queue has room or its context is done.
	BackpressureBlock Backpressure = iota
	// BackpressureReject fails fast with ErrQueueFull.
	BackpressureReject
)

// OfferResult is the outcome of offering a stream to a tenant.
type OfferResult struct {
	// Accepted reports whether at least one user now receives the
	// stream. Offers of out-of-range or already-carried streams are
	// rejections, not errors.
	Accepted bool
	// Subscribers are the users that now receive the stream, in the
	// order the policy admitted them.
	Subscribers []int
	// Utility is the utility added by this admission.
	Utility float64
}

// DepartResult is the outcome of departing a stream.
type DepartResult struct {
	// Removed reports whether the stream was actually carried.
	Removed bool
	// Subscribers are the users that were receiving the stream.
	Subscribers []int
}

// ChurnResult is the outcome of a gateway leave or join.
type ChurnResult struct {
	// Changed reports whether the event changed the gateway's state
	// (false for leave-while-away, join-while-online, out of range).
	Changed bool
	// Streams are the subscriptions torn down by a leave, in increasing
	// index order (empty for joins — a rejoining gateway does not
	// recover old subscriptions).
	Streams []int
}

// ResolveResult is the outcome of an offline re-solve.
type ResolveResult struct {
	// Installed reports whether the offline assignment replaced the
	// running one (requires ResolveOptions.Install and an offline value
	// at least as good as the online one).
	Installed bool
	// OnlineValue is the running assignment's utility at resolve time;
	// OfflineValue is the fresh offline pipeline's value.
	OnlineValue, OfflineValue float64
}

// ResolveOptions configures Cluster.Resolve.
type ResolveOptions struct {
	// Install replaces the tenant's running assignment and policy state
	// with the offline solution (make-before-break) when the offline
	// value is at least the online one; false is monitoring only.
	Install bool
}

// OfferStream offers stream s to tenant t's admission policy and
// returns the typed decision. A rejection (out-of-range or
// already-carried stream, or a policy "no") is a successful call with
// Accepted false.
func (c *Cluster) OfferStream(ctx context.Context, tenant, stream int) (OfferResult, error) {
	res, err := c.call(ctx, Event{Tenant: tenant, Type: EventStreamArrival, Stream: stream})
	return res.offer, err
}

// DepartStream removes a carried stream from tenant t, releasing its
// subscribers and (for departure-aware policies) the policy's
// resources.
func (c *Cluster) DepartStream(ctx context.Context, tenant, stream int) (DepartResult, error) {
	res, err := c.call(ctx, Event{Tenant: tenant, Type: EventStreamDeparture, Stream: stream})
	return res.depart, err
}

// UserLeave takes gateway u of tenant t offline, tearing down its
// subscriptions.
func (c *Cluster) UserLeave(ctx context.Context, tenant, user int) (ChurnResult, error) {
	res, err := c.call(ctx, Event{Tenant: tenant, Type: EventUserLeave, User: user})
	return res.churn, err
}

// UserJoin brings gateway u of tenant t back online.
func (c *Cluster) UserJoin(ctx context.Context, tenant, user int) (ChurnResult, error) {
	res, err := c.call(ctx, Event{Tenant: tenant, Type: EventUserJoin, User: user})
	return res.churn, err
}

// Resolve re-runs the offline Theorem 1.1 pipeline for tenant t on its
// shard worker. With opts.Install the offline assignment is installed
// via a make-before-break policy-state rebuild (never downgrading the
// running lineup); without it the re-solve only measures drift. When a
// catalog is configured, the worker releases the fleet references of
// catalog streams the installed lineup dropped before replying.
func (c *Cluster) Resolve(ctx context.Context, tenant int, opts ResolveOptions) (ResolveResult, error) {
	res, err := c.call(ctx, Event{Tenant: tenant, Type: EventResolve, Install: opts.Install})
	return res.resolve, err
}

// result is the union payload delivered on a per-event completion
// channel; exactly the field for the event's type is populated. refs
// and evicted report the fleet-reference state the worker settled for a
// catalog-managed event (Event.CatalogID set).
type result struct {
	offer   OfferResult
	depart  DepartResult
	churn   ChurnResult
	resolve ResolveResult
	refs    int
	evicted bool
	err     error
}

// call routes one event to its shard with a completion channel attached
// and waits for the worker's typed reply. An arrival carrying a
// completion channel is its own flush boundary (the worker flushes the
// batch immediately after appending it), so a blocked caller never
// waits on a trailing partial batch.
//
// The completion channel is pooled: it is recycled after its result was
// drained (or when the event never enqueued), and deliberately leaked
// to the garbage collector when the caller abandons the wait on context
// cancellation — the worker may still deliver into it, and a recycled
// channel must never have a delivery in flight.
func (c *Cluster) call(ctx context.Context, ev Event) (result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ack := c.getAck()
	if err := c.submit(ctx, ev, ack); err != nil {
		c.putAck(ack)
		return result{}, err
	}
	select {
	case res := <-ack:
		c.putAck(ack)
		return res, res.err
	case <-ctx.Done():
		return result{}, fmt.Errorf("%w: %w", ErrCanceled, ctx.Err())
	}
}

// submit validates and enqueues one event, honoring the cluster's
// backpressure mode. ack may be nil (fire-and-forget, used by the
// workload replay path).
func (c *Cluster) submit(ctx context.Context, ev Event, ack chan result) error {
	if err := validEventType(ev.Type); err != nil {
		return err
	}
	return c.enqueue(ctx, ev.Tenant, message{ev: ev, ack: ack})
}

// validEventType is the single serving-event allowlist shared by the
// single-event and batch submission paths.
func validEventType(t EventType) error {
	switch t {
	case EventStreamArrival, EventStreamDeparture, EventUserLeave, EventUserJoin, EventResolve:
		return nil
	default:
		return fmt.Errorf("cluster: unknown event type %d", t)
	}
}

// enqueue is the single shard-channel send shared by every submission
// path: it validates the tenant index and the open state, then delivers
// msg to the owning shard under the cluster's backpressure mode. The
// read lock is held only for the send, never across a result wait.
func (c *Cluster) enqueue(ctx context.Context, tenant int, msg message) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.enqueueLocked(ctx, tenant, msg)
}

// enqueueLocked is enqueue's body; it requires c.mu held (read or
// write) and must stay in the same critical section as any read of the
// cluster's layout fields (tenants, shardOf, shards, catalog) the
// caller pairs it with — Reshard swaps those under the write lock, and
// an event must land on the layout it was prepared against. Callers
// already under the read lock use this directly (Go's RWMutex is not
// reentrant: a recursive RLock can deadlock behind a waiting writer).
func (c *Cluster) enqueueLocked(ctx context.Context, tenant int, msg message) error {
	if tenant < 0 || tenant >= len(c.tenants) {
		return fmt.Errorf("%w: tenant %d out of range [0,%d)", ErrUnknownTenant, tenant, len(c.tenants))
	}
	// An already-done context must not enqueue: without this guard the
	// send and ctx.Done() cases below could both be ready and the event
	// would be applied ~half the time while the caller sees ErrCanceled.
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	if c.closed {
		return ErrClosed
	}
	ch := c.shards[c.shardOf[tenant]].ch
	if c.opts.Backpressure == BackpressureReject {
		select {
		case ch <- msg:
			return nil
		default:
			return fmt.Errorf("%w: shard %d", ErrQueueFull, c.shardOf[tenant])
		}
	}
	// Fast path: a context that can never be canceled (Background and
	// friends) needs no select — a plain channel send is markedly
	// cheaper on the per-event hot path.
	done := ctx.Done()
	if done == nil {
		ch <- msg
		return nil
	}
	select {
	case ch <- msg:
		return nil
	case <-done:
		return fmt.Errorf("%w: %w", ErrCanceled, ctx.Err())
	}
}
