package cluster

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/generator"
	"repro/internal/headend"
)

// TestClusterLedgerMatchesRescanReference is the fleet-level (E12-shaped)
// differential determinism check: a sharded cluster running the default
// ledger-based guarded online policy — through the full workload (batched
// arrivals, departures, gateway churn) plus an installing re-solve per
// tenant — must produce per-tenant snapshots bit-identical to a serial
// replay of the exact same event schedule on tenants running the retained
// pre-ledger rescan implementation (NewRescanOnlinePolicy), at every
// shard count.
// TestClusterSharedOriginLedgerMatchesRescanReference extends the
// differential to the shared catalog (ROADMAP nuance (d)): with the
// SharedOrigin cost model pricing later admissions at the replication
// fraction, the ledger guard (FitsDeltaScaled) and the retained rescan
// reference guard (CheckFeasibleScaled over recorded charge scales)
// must admit bit-identically — per-tenant snapshots and the registry's
// accounting equal at every shard count, not just under Isolated.
func TestClusterSharedOriginLedgerMatchesRescanReference(t *testing.T) {
	const tenants, channels, gateways = 6, 20, 6
	steps := catalogScheduleFor(tenants, channels, 880)
	model := catalog.SharedOrigin{ReplicationFraction: 0.25}
	ctx := context.Background()

	build := func(shards int, rescan bool) *Cluster {
		cfgs := make([]TenantConfig, tenants)
		for i := range cfgs {
			in, err := generator.CableTV{
				Channels: channels, Gateways: gateways,
				Seed: 880 + int64(i), EgressFraction: 0.25,
			}.Generate()
			if err != nil {
				t.Fatal(err)
			}
			cfgs[i] = TenantConfig{Instance: in}
			if rescan {
				pol, err := headend.NewRescanOnlinePolicy(in)
				if err != nil {
					t.Fatal(err)
				}
				cfgs[i].Policy = pol
			}
		}
		bindings := catalog.IdentityBindings(tenants, channels, func(s int) catalog.ID {
			return catalog.ID(fmt.Sprintf("s-%03d", s))
		})
		c, err := New(cfgs, Options{
			Shards: shards, BatchSize: 8,
			Catalog: &CatalogOptions{Streams: bindings, CostModel: model},
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	drive := func(c *Cluster) (tenantsSnap []headend.TenantSnapshot, catalogTable string) {
		for _, st := range steps {
			id := catalog.ID(fmt.Sprintf("s-%03d", st.stream))
			if st.depart {
				if _, err := c.DepartCatalogStream(ctx, st.tenant, id); err != nil {
					t.Fatal(err)
				}
				continue
			}
			if _, err := c.OfferCatalogStream(ctx, st.tenant, id); err != nil {
				t.Fatal(err)
			}
		}
		fs, err := c.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		return fs.Tenants, fs.Catalog.Render()
	}

	ref := build(1, true)
	refTenants, refCatalog := drive(ref)
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}
	for _, ts := range refTenants {
		if ts.StreamsAdmitted == 0 {
			t.Fatal("reference admitted nothing; schedule cannot exercise the scaled guard")
		}
	}

	for _, shards := range []int{1, 2, 4, 8} {
		c := build(shards, false)
		gotTenants, gotCatalog := drive(c)
		for i := range gotTenants {
			// The policy name differs only in implementation, never in
			// behavior; normalize it before the bit-identity check.
			g, r := gotTenants[i], refTenants[i]
			g.Policy, r.Policy = "", ""
			if g != r {
				t.Errorf("shards=%d tenant %d diverged from scaled rescan reference:\nledger: %+v\nrescan: %+v",
					shards, i, g, r)
			}
		}
		if gotCatalog != refCatalog {
			t.Errorf("shards=%d catalog accounting diverged:\n--- ledger\n%s\n--- rescan\n%s",
				shards, gotCatalog, refCatalog)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestClusterLedgerMatchesRescanReference(t *testing.T) {
	const tenants = 6
	w := Workload{Seed: 120, Rounds: 2, DepartEvery: 3, ChurnEvery: 5}
	instance := func(i int) *generator.CableTV {
		return &generator.CableTV{
			Channels: 20, Gateways: 6, Seed: 120 + int64(i), EgressFraction: 0.25,
		}
	}

	// Reference: serial replay on rescan-guarded tenants. The schedule is
	// a pure function of the seed and the instance, so it can be taken
	// from any cluster; a single-shard one is built just to derive it.
	var refChurn, refInstalled []headend.TenantSnapshot
	{
		cfgs := make([]TenantConfig, tenants)
		for i := range cfgs {
			in, err := instance(i).Generate()
			if err != nil {
				t.Fatal(err)
			}
			cfgs[i] = TenantConfig{Instance: in}
		}
		c, err := New(cfgs, Options{Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		for i := range cfgs {
			in, err := instance(i).Generate()
			if err != nil {
				t.Fatal(err)
			}
			pol, err := headend.NewRescanOnlinePolicy(in)
			if err != nil {
				t.Fatal(err)
			}
			ten, err := headend.NewTenant(in, pol)
			if err != nil {
				t.Fatal(err)
			}
			for _, ev := range w.Events(c, i) {
				switch ev.Type {
				case EventStreamArrival:
					ten.OfferStream(ev.Stream)
				case EventStreamDeparture:
					ten.DepartStream(ev.Stream)
				case EventUserLeave:
					ten.UserLeave(ev.User)
				case EventUserJoin:
					ten.UserJoin(ev.User)
				}
			}
			refChurn = append(refChurn, ten.Snapshot())
			if _, err := ten.Resolve(core.Options{}, true); err != nil {
				t.Fatal(err)
			}
			refInstalled = append(refInstalled, ten.Snapshot())
		}
	}

	ctx := context.Background()
	for _, shards := range []int{1, 2, 4, 8} {
		cfgs := make([]TenantConfig, tenants)
		for i := range cfgs {
			in, err := instance(i).Generate()
			if err != nil {
				t.Fatal(err)
			}
			cfgs[i] = TenantConfig{Instance: in}
		}
		c, err := New(cfgs, Options{Shards: shards, BatchSize: 8})
		if err != nil {
			t.Fatal(err)
		}
		churnFS, _, err := c.RunWorkload(w)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < tenants; i++ {
			if churnFS.Tenants[i] != refChurn[i] {
				t.Errorf("shards=%d tenant %d churn snapshot diverged from rescan reference:\ncluster: %+v\nref:     %+v",
					shards, i, churnFS.Tenants[i], refChurn[i])
			}
		}
		for i := 0; i < tenants; i++ {
			if _, err := c.Resolve(ctx, i, ResolveOptions{Install: true}); err != nil {
				t.Fatal(err)
			}
		}
		installedFS, err := c.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < tenants; i++ {
			if installedFS.Tenants[i] != refInstalled[i] {
				t.Errorf("shards=%d tenant %d installed snapshot diverged from rescan reference:\ncluster: %+v\nref:     %+v",
					shards, i, installedFS.Tenants[i], refInstalled[i])
			}
		}
		if !installedFS.AllFeasible {
			t.Errorf("shards=%d: fleet infeasible after install", shards)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
