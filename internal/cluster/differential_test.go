package cluster

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/generator"
	"repro/internal/headend"
)

// TestClusterLedgerMatchesRescanReference is the fleet-level (E12-shaped)
// differential determinism check: a sharded cluster running the default
// ledger-based guarded online policy — through the full workload (batched
// arrivals, departures, gateway churn) plus an installing re-solve per
// tenant — must produce per-tenant snapshots bit-identical to a serial
// replay of the exact same event schedule on tenants running the retained
// pre-ledger rescan implementation (NewRescanOnlinePolicy), at every
// shard count.
func TestClusterLedgerMatchesRescanReference(t *testing.T) {
	const tenants = 6
	w := Workload{Seed: 120, Rounds: 2, DepartEvery: 3, ChurnEvery: 5}
	instance := func(i int) *generator.CableTV {
		return &generator.CableTV{
			Channels: 20, Gateways: 6, Seed: 120 + int64(i), EgressFraction: 0.25,
		}
	}

	// Reference: serial replay on rescan-guarded tenants. The schedule is
	// a pure function of the seed and the instance, so it can be taken
	// from any cluster; a single-shard one is built just to derive it.
	var refChurn, refInstalled []headend.TenantSnapshot
	{
		cfgs := make([]TenantConfig, tenants)
		for i := range cfgs {
			in, err := instance(i).Generate()
			if err != nil {
				t.Fatal(err)
			}
			cfgs[i] = TenantConfig{Instance: in}
		}
		c, err := New(cfgs, Options{Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		for i := range cfgs {
			in, err := instance(i).Generate()
			if err != nil {
				t.Fatal(err)
			}
			pol, err := headend.NewRescanOnlinePolicy(in)
			if err != nil {
				t.Fatal(err)
			}
			ten, err := headend.NewTenant(in, pol)
			if err != nil {
				t.Fatal(err)
			}
			for _, ev := range w.Events(c, i) {
				switch ev.Type {
				case EventStreamArrival:
					ten.OfferStream(ev.Stream)
				case EventStreamDeparture:
					ten.DepartStream(ev.Stream)
				case EventUserLeave:
					ten.UserLeave(ev.User)
				case EventUserJoin:
					ten.UserJoin(ev.User)
				}
			}
			refChurn = append(refChurn, ten.Snapshot())
			if _, err := ten.Resolve(core.Options{}, true); err != nil {
				t.Fatal(err)
			}
			refInstalled = append(refInstalled, ten.Snapshot())
		}
	}

	ctx := context.Background()
	for _, shards := range []int{1, 2, 4, 8} {
		cfgs := make([]TenantConfig, tenants)
		for i := range cfgs {
			in, err := instance(i).Generate()
			if err != nil {
				t.Fatal(err)
			}
			cfgs[i] = TenantConfig{Instance: in}
		}
		c, err := New(cfgs, Options{Shards: shards, BatchSize: 8})
		if err != nil {
			t.Fatal(err)
		}
		churnFS, _, err := c.RunWorkload(w)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < tenants; i++ {
			if churnFS.Tenants[i] != refChurn[i] {
				t.Errorf("shards=%d tenant %d churn snapshot diverged from rescan reference:\ncluster: %+v\nref:     %+v",
					shards, i, churnFS.Tenants[i], refChurn[i])
			}
		}
		for i := 0; i < tenants; i++ {
			if _, err := c.Resolve(ctx, i, ResolveOptions{Install: true}); err != nil {
				t.Fatal(err)
			}
		}
		installedFS, err := c.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < tenants; i++ {
			if installedFS.Tenants[i] != refInstalled[i] {
				t.Errorf("shards=%d tenant %d installed snapshot diverged from rescan reference:\ncluster: %+v\nref:     %+v",
					shards, i, installedFS.Tenants[i], refInstalled[i])
			}
		}
		if !installedFS.AllFeasible {
			t.Errorf("shards=%d: fleet infeasible after install", shards)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
