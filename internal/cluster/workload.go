package cluster

import (
	"fmt"
	"math/rand"

	"repro/internal/mmd"
)

// Workload is a deterministic synthetic event schedule for a cluster:
// every tenant replays its catalog in a seeded random order, with
// optional stream departures and gateway churn interleaved. Each tenant
// draws from its own RNG (derived from Seed and the tenant index), so
// the event sequence — and therefore every per-tenant result — is a
// pure function of the seed, independent of shard count, GOMAXPROCS,
// and scheduling.
type Workload struct {
	// Seed drives all randomness.
	Seed int64
	// Rounds replays each tenant's catalog this many times (default 1).
	// With departures enabled, later rounds re-admit freed streams.
	Rounds int
	// DepartEvery injects, after every k-th arrival, the departure of
	// the oldest still-carried offer (0 disables departures).
	DepartEvery int
	// ChurnEvery injects a gateway leave (or the matching rejoin) after
	// every k-th arrival (0 disables gateway churn).
	ChurnEvery int
}

// Events generates tenant ti's event sequence. Exposed so tests can
// replay the exact schedule a RunWorkload call submitted.
func (w Workload) Events(c *Cluster, ti int) []Event {
	return w.EventsForInstance(c.tenants[ti].Instance(), ti)
}

// EventsForInstance generates tenant ti's event sequence from the
// tenant's instance alone — no live cluster needed, so remote load
// drivers (mmdserve -stream) can derive the exact schedule a local
// RunWorkload would submit and pipe it over the wire.
func (w Workload) EventsForInstance(in *mmd.Instance, ti int) []Event {
	rounds := w.Rounds
	if rounds <= 0 {
		rounds = 1
	}
	rng := rand.New(rand.NewSource(w.Seed + int64(ti)*1_000_003 + 1))
	var evs []Event
	arrivals := 0
	var carried []int // offered streams, oldest first, for departures
	var away []int    // gateways currently away, oldest first
	for round := 0; round < rounds; round++ {
		for _, s := range rng.Perm(in.NumStreams()) {
			evs = append(evs, Event{Tenant: ti, Type: EventStreamArrival, Stream: s})
			arrivals++
			carried = append(carried, s)
			if w.DepartEvery > 0 && arrivals%w.DepartEvery == 0 {
				d := carried[0]
				carried = carried[1:]
				evs = append(evs, Event{Tenant: ti, Type: EventStreamDeparture, Stream: d})
			}
			if w.ChurnEvery > 0 && arrivals%w.ChurnEvery == 0 {
				if len(away) > 0 {
					u := away[0]
					away = away[1:]
					evs = append(evs, Event{Tenant: ti, Type: EventUserJoin, User: u})
				} else if in.NumUsers() > 0 {
					u := rng.Intn(in.NumUsers())
					away = append(away, u)
					evs = append(evs, Event{Tenant: ti, Type: EventUserLeave, User: u})
				}
			}
		}
	}
	return evs
}

// RunWorkload generates every tenant's schedule and submits the events
// round-robin across tenants (interleaving tenants within each shard's
// queue, which is what exercises batching), then waits for all shards
// to drain via a snapshot barrier. It returns the quiesced fleet
// snapshot and the total number of events submitted.
//
// Replay is fire-and-forget: events are enqueued without completion
// channels, so arrivals coalesce into full batches and the snapshot is
// the only synchronization point. The replay always blocks on a full
// shard queue (backpressure by blocking, regardless of
// Options.Backpressure) so a deterministic schedule is never dropped.
func (c *Cluster) RunWorkload(w Workload) (*FleetSnapshot, int, error) {
	seqs := make([][]Event, len(c.tenants))
	for ti := range c.tenants {
		seqs[ti] = w.Events(c, ti)
	}
	total := 0
	for i := 0; ; i++ {
		any := false
		for ti := range seqs {
			if i < len(seqs[ti]) {
				if err := c.post(seqs[ti][i]); err != nil {
					return nil, total, fmt.Errorf("cluster: workload: %w", err)
				}
				total++
				any = true
			}
		}
		if !any {
			break
		}
	}
	fs, err := c.Snapshot()
	if err != nil {
		return nil, total, err
	}
	return fs, total, nil
}

// post enqueues one event fire-and-forget, always blocking when the
// shard queue is full. Results are observed via Snapshot.
func (c *Cluster) post(ev Event) error {
	if ev.Tenant < 0 || ev.Tenant >= len(c.tenants) {
		return fmt.Errorf("%w: tenant %d out of range [0,%d)", ErrUnknownTenant, ev.Tenant, len(c.tenants))
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return ErrClosed
	}
	c.shards[c.shardOf[ev.Tenant]].ch <- message{ev: ev}
	return nil
}
