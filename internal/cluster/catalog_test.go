package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/generator"
	"repro/internal/headend"
)

// catalogTestFleet builds n CableTV tenants with every stream bound
// into the catalog under identity mapping ("s-NNN" → local s at every
// tenant — the fully overlapping regional-CDN shape).
func catalogTestFleet(t *testing.T, n, channels, gateways int, seed int64, egress float64,
	shards int, model catalog.CostModel) *Cluster {
	t.Helper()
	cfgs := make([]TenantConfig, n)
	for i := range cfgs {
		in, err := generator.CableTV{
			Channels: channels, Gateways: gateways,
			Seed: seed + int64(i), EgressFraction: egress,
		}.Generate()
		if err != nil {
			t.Fatal(err)
		}
		cfgs[i] = TenantConfig{Instance: in}
	}
	bindings := catalog.IdentityBindings(n, channels, func(s int) catalog.ID {
		return catalog.ID(fmt.Sprintf("s-%03d", s))
	})
	c, err := New(cfgs, Options{
		Shards: shards, BatchSize: 8,
		Catalog: &CatalogOptions{Streams: bindings, CostModel: model},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// catalogSchedule is a deterministic interleaved offer/depart schedule:
// each step names a tenant, a stream, and whether to depart instead of
// offer. It is a pure function of the seed.
type catalogStep struct {
	tenant, stream int
	depart         bool
}

func catalogScheduleFor(tenants, channels int, seed int64) []catalogStep {
	rng := rand.New(rand.NewSource(seed))
	var steps []catalogStep
	var carried [][]int
	carried = make([][]int, tenants)
	for round := 0; round < 2; round++ {
		for ti := 0; ti < tenants; ti++ {
			for k, s := range rng.Perm(channels) {
				steps = append(steps, catalogStep{tenant: ti, stream: s})
				carried[ti] = append(carried[ti], s)
				if k%3 == 2 {
					d := carried[ti][0]
					carried[ti] = carried[ti][1:]
					steps = append(steps, catalogStep{tenant: ti, stream: d, depart: true})
				}
			}
		}
	}
	return steps
}

// TestCatalogIsolatedBitIdenticalToPlainSessions is the tentpole's
// differential acceptance check: under the Isolated cost model (the
// default), driving the fleet through the catalog surface
// (OfferCatalogStream/DepartCatalogStream by fleet identity) must
// produce per-tenant snapshots bit-identical to the PR 3 serving path
// (OfferStream/DepartStream by local index) over the same schedule, at
// every shard count. The catalog with Isolated is pure identity plus
// reference counting — it must never change an admission decision.
func TestCatalogIsolatedBitIdenticalToPlainSessions(t *testing.T) {
	const tenants, channels, gateways = 6, 20, 6
	steps := catalogScheduleFor(tenants, channels, 770)
	ctx := context.Background()

	// Reference: plain serving API v2 on a single shard, no catalog.
	var refTable string
	var refOffers []OfferResult
	{
		cfgs := make([]TenantConfig, tenants)
		for i := range cfgs {
			in, err := generator.CableTV{
				Channels: channels, Gateways: gateways,
				Seed: 770 + int64(i), EgressFraction: 0.25,
			}.Generate()
			if err != nil {
				t.Fatal(err)
			}
			cfgs[i] = TenantConfig{Instance: in}
		}
		c, err := New(cfgs, Options{Shards: 1, BatchSize: 8})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		for _, st := range steps {
			if st.depart {
				if _, err := c.DepartStream(ctx, st.tenant, st.stream); err != nil {
					t.Fatal(err)
				}
				continue
			}
			res, err := c.OfferStream(ctx, st.tenant, st.stream)
			if err != nil {
				t.Fatal(err)
			}
			refOffers = append(refOffers, res)
		}
		fs, err := c.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		refTable = fs.RenderTenants()
		if fs.Catalog != nil {
			t.Fatal("plain cluster grew a catalog section")
		}
	}

	for _, shards := range []int{1, 2, 4, 8} {
		c := catalogTestFleet(t, tenants, channels, gateways, 770, 0.25, shards, catalog.Isolated{})
		var offers []CatalogResult
		for _, st := range steps {
			id := catalog.ID(fmt.Sprintf("s-%03d", st.stream))
			if st.depart {
				if _, err := c.DepartCatalogStream(ctx, st.tenant, id); err != nil {
					t.Fatal(err)
				}
				continue
			}
			res, err := c.OfferCatalogStream(ctx, st.tenant, id)
			if err != nil {
				t.Fatal(err)
			}
			offers = append(offers, res)
		}
		fs, err := c.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if got := fs.RenderTenants(); got != refTable {
			t.Fatalf("shards=%d: catalog(Isolated) tenant table differs from plain sessions:\n--- catalog\n%s\n--- plain\n%s",
				shards, got, refTable)
		}
		if len(offers) != len(refOffers) {
			t.Fatalf("shards=%d: %d offers vs %d", shards, len(offers), len(refOffers))
		}
		for i, res := range offers {
			want := refOffers[i]
			if res.Admitted != want.Accepted || res.Utility != want.Utility ||
				len(res.Subscribers) != len(want.Subscribers) {
				t.Fatalf("shards=%d offer %d: catalog %+v vs plain %+v", shards, i, res, want)
			}
			if res.CostScale != 1 {
				t.Fatalf("shards=%d offer %d: Isolated charged scale %v", shards, i, res.CostScale)
			}
			if res.Admitted && res.CostCharged != res.FullCost {
				t.Fatalf("shards=%d offer %d: Isolated discounted: %+v", shards, i, res)
			}
		}
		// Fleet-wide accounting under Isolated: zero savings, and the
		// registry state itself is shard-count invariant.
		if fs.Catalog == nil {
			t.Fatalf("shards=%d: no catalog section", shards)
		}
		if fs.Catalog.OriginSavings != 0 {
			t.Fatalf("shards=%d: Isolated saved %v", shards, fs.Catalog.OriginSavings)
		}
	}
}

// TestCatalogSharedOriginLifecycle drives the SharedOrigin protocol end
// to end through the cluster session surface: discount pricing, shared
// references, fixed-at-admission charges, eviction on last departure,
// and the snapshot accounting.
func TestCatalogSharedOriginLifecycle(t *testing.T) {
	ctx := context.Background()
	c := catalogTestFleet(t, 3, 10, 5, 40, 0.9, 2, catalog.SharedOrigin{ReplicationFraction: 0.25})
	id := catalog.ID("s-004")

	first, err := c.OfferCatalogStream(ctx, 0, id)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Admitted {
		t.Fatalf("first offer rejected: %+v", first)
	}
	if first.CostScale != 1 || first.CostCharged != first.FullCost || first.Refs != 1 {
		t.Fatalf("first offer = %+v", first)
	}
	second, err := c.OfferCatalogStream(ctx, 1, id)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Admitted {
		t.Fatalf("second offer rejected: %+v", second)
	}
	if second.CostScale != 0.25 || second.Refs != 2 {
		t.Fatalf("second offer = %+v", second)
	}
	if want := 0.25 * second.FullCost; second.CostCharged != want {
		t.Fatalf("second charge = %v, want %v", second.CostCharged, want)
	}
	if len(second.SharedWith) != 1 || second.SharedWith[0] != 0 {
		t.Fatalf("second SharedWith = %v", second.SharedWith)
	}

	// Re-offer by a holder: rejection, refcount untouched.
	again, err := c.OfferCatalogStream(ctx, 0, id)
	if err != nil || again.Admitted || again.Refs != 2 {
		t.Fatalf("re-offer = %+v, %v", again, err)
	}

	// Snapshot carries the catalog section with the savings.
	fs, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if fs.Catalog == nil || fs.Catalog.ActiveShared != 1 {
		t.Fatalf("catalog section = %+v", fs.Catalog)
	}
	if want := 0.75 * second.FullCost; fs.Catalog.OriginSavings != want {
		t.Fatalf("savings = %v, want %v", fs.Catalog.OriginSavings, want)
	}
	if !fs.AllFeasible {
		t.Fatal("fleet infeasible under discounted pricing")
	}

	// Departures: the full payer first (survivor keeps its discount),
	// then the survivor, which evicts.
	dep0, err := c.DepartCatalogStream(ctx, 0, id)
	if err != nil || !dep0.Removed || dep0.Refs != 1 || dep0.Evicted {
		t.Fatalf("first depart = %+v, %v", dep0, err)
	}
	dep1, err := c.DepartCatalogStream(ctx, 1, id)
	if err != nil || !dep1.Removed || dep1.Refs != 0 || !dep1.Evicted {
		t.Fatalf("last depart = %+v, %v", dep1, err)
	}
	// Departing a stream the tenant does not carry: Removed false.
	dep2, err := c.DepartCatalogStream(ctx, 2, id)
	if err != nil || dep2.Removed || dep2.Evicted {
		t.Fatalf("uncarried depart = %+v, %v", dep2, err)
	}
	// A fresh admission starts a new occupancy cycle at full price.
	fresh, err := c.OfferCatalogStream(ctx, 2, id)
	if err != nil || !fresh.Admitted || fresh.CostScale != 1 {
		t.Fatalf("post-eviction offer = %+v, %v", fresh, err)
	}
}

// TestCatalogErrors pins the sentinel taxonomy of the catalog surface.
func TestCatalogErrors(t *testing.T) {
	ctx := context.Background()

	// No catalog configured.
	in, err := generator.CableTV{Channels: 5, Gateways: 3, Seed: 9}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	bare, err := New([]TenantConfig{{Instance: in}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	if _, err := bare.OfferCatalogStream(ctx, 0, "x"); !errors.Is(err, ErrNoCatalog) {
		t.Fatalf("no catalog: %v", err)
	}
	if _, err := bare.CatalogSnapshot(); !errors.Is(err, ErrNoCatalog) {
		t.Fatalf("no catalog snapshot: %v", err)
	}

	c := catalogTestFleet(t, 2, 5, 3, 11, 0.5, 1, nil)
	if _, err := c.OfferCatalogStream(ctx, 0, "nope"); !errors.Is(err, ErrUnknownCatalogStream) {
		t.Fatalf("unknown id: %v", err)
	}
	if _, err := c.DepartCatalogStream(ctx, 0, "nope"); !errors.Is(err, ErrUnknownCatalogStream) {
		t.Fatalf("unknown id depart: %v", err)
	}
	if _, err := c.OfferCatalogStream(ctx, 7, "s-000"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown tenant: %v", err)
	}

	// Bad bindings are rejected at construction.
	if _, err := New([]TenantConfig{{Instance: in}}, Options{
		Catalog: &CatalogOptions{Streams: []catalog.Binding{
			{ID: "x", Local: map[int]int{0: 99}},
		}},
	}); err == nil {
		t.Fatal("out-of-range binding accepted")
	}
	if _, err := New([]TenantConfig{{Instance: in}}, Options{
		Catalog: &CatalogOptions{Streams: []catalog.Binding{
			{ID: "x", Local: map[int]int{3: 0}},
		}},
	}); err == nil {
		t.Fatal("out-of-range tenant binding accepted")
	}
}

// TestCatalogConcurrentOffersDeparts is the cross-shard race check: all
// shards hammer the same CatalogIDs with offers and departures
// concurrently (run under -race). At the end every reference count must
// be zero, the accounting must balance, and evictions must not have
// double-fired (the registry's lifetime eviction count can never exceed
// its admission count, and a fresh post-storm admission is priced at
// full cost — proof the occupancy state drained cleanly).
func TestCatalogConcurrentOffersDeparts(t *testing.T) {
	const tenants, channels, rounds = 8, 6, 30
	c := catalogTestFleet(t, tenants, channels, 6, 530, 0.5, 4,
		catalog.SharedOrigin{ReplicationFraction: 0.25})
	ctx := context.Background()

	var wg sync.WaitGroup
	var mu sync.Mutex
	observedEvictions := 0
	for ti := 0; ti < tenants; ti++ {
		wg.Add(1)
		go func(tenant int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + tenant)))
			for r := 0; r < rounds; r++ {
				id := catalog.ID(fmt.Sprintf("s-%03d", rng.Intn(channels)))
				res, err := c.OfferCatalogStream(ctx, tenant, id)
				if err != nil {
					t.Error(err)
					return
				}
				if res.Admitted {
					dep, err := c.DepartCatalogStream(ctx, tenant, id)
					if err != nil {
						t.Error(err)
						return
					}
					if !dep.Removed {
						t.Errorf("tenant %d: admitted %s but depart found nothing", tenant, id)
						return
					}
					if dep.Evicted {
						mu.Lock()
						observedEvictions++
						mu.Unlock()
					}
				}
			}
		}(ti)
	}
	wg.Wait()

	fs, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snap := fs.Catalog
	if snap == nil {
		t.Fatal("no catalog section")
	}
	for _, e := range snap.Entries {
		if e.Refs != 0 || len(e.Holders) != 0 {
			t.Fatalf("refcount leaked: %+v", e)
		}
		if e.Evictions > e.Admissions {
			t.Fatalf("eviction double-fired: %+v", e)
		}
		if e.ChargedCost > e.FullCost || e.Savings < 0 {
			t.Fatalf("accounting: %+v", e)
		}
	}
	if snap.Evictions < observedEvictions {
		t.Fatalf("registry evictions %d < observed %d", snap.Evictions, observedEvictions)
	}
	// Post-storm: every entry starts a fresh cycle at full price.
	for s := 0; s < channels; s++ {
		id := catalog.ID(fmt.Sprintf("s-%03d", s))
		res, err := c.OfferCatalogStream(ctx, 0, id)
		if err != nil {
			t.Fatal(err)
		}
		if res.Admitted && res.CostScale != 1 {
			t.Fatalf("post-storm %s priced at %v", id, res.CostScale)
		}
	}
}

// TestInstallReleasesDroppedCatalogRefs: an installing re-solve adopts
// the offline lineup wholesale, dropping catalog-admitted streams the
// offline solution excludes — their fleet references must be released,
// or later tenants would be discounted against an origin nobody pays
// for and the origin could never be evicted.
func TestInstallReleasesDroppedCatalogRefs(t *testing.T) {
	ctx := context.Background()
	in, err := generator.CableTV{Channels: 12, Gateways: 5, Seed: 901, EgressFraction: 0.3}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	pol, err := headend.NewThresholdPolicy(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	bindings := make([]catalog.Binding, in.NumStreams())
	for s := range bindings {
		bindings[s] = catalog.Binding{ID: catalog.ID(fmt.Sprintf("s-%03d", s)), Local: map[int]int{0: s}}
	}
	c, err := New([]TenantConfig{{Instance: in, Policy: pol}}, Options{
		Shards:  1,
		Catalog: &CatalogOptions{Streams: bindings, CostModel: catalog.SharedOrigin{ReplicationFraction: 0.25}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for s := 0; s < in.NumStreams(); s++ {
		if _, err := c.OfferCatalogStream(ctx, 0, catalog.ID(fmt.Sprintf("s-%03d", s))); err != nil {
			t.Fatal(err)
		}
	}
	before, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	refsBefore := 0
	for _, e := range before.Catalog.Entries {
		refsBefore += e.Refs
	}
	if refsBefore == 0 {
		t.Fatal("nothing admitted; workload cannot exercise the install-drop path")
	}

	rr, err := c.Resolve(ctx, 0, ResolveOptions{Install: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Installed {
		t.Fatalf("install skipped: %+v", rr)
	}
	after, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// The reconcile runs in both directions: with every stream bound,
	// the reference count must equal the installed lineup's carried
	// stream count exactly — dropped streams released, picked-up
	// streams registered.
	refsAfter := 0
	for _, e := range after.Catalog.Entries {
		refsAfter += e.Refs
	}
	if refsAfter != after.Tenants[0].ActiveStreams {
		t.Fatalf("refs after install = %d, carried streams = %d (registry desynced)",
			refsAfter, after.Tenants[0].ActiveStreams)
	}
	if refsAfter == refsBefore {
		t.Fatalf("install changed nothing (%d refs both sides); the offline lineup must "+
			"differ from the greedy one for this test to bite", refsBefore)
	}

	// No ghost references in either direction: a reference implies a
	// carried stream (depart removes it), no reference implies nothing
	// carried, and draining everything ends at zero refs fleet-wide.
	for _, e := range after.Catalog.Entries {
		dep, err := c.DepartCatalogStream(ctx, 0, e.ID)
		if err != nil {
			t.Fatal(err)
		}
		if e.Refs == 1 && !dep.Removed {
			t.Fatalf("%s: ref held but stream not carried (ghost reference)", e.ID)
		}
		if e.Refs == 0 && dep.Removed {
			t.Fatalf("%s: stream carried without a reference (ghost carry)", e.ID)
		}
		if e.Refs == 0 && dep.Evicted {
			t.Fatalf("%s: eviction without a reference", e.ID)
		}
	}
	final, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range final.Catalog.Entries {
		if e.Refs != 0 {
			t.Fatalf("%s: %d refs leaked after full drain", e.ID, e.Refs)
		}
	}
}

// TestApplyBatchIgnoresCallerCostScale: Event.CostScale is owned by the
// catalog's acquire protocol; a caller-supplied value must not buy a
// discount on the feasibility guard.
func TestApplyBatchIgnoresCallerCostScale(t *testing.T) {
	honest, cheater := batchTestClusters(t)
	ctx := context.Background()
	var plain, scaled []Event
	for s := 0; s < 15; s++ {
		plain = append(plain, Event{Type: EventStreamArrival, Stream: s})
		scaled = append(scaled, Event{Type: EventStreamArrival, Stream: s, CostScale: 1e-9})
	}
	for ti := 0; ti < honest.NumTenants(); ti++ {
		if _, err := honest.ApplyBatch(ctx, ti, plain); err != nil {
			t.Fatal(err)
		}
		if _, err := cheater.ApplyBatch(ctx, ti, scaled); err != nil {
			t.Fatal(err)
		}
	}
	hfs, err := honest.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	cfs, err := cheater.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if hfs.RenderTenants() != cfs.RenderTenants() {
		t.Fatalf("caller-supplied CostScale changed admissions:\n--- scaled\n%s\n--- plain\n%s",
			cfs.RenderTenants(), hfs.RenderTenants())
	}
}

// TestLocalIndexDepartReleasesFleetReference is the regression test for
// ROADMAP nuance (c): departing a catalog-managed stream by local index
// (plain DepartStream) must settle its fleet reference exactly like
// DepartCatalogStream — the shard worker resolves the binding and
// releases its held reference, so refs track carriage no matter which
// surface the departure came through, and a re-offer is a fresh
// full-price admission, not a ghost.
func TestLocalIndexDepartReleasesFleetReference(t *testing.T) {
	ctx := context.Background()
	c := catalogTestFleet(t, 2, 10, 5, 41, 0.9, 1, catalog.SharedOrigin{ReplicationFraction: 0.25})
	id := catalog.ID("s-002")

	first, err := c.OfferCatalogStream(ctx, 0, id)
	if err != nil || !first.Admitted || first.Refs != 1 {
		t.Fatalf("first offer = %+v, %v", first, err)
	}
	// Local-index departure: the worker must release the held fleet
	// reference (it was the last one, so the origin is evicted).
	if _, err := c.DepartStream(ctx, 0, 2); err != nil {
		t.Fatal(err)
	}
	snap, err := c.CatalogSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	e := entryFor(t, snap, id)
	if e.Refs != 0 || e.Evictions != 1 {
		t.Fatalf("local-index depart leaked the reference: %+v", e)
	}

	// A second holder keeps the origin alive across one tenant's
	// local-index departure.
	for ti := 0; ti < 2; ti++ {
		if res, err := c.OfferCatalogStream(ctx, ti, id); err != nil || !res.Admitted {
			t.Fatalf("tenant %d re-offer = %+v, %v", ti, res, err)
		}
	}
	if _, err := c.DepartStream(ctx, 0, 2); err != nil {
		t.Fatal(err)
	}
	if snap, err = c.CatalogSnapshot(); err != nil {
		t.Fatal(err)
	}
	if e = entryFor(t, snap, id); e.Refs != 1 || e.Evictions != 1 {
		t.Fatalf("shared origin mis-settled after local-index depart: %+v", e)
	}

	// The re-offer after a local-index departure is a fresh admission at
	// the cost model's price (tenant 1 still holds the origin, so tenant
	// 0 pays the replication fraction), and the accounting records it.
	again, err := c.OfferCatalogStream(ctx, 0, id)
	if err != nil || !again.Admitted {
		t.Fatalf("re-offer = %+v, %v", again, err)
	}
	if again.CostScale != 0.25 || again.Refs != 2 {
		t.Fatalf("re-offer after release mispriced: %+v", again)
	}

	// Draining through either surface ends at zero refs — nothing leaks.
	if _, err := c.DepartStream(ctx, 0, 2); err != nil {
		t.Fatal(err)
	}
	dep, err := c.DepartCatalogStream(ctx, 1, id)
	if err != nil || !dep.Removed || dep.Refs != 0 || !dep.Evicted {
		t.Fatalf("final depart = %+v, %v", dep, err)
	}
	if snap, err = c.CatalogSnapshot(); err != nil {
		t.Fatal(err)
	}
	if e = entryFor(t, snap, id); e.Refs != 0 {
		t.Fatalf("refs leaked after full drain: %+v", e)
	}
}

// entryFor returns the snapshot entry for id.
func entryFor(t *testing.T, snap *catalog.Snapshot, id catalog.ID) *catalog.EntrySnapshot {
	t.Helper()
	for i := range snap.Entries {
		if snap.Entries[i].ID == id {
			return &snap.Entries[i]
		}
	}
	t.Fatalf("no catalog entry %q", id)
	return nil
}

// TestCatalogNilContextAndDuplicateBindings pins two construction/entry
// edges: the catalog session methods accept a nil context like every
// other session method, and a (tenant, local stream) pair may back at
// most one catalog ID.
func TestCatalogNilContextAndDuplicateBindings(t *testing.T) {
	c := catalogTestFleet(t, 2, 5, 3, 12, 0.9, 1, nil)
	if _, err := c.OfferCatalogStream(nil, 0, "s-001"); err != nil { //lint:ignore SA1012 nil ctx is part of the session contract
		t.Fatalf("nil ctx offer: %v", err)
	}
	if _, err := c.DepartCatalogStream(nil, 0, "s-001"); err != nil { //lint:ignore SA1012 nil ctx is part of the session contract
		t.Fatalf("nil ctx depart: %v", err)
	}

	in, err := generator.CableTV{Channels: 5, Gateways: 3, Seed: 9}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New([]TenantConfig{{Instance: in}}, Options{
		Catalog: &CatalogOptions{Streams: []catalog.Binding{
			{ID: "x", Local: map[int]int{0: 2}},
			{ID: "y", Local: map[int]int{0: 2}},
		}},
	}); err == nil {
		t.Fatal("two catalog IDs bound to one (tenant, stream) accepted")
	}
}
