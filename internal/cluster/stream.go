package cluster

import (
	"context"
	"fmt"
	"io"
	"sync"

	"repro/internal/catalog"
)

// Serving API v4: persistent streaming ingestion.
//
// A StreamConn is a long-lived, pipelined session over the cluster: the
// submitter pushes events one after another without waiting for their
// results, the shard workers apply them in submission order (per
// tenant, exactly like the single-event session methods), and the
// receiver reads one typed result per event back in submission order.
// Between the two sides sits a bounded in-flight window — the stream's
// backpressure point: when Window results are unread, Submit blocks (or
// fails fast with ErrQueueFull under BackpressureReject) until the
// receiver catches up, so a slow reader can never queue unbounded
// state.
//
// Catalog events need no special casing: Submit runs the same
// acquire-then-route protocol as OfferCatalogStream (the registry
// prices the admission and takes a provisional reference before the
// event crosses the shard queue), and the shard worker settles the
// fleet reference in FIFO order right after applying the event. A
// connection that is dropped with results unread therefore leaks
// nothing — every enqueued event still applies and settles on its
// worker; only the results go unobserved.
//
// Because every streamed event crosses the shard queue as an
// acknowledged single event, a streamed schedule produces bit-identical
// fleet snapshots to the same schedule submitted through the
// per-operation session methods — and (per-tenant tables) to ApplyBatch
// — at any shard count. The HTTP front end exposes this surface as
// `POST /v1/stream` (NDJSON in, NDJSON out; see internal/httpserve and
// repro/streamclient).

// StreamOptions configures one StreamConn.
type StreamOptions struct {
	// Window bounds the number of in-flight events (submitted, result
	// not yet received). Default 64.
	Window int
	// Backpressure selects what Submit does when the window is full:
	// BackpressureBlock (default) parks the submitter until the receiver
	// drains a result or ctx is done; BackpressureReject fails fast with
	// ErrQueueFull. Independent of the cluster's own shard-queue mode.
	Backpressure Backpressure
}

// StreamResult is one event's typed outcome on a stream, delivered in
// submission order. Exactly the field matching Type (and, for
// catalog-managed events, Catalog) is populated. Err carries a
// per-event failure — unknown tenant, unknown catalog stream, a failed
// re-solve, or a transport sentinel from the shard enqueue — without
// ending the stream; match it with errors.Is against the serving
// taxonomy.
type StreamResult struct {
	// Seq is the event's submission index on this stream (0-based).
	Seq int
	// Type echoes the event's type.
	Type EventType
	// CatalogID echoes the fleet identity of a catalog-managed event.
	CatalogID catalog.ID
	// Offer / Depart / Churn / Resolve mirror the per-operation session
	// results (plain events).
	Offer   OfferResult
	Depart  DepartResult
	Churn   ChurnResult
	Resolve ResolveResult
	// Catalog is the typed outcome of a catalog-managed offer or
	// departure (CatalogID non-empty), mirroring OfferCatalogStream /
	// DepartCatalogStream.
	Catalog CatalogResult
	// Err is the per-event error; the stream itself stays usable.
	Err error
}

// streamPending rides the in-flight window: one entry per submitted
// event, in submission order. ack is buffered (capacity 1) and always
// receives exactly one result — from the shard worker, or from Submit
// itself when the event failed before enqueueing.
type streamPending struct {
	seq int
	typ EventType
	id  catalog.ID
	// catalog offer context captured at submit time (acquire protocol).
	catalogOffer bool
	tk           catalog.Ticket
	fullCost     float64
	ack          chan result
}

// StreamConn is a persistent, pipelined ingestion session (serving API
// v4). One goroutine calls Submit (and finally CloseSend); another
// calls Recv until io.EOF — each side is independently serialized, so
// exactly one submitter and one receiver may run concurrently. Results
// arrive in submission order.
type StreamConn struct {
	c      *Cluster
	window Backpressure

	sendMu     sync.Mutex
	sendClosed bool
	seq        int
	pending    chan *streamPending
	// free recycles settled pending entries (and their one-shot ack
	// channels, consumed exactly once by Recv before recycling) back to
	// Submit — the stream hot path allocates nothing per event once
	// warm. Entries abandoned by Close are simply not recycled.
	free chan *streamPending

	recvMu sync.Mutex
	// head is the oldest in-flight event, popped from pending but not
	// yet settled — the one-slot peek TryRecv needs to check "is the
	// next result ready?" without consuming it.
	head *streamPending
}

// OpenStream opens a streaming ingestion session over the cluster. The
// connection stays valid until CloseSend (graceful: Recv drains the
// remaining results, then reports io.EOF) or until the cluster closes.
func (c *Cluster) OpenStream(opts StreamOptions) (*StreamConn, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return nil, ErrClosed
	}
	if opts.Window <= 0 {
		opts.Window = 64
	}
	return &StreamConn{
		c:       c,
		window:  opts.Backpressure,
		pending: make(chan *streamPending, opts.Window),
		free:    make(chan *streamPending, opts.Window),
	}, nil
}

// Submit pipelines one event onto the stream: it reserves the next
// in-flight window slot (blocking or rejecting per the stream's
// backpressure mode), routes the event to its shard worker, and returns
// without waiting for the result — Recv delivers it, in submission
// order. ev follows the ApplyBatch conventions: Type must be a serving
// event type and CostScale is ignored (discounts are granted only by
// the catalog's acquire protocol). Unlike ApplyBatch, catalog-managed
// events are first-class: an arrival or departure carrying a CatalogID
// runs the catalog protocol exactly like OfferCatalogStream /
// DepartCatalogStream, with the shard worker settling the fleet
// reference in FIFO order.
//
// Submit fails only when no window slot could be reserved (ErrClosed
// after CloseSend, ErrQueueFull under BackpressureReject, ErrCanceled);
// every other failure — unknown tenant or catalog stream, a full shard
// queue, a closed cluster — is delivered in-band as the event's
// StreamResult.Err, keeping the one-result-per-event contract.
func (sc *StreamConn) Submit(ctx context.Context, ev Event) error {
	if ctx == nil {
		ctx = context.Background()
	}
	sc.sendMu.Lock()
	defer sc.sendMu.Unlock()
	if sc.sendClosed {
		return ErrClosed
	}
	var p *streamPending
	select {
	case p = <-sc.free:
		*p = streamPending{seq: sc.seq, typ: ev.Type, id: ev.CatalogID, ack: p.ack}
	default:
		p = &streamPending{seq: sc.seq, typ: ev.Type, id: ev.CatalogID, ack: make(chan result, 1)}
	}
	if sc.window == BackpressureReject {
		select {
		case sc.pending <- p:
		default:
			return fmt.Errorf("%w: stream window (%d in flight)", ErrQueueFull, cap(sc.pending))
		}
	} else {
		// An already-done context must not reserve a slot (mirrors
		// enqueue): otherwise both cases below could be ready and the
		// event would be submitted ~half the time under ErrCanceled.
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("%w: %w", ErrCanceled, err)
		}
		if done := ctx.Done(); done == nil {
			sc.pending <- p
		} else {
			select {
			case sc.pending <- p:
			case <-done:
				return fmt.Errorf("%w: %w", ErrCanceled, ctx.Err())
			}
		}
	}
	sc.seq++
	sc.route(ctx, ev, p)
	return nil
}

// route validates and enqueues one slotted event, running the catalog
// acquire protocol for catalog-managed arrivals and departures. Any
// failure is delivered into the event's ack so the receiver sees it
// in-band, in order.
func (sc *StreamConn) route(ctx context.Context, ev Event, p *streamPending) {
	fail := func(err error) { p.ack <- result{err: err} }
	if err := validEventType(ev.Type); err != nil {
		fail(err)
		return
	}
	// Discounts and fleet references are granted only by the catalog's
	// own acquire protocol, never by a caller-supplied event (the
	// ApplyBatch rule).
	ev.CostScale = 0
	if ev.CatalogID != "" && ev.Type != EventStreamArrival && ev.Type != EventStreamDeparture {
		ev.CatalogID, p.id = "", ""
	}
	// The acquire protocol and the enqueue share one read-locked section
	// (Reshard swaps the layout and the registry under the write lock,
	// and a pinned stream's tenant may change shard between two events);
	// the lock is never held across a result wait.
	c := sc.c
	c.mu.RLock()
	if ev.CatalogID != "" {
		reg, err := c.catalogFor(ev.Tenant)
		if err != nil {
			c.mu.RUnlock()
			fail(err)
			return
		}
		switch ev.Type {
		case EventStreamArrival:
			// Acquire prices the admission and takes a provisional
			// reference so a concurrent departure cannot evict the
			// origin while this event crosses the shard queue (see
			// OfferCatalogStream).
			tk, err := reg.Acquire(ev.CatalogID, ev.Tenant)
			if err != nil {
				c.mu.RUnlock()
				fail(wrapCatalogErr(err))
				return
			}
			p.catalogOffer = true
			p.tk = tk
			p.fullCost = c.tenants[ev.Tenant].Instance().StreamCostSum(tk.Local)
			ev.Stream, ev.CostScale, ev.originPayer = tk.Local, tk.Scale, tk.OriginPayer
		case EventStreamDeparture:
			local, err := reg.Lookup(ev.CatalogID, ev.Tenant)
			if err != nil {
				c.mu.RUnlock()
				fail(wrapCatalogErr(err))
				return
			}
			ev.Stream = local
		}
	}
	err := c.enqueueLocked(ctx, ev.Tenant, message{ev: ev, ack: p.ack})
	if err != nil && p.catalogOffer {
		// Never enqueued: the provisional reference is dropped (still
		// under the lock, so it reaches the registry that granted it;
		// once enqueued, the worker settles it — see applyArrival).
		c.catalog.Release(ev.CatalogID, ev.Tenant, false, p.tk.OriginPayer)
	}
	c.mu.RUnlock()
	if err != nil {
		fail(err)
	}
}

// Recv returns the next event's typed result, in submission order. It
// blocks until the event settles on its shard worker; after CloseSend
// it drains the remaining in-flight results and then reports io.EOF.
// Per-event failures arrive as StreamResult.Err with a nil Recv error.
// A Recv aborted by ctx loses nothing: the event it was waiting on
// stays at the head of the stream for the next Recv.
func (sc *StreamConn) Recv(ctx context.Context) (StreamResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sc.recvMu.Lock()
	defer sc.recvMu.Unlock()
	done := ctx.Done()
	if sc.head == nil {
		if done == nil {
			q, ok := <-sc.pending
			if !ok {
				return StreamResult{}, io.EOF
			}
			sc.head = q
		} else {
			select {
			case q, ok := <-sc.pending:
				if !ok {
					return StreamResult{}, io.EOF
				}
				sc.head = q
			case <-done:
				return StreamResult{}, fmt.Errorf("%w: %w", ErrCanceled, ctx.Err())
			}
		}
	}
	if done == nil {
		res := <-sc.head.ack
		return sc.settleHead(res), nil
	}
	select {
	case res := <-sc.head.ack:
		return sc.settleHead(res), nil
	case <-done:
		return StreamResult{}, fmt.Errorf("%w: %w", ErrCanceled, ctx.Err())
	}
}

// poisonRecycled, when non-nil (set only by test builds), scribbles a
// pending entry right before it returns to the free list, so any read
// of a recycled entry observes garbage deterministically — and shows up
// as a data race under -race when the reader is concurrent. Production
// builds leave it nil.
var poisonRecycled func(*streamPending)

// settleHead assembles the head's result and recycles the entry
// (called with recvMu held, after its ack was consumed). Ownership
// rule: the receiver — and only the receiver, only after draining the
// entry's ack — puts the entry back; entries abandoned by Close are
// leaked to the garbage collector, never recycled.
func (sc *StreamConn) settleHead(res result) StreamResult {
	p := sc.head
	sc.head = nil
	out := assembleResult(p, res)
	if poisonRecycled != nil {
		poisonRecycled(p)
	}
	select {
	case sc.free <- p:
	default:
	}
	return out
}

// TryRecv is the non-blocking Recv: it returns the next result only if
// it has already settled (ok true). ok false means no result is ready
// right now — including the drained-after-CloseSend state, which the
// next blocking Recv reports as io.EOF. Remote writers use it to
// coalesce flushes: drain everything that is ready, then flush once.
func (sc *StreamConn) TryRecv() (StreamResult, bool) {
	sc.recvMu.Lock()
	defer sc.recvMu.Unlock()
	if sc.head == nil {
		select {
		case q, ok := <-sc.pending:
			if !ok {
				return StreamResult{}, false
			}
			sc.head = q
		default:
			return StreamResult{}, false
		}
	}
	select {
	case res := <-sc.head.ack:
		return sc.settleHead(res), true
	default:
		return StreamResult{}, false
	}
}

// assembleResult builds the typed StreamResult for a settled event.
func assembleResult(p *streamPending, res result) StreamResult {
	out := StreamResult{Seq: p.seq, Type: p.typ, CatalogID: p.id, Err: res.err}
	switch {
	case res.err != nil:
	case p.id != "" && p.typ == EventStreamArrival:
		out.Catalog = CatalogResult{
			Admitted:    res.offer.Accepted,
			Subscribers: res.offer.Subscribers,
			Utility:     res.offer.Utility,
			Refs:        res.refs,
			SharedWith:  p.tk.SharedWith,
			CostScale:   p.tk.Scale,
			FullCost:    p.fullCost,
			Evicted:     res.evicted,
		}
		if out.Catalog.Admitted {
			out.Catalog.CostCharged = p.tk.Scale * p.fullCost
		}
	case p.id != "" && p.typ == EventStreamDeparture:
		out.Catalog = CatalogResult{
			Removed:     res.depart.Removed,
			Subscribers: res.depart.Subscribers,
			Refs:        res.refs,
			Evicted:     res.evicted,
		}
	case p.typ == EventStreamArrival:
		out.Offer = res.offer
	case p.typ == EventStreamDeparture:
		out.Depart = res.depart
	case p.typ == EventUserLeave, p.typ == EventUserJoin:
		out.Churn = res.churn
	case p.typ == EventResolve:
		out.Resolve = res.resolve
	}
	return out
}

// CloseSend ends the submit side: subsequent Submits fail with
// ErrClosed, and once the in-flight results are drained Recv reports
// io.EOF. Idempotent.
func (sc *StreamConn) CloseSend() {
	sc.sendMu.Lock()
	defer sc.sendMu.Unlock()
	if !sc.sendClosed {
		sc.sendClosed = true
		close(sc.pending)
	}
}

// Close abandons the stream: the submit side is closed and any unread
// results are discarded. Every in-flight event still applies and
// settles on its shard worker (catalog references included), so closing
// mid-stream leaks nothing. Safe to call at any time, from any
// goroutine, including after CloseSend.
func (sc *StreamConn) Close() error {
	sc.CloseSend()
	return nil
}
