package cluster

import (
	"strings"
	"testing"

	"repro/internal/generator"
	"repro/internal/headend"
	"repro/internal/mmd"
)

func tenantInstances(t testing.TB, n int, channels, gateways int, seed int64) []TenantConfig {
	t.Helper()
	cfgs := make([]TenantConfig, n)
	for i := range cfgs {
		in, err := generator.CableTV{
			Channels: channels, Gateways: gateways, Seed: seed + int64(i),
			EgressFraction: 0.25,
		}.Generate()
		if err != nil {
			t.Fatal(err)
		}
		cfgs[i] = TenantConfig{Instance: in}
	}
	return cfgs
}

func runFleet(t testing.TB, tenants []TenantConfig, opts Options, w Workload) *FleetSnapshot {
	t.Helper()
	c, err := New(tenants, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	fs, total, err := c.RunWorkload(w)
	if err != nil {
		t.Fatal(err)
	}
	if total == 0 {
		t.Fatal("workload submitted no events")
	}
	return fs
}

func TestClusterAdmitsAndStaysFeasible(t *testing.T) {
	tenants := tenantInstances(t, 6, 20, 6, 400)
	fs := runFleet(t, tenants, Options{Shards: 3, BatchSize: 4}, Workload{Seed: 1})
	if !fs.AllFeasible {
		t.Fatal("fleet has an infeasible tenant")
	}
	if fs.Admitted == 0 || fs.Utility <= 0 {
		t.Fatalf("fleet admitted nothing: admitted=%d utility=%v", fs.Admitted, fs.Utility)
	}
	if fs.Offered != 6*20 {
		t.Fatalf("offered = %d, want %d", fs.Offered, 6*20)
	}
	events := 0
	for _, st := range fs.ShardStats {
		events += st.Events
	}
	if events != fs.Offered {
		t.Fatalf("shard events = %d, want %d", events, fs.Offered)
	}
}

// TestClusterDeterministicAcrossRuns is the acceptance check: a
// fixed-seed run renders a byte-identical aggregate report across two
// invocations.
func TestClusterDeterministicAcrossRuns(t *testing.T) {
	opts := Options{Shards: 4, BatchSize: 8, ResolveEvery: 7}
	w := Workload{Seed: 42, Rounds: 2, DepartEvery: 3, ChurnEvery: 5}
	a := runFleet(t, tenantInstances(t, 8, 15, 5, 500), opts, w).Render()
	b := runFleet(t, tenantInstances(t, 8, 15, 5, 500), opts, w).Render()
	if a != b {
		t.Fatalf("reports differ across identical runs:\n--- run 1\n%s\n--- run 2\n%s", a, b)
	}
}

// TestClusterShardCountInvariant checks the determinism contract's
// stronger half: per-tenant results do not depend on how tenants are
// sharded.
func TestClusterShardCountInvariant(t *testing.T) {
	w := Workload{Seed: 7, Rounds: 2, DepartEvery: 4, ChurnEvery: 6}
	var base string
	for _, shards := range []int{1, 2, 4, 7} {
		fs := runFleet(t, tenantInstances(t, 7, 12, 5, 600),
			Options{Shards: shards, BatchSize: 3}, w)
		got := fs.RenderTenants()
		if base == "" {
			base = got
			continue
		}
		if got != base {
			t.Fatalf("tenant table changed with %d shards:\n--- base\n%s\n--- got\n%s",
				shards, base, got)
		}
	}
}

func TestClusterBatchingCoalesces(t *testing.T) {
	tenants := tenantInstances(t, 4, 25, 5, 700)
	c, err := New(tenants, Options{Shards: 2, BatchSize: 8, QueueDepth: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fs, _, err := c.RunWorkload(Workload{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range fs.ShardStats {
		if st.Batches == 0 || st.Arrivals == 0 {
			t.Fatalf("shard %d processed no batches: %+v", st.Shard, st)
		}
		if st.MaxBatch > 8 {
			t.Fatalf("shard %d batch overflow: max %d > 8", st.Shard, st.MaxBatch)
		}
		if st.MaxBatch < 2 {
			t.Fatalf("shard %d never coalesced (max batch %d); queue interleaving broken?",
				st.Shard, st.MaxBatch)
		}
	}
}

func TestClusterChurnAndResolve(t *testing.T) {
	tenants := tenantInstances(t, 4, 12, 4, 800)
	fs := runFleet(t, tenants,
		Options{Shards: 4, ResolveEvery: 5},
		Workload{Seed: 11, Rounds: 3, DepartEvery: 2, ChurnEvery: 4})
	if fs.Departed == 0 || fs.Leaves == 0 || fs.Joins == 0 {
		t.Fatalf("churn did not run: %+v", fs)
	}
	if fs.Resolves == 0 {
		t.Fatal("churn-triggered re-solves did not run")
	}
	for i, ts := range fs.Tenants {
		if !ts.Feasible {
			t.Fatalf("tenant %d infeasible after churn", i)
		}
		if ts.Resolves > 0 && ts.LastResolveValue <= 0 {
			t.Fatalf("tenant %d resolve recorded no value", i)
		}
	}
}

func TestClusterExplicitEventsAndErrors(t *testing.T) {
	tenants := tenantInstances(t, 2, 8, 3, 900)
	c, err := New(tenants, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(Event{Tenant: 5, Type: EventStreamArrival}); err == nil {
		t.Fatal("out-of-range tenant accepted")
	}
	if err := c.Submit(Event{Tenant: 0, Type: EventType(99)}); err == nil {
		t.Fatal("unknown event type accepted")
	}
	for s := 0; s < 8; s++ {
		if err := c.Submit(Event{Tenant: 0, Type: EventStreamArrival, Stream: s}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Submit(Event{Tenant: 0, Type: EventResolve}); err != nil {
		t.Fatal(err)
	}
	fs, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if fs.Tenants[0].StreamsOffered != 8 || fs.Tenants[0].Resolves != 1 {
		t.Fatalf("tenant 0 snapshot = %+v", fs.Tenants[0])
	}
	if fs.Tenants[1].StreamsOffered != 0 {
		t.Fatalf("tenant 1 saw tenant 0's events: %+v", fs.Tenants[1])
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal("second Close must be a no-op, got", err)
	}
	if err := c.Submit(Event{Tenant: 0, Type: EventStreamArrival}); err == nil {
		t.Fatal("Submit after Close accepted")
	}
	if _, err := c.Snapshot(); err == nil {
		t.Fatal("Snapshot after Close accepted")
	}
}

func TestClusterPolicyKinds(t *testing.T) {
	in, err := generator.CableTV{Channels: 10, Gateways: 4, Seed: 1000}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"", "online", "online-unguarded", "threshold", "oracle", "static"} {
		pol, err := headend.NewPolicyByName(in, kind)
		if err != nil {
			t.Fatalf("NewPolicyByName(%q): %v", kind, err)
		}
		if pol.Name() == "" {
			t.Fatalf("NewPolicyByName(%q): empty name", kind)
		}
		fs := runFleet(t, []TenantConfig{{Instance: in, Policy: pol}},
			Options{Shards: 1}, Workload{Seed: 5})
		if !fs.AllFeasible {
			t.Fatalf("policy %q produced an infeasible tenant", kind)
		}
	}
	if _, err := headend.NewPolicyByName(in, "nope"); err == nil {
		t.Fatal("unknown policy kind accepted")
	}
	if _, err := New(nil, Options{}); err == nil {
		t.Fatal("empty tenant list accepted")
	}
	if _, err := New([]TenantConfig{{Instance: (*mmd.Instance)(nil)}}, Options{}); err == nil {
		t.Fatal("nil instance accepted")
	}
}

func TestClusterRenderShape(t *testing.T) {
	fs := runFleet(t, tenantInstances(t, 3, 10, 4, 1100),
		Options{Shards: 2}, Workload{Seed: 9})
	out := fs.Render()
	for _, want := range []string{"fleet: 3 tenants on 2 shards", "shard  tenants", "tenant  policy"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(fs.RenderTenants(), "\n"); lines != 4 {
		t.Fatalf("tenant table has %d lines, want 4", lines)
	}
}
