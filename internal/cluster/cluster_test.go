package cluster

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/generator"
	"repro/internal/headend"
	"repro/internal/mmd"
)

func tenantInstances(t testing.TB, n int, channels, gateways int, seed int64) []TenantConfig {
	t.Helper()
	cfgs := make([]TenantConfig, n)
	for i := range cfgs {
		in, err := generator.CableTV{
			Channels: channels, Gateways: gateways, Seed: seed + int64(i),
			EgressFraction: 0.25,
		}.Generate()
		if err != nil {
			t.Fatal(err)
		}
		cfgs[i] = TenantConfig{Instance: in}
	}
	return cfgs
}

func runFleet(t testing.TB, tenants []TenantConfig, opts Options, w Workload) *FleetSnapshot {
	t.Helper()
	c, err := New(tenants, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	fs, total, err := c.RunWorkload(w)
	if err != nil {
		t.Fatal(err)
	}
	if total == 0 {
		t.Fatal("workload submitted no events")
	}
	return fs
}

func TestClusterAdmitsAndStaysFeasible(t *testing.T) {
	tenants := tenantInstances(t, 6, 20, 6, 400)
	fs := runFleet(t, tenants, Options{Shards: 3, BatchSize: 4}, Workload{Seed: 1})
	if !fs.AllFeasible {
		t.Fatal("fleet has an infeasible tenant")
	}
	if fs.Admitted == 0 || fs.Utility <= 0 {
		t.Fatalf("fleet admitted nothing: admitted=%d utility=%v", fs.Admitted, fs.Utility)
	}
	if fs.Offered != 6*20 {
		t.Fatalf("offered = %d, want %d", fs.Offered, 6*20)
	}
	events := 0
	for _, st := range fs.ShardStats {
		events += st.Events
	}
	if events != fs.Offered {
		t.Fatalf("shard events = %d, want %d", events, fs.Offered)
	}
}

// TestClusterDeterministicAcrossRuns is the acceptance check: a
// fixed-seed run renders a byte-identical aggregate report across two
// invocations.
func TestClusterDeterministicAcrossRuns(t *testing.T) {
	opts := Options{Shards: 4, BatchSize: 8, ResolveEvery: 7}
	w := Workload{Seed: 42, Rounds: 2, DepartEvery: 3, ChurnEvery: 5}
	a := runFleet(t, tenantInstances(t, 8, 15, 5, 500), opts, w).Render()
	b := runFleet(t, tenantInstances(t, 8, 15, 5, 500), opts, w).Render()
	if a != b {
		t.Fatalf("reports differ across identical runs:\n--- run 1\n%s\n--- run 2\n%s", a, b)
	}
}

// TestClusterShardCountInvariant checks the determinism contract's
// stronger half: per-tenant results do not depend on how tenants are
// sharded.
func TestClusterShardCountInvariant(t *testing.T) {
	w := Workload{Seed: 7, Rounds: 2, DepartEvery: 4, ChurnEvery: 6}
	var base string
	for _, shards := range []int{1, 2, 4, 7} {
		fs := runFleet(t, tenantInstances(t, 7, 12, 5, 600),
			Options{Shards: shards, BatchSize: 3}, w)
		got := fs.RenderTenants()
		if base == "" {
			base = got
			continue
		}
		if got != base {
			t.Fatalf("tenant table changed with %d shards:\n--- base\n%s\n--- got\n%s",
				shards, base, got)
		}
	}
}

func TestClusterBatchingCoalesces(t *testing.T) {
	tenants := tenantInstances(t, 4, 25, 5, 700)
	c, err := New(tenants, Options{Shards: 2, BatchSize: 8, QueueDepth: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fs, _, err := c.RunWorkload(Workload{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range fs.ShardStats {
		if st.Batches == 0 || st.Arrivals == 0 {
			t.Fatalf("shard %d processed no batches: %+v", st.Shard, st)
		}
		if st.MaxBatch > 8 {
			t.Fatalf("shard %d batch overflow: max %d > 8", st.Shard, st.MaxBatch)
		}
		if st.MaxBatch < 2 {
			t.Fatalf("shard %d never coalesced (max batch %d); queue interleaving broken?",
				st.Shard, st.MaxBatch)
		}
	}
}

func TestClusterChurnAndResolve(t *testing.T) {
	tenants := tenantInstances(t, 4, 12, 4, 800)
	fs := runFleet(t, tenants,
		Options{Shards: 4, ResolveEvery: 5},
		Workload{Seed: 11, Rounds: 3, DepartEvery: 2, ChurnEvery: 4})
	if fs.Departed == 0 || fs.Leaves == 0 || fs.Joins == 0 {
		t.Fatalf("churn did not run: %+v", fs)
	}
	if fs.Resolves == 0 {
		t.Fatal("churn-triggered re-solves did not run")
	}
	for i, ts := range fs.Tenants {
		if !ts.Feasible {
			t.Fatalf("tenant %d infeasible after churn", i)
		}
		if ts.Resolves > 0 && ts.LastResolveValue <= 0 {
			t.Fatalf("tenant %d resolve recorded no value", i)
		}
	}
}

// TestClusterSessionRoundTrip drives one tenant through every
// per-operation session method and checks the typed results.
func TestClusterSessionRoundTrip(t *testing.T) {
	ctx := context.Background()
	tenants := tenantInstances(t, 2, 8, 3, 900)
	c, err := New(tenants, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var admitted []int
	for s := 0; s < 8; s++ {
		res, err := c.OfferStream(ctx, 0, s)
		if err != nil {
			t.Fatal(err)
		}
		if res.Accepted != (len(res.Subscribers) > 0) {
			t.Fatalf("offer %d: Accepted=%v but %d subscribers", s, res.Accepted, len(res.Subscribers))
		}
		if res.Accepted {
			admitted = append(admitted, s)
			if res.Utility <= 0 {
				t.Fatalf("offer %d accepted with utility %v", s, res.Utility)
			}
		}
	}
	if len(admitted) == 0 {
		t.Fatal("no stream admitted")
	}
	fs, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if fs.Tenants[0].StreamsAdmitted != len(admitted) {
		t.Fatalf("snapshot admitted = %d, want %d", fs.Tenants[0].StreamsAdmitted, len(admitted))
	}
	if fs.Tenants[1].StreamsOffered != 0 {
		t.Fatalf("tenant 1 saw tenant 0's events: %+v", fs.Tenants[1])
	}

	// Re-offering a carried stream is a rejection, not an error.
	if res, err := c.OfferStream(ctx, 0, admitted[0]); err != nil {
		t.Fatal(err)
	} else if res.Accepted {
		t.Fatalf("re-offer of carried stream %d accepted", admitted[0])
	}
	// Out-of-range streams are rejections too.
	if res, err := c.OfferStream(ctx, 0, 99); err != nil || res.Accepted {
		t.Fatalf("out-of-range offer = (%+v, %v)", res, err)
	}

	// Departing a carried stream releases its subscribers; a second
	// depart reports Removed=false without error.
	dep, err := c.DepartStream(ctx, 0, admitted[0])
	if err != nil {
		t.Fatal(err)
	}
	if !dep.Removed || len(dep.Subscribers) == 0 {
		t.Fatalf("depart of carried stream: %+v", dep)
	}
	if dep, err = c.DepartStream(ctx, 0, admitted[0]); err != nil || dep.Removed {
		t.Fatalf("double depart = (%+v, %v)", dep, err)
	}

	// Gateway churn round trip: leave changes state once, join undoes it.
	if res, err := c.UserLeave(ctx, 0, 0); err != nil || !res.Changed {
		t.Fatalf("first leave = (%+v, %v)", res, err)
	}
	if res, err := c.UserLeave(ctx, 0, 0); err != nil || res.Changed {
		t.Fatalf("leave while away = (%+v, %v)", res, err)
	}
	if res, err := c.UserJoin(ctx, 0, 0); err != nil || !res.Changed {
		t.Fatalf("join = (%+v, %v)", res, err)
	}
	if res, err := c.UserJoin(ctx, 0, 0); err != nil || res.Changed {
		t.Fatalf("join while online = (%+v, %v)", res, err)
	}

	// Monitoring resolve reports both values and does not install.
	res, err := c.Resolve(ctx, 0, ResolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Installed || res.OfflineValue <= 0 {
		t.Fatalf("monitoring resolve = %+v", res)
	}
	fs, err = c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if fs.Tenants[0].Resolves != 1 || fs.Tenants[0].Installs != 0 {
		t.Fatalf("tenant 0 snapshot after monitoring resolve = %+v", fs.Tenants[0])
	}
}

// TestClusterResolveInstall pins the install path end to end: after a
// churny workload, Resolve with Install replaces the drifted online
// assignment with the offline solution — utility does not drop, the
// fleet stays feasible, and the install is counted.
func TestClusterResolveInstall(t *testing.T) {
	ctx := context.Background()
	tenants := tenantInstances(t, 3, 15, 5, 950)
	c, err := New(tenants, Options{Shards: 2, BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.RunWorkload(Workload{Seed: 13, Rounds: 2, DepartEvery: 3, ChurnEvery: 4}); err != nil {
		t.Fatal(err)
	}
	before, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	installs := 0
	for ti := 0; ti < c.NumTenants(); ti++ {
		res, err := c.Resolve(ctx, ti, ResolveOptions{Install: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Installed {
			installs++
			if res.OfflineValue < res.OnlineValue {
				t.Fatalf("tenant %d installed a worse lineup: %+v", ti, res)
			}
		}
	}
	if installs == 0 {
		t.Fatal("no tenant installed (offline never beat the drifted online state?)")
	}
	after, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !after.AllFeasible {
		t.Fatal("install broke feasibility")
	}
	if after.Utility < before.Utility {
		t.Fatalf("post-install fleet utility %.3f < online %.3f", after.Utility, before.Utility)
	}
	if after.Installs != installs {
		t.Fatalf("fleet installs = %d, want %d", after.Installs, installs)
	}
	// The installed lineup keeps serving: another workload round must
	// stay feasible (policy state was rebuilt consistently).
	if _, _, err := c.RunWorkload(Workload{Seed: 14}); err != nil {
		t.Fatal(err)
	}
	final, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !final.AllFeasible {
		t.Fatal("fleet infeasible after serving on an installed lineup")
	}
}

// TestClusterSentinelErrors pins the error taxonomy: unknown tenants,
// operations after Close, and queue-full rejection all surface the
// sentinel errors under errors.Is.
func TestClusterSentinelErrors(t *testing.T) {
	ctx := context.Background()
	tenants := tenantInstances(t, 2, 8, 3, 900)
	c, err := New(tenants, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.OfferStream(ctx, 5, 0); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("out-of-range tenant: err = %v, want ErrUnknownTenant", err)
	}
	if _, err := c.Resolve(ctx, -1, ResolveOptions{}); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("negative tenant: err = %v, want ErrUnknownTenant", err)
	}
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := c.OfferStream(canceled, 0, 0); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled ctx: err = %v, want ErrCanceled", err)
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled ctx: err = %v must also match context.Canceled", err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal("second Close must be a no-op, got", err)
	}
	if _, err := c.OfferStream(ctx, 0, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("offer after Close: err = %v, want ErrClosed", err)
	}
	if _, err := c.UserLeave(ctx, 0, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("leave after Close: err = %v, want ErrClosed", err)
	}
	if _, err := c.Snapshot(); !errors.Is(err, ErrClosed) {
		t.Fatalf("snapshot after Close: err = %v, want ErrClosed", err)
	}
}

// plainPolicy is a minimal custom policy without Reinstall support.
type plainPolicy struct{}

func (plainPolicy) Name() string                { return "test-plain" }
func (plainPolicy) OnStreamArrival(s int) []int { return nil }

// TestClusterResolveErrorDoesNotPoisonSnapshot pins that a failed
// caller-requested install (custom policy without Reinstall) is
// returned to that caller only: Snapshot and Close keep working.
func TestClusterResolveErrorDoesNotPoisonSnapshot(t *testing.T) {
	ctx := context.Background()
	in, err := generator.CableTV{Channels: 8, Gateways: 3, Seed: 902}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	c, err := New([]TenantConfig{{Instance: in, Policy: plainPolicy{}}}, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Resolve(ctx, 0, ResolveOptions{Install: true}); err == nil {
		t.Fatal("install accepted on a policy without Reinstall")
	}
	if _, err := c.Snapshot(); err != nil {
		t.Fatalf("snapshot poisoned by a per-request resolve error: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close poisoned by a per-request resolve error: %v", err)
	}
}

// blockingPolicy admits nothing and parks every arrival until gate is
// closed, reporting each entry on entered; it lets tests park a shard
// worker and fill its queue deterministically.
type blockingPolicy struct {
	entered chan struct{}
	gate    chan struct{}
}

func (p *blockingPolicy) Name() string { return "test-blocking" }
func (p *blockingPolicy) OnStreamArrival(s int) []int {
	p.entered <- struct{}{}
	<-p.gate
	return nil
}

// TestClusterQueueFullReject pins BackpressureReject: once the worker
// is parked and the queue is full, session calls fail fast with
// ErrQueueFull instead of blocking.
func TestClusterQueueFullReject(t *testing.T) {
	ctx := context.Background()
	in, err := generator.CableTV{Channels: 8, Gateways: 3, Seed: 901}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	pol := &blockingPolicy{entered: make(chan struct{}, 16), gate: make(chan struct{})}
	c, err := New([]TenantConfig{{Instance: in, Policy: pol}},
		Options{Shards: 1, QueueDepth: 1, Backpressure: BackpressureReject})
	if err != nil {
		t.Fatal(err)
	}
	// Park the worker: the first offer reaches the policy and blocks
	// there (acked arrivals flush immediately). Issued from a goroutine
	// because the session call itself blocks until the result arrives.
	first := make(chan error, 1)
	go func() {
		_, err := c.OfferStream(ctx, 0, 0)
		first <- err
	}()
	select {
	case <-pol.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never reached the policy")
	}
	// Worker parked and its queue empty: one fire-and-forget event
	// fills the depth-1 queue, so the next session call must reject.
	if err := c.post(Event{Tenant: 0, Type: EventStreamArrival, Stream: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.OfferStream(ctx, 0, 2); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	close(pol.gate) // release the worker; the parked offer completes
	if err := <-first; err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestClusterPolicyKinds(t *testing.T) {
	in, err := generator.CableTV{Channels: 10, Gateways: 4, Seed: 1000}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"", "online", "online-unguarded", "threshold", "oracle", "static"} {
		pol, err := headend.NewPolicyByName(in, kind)
		if err != nil {
			t.Fatalf("NewPolicyByName(%q): %v", kind, err)
		}
		if pol.Name() == "" {
			t.Fatalf("NewPolicyByName(%q): empty name", kind)
		}
		fs := runFleet(t, []TenantConfig{{Instance: in, Policy: pol}},
			Options{Shards: 1}, Workload{Seed: 5})
		if !fs.AllFeasible {
			t.Fatalf("policy %q produced an infeasible tenant", kind)
		}
	}
	if _, err := headend.NewPolicyByName(in, "nope"); err == nil {
		t.Fatal("unknown policy kind accepted")
	}
	if _, err := New(nil, Options{}); err == nil {
		t.Fatal("empty tenant list accepted")
	}
	if _, err := New([]TenantConfig{{Instance: (*mmd.Instance)(nil)}}, Options{}); err == nil {
		t.Fatal("nil instance accepted")
	}
}

func TestClusterRenderShape(t *testing.T) {
	fs := runFleet(t, tenantInstances(t, 3, 10, 4, 1100),
		Options{Shards: 2}, Workload{Seed: 9})
	out := fs.Render()
	for _, want := range []string{"fleet: 3 tenants on 2 shards", "shard  tenants", "tenant  policy"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(fs.RenderTenants(), "\n"); lines != 4 {
		t.Fatalf("tenant table has %d lines, want 4", lines)
	}
}
