package cluster

import (
	"context"
	"fmt"
)

// EventResult is the typed outcome of one event inside an ApplyBatch
// call; exactly the field matching Type is populated. A failed re-solve
// sets Err for its own slot without failing the batch.
type EventResult struct {
	// Type echoes the event's type.
	Type EventType
	// Offer / Depart / Churn / Resolve mirror the per-operation session
	// results.
	Offer   OfferResult
	Depart  DepartResult
	Churn   ChurnResult
	Resolve ResolveResult
	// Err is the per-event error (only re-solves can fail).
	Err error
}

// ApplyBatch applies a sequence of events for one tenant as a single
// shard message: the whole batch crosses the queue once, the worker
// applies it in order inside one batch window (each contiguous run of
// arrivals is coalesced exactly as the fire-and-forget replay path
// coalesces), and one typed result per event comes back positionally.
// This is the remote caller's answer to RunWorkload's batching — N
// single session calls pay N queue crossings and N flush boundaries,
// one ApplyBatch pays one of each.
//
// The Tenant, CostScale, and CatalogID fields of each event are
// overridden (tenant from the call; CostScale and the catalog marks
// cleared — discounts and fleet references are granted only by the
// catalog's own acquire protocol, never by a caller-supplied event);
// event types must be the serving event types (catalog offers are
// orchestrated across registry and shard and cannot ride in a batch). On a context error the batch may still be
// applied (it is already queued); only the results are lost, exactly
// like the single-event session methods.
func (c *Cluster) ApplyBatch(ctx context.Context, tenant int, events []Event) ([]EventResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// An empty batch still flows through enqueue, so it reports
	// ErrClosed / ErrCanceled / ErrUnknownTenant exactly like every
	// other session call instead of silently succeeding.
	batch := make([]Event, len(events))
	for i, ev := range events {
		if err := validEventType(ev.Type); err != nil {
			return nil, fmt.Errorf("cluster: batch event %d: %w", i, err)
		}
		ev.Tenant = tenant
		ev.CostScale = 0
		ev.CatalogID = ""
		batch[i] = ev
	}
	msg := message{batch: batch, batchAck: make(chan []EventResult, 1)}
	if err := c.enqueue(ctx, tenant, msg); err != nil {
		return nil, err
	}
	select {
	case out := <-msg.batchAck:
		return out, nil
	case <-ctx.Done():
		return nil, fmt.Errorf("%w: %w", ErrCanceled, ctx.Err())
	}
}
