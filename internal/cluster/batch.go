package cluster

import (
	"context"
	"fmt"

	"repro/internal/catalog"
)

// EventResult is the typed outcome of one event inside an ApplyBatch
// call; exactly the field matching Type (and, for catalog-managed
// events, Catalog) is populated. A failed re-solve sets Err for its own
// slot without failing the batch.
type EventResult struct {
	// Type echoes the event's type.
	Type EventType
	// CatalogID echoes the fleet identity of a catalog-managed event.
	CatalogID catalog.ID
	// Offer / Depart / Churn / Resolve mirror the per-operation session
	// results (plain events).
	Offer   OfferResult
	Depart  DepartResult
	Churn   ChurnResult
	Resolve ResolveResult
	// Catalog is the typed outcome of a catalog-managed offer or
	// departure (CatalogID non-empty), mirroring OfferCatalogStream /
	// DepartCatalogStream.
	Catalog CatalogResult
	// Err is the per-event error (only re-solves can fail).
	Err error
}

// ApplyBatch applies a sequence of events for one tenant as a single
// shard message: the whole batch crosses the queue once, the worker
// applies it in order inside one batch window (each contiguous run of
// arrivals is coalesced exactly as the fire-and-forget replay path
// coalesces), and one typed result per event comes back positionally.
// This is the remote caller's answer to RunWorkload's batching — N
// single session calls pay N queue crossings and N flush boundaries,
// one ApplyBatch pays one of each.
//
// Catalog events are first-class batch citizens: an arrival or
// departure carrying a CatalogID runs the catalog protocol exactly like
// OfferCatalogStream / DepartCatalogStream, with two differences of
// mechanics, not semantics. All of the batch's catalog arrivals are
// priced in one registry round trip (catalog.Registry.AcquireBatch)
// before the batch crosses the shard queue — each acquisition sees the
// ones before it, exactly as if the events had been pipelined on a
// StreamConn — and the worker flushes the batch's settlements in one
// ordered SettleBatch round trip before acking, preserving worker-FIFO
// settlement order exactly. Because pricing happens at submission (as
// on a pipelined stream), a depart-then-re-offer of the same CatalogID
// *within one batch* is quoted against the pre-batch sharing state;
// split phases across batches when serial per-call pricing is wanted.
//
// The Tenant and CostScale fields of each event are overridden (tenant
// from the call; the scale from the catalog ticket, or cleared —
// discounts and fleet references are granted only by the catalog's own
// acquire protocol, never by a caller-supplied event); CatalogID is
// honored on arrivals and departures and cleared on other event types,
// following the StreamConn convention. Catalog events require
// Options.Catalog and known bindings; violations fail the whole batch
// before any event applies. On a context error the batch may still be
// applied (it is already queued); only the results are lost, exactly
// like the single-event session methods.
func (c *Cluster) ApplyBatch(ctx context.Context, tenant int, events []Event) ([]EventResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// An empty batch still flows through enqueue, so it reports
	// ErrClosed / ErrCanceled / ErrUnknownTenant exactly like every
	// other session call instead of silently succeeding.
	batch := make([]Event, len(events))
	var offers []int // batch indexes of catalog arrivals, in order
	var ids []catalog.ID
	for i, ev := range events {
		if err := validEventType(ev.Type); err != nil {
			return nil, fmt.Errorf("cluster: batch event %d: %w", i, err)
		}
		ev.Tenant = tenant
		ev.CostScale = 0
		ev.originPayer = false
		if ev.CatalogID != "" && ev.Type != EventStreamArrival && ev.Type != EventStreamDeparture {
			ev.CatalogID = ""
		}
		if ev.CatalogID != "" && ev.Type == EventStreamArrival {
			offers = append(offers, i)
			ids = append(ids, ev.CatalogID)
		}
		batch[i] = ev
	}
	// The catalog lookups, the pricing round trip, and the enqueue share
	// one read-locked section (Reshard swaps the layout and the registry
	// under the write lock); the lock drops before the result wait.
	ack := c.getBatchAck()
	fail := func(err error) ([]EventResult, error) {
		c.mu.RUnlock()
		c.putBatchAck(ack)
		return nil, err
	}
	c.mu.RLock()
	for i := range batch {
		if batch[i].CatalogID == "" {
			continue
		}
		if c.catalog == nil {
			return fail(fmt.Errorf("cluster: batch event %d: %w", i, ErrNoCatalog))
		}
		local, err := c.catalog.Lookup(batch[i].CatalogID, tenant)
		if err != nil {
			return fail(fmt.Errorf("cluster: batch event %d: %w", i, wrapCatalogErr(err)))
		}
		batch[i].Stream = local
	}
	var tickets []catalog.Ticket
	if len(ids) > 0 {
		// One pricing round trip for the whole batch; every ticket takes
		// a provisional reference the worker will settle in order.
		tickets = make([]catalog.Ticket, len(ids))
		if err := c.catalog.AcquireBatch(tenant, ids, tickets); err != nil {
			return fail(fmt.Errorf("cluster: batch: %w", wrapCatalogErr(err)))
		}
		for k, i := range offers {
			batch[i].Stream = tickets[k].Local
			batch[i].CostScale = tickets[k].Scale
			batch[i].originPayer = tickets[k].OriginPayer
		}
	}
	if err := c.enqueueLocked(ctx, tenant, message{batch: batch, batchAck: ack}); err != nil {
		// Never enqueued: drop every provisional reference the batch
		// acquired, in one round trip (still under the lock, so the
		// releases reach the registry that priced them).
		if len(tickets) > 0 {
			rel := make([]catalog.Settlement, len(tickets))
			for k, tk := range tickets {
				rel[k] = catalog.Settlement{Op: catalog.SettleReleasePending,
					ID: ids[k], Tenant: tenant, Origin: tk.OriginPayer}
			}
			_ = c.catalog.SettleBatch(rel, nil)
		}
		return fail(err)
	}
	in := c.tenants[tenant].Instance()
	c.mu.RUnlock()
	var out []EventResult
	select {
	case out = <-ack:
		c.putBatchAck(ack)
	case <-ctx.Done():
		// Once enqueued, the worker settles every reference itself; an
		// abandoned ack is leaked to the garbage collector, never
		// recycled (the worker may still deliver into it).
		return nil, fmt.Errorf("%w: %w", ErrCanceled, ctx.Err())
	}
	// Assemble the catalog results the worker could not know (ticket
	// context lives caller-side, mirroring the stream path): the worker
	// backfilled Catalog.Refs/Evicted from its settlement flush.
	for k, i := range offers {
		tk := tickets[k]
		res := &out[i]
		res.CatalogID = ids[k]
		res.Catalog.Admitted = res.Offer.Accepted
		res.Catalog.Subscribers = res.Offer.Subscribers
		res.Catalog.Utility = res.Offer.Utility
		res.Catalog.SharedWith = tk.SharedWith
		res.Catalog.CostScale = tk.Scale
		res.Catalog.FullCost = in.StreamCostSum(tk.Local)
		if res.Catalog.Admitted {
			res.Catalog.CostCharged = tk.Scale * res.Catalog.FullCost
		}
		res.Offer = OfferResult{}
	}
	for i := range batch {
		if batch[i].CatalogID != "" && batch[i].Type == EventStreamDeparture {
			res := &out[i]
			res.CatalogID = batch[i].CatalogID
			res.Catalog.Removed = res.Depart.Removed
			res.Catalog.Subscribers = res.Depart.Subscribers
			res.Depart = DepartResult{}
		}
	}
	return out, nil
}
