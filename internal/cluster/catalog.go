package cluster

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/catalog"
)

// Serving API v3: cross-shard shared streams.
//
// OfferCatalogStream and DepartCatalogStream are the fleet-identity
// siblings of OfferStream/DepartStream: the stream is named by its
// catalog.ID rather than a per-tenant local index, the admission is
// priced by the catalog's cost model from the cross-shard reference
// count, and the result reports who else carries the stream and what
// was charged. The orchestration is the catalog package's three-step
// protocol: the caller Acquires (pricing + a provisional reference),
// the event is routed to the tenant's shard, and the worker settles the
// reference (Commit on admit, Release on reject or removal) right
// after applying the event — so registry transitions happen in shard
// FIFO order and concurrent same-tenant calls can never desynchronize
// refcounts from the tenant's carried set. All state stays
// share-nothing: refcounts live with the registry's owner goroutine,
// tenant state with the shard worker; the worker's settlement is a
// message round trip, never a shared lock, and the registry owner
// never calls back into shards.
//
// Departing a catalog-managed stream through the local-index
// DepartStream is equivalent to DepartCatalogStream: the shard worker
// resolves the local index back to its fleet ID and releases the held
// reference in the same FIFO settlement, so reference counts track
// carriage no matter which surface the departure came through. (Offers
// are not symmetric: a local-index OfferStream admits outside the
// catalog and takes no fleet reference — fleet identity is granted only
// by the catalog's own acquire protocol.)

// Sentinel errors of the catalog session surface; match with errors.Is.
var (
	// ErrNoCatalog reports a catalog call on a cluster built without
	// Options.Catalog.
	ErrNoCatalog = errors.New("cluster: no catalog configured")
	// ErrUnknownCatalogStream reports an ID the catalog does not know,
	// or one the tenant has no binding for. It also matches the
	// underlying catalog.ErrUnknownID / catalog.ErrNotBound.
	ErrUnknownCatalogStream = errors.New("cluster: unknown catalog stream")
)

// CatalogResult is the typed outcome of a catalog offer or departure.
type CatalogResult struct {
	// Admitted reports whether the tenant now carries the stream (offer
	// path); Removed whether it stopped carrying it (depart path).
	Admitted bool `json:"admitted,omitempty"`
	Removed  bool `json:"removed,omitempty"`
	// Subscribers are the users receiving (offer) or released from
	// (depart) the stream; Utility is the utility added by an admission.
	Subscribers []int   `json:"subscribers,omitempty"`
	Utility     float64 `json:"utility,omitempty"`
	// Refs is the confirmed cross-shard reference count after the call.
	Refs int `json:"refs"`
	// SharedWith lists the other tenants confirmed to carry the stream
	// at decision time (ascending tenant index).
	SharedWith []int `json:"shared_with,omitempty"`
	// CostScale is the server-cost scale the admission was priced at;
	// FullCost the undiscounted scalar server cost of the stream;
	// CostCharged the scaled cost actually charged (offer path, when
	// admitted).
	CostScale   float64 `json:"cost_scale,omitempty"`
	FullCost    float64 `json:"full_cost,omitempty"`
	CostCharged float64 `json:"cost_charged,omitempty"`
	// Evicted reports that this departure was the last reference and
	// released the origin (depart path).
	Evicted bool `json:"evicted,omitempty"`
}

// OfferCatalogStream offers the fleet-identified stream id to tenant t:
// the catalog prices the admission from the current cross-shard
// reference count (first admitting tenant pays the full origin cost;
// under SharedOrigin later tenants pay the replication fraction), the
// tenant's policy decides at that price on its shard worker — guarded
// admission asks its feasibility ledger with the discounted delta — and
// a successful admission takes a fleet reference. A rejection (policy
// "no", or the tenant already carries the stream) is a successful call
// with Admitted false, mirroring OfferStream.
func (c *Cluster) OfferCatalogStream(ctx context.Context, tenant int, id catalog.ID) (CatalogResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// The acquire, the enqueue, and the instance capture share one read-
	// locked section: Reshard swaps the layout (and the registry) under
	// the write lock, so the reference must land on the same registry
	// generation the event will settle against. The lock drops before
	// the result wait.
	ack := c.getAck()
	c.mu.RLock()
	reg, err := c.catalogFor(tenant)
	if err != nil {
		c.mu.RUnlock()
		c.putAck(ack)
		return CatalogResult{}, err
	}
	// Acquire takes a provisional reference in every case — also when
	// the tenant already holds the stream — so a concurrent departure
	// cannot evict the origin while this admission is in flight. The
	// worker classifies the settlement (commit, recharge for a re-offer
	// under an existing reference, release on rejection) against its
	// own held-reference set at apply time; a re-offer of a stream the
	// tenant still carries is a rejection, exactly like OfferStream.
	tk, err := reg.Acquire(id, tenant)
	if err != nil {
		c.mu.RUnlock()
		c.putAck(ack)
		return CatalogResult{}, wrapCatalogErr(err)
	}
	ev := Event{Tenant: tenant, Type: EventStreamArrival, Stream: tk.Local,
		CostScale: tk.Scale, CatalogID: id, originPayer: tk.OriginPayer}
	in := c.tenants[tenant].Instance()
	if err := c.enqueueLocked(ctx, tenant, message{ev: ev, ack: ack}); err != nil {
		// Never enqueued: the provisional reference is dropped (still
		// under the lock, so it reaches the registry it came from).
		reg.Release(id, tenant, false, tk.OriginPayer)
		c.mu.RUnlock()
		c.putAck(ack)
		return CatalogResult{}, err
	}
	c.mu.RUnlock()
	// Once enqueued, the worker settles the reference itself (commit or
	// release, in shard FIFO order) — a canceled caller has nothing to
	// reconcile. An abandoned ack is leaked, never recycled.
	var res result
	select {
	case res = <-ack:
		c.putAck(ack)
	case <-ctx.Done():
		return CatalogResult{}, fmt.Errorf("%w: %w", ErrCanceled, ctx.Err())
	}
	out := CatalogResult{
		Admitted:    res.offer.Accepted,
		Subscribers: res.offer.Subscribers,
		Utility:     res.offer.Utility,
		Refs:        res.refs,
		SharedWith:  tk.SharedWith,
		CostScale:   tk.Scale,
		FullCost:    in.StreamCostSum(tk.Local),
		// A rejected offer's released provisional reference can be the
		// one that drains an occupied origin (the last confirmed holder
		// already departed while this admission was in flight).
		Evicted: res.evicted,
	}
	if out.Admitted {
		out.CostCharged = tk.Scale * out.FullCost
	}
	return out, nil
}

// DepartCatalogStream departs the fleet-identified stream id from
// tenant t, releasing its fleet reference; the last departure evicts
// the stream's origin (Evicted). Departing a stream the tenant does not
// carry is a successful call with Removed false, mirroring
// DepartStream — but a fleet reference the tenant still holds is
// released even then, so a by-ID departure always cleans up.
func (c *Cluster) DepartCatalogStream(ctx context.Context, tenant int, id catalog.ID) (CatalogResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Lookup and enqueue share one read-locked section (see
	// OfferCatalogStream); the lock drops before the result wait.
	ack := c.getAck()
	c.mu.RLock()
	reg, err := c.catalogFor(tenant)
	if err != nil {
		c.mu.RUnlock()
		c.putAck(ack)
		return CatalogResult{}, err
	}
	local, err := reg.Lookup(id, tenant)
	if err != nil {
		c.mu.RUnlock()
		c.putAck(ack)
		return CatalogResult{}, wrapCatalogErr(err)
	}
	ev := Event{Tenant: tenant, Type: EventStreamDeparture, Stream: local, CatalogID: id}
	err = c.enqueueLocked(ctx, tenant, message{ev: ev, ack: ack})
	c.mu.RUnlock()
	if err != nil {
		c.putAck(ack)
		return CatalogResult{}, err
	}
	// The worker settles the reference (release on removal) in shard
	// FIFO order; a canceled caller has nothing to reconcile.
	var res result
	select {
	case res = <-ack:
		c.putAck(ack)
	case <-ctx.Done():
		return CatalogResult{}, fmt.Errorf("%w: %w", ErrCanceled, ctx.Err())
	}
	if res.err != nil {
		return CatalogResult{}, res.err
	}
	return CatalogResult{
		Removed:     res.depart.Removed,
		Subscribers: res.depart.Subscribers,
		Refs:        res.refs,
		Evicted:     res.evicted,
	}, nil
}

// CatalogSnapshot returns the registry state on demand (the same
// section Snapshot embeds), without a shard barrier.
func (c *Cluster) CatalogSnapshot() (*catalog.Snapshot, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return nil, ErrClosed
	}
	if c.catalog == nil {
		return nil, ErrNoCatalog
	}
	return c.catalog.Snapshot(), nil
}

// catalogLocal pairs a fleet stream identity with its local index at
// one tenant (the per-tenant view of a catalog.Binding).
type catalogLocal struct {
	id    catalog.ID
	local int
}

// catalogFor validates the tenant index and the presence of a catalog.
func (c *Cluster) catalogFor(tenant int) (catalog.Service, error) {
	if tenant < 0 || tenant >= len(c.tenants) {
		return nil, fmt.Errorf("%w: tenant %d out of range [0,%d)", ErrUnknownTenant, tenant, len(c.tenants))
	}
	if c.catalog == nil {
		return nil, ErrNoCatalog
	}
	return c.catalog, nil
}

// wrapCatalogErr maps registry errors onto the cluster sentinel while
// keeping the original in the chain.
func wrapCatalogErr(err error) error {
	if errors.Is(err, catalog.ErrUnknownID) || errors.Is(err, catalog.ErrNotBound) {
		return fmt.Errorf("%w: %w", ErrUnknownCatalogStream, err)
	}
	if errors.Is(err, catalog.ErrClosed) {
		return ErrClosed
	}
	return err
}
