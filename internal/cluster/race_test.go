package cluster

import (
	"sync"
	"testing"
)

// TestClusterConcurrentInjection hammers a >=4-shard cluster with
// events from many goroutines at once. Run under -race (the CI does)
// this proves the shard-pinning discipline: every tenant mutation
// happens on exactly one worker goroutine, with no shared mutable
// state between shards. With concurrent submitters the interleaving —
// and so per-tenant admission outcomes — is not deterministic; the
// test checks the invariants that must survive any interleaving:
// feasibility everywhere, conservation of event counts, and tenant
// isolation.
func TestClusterConcurrentInjection(t *testing.T) {
	const tenants, injectors, perInjector = 8, 6, 3
	cfgs := tenantInstances(t, tenants, 15, 5, 1300)
	c, err := New(cfgs, Options{Shards: 4, BatchSize: 4, ResolveEvery: 50})
	if err != nil {
		t.Fatal(err)
	}
	if c.NumShards() != 4 {
		t.Fatalf("shards = %d, want 4", c.NumShards())
	}

	var wg sync.WaitGroup
	w := Workload{Rounds: perInjector, DepartEvery: 3, ChurnEvery: 5}
	for inj := 0; inj < injectors; inj++ {
		inj := inj
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ti := 0; ti < tenants; ti++ {
				ws := w
				ws.Seed = int64(1 + inj*tenants + ti)
				for _, ev := range ws.Events(c, ti) {
					ev.Tenant = ti
					if err := c.Submit(ev); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	// A concurrent snapshot reader: barriers must interleave safely
	// with live submission.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if _, err := c.Snapshot(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	fs, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if !fs.AllFeasible {
		t.Fatal("concurrent injection broke feasibility")
	}
	wantArrivals := injectors * perInjector * 15 * tenants
	if fs.Offered != wantArrivals {
		t.Fatalf("offered = %d, want %d (events lost or duplicated)", fs.Offered, wantArrivals)
	}
	for i, ts := range fs.Tenants {
		if ts.StreamsOffered != wantArrivals/tenants {
			t.Fatalf("tenant %d offered = %d, want %d", i, ts.StreamsOffered, wantArrivals/tenants)
		}
	}
	shardEvents := 0
	for _, st := range fs.ShardStats {
		shardEvents += st.Events
	}
	if shardEvents < wantArrivals {
		t.Fatalf("shards processed %d events, want >= %d", shardEvents, wantArrivals)
	}
}
