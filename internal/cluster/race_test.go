package cluster

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// dispatch drives one scheduled event through the typed session API,
// returning the transport error (typed rejections are not errors).
func dispatch(ctx context.Context, c *Cluster, ev Event) error {
	var err error
	switch ev.Type {
	case EventStreamArrival:
		_, err = c.OfferStream(ctx, ev.Tenant, ev.Stream)
	case EventStreamDeparture:
		_, err = c.DepartStream(ctx, ev.Tenant, ev.Stream)
	case EventUserLeave:
		_, err = c.UserLeave(ctx, ev.Tenant, ev.User)
	case EventUserJoin:
		_, err = c.UserJoin(ctx, ev.Tenant, ev.User)
	case EventResolve:
		_, err = c.Resolve(ctx, ev.Tenant, ResolveOptions{Install: ev.Install})
	}
	return err
}

// TestClusterConcurrentInjection hammers a >=4-shard cluster with
// session calls from many goroutines at once. Run under -race (the CI
// does) this proves the shard-pinning discipline: every tenant mutation
// happens on exactly one worker goroutine, with no shared mutable
// state between shards. With concurrent submitters the interleaving —
// and so per-tenant admission outcomes — is not deterministic; the
// test checks the invariants that must survive any interleaving:
// feasibility everywhere, conservation of event counts, and tenant
// isolation.
func TestClusterConcurrentInjection(t *testing.T) {
	const tenants, injectors, perInjector = 8, 6, 3
	ctx := context.Background()
	cfgs := tenantInstances(t, tenants, 15, 5, 1300)
	c, err := New(cfgs, Options{Shards: 4, BatchSize: 4, ResolveEvery: 50})
	if err != nil {
		t.Fatal(err)
	}
	if c.NumShards() != 4 {
		t.Fatalf("shards = %d, want 4", c.NumShards())
	}

	var wg sync.WaitGroup
	w := Workload{Rounds: perInjector, DepartEvery: 3, ChurnEvery: 5}
	for inj := 0; inj < injectors; inj++ {
		inj := inj
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ti := 0; ti < tenants; ti++ {
				ws := w
				ws.Seed = int64(1 + inj*tenants + ti)
				for _, ev := range ws.Events(c, ti) {
					ev.Tenant = ti
					if err := dispatch(ctx, c, ev); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	// A concurrent snapshot reader: barriers must interleave safely
	// with live request/response traffic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if _, err := c.Snapshot(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	fs, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if !fs.AllFeasible {
		t.Fatal("concurrent injection broke feasibility")
	}
	wantArrivals := injectors * perInjector * 15 * tenants
	if fs.Offered != wantArrivals {
		t.Fatalf("offered = %d, want %d (events lost or duplicated)", fs.Offered, wantArrivals)
	}
	for i, ts := range fs.Tenants {
		if ts.StreamsOffered != wantArrivals/tenants {
			t.Fatalf("tenant %d offered = %d, want %d", i, ts.StreamsOffered, wantArrivals/tenants)
		}
	}
	shardEvents := 0
	for _, st := range fs.ShardStats {
		shardEvents += st.Events
	}
	if shardEvents < wantArrivals {
		t.Fatalf("shards processed %d events, want >= %d", shardEvents, wantArrivals)
	}
}

// TestClusterConcurrentClose races session calls against Close. Every
// call must either be applied (its result delivered) or fail cleanly
// with ErrClosed — never panic on a closed channel, hang on an
// undelivered completion, or slip in after shutdown. Run under -race.
func TestClusterConcurrentClose(t *testing.T) {
	const goroutines = 8
	ctx := context.Background()
	for round := 0; round < 4; round++ {
		cfgs := tenantInstances(t, 4, 10, 4, 1400+int64(round))
		c, err := New(cfgs, Options{Shards: 2, BatchSize: 4})
		if err != nil {
			t.Fatal(err)
		}
		start := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for s := 0; s < 10; s++ {
					_, err := c.OfferStream(ctx, g%4, s)
					if err != nil && !errors.Is(err, ErrClosed) {
						t.Errorf("offer during close: %v", err)
						return
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if err := c.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		}()
		close(start)
		wg.Wait()
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
