package cluster

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/catalog"
	"repro/internal/generator"
)

func batchTestClusters(t *testing.T) (single, batched *Cluster) {
	t.Helper()
	build := func() *Cluster {
		cfgs := make([]TenantConfig, 3)
		for i := range cfgs {
			in, err := generator.CableTV{
				Channels: 15, Gateways: 5, Seed: 610 + int64(i), EgressFraction: 0.3,
			}.Generate()
			if err != nil {
				t.Fatal(err)
			}
			cfgs[i] = TenantConfig{Instance: in}
		}
		c, err := New(cfgs, Options{Shards: 2, BatchSize: 8})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	return build(), build()
}

// batchTestEvents is a mixed single-tenant schedule: arrival runs
// interrupted by departures and gateway churn, ending in a resolve.
func batchTestEvents() []Event {
	var evs []Event
	for s := 0; s < 10; s++ {
		evs = append(evs, Event{Type: EventStreamArrival, Stream: s})
	}
	evs = append(evs,
		Event{Type: EventStreamDeparture, Stream: 3},
		Event{Type: EventUserLeave, User: 1},
	)
	for s := 10; s < 15; s++ {
		evs = append(evs, Event{Type: EventStreamArrival, Stream: s})
	}
	evs = append(evs,
		Event{Type: EventUserJoin, User: 1},
		Event{Type: EventResolve},
	)
	return evs
}

// TestApplyBatchMatchesSingleCalls is the batching parity check: one
// ApplyBatch call must produce exactly the per-event results and final
// per-tenant state that the same schedule produces as N single session
// calls — while crossing the shard queue once and coalescing arrivals
// into full batch windows instead of N caller-flushed singletons.
func TestApplyBatchMatchesSingleCalls(t *testing.T) {
	singleC, batchC := batchTestClusters(t)
	ctx := context.Background()
	evs := batchTestEvents()

	for ti := 0; ti < singleC.NumTenants(); ti++ {
		var want []EventResult
		for _, ev := range evs {
			switch ev.Type {
			case EventStreamArrival:
				res, err := singleC.OfferStream(ctx, ti, ev.Stream)
				if err != nil {
					t.Fatal(err)
				}
				want = append(want, EventResult{Type: ev.Type, Offer: res})
			case EventStreamDeparture:
				res, err := singleC.DepartStream(ctx, ti, ev.Stream)
				if err != nil {
					t.Fatal(err)
				}
				want = append(want, EventResult{Type: ev.Type, Depart: res})
			case EventUserLeave:
				res, err := singleC.UserLeave(ctx, ti, ev.User)
				if err != nil {
					t.Fatal(err)
				}
				want = append(want, EventResult{Type: ev.Type, Churn: res})
			case EventUserJoin:
				res, err := singleC.UserJoin(ctx, ti, ev.User)
				if err != nil {
					t.Fatal(err)
				}
				want = append(want, EventResult{Type: ev.Type, Churn: res})
			case EventResolve:
				res, err := singleC.Resolve(ctx, ti, ResolveOptions{})
				if err != nil {
					t.Fatal(err)
				}
				want = append(want, EventResult{Type: ev.Type, Resolve: res})
			}
		}
		got, err := batchC.ApplyBatch(ctx, ti, evs)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("tenant %d: %d results, want %d", ti, len(got), len(want))
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("tenant %d event %d: batch %+v vs single %+v", ti, i, got[i], want[i])
			}
		}
	}

	sfs, err := singleC.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	bfs, err := batchC.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := bfs.RenderTenants(), sfs.RenderTenants(); got != want {
		t.Fatalf("tenant tables diverge:\n--- batch\n%s\n--- single\n%s", got, want)
	}

	// The point of the endpoint: the batch path coalesces. Each single
	// acked arrival is its own flush boundary, so the single-call run
	// pays one batch window per arrival; the batch run coalesces each
	// contiguous arrival sequence into one window.
	singleBatches, batchBatches, batchMax := 0, 0, 0
	for _, st := range sfs.ShardStats {
		singleBatches += st.Batches
	}
	for _, st := range bfs.ShardStats {
		batchBatches += st.Batches
		if st.MaxBatch > batchMax {
			batchMax = st.MaxBatch
		}
	}
	if batchBatches >= singleBatches {
		t.Fatalf("batch run used %d windows, single run %d — no coalescing", batchBatches, singleBatches)
	}
	if batchMax < 10 {
		t.Fatalf("batch MaxBatch = %d, want the 10-arrival run coalesced", batchMax)
	}
}

// TestApplyBatchValidation pins the argument and sentinel behavior.
func TestApplyBatchValidation(t *testing.T) {
	c, _ := batchTestClusters(t)
	ctx := context.Background()

	if _, err := c.ApplyBatch(ctx, 99, batchTestEvents()); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown tenant: %v", err)
	}
	if _, err := c.ApplyBatch(ctx, 0, []Event{{Type: EventType(99)}}); err == nil {
		t.Fatal("unknown event type accepted")
	}
	out, err := c.ApplyBatch(ctx, 0, nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch = %v, %v", out, err)
	}
	// The Tenant field of batch events is overridden by the call's
	// tenant: a stray value cannot cross tenants.
	res, err := c.ApplyBatch(ctx, 1, []Event{{Tenant: 0, Type: EventStreamArrival, Stream: 0}})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if fs.Tenants[0].StreamsOffered != 0 || fs.Tenants[1].StreamsOffered != 1 {
		t.Fatalf("batch tenant override failed: %+v (res %+v)", fs.Tenants, res)
	}

	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := c.ApplyBatch(canceled, 0, batchTestEvents()); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled ctx: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ApplyBatch(ctx, 0, batchTestEvents()); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed: %v", err)
	}
	// An empty batch honors the taxonomy too — no silent success on a
	// closed cluster.
	if _, err := c.ApplyBatch(ctx, 0, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed empty batch: %v", err)
	}
}

// TestApplyBatchCatalogMatchesSessions is the batched-catalog-admission
// acceptance check: catalog events submitted through ApplyBatch — one
// AcquireBatch round trip per batch, one SettleBatch flush per batch —
// must produce per-event CatalogResults and fleet snapshots
// bit-identical to the same schedule driven through the per-operation
// catalog sessions, at every shard count and under both cost models.
//
// The chunker starts a new batch whenever a CatalogID repeats within
// the current one: a batch prices all of its catalog arrivals against
// the pre-batch sharing state (the pipelined-acquire semantics), so
// same-ID depart-then-reoffer inside one batch would legitimately see
// different sharing state than the settled-one-by-one reference.
func TestApplyBatchCatalogMatchesSessions(t *testing.T) {
	const tenants, channels = 4, 12
	steps := catalogScheduleFor(tenants, channels, 930)
	ctx := context.Background()
	for _, model := range []catalog.CostModel{
		catalog.Isolated{},
		catalog.SharedOrigin{ReplicationFraction: 0.25},
	} {
		for _, shards := range []int{1, 2, 4, 8} {
			sessions := catalogTestFleet(t, tenants, channels, 5, 930, 0.3, shards, model)
			batched := catalogTestFleet(t, tenants, channels, 5, 930, 0.3, shards, model)

			// Chunk the schedule: batch boundaries at tenant changes and
			// at same-ID repeats within a batch.
			type chunk struct {
				tenant int
				evs    []Event
			}
			var chunks []chunk
			seen := map[catalog.ID]bool{}
			for _, st := range steps {
				id := catalog.ID(fmt.Sprintf("s-%03d", st.stream))
				typ := EventStreamArrival
				if st.depart {
					typ = EventStreamDeparture
				}
				if len(chunks) == 0 || chunks[len(chunks)-1].tenant != st.tenant || seen[id] {
					chunks = append(chunks, chunk{tenant: st.tenant})
					clear(seen)
				}
				seen[id] = true
				last := &chunks[len(chunks)-1]
				last.evs = append(last.evs, Event{Type: typ, CatalogID: id})
			}

			var want []CatalogResult
			for _, st := range steps {
				id := catalog.ID(fmt.Sprintf("s-%03d", st.stream))
				var res CatalogResult
				var err error
				if st.depart {
					res, err = sessions.DepartCatalogStream(ctx, st.tenant, id)
				} else {
					res, err = sessions.OfferCatalogStream(ctx, st.tenant, id)
				}
				if err != nil {
					t.Fatal(err)
				}
				want = append(want, res)
			}

			var got []CatalogResult
			for _, ch := range chunks {
				out, err := batched.ApplyBatch(ctx, ch.tenant, ch.evs)
				if err != nil {
					t.Fatal(err)
				}
				for i, res := range out {
					if res.Err != nil {
						t.Fatalf("batch event %d: %v", i, res.Err)
					}
					got = append(got, res.Catalog)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("%s/%d shards: %d batch results, want %d", model.Name(), shards, len(got), len(want))
			}
			for i := range got {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Fatalf("%s/%d shards: step %d: batch %+v vs session %+v",
						model.Name(), shards, i, got[i], want[i])
				}
			}

			sfs, err := sessions.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			bfs, err := batched.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			// Tenant tables and the catalog section must be bit-identical;
			// the shard stats legitimately differ (coalescing into fewer,
			// larger admission windows is the point of the batch path).
			if gotR, wantR := bfs.RenderTenants(), sfs.RenderTenants(); gotR != wantR {
				t.Fatalf("%s/%d shards: batched tenant tables diverged:\n--- batch\n%s\n--- sessions\n%s",
					model.Name(), shards, gotR, wantR)
			}
			if gotR, wantR := bfs.Catalog.Render(), sfs.Catalog.Render(); gotR != wantR {
				t.Fatalf("%s/%d shards: batched catalog state diverged:\n--- batch\n%s\n--- sessions\n%s",
					model.Name(), shards, gotR, wantR)
			}
		}
	}
}
