package cluster

// Pool-discipline tests: the serving hot path recycles completion
// channels and stream pending entries through sync.Pool / free lists,
// and the ownership rule says an entry is recycled only after its one
// delivery was drained. These tests install the poison hooks — which
// scribble garbage into an entry the instant it is recycled and assert
// its channel is empty — and then drive the concurrent paths hard. Any
// read-after-recycle surfaces deterministically as a poisoned result
// header, and as a write/read data race under -race.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/catalog"
)

// installPoison arms all three recycle hooks for the duration of one
// test. The hooks fail the test on an undrained delivery (a result
// still buffered in a channel at recycle time) and scramble recycled
// stream entries so any stale read shows up as a corrupt header.
func installPoison(t *testing.T) *atomic.Int64 {
	t.Helper()
	var recycled atomic.Int64
	poisonRecycled = func(p *streamPending) {
		recycled.Add(1)
		select {
		case <-p.ack:
			t.Error("recycled stream entry still had a buffered delivery")
		default:
		}
		p.seq = -1 << 30
		p.typ = EventType(0x7f)
		p.id = "poisoned"
		p.catalogOffer = true
		p.tk = catalog.Ticket{Scale: -1, Local: -1}
		p.fullCost = -1
	}
	poisonAck = func(ch chan result) {
		recycled.Add(1)
		select {
		case <-ch:
			t.Error("recycled ack channel still had a buffered delivery")
		default:
		}
	}
	poisonBatchAck = func(ch chan []EventResult) {
		recycled.Add(1)
		select {
		case <-ch:
			t.Error("recycled batch ack channel still had a buffered delivery")
		default:
		}
	}
	t.Cleanup(func() {
		poisonRecycled = nil
		poisonAck = nil
		poisonBatchAck = nil
	})
	return &recycled
}

// TestPooledAcksNeverReadAfterRecycle drives the pooled session, batch,
// and snapshot paths concurrently with poison armed: every completion
// channel must be drained before it returns to the pool.
func TestPooledAcksNeverReadAfterRecycle(t *testing.T) {
	recycled := installPoison(t)
	c := catalogTestFleet(t, 4, 12, 5, 977, 0.3, 2, catalog.SharedOrigin{ReplicationFraction: 0.25})
	ctx := context.Background()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tenant := w % 4
			for i := 0; i < 60; i++ {
				id := catalog.ID(fmt.Sprintf("s-%03d", i%12))
				switch i % 4 {
				case 0:
					if _, err := c.OfferCatalogStream(ctx, tenant, id); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, err := c.DepartCatalogStream(ctx, tenant, id); err != nil {
						t.Error(err)
						return
					}
				case 2:
					batch := []Event{
						{Type: EventStreamArrival, CatalogID: id},
						{Type: EventUserLeave, User: i % 5},
						{Type: EventUserJoin, User: i % 5},
						{Type: EventStreamDeparture, CatalogID: id},
					}
					if _, err := c.ApplyBatch(ctx, tenant, batch); err != nil {
						t.Error(err)
						return
					}
				case 3:
					if _, err := c.Snapshot(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if recycled.Load() == 0 {
		t.Fatal("poison hooks never fired: pooling is not exercised")
	}
}

// TestPooledStreamEntriesNeverReadAfterRecycle runs concurrent
// submitter/receiver pairs over pipelined streams with poison armed:
// recycled entries are scrambled the instant they hit the free list, so
// a Submit reusing an entry whose previous result is still being read —
// or a receiver touching an entry after recycling it — corrupts a
// visible result header and trips -race.
func TestPooledStreamEntriesNeverReadAfterRecycle(t *testing.T) {
	recycled := installPoison(t)
	c := catalogTestFleet(t, 2, 12, 5, 978, 0.3, 2, catalog.SharedOrigin{ReplicationFraction: 0.25})
	ctx := context.Background()

	var wg sync.WaitGroup
	for tenant := 0; tenant < 2; tenant++ {
		sc, err := c.OpenStream(StreamOptions{Window: 4})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(2)
		const steps = 200
		go func(sc *StreamConn, tenant int) {
			defer wg.Done()
			for i := 0; i < steps; i++ {
				ev := Event{Tenant: tenant, Type: EventStreamArrival,
					CatalogID: catalog.ID(fmt.Sprintf("s-%03d", i%12))}
				if i%3 == 2 {
					ev.Type = EventStreamDeparture
				}
				if err := sc.Submit(ctx, ev); err != nil {
					t.Error(err)
					break
				}
			}
			sc.CloseSend()
		}(sc, tenant)
		go func(sc *StreamConn) {
			defer wg.Done()
			for i := 0; ; i++ {
				res, err := sc.Recv(ctx)
				if err != nil {
					return // io.EOF after CloseSend drains
				}
				if res.Seq != i {
					t.Errorf("result %d: seq %d (poisoned or reordered entry)", i, res.Seq)
					return
				}
				if res.Type != EventStreamArrival && res.Type != EventStreamDeparture {
					t.Errorf("result %d: poisoned type %d", i, res.Type)
					return
				}
				if res.CatalogID == "poisoned" || res.Catalog.CostScale < 0 {
					t.Errorf("result %d: poisoned payload %+v", i, res)
					return
				}
			}
		}(sc)
	}
	wg.Wait()
	if recycled.Load() == 0 {
		t.Fatal("poison hooks never fired: recycling is not exercised")
	}
}
