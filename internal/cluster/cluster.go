// Package cluster operates many neighborhood head-ends as one fleet:
// the sharded, multi-tenant serving layer the paper's Fig. 1 implies
// but never builds. Each tenant is one independent head-end instance
// (an admission policy plus its running assignment, wrapped by
// headend.Tenant); the cluster pins every tenant to exactly one shard,
// and each shard runs a single worker goroutine that owns its tenants
// outright — no locks, no shared mutable state between shards.
//
// # Shard / batch / determinism contract
//
// Events (stream arrivals, stream departures, gateway leaves/joins,
// offline re-solves) are routed to the owning shard over a buffered
// channel and processed strictly in submission order per shard. Stream
// arrivals are coalesced: a shard accumulates up to Options.BatchSize
// consecutive arrivals, then admits them grouped by tenant (groups in
// first-appearance order, per-tenant arrival order preserved), so each
// tenant's policy state is activated once per batch instead of once
// per event. Tenants are independent, so grouping never changes
// results. A partial batch is flushed by the next non-arrival event, a
// request/response arrival (one carrying a completion channel — see
// below), a snapshot barrier, or shutdown — never by a timer — which
// keeps flush boundaries (and the per-shard batch stats) a pure
// function of the submission sequence.
//
// # Request/response sessions (serving API v2)
//
// The public surface is typed and per operation: OfferStream,
// DepartStream, UserLeave, UserJoin, and Resolve each route one event
// to the owning shard with a per-event completion channel attached and
// block until the worker replies with a typed result (OfferResult,
// DepartResult, ChurnResult, ResolveResult). So that a blocked caller
// never waits on a trailing partial batch, an arrival carrying a
// completion channel flushes the batch it joins immediately; arrivals
// submitted by the fire-and-forget replay path (RunWorkload) coalesce
// exactly as before. Failures use the sentinel taxonomy in session.go
// (ErrUnknownTenant, ErrQueueFull, ErrClosed, ErrCanceled) and the
// enqueue side honors Options.Backpressure.
//
// Because tenant-to-shard placement is static and every per-tenant
// mutation happens on its shard's worker in submission order, a fixed
// submission sequence produces bit-identical per-tenant snapshots
// regardless of the shard count, and the fleet report is byte-identical
// across invocations (the reduction in Snapshot walks tenants and
// shards in index order — the same pattern as the band fan-out in
// internal/core). Wall-clock throughput is the only thing sharding
// changes.
//
// # Serving hot path
//
// The default tenant policy (guarded online admission) decides each
// candidate with an incremental mmd.LoadLedger in O(measures) rather
// than a full per-candidate feasibility rescan, and the per-tenant
// snapshots taken at barriers ride mmd.Assignment's sorted-slice
// representation (allocation-free Utility/range reads). The ledger path
// is pinned bit-identical to the retained rescan reference by the
// differential tests in this package and internal/headend; the
// serving-path benchmarks are snapshotted by `mmdbench -json` into
// BENCH_serving.json.
//
// # Fleet catalog (serving API v3)
//
// With Options.Catalog, streams gain fleet-wide identity: a catalog.ID
// names the same stream across tenants, whatever local index each
// tenant's instance knows it by. OfferCatalogStream/DepartCatalogStream
// admit and release by ID; a registry owned by its own goroutine (the
// same share-nothing message discipline as the shard workers — see
// internal/catalog) maintains cross-shard reference counts, and a
// pluggable cost model prices each admission from the current count.
// Under catalog.Isolated (the default) every admission is full price
// and results are bit-identical to the pre-catalog path; under
// catalog.SharedOrigin the first admitting tenant pays the full
// origin/transcode cost, later tenants the replication fraction — the
// guard asks the tenant's feasibility ledger with the discounted delta
// — and the last departure evicts the origin. Snapshot embeds the
// registry state (reference counts, origin savings) when a catalog is
// configured.
//
// # Streaming ingestion (serving API v4)
//
// OpenStream returns a StreamConn, a persistent pipelined session over
// the same primitives: one goroutine Submits events without waiting,
// another Recvs typed results in submission order, and a bounded
// in-flight window (block or reject) is the backpressure point.
// Catalog events ride streams with no special casing because the shard
// worker settles every fleet reference in FIFO order — see stream.go.
// The HTTP face of this surface lives in internal/httpserve
// (POST /v1/stream) with repro/streamclient as the wire client.
//
// ARCHITECTURE.md (repo root) maps how this layer sits between the
// head-end and the serving front end, and which invariants the
// differential tests pin.
package cluster

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/headend"
	"repro/internal/mmd"
	"repro/internal/wal"
)

// EventType discriminates cluster events.
type EventType int

// Event kinds routed to shard workers.
const (
	// EventStreamArrival offers Event.Stream to the tenant's policy.
	EventStreamArrival EventType = iota + 1
	// EventStreamDeparture removes a carried stream.
	EventStreamDeparture
	// EventUserLeave takes gateway Event.User offline.
	EventUserLeave
	// EventUserJoin brings gateway Event.User back online.
	EventUserJoin
	// EventResolve re-runs the offline pipeline for the tenant:
	// monitoring by default, installing when Event.Install is set (see
	// headend.Tenant.Resolve).
	EventResolve
)

// Event is one unit of work for a tenant. It is the internal routing
// record behind the per-operation session methods and the Workload
// replay schedule; it is no longer the public submission surface.
type Event struct {
	// Tenant is the target tenant index.
	Tenant int
	// Type selects the action.
	Type EventType
	// Stream is the stream index (arrival/departure events).
	Stream int
	// User is the gateway index (leave/join events).
	User int
	// Install asks a resolve event to install the offline assignment
	// (see Cluster.Resolve and headend.Tenant.Resolve).
	Install bool
	// CostScale prices an arrival's server-cost delta (0 means 1, full
	// price). Set by the catalog path (OfferCatalogStream) from the
	// cost model's ticket; see headend.Tenant.OfferStreamScaled.
	CostScale float64
	// CatalogID marks a catalog-managed arrival or departure. The
	// worker settles the fleet reference (commit or recharge on admit,
	// release on reject or removal — classified against its own
	// held-reference set) immediately after applying the event, so
	// registry transitions follow shard FIFO order exactly — caller
	// ordering races cannot desynchronize refcounts from tenant state.
	// Set only by the catalog session methods; a departure with no
	// CatalogID still settles a held reference when its local stream is
	// catalog-bound (the worker resolves the binding itself).
	CatalogID catalog.ID
	// originPayer echoes catalog.Ticket.OriginPayer for a catalog
	// arrival: the acquisition was quoted the full origin cost, and the
	// settlement that balances it must say so. Set only by the acquire
	// paths inside this package (never caller-visible).
	originPayer bool
	// Session and SessionSeq tie the event to a resumable ingestion
	// session: the client-chosen session id and the client-assigned
	// per-session sequence number (1-based; 0 = not session-tracked).
	// They never affect how the event applies — they are stamped into
	// the WAL record so recovery can rebuild each session's dedup
	// watermark (RecoveryReport.SessionWatermarks) and a resuming
	// client's replayed events are applied at most once. Set by the
	// serving layer's stream handler.
	Session    string
	SessionSeq uint64
}

// scale returns the arrival's effective server-cost scale.
func (ev Event) scale() float64 {
	if ev.CostScale == 0 {
		return 1
	}
	return ev.CostScale
}

// TenantSnapshot is the per-tenant summary (see headend.TenantSnapshot).
type TenantSnapshot = headend.TenantSnapshot

// TenantConfig describes one tenant of the cluster.
type TenantConfig struct {
	// Instance is the tenant's workload (cable-TV conventions).
	Instance *mmd.Instance
	// Policy is the admission policy; nil builds the guarded online
	// policy (the production-safe default).
	Policy headend.Policy
}

// Options configures a Cluster.
type Options struct {
	// Shards is the number of worker goroutines (default
	// min(GOMAXPROCS, tenants)). Results are independent of Shards.
	Shards int
	// BatchSize is the number of consecutive stream arrivals a shard
	// coalesces before invoking the policy (default 16).
	BatchSize int
	// QueueDepth is the per-shard event channel buffer (default 256).
	QueueDepth int
	// ResolveEvery triggers an offline re-solve of a tenant after every
	// N churn events (departures, leaves, joins) it processes; 0
	// disables churn-triggered re-solves. Churn-triggered re-solves are
	// monitoring only; use Resolve with ResolveOptions.Install to
	// install.
	ResolveEvery int
	// SolveOptions configures the re-solve pipeline.
	SolveOptions core.Options
	// Backpressure selects the enqueue behavior when a shard queue is
	// full: BackpressureBlock (default) or BackpressureReject.
	Backpressure Backpressure
	// Catalog configures the fleet-level shared-stream catalog (serving
	// API v3); nil disables the catalog surface and the catalog session
	// methods fail with ErrNoCatalog.
	Catalog *CatalogOptions
	// WAL configures the durability subsystem (serving API v5): every
	// applied event is appended to the owning shard's write-ahead log
	// segment before its result is delivered, checkpoints fence the log
	// with verified state renders, Recover rebuilds a crashed fleet from
	// the directory, and Reshard replays the log into a new shard layout
	// while the old one serves. nil disables durability entirely (the
	// hot path is unchanged). See wal.go in this package.
	WAL *WALOptions
}

// CatalogOptions configures the fleet catalog: which streams have
// fleet-wide identity and how later admissions are priced.
type CatalogOptions struct {
	// Streams binds fleet-wide catalog IDs to per-tenant local stream
	// indexes (see catalog.Binding).
	Streams []catalog.Binding
	// CostModel prices admissions from the current reference count; nil
	// means catalog.Isolated (full price everywhere — bit-identical to
	// the pre-catalog serving path). Ignored when Remote is set — the
	// remote registry prices with its own model.
	CostModel catalog.CostModel
	// Remote injects an already-connected catalog service client
	// (serving API v7, see internal/catalog/remote) instead of building
	// an in-process registry: refcounts and pricing live with the
	// remote owner, shared by every node of a multi-process fleet.
	// Streams is still required — the cluster keeps its own binding
	// tables for worker-side settlement classification — and must match
	// the bindings the remote registry was built with. Remote cannot be
	// combined with Options.WAL: the registry's durability plane
	// belongs to the process that owns the refcounts.
	Remote catalog.Service
}

func (o Options) withDefaults(tenants int) Options {
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
	}
	if o.Shards > tenants {
		o.Shards = tenants
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 16
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	return o
}

// ShardStats summarizes one shard worker's activity.
type ShardStats struct {
	// Shard is the shard index; Tenants is how many tenants it owns.
	Shard, Tenants int
	// Events counts all processed events; Batches and MaxBatch describe
	// arrival coalescing.
	Events, Batches, MaxBatch int
	// Arrivals..Resolves break Events down by type (Admitted counts
	// arrivals that delivered to at least one user).
	Arrivals, Admitted, Departures, Leaves, Joins, Resolves int
}

// message is the shard channel payload: an event (with an optional
// per-event completion channel), a single-tenant event batch when batch
// is non-nil (see Cluster.ApplyBatch), or a barrier request when snap is
// non-nil. ack and batchAck are always buffered with capacity 1 so the
// worker never blocks delivering a result, even when the caller has
// abandoned the call on context cancellation.
type message struct {
	ev       Event
	ack      chan result
	batch    []Event
	batchAck chan []EventResult
	snap     chan shardReport
}

type shardReport struct {
	stats ShardStats
	snaps map[int]headend.TenantSnapshot
	err   error
}

type shard struct {
	id      int
	tenants []int
	ch      chan message
	done    chan struct{}

	// Worker-owned state below; read by others only via barrier replies
	// or after done is closed.
	stats ShardStats
	churn map[int]int // tenant -> churn events seen (ResolveEvery)
	err   error

	// Settlement scratch, worker-owned and reused across batch windows:
	// a batch defers its catalog settlements here and flushes them to
	// the registry in one SettleBatch round trip (see dispatchSettle);
	// settleSlots records which result slot each settlement backfills
	// (-1 for none). settleOne is the immediate-mode one-op buffer.
	settles      []catalog.Settlement
	settleSlots  []int
	settleRes    []catalog.SettleResult
	settleOne    [1]catalog.Settlement
	settleOneRes [1]catalog.SettleResult

	// Durability plane, worker-owned. wal is the shard's segment
	// appender (nil with no WAL, and during recovery/reshard replay —
	// replayed events are already in the log). replay suppresses
	// catalog settlements while the registry is rebuilt from its own
	// log plane; it is flipped off at go-live, while the worker is
	// provably idle. Under SyncBatch the worker defers result delivery
	// (pendAcks/pendBatch) and hands a group off at each commit point —
	// queue-empty, pending at commitGroupBound, barrier, or shutdown —
	// to the
	// shard's committer goroutine (commits/commitDone), which fsyncs
	// both planes' segments before delivering the group's results:
	// pipelined group commit. The worker keeps applying while the fsync
	// runs; commitErr latches the committer's first failure and the
	// worker folds it into err at barriers and shutdown.
	wal        *wal.Appender
	replay     bool
	deferAcks  bool
	pendAcks   []pendAck
	pendBatch  []pendBatchAck
	commits    chan commitGroup
	commitDone chan struct{}
	commitMu   sync.Mutex
	commitErr  error

	// Freelists recycling delivered groups' ack slices back to the
	// worker (committer sends, releaseAcks receives; both non-blocking —
	// a miss just allocates). At commitGroupBound-sized groups the
	// slices are the batch path's dominant allocation, and without
	// recycling each
	// one lives exactly one commit round: steady GC pressure on the hot
	// path for memory that is immediately reusable.
	ackFree   chan []pendAck
	batchFree chan []pendBatchAck
}

// pendAck and pendBatchAck are deferred result deliveries under the
// SyncBatch group-commit policy (see shard).
type pendAck struct {
	ch  chan result
	res result
}

type pendBatchAck struct {
	ch  chan []EventResult
	res []EventResult
}

// commitGroup is one deferred-acknowledgement group handed from a
// shard worker to its committer: make the carried appenders durable,
// then deliver the results. done, when non-nil, is closed after
// delivery — the worker's drain barrier (such a group may carry no
// results at all).
type commitGroup struct {
	wal, cat *wal.Appender
	acks     []pendAck
	batches  []pendBatchAck
	done     chan struct{}
}

// Cluster is a sharded multi-tenant head-end service. The session
// methods (OfferStream, DepartStream, UserLeave, UserJoin, Resolve),
// Snapshot, and Close are safe for concurrent use; events for the same
// tenant are applied in submission order.
type Cluster struct {
	opts    Options
	tenants []*headend.Tenant
	shardOf []int
	shards  []*shard
	// catalog is the fleet-level shared-stream registry (nil when
	// Options.Catalog is nil); see OfferCatalogStream. It is the
	// in-process *catalog.Registry unless Options.Catalog.Remote
	// injected a wire client against a registry owned by another
	// process (the fleet catalog service, serving API v7).
	catalog catalog.Service
	// catalogLocals[tenant] lists the tenant's catalog bindings in
	// Options.Catalog.Streams order — the worker walks it after an
	// installing re-solve to find fleet streams the new lineup dropped,
	// so their references can be released (see applyEvent).
	catalogLocals [][]catalogLocal
	// catalogByLocal[tenant] inverts the binding table (local stream
	// index → fleet ID) so a local-index departure of a catalog-bound
	// stream can settle its fleet reference on the worker exactly like a
	// by-ID departure (see applyEvent) — a plain DepartStream must not
	// leak the reference.
	catalogByLocal []map[int]catalog.ID
	// heldCatalog[tenant] is the worker-maintained set of fleet streams
	// the tenant holds a confirmed reference for. Every reference
	// transition is settled by the owning shard worker, so the set is
	// exact, lock-free, and lets the install-reconcile path release
	// only references actually held (no registry round trips for the
	// rest of the catalog).
	heldCatalog []map[catalog.ID]bool

	// Hot-path pools. Ownership rule for every pooled completion
	// channel: the side that *receives* the reply recycles the channel,
	// and only after draining it — a call abandoned on context
	// cancellation never recycles (the worker may still deliver into
	// it), it leaks the channel to the garbage collector instead.
	// Snapshot's barrier buffers follow the same rule: the reply
	// channel and the per-shard snapshot maps come from pools, and
	// Snapshot returns them only after the barrier fully drained.
	ackPool      sync.Pool // chan result, capacity 1
	batchAckPool sync.Pool // chan []EventResult, capacity 1
	snapChPool   sync.Pool // chan shardReport, capacity len(shards)
	snapMapPool  sync.Pool // map[int]headend.TenantSnapshot

	mu     sync.RWMutex
	closed bool

	// Durability plane (wlog nil when Options.WAL is nil); see wal.go.
	// walSeq is the shared global sequence counter — a pointer so a
	// resharding shadow cluster stamps from the same sequence. walCatApp
	// is the catalog plane's active appender, a shared atomic pointer
	// for the same reason: after a reshard the live workers belong to
	// the shadow's struct, and a later checkpoint rotation on the
	// primary must repoint them too — a per-struct field would leave
	// the workers committing a sealed appender (a silent no-op).
	// walLive marks a cluster whose WAL is actively logging (false
	// during recovery/reshard replay); it is written only while workers
	// are quiesced. cfgs retains the tenant configs for Reshard's shadow
	// rebuild. ckptKick/ckptQuit/ckptDone drive the automatic
	// checkpoint goroutine; ckptEvery is Options.WAL.CheckpointEvery as
	// the worker-side modulus. reshardMu serializes Reshard calls.
	wlog      *wal.Log
	walSeq    *atomic.Uint64
	walCatApp *atomic.Pointer[wal.Appender]
	walLive   bool
	cfgs      []TenantConfig
	ckptKick  chan struct{}
	ckptQuit  chan struct{}
	ckptDone  chan struct{}
	ckptEvery uint64
	reshardMu sync.Mutex
}

// getAck returns a pooled one-shot result channel.
func (c *Cluster) getAck() chan result {
	if ch, ok := c.ackPool.Get().(chan result); ok {
		return ch
	}
	return make(chan result, 1)
}

// putAck recycles a drained result channel. Never call it on a channel
// a worker may still deliver into (an abandoned call).
func (c *Cluster) putAck(ch chan result) {
	if poisonAck != nil {
		poisonAck(ch)
	}
	c.ackPool.Put(ch)
}

// poisonAck, when non-nil (set only by test builds), inspects a result
// channel at the moment it is recycled — the -race pool-discipline
// tests install a checker that fails loudly on an undrained delivery,
// which would mean a future caller could receive a stale result.
var poisonAck func(chan result)

// getBatchAck / putBatchAck mirror getAck for batch completion channels.
func (c *Cluster) getBatchAck() chan []EventResult {
	if ch, ok := c.batchAckPool.Get().(chan []EventResult); ok {
		return ch
	}
	return make(chan []EventResult, 1)
}

func (c *Cluster) putBatchAck(ch chan []EventResult) {
	if poisonBatchAck != nil {
		poisonBatchAck(ch)
	}
	c.batchAckPool.Put(ch)
}

// poisonBatchAck mirrors poisonAck for batch completion channels.
var poisonBatchAck func(chan []EventResult)

// New builds the cluster and starts one worker per shard. Tenant i is
// pinned to shard i mod Shards. With Options.WAL the durability log is
// opened fresh (an existing log in the directory is an error — use
// Recover to rebuild from one).
func New(tenants []TenantConfig, opts Options) (*Cluster, error) {
	c, err := newCluster(tenants, opts, false)
	if err != nil {
		return nil, err
	}
	if c.opts.WAL != nil {
		if err := c.walStart(); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// newCluster builds the cluster object and starts the workers. replay
// marks a cluster being rebuilt from a durability log (recovery, or a
// resharding shadow): its workers suppress catalog settlements — the
// registry is rebuilt from its own log plane — and append nothing (no
// appenders are attached until go-live).
func newCluster(tenants []TenantConfig, opts Options, replay bool) (*Cluster, error) {
	if len(tenants) == 0 {
		return nil, fmt.Errorf("cluster: need at least one tenant")
	}
	opts = opts.withDefaults(len(tenants))
	c := &Cluster{
		opts:      opts,
		tenants:   make([]*headend.Tenant, len(tenants)),
		shardOf:   make([]int, len(tenants)),
		shards:    make([]*shard, opts.Shards),
		cfgs:      append([]TenantConfig(nil), tenants...),
		walSeq:    new(atomic.Uint64),
		walCatApp: new(atomic.Pointer[wal.Appender]),
	}
	if opts.WAL != nil {
		c.ckptEvery = uint64(max(opts.WAL.CheckpointEvery, 0))
	}
	for i, cfg := range tenants {
		if cfg.Instance == nil {
			return nil, fmt.Errorf("cluster: tenant %d: nil instance", i)
		}
		pol := cfg.Policy
		if pol == nil {
			var err error
			pol, err = headend.NewPolicyByName(cfg.Instance, "online")
			if err != nil {
				return nil, fmt.Errorf("cluster: tenant %d: %w", i, err)
			}
		}
		t, err := headend.NewTenant(cfg.Instance, pol)
		if err != nil {
			return nil, fmt.Errorf("cluster: tenant %d: %w", i, err)
		}
		c.tenants[i] = t
		c.shardOf[i] = i % opts.Shards
	}
	if opts.Catalog != nil {
		// Each (tenant, local stream) pair may back at most one catalog
		// ID: two IDs sharing a local stream would let a departure by
		// one ID strand the other's confirmed reference forever.
		type tenantLocal struct{ tenant, local int }
		bound := make(map[tenantLocal]catalog.ID)
		for _, b := range opts.Catalog.Streams {
			for tenant, s := range b.Local {
				if tenant < 0 || tenant >= len(c.tenants) {
					return nil, fmt.Errorf("cluster: catalog %q: tenant %d out of range [0,%d)",
						b.ID, tenant, len(c.tenants))
				}
				if n := c.tenants[tenant].Instance().NumStreams(); s >= n {
					return nil, fmt.Errorf("cluster: catalog %q: tenant %d stream %d out of range [0,%d)",
						b.ID, tenant, s, n)
				}
				key := tenantLocal{tenant, s}
				if prev, dup := bound[key]; dup {
					return nil, fmt.Errorf("cluster: catalog %q: tenant %d stream %d already bound to %q",
						b.ID, tenant, s, prev)
				}
				bound[key] = b.ID
			}
		}
		if opts.Catalog.Remote != nil {
			if opts.WAL != nil {
				return nil, fmt.Errorf("cluster: a remote catalog registry cannot be combined with a WAL (the registry's durability plane lives with the remote owner)")
			}
			c.catalog = opts.Catalog.Remote
		} else {
			reg, err := catalog.NewRegistry(opts.Catalog.Streams, opts.Catalog.CostModel)
			if err != nil {
				return nil, fmt.Errorf("cluster: %w", err)
			}
			c.catalog = reg
		}
		c.catalogLocals = make([][]catalogLocal, len(c.tenants))
		c.catalogByLocal = make([]map[int]catalog.ID, len(c.tenants))
		c.heldCatalog = make([]map[catalog.ID]bool, len(c.tenants))
		for _, b := range opts.Catalog.Streams {
			for tenant, s := range b.Local {
				c.catalogLocals[tenant] = append(c.catalogLocals[tenant],
					catalogLocal{id: b.ID, local: s})
				if c.catalogByLocal[tenant] == nil {
					c.catalogByLocal[tenant] = make(map[int]catalog.ID)
				}
				c.catalogByLocal[tenant][s] = b.ID
			}
		}
		for i := range c.heldCatalog {
			c.heldCatalog[i] = make(map[catalog.ID]bool)
		}
	}
	for s := range c.shards {
		sh := &shard{
			id:        s,
			ch:        make(chan message, opts.QueueDepth),
			done:      make(chan struct{}),
			churn:     make(map[int]int),
			replay:    replay,
			deferAcks: opts.WAL != nil && opts.WAL.Sync == wal.SyncBatch,
		}
		for i := range c.tenants {
			if c.shardOf[i] == s {
				sh.tenants = append(sh.tenants, i)
			}
		}
		sh.stats.Shard = s
		sh.stats.Tenants = len(sh.tenants)
		c.shards[s] = sh
		if sh.deferAcks {
			sh.commits = make(chan commitGroup, 16)
			sh.commitDone = make(chan struct{})
			sh.ackFree = make(chan []pendAck, 4)
			sh.batchFree = make(chan []pendBatchAck, 4)
			go c.committer(sh)
		}
		go c.worker(sh)
	}
	return c, nil
}

// NumTenants returns the number of tenants.
func (c *Cluster) NumTenants() int { return len(c.tenants) }

// NumShards returns the number of shard workers (it changes across a
// live Reshard).
func (c *Cluster) NumShards() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.shards)
}

// ShardOf returns the shard owning tenant i (it changes across a live
// Reshard).
func (c *Cluster) ShardOf(i int) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.shardOf[i]
}

// Snapshot flushes every shard (a barrier: all queued events are
// applied first) and returns the aggregated fleet state. The reduction
// walks tenants and shards in index order, so the snapshot — and
// everything rendered from it — is deterministic for a deterministic
// submission sequence.
func (c *Cluster) Snapshot() (*FleetSnapshot, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return nil, ErrClosed
	}
	return c.barrierSnapshot()
}

// barrierSnapshot runs the shard barrier and aggregates the fleet
// state. Requires c.mu held: read-held for Snapshot (concurrent
// submissions just land behind the barrier messages), write-held for
// the durability quiesce points (checkpoint, reshard cutover, close) —
// enqueue holds the read lock through its channel send, so the write
// lock additionally guarantees no send is in flight and the queues
// stay empty until release.
func (c *Cluster) barrierSnapshot() (*FleetSnapshot, error) {
	// The barrier reuses one pooled reply channel for all shards (its
	// capacity is len(shards), so workers never block) and pooled
	// per-shard snapshot maps; both go back to their pools only after
	// the barrier fully drained, so a pooled buffer is never in flight.
	// The capacity re-check matters after a reshard grows the fleet.
	replies, _ := c.snapChPool.Get().(chan shardReport)
	if replies == nil || cap(replies) < len(c.shards) {
		replies = make(chan shardReport, len(c.shards))
	}
	for _, sh := range c.shards {
		sh.ch <- message{snap: replies}
	}
	fs := &FleetSnapshot{
		Shards:      len(c.shards),
		Tenants:     make([]headend.TenantSnapshot, len(c.tenants)),
		ShardStats:  make([]ShardStats, len(c.shards)),
		AllFeasible: true,
	}
	var firstErr error
	for range c.shards {
		rep := <-replies
		fs.ShardStats[rep.stats.Shard] = rep.stats
		for i, snap := range rep.snaps {
			fs.Tenants[i] = snap
		}
		clear(rep.snaps)
		c.snapMapPool.Put(rep.snaps)
		if rep.err != nil && firstErr == nil {
			firstErr = rep.err
		}
	}
	c.snapChPool.Put(replies)
	if firstErr != nil {
		return nil, firstErr
	}
	if c.catalog != nil {
		// Taken after every shard barrier replied, so all catalog
		// traffic submitted-and-acknowledged before Snapshot is
		// reflected; the registry owner renders entries in sorted ID
		// order, keeping the section deterministic.
		fs.Catalog = c.catalog.Snapshot()
	}
	for i := range c.tenants {
		snap := fs.Tenants[i]
		fs.Utility += snap.Utility
		fs.Offered += snap.StreamsOffered
		fs.Admitted += snap.StreamsAdmitted
		fs.Departed += snap.StreamsDeparted
		fs.Leaves += snap.UserLeaves
		fs.Joins += snap.UserJoins
		fs.Resolves += snap.Resolves
		fs.Installs += snap.Installs
		fs.ActiveStreams += snap.ActiveStreams
		fs.Pairs += snap.Pairs
		if !snap.Feasible {
			fs.AllFeasible = false
		}
	}
	return fs, nil
}

// Close drains and stops all shard workers (queued request/response
// events still receive their results). It is idempotent; the session
// methods and Snapshot fail with ErrClosed after Close. The first
// worker error (a failed re-solve, or a latched WAL append error) is
// returned. With a live WAL, Close quiesces the fleet and seals the
// log with a "close" manifest, so the next Recover verifies its full
// replay against the final state.
func (c *Cluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	var closeMan *wal.Manifest
	if c.wlog != nil && c.walLive {
		if fs, err := c.barrierSnapshot(); err == nil {
			m := c.manifestFor(fs, "close")
			closeMan = &m
		}
	}
	c.closed = true
	for _, sh := range c.shards {
		close(sh.ch)
	}
	c.mu.Unlock()
	var firstErr error
	for _, sh := range c.shards {
		<-sh.done
		if sh.err != nil && firstErr == nil {
			firstErr = sh.err
		}
	}
	if c.ckptQuit != nil {
		close(c.ckptQuit)
		<-c.ckptDone
	}
	if c.catalog != nil {
		c.catalog.Close()
	}
	if c.wlog != nil {
		if err := c.wlog.Close(closeMan); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// worker is the shard event loop: FIFO with arrival coalescing and
// per-event result delivery. Under the WAL's SyncBatch policy, result
// delivery is deferred (see deliver) and the loop hands the pending
// group to the shard's committer at every commit point: the queue
// momentarily empty, the pending count reaching commitGroupBound, a barrier
// (which additionally drains the committer), or shutdown. The
// arrival-coalescing flush boundaries are untouched — they stay a pure
// function of the submission sequence; only delivery is deferred.
func (c *Cluster) worker(sh *shard) {
	defer close(sh.done)
	batch := make([]message, 0, c.opts.BatchSize)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		sh.stats.Batches++
		if len(batch) > sh.stats.MaxBatch {
			sh.stats.MaxBatch = len(batch)
		}
		// Admit grouped by tenant, groups in first-appearance order.
		// Per-tenant arrival order is preserved and tenants are
		// independent, so results match pure FIFO.
		for len(batch) > 0 {
			ti := batch[0].ev.Tenant
			keep := batch[:0]
			for _, msg := range batch {
				if msg.ev.Tenant != ti {
					keep = append(keep, msg)
					continue
				}
				res := c.applyArrival(sh, msg.ev, msg.ack != nil, false, -1)
				if msg.ack != nil {
					c.deliver(sh, msg.ack, res)
				}
			}
			batch = keep
		}
	}
	process := func(msg message) {
		if msg.snap != nil {
			// A barrier is a commit point: everything applied so far is
			// made durable and acknowledged before the reply, so the
			// barrier's snapshot covers only acknowledged state.
			flush()
			c.releaseAcks(sh)
			c.drainCommits(sh)
			msg.snap <- c.reportShard(sh)
			return
		}
		if msg.batch != nil {
			// A single-tenant event batch (ApplyBatch, the HTTP batch
			// endpoint): one shard message, applied as its own batch
			// window — flush the pending window first so ordering stays
			// FIFO per tenant.
			flush()
			res := c.applyEventBatch(sh, msg.batch)
			if sh.deferAcks {
				sh.pendBatch = append(sh.pendBatch, pendBatchAck{ch: msg.batchAck, res: res})
				c.maybeRelease(sh)
			} else {
				msg.batchAck <- res
			}
			return
		}
		sh.stats.Events++
		if msg.ev.Type == EventStreamArrival {
			batch = append(batch, msg)
			// A request/response arrival is its own flush boundary: the
			// caller is blocked on its completion channel, and waiting
			// for the batch to fill could strand it forever. Ack-ness
			// is part of the submission sequence, so flush boundaries
			// stay a pure function of it.
			if len(batch) >= c.opts.BatchSize || msg.ack != nil {
				flush()
			}
			return
		}
		flush()
		res := c.applyEvent(sh, msg.ev, msg.ack == nil, false, -1)
		if msg.ack != nil {
			c.deliver(sh, msg.ack, res)
		}
	}
	for {
		msg, ok := <-sh.ch
		if !ok {
			break
		}
		process(msg)
		// Drain the burst without blocking, then commit at the point
		// the queue goes momentarily empty — the group-commit heuristic
		// that amortizes one fsync over however many events arrived
		// while the previous group was being written.
		for ok {
			select {
			case msg, ok = <-sh.ch:
				if ok {
					process(msg)
				}
			default:
				ok = false
			}
		}
		c.releaseAcks(sh)
	}
	flush()
	c.releaseAcks(sh)
	if sh.deferAcks {
		close(sh.commits)
		<-sh.commitDone
		sh.commitMu.Lock()
		if sh.err == nil {
			sh.err = sh.commitErr
		}
		sh.commitMu.Unlock()
	}
}

// deliver hands one event result to its caller — immediately, or onto
// the shard's pending group under SyncBatch (the result must not reach
// the caller before its log record is durable; the committer fsyncs
// the segment before delivering the group).
func (c *Cluster) deliver(sh *shard, ch chan result, res result) {
	if sh.deferAcks {
		sh.pendAcks = append(sh.pendAcks, pendAck{ch: ch, res: res})
		c.maybeRelease(sh)
		return
	}
	ch <- res
}

// commitGroupBound caps a shard's deferred-acknowledgement group, in
// events, under sustained load (an idle moment releases the group
// regardless — see the worker's queue-empty release). The bound is a
// durability batching window, not a queue depth: it exists so a
// saturating submitter cannot defer acknowledgements without limit,
// and every event under it shares one fsync. 2048 events is a few
// milliseconds of apply work — the same order as the device flush it
// amortizes — so raising it further adds ack latency without removing
// syncs, and lowering it multiplies fsyncs under exactly the load
// where they hurt.
const commitGroupBound = 2048

// maybeRelease bounds the pending group at commitGroupBound (or the
// configured queue depth, if larger) so a saturating submitter cannot
// defer acknowledgements without limit.
func (c *Cluster) maybeRelease(sh *shard) {
	bound := commitGroupBound
	if c.opts.QueueDepth > bound {
		bound = c.opts.QueueDepth
	}
	if len(sh.pendAcks)+len(sh.pendBatch) >= bound {
		c.releaseAcks(sh)
	}
}

// releaseAcks is the group-commit point: it hands the shard's pending
// group — with the two planes' appenders (the registry's settlements
// for the group's events are already in the catalog appender's buffer)
// — to the committer, which fsyncs and then delivers every deferred
// result in order. The worker returns immediately and keeps applying
// while the fsync runs. A no-op outside SyncBatch.
func (c *Cluster) releaseAcks(sh *shard) {
	if !sh.deferAcks || (len(sh.pendAcks) == 0 && len(sh.pendBatch) == 0) {
		return
	}
	g := commitGroup{wal: sh.wal, cat: c.walCatApp.Load(), acks: sh.pendAcks, batches: sh.pendBatch}
	// Swap in a recycled slice, or start one with real capacity: the
	// freelist is empty exactly when every slice is in flight behind an
	// fsync, and growing from nil there puts the doubling copies on the
	// hot path (they were the batch path's dominant timed allocation).
	sh.pendAcks, sh.pendBatch = nil, nil
	select {
	case sh.pendAcks = <-sh.ackFree:
	default:
		sh.pendAcks = make([]pendAck, 0, commitGroupBound/4)
	}
	select {
	case sh.pendBatch = <-sh.batchFree:
	default:
	}
	sh.commits <- g
}

// committer is the shard's group-commit daemon: for each window of
// handed-off groups it makes both planes' segments durable, then
// delivers the groups' deferred results in order — an acknowledged
// event is on disk before its caller unblocks, while the worker's
// apply loop never waits on an fsync. Groups that queued up behind an
// in-flight fsync are drained into the next window and share one
// syscall (Appender.Commit covers everything appended before the
// call), so a pipelined submitter pays roughly one fsync per disk
// latency, not per ack group.
func (c *Cluster) committer(sh *shard) {
	defer close(sh.commitDone)
	var window []commitGroup
	for open := true; open; {
		g, ok := <-sh.commits
		if !ok {
			return
		}
		window = append(window[:0], g)
		for more := true; more; {
			select {
			case g2, ok2 := <-sh.commits:
				if !ok2 {
					open, more = false, false
				} else {
					window = append(window, g2)
				}
			default:
				more = false
			}
		}
		// One commit per distinct appender in the window (rotation can
		// only change the pointers across a drain barrier, so a window
		// almost always holds exactly one of each).
		var prevWAL, prevCat *wal.Appender
		var windowErr error
		for _, g := range window {
			if g.wal != nil && g.wal != prevWAL {
				prevWAL = g.wal
				if err := g.wal.Commit(); err != nil {
					c.latchCommitErr(sh, err)
					if windowErr == nil {
						windowErr = err
					}
				}
			}
			if g.cat != nil && g.cat != prevCat {
				prevCat = g.cat
				if err := g.cat.Commit(); err != nil {
					c.latchCommitErr(sh, err)
					if windowErr == nil {
						windowErr = err
					}
				}
			}
		}
		// Acks are truthful: a window whose commit failed delivers
		// ErrNotDurable to every caller instead of a success the disk
		// never backed. The appender error is latched, so every later
		// window fails the same way until the cluster is torn down and
		// recovered.
		var notDurable error
		if windowErr != nil {
			notDurable = fmt.Errorf("%w: %v", ErrNotDurable, windowErr)
		}
		for _, g := range window {
			for i := range g.acks {
				if notDurable != nil {
					g.acks[i].res.err = notDurable
				}
				g.acks[i].ch <- g.acks[i].res
				g.acks[i] = pendAck{}
			}
			for i := range g.batches {
				if notDurable != nil {
					for j := range g.batches[i].res {
						g.batches[i].res[j].Err = notDurable
					}
				}
				g.batches[i].ch <- g.batches[i].res
				g.batches[i] = pendBatchAck{}
			}
			if cap(g.acks) > 0 {
				select {
				case sh.ackFree <- g.acks[:0]:
				default:
				}
			}
			if cap(g.batches) > 0 {
				select {
				case sh.batchFree <- g.batches[:0]:
				default:
				}
			}
			if g.done != nil {
				close(g.done)
			}
		}
	}
}

// latchCommitErr records the committer's first failure for the worker
// to surface at its next drain point.
func (c *Cluster) latchCommitErr(sh *shard, err error) {
	sh.commitMu.Lock()
	if sh.commitErr == nil {
		sh.commitErr = err
	}
	sh.commitMu.Unlock()
}

// drainCommits blocks until the committer has delivered every group
// enqueued so far and folds any commit error into the shard — the
// barrier step that makes a snapshot cover only acknowledged, durable
// state. A no-op outside SyncBatch.
func (c *Cluster) drainCommits(sh *shard) {
	if !sh.deferAcks {
		return
	}
	done := make(chan struct{})
	sh.commits <- commitGroup{done: done}
	<-done
	sh.commitMu.Lock()
	if sh.err == nil {
		sh.err = sh.commitErr
	}
	sh.commitMu.Unlock()
}

// dispatchSettle routes one catalog settlement the worker decided:
// immediately (deferred false — the FIFO single-event path, whose
// caller is acked right after) via the shard's one-op scratch, or onto
// the shard's settlement buffer (deferred true — the batch path, which
// flushes the whole run in one SettleBatch round trip). slot is the
// batch result index whose Catalog.Refs/Evicted the flush backfills
// (-1 for settlements with no per-event result, e.g. install
// reconciliation). Deferred settlements return a zero result; the
// flush fills it in.
func (c *Cluster) dispatchSettle(sh *shard, s catalog.Settlement, deferred bool, slot int) (refs int, evicted bool) {
	if deferred {
		sh.settles = append(sh.settles, s)
		sh.settleSlots = append(sh.settleSlots, slot)
		return 0, false
	}
	sh.settleOne[0] = s
	if err := c.catalog.SettleBatch(sh.settleOne[:], sh.settleOneRes[:]); err != nil {
		return 0, false
	}
	return sh.settleOneRes[0].Refs, sh.settleOneRes[0].Evicted
}

// flushSettles sends the shard's deferred settlement run to the
// registry in one round trip and backfills per-event reference state
// into the batch results. Ordering is exact: every registry transition
// a batch produces — arrival settlements, departure releases, install
// reconciliation — rides this single ordered buffer.
func (c *Cluster) flushSettles(sh *shard, out []EventResult) {
	if len(sh.settles) == 0 {
		return
	}
	if cap(sh.settleRes) < len(sh.settles) {
		sh.settleRes = make([]catalog.SettleResult, len(sh.settles))
	}
	res := sh.settleRes[:len(sh.settles)]
	if err := c.catalog.SettleBatch(sh.settles, res); err == nil {
		for k, slot := range sh.settleSlots {
			if slot >= 0 && out != nil {
				out[slot].Catalog.Refs = res[k].Refs
				out[slot].Catalog.Evicted = res[k].Evicted
			}
		}
	}
	sh.settles = sh.settles[:0]
	sh.settleSlots = sh.settleSlots[:0]
}

// applyArrival admits one stream arrival on the worker goroutine and
// returns the typed decision (shared by the coalescing flush path and
// the batch path). The utility sum is computed only when a caller will
// read it (needResult); fire-and-forget replay arrivals skip it. For a
// catalog-managed arrival the fleet reference is settled here, in shard
// FIFO order: commit on admit, release of the provisional reference on
// reject, recharge accounting for an admission under an existing
// reference (Ticket.Already). deferred/slot select immediate or batched
// settlement (see dispatchSettle).
func (c *Cluster) applyArrival(sh *shard, ev Event, needResult, deferred bool, slot int) result {
	if sh.wal != nil {
		c.logEvent(sh, &ev)
	}
	t := c.tenants[ev.Tenant]
	sh.stats.Arrivals++
	users := t.OfferStreamScaled(ev.Stream, ev.scale())
	if len(users) > 0 {
		sh.stats.Admitted++
	}
	res := result{offer: OfferResult{Accepted: len(users) > 0, Subscribers: users}}
	if needResult {
		in := t.Instance()
		for _, u := range users {
			res.offer.Utility += in.Users[u].Utility[ev.Stream]
		}
	}
	if ev.CatalogID != "" && c.catalog != nil {
		// The held-reference set is maintained by this worker alongside
		// every registry transition for the tenant, so it decides
		// commit-vs-recharge exactly — a caller-side classification
		// could be stale by the time the event is applied.
		s := catalog.Settlement{ID: ev.CatalogID, Tenant: ev.Tenant, Origin: ev.originPayer}
		switch held := c.heldCatalog[ev.Tenant]; {
		case !res.offer.Accepted:
			s.Op = catalog.SettleReleasePending
		case held[ev.CatalogID]:
			// The tenant already holds the reference but the local
			// stream had been dropped out of band: a real admission
			// under the existing reference, charged at the scale the
			// guard actually priced (a holder's ticket is full price;
			// only exotic interleaves carry a discount here).
			s.Op = catalog.SettleRecharge
			s.Full = t.Instance().StreamCostSum(ev.Stream)
			s.Charged = ev.scale() * s.Full
		default:
			s.Op = catalog.SettleCommit
			s.Full = t.Instance().StreamCostSum(ev.Stream)
			s.Charged = ev.scale() * s.Full
			held[ev.CatalogID] = true
		}
		// During log replay the registry is rebuilt from its own plane
		// (the owner's serialization order — see internal/catalog), so
		// the worker keeps classifying to maintain its held set but
		// never re-issues the settlement.
		if !sh.replay {
			res.refs, res.evicted = c.dispatchSettle(sh, s, deferred, slot)
		}
	}
	return res
}

// applyEvent handles every non-arrival event and the churn-triggered
// re-solve policy, returning the typed result. background marks events
// with no caller to inform (fire-and-forget replay), whose resolve
// errors latch as the shard's first error. deferred/slot select
// immediate or batched catalog settlement (see dispatchSettle).
func (c *Cluster) applyEvent(sh *shard, ev Event, background, deferred bool, slot int) result {
	if sh.wal != nil {
		c.logEvent(sh, &ev)
	}
	t := c.tenants[ev.Tenant]
	var res result
	churned := false
	switch ev.Type {
	case EventStreamDeparture:
		sh.stats.Departures++
		carried := t.Carries(ev.Stream)
		users := t.DepartStream(ev.Stream)
		res.depart = DepartResult{Removed: carried, Subscribers: users}
		if c.catalog != nil {
			// Settle the fleet reference in shard FIFO order (see
			// applyArrival) — for a by-ID departure and equally for a
			// local-index departure of a catalog-bound stream (the worker
			// resolves the binding itself, so a plain DepartStream cannot
			// leak the reference). A held reference is released even when
			// nothing was carried (Removed false): that is the cleanup of
			// a stream whose local subscription was already gone. A by-ID
			// departure with no held reference issues the release anyway:
			// the registry remove is a no-op (an occupied-but-empty entry
			// never persists across operations, so it cannot evict), and
			// it reports the refs the caller asked about.
			id, byID := ev.CatalogID, ev.CatalogID != ""
			if !byID {
				id = c.catalogByLocal[ev.Tenant][ev.Stream]
			}
			held := c.heldCatalog[ev.Tenant]
			if id != "" && (held[id] || byID) {
				delete(held, id)
				if !sh.replay {
					res.refs, res.evicted = c.dispatchSettle(sh,
						catalog.Settlement{Op: catalog.SettleRelease, ID: id, Tenant: ev.Tenant},
						deferred, slot)
				}
			}
		}
		churned = true
	case EventUserLeave:
		sh.stats.Leaves++
		wasOnline := ev.User >= 0 && ev.User < t.Instance().NumUsers() && !t.Away(ev.User)
		streams := t.UserLeave(ev.User)
		res.churn = ChurnResult{Changed: wasOnline, Streams: streams}
		churned = true
	case EventUserJoin:
		sh.stats.Joins++
		wasAway := t.Away(ev.User)
		t.UserJoin(ev.User)
		res.churn = ChurnResult{Changed: wasAway}
		churned = true
	case EventResolve:
		res.resolve, res.err = c.resolve(sh, ev.Tenant, ev.Install, background)
		if res.err == nil && res.resolve.Installed && c.catalog != nil {
			// An install adopts the offline lineup wholesale — dropping
			// catalog-admitted streams outside it and picking up
			// catalog-bound streams inside it. The worker (which owns
			// both the tenant's carried set and its held-reference set)
			// reconciles the registry in both directions: it releases
			// exactly the references whose stream the new lineup no
			// longer carries (a retained ghost reference would discount
			// later tenants against an origin nobody pays for), and it
			// registers a full-price reference for every bound stream
			// the install picked up (a carried-but-unreferenced stream
			// would let a survivor's departure evict an origin still in
			// use). Settling here keeps registry transitions in shard
			// FIFO order and covers background installs, which have no
			// caller.
			held := c.heldCatalog[ev.Tenant]
			for _, cl := range c.catalogLocals[ev.Tenant] {
				switch carries := t.Carries(cl.local); {
				case held[cl.id] && !carries:
					if !sh.replay {
						c.dispatchSettle(sh,
							catalog.Settlement{Op: catalog.SettleRelease, ID: cl.id, Tenant: ev.Tenant},
							deferred, -1)
					}
					delete(held, cl.id)
				case !held[cl.id] && carries:
					// A pickup adopts a full-price reference atomically
					// (SettleAdopt — no provisional window to balance).
					// The stream itself keeps whatever charge scale the
					// tenant's lineup retained for it (Tenant.install);
					// adoption at full price only covers streams the
					// lineup picked up without a reference.
					if !sh.replay {
						c.dispatchSettle(sh,
							catalog.Settlement{Op: catalog.SettleAdopt, ID: cl.id, Tenant: ev.Tenant,
								Full: t.Instance().StreamCostSum(cl.local)},
							deferred, -1)
					}
					held[cl.id] = true
				}
			}
		}
	}
	if churned && c.opts.ResolveEvery > 0 {
		sh.churn[ev.Tenant]++
		if sh.churn[ev.Tenant]%c.opts.ResolveEvery == 0 {
			_, _ = c.resolve(sh, ev.Tenant, false, true)
		}
	}
	return res
}

// applyEventBatch applies one single-tenant event sequence in
// submission order on the worker goroutine. Each contiguous run of
// arrivals is one batch window for the shard stats (the coalescing a
// remote caller gets from the batch endpoint); non-arrival events are
// applied between windows exactly as in the FIFO path. Per-event
// results are positional.
//
// Catalog settlements are deferred onto the shard's settlement buffer
// and flushed in one registry round trip before the results are
// delivered — the worker-FIFO settlement order is preserved exactly
// (the buffer is ordered, and the flush completes before the batch
// ack), only the number of registry crossings changes. The flush
// backfills each catalog event's Catalog.Refs/Evicted.
func (c *Cluster) applyEventBatch(sh *shard, evs []Event) []EventResult {
	out := make([]EventResult, len(evs))
	for i := 0; i < len(evs); {
		sh.stats.Events++
		ev := evs[i]
		if ev.Type != EventStreamArrival {
			res := c.applyEvent(sh, ev, false, true, i)
			out[i] = EventResult{Type: ev.Type, Depart: res.depart, Churn: res.churn,
				Resolve: res.resolve, Err: res.err}
			i++
			continue
		}
		j := i + 1
		for j < len(evs) && evs[j].Type == EventStreamArrival {
			sh.stats.Events++
			j++
		}
		sh.stats.Batches++
		if j-i > sh.stats.MaxBatch {
			sh.stats.MaxBatch = j - i
		}
		for k := i; k < j; k++ {
			out[k] = EventResult{Type: EventStreamArrival, Offer: c.applyArrival(sh, evs[k], true, true, k).offer}
		}
		i = j
	}
	c.flushSettles(sh, out)
	return out
}

// resolve runs one offline re-solve on the worker goroutine. A
// background resolve (churn-triggered or fire-and-forget replay) has
// no caller to inform, so its error is latched as the shard's first
// error and surfaced by Snapshot and Close; a request/response resolve
// returns the error to its caller only — a bad per-request resolve
// must not poison fleet observability.
func (c *Cluster) resolve(sh *shard, tenant int, install, background bool) (ResolveResult, error) {
	sh.stats.Resolves++
	out, err := c.tenants[tenant].Resolve(c.opts.SolveOptions, install)
	if err != nil {
		err = fmt.Errorf("cluster: tenant %d: %w", tenant, err)
		if background && sh.err == nil {
			sh.err = err
		}
		return ResolveResult{}, err
	}
	return ResolveResult{
		Installed:    out.Installed,
		OnlineValue:  out.OnlineValue,
		OfflineValue: out.OfflineValue,
	}, nil
}

// reportShard snapshots the shard's stats and its tenants (called on
// the worker goroutine only). The snapshot map comes from the barrier
// pool; Snapshot drains, clears, and recycles it after the barrier.
func (c *Cluster) reportShard(sh *shard) shardReport {
	snaps, _ := c.snapMapPool.Get().(map[int]headend.TenantSnapshot)
	if snaps == nil {
		snaps = make(map[int]headend.TenantSnapshot, len(sh.tenants))
	}
	rep := shardReport{stats: sh.stats, snaps: snaps, err: sh.err}
	for _, i := range sh.tenants {
		rep.snaps[i] = c.tenants[i].Snapshot()
	}
	return rep
}
