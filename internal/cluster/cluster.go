// Package cluster operates many neighborhood head-ends as one fleet:
// the sharded, multi-tenant serving layer the paper's Fig. 1 implies
// but never builds. Each tenant is one independent head-end instance
// (an admission policy plus its running assignment, wrapped by
// headend.Tenant); the cluster pins every tenant to exactly one shard,
// and each shard runs a single worker goroutine that owns its tenants
// outright — no locks, no shared mutable state between shards.
//
// # Shard / batch / determinism contract
//
// Events (stream arrivals, stream departures, gateway leaves/joins,
// offline re-solves) are routed to the owning shard over a buffered
// channel and processed strictly in submission order per shard. Stream
// arrivals are coalesced: a shard accumulates up to Options.BatchSize
// consecutive arrivals, then admits them grouped by tenant (groups in
// first-appearance order, per-tenant arrival order preserved), so each
// tenant's policy state is activated once per batch instead of once
// per event. Tenants are independent, so grouping never changes
// results. A partial batch is flushed by the next non-arrival event, a
// snapshot barrier, or shutdown — never by a timer — which keeps flush
// boundaries (and the per-shard batch stats) a pure function of the
// submission sequence. The cost of that determinism is that Submit is
// asynchronous: a trailing partial batch stays queued until the next
// event or barrier, and callers observe applied state via Snapshot,
// which is exactly such a barrier.
//
// Because tenant-to-shard placement is static and every per-tenant
// mutation happens on its shard's worker in submission order, a fixed
// submission sequence produces bit-identical per-tenant snapshots
// regardless of the shard count, and the fleet report is byte-identical
// across invocations (the reduction in Snapshot walks tenants and
// shards in index order — the same pattern as the band fan-out in
// internal/core). Wall-clock throughput is the only thing sharding
// changes.
//
// Tenants are fully isolated: streams are not shared across shards (a
// stream admitted by tenant 3 costs nothing to tenant 5), which is
// recorded as an open item in ROADMAP.md.
package cluster

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/headend"
	"repro/internal/mmd"
)

// EventType discriminates cluster events.
type EventType int

// Event kinds routed to shard workers.
const (
	// EventStreamArrival offers Event.Stream to the tenant's policy.
	EventStreamArrival EventType = iota + 1
	// EventStreamDeparture removes a carried stream.
	EventStreamDeparture
	// EventUserLeave takes gateway Event.User offline.
	EventUserLeave
	// EventUserJoin brings gateway Event.User back online.
	EventUserJoin
	// EventResolve re-runs the offline pipeline for the tenant and
	// records the value (monitoring; see headend.Tenant.Resolve).
	EventResolve
)

// Event is one unit of work for a tenant.
type Event struct {
	// Tenant is the target tenant index.
	Tenant int
	// Type selects the action.
	Type EventType
	// Stream is the stream index (arrival/departure events).
	Stream int
	// User is the gateway index (leave/join events).
	User int
}

// TenantSnapshot is the per-tenant summary (see headend.TenantSnapshot).
type TenantSnapshot = headend.TenantSnapshot

// TenantConfig describes one tenant of the cluster.
type TenantConfig struct {
	// Instance is the tenant's workload (cable-TV conventions).
	Instance *mmd.Instance
	// Policy is the admission policy; nil builds the guarded online
	// policy (the production-safe default).
	Policy headend.Policy
}

// Options configures a Cluster.
type Options struct {
	// Shards is the number of worker goroutines (default
	// min(GOMAXPROCS, tenants)). Results are independent of Shards.
	Shards int
	// BatchSize is the number of consecutive stream arrivals a shard
	// coalesces before invoking the policy (default 16).
	BatchSize int
	// QueueDepth is the per-shard event channel buffer (default 256).
	QueueDepth int
	// ResolveEvery triggers an offline re-solve of a tenant after every
	// N churn events (departures, leaves, joins) it processes; 0
	// disables churn-triggered re-solves.
	ResolveEvery int
	// SolveOptions configures the re-solve pipeline.
	SolveOptions core.Options
}

func (o Options) withDefaults(tenants int) Options {
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
	}
	if o.Shards > tenants {
		o.Shards = tenants
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 16
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	return o
}

// ShardStats summarizes one shard worker's activity.
type ShardStats struct {
	// Shard is the shard index; Tenants is how many tenants it owns.
	Shard, Tenants int
	// Events counts all processed events; Batches and MaxBatch describe
	// arrival coalescing.
	Events, Batches, MaxBatch int
	// Arrivals..Resolves break Events down by type (Admitted counts
	// arrivals that delivered to at least one user).
	Arrivals, Admitted, Departures, Leaves, Joins, Resolves int
}

// message is the shard channel payload: an event, or a barrier request
// when snap is non-nil.
type message struct {
	ev   Event
	snap chan shardReport
}

type shardReport struct {
	stats ShardStats
	snaps map[int]headend.TenantSnapshot
	err   error
}

type shard struct {
	id      int
	tenants []int
	ch      chan message
	done    chan struct{}

	// Worker-owned state below; read by others only via barrier replies
	// or after done is closed.
	stats ShardStats
	churn map[int]int // tenant -> churn events seen (ResolveEvery)
	err   error
}

// Cluster is a sharded multi-tenant head-end service. Submit, Snapshot,
// and Close are safe for concurrent use; events for the same tenant are
// applied in submission order.
type Cluster struct {
	opts    Options
	tenants []*headend.Tenant
	shardOf []int
	shards  []*shard

	mu     sync.RWMutex
	closed bool
}

// New builds the cluster and starts one worker per shard. Tenant i is
// pinned to shard i mod Shards.
func New(tenants []TenantConfig, opts Options) (*Cluster, error) {
	if len(tenants) == 0 {
		return nil, fmt.Errorf("cluster: need at least one tenant")
	}
	opts = opts.withDefaults(len(tenants))
	c := &Cluster{
		opts:    opts,
		tenants: make([]*headend.Tenant, len(tenants)),
		shardOf: make([]int, len(tenants)),
		shards:  make([]*shard, opts.Shards),
	}
	for i, cfg := range tenants {
		if cfg.Instance == nil {
			return nil, fmt.Errorf("cluster: tenant %d: nil instance", i)
		}
		pol := cfg.Policy
		if pol == nil {
			var err error
			pol, err = headend.NewPolicyByName(cfg.Instance, "online")
			if err != nil {
				return nil, fmt.Errorf("cluster: tenant %d: %w", i, err)
			}
		}
		t, err := headend.NewTenant(cfg.Instance, pol)
		if err != nil {
			return nil, fmt.Errorf("cluster: tenant %d: %w", i, err)
		}
		c.tenants[i] = t
		c.shardOf[i] = i % opts.Shards
	}
	for s := range c.shards {
		sh := &shard{
			id:    s,
			ch:    make(chan message, opts.QueueDepth),
			done:  make(chan struct{}),
			churn: make(map[int]int),
		}
		for i := range c.tenants {
			if c.shardOf[i] == s {
				sh.tenants = append(sh.tenants, i)
			}
		}
		sh.stats.Shard = s
		sh.stats.Tenants = len(sh.tenants)
		c.shards[s] = sh
		go c.worker(sh)
	}
	return c, nil
}

// NumTenants returns the number of tenants.
func (c *Cluster) NumTenants() int { return len(c.tenants) }

// NumShards returns the number of shard workers.
func (c *Cluster) NumShards() int { return len(c.shards) }

// ShardOf returns the shard owning tenant i.
func (c *Cluster) ShardOf(i int) int { return c.shardOf[i] }

// Submit routes one event to its tenant's shard, blocking when the
// shard queue is full. It is safe to call from many goroutines; events
// submitted by one goroutine for one tenant are applied in order.
// Submission is asynchronous — an arrival may sit in a partial batch
// until the next event reaches its shard; call Snapshot to barrier and
// observe all submitted events applied.
func (c *Cluster) Submit(ev Event) error {
	if ev.Tenant < 0 || ev.Tenant >= len(c.tenants) {
		return fmt.Errorf("cluster: tenant %d out of range [0,%d)", ev.Tenant, len(c.tenants))
	}
	switch ev.Type {
	case EventStreamArrival, EventStreamDeparture, EventUserLeave, EventUserJoin, EventResolve:
	default:
		return fmt.Errorf("cluster: unknown event type %d", ev.Type)
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return fmt.Errorf("cluster: closed")
	}
	c.shards[c.shardOf[ev.Tenant]].ch <- message{ev: ev}
	return nil
}

// Snapshot flushes every shard (a barrier: all queued events are
// applied first) and returns the aggregated fleet state. The reduction
// walks tenants and shards in index order, so the snapshot — and
// everything rendered from it — is deterministic for a deterministic
// submission sequence.
func (c *Cluster) Snapshot() (*FleetSnapshot, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return nil, fmt.Errorf("cluster: closed")
	}
	replies := make([]chan shardReport, len(c.shards))
	for s, sh := range c.shards {
		replies[s] = make(chan shardReport, 1)
		sh.ch <- message{snap: replies[s]}
	}
	fs := &FleetSnapshot{
		Shards:      len(c.shards),
		Tenants:     make([]headend.TenantSnapshot, len(c.tenants)),
		ShardStats:  make([]ShardStats, len(c.shards)),
		AllFeasible: true,
	}
	var firstErr error
	snaps := make(map[int]headend.TenantSnapshot, len(c.tenants))
	for s := range c.shards {
		rep := <-replies[s]
		fs.ShardStats[s] = rep.stats
		for i, snap := range rep.snaps {
			snaps[i] = snap
		}
		if rep.err != nil && firstErr == nil {
			firstErr = rep.err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	for i := range c.tenants {
		snap := snaps[i]
		fs.Tenants[i] = snap
		fs.Utility += snap.Utility
		fs.Offered += snap.StreamsOffered
		fs.Admitted += snap.StreamsAdmitted
		fs.Departed += snap.StreamsDeparted
		fs.Leaves += snap.UserLeaves
		fs.Joins += snap.UserJoins
		fs.Resolves += snap.Resolves
		fs.ActiveStreams += snap.ActiveStreams
		fs.Pairs += snap.Pairs
		if !snap.Feasible {
			fs.AllFeasible = false
		}
	}
	return fs, nil
}

// Close drains and stops all shard workers. It is idempotent; Submit
// and Snapshot fail after Close. The first worker error (a failed
// re-solve) is returned.
func (c *Cluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	for _, sh := range c.shards {
		close(sh.ch)
	}
	c.mu.Unlock()
	var firstErr error
	for _, sh := range c.shards {
		<-sh.done
		if sh.err != nil && firstErr == nil {
			firstErr = sh.err
		}
	}
	return firstErr
}

// worker is the shard event loop: FIFO with arrival coalescing.
func (c *Cluster) worker(sh *shard) {
	defer close(sh.done)
	batch := make([]Event, 0, c.opts.BatchSize)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		sh.stats.Batches++
		if len(batch) > sh.stats.MaxBatch {
			sh.stats.MaxBatch = len(batch)
		}
		// Admit grouped by tenant, groups in first-appearance order.
		// Per-tenant arrival order is preserved and tenants are
		// independent, so results match pure FIFO.
		for len(batch) > 0 {
			ti := batch[0].Tenant
			t := c.tenants[ti]
			keep := batch[:0]
			for _, ev := range batch {
				if ev.Tenant != ti {
					keep = append(keep, ev)
					continue
				}
				sh.stats.Arrivals++
				if users := t.OfferStream(ev.Stream); len(users) > 0 {
					sh.stats.Admitted++
				}
			}
			batch = keep
		}
	}
	for msg := range sh.ch {
		if msg.snap != nil {
			flush()
			msg.snap <- c.reportShard(sh)
			continue
		}
		ev := msg.ev
		sh.stats.Events++
		if ev.Type == EventStreamArrival {
			batch = append(batch, ev)
			if len(batch) >= c.opts.BatchSize {
				flush()
			}
			continue
		}
		flush()
		c.applyChurn(sh, ev)
	}
	flush()
}

// applyChurn handles every non-arrival event and the churn-triggered
// re-solve policy.
func (c *Cluster) applyChurn(sh *shard, ev Event) {
	t := c.tenants[ev.Tenant]
	churned := false
	switch ev.Type {
	case EventStreamDeparture:
		sh.stats.Departures++
		t.DepartStream(ev.Stream)
		churned = true
	case EventUserLeave:
		sh.stats.Leaves++
		t.UserLeave(ev.User)
		churned = true
	case EventUserJoin:
		sh.stats.Joins++
		t.UserJoin(ev.User)
		churned = true
	case EventResolve:
		c.resolve(sh, ev.Tenant)
	}
	if churned && c.opts.ResolveEvery > 0 {
		sh.churn[ev.Tenant]++
		if sh.churn[ev.Tenant]%c.opts.ResolveEvery == 0 {
			c.resolve(sh, ev.Tenant)
		}
	}
}

func (c *Cluster) resolve(sh *shard, tenant int) {
	sh.stats.Resolves++
	if _, err := c.tenants[tenant].Resolve(c.opts.SolveOptions); err != nil && sh.err == nil {
		sh.err = fmt.Errorf("cluster: tenant %d: %w", tenant, err)
	}
}

// reportShard snapshots the shard's stats and its tenants (called on
// the worker goroutine only).
func (c *Cluster) reportShard(sh *shard) shardReport {
	rep := shardReport{
		stats: sh.stats,
		snaps: make(map[int]headend.TenantSnapshot, len(sh.tenants)),
		err:   sh.err,
	}
	for _, i := range sh.tenants {
		rep.snaps[i] = c.tenants[i].Snapshot()
	}
	return rep
}
