// Package cluster operates many neighborhood head-ends as one fleet:
// the sharded, multi-tenant serving layer the paper's Fig. 1 implies
// but never builds. Each tenant is one independent head-end instance
// (an admission policy plus its running assignment, wrapped by
// headend.Tenant); the cluster pins every tenant to exactly one shard,
// and each shard runs a single worker goroutine that owns its tenants
// outright — no locks, no shared mutable state between shards.
//
// # Shard / batch / determinism contract
//
// Events (stream arrivals, stream departures, gateway leaves/joins,
// offline re-solves) are routed to the owning shard over a buffered
// channel and processed strictly in submission order per shard. Stream
// arrivals are coalesced: a shard accumulates up to Options.BatchSize
// consecutive arrivals, then admits them grouped by tenant (groups in
// first-appearance order, per-tenant arrival order preserved), so each
// tenant's policy state is activated once per batch instead of once
// per event. Tenants are independent, so grouping never changes
// results. A partial batch is flushed by the next non-arrival event, a
// request/response arrival (one carrying a completion channel — see
// below), a snapshot barrier, or shutdown — never by a timer — which
// keeps flush boundaries (and the per-shard batch stats) a pure
// function of the submission sequence.
//
// # Request/response sessions (serving API v2)
//
// The public surface is typed and per operation: OfferStream,
// DepartStream, UserLeave, UserJoin, and Resolve each route one event
// to the owning shard with a per-event completion channel attached and
// block until the worker replies with a typed result (OfferResult,
// DepartResult, ChurnResult, ResolveResult). So that a blocked caller
// never waits on a trailing partial batch, an arrival carrying a
// completion channel flushes the batch it joins immediately; arrivals
// submitted by the fire-and-forget replay path (RunWorkload) coalesce
// exactly as before. Failures use the sentinel taxonomy in session.go
// (ErrUnknownTenant, ErrQueueFull, ErrClosed, ErrCanceled) and the
// enqueue side honors Options.Backpressure.
//
// Because tenant-to-shard placement is static and every per-tenant
// mutation happens on its shard's worker in submission order, a fixed
// submission sequence produces bit-identical per-tenant snapshots
// regardless of the shard count, and the fleet report is byte-identical
// across invocations (the reduction in Snapshot walks tenants and
// shards in index order — the same pattern as the band fan-out in
// internal/core). Wall-clock throughput is the only thing sharding
// changes.
//
// # Serving hot path
//
// The default tenant policy (guarded online admission) decides each
// candidate with an incremental mmd.LoadLedger in O(measures) rather
// than a full per-candidate feasibility rescan, and the per-tenant
// snapshots taken at barriers ride mmd.Assignment's sorted-slice
// representation (allocation-free Utility/range reads). The ledger path
// is pinned bit-identical to the retained rescan reference by the
// differential tests in this package and internal/headend; the
// serving-path benchmarks are snapshotted by `mmdbench -json` into
// BENCH_serving.json.
//
// Tenants are fully isolated: streams are not shared across shards (a
// stream admitted by tenant 3 costs nothing to tenant 5), which is
// recorded as an open item in ROADMAP.md.
package cluster

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/headend"
	"repro/internal/mmd"
)

// EventType discriminates cluster events.
type EventType int

// Event kinds routed to shard workers.
const (
	// EventStreamArrival offers Event.Stream to the tenant's policy.
	EventStreamArrival EventType = iota + 1
	// EventStreamDeparture removes a carried stream.
	EventStreamDeparture
	// EventUserLeave takes gateway Event.User offline.
	EventUserLeave
	// EventUserJoin brings gateway Event.User back online.
	EventUserJoin
	// EventResolve re-runs the offline pipeline for the tenant:
	// monitoring by default, installing when Event.Install is set (see
	// headend.Tenant.Resolve).
	EventResolve
)

// Event is one unit of work for a tenant. It is the internal routing
// record behind the per-operation session methods and the Workload
// replay schedule; it is no longer the public submission surface.
type Event struct {
	// Tenant is the target tenant index.
	Tenant int
	// Type selects the action.
	Type EventType
	// Stream is the stream index (arrival/departure events).
	Stream int
	// User is the gateway index (leave/join events).
	User int
	// Install asks a resolve event to install the offline assignment
	// (see Cluster.Resolve and headend.Tenant.Resolve).
	Install bool
}

// TenantSnapshot is the per-tenant summary (see headend.TenantSnapshot).
type TenantSnapshot = headend.TenantSnapshot

// TenantConfig describes one tenant of the cluster.
type TenantConfig struct {
	// Instance is the tenant's workload (cable-TV conventions).
	Instance *mmd.Instance
	// Policy is the admission policy; nil builds the guarded online
	// policy (the production-safe default).
	Policy headend.Policy
}

// Options configures a Cluster.
type Options struct {
	// Shards is the number of worker goroutines (default
	// min(GOMAXPROCS, tenants)). Results are independent of Shards.
	Shards int
	// BatchSize is the number of consecutive stream arrivals a shard
	// coalesces before invoking the policy (default 16).
	BatchSize int
	// QueueDepth is the per-shard event channel buffer (default 256).
	QueueDepth int
	// ResolveEvery triggers an offline re-solve of a tenant after every
	// N churn events (departures, leaves, joins) it processes; 0
	// disables churn-triggered re-solves. Churn-triggered re-solves are
	// monitoring only; use Resolve with ResolveOptions.Install to
	// install.
	ResolveEvery int
	// SolveOptions configures the re-solve pipeline.
	SolveOptions core.Options
	// Backpressure selects the enqueue behavior when a shard queue is
	// full: BackpressureBlock (default) or BackpressureReject.
	Backpressure Backpressure
}

func (o Options) withDefaults(tenants int) Options {
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
	}
	if o.Shards > tenants {
		o.Shards = tenants
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 16
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	return o
}

// ShardStats summarizes one shard worker's activity.
type ShardStats struct {
	// Shard is the shard index; Tenants is how many tenants it owns.
	Shard, Tenants int
	// Events counts all processed events; Batches and MaxBatch describe
	// arrival coalescing.
	Events, Batches, MaxBatch int
	// Arrivals..Resolves break Events down by type (Admitted counts
	// arrivals that delivered to at least one user).
	Arrivals, Admitted, Departures, Leaves, Joins, Resolves int
}

// message is the shard channel payload: an event (with an optional
// per-event completion channel), or a barrier request when snap is
// non-nil. ack is always buffered with capacity 1 so the worker never
// blocks delivering a result, even when the caller has abandoned the
// call on context cancellation.
type message struct {
	ev   Event
	ack  chan result
	snap chan shardReport
}

type shardReport struct {
	stats ShardStats
	snaps map[int]headend.TenantSnapshot
	err   error
}

type shard struct {
	id      int
	tenants []int
	ch      chan message
	done    chan struct{}

	// Worker-owned state below; read by others only via barrier replies
	// or after done is closed.
	stats ShardStats
	churn map[int]int // tenant -> churn events seen (ResolveEvery)
	err   error
}

// Cluster is a sharded multi-tenant head-end service. The session
// methods (OfferStream, DepartStream, UserLeave, UserJoin, Resolve),
// Snapshot, and Close are safe for concurrent use; events for the same
// tenant are applied in submission order.
type Cluster struct {
	opts    Options
	tenants []*headend.Tenant
	shardOf []int
	shards  []*shard

	mu     sync.RWMutex
	closed bool
}

// New builds the cluster and starts one worker per shard. Tenant i is
// pinned to shard i mod Shards.
func New(tenants []TenantConfig, opts Options) (*Cluster, error) {
	if len(tenants) == 0 {
		return nil, fmt.Errorf("cluster: need at least one tenant")
	}
	opts = opts.withDefaults(len(tenants))
	c := &Cluster{
		opts:    opts,
		tenants: make([]*headend.Tenant, len(tenants)),
		shardOf: make([]int, len(tenants)),
		shards:  make([]*shard, opts.Shards),
	}
	for i, cfg := range tenants {
		if cfg.Instance == nil {
			return nil, fmt.Errorf("cluster: tenant %d: nil instance", i)
		}
		pol := cfg.Policy
		if pol == nil {
			var err error
			pol, err = headend.NewPolicyByName(cfg.Instance, "online")
			if err != nil {
				return nil, fmt.Errorf("cluster: tenant %d: %w", i, err)
			}
		}
		t, err := headend.NewTenant(cfg.Instance, pol)
		if err != nil {
			return nil, fmt.Errorf("cluster: tenant %d: %w", i, err)
		}
		c.tenants[i] = t
		c.shardOf[i] = i % opts.Shards
	}
	for s := range c.shards {
		sh := &shard{
			id:    s,
			ch:    make(chan message, opts.QueueDepth),
			done:  make(chan struct{}),
			churn: make(map[int]int),
		}
		for i := range c.tenants {
			if c.shardOf[i] == s {
				sh.tenants = append(sh.tenants, i)
			}
		}
		sh.stats.Shard = s
		sh.stats.Tenants = len(sh.tenants)
		c.shards[s] = sh
		go c.worker(sh)
	}
	return c, nil
}

// NumTenants returns the number of tenants.
func (c *Cluster) NumTenants() int { return len(c.tenants) }

// NumShards returns the number of shard workers.
func (c *Cluster) NumShards() int { return len(c.shards) }

// ShardOf returns the shard owning tenant i.
func (c *Cluster) ShardOf(i int) int { return c.shardOf[i] }

// Snapshot flushes every shard (a barrier: all queued events are
// applied first) and returns the aggregated fleet state. The reduction
// walks tenants and shards in index order, so the snapshot — and
// everything rendered from it — is deterministic for a deterministic
// submission sequence.
func (c *Cluster) Snapshot() (*FleetSnapshot, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return nil, ErrClosed
	}
	replies := make([]chan shardReport, len(c.shards))
	for s, sh := range c.shards {
		replies[s] = make(chan shardReport, 1)
		sh.ch <- message{snap: replies[s]}
	}
	fs := &FleetSnapshot{
		Shards:      len(c.shards),
		Tenants:     make([]headend.TenantSnapshot, len(c.tenants)),
		ShardStats:  make([]ShardStats, len(c.shards)),
		AllFeasible: true,
	}
	var firstErr error
	snaps := make(map[int]headend.TenantSnapshot, len(c.tenants))
	for s := range c.shards {
		rep := <-replies[s]
		fs.ShardStats[s] = rep.stats
		for i, snap := range rep.snaps {
			snaps[i] = snap
		}
		if rep.err != nil && firstErr == nil {
			firstErr = rep.err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	for i := range c.tenants {
		snap := snaps[i]
		fs.Tenants[i] = snap
		fs.Utility += snap.Utility
		fs.Offered += snap.StreamsOffered
		fs.Admitted += snap.StreamsAdmitted
		fs.Departed += snap.StreamsDeparted
		fs.Leaves += snap.UserLeaves
		fs.Joins += snap.UserJoins
		fs.Resolves += snap.Resolves
		fs.Installs += snap.Installs
		fs.ActiveStreams += snap.ActiveStreams
		fs.Pairs += snap.Pairs
		if !snap.Feasible {
			fs.AllFeasible = false
		}
	}
	return fs, nil
}

// Close drains and stops all shard workers (queued request/response
// events still receive their results). It is idempotent; the session
// methods and Snapshot fail with ErrClosed after Close. The first
// worker error (a failed re-solve) is returned.
func (c *Cluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	for _, sh := range c.shards {
		close(sh.ch)
	}
	c.mu.Unlock()
	var firstErr error
	for _, sh := range c.shards {
		<-sh.done
		if sh.err != nil && firstErr == nil {
			firstErr = sh.err
		}
	}
	return firstErr
}

// worker is the shard event loop: FIFO with arrival coalescing and
// per-event result delivery.
func (c *Cluster) worker(sh *shard) {
	defer close(sh.done)
	batch := make([]message, 0, c.opts.BatchSize)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		sh.stats.Batches++
		if len(batch) > sh.stats.MaxBatch {
			sh.stats.MaxBatch = len(batch)
		}
		// Admit grouped by tenant, groups in first-appearance order.
		// Per-tenant arrival order is preserved and tenants are
		// independent, so results match pure FIFO.
		for len(batch) > 0 {
			ti := batch[0].ev.Tenant
			t := c.tenants[ti]
			in := t.Instance()
			keep := batch[:0]
			for _, msg := range batch {
				if msg.ev.Tenant != ti {
					keep = append(keep, msg)
					continue
				}
				sh.stats.Arrivals++
				users := t.OfferStream(msg.ev.Stream)
				if len(users) > 0 {
					sh.stats.Admitted++
				}
				if msg.ack != nil {
					res := OfferResult{Accepted: len(users) > 0, Subscribers: users}
					for _, u := range users {
						res.Utility += in.Users[u].Utility[msg.ev.Stream]
					}
					msg.ack <- result{offer: res}
				}
			}
			batch = keep
		}
	}
	for msg := range sh.ch {
		if msg.snap != nil {
			flush()
			msg.snap <- c.reportShard(sh)
			continue
		}
		sh.stats.Events++
		if msg.ev.Type == EventStreamArrival {
			batch = append(batch, msg)
			// A request/response arrival is its own flush boundary: the
			// caller is blocked on its completion channel, and waiting
			// for the batch to fill could strand it forever. Ack-ness
			// is part of the submission sequence, so flush boundaries
			// stay a pure function of it.
			if len(batch) >= c.opts.BatchSize || msg.ack != nil {
				flush()
			}
			continue
		}
		flush()
		c.applyChurn(sh, msg)
	}
	flush()
}

// applyChurn handles every non-arrival event and the churn-triggered
// re-solve policy, delivering the typed result when the event carries a
// completion channel.
func (c *Cluster) applyChurn(sh *shard, msg message) {
	ev := msg.ev
	t := c.tenants[ev.Tenant]
	var res result
	churned := false
	switch ev.Type {
	case EventStreamDeparture:
		sh.stats.Departures++
		carried := t.Carries(ev.Stream)
		users := t.DepartStream(ev.Stream)
		res.depart = DepartResult{Removed: carried, Subscribers: users}
		churned = true
	case EventUserLeave:
		sh.stats.Leaves++
		wasOnline := ev.User >= 0 && ev.User < t.Instance().NumUsers() && !t.Away(ev.User)
		streams := t.UserLeave(ev.User)
		res.churn = ChurnResult{Changed: wasOnline, Streams: streams}
		churned = true
	case EventUserJoin:
		sh.stats.Joins++
		wasAway := t.Away(ev.User)
		t.UserJoin(ev.User)
		res.churn = ChurnResult{Changed: wasAway}
		churned = true
	case EventResolve:
		res.resolve, res.err = c.resolve(sh, ev.Tenant, ev.Install, msg.ack == nil)
	}
	if churned && c.opts.ResolveEvery > 0 {
		sh.churn[ev.Tenant]++
		if sh.churn[ev.Tenant]%c.opts.ResolveEvery == 0 {
			_, _ = c.resolve(sh, ev.Tenant, false, true)
		}
	}
	if msg.ack != nil {
		msg.ack <- res
	}
}

// resolve runs one offline re-solve on the worker goroutine. A
// background resolve (churn-triggered or fire-and-forget replay) has
// no caller to inform, so its error is latched as the shard's first
// error and surfaced by Snapshot and Close; a request/response resolve
// returns the error to its caller only — a bad per-request resolve
// must not poison fleet observability.
func (c *Cluster) resolve(sh *shard, tenant int, install, background bool) (ResolveResult, error) {
	sh.stats.Resolves++
	out, err := c.tenants[tenant].Resolve(c.opts.SolveOptions, install)
	if err != nil {
		err = fmt.Errorf("cluster: tenant %d: %w", tenant, err)
		if background && sh.err == nil {
			sh.err = err
		}
		return ResolveResult{}, err
	}
	return ResolveResult{
		Installed:    out.Installed,
		OnlineValue:  out.OnlineValue,
		OfflineValue: out.OfflineValue,
	}, nil
}

// reportShard snapshots the shard's stats and its tenants (called on
// the worker goroutine only).
func (c *Cluster) reportShard(sh *shard) shardReport {
	rep := shardReport{
		stats: sh.stats,
		snaps: make(map[int]headend.TenantSnapshot, len(sh.tenants)),
		err:   sh.err,
	}
	for _, i := range sh.tenants {
		rep.snaps[i] = c.tenants[i].Snapshot()
	}
	return rep
}
