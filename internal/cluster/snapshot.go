package cluster

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
)

// FleetSnapshot is the aggregated state of the whole cluster at a
// barrier: per-tenant snapshots in tenant order, per-shard stats in
// shard order, and fleet-wide sums. For a deterministic submission
// sequence the per-tenant section is bit-identical regardless of the
// shard count, and the full snapshot is byte-identical across
// invocations with the same options.
type FleetSnapshot struct {
	// Shards is the shard count the snapshot was taken with.
	Shards int
	// Tenants holds one snapshot per tenant, in tenant index order.
	Tenants []TenantSnapshot
	// ShardStats holds one entry per shard, in shard index order.
	ShardStats []ShardStats
	// Fleet-wide sums over Tenants.
	Utility                                    float64
	Offered, Admitted, Departed, Leaves, Joins int
	Resolves, Installs, ActiveStreams, Pairs   int
	// AllFeasible is true when every tenant's assignment satisfies its
	// budgets and capacities.
	AllFeasible bool
	// Catalog is the fleet catalog state (per-stream reference counts,
	// origin-cost accounting) — nil when no catalog is configured, so
	// pre-catalog snapshots are unchanged.
	Catalog *catalog.Snapshot
}

// Render returns the snapshot as deterministic text tables (fleet
// summary, per-shard, per-tenant). Two runs with the same seed and
// options produce byte-identical output.
func (fs *FleetSnapshot) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "fleet: %d tenant%s on %d shard%s\n",
		len(fs.Tenants), plural(len(fs.Tenants)), fs.Shards, plural(fs.Shards))
	fmt.Fprintf(&sb, "  utility   %.3f\n", fs.Utility)
	fmt.Fprintf(&sb, "  offered   %d\n", fs.Offered)
	fmt.Fprintf(&sb, "  admitted  %d\n", fs.Admitted)
	fmt.Fprintf(&sb, "  departed  %d\n", fs.Departed)
	fmt.Fprintf(&sb, "  churn     %d leaves, %d joins, %d resolves (%d installed)\n",
		fs.Leaves, fs.Joins, fs.Resolves, fs.Installs)
	fmt.Fprintf(&sb, "  carrying  %d streams over %d (user,stream) pairs\n", fs.ActiveStreams, fs.Pairs)
	fmt.Fprintf(&sb, "  feasible  %v\n", fs.AllFeasible)

	sb.WriteString("\nshard  tenants  events  batches  maxbatch  arrivals  admitted  departs  leaves  joins  resolves\n")
	for _, st := range fs.ShardStats {
		fmt.Fprintf(&sb, "%5d  %7d  %6d  %7d  %8d  %8d  %8d  %7d  %6d  %5d  %8d\n",
			st.Shard, st.Tenants, st.Events, st.Batches, st.MaxBatch,
			st.Arrivals, st.Admitted, st.Departures, st.Leaves, st.Joins, st.Resolves)
	}

	sb.WriteString("\n" + fs.RenderTenants())
	if fs.Catalog != nil {
		sb.WriteString("\n" + fs.Catalog.Render())
	}
	return sb.String()
}

// plural returns "s" unless n is 1.
func plural(n int) string {
	if n == 1 {
		return ""
	}
	return "s"
}

// RenderTenants returns only the per-tenant table. Unlike the shard
// table it is invariant under the shard count, so it is the right
// artifact for cross-configuration determinism checks.
func (fs *FleetSnapshot) RenderTenants() string {
	var sb strings.Builder
	sb.WriteString("tenant  policy                   utility  offered  admitted  active  pairs  feasible\n")
	for i, ts := range fs.Tenants {
		fmt.Fprintf(&sb, "%6d  %-22s  %7.3f  %7d  %8d  %6d  %5d  %v\n",
			i, ts.Policy, ts.Utility, ts.StreamsOffered, ts.StreamsAdmitted,
			ts.ActiveStreams, ts.Pairs, ts.Feasible)
	}
	return sb.String()
}
