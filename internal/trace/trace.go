// Package trace records and replays head-end event traces as JSON
// Lines: stream arrivals and departures, admission decisions, and user
// churn. Traces make simulation runs auditable and let experiments
// replay the exact same arrival sequence against different policies.
//
// Since the durability subsystem landed, the wire format is not
// trace's own: an Event is a view over internal/wal's Record — the one
// JSON-Lines event codec in the repository — and Writer/ReadAll
// delegate to wal.AppendRecord/wal.DecodeRecord. Existing trace files
// parse unchanged (the field set and spellings are identical); new
// files simply omit zero-valued fields the way the WAL does. Validate
// keeps trace's stricter semantics: monotone timestamps and the
// classic five-event vocabulary only.
package trace

import (
	"bufio"
	"bytes"
	"fmt"
	"io"

	"repro/internal/wal"
)

// EventType classifies a trace event.
type EventType string

// Event types emitted by the head-end scenario. The spellings are
// shared with the WAL record vocabulary (wal.TypeStreamArrival etc.).
const (
	// EventStreamArrival marks a stream becoming available.
	EventStreamArrival EventType = wal.TypeStreamArrival
	// EventStreamDeparture marks a stream leaving the catalog.
	EventStreamDeparture EventType = wal.TypeStreamDeparture
	// EventDecision records an admission decision (Users empty when the
	// stream was rejected).
	EventDecision EventType = wal.TypeDecision
	// EventUserJoin and EventUserLeave record gateway churn.
	EventUserJoin  EventType = wal.TypeUserJoin
	EventUserLeave EventType = wal.TypeUserLeave
)

// Event is one trace record: the simulation-facing view of a
// wal.Record (the shared codec's trace-plane fields).
type Event struct {
	// Time is the virtual time in seconds.
	Time float64 `json:"time"`
	// Type classifies the event.
	Type EventType `json:"type"`
	// Stream is the stream index (-1 when not applicable).
	Stream int `json:"stream"`
	// Users lists affected user indices (assigned users for decisions).
	Users []int `json:"users,omitempty"`
	// Value carries an event-specific number (utility for decisions).
	Value float64 `json:"value,omitempty"`
	// Note is free-form context.
	Note string `json:"note,omitempty"`
}

// record converts to the shared codec.
func (e Event) record() wal.Record {
	return wal.Record{
		Type:   string(e.Type),
		Time:   e.Time,
		Stream: e.Stream,
		Users:  e.Users,
		Value:  e.Value,
		Note:   e.Note,
	}
}

// fromRecord converts from the shared codec.
func fromRecord(r wal.Record) Event {
	return Event{
		Time:   r.Time,
		Type:   EventType(r.Type),
		Stream: r.Stream,
		Users:  r.Users,
		Value:  r.Value,
		Note:   r.Note,
	}
}

// Writer appends events as JSON Lines (the shared WAL codec).
type Writer struct {
	w   *bufio.Writer
	buf []byte
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Append writes one event.
func (t *Writer) Append(e Event) error {
	rec := e.record()
	t.buf = wal.AppendRecord(t.buf[:0], &rec)
	if _, err := t.w.Write(t.buf); err != nil {
		return fmt.Errorf("trace: append: %w", err)
	}
	return nil
}

// Flush flushes buffered events to the underlying writer.
func (t *Writer) Flush() error {
	if err := t.w.Flush(); err != nil {
		return fmt.Errorf("trace: flush: %w", err)
	}
	return nil
}

// ReadAll parses every event from r.
func ReadAll(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		rec, err := wal.DecodeRecord(line)
		if err != nil {
			return nil, fmt.Errorf("trace: read event %d: %w", len(out), err)
		}
		out = append(out, fromRecord(rec))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read event %d: %w", len(out), err)
	}
	return out, nil
}

// Validate checks monotone timestamps and known event types.
func Validate(events []Event) error {
	last := -1.0
	for i, e := range events {
		if e.Time < last {
			return fmt.Errorf("trace: event %d: time %v before %v", i, e.Time, last)
		}
		last = e.Time
		switch e.Type {
		case EventStreamArrival, EventStreamDeparture, EventDecision, EventUserJoin, EventUserLeave:
		default:
			return fmt.Errorf("trace: event %d: unknown type %q", i, e.Type)
		}
	}
	return nil
}
