// Package trace records and replays head-end event traces as JSON Lines:
// stream arrivals and departures, admission decisions, and user churn.
// Traces make simulation runs auditable and let experiments replay the
// exact same arrival sequence against different policies.
package trace

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// EventType classifies a trace event.
type EventType string

// Event types emitted by the head-end scenario.
const (
	// EventStreamArrival marks a stream becoming available.
	EventStreamArrival EventType = "stream_arrival"
	// EventStreamDeparture marks a stream leaving the catalog.
	EventStreamDeparture EventType = "stream_departure"
	// EventDecision records an admission decision (Users empty when the
	// stream was rejected).
	EventDecision EventType = "decision"
	// EventUserJoin and EventUserLeave record gateway churn.
	EventUserJoin  EventType = "user_join"
	EventUserLeave EventType = "user_leave"
)

// Event is one trace record.
type Event struct {
	// Time is the virtual time in seconds.
	Time float64 `json:"time"`
	// Type classifies the event.
	Type EventType `json:"type"`
	// Stream is the stream index (-1 when not applicable).
	Stream int `json:"stream"`
	// Users lists affected user indices (assigned users for decisions).
	Users []int `json:"users,omitempty"`
	// Value carries an event-specific number (utility for decisions).
	Value float64 `json:"value,omitempty"`
	// Note is free-form context.
	Note string `json:"note,omitempty"`
}

// Writer appends events as JSON Lines.
type Writer struct {
	w   *bufio.Writer
	enc *json.Encoder
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{w: bw, enc: json.NewEncoder(bw)}
}

// Append writes one event.
func (t *Writer) Append(e Event) error {
	if err := t.enc.Encode(e); err != nil {
		return fmt.Errorf("trace: append: %w", err)
	}
	return nil
}

// Flush flushes buffered events to the underlying writer.
func (t *Writer) Flush() error {
	if err := t.w.Flush(); err != nil {
		return fmt.Errorf("trace: flush: %w", err)
	}
	return nil
}

// ReadAll parses every event from r.
func ReadAll(r io.Reader) ([]Event, error) {
	var out []Event
	dec := json.NewDecoder(r)
	for {
		var e Event
		if err := dec.Decode(&e); err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return nil, fmt.Errorf("trace: read event %d: %w", len(out), err)
		}
		out = append(out, e)
	}
}

// Validate checks monotone timestamps and known event types.
func Validate(events []Event) error {
	last := -1.0
	for i, e := range events {
		if e.Time < last {
			return fmt.Errorf("trace: event %d: time %v before %v", i, e.Time, last)
		}
		last = e.Time
		switch e.Type {
		case EventStreamArrival, EventStreamDeparture, EventDecision, EventUserJoin, EventUserLeave:
		default:
			return fmt.Errorf("trace: event %d: unknown type %q", i, e.Type)
		}
	}
	return nil
}
