package trace

import (
	"bytes"
	"strings"
	"testing"
)

func sampleEvents() []Event {
	return []Event{
		{Time: 0.5, Type: EventStreamArrival, Stream: 3},
		{Time: 0.5, Type: EventDecision, Stream: 3, Users: []int{0, 2}, Value: 7.5},
		{Time: 1.25, Type: EventUserJoin, Stream: -1, Users: []int{4}},
		{Time: 2, Type: EventStreamDeparture, Stream: 3, Note: "expired"},
		{Time: 3, Type: EventUserLeave, Stream: -1, Users: []int{4}},
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	events := sampleEvents()
	for _, e := range events {
		if err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("read %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i].Time != events[i].Time || got[i].Type != events[i].Type ||
			got[i].Stream != events[i].Stream || got[i].Value != events[i].Value ||
			got[i].Note != events[i].Note || len(got[i].Users) != len(events[i].Users) {
			t.Fatalf("event %d mismatch: %+v vs %+v", i, got[i], events[i])
		}
	}
	if err := Validate(got); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsOutOfOrder(t *testing.T) {
	events := []Event{
		{Time: 2, Type: EventStreamArrival},
		{Time: 1, Type: EventStreamArrival},
	}
	if err := Validate(events); err == nil {
		t.Fatal("Validate accepted out-of-order timestamps")
	}
}

func TestValidateRejectsUnknownType(t *testing.T) {
	if err := Validate([]Event{{Time: 1, Type: "martian"}}); err == nil {
		t.Fatal("Validate accepted unknown event type")
	}
}

func TestReadAllRejectsGarbage(t *testing.T) {
	if _, err := ReadAll(strings.NewReader("{broken\n")); err == nil {
		t.Fatal("ReadAll accepted malformed JSONL")
	}
}

func TestReadAllEmpty(t *testing.T) {
	events, err := ReadAll(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Fatalf("got %d events from empty input", len(events))
	}
}
