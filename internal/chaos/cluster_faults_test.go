// Cluster-level fault drills live in an external test package: chaos
// itself must stay importable from wal and cluster test code, so it
// never imports them — but its faults are only meaningful threaded
// under a real fleet, which is what these tests do.
package chaos_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/catalog"
	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/generator"
	"repro/internal/wal"
)

func faultFleet(t *testing.T, shards int, fs wal.FS) (*cluster.Cluster, string) {
	t.Helper()
	const tenants, channels = 4, 8
	cfgs := make([]cluster.TenantConfig, tenants)
	for i := range cfgs {
		in, err := generator.CableTV{Channels: channels, Gateways: 3, Seed: 900 + int64(i), EgressFraction: 0.25}.Generate()
		if err != nil {
			t.Fatal(err)
		}
		cfgs[i] = cluster.TenantConfig{Instance: in}
	}
	dir := t.TempDir()
	c, err := cluster.New(cfgs, cluster.Options{
		Shards: shards, BatchSize: 4,
		Catalog: &cluster.CatalogOptions{
			Streams: catalog.IdentityBindings(tenants, channels, func(s int) catalog.ID {
				return catalog.ID(fmt.Sprintf("ch-%03d", s))
			}),
			CostModel: catalog.Isolated{},
		},
		WAL: &cluster.WALOptions{Dir: dir, Sync: wal.SyncBatch, FS: fs},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, dir
}

// TestLatchedFsyncFailsFast pins the appender's latched-error contract
// end to end: after one injected fsync failure under group commit, the
// in-flight submission is refused with ErrNotDurable (no ack rides past
// a failed sync), every subsequent submission fails fast, and recovery
// from the abandoned log renders bit-identical to a control fleet that
// applied only what the doomed fleet acked — give or take the one
// in-flight event whose bytes reached the file before its sync lied.
func TestLatchedFsyncFailsFast(t *testing.T) {
	// FailSyncAt counts from file open, and the open-time preallocation
	// syncs once — so 8 means the 7th commit-path sync fails.
	const failAt = 8
	doomed, dir := faultFleet(t, 1,
		chaos.NewFS(nil, chaos.FileFault{Match: "-s0.", FailSyncAt: failAt}))

	ctx := context.Background()
	acked := 0
	var firstErr error
	for i := 0; i < 256; i++ {
		_, err := doomed.OfferStream(ctx, i%4, i%8)
		if err != nil {
			firstErr = err
			break
		}
		acked++
	}
	if firstErr == nil {
		t.Fatalf("fsync fault never fired over 256 events")
	}
	if !errors.Is(firstErr, cluster.ErrNotDurable) {
		t.Fatalf("first failure = %v, want ErrNotDurable", firstErr)
	}

	// Fail fast: the latch must refuse everything after the first
	// failure — an ack here would be a durability lie.
	for i := 0; i < 8; i++ {
		if _, err := doomed.OfferStream(ctx, i%4, i%8); err == nil {
			t.Fatalf("submission %d after latched fsync error was acked", i)
		} else if !errors.Is(err, cluster.ErrNotDurable) {
			t.Fatalf("post-latch failure = %v, want ErrNotDurable", err)
		}
	}
	// Abandoned: the latched fleet has no clean shutdown story.

	// Control applies exactly the acked prefix on a clean fleet.
	control, _ := faultFleet(t, 2, nil)
	for i := 0; i < acked; i++ {
		if _, err := control.OfferStream(ctx, i%4, i%8); err != nil {
			t.Fatal(err)
		}
	}
	wantK := renderAll(t, control)
	if _, err := control.OfferStream(ctx, acked%4, acked%8); err != nil {
		t.Fatal(err)
	}
	wantK1 := renderAll(t, control)
	if err := control.Close(); err != nil {
		t.Fatal(err)
	}

	recovered, rep, err := cluster.Recover(tenantsLike(t), cluster.Options{
		Shards: 2, BatchSize: 4,
		Catalog: &cluster.CatalogOptions{
			Streams: catalog.IdentityBindings(4, 8, func(s int) catalog.ID {
				return catalog.ID(fmt.Sprintf("ch-%03d", s))
			}),
			CostModel: catalog.Isolated{},
		},
		WAL: &cluster.WALOptions{Dir: dir, Sync: wal.SyncBatch}, // clean FS: recovery must not re-fault
	})
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if rep.Events < acked {
		t.Fatalf("recovery replayed %d events, acked %d — an acked event is missing", rep.Events, acked)
	}
	got := renderAll(t, recovered)
	if got != wantK && got != wantK1 {
		t.Fatalf("recovered state matches neither the acked prefix nor prefix+1:\n%s", got)
	}
}

func tenantsLike(t *testing.T) []cluster.TenantConfig {
	t.Helper()
	cfgs := make([]cluster.TenantConfig, 4)
	for i := range cfgs {
		in, err := generator.CableTV{Channels: 8, Gateways: 3, Seed: 900 + int64(i), EgressFraction: 0.25}.Generate()
		if err != nil {
			t.Fatal(err)
		}
		cfgs[i] = cluster.TenantConfig{Instance: in}
	}
	return cfgs
}

func renderAll(t *testing.T, c *cluster.Cluster) string {
	t.Helper()
	fs, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	out := fs.RenderTenants()
	if fs.Catalog != nil {
		out += fs.Catalog.Render()
	}
	return out
}

// TestTornTailTruncatedOnRecovery drives a chaos torn-tail through the
// full cluster recovery path (the wal-level test covers the reader; this
// pins that a fleet still comes back from a torn final record). The
// fault models lying hardware: every ack succeeds, but no byte past the
// tear offset reaches the platter.
func TestTornTailTruncatedOnRecovery(t *testing.T) {
	doomed, dir := faultFleet(t, 1,
		chaos.NewFS(nil, chaos.FileFault{Match: "-s0.", TornTailAt: 1501}))
	ctx := context.Background()
	for i := 0; i < 32; i++ {
		if _, err := doomed.OfferStream(ctx, i%4, i%8); err != nil {
			t.Fatal(err)
		}
	}
	// Abandon mid-flight: the swallowed tail models the crash.

	recovered, rep, err := cluster.Recover(tenantsLike(t), cluster.Options{
		Shards: 4, BatchSize: 4,
		Catalog: &cluster.CatalogOptions{
			Streams: catalog.IdentityBindings(4, 8, func(s int) catalog.ID {
				return catalog.ID(fmt.Sprintf("ch-%03d", s))
			}),
			CostModel: catalog.Isolated{},
		},
		WAL: &cluster.WALOptions{Dir: dir, Sync: wal.SyncBatch},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if len(rep.TruncatedSegments) == 0 {
		t.Fatalf("torn tail was not detected: %+v", rep)
	}
	if rep.Events == 0 {
		t.Fatalf("recovery lost the whole log to one torn record")
	}
	if rep.Events >= 32 {
		t.Fatalf("replayed %d events past a tail torn at byte 1501 — the tear swallowed nothing", rep.Events)
	}
}
