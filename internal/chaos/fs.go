package chaos

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/wal"
)

// FileFault scripts disk faults onto the segment files a wal.Log opens
// through FS. Triggers are operation counts or byte offsets (1-based;
// 0 disables), so a fault schedule is deterministic for a given append
// pattern. The first fault whose Match hits a segment path is applied
// to that file; each opened file runs its own counters.
type FileFault struct {
	// Match selects files by path substring (e.g. a writer name like
	// "s0", or "catalog"). Empty matches every segment.
	Match string
	// FailSyncAt fails the Nth sync (Datasync or Sync) on the file
	// with an error wrapping ErrInjected, and latches: every later
	// sync fails too. This is the disk that "went read-only" — the
	// appender must latch its own error and never ack past it. The
	// count includes the preallocation sync the appender pays at
	// segment open, so FailSyncAt: 1 fails the open itself and
	// FailSyncAt: 2 fails the first group commit.
	FailSyncAt int
	// TornTailAt tears the append stream at a byte offset: the write
	// that crosses it persists only the bytes up to the offset, and
	// every byte after — that write's remainder and all later writes —
	// is silently dropped while still reporting success. Abandoning
	// the log then models a crash whose tail never reached the platter:
	// recovery must classify the torn line and truncate it. (Syncs
	// keep "succeeding": this fault models lying hardware, so tests
	// using it assert recovery behavior, not ack durability.)
	// Preallocation zero-fills go through WriteAt and are never torn.
	TornTailAt int64
	// ShortWriteAt makes the Nth Write persist only its first half and
	// return an error wrapping ErrInjected — a kernel-level short
	// write. The appender latches; recovery sees a torn tail.
	ShortWriteAt int
}

// NewFS wraps inner (nil = the real filesystem) so segment files it
// opens carry the scripted faults. Directory scans, manifests, and
// recovery reads are untouched — faults live on the append path only.
func NewFS(inner wal.FS, faults ...FileFault) wal.FS {
	if inner == nil {
		inner = wal.OSFS{}
	}
	return &faultFS{inner: inner, faults: faults}
}

type faultFS struct {
	inner  wal.FS
	faults []FileFault
}

func (fs *faultFS) OpenSegment(path string) (wal.File, error) {
	f, err := fs.inner.OpenSegment(path)
	if err != nil {
		return nil, err
	}
	for _, fault := range fs.faults {
		if strings.Contains(path, fault.Match) {
			return &file{File: f, fault: fault}, nil
		}
	}
	return f, nil
}

// file applies one FileFault to one opened segment. The mutex mirrors
// the appender's usage (commit goroutines sync while the worker
// appends) — counters must not race.
type file struct {
	wal.File
	fault FileFault

	mu       sync.Mutex
	writes   int
	syncs    int
	appended int64 // data bytes offered to Write so far
	torn     bool  // TornTailAt crossed: swallow every later write
	syncErr  error // latched FailSyncAt error
}

func (f *file) Write(p []byte) (int, error) {
	f.mu.Lock()
	f.writes++
	short := f.fault.ShortWriteAt > 0 && f.writes == f.fault.ShortWriteAt
	keep := int64(len(p))
	if short {
		keep = int64(len(p) / 2)
	}
	// The tear dominates every other fault: bytes past TornTailAt never
	// reach the platter, even the surviving half of a short write —
	// otherwise the file would grow real data beyond a swallowed tail,
	// a mid-log hole no crash can produce.
	if f.fault.TornTailAt > 0 {
		if f.torn {
			keep = 0
		} else if f.appended+keep > f.fault.TornTailAt {
			keep = f.fault.TornTailAt - f.appended
			f.torn = true
		}
	}
	f.appended += int64(len(p))
	f.mu.Unlock()
	if keep > 0 {
		if _, err := f.File.Write(p[:keep]); err != nil {
			return 0, err
		}
	}
	if short {
		return int(keep), fmt.Errorf("chaos: short write (%d of %d bytes): %w", keep, len(p), ErrInjected)
	}
	return len(p), nil // anything past keep is swallowed: reported durable, never written
}

func (f *file) syncFault() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.syncErr != nil {
		return f.syncErr
	}
	f.syncs++
	if f.fault.FailSyncAt > 0 && f.syncs >= f.fault.FailSyncAt {
		f.syncErr = fmt.Errorf("chaos: fsync fault (sync %d): %w", f.syncs, ErrInjected)
		return f.syncErr
	}
	return nil
}

func (f *file) Datasync() error {
	if err := f.syncFault(); err != nil {
		return err
	}
	return f.File.Datasync()
}

func (f *file) Sync() error {
	if err := f.syncFault(); err != nil {
		return err
	}
	return f.File.Sync()
}
