package chaos

import "time"

// Burst is one step of a cluster-layer storm schedule: a pulse of
// concurrent submitters pushed at a deliberately undersized shard
// queue, optionally with the streaming consumer stalled so the
// in-flight window fills too. The driver (experiment E15) owns what a
// "submitter" is; chaos owns the numbers, so every run of a seed
// replays the same storm.
type Burst struct {
	// Submitters is how many goroutines submit concurrently.
	Submitters int
	// EventsPer is how many events each submitter pushes.
	EventsPer int
	// StallConsumer stalls the stream consumer for the burst's
	// duration: nothing is Recv'd until every submit has returned, so
	// the in-flight window — not just the shard queue — takes the
	// pressure.
	StallConsumer bool
}

// PlanStorm derives a seeded schedule of n bursts. Submitter counts,
// burst sizes, and stall flags are drawn deterministically from the
// seed.
func PlanStorm(seed int64, n int) []Burst {
	r := rng(seed)
	out := make([]Burst, n)
	for i := range out {
		out[i] = Burst{
			Submitters:    2 + r.Intn(4),  // 2..5
			EventsPer:     8 + r.Intn(25), // 8..32
			StallConsumer: r.Intn(3) == 0, // one burst in three
		}
	}
	return out
}

// PlanConnScripts derives n per-connection fault scripts for a
// disconnect storm: most connections are cut after a seeded number of
// reads or writes, some get latency spikes, and every few survive
// untouched so the storm always makes forward progress. Script i
// applies to the i-th connection a WrapListener or Dialer hands out.
func PlanConnScripts(seed int64, n int) []ConnScript {
	r := rng(seed)
	out := make([]ConnScript, n)
	for i := range out {
		if i%4 == 3 {
			continue // every fourth connection survives
		}
		s := ConnScript{}
		switch r.Intn(3) {
		case 0:
			s.CutAfterWrites = 2 + r.Intn(12)
		case 1:
			s.CutAfterReads = 1 + r.Intn(8)
		case 2:
			s.PartialWriteAt = 1 + r.Intn(6)
		}
		if r.Intn(4) == 0 {
			s.StallEvery = 2 + r.Intn(4)
			s.Stall = time.Duration(1+r.Intn(5)) * time.Millisecond
		}
		out[i] = s
	}
	return out
}
