package chaos

import (
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/wal"
)

// pipePair returns two ends of an in-process TCP connection, so cut
// semantics (RST vs FIN) behave like production.
func pipePair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { client.Close(); r.c.Close() })
	return client, r.c
}

func TestConnScriptCutAfterWrites(t *testing.T) {
	client, server := pipePair(t)
	fc := WrapConn(client, ConnScript{CutAfterWrites: 2})
	if _, err := fc.Write([]byte("one\n")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if _, err := fc.Write([]byte("two\n")); err != nil {
		t.Fatalf("write 2 (the cut happens after it completes): %v", err)
	}
	if _, err := fc.Write([]byte("three\n")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write 3 after cut: got %v, want ErrInjected", err)
	}
	// The peer reads the two delivered writes, then an error (RST) or
	// EOF — never a clean third line.
	buf := make([]byte, 64)
	total := 0
	for {
		n, err := server.Read(buf[total:])
		total += n
		if err != nil {
			break
		}
	}
	if got := string(buf[:total]); strings.Contains(got, "three") {
		t.Fatalf("peer saw data written after the cut: %q", got)
	}
}

func TestConnScriptPartialWrite(t *testing.T) {
	client, server := pipePair(t)
	fc := WrapConn(client, ConnScript{PartialWriteAt: 1})
	payload := []byte("0123456789abcdef")
	n, err := fc.Write(payload)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write error: got %v", err)
	}
	if n != len(payload)/2 {
		t.Fatalf("torn write reported %d bytes, want %d", n, len(payload)/2)
	}
	buf := make([]byte, 64)
	total := 0
	for {
		rn, rerr := server.Read(buf[total:])
		total += rn
		if rerr != nil {
			break
		}
	}
	if total > len(payload)/2 {
		t.Fatalf("peer received %d bytes of a torn %d-byte frame", total, len(payload))
	}
}

func TestConnScriptStallDelays(t *testing.T) {
	client, server := pipePair(t)
	fc := WrapConn(client, ConnScript{StallEvery: 1, Stall: 30 * time.Millisecond})
	go func() {
		buf := make([]byte, 16)
		for {
			if _, err := server.Read(buf); err != nil {
				return
			}
		}
	}()
	start := time.Now()
	if _, err := fc.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("stalled write returned in %v, want >= 30ms", d)
	}
}

func TestDialerAppliesPlanPerConnection(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				_, _ = io.Copy(io.Discard, c)
				c.Close()
			}(c)
		}
	}()
	dial := Dialer(func(i int) ConnScript {
		if i == 0 {
			return ConnScript{CutAfterWrites: 1}
		}
		return ConnScript{}
	}, nil)
	c0, err := dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	if _, err := c0.Write([]byte("a")); err != nil {
		t.Fatalf("conn 0 write 1: %v", err)
	}
	if _, err := c0.Write([]byte("b")); !errors.Is(err, ErrInjected) {
		t.Fatalf("conn 0 write 2: got %v, want ErrInjected", err)
	}
	c1, err := dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	for i := 0; i < 4; i++ {
		if _, err := c1.Write([]byte("ok")); err != nil {
			t.Fatalf("conn 1 (no script) write %d: %v", i, err)
		}
	}
}

func TestFSFailSyncLatches(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(wal.Options{
		Dir:  dir,
		Sync: wal.SyncBatch,
		FS:   NewFS(nil, FileFault{Match: "s0", FailSyncAt: 2}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Begin([]string{"s0"}); err != nil {
		t.Fatal(err) // sync 1 is the open-time prealloc sync: must pass
	}
	a := l.Appender("s0")
	if err := a.Append(&wal.Record{Seq: 1, Type: wal.TypeResolve, Tenant: 1}); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); !errors.Is(err, ErrInjected) {
		t.Fatalf("first commit: got %v, want injected fsync fault", err)
	}
	// Latched: later appends and commits fail fast without touching
	// the disk again.
	if err := a.Append(&wal.Record{Seq: 2, Type: wal.TypeResolve, Tenant: 1}); err == nil {
		t.Fatal("append after latched fsync error succeeded")
	}
	if err := a.Commit(); err == nil {
		t.Fatal("commit after latched fsync error succeeded")
	}
}

func TestFSTornTailRecovers(t *testing.T) {
	dir := t.TempDir()
	// Write through a FS that tears the stream at byte 100, abandon,
	// then recover with a clean log handle: the torn line must be
	// classified and truncated, and the surviving records must be an
	// ordered prefix.
	l, err := wal.Open(wal.Options{
		Dir:  dir,
		Sync: wal.SyncNone,
		FS:   NewFS(nil, FileFault{TornTailAt: 100}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Begin([]string{"s0"}); err != nil {
		t.Fatal(err)
	}
	a := l.Appender("s0")
	for i := 1; i <= 20; i++ {
		if err := a.Append(&wal.Record{Seq: uint64(i), Type: wal.TypeResolve, Tenant: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	// Abandon l (crash); recover through the real filesystem.
	l2, err := wal.Open(wal.Options{Dir: dir, Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := l2.ReadAll(true)
	if err != nil {
		t.Fatalf("recovery after torn tail: %v", err)
	}
	if len(rep.Records) == 0 || len(rep.Records) >= 20 {
		t.Fatalf("torn log recovered %d of 20 records, want a proper non-empty prefix", len(rep.Records))
	}
	for i, r := range rep.Records {
		if r.Seq != uint64(i+1) {
			t.Fatalf("recovered record %d has seq %d: not a contiguous prefix", i, r.Seq)
		}
	}
	if len(rep.Truncated) != 1 {
		t.Fatalf("expected exactly one truncated segment, got %v", rep.Truncated)
	}
}

func TestPlansAreDeterministic(t *testing.T) {
	a, b := PlanStorm(42, 8), PlanStorm(42, 8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("PlanStorm(42) burst %d differs across calls: %+v vs %+v", i, a[i], b[i])
		}
	}
	if c := PlanStorm(43, 8); c[0] == a[0] && c[1] == a[1] && c[2] == a[2] && c[3] == a[3] {
		t.Fatal("PlanStorm(43) identical to PlanStorm(42) on first four bursts")
	}
	sa, sb := PlanConnScripts(7, 12), PlanConnScripts(7, 12)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("PlanConnScripts(7) script %d differs across calls", i)
		}
	}
	for i := 3; i < 12; i += 4 {
		if !sa[i].zero() {
			t.Fatalf("script %d should be the surviving connection, got %+v", i, sa[i])
		}
	}
}
