package chaos

import (
	"testing"

	"repro/internal/wal"
)

// FuzzFaultSchedule drives a WAL appender through a fuzz-derived fault
// schedule — latched fsync errors, torn tails, short writes, arbitrary
// flush/commit cadence — abandons the log as a crash, and asserts the
// recovery contract: ReadAll(true) never panics, never errors on a
// single-writer log (every injected fault leaves at worst a legal torn
// tail), and the surviving records are always a contiguous seq prefix
// of what was appended. A second read after truncation must be clean.
func FuzzFaultSchedule(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 50, 3, 2})    // fault-free baseline
	f.Add([]byte{2, 0, 0, 0, 80, 0, 1})    // fsync fails on first commit
	f.Add([]byte{0, 100, 0, 0, 40, 2, 0})  // torn tail at byte 100
	f.Add([]byte{0, 0, 0, 3, 120, 1, 4})   // short write mid-stream
	f.Add([]byte{3, 200, 1, 2, 199, 7, 7}) // everything at once
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 7 {
			return
		}
		fault := FileFault{
			FailSyncAt:   int(data[0] % 4),
			TornTailAt:   int64(data[1])<<3 | int64(data[2]%8),
			ShortWriteAt: int(data[3] % 4),
		}
		n := int(data[4])%200 + 1
		flushEvery := int(data[5] % 8)
		commitEvery := int(data[6] % 8)

		dir := t.TempDir()
		l, err := wal.Open(wal.Options{Dir: dir, Sync: wal.SyncBatch, FS: NewFS(nil, fault)})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if err := l.Begin([]string{"s0"}); err != nil {
			return // FailSyncAt 1 fails the open-time prealloc sync: legal
		}
		a := l.Appender("s0")
		for i := 1; i <= n; i++ {
			_ = a.Append(&wal.Record{Seq: uint64(i), Type: wal.TypeResolve, Tenant: 1, Stream: i})
			if flushEvery > 0 && i%flushEvery == 0 {
				_ = a.Flush()
			}
			if commitEvery > 0 && i%commitEvery == 0 {
				_ = a.Commit()
			}
		}
		_ = a.Flush()
		// Abandon l without Close: the crash. Recover fresh.
		l2, err := wal.Open(wal.Options{Dir: dir, Sync: wal.SyncBatch})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		rep, err := l2.ReadAll(true)
		if err != nil {
			t.Fatalf("recovery read failed under fault %+v: %v", fault, err)
		}
		if len(rep.Records) > n {
			t.Fatalf("recovered %d records, appended only %d", len(rep.Records), n)
		}
		for i, r := range rep.Records {
			if r.Seq != uint64(i+1) {
				t.Fatalf("recovered record %d has seq %d: not a contiguous prefix (fault %+v)", i, r.Seq, fault)
			}
			if r.Stream != int(r.Seq) {
				t.Fatalf("recovered record seq %d has corrupt payload stream=%d", r.Seq, r.Stream)
			}
		}
		// Truncation is physical: a second recovery read is clean.
		l3, err := wal.Open(wal.Options{Dir: dir, Sync: wal.SyncBatch})
		if err != nil {
			t.Fatalf("second reopen: %v", err)
		}
		rep2, err := l3.ReadAll(true)
		if err != nil {
			t.Fatalf("second recovery read: %v", err)
		}
		if len(rep2.Truncated) != 0 {
			t.Fatalf("second recovery still truncating: %v", rep2.Truncated)
		}
		if len(rep2.Records) != len(rep.Records) {
			t.Fatalf("second recovery read %d records, first read %d", len(rep2.Records), len(rep.Records))
		}
	})
}
