package chaos

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// ConnScript scripts deterministic faults onto one connection. All
// triggers are operation counts (1-based; 0 disables), so a script's
// behavior depends only on the traffic pattern, never on timing.
type ConnScript struct {
	// CutAfterWrites cuts the connection once that many Write calls
	// have completed. The cut is abortive where the transport allows
	// (TCP RST via SO_LINGER 0), so the peer sees a reset promptly
	// instead of a half-open connection.
	CutAfterWrites int
	// CutAfterReads cuts the connection once that many Read calls have
	// completed.
	CutAfterReads int
	// PartialWriteAt makes the Nth Write a torn frame: half the bytes
	// reach the wire, then the connection is cut and the write returns
	// an error wrapping ErrInjected. (A partial write that "succeeds"
	// would violate the io.Writer contract; a torn-then-dead frame is
	// what a mid-write crash actually looks like to the peer.)
	PartialWriteAt int
	// StallEvery sleeps Stall before every Nth Write and Read — a
	// scripted latency spike / stalled peer. The stall is the only
	// time-based fault, and it only delays; it never reorders.
	StallEvery int
	// Stall is the StallEvery delay (default 10ms when StallEvery > 0).
	Stall time.Duration
}

// zero reports whether the script injects nothing.
func (s ConnScript) zero() bool {
	return s.CutAfterWrites == 0 && s.CutAfterReads == 0 && s.PartialWriteAt == 0 && s.StallEvery == 0
}

// WrapConn applies a script to a connection. A zero script returns the
// connection unwrapped.
func WrapConn(c net.Conn, s ConnScript) net.Conn {
	if s.zero() {
		return c
	}
	if s.StallEvery > 0 && s.Stall <= 0 {
		s.Stall = 10 * time.Millisecond
	}
	return &faultConn{Conn: c, script: s}
}

// faultConn is a net.Conn with a ConnScript applied. Counters are
// locked: net/http reads and writes a connection from different
// goroutines.
type faultConn struct {
	net.Conn
	script ConnScript

	mu     sync.Mutex
	writes int
	reads  int
	cut    bool
}

// abort cuts the connection abortively: RST on TCP (so the peer's next
// read fails fast with a reset, not a timeout), plain Close elsewhere.
func (c *faultConn) abort() {
	if tc, ok := c.Conn.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	_ = c.Conn.Close()
}

func (c *faultConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	if c.cut {
		c.mu.Unlock()
		return 0, fmt.Errorf("chaos: connection cut: %w", ErrInjected)
	}
	c.reads++
	n := c.reads
	stall := c.script.StallEvery > 0 && n%c.script.StallEvery == 0
	c.mu.Unlock()
	if stall {
		time.Sleep(c.script.Stall)
	}
	rn, err := c.Conn.Read(p)
	if c.script.CutAfterReads > 0 && n >= c.script.CutAfterReads {
		c.mu.Lock()
		if !c.cut {
			c.cut = true
			c.mu.Unlock()
			c.abort()
		} else {
			c.mu.Unlock()
		}
	}
	return rn, err
}

func (c *faultConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	if c.cut {
		c.mu.Unlock()
		return 0, fmt.Errorf("chaos: connection cut: %w", ErrInjected)
	}
	c.writes++
	n := c.writes
	stall := c.script.StallEvery > 0 && n%c.script.StallEvery == 0
	partial := c.script.PartialWriteAt > 0 && n == c.script.PartialWriteAt
	cutAfter := c.script.CutAfterWrites > 0 && n >= c.script.CutAfterWrites
	if partial || cutAfter {
		c.cut = true
	}
	c.mu.Unlock()
	if stall {
		time.Sleep(c.script.Stall)
	}
	if partial {
		half := p[:len(p)/2]
		if len(half) > 0 {
			_, _ = c.Conn.Write(half)
		}
		c.abort()
		return len(half), fmt.Errorf("chaos: torn write after %d bytes: %w", len(half), ErrInjected)
	}
	wn, err := c.Conn.Write(p)
	if cutAfter {
		c.abort()
	}
	return wn, err
}

func (c *faultConn) Close() error {
	c.mu.Lock()
	c.cut = true
	c.mu.Unlock()
	return c.Conn.Close()
}

// WrapListener scripts every accepted connection: the i-th accept
// (0-based) gets plan(i). A nil plan or zero script passes the
// connection through untouched.
func WrapListener(ln net.Listener, plan func(i int) ConnScript) net.Listener {
	return &faultListener{Listener: ln, plan: plan}
}

type faultListener struct {
	net.Listener
	plan func(i int) ConnScript

	mu sync.Mutex
	n  int
}

func (l *faultListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	i := l.n
	l.n++
	l.mu.Unlock()
	if l.plan == nil {
		return c, nil
	}
	return WrapConn(c, l.plan(i)), nil
}

// Dialer wraps a dial function so the i-th dialed connection (0-based)
// gets plan(i) — the client-side twin of WrapListener, shaped to drop
// into streamclient.DialOptions.Dial. A nil next uses net.Dial.
func Dialer(plan func(i int) ConnScript, next func(network, addr string) (net.Conn, error)) func(network, addr string) (net.Conn, error) {
	if next == nil {
		next = net.Dial
	}
	var mu sync.Mutex
	n := 0
	return func(network, addr string) (net.Conn, error) {
		c, err := next(network, addr)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		i := n
		n++
		mu.Unlock()
		if plan == nil {
			return c, nil
		}
		return WrapConn(c, plan(i)), nil
	}
}
