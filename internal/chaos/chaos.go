// Package chaos is the deterministic fault-injection layer: seeded,
// scripted faults threaded through the serving stack's existing seams
// so robustness tests replay the exact same failure schedule every
// run, under -race, with no sleeps-and-hope.
//
// Three seams, one per layer:
//
//   - Network: ConnScript faults on a net.Conn (scripted disconnects,
//     read/write stalls, partial writes followed by a cut). WrapListener
//     injects them under an httpserve test server; Dialer injects them
//     under a streamclient.
//   - Disk: FileFault faults behind the internal/wal FS seam (latched
//     fsync errors on the Nth sync, short writes, torn tails at chosen
//     byte offsets) so crash-edge tests stop hand-crafting corrupt
//     segment files.
//   - Cluster: PlanStorm / PlanConnScripts derive seeded storm
//     schedules (queue-full bursts, stalled consumers, disconnect
//     storms) that experiment E15 drives against a live fleet. The
//     schedules live here so every consumer replays the same storm;
//     the driving stays in the caller — chaos never imports
//     internal/cluster.
//
// Every fault is triggered by an operation count, never by wall-clock
// time, so a schedule is a pure function of its seed. Injected errors
// wrap ErrInjected so tests can tell scripted faults from real ones.
package chaos

import (
	"errors"
	"math/rand"
)

// ErrInjected is the root of every scripted fault's error chain.
var ErrInjected = errors.New("chaos: injected fault")

// rng returns the deterministic source all seeded plans draw from.
func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
