// Package bounds computes polynomial-time upper bounds on the optimal
// MMD utility. Experiments use them as the OPT reference when instances
// are too large for the exact solver: a measured ratio against an upper
// bound can only overstate (never understate) the true approximation
// ratio, so the paper's guarantees are still falsifiable against them.
package bounds

import (
	"math"
	"sort"

	"repro/internal/mmd"
)

// fractionalKnapsack returns the maximum fractional value of items with
// the given values and weights under the capacity. Zero-weight items are
// taken fully. This is the classical LP bound: sort by density, fill,
// split the last item.
func fractionalKnapsack(values, weights []float64, capacity float64) float64 {
	type item struct{ v, w float64 }
	items := make([]item, 0, len(values))
	total := 0.0
	for i := range values {
		if values[i] <= 0 {
			continue
		}
		if weights[i] <= 0 {
			total += values[i] // free item
			continue
		}
		items = append(items, item{v: values[i], w: weights[i]})
	}
	sort.Slice(items, func(a, b int) bool {
		return items[a].v*items[b].w > items[b].v*items[a].w
	})
	rem := capacity
	for _, it := range items {
		if rem <= 0 {
			break
		}
		if it.w <= rem {
			total += it.v
			rem -= it.w
		} else {
			total += it.v * rem / it.w
			rem = 0
		}
	}
	return total
}

// ServerBound returns min over finite server measures i of the fractional
// knapsack bound with item values w(S) = sum_u w_u(S) and weights c_i(S).
// Any feasible assignment's utility is at most each of these, hence at
// most their minimum. Returns +Inf when no finite budget exists.
func ServerBound(in *mmd.Instance) float64 {
	bound := math.Inf(1)
	values := make([]float64, in.NumStreams())
	for s := range values {
		values[s] = in.StreamUtility(s)
	}
	weights := make([]float64, in.NumStreams())
	for i, b := range in.Budgets {
		if math.IsInf(b, 1) {
			continue
		}
		for s := range weights {
			weights[s] = in.Streams[s].Costs[i]
		}
		if ub := fractionalKnapsack(values, weights, b); ub < bound {
			bound = ub
		}
	}
	return bound
}

// UserBound returns sum over users of the user's own fractional bound:
// min over the user's finite capacity measures of the fractional knapsack
// with values w_u(S) and weights k^u_j(S). A user with no finite capacity
// contributes the sum of all its utilities.
func UserBound(in *mmd.Instance) float64 {
	total := 0.0
	for u := range in.Users {
		usr := &in.Users[u]
		userUB := 0.0
		for _, w := range usr.Utility {
			if w > 0 {
				userUB += w
			}
		}
		for j, capJ := range usr.Capacities {
			if math.IsInf(capJ, 1) {
				continue
			}
			if ub := fractionalKnapsack(usr.Utility, usr.Loads[j], capJ); ub < userUB {
				userUB = ub
			}
		}
		total += userUB
	}
	return total
}

// UpperBound returns the tightest of the available polynomial bounds.
func UpperBound(in *mmd.Instance) float64 {
	ub := in.TotalUtility()
	if sb := ServerBound(in); sb < ub {
		ub = sb
	}
	if ub2 := UserBound(in); ub2 < ub {
		ub = ub2
	}
	return ub
}
