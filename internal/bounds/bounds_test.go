package bounds_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bounds"
	"repro/internal/exact"
	"repro/internal/generator"
	"repro/internal/mmd"
)

// TestUpperBoundDominatesOPT: every bound is >= the exact optimum.
func TestUpperBoundDominatesOPT(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(71))}
	property := func(seed int64) bool {
		in, err := generator.RandomMMD{
			Streams: 7, Users: 3, M: 2, MC: 2, Seed: seed, Skew: 4,
		}.Generate()
		if err != nil {
			return false
		}
		opt, err := exact.Solve(in, exact.Options{})
		if err != nil {
			return false
		}
		const tol = 1e-9
		return bounds.ServerBound(in) >= opt.Value-tol &&
			bounds.UserBound(in) >= opt.Value-tol &&
			bounds.UpperBound(in) >= opt.Value-tol
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestUpperBoundIsMin(t *testing.T) {
	in, err := generator.RandomMMD{Streams: 10, Users: 4, M: 2, MC: 1, Seed: 3}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	ub := bounds.UpperBound(in)
	if ub > bounds.ServerBound(in)+1e-12 || ub > bounds.UserBound(in)+1e-12 || ub > in.TotalUtility()+1e-12 {
		t.Fatalf("UpperBound %v exceeds a component bound", ub)
	}
}

func TestServerBoundInfiniteBudgets(t *testing.T) {
	in := &mmd.Instance{
		Streams: []mmd.Stream{{Name: "a", Costs: []float64{1}}},
		Users: []mmd.User{{
			Utility: []float64{5}, Loads: [][]float64{{1}}, Capacities: []float64{2},
		}},
		Budgets: []float64{math.Inf(1)},
	}
	if got := bounds.ServerBound(in); !math.IsInf(got, 1) {
		t.Fatalf("ServerBound with only infinite budgets = %v, want +Inf", got)
	}
	// UserBound still finite, so UpperBound is finite.
	if got := bounds.UpperBound(in); math.IsInf(got, 1) {
		t.Fatalf("UpperBound = %v, want finite", got)
	}
}

func TestBoundsHandCheck(t *testing.T) {
	// Two streams (cost 1 value 6, cost 2 value 6), budget 2.
	// Fractional knapsack: take first fully (6), half of second (3) = 9.
	in := &mmd.Instance{
		Streams: []mmd.Stream{
			{Name: "a", Costs: []float64{1}},
			{Name: "b", Costs: []float64{2}},
		},
		Users: []mmd.User{{
			Utility:    []float64{6, 6},
			Loads:      [][]float64{{6, 6}},
			Capacities: []float64{100},
		}},
		Budgets: []float64{2},
	}
	if got := bounds.ServerBound(in); math.Abs(got-9) > 1e-12 {
		t.Fatalf("ServerBound = %v, want 9", got)
	}
	// User bound: capacity 100 over loads 6,6 -> both fit: 12.
	if got := bounds.UserBound(in); math.Abs(got-12) > 1e-12 {
		t.Fatalf("UserBound = %v, want 12", got)
	}
	if got := bounds.UpperBound(in); math.Abs(got-9) > 1e-12 {
		t.Fatalf("UpperBound = %v, want 9", got)
	}
}

func TestUserBoundZeroCapacity(t *testing.T) {
	in := &mmd.Instance{
		Streams: []mmd.Stream{{Name: "a", Costs: []float64{1}}},
		Users: []mmd.User{{
			Utility:    []float64{0}, // must be zero: load > capacity
			Loads:      [][]float64{{1}},
			Capacities: []float64{0},
		}},
		Budgets: []float64{10},
	}
	if got := bounds.UserBound(in); got != 0 {
		t.Fatalf("UserBound = %v, want 0", got)
	}
}
