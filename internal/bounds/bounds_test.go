package bounds_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bounds"
	"repro/internal/exact"
	"repro/internal/generator"
	"repro/internal/mmd"
)

// TestUpperBoundDominatesOPT: every bound is >= the exact optimum.
func TestUpperBoundDominatesOPT(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(71))}
	property := func(seed int64) bool {
		in, err := generator.RandomMMD{
			Streams: 7, Users: 3, M: 2, MC: 2, Seed: seed, Skew: 4,
		}.Generate()
		if err != nil {
			return false
		}
		opt, err := exact.Solve(in, exact.Options{})
		if err != nil {
			return false
		}
		const tol = 1e-9
		return bounds.ServerBound(in) >= opt.Value-tol &&
			bounds.UserBound(in) >= opt.Value-tol &&
			bounds.UpperBound(in) >= opt.Value-tol
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestUpperBoundIsMin(t *testing.T) {
	in, err := generator.RandomMMD{Streams: 10, Users: 4, M: 2, MC: 1, Seed: 3}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	ub := bounds.UpperBound(in)
	if ub > bounds.ServerBound(in)+1e-12 || ub > bounds.UserBound(in)+1e-12 || ub > in.TotalUtility()+1e-12 {
		t.Fatalf("UpperBound %v exceeds a component bound", ub)
	}
}

func TestServerBoundInfiniteBudgets(t *testing.T) {
	in := &mmd.Instance{
		Streams: []mmd.Stream{{Name: "a", Costs: []float64{1}}},
		Users: []mmd.User{{
			Utility: []float64{5}, Loads: [][]float64{{1}}, Capacities: []float64{2},
		}},
		Budgets: []float64{math.Inf(1)},
	}
	if got := bounds.ServerBound(in); !math.IsInf(got, 1) {
		t.Fatalf("ServerBound with only infinite budgets = %v, want +Inf", got)
	}
	// UserBound still finite, so UpperBound is finite.
	if got := bounds.UpperBound(in); math.IsInf(got, 1) {
		t.Fatalf("UpperBound = %v, want finite", got)
	}
}

func TestBoundsHandCheck(t *testing.T) {
	// Two streams (cost 1 value 6, cost 2 value 6), budget 2.
	// Fractional knapsack: take first fully (6), half of second (3) = 9.
	in := &mmd.Instance{
		Streams: []mmd.Stream{
			{Name: "a", Costs: []float64{1}},
			{Name: "b", Costs: []float64{2}},
		},
		Users: []mmd.User{{
			Utility:    []float64{6, 6},
			Loads:      [][]float64{{6, 6}},
			Capacities: []float64{100},
		}},
		Budgets: []float64{2},
	}
	if got := bounds.ServerBound(in); math.Abs(got-9) > 1e-12 {
		t.Fatalf("ServerBound = %v, want 9", got)
	}
	// User bound: capacity 100 over loads 6,6 -> both fit: 12.
	if got := bounds.UserBound(in); math.Abs(got-12) > 1e-12 {
		t.Fatalf("UserBound = %v, want 12", got)
	}
	if got := bounds.UpperBound(in); math.Abs(got-9) > 1e-12 {
		t.Fatalf("UpperBound = %v, want 9", got)
	}
}

// TestBoundsSingleSaturatingStream: one stream costing exactly the
// budget — the fractional relaxation has nothing to split, so every
// bound is tight against OPT.
func TestBoundsSingleSaturatingStream(t *testing.T) {
	in := &mmd.Instance{
		Streams: []mmd.Stream{{Name: "big", Costs: []float64{1}}},
		Users: []mmd.User{{
			Utility: []float64{6}, Loads: [][]float64{{6}}, Capacities: []float64{10},
		}},
		Budgets: []float64{1},
	}
	opt, err := exact.Solve(in, exact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Value != 6 {
		t.Fatalf("OPT = %v, want 6", opt.Value)
	}
	for name, got := range map[string]float64{
		"ServerBound": bounds.ServerBound(in),
		"UserBound":   bounds.UserBound(in),
		"UpperBound":  bounds.UpperBound(in),
	} {
		if math.Abs(got-6) > 1e-12 {
			t.Fatalf("%s = %v, want 6 (tight)", name, got)
		}
	}
}

// TestBoundsEmptyTenants: no interest anywhere (and then no users at
// all) must give zero bounds, not NaN or a spurious positive value.
func TestBoundsEmptyTenants(t *testing.T) {
	in := &mmd.Instance{
		Streams: []mmd.Stream{{Name: "a", Costs: []float64{1}}},
		Users: []mmd.User{
			{Utility: []float64{0}, Loads: [][]float64{{0}}, Capacities: []float64{1}},
		},
		Budgets: []float64{10},
	}
	for name, got := range map[string]float64{
		"ServerBound": bounds.ServerBound(in),
		"UserBound":   bounds.UserBound(in),
		"UpperBound":  bounds.UpperBound(in),
	} {
		if got != 0 {
			t.Fatalf("zero-interest %s = %v, want 0", name, got)
		}
	}
	bare := &mmd.Instance{Budgets: []float64{1}}
	if got := bounds.UpperBound(bare); got != 0 {
		t.Fatalf("userless UpperBound = %v, want 0", got)
	}
}

// TestUpperBoundDominatesLargeStreamsOPT sweeps the adversarial
// generator across the small-streams boundary — including streams that
// saturate the budget outright — and requires every bound to dominate
// the exact optimum on instances E17 actually measures.
func TestUpperBoundDominatesLargeStreamsOPT(t *testing.T) {
	const tol = 1e-9
	for _, fraction := range []float64{0.05, 0.3, 0.6, 0.95, 1} {
		in, err := generator.LargeStreams{
			Streams: 8, Users: 3, Seed: 72, SizeFraction: fraction,
		}.Generate()
		if err != nil {
			t.Fatal(err)
		}
		opt, err := exact.Solve(in, exact.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if bounds.ServerBound(in) < opt.Value-tol ||
			bounds.UserBound(in) < opt.Value-tol ||
			bounds.UpperBound(in) < opt.Value-tol {
			t.Fatalf("fraction %v: a bound fell below OPT %v (server %v, user %v, upper %v)",
				fraction, opt.Value, bounds.ServerBound(in), bounds.UserBound(in), bounds.UpperBound(in))
		}
	}
}

func TestUserBoundZeroCapacity(t *testing.T) {
	in := &mmd.Instance{
		Streams: []mmd.Stream{{Name: "a", Costs: []float64{1}}},
		Users: []mmd.User{{
			Utility:    []float64{0}, // must be zero: load > capacity
			Loads:      [][]float64{{1}},
			Capacities: []float64{0},
		}},
		Budgets: []float64{10},
	}
	if got := bounds.UserBound(in); got != 0 {
		t.Fatalf("UserBound = %v, want 0", got)
	}
}
