package catalog

// Service is the registry protocol surface the cluster drives: the
// three-step acquire/admit/settle pricing protocol, its batched forms,
// the binding lookup, the deterministic snapshot, and the
// durability-log plane. *Registry implements it in-process; a fleet
// node implements it against a remote registry process over the v4
// NDJSON wire (see internal/catalog/remote) — the mutations are
// already messages to a single owner, so the wire lift changes the
// transport, never the protocol.
//
// Implementations must preserve the registry's semantics exactly:
// every Acquire balanced by exactly one settlement echoing the
// ticket's OriginPayer flag, SettleBatch applied in submission order
// (the worker-FIFO settlement contract), and Snapshot deterministic in
// sorted ID order.
type Service interface {
	// Acquire prices an admission and records a provisional reference
	// (see Registry.Acquire).
	Acquire(id ID, tenant int) (Ticket, error)
	// AcquireBatch prices admissions of ids by one tenant in a single
	// owner round trip, writing one ticket per id into out (whose
	// length must equal len(ids)).
	AcquireBatch(tenant int, ids []ID, out []Ticket) error
	// Lookup returns the tenant's local stream index for id.
	Lookup(id ID, tenant int) (int, error)
	// Release drops a confirmed (held) or provisional reference.
	Release(id ID, tenant int, held, origin bool) (refs int, evicted bool)
	// SettleBatch applies an ordered settlement run in one owner round
	// trip; out, when non-nil, receives one result per op.
	SettleBatch(ops []Settlement, out []SettleResult) error
	// Snapshot returns the deterministic registry state (nil after
	// Close).
	Snapshot() *Snapshot
	// Close releases the caller's handle on the registry. For the
	// in-process Registry it stops the owner goroutine; a remote client
	// closes its connection and leaves the registry serving its other
	// nodes.
	Close()

	// The durability-log plane (see walog.go). A remote registry owns
	// its durability in its own process, so the remote client rejects
	// SetLogger — a cluster with both a WAL and a remote catalog is
	// refused at construction.
	SetLogger(l Logger) error
	ReplayAcquire(id ID, tenant int, scale float64, origin bool) error
	ReplaySettle(s Settlement) error
	DanglingPending() ([]Settlement, error)
}

// Registry implements Service in-process.
var _ Service = (*Registry)(nil)
