// Package remote lifts the catalog registry's single-owner mutation
// channel onto the serving API v4 NDJSON wire (serving API v7): a
// Client implements catalog.Service against a registry owned by
// another process, and NewHandler serves a registry to such clients.
//
// The lift is a transport change, not a protocol change. In-process,
// every registry mutation is already a message to the owner goroutine
// (catalog.Registry.do); here the same messages travel as one JSON
// line per request over a persistent chunked connection (the transport
// streamclient speaks), answered by one JSON line per reply, in
// request order. A node keeps one connection; its shard workers'
// settlement batches serialize through it in submission order, so the
// worker-FIFO settlement contract survives the wire unchanged, and the
// registry owner serializes across nodes exactly as it serializes
// across shards in-process.
//
// Errors cross the wire as a sentinel code plus the original message;
// the client rebuilds an error chain that errors.Is-matches the
// catalog package's sentinels, so the cluster's wrapCatalogErr — and
// every caller matching catalog.ErrUnknownID / ErrNotBound /
// ErrClosed — behaves identically against a remote registry.
package remote

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/catalog"
	"repro/streamclient"
)

// WirePath is the catalog service's NDJSON endpoint.
const WirePath = "/v1/catalog/wire"

// wireReq is one registry request line (client → service). Op selects
// the operation; exactly the fields that operation reads are set.
type wireReq struct {
	Op     string `json:"op"`
	ID     string `json:"id,omitempty"`
	Tenant int    `json:"tenant,omitempty"`
	// Acquire-batch payload.
	IDs []string `json:"ids,omitempty"`
	// Release flags (held selects confirmed vs provisional; origin
	// echoes Ticket.OriginPayer) — origin doubles as the replay-acquire
	// origin-payer flag.
	Held   bool `json:"held,omitempty"`
	Origin bool `json:"origin,omitempty"`
	// Settle-batch payload; WantResults asks for per-op outcomes.
	Settles     []catalog.Settlement `json:"settles,omitempty"`
	WantResults bool                 `json:"want_results,omitempty"`
	// Replay-acquire quote.
	Scale float64 `json:"scale,omitempty"`
}

// wireResp is one registry reply line (service → client). Exactly the
// field matching the request's op is set; Error/Code report a failure.
type wireResp struct {
	Ticket   *catalog.Ticket        `json:"ticket,omitempty"`
	Tickets  []catalog.Ticket       `json:"tickets,omitempty"`
	Local    int                    `json:"local,omitempty"`
	Refs     int                    `json:"refs,omitempty"`
	Evicted  bool                   `json:"evicted,omitempty"`
	Results  []catalog.SettleResult `json:"results,omitempty"`
	Snapshot *catalog.Snapshot      `json:"snapshot,omitempty"`
	Settles  []catalog.Settlement   `json:"settles,omitempty"`
	Error    string                 `json:"error,omitempty"`
	Code     string                 `json:"code,omitempty"`
}

// Sentinel codes carried on the wire, mapped back to the catalog
// package's error chain client-side.
const (
	codeUnknownID = "unknown-id"
	codeNotBound  = "not-bound"
	codeClosed    = "closed"
)

// encodeErr maps a registry error onto its wire code.
func encodeErr(err error) (code, msg string) {
	switch {
	case errors.Is(err, catalog.ErrUnknownID):
		code = codeUnknownID
	case errors.Is(err, catalog.ErrNotBound):
		code = codeNotBound
	case errors.Is(err, catalog.ErrClosed):
		code = codeClosed
	}
	return code, err.Error()
}

// decodeErr rebuilds the client-side error chain from a wire code.
func decodeErr(code, msg string) error {
	switch code {
	case codeUnknownID:
		return fmt.Errorf("%w: remote: %s", catalog.ErrUnknownID, msg)
	case codeNotBound:
		return fmt.Errorf("%w: remote: %s", catalog.ErrNotBound, msg)
	case codeClosed:
		return fmt.Errorf("%w: remote: %s", catalog.ErrClosed, msg)
	}
	return fmt.Errorf("catalog/remote: server error: %s", msg)
}

// Options configures a Client.
type Options struct {
	// Dial replaces net.Dial for the underlying connection (the chaos
	// seam, like streamclient.DialOptions.Dial).
	Dial func(network, addr string) (net.Conn, error)
}

// Client is a catalog.Service against a remote registry: one
// persistent NDJSON connection, one request line per registry
// operation, strictly serialized (request, then its reply — exactly
// the owner-channel round trip the in-process registry already makes,
// with the wire in the middle). Safe for concurrent use; concurrent
// callers serialize on the connection the way in-process callers
// serialize on the owner channel.
type Client struct {
	mu     sync.Mutex
	conn   *streamclient.Conn
	closed bool
	buf    []byte // request-encoding scratch
}

var _ catalog.Service = (*Client)(nil)

// Dial connects a Client to a catalog service at an mmdserve base URL
// (e.g. "http://127.0.0.1:9101").
func Dial(baseURL string, opts Options) (*Client, error) {
	conn, err := streamclient.DialWith(baseURL, streamclient.DialOptions{
		Dial: opts.Dial,
		Path: WirePath,
	})
	if err != nil {
		return nil, fmt.Errorf("catalog/remote: %w", err)
	}
	return &Client{conn: conn}, nil
}

// roundTrip sends one request line and decodes its reply. Serialized:
// the reply to the i-th request is the i-th response line.
func (c *Client) roundTrip(req wireReq, resp *wireResp) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("%w: remote: client closed", catalog.ErrClosed)
	}
	line, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("catalog/remote: encode %s: %w", req.Op, err)
	}
	c.buf = append(c.buf[:0], line...)
	if err := c.conn.SendRaw(c.buf); err != nil {
		return fmt.Errorf("%w: remote: %v", catalog.ErrClosed, err)
	}
	if err := c.conn.Flush(); err != nil {
		return fmt.Errorf("%w: remote: %v", catalog.ErrClosed, err)
	}
	raw, err := c.conn.RecvRaw()
	if err != nil {
		return fmt.Errorf("%w: remote: %v", catalog.ErrClosed, err)
	}
	*resp = wireResp{}
	if err := json.Unmarshal(raw, resp); err != nil {
		return fmt.Errorf("catalog/remote: bad reply to %s: %w", req.Op, err)
	}
	if resp.Error != "" {
		return decodeErr(resp.Code, resp.Error)
	}
	return nil
}

// Acquire implements catalog.Service.
func (c *Client) Acquire(id catalog.ID, tenant int) (catalog.Ticket, error) {
	var resp wireResp
	if err := c.roundTrip(wireReq{Op: "acquire", ID: string(id), Tenant: tenant}, &resp); err != nil {
		return catalog.Ticket{}, err
	}
	if resp.Ticket == nil {
		return catalog.Ticket{}, fmt.Errorf("catalog/remote: acquire reply without ticket")
	}
	return *resp.Ticket, nil
}

// AcquireBatch implements catalog.Service.
func (c *Client) AcquireBatch(tenant int, ids []catalog.ID, out []catalog.Ticket) error {
	if len(out) != len(ids) {
		return fmt.Errorf("catalog: AcquireBatch: %d ids but %d ticket slots", len(ids), len(out))
	}
	if len(ids) == 0 {
		return nil
	}
	wids := make([]string, len(ids))
	for i, id := range ids {
		wids[i] = string(id)
	}
	var resp wireResp
	if err := c.roundTrip(wireReq{Op: "acquire-batch", Tenant: tenant, IDs: wids}, &resp); err != nil {
		return err
	}
	if len(resp.Tickets) != len(ids) {
		return fmt.Errorf("catalog/remote: acquire-batch: %d ids but %d tickets in reply", len(ids), len(resp.Tickets))
	}
	copy(out, resp.Tickets)
	return nil
}

// Lookup implements catalog.Service.
func (c *Client) Lookup(id catalog.ID, tenant int) (int, error) {
	var resp wireResp
	if err := c.roundTrip(wireReq{Op: "lookup", ID: string(id), Tenant: tenant}, &resp); err != nil {
		return 0, err
	}
	return resp.Local, nil
}

// Release implements catalog.Service. Matching Registry.Release, a
// transport failure reports zero values (the settlement may or may not
// have reached the owner; recovery of a torn connection is the node
// process's lifecycle problem, not the hot path's).
func (c *Client) Release(id catalog.ID, tenant int, held, origin bool) (refs int, evicted bool) {
	var resp wireResp
	if err := c.roundTrip(wireReq{Op: "release", ID: string(id), Tenant: tenant, Held: held, Origin: origin}, &resp); err != nil {
		return 0, false
	}
	return resp.Refs, resp.Evicted
}

// SettleBatch implements catalog.Service: the shard worker's ordered
// settlement run crosses the wire as one line and applies in one owner
// round trip, in order — worker-FIFO settlement, remote edition.
func (c *Client) SettleBatch(ops []catalog.Settlement, out []catalog.SettleResult) error {
	if out != nil && len(out) != len(ops) {
		return fmt.Errorf("catalog: SettleBatch: %d ops but %d result slots", len(ops), len(out))
	}
	if len(ops) == 0 {
		return nil
	}
	var resp wireResp
	if err := c.roundTrip(wireReq{Op: "settle-batch", Settles: ops, WantResults: out != nil}, &resp); err != nil {
		return err
	}
	if out != nil {
		if len(resp.Results) != len(ops) {
			return fmt.Errorf("catalog/remote: settle-batch: %d ops but %d results in reply", len(ops), len(resp.Results))
		}
		copy(out, resp.Results)
	}
	return nil
}

// Snapshot implements catalog.Service. Nil on transport failure,
// matching the closed-registry behavior.
func (c *Client) Snapshot() *catalog.Snapshot {
	var resp wireResp
	if err := c.roundTrip(wireReq{Op: "snapshot"}, &resp); err != nil {
		return nil
	}
	return resp.Snapshot
}

// Close implements catalog.Service: it closes this client's
// connection. The remote registry keeps serving its other nodes.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.closed {
		c.closed = true
		_ = c.conn.Close()
	}
}

// SetLogger implements catalog.Service by refusing: the remote
// registry's durability plane lives in its own process.
func (c *Client) SetLogger(catalog.Logger) error {
	return fmt.Errorf("catalog/remote: a remote registry has no local durability plane")
}

// ReplayAcquire implements catalog.Service, forwarding the replayed
// quote for the remote owner to verify.
func (c *Client) ReplayAcquire(id catalog.ID, tenant int, scale float64, origin bool) error {
	var resp wireResp
	return c.roundTrip(wireReq{Op: "replay-acquire", ID: string(id), Tenant: tenant, Scale: scale, Origin: origin}, &resp)
}

// ReplaySettle implements catalog.Service.
func (c *Client) ReplaySettle(s catalog.Settlement) error {
	var resp wireResp
	return c.roundTrip(wireReq{Op: "replay-settle", Settles: []catalog.Settlement{s}}, &resp)
}

// DanglingPending implements catalog.Service.
func (c *Client) DanglingPending() ([]catalog.Settlement, error) {
	var resp wireResp
	if err := c.roundTrip(wireReq{Op: "dangling"}, &resp); err != nil {
		return nil, err
	}
	return resp.Settles, nil
}
