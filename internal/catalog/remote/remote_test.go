package remote

import (
	"errors"
	"fmt"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"repro/internal/catalog"
)

// newPair builds the parity rig: one registry behind the wire (served
// by NewHandler, driven through a Client) and one identical in-process
// registry, so every step can be applied to both and compared.
func newPair(t *testing.T, model catalog.CostModel) (wire catalog.Service, local catalog.Service, done func()) {
	t.Helper()
	id := func(s int) catalog.ID { return catalog.ID(fmt.Sprintf("ch-%03d", s)) }
	remoteReg, err := catalog.NewRegistry(catalog.IdentityBindings(4, 6, id), model)
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	localReg, err := catalog.NewRegistry(catalog.IdentityBindings(4, 6, id), model)
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	srv := httptest.NewServer(NewHandler(remoteReg))
	client, err := Dial(srv.URL, Options{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	return client, localReg, func() {
		client.Close()
		srv.Close()
		remoteReg.Close()
		localReg.Close()
	}
}

// TestWireParity drives the same operation sequence through the wire
// client and an identical in-process registry and requires identical
// outcomes at every step, including the rendered snapshot — the wire
// lift must be invisible to the protocol.
func TestWireParity(t *testing.T) {
	for _, model := range []catalog.CostModel{catalog.Isolated{}, catalog.SharedOrigin{ReplicationFraction: 0.25}} {
		t.Run(model.Name(), func(t *testing.T) {
			wire, local, done := newPair(t, model)
			defer done()

			both := []catalog.Service{wire, local}

			// Acquire: same tickets on both sides.
			for _, tenant := range []int{0, 1, 2} {
				var tks [2]catalog.Ticket
				for i, svc := range both {
					tk, err := svc.Acquire("ch-000", tenant)
					if err != nil {
						t.Fatalf("Acquire(ch-000, %d) [%d]: %v", tenant, i, err)
					}
					tks[i] = tk
				}
				if !reflect.DeepEqual(tks[0], tks[1]) {
					t.Fatalf("Acquire(ch-000, %d): wire ticket %+v != local %+v", tenant, tks[0], tks[1])
				}
				// Commit each admission so the next tenant prices from a
				// confirmed reference.
				ops := []catalog.Settlement{{Op: catalog.SettleCommit, ID: "ch-000", Tenant: tenant,
					Full: 10, Charged: 10 * tks[0].Scale, Origin: tks[0].OriginPayer}}
				for i, svc := range both {
					out := make([]catalog.SettleResult, 1)
					if err := svc.SettleBatch(ops, out); err != nil {
						t.Fatalf("SettleBatch commit [%d]: %v", i, err)
					}
					if want := tenant + 1; out[0].Refs != want {
						t.Fatalf("SettleBatch commit [%d]: refs %d, want %d", i, out[0].Refs, want)
					}
				}
			}

			// AcquireBatch + batched release settlement.
			ids := []catalog.ID{"ch-001", "ch-002", "ch-003"}
			var batches [2][]catalog.Ticket
			for i, svc := range both {
				out := make([]catalog.Ticket, len(ids))
				if err := svc.AcquireBatch(3, ids, out); err != nil {
					t.Fatalf("AcquireBatch [%d]: %v", i, err)
				}
				batches[i] = out
			}
			if !reflect.DeepEqual(batches[0], batches[1]) {
				t.Fatalf("AcquireBatch: wire %+v != local %+v", batches[0], batches[1])
			}
			rel := make([]catalog.Settlement, len(ids))
			for j, id := range ids {
				rel[j] = catalog.Settlement{Op: catalog.SettleReleasePending, ID: id, Tenant: 3,
					Origin: batches[0][j].OriginPayer}
			}
			for i, svc := range both {
				if err := svc.SettleBatch(rel, nil); err != nil {
					t.Fatalf("SettleBatch release (nil out) [%d]: %v", i, err)
				}
			}

			// Lookup parity.
			for i, svc := range both {
				local, err := svc.Lookup("ch-000", 1)
				if err != nil {
					t.Fatalf("Lookup [%d]: %v", i, err)
				}
				if local != 0 {
					t.Fatalf("Lookup [%d]: local %d, want 0", i, local)
				}
			}

			// Release parity (confirmed reference, tenant 2 departs).
			var refs [2]int
			var evicted [2]bool
			for i, svc := range both {
				refs[i], evicted[i] = svc.Release("ch-000", 2, true, false)
			}
			if refs[0] != refs[1] || evicted[0] != evicted[1] {
				t.Fatalf("Release: wire (%d,%v) != local (%d,%v)", refs[0], evicted[0], refs[1], evicted[1])
			}

			// Snapshot renders byte-identically.
			ws, ls := wire.Snapshot(), local.Snapshot()
			if ws == nil || ls == nil {
				t.Fatalf("Snapshot: wire %v local %v", ws, ls)
			}
			if ws.Render() != ls.Render() {
				t.Fatalf("snapshot render mismatch:\nwire:\n%s\nlocal:\n%s", ws.Render(), ls.Render())
			}

			// DanglingPending parity (the released batch left none).
			wd, err := wire.DanglingPending()
			if err != nil {
				t.Fatalf("DanglingPending (wire): %v", err)
			}
			ld, err := local.DanglingPending()
			if err != nil {
				t.Fatalf("DanglingPending (local): %v", err)
			}
			if !reflect.DeepEqual(wd, ld) {
				t.Fatalf("DanglingPending: wire %+v != local %+v", wd, ld)
			}
		})
	}
}

// TestWireSentinels requires the wire to carry the catalog sentinels:
// remote errors must errors.Is-match exactly as in-process ones do.
func TestWireSentinels(t *testing.T) {
	wire, _, done := newPair(t, catalog.Isolated{})
	defer done()

	if _, err := wire.Acquire("no-such-stream", 0); !errors.Is(err, catalog.ErrUnknownID) {
		t.Fatalf("Acquire(unknown): err %v, want ErrUnknownID", err)
	}
	if _, err := wire.Acquire("ch-000", 99); !errors.Is(err, catalog.ErrNotBound) {
		t.Fatalf("Acquire(unbound tenant): err %v, want ErrNotBound", err)
	}
	if err := wire.SetLogger(nil); err == nil {
		t.Fatal("SetLogger on a remote client must refuse")
	}
}

// TestWireClosedRegistry requires a closed remote registry to surface
// catalog.ErrClosed through the wire.
func TestWireClosedRegistry(t *testing.T) {
	reg, err := catalog.NewRegistry(catalog.IdentityBindings(2, 2, func(s int) catalog.ID {
		return catalog.ID(fmt.Sprintf("ch-%03d", s))
	}), nil)
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	srv := httptest.NewServer(NewHandler(reg))
	defer srv.Close()
	client, err := Dial(srv.URL, Options{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer client.Close()

	reg.Close()
	if _, err := client.Acquire("ch-000", 0); !errors.Is(err, catalog.ErrClosed) {
		t.Fatalf("Acquire after registry close: err %v, want ErrClosed", err)
	}
	if snap := client.Snapshot(); snap != nil {
		t.Fatalf("Snapshot after registry close: %+v, want nil", snap)
	}
}

// TestWireConcurrent hammers one client from several goroutines (the
// shape of a node's shard workers sharing the node's connection): the
// mutex must serialize request/reply pairing so every ticket matches
// its own acquire.
func TestWireConcurrent(t *testing.T) {
	wire, _, done := newPair(t, catalog.SharedOrigin{})
	defer done()

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for tenant := 0; tenant < 4; tenant++ {
		wg.Add(1)
		go func(tenant int) {
			defer wg.Done()
			for iter := 0; iter < 25; iter++ {
				id := catalog.ID(fmt.Sprintf("ch-%03d", iter%6))
				tk, err := wire.Acquire(id, tenant)
				if err != nil {
					errs <- fmt.Errorf("tenant %d: Acquire(%s): %w", tenant, id, err)
					return
				}
				if tk.Local != iter%6 {
					errs <- fmt.Errorf("tenant %d: Acquire(%s): local %d, want %d (reply misrouted)", tenant, id, tk.Local, iter%6)
					return
				}
				wire.Release(id, tenant, false, tk.OriginPayer)
			}
		}(tenant)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Every provisional reference released: refcounts all zero.
	snap := wire.Snapshot()
	if snap == nil {
		t.Fatal("Snapshot: nil")
	}
	for _, e := range snap.Entries {
		if e.Refs != 0 {
			t.Fatalf("stream %s: refs %d after full release, want 0", e.ID, e.Refs)
		}
	}
}
