package remote

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/catalog"
)

// NewHandler serves reg on the catalog wire: POST /v1/catalog/wire is
// the full-duplex NDJSON request/response channel (one reply line per
// request line, flushed per reply, in request order), and
// GET /v1/catalog returns the registry snapshot as JSON — the same
// shape a single-process mmdserve serves, so fleet tooling reads the
// catalog service and a node interchangeably.
//
// Each wire connection serializes its own requests (a node's single
// Client guarantees that already); requests from different connections
// interleave at the registry's owner goroutine, exactly as different
// shard workers interleave in-process.
func NewHandler(reg catalog.Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+WirePath, func(w http.ResponseWriter, r *http.Request) {
		serveWire(reg, w, r)
	})
	mux.HandleFunc("GET /v1/catalog", func(w http.ResponseWriter, r *http.Request) {
		snap := reg.Snapshot()
		if snap == nil {
			http.Error(w, `{"error":"catalog closed"}`, http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(snap)
	})
	return mux
}

// serveWire drives one wire connection: request line in, reply line
// out, flush, repeat until the client closes its send side.
func serveWire(reg catalog.Service, w http.ResponseWriter, r *http.Request) {
	rc := http.NewResponseController(w)
	// HTTP/1 servers half-close by default; the wire reads request lines
	// while writing reply lines (errors mean the transport is already
	// duplex or cannot be — either way we proceed).
	_ = rc.EnableFullDuplex()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	_ = rc.Flush()
	br := bufio.NewReaderSize(r.Body, 64<<10)
	enc := json.NewEncoder(w)
	for {
		line, err := br.ReadBytes('\n')
		if len(line) == 0 || (err != nil && err != io.EOF) {
			return
		}
		var req wireReq
		if uerr := json.Unmarshal(line, &req); uerr != nil {
			_ = enc.Encode(wireResp{Error: fmt.Sprintf("bad request line: %v", uerr)})
			_ = rc.Flush()
			return
		}
		resp := dispatch(reg, &req)
		if eerr := enc.Encode(resp); eerr != nil {
			return
		}
		_ = rc.Flush()
		if err == io.EOF {
			return
		}
	}
}

// dispatch applies one wire request to the registry.
func dispatch(reg catalog.Service, req *wireReq) wireResp {
	switch req.Op {
	case "acquire":
		tk, err := reg.Acquire(catalog.ID(req.ID), req.Tenant)
		if err != nil {
			return errResp(err)
		}
		return wireResp{Ticket: &tk}
	case "acquire-batch":
		ids := make([]catalog.ID, len(req.IDs))
		for i, s := range req.IDs {
			ids[i] = catalog.ID(s)
		}
		tickets := make([]catalog.Ticket, len(ids))
		if err := reg.AcquireBatch(req.Tenant, ids, tickets); err != nil {
			return errResp(err)
		}
		return wireResp{Tickets: tickets}
	case "lookup":
		local, err := reg.Lookup(catalog.ID(req.ID), req.Tenant)
		if err != nil {
			return errResp(err)
		}
		return wireResp{Local: local}
	case "release":
		refs, evicted := reg.Release(catalog.ID(req.ID), req.Tenant, req.Held, req.Origin)
		return wireResp{Refs: refs, Evicted: evicted}
	case "settle-batch":
		var out []catalog.SettleResult
		if req.WantResults {
			out = make([]catalog.SettleResult, len(req.Settles))
		}
		if err := reg.SettleBatch(req.Settles, out); err != nil {
			return errResp(err)
		}
		return wireResp{Results: out}
	case "snapshot":
		snap := reg.Snapshot()
		if snap == nil {
			return errResp(fmt.Errorf("%w: snapshot after close", catalog.ErrClosed))
		}
		return wireResp{Snapshot: snap}
	case "replay-acquire":
		if err := reg.ReplayAcquire(catalog.ID(req.ID), req.Tenant, req.Scale, req.Origin); err != nil {
			return errResp(err)
		}
		return wireResp{}
	case "replay-settle":
		if len(req.Settles) != 1 {
			return wireResp{Error: fmt.Sprintf("replay-settle wants exactly 1 settlement, got %d", len(req.Settles))}
		}
		if err := reg.ReplaySettle(req.Settles[0]); err != nil {
			return errResp(err)
		}
		return wireResp{}
	case "dangling":
		settles, err := reg.DanglingPending()
		if err != nil {
			return errResp(err)
		}
		return wireResp{Settles: settles}
	}
	return wireResp{Error: fmt.Sprintf("unknown op %q", strings.TrimSpace(req.Op))}
}

func errResp(err error) wireResp {
	code, msg := encodeErr(err)
	return wireResp{Error: msg, Code: code}
}
