package catalog

// The registry's durability-log plane. The cluster's eviction gate
// counts in-flight acquisitions (entry.pendingCount, entry.fullPending)
// and quotes are honored under concurrency, so no per-shard event log
// can reproduce registry state: the only order that rebuilds it exactly
// is the owner goroutine's own serialization order. The registry
// therefore writes its own log — one record per acquisition and per
// settlement, emitted by the owner right after applying the operation —
// and recovery replays that plane directly back into the owner,
// re-deriving each acquisition's quote from the rebuilt state and
// verifying it against the logged one (a mismatch is corruption, not a
// judgment call). See internal/wal and internal/cluster's recovery.

// Logger receives every state-mutating registry operation in the
// owner's serialization order. Implementations are called on the owner
// goroutine and must not call back into the registry.
type Logger interface {
	// LogAcquire records one priced acquisition: the quoted scale and
	// whether this acquisition was elected the origin payer.
	LogAcquire(tenant int, id ID, scale float64, origin bool)
	// LogSettle records one applied settlement.
	LogSettle(s Settlement)
}

// SetLogger installs (or, with nil, removes) the registry's operation
// logger via an owner round trip, so the change is serialized against
// all in-flight operations. Replayed operations are never logged.
func (r *Registry) SetLogger(l Logger) error {
	if _, ok := r.do(request{op: opSetLogger, logger: l}); !ok {
		return ErrClosed
	}
	return nil
}

// ReplayAcquire re-applies one logged acquisition during recovery: the
// owner re-runs the pricing against the rebuilt state and verifies the
// re-derived quote (scale, origin-payer election) against the logged
// one. The registry's operation sequence is deterministic, so a
// mismatch means the log is corrupt or misordered and recovery must
// fail loudly.
func (r *Registry) ReplayAcquire(id ID, tenant int, scale float64, origin bool) error {
	resp, ok := r.do(request{op: opReplayAcquire, id: id, tenant: tenant, full: scale, origin: origin})
	if !ok {
		return ErrClosed
	}
	return resp.err
}

// DanglingPending returns the settlements that would balance every
// in-flight acquisition left behind by a crash (one SettleReleasePending
// per pending count, Origin set on as many as the entry's full-priced
// slots), in deterministic order: entries in the registry's sorted walk
// order, tenants ascending. Recovery applies them through the normal
// (logged) settlement path right after going live, so the log itself
// records how the danglings were drained and every future replay
// reproduces the same state — including the evictions the drain fires.
func (r *Registry) DanglingPending() ([]Settlement, error) {
	resp, ok := r.do(request{op: opDangling})
	if !ok {
		return nil, ErrClosed
	}
	return resp.settles, nil
}

// ReplaySettle re-applies one logged settlement during recovery,
// without re-logging it.
func (r *Registry) ReplaySettle(s Settlement) error {
	resp, ok := r.do(request{
		op: opSettle, replay: true, settleOp: s.Op, id: s.ID, tenant: s.Tenant,
		full: s.Full, charged: s.Charged, origin: s.Origin,
	})
	if !ok {
		return ErrClosed
	}
	return resp.err
}
