// Package catalog makes streams first-class fleet entities. The paper's
// setting is a fleet of head-ends multicasting video streams; until now
// every tenant of internal/cluster was an isolated universe — a stream
// admitted by tenant 3 cost tenant 7 full price all over again, and
// nothing in the API could even say the two were carrying *the same*
// stream. The catalog supplies the missing identity (ID, stable across
// the fleet), a registry mapping each ID to the per-tenant local stream
// index it appears as, cross-shard reference counts over who currently
// carries it, and a pluggable CostModel that prices each admission from
// the current reference count.
//
// # Ownership and concurrency
//
// The registry mirrors the cluster's share-nothing worker design: all
// mutable state (reference counts, pending acquisitions, accounting) is
// owned by a single goroutine, and every mutation travels to it as a
// message over a channel — never a lock on the hot path. Any goroutine
// may call Acquire/Commit/Release/Snapshot concurrently; the owner
// serializes them, so reference counts can neither tear nor double-fire
// an eviction. The immutable binding table (ID → local index) is read
// without messages.
//
// # Admission protocol
//
// An admission is a three-step conversation (the cluster's
// OfferCatalogStream orchestrates it):
//
//  1. Acquire(id, tenant) — the owner prices the admission from the
//     confirmed reference count (CostModel.ScaleFor) and records a
//     provisional reference, so a concurrent last-departure cannot
//     evict the origin out from under an admission in flight.
//  2. The tenant's shard worker runs the admission at the ticket's
//     scale.
//  3. The worker settles the reference right after deciding — Commit
//     on success, Release(id, tenant, false) on rejection — so
//     registry transitions follow the shard's FIFO order and can never
//     desynchronize from the tenant's carried set.
//
// A departure is Release(id, tenant, true), likewise settled by the
// worker; when the last reference (confirmed and provisional both
// zero) leaves an occupied entry, the origin is evicted — exactly once
// per occupancy cycle. Because commits and confirmed releases are
// issued in shard-application order, a confirmed release always finds
// its commit already applied; releasing a reference the tenant does
// not hold is therefore a harmless no-op (standalone users must
// preserve that ordering).
//
// Pricing counts confirmed references plus in-flight acquisitions that
// were themselves priced at full cost (prospective origin payers): the
// first acquisition of an unoccupied origin pays full price, and every
// acquisition racing it is quoted the shared discount — exactly one
// admitter funds the origin per occupancy cycle. Quotes are honored: if
// the prospective payer's admission is later rejected, acquisitions
// already quoted keep their discount (the same stance SharedOrigin
// takes on an early departure of the full payer), and the next fresh
// acquisition is quoted full price again. Driven serially — the
// deterministic experiment and test path — pricing is a pure function
// of the call sequence.
//
// # Batched operation
//
// AcquireBatch prices a whole single-tenant event batch in one owner
// round trip (each acquisition sees the ones before it in the batch,
// exactly as if they had been submitted back to back), and SettleBatch
// applies a shard worker's ordered settlement run — commits, recharges,
// releases, install adoptions — in one round trip. Both write results
// into caller-owned buffers, so a worker can reuse its settlement
// scratch across batch windows without allocation.
//
// ARCHITECTURE.md (repo root) places this layer in the system map and
// lists the refcount-equals-carriage invariants the tests pin.
package catalog

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ID is a stable fleet-wide stream identity. Two tenants bound to the
// same ID carry the same stream, whatever local catalog index each one
// knows it by.
type ID string

// CostModel prices a catalog admission from the number of tenants
// already confirmed to carry the stream. Implementations must be pure
// functions (the registry owner calls them; determinism of snapshots
// depends on it).
type CostModel interface {
	// Name identifies the model in snapshots and reports.
	Name() string
	// ScaleFor returns the server-cost scale charged to a tenant
	// admitting the stream when refs tenants already hold it. Scale 1
	// is full price; the guarded admission path prices its feasibility
	// delta at this scale (mmd.LoadLedger.FitsDeltaScaled). The value
	// must lie in (0, 1]: zero would be indistinguishable from the
	// Event sentinel for "unset" on the serving path, so out-of-range
	// values are clamped to full price by the registry.
	ScaleFor(refs int) float64
}

// clampScale enforces the ScaleFor contract: values outside (0, 1]
// charge full price.
func clampScale(scale float64) float64 {
	if scale <= 0 || scale > 1 {
		return 1
	}
	return scale
}

// Isolated is the default cost model: every tenant pays full price, as
// if the catalog did not exist. Admissions under Isolated are
// bit-identical to the pre-catalog serving path.
type Isolated struct{}

// Name implements CostModel.
func (Isolated) Name() string { return "isolated" }

// ScaleFor implements CostModel: always full price.
func (Isolated) ScaleFor(int) float64 { return 1 }

// DefaultReplicationFraction is the SharedOrigin discount applied when
// the zero value is used.
const DefaultReplicationFraction = 0.25

// SharedOrigin is the regional-CDN cost model: the first admitting
// tenant pays the full origin/transcode cost; every later tenant pays
// only the multicast-replication fraction of the stream's server cost
// vector. The charge is fixed at admission time (an early departure of
// the full payer does not re-price the survivors), and the last
// departure evicts and releases the origin.
type SharedOrigin struct {
	// ReplicationFraction is the scale later tenants pay, in (0, 1].
	// Zero (the zero value) means DefaultReplicationFraction.
	ReplicationFraction float64
}

// Name implements CostModel.
func (SharedOrigin) Name() string { return "shared-origin" }

// ScaleFor implements CostModel.
func (m SharedOrigin) ScaleFor(refs int) float64 {
	if refs == 0 {
		return 1
	}
	f := m.ReplicationFraction
	if f <= 0 || f > 1 {
		f = DefaultReplicationFraction
	}
	return f
}

// Binding maps one fleet-wide ID to the local stream index each tenant
// knows it by. Tenants absent from Local cannot admit the stream.
type Binding struct {
	// ID is the fleet-wide identity.
	ID ID
	// Local maps tenant index → that tenant's local stream index.
	Local map[int]int
}

// IdentityBindings builds the fully overlapping catalog shape used by
// same-shaped fleets (every tenant knows fleet stream s by local index
// s): streams entries, each bound at all of tenants, with id naming
// entry s. It is the binding constructor shared by mmdserve, the
// benchmarks, and the experiments.
func IdentityBindings(tenants, streams int, id func(s int) ID) []Binding {
	bindings := make([]Binding, streams)
	for s := 0; s < streams; s++ {
		local := make(map[int]int, tenants)
		for t := 0; t < tenants; t++ {
			local[t] = s
		}
		bindings[s] = Binding{ID: id(s), Local: local}
	}
	return bindings
}

// Sentinel errors of the catalog registry; match with errors.Is.
var (
	// ErrUnknownID reports an ID with no binding in the registry.
	ErrUnknownID = errors.New("catalog: unknown catalog id")
	// ErrNotBound reports a tenant with no local binding for the ID.
	ErrNotBound = errors.New("catalog: stream not bound for tenant")
	// ErrClosed reports an operation on a closed registry.
	ErrClosed = errors.New("catalog: closed")
)

// Ticket is the owner's answer to Acquire: the admission's price and
// the sharing state it was priced against.
type Ticket struct {
	// Local is the tenant's local stream index for the ID.
	Local int
	// Scale is the server-cost scale this admission is charged at.
	Scale float64
	// Refs is the confirmed reference count before this admission.
	Refs int
	// SharedWith lists the confirmed holders (ascending tenant index)
	// at decision time.
	SharedWith []int
	// Already reports that the tenant itself is a confirmed holder at
	// decision time (Scale is then 1 — a holder re-offer is a no-op or
	// a full-price re-admission, never a discount). A provisional
	// reference is taken regardless, so the acquisition must be
	// balanced like any other.
	Already bool
	// OriginPayer marks the acquisition that was quoted the full origin
	// cost for this occupancy cycle (no confirmed holder and no other
	// full-priced acquisition in flight at decision time). The flag must
	// be echoed back on whichever settlement balances the acquisition
	// (Settlement.Origin, or the origin argument of Commit / Recharge /
	// Release) so the owner can retire the prospective-payer slot.
	OriginPayer bool
}

// entry is the owner-goroutine state of one catalog stream.
type entry struct {
	id    ID
	local map[int]int
	// holders are the confirmed referencing tenants, ascending.
	holders []int
	// pending counts acquisitions whose admission is still in flight,
	// per tenant; pendingCount is their sum (the eviction gate).
	pending      map[int]int
	pendingCount int
	// fullPending counts in-flight acquisitions that were priced at the
	// full origin cost (Ticket.OriginPayer); while it is nonzero, new
	// acquisitions are quoted the shared discount even though no holder
	// has committed yet — the fix for the double-full-price race.
	fullPending int
	// occupied marks an origin brought up by a confirmed admission and
	// not yet evicted; the eviction single-fire latch.
	occupied bool

	admissions, evictions int
	fullCost, chargedCost float64
}

// Registry is the shard-safe fleet catalog: an immutable binding table
// plus reference-counting state owned by a single goroutine. All
// methods are safe for concurrent use.
type Registry struct {
	model   CostModel
	entries map[ID]*entry
	order   []ID // sorted, the deterministic snapshot walk order
	// logger, when set, receives every state-mutating operation in the
	// owner's serialization order — the registry's durability log plane
	// (see SetLogger). Owner-goroutine state: installed and read only
	// there.
	logger   Logger
	reqs     chan request
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
	// replies recycles the one-shot reply channels of do(); a channel
	// is only returned to the pool after its reply was received, so a
	// pooled channel is always empty.
	replies sync.Pool
}

type opKind int

const (
	opAcquire opKind = iota + 1
	opSettle
	opRefs
	opSnapshot
	opAcquireBatch
	opSettleBatch
	opSetLogger
	opReplayAcquire
	opDangling
)

// SettleOp names one registry transition a settlement applies.
type SettleOp uint8

const (
	// SettleCommit confirms a provisionally acquired reference after a
	// successful admission.
	SettleCommit SettleOp = iota + 1
	// SettleRecharge consumes a provisional reference whose admission
	// ran under an existing confirmed reference (see Recharge).
	SettleRecharge
	// SettleRelease drops a confirmed reference (a departure).
	SettleRelease
	// SettleReleasePending drops a provisional reference (a rejected or
	// abandoned admission).
	SettleReleasePending
	// SettleAdopt confirms a full-price reference with no prior Acquire
	// — the install-reconcile pickup of a catalog-bound stream a
	// re-solve added to the lineup. Atomic, so no provisional window.
	SettleAdopt
)

// Settlement is one ordered registry transition in a SettleBatch.
type Settlement struct {
	Op     SettleOp
	ID     ID
	Tenant int
	// Full and Charged accumulate accounting on commit / recharge /
	// adopt (adopt charges Full regardless of Charged).
	Full, Charged float64
	// Origin echoes Ticket.OriginPayer for the settlements that balance
	// an acquisition (commit, recharge, release-pending).
	Origin bool
}

// SettleResult is one settlement's outcome.
type SettleResult struct {
	// Refs is the confirmed reference count after the transition.
	Refs int
	// Evicted reports that the transition drained an occupied origin.
	Evicted bool
}

type request struct {
	op            opKind
	id            ID
	tenant        int
	settleOp      SettleOp
	full, charged float64
	origin        bool
	// Batch payloads; results are written into the caller-owned output
	// slices before the reply is sent (the reply is the memory barrier).
	ids       []ID
	tickets   []Ticket
	settles   []Settlement
	settleOut []SettleResult
	// Durability-plane payloads: the logger to install (opSetLogger) and
	// the replay flag suppressing logging on replayed settlements.
	logger Logger
	replay bool
	reply  chan response
}

type response struct {
	ticket  Ticket
	refs    int
	evicted bool
	snap    *Snapshot
	settles []Settlement
	err     error
}

// NewRegistry builds the registry and starts its owner goroutine.
// Bindings must have unique IDs and nonnegative local indexes; model
// nil means Isolated.
func NewRegistry(bindings []Binding, model CostModel) (*Registry, error) {
	if model == nil {
		model = Isolated{}
	}
	r := &Registry{
		model:   model,
		entries: make(map[ID]*entry, len(bindings)),
		reqs:    make(chan request),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	for _, b := range bindings {
		if b.ID == "" {
			return nil, fmt.Errorf("catalog: empty catalog id")
		}
		if _, dup := r.entries[b.ID]; dup {
			return nil, fmt.Errorf("catalog: duplicate catalog id %q", b.ID)
		}
		local := make(map[int]int, len(b.Local))
		for tenant, s := range b.Local {
			if tenant < 0 || s < 0 {
				return nil, fmt.Errorf("catalog: id %q: bad binding tenant %d -> stream %d", b.ID, tenant, s)
			}
			local[tenant] = s
		}
		r.entries[b.ID] = &entry{id: b.ID, local: local, pending: make(map[int]int)}
		r.order = append(r.order, b.ID)
	}
	sort.Slice(r.order, func(i, j int) bool { return r.order[i] < r.order[j] })
	go r.owner()
	return r, nil
}

// NumStreams returns the number of catalog entries.
func (r *Registry) NumStreams() int { return len(r.entries) }

// Model returns the registry's cost model.
func (r *Registry) Model() CostModel { return r.model }

// Lookup returns the tenant's local stream index for id. The binding
// table is immutable, so no owner round trip is needed.
func (r *Registry) Lookup(id ID, tenant int) (int, error) {
	e, ok := r.entries[id]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownID, id)
	}
	s, ok := e.local[tenant]
	if !ok {
		return 0, fmt.Errorf("%w: %q for tenant %d", ErrNotBound, id, tenant)
	}
	return s, nil
}

// IDs returns every catalog ID in sorted order (a copy).
func (r *Registry) IDs() []ID {
	out := make([]ID, len(r.order))
	copy(out, r.order)
	return out
}

// Acquire prices an admission of id by tenant and records a provisional
// reference — also when the tenant already holds a confirmed one (see
// Ticket.Already), so a concurrent departure cannot evict the origin
// while this acquisition is in flight. Every successful Acquire must be
// balanced by exactly one Commit (admission succeeded), Recharge
// (admission under an existing reference), or Release(…, held=false)
// (admission rejected or never ran), each echoing Ticket.OriginPayer.
func (r *Registry) Acquire(id ID, tenant int) (Ticket, error) {
	if _, err := r.Lookup(id, tenant); err != nil {
		return Ticket{}, err
	}
	resp, ok := r.do(request{op: opAcquire, id: id, tenant: tenant})
	if !ok {
		return Ticket{}, ErrClosed
	}
	return resp.ticket, resp.err
}

// AcquireBatch prices admissions of ids by one tenant in a single owner
// round trip, writing one ticket per id into out (whose length must
// equal len(ids)). Each acquisition is priced as if submitted right
// after the one before it — the first fresh acquisition of an
// unoccupied origin in the batch is the origin payer, later ones get
// the shared discount. All bindings are validated up front; on error no
// reference is taken. Every ticket must be balanced exactly like a
// single Acquire's.
func (r *Registry) AcquireBatch(tenant int, ids []ID, out []Ticket) error {
	if len(out) != len(ids) {
		return fmt.Errorf("catalog: AcquireBatch: %d ids but %d ticket slots", len(ids), len(out))
	}
	for _, id := range ids {
		if _, err := r.Lookup(id, tenant); err != nil {
			return err
		}
	}
	if len(ids) == 0 {
		return nil
	}
	if _, ok := r.do(request{op: opAcquireBatch, tenant: tenant, ids: ids, tickets: out}); !ok {
		return ErrClosed
	}
	return nil
}

// Commit confirms a provisionally acquired reference after a successful
// admission, accumulating the accounting (fullCost is the undiscounted
// scalar server cost, chargedCost the discounted one actually charged);
// origin echoes the ticket's OriginPayer flag. It returns the confirmed
// reference count after the commit.
func (r *Registry) Commit(id ID, tenant int, fullCost, chargedCost float64, origin bool) int {
	resp, ok := r.do(request{op: opSettle, settleOp: SettleCommit, id: id, tenant: tenant, full: fullCost, charged: chargedCost, origin: origin})
	if !ok {
		return 0
	}
	return resp.refs
}

// Recharge settles an acquisition whose admission happened under an
// existing confirmed reference — the re-offer of a fleet stream whose
// local subscription the holder had dropped out of band (e.g. a
// local-index departure). The provisional reference is consumed and the
// admission counter and cost totals move; the confirmed count is
// untouched, so Snapshot's origin-cost accounting stays truthful.
// origin echoes the ticket's OriginPayer flag.
func (r *Registry) Recharge(id ID, tenant int, fullCost, chargedCost float64, origin bool) int {
	resp, ok := r.do(request{op: opSettle, settleOp: SettleRecharge, id: id, tenant: tenant, full: fullCost, charged: chargedCost, origin: origin})
	if !ok {
		return 0
	}
	return resp.refs
}

// Release drops a reference: held true releases a confirmed reference
// (a departure), held false a provisional one (a rejected admission,
// which must echo the ticket's OriginPayer flag as origin). It returns
// the confirmed count after the release and whether this release
// evicted the origin (last reference of an occupied entry — fires
// exactly once per occupancy cycle).
func (r *Registry) Release(id ID, tenant int, held, origin bool) (refs int, evicted bool) {
	op := SettleReleasePending
	if held {
		op = SettleRelease
	}
	resp, ok := r.do(request{op: opSettle, settleOp: op, id: id, tenant: tenant, origin: origin})
	if !ok {
		return 0, false
	}
	return resp.refs, resp.evicted
}

// SettleBatch applies a shard worker's ordered settlement run in one
// owner round trip. When out is non-nil its length must equal len(ops)
// and each settlement's outcome is written into the matching slot;
// unknown IDs are no-ops with a zero result (matching the single-op
// methods after Close). Both slices stay caller-owned — the reply is
// the memory barrier — so workers can reuse them across batches.
func (r *Registry) SettleBatch(ops []Settlement, out []SettleResult) error {
	if out != nil && len(out) != len(ops) {
		return fmt.Errorf("catalog: SettleBatch: %d ops but %d result slots", len(ops), len(out))
	}
	if len(ops) == 0 {
		return nil
	}
	if _, ok := r.do(request{op: opSettleBatch, settles: ops, settleOut: out}); !ok {
		return ErrClosed
	}
	return nil
}

// Refs returns the confirmed reference count of id (0 for unknown IDs
// or after Close) without touching any state.
func (r *Registry) Refs(id ID) int {
	resp, ok := r.do(request{op: opRefs, id: id})
	if !ok {
		return 0
	}
	return resp.refs
}

// Snapshot returns the deterministic registry state: entries in sorted
// ID order, holders ascending. Nil after Close.
func (r *Registry) Snapshot() *Snapshot {
	resp, ok := r.do(request{op: opSnapshot})
	if !ok {
		return nil
	}
	return resp.snap
}

// Close stops the owner goroutine. Idempotent; concurrent calls return
// zero values / ErrClosed afterwards.
func (r *Registry) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.done
}

// do sends one request to the owner and waits for its reply. Reply
// channels are pooled: a channel goes back to the pool only after its
// reply was drained, so pooled channels are always empty; on the Close
// race where the reply may still arrive, the channel is abandoned to
// the garbage collector instead.
func (r *Registry) do(req request) (response, bool) {
	reply, _ := r.replies.Get().(chan response)
	if reply == nil {
		reply = make(chan response, 1)
	}
	req.reply = reply
	select {
	case r.reqs <- req:
	case <-r.stop:
		r.replies.Put(reply)
		return response{}, false
	}
	select {
	case resp := <-reply:
		r.replies.Put(reply)
		return resp, true
	case <-r.done:
		// The owner replies (into the buffered channel) to every
		// request it accepts before looping, so when Close races the
		// reply both cases can be ready — prefer the reply: the
		// operation was applied and its result must not be dropped.
		select {
		case resp := <-reply:
			r.replies.Put(reply)
			return resp, true
		default:
			return response{}, false
		}
	}
}

// owner is the single goroutine that owns all reference-count state.
func (r *Registry) owner() {
	defer close(r.done)
	for {
		select {
		case req := <-r.reqs:
			req.reply <- r.handle(req)
		case <-r.stop:
			return
		}
	}
}

// handle applies one request on the owner goroutine.
func (r *Registry) handle(req request) response {
	switch req.op {
	case opSnapshot:
		return response{snap: r.snapshotLocked()}
	case opSetLogger:
		r.logger = req.logger
		return response{}
	case opAcquireBatch:
		for i, id := range req.ids {
			// Bindings were validated by AcquireBatch before the send.
			req.tickets[i] = r.acquire(r.entries[id], req.tenant)
			if r.logger != nil {
				r.logger.LogAcquire(req.tenant, id, req.tickets[i].Scale, req.tickets[i].OriginPayer)
			}
		}
		return response{}
	case opSettleBatch:
		for i, s := range req.settles {
			var res SettleResult
			if e := r.entries[s.ID]; e != nil {
				res = r.settleOne(e, s)
				if r.logger != nil && !req.replay {
					r.logger.LogSettle(s)
				}
			}
			if req.settleOut != nil {
				req.settleOut[i] = res
			}
		}
		return response{}
	case opDangling:
		var out []Settlement
		for _, id := range r.order {
			e := r.entries[id]
			if e.pendingCount == 0 {
				continue
			}
			fullLeft := e.fullPending
			tenants := make([]int, 0, len(e.pending))
			for t, n := range e.pending {
				if n > 0 {
					tenants = append(tenants, t)
				}
			}
			sort.Ints(tenants)
			for _, t := range tenants {
				for k := 0; k < e.pending[t]; k++ {
					s := Settlement{Op: SettleReleasePending, ID: id, Tenant: t}
					if fullLeft > 0 {
						s.Origin = true
						fullLeft--
					}
					out = append(out, s)
				}
			}
		}
		return response{settles: out}
	}
	e := r.entries[req.id]
	if e == nil {
		return response{err: fmt.Errorf("%w: %q", ErrUnknownID, req.id)}
	}
	switch req.op {
	case opRefs:
		return response{refs: len(e.holders)}
	case opAcquire:
		tk := r.acquire(e, req.tenant)
		if r.logger != nil {
			r.logger.LogAcquire(req.tenant, req.id, tk.Scale, tk.OriginPayer)
		}
		return response{ticket: tk}
	case opReplayAcquire:
		// Re-derive the quote from the rebuilt state and verify it against
		// the logged one: the registry's op sequence is deterministic, so
		// a mismatch means the log (or the replay order) is corrupt.
		tk := r.acquire(e, req.tenant)
		if tk.Scale != req.full || tk.OriginPayer != req.origin {
			return response{err: fmt.Errorf(
				"catalog: replay acquire %q tenant %d: logged scale %v origin %v, re-derived %v %v",
				req.id, req.tenant, req.full, req.origin, tk.Scale, tk.OriginPayer)}
		}
		return response{ticket: tk}
	case opSettle:
		s := Settlement{
			Op: req.settleOp, ID: req.id, Tenant: req.tenant,
			Full: req.full, Charged: req.charged, Origin: req.origin,
		}
		res := r.settleOne(e, s)
		if r.logger != nil && !req.replay {
			r.logger.LogSettle(s)
		}
		return response{refs: res.Refs, evicted: res.Evicted}
	}
	return response{err: fmt.Errorf("catalog: unknown op %d", req.op)}
}

// acquire prices one admission on the owner goroutine and records the
// provisional reference.
func (r *Registry) acquire(e *entry, tenant int) Ticket {
	tk := Ticket{
		Local:      e.local[tenant],
		Scale:      1,
		Refs:       len(e.holders),
		SharedWith: e.sharedWith(tenant),
		Already:    e.holds(tenant),
	}
	if !tk.Already {
		// Price from confirmed holders plus in-flight full-priced
		// acquisitions: concurrent first admissions see each other, so
		// exactly one is quoted the full origin cost.
		effective := len(e.holders) + e.fullPending
		tk.Scale = clampScale(r.model.ScaleFor(effective))
		if effective == 0 {
			tk.OriginPayer = true
			e.fullPending++
		}
	}
	e.pending[tenant]++
	e.pendingCount++
	return tk
}

// settleOne applies one settlement on the owner goroutine.
func (r *Registry) settleOne(e *entry, s Settlement) SettleResult {
	switch s.Op {
	case SettleCommit:
		e.dropPending(s.Tenant, s.Origin)
		if !e.holds(s.Tenant) {
			e.insert(s.Tenant)
			e.occupied = true
			e.admissions++
			e.fullCost += s.Full
			e.chargedCost += s.Charged
		}
		return SettleResult{Refs: len(e.holders)}
	case SettleRecharge:
		e.dropPending(s.Tenant, s.Origin)
		e.admissions++
		e.fullCost += s.Full
		e.chargedCost += s.Charged
		return SettleResult{Refs: len(e.holders)}
	case SettleAdopt:
		if !e.holds(s.Tenant) {
			e.insert(s.Tenant)
			e.occupied = true
			e.admissions++
			e.fullCost += s.Full
			e.chargedCost += s.Full
		}
		return SettleResult{Refs: len(e.holders)}
	case SettleRelease:
		// Releasing a reference the tenant does not hold is a no-op:
		// commits and confirmed releases arrive in shard-application
		// order (the cluster worker settles both), so a "release before
		// commit" cannot occur and over-releasing must not poison later
		// admissions.
		e.remove(s.Tenant)
	case SettleReleasePending:
		e.dropPending(s.Tenant, s.Origin)
	}
	res := SettleResult{Refs: len(e.holders)}
	res.Evicted = e.maybeEvict()
	return res
}

// dropPending decrements the tenant's in-flight acquisition count and,
// when the settled acquisition was the prospective origin payer,
// retires the full-priced slot so a later fresh acquisition is quoted
// full price again.
func (e *entry) dropPending(tenant int, origin bool) {
	if e.pending[tenant] > 0 {
		e.pending[tenant]--
		e.pendingCount--
	}
	if origin && e.fullPending > 0 {
		e.fullPending--
	}
}

// maybeEvict fires the origin eviction when an occupied entry fully
// drains (no confirmed holders, no in-flight acquisitions) — exactly
// once per occupancy cycle.
func (e *entry) maybeEvict() bool {
	if e.occupied && len(e.holders) == 0 && e.pendingCount == 0 {
		e.occupied = false
		e.evictions++
		return true
	}
	return false
}

// holds reports whether tenant is a confirmed holder.
func (e *entry) holds(tenant int) bool {
	i := sort.SearchInts(e.holders, tenant)
	return i < len(e.holders) && e.holders[i] == tenant
}

// insert adds tenant to the sorted confirmed holders.
func (e *entry) insert(tenant int) {
	i := sort.SearchInts(e.holders, tenant)
	e.holders = append(e.holders, 0)
	copy(e.holders[i+1:], e.holders[i:])
	e.holders[i] = tenant
}

// remove drops tenant from the confirmed holders (no-op when absent).
func (e *entry) remove(tenant int) {
	i := sort.SearchInts(e.holders, tenant)
	if i < len(e.holders) && e.holders[i] == tenant {
		e.holders = append(e.holders[:i], e.holders[i+1:]...)
	}
}

// sharedWith returns the confirmed holders other than tenant (a copy,
// ascending).
func (e *entry) sharedWith(tenant int) []int {
	var out []int
	for _, t := range e.holders {
		if t != tenant {
			out = append(out, t)
		}
	}
	return out
}

// EntrySnapshot is one catalog stream's state in a Snapshot.
type EntrySnapshot struct {
	// ID is the fleet-wide identity.
	ID ID `json:"id"`
	// Refs is the confirmed reference count; Holders the confirmed
	// tenants, ascending.
	Refs    int   `json:"refs"`
	Holders []int `json:"holders,omitempty"`
	// Admissions and Evictions count confirmed admissions and origin
	// evictions over the registry's lifetime.
	Admissions int `json:"admissions"`
	Evictions  int `json:"evictions"`
	// FullCost is the cumulative undiscounted scalar server cost of all
	// admissions; ChargedCost what was actually charged; Savings the
	// difference (the origin/transcode cost the sharing saved).
	FullCost    float64 `json:"full_cost"`
	ChargedCost float64 `json:"charged_cost"`
	Savings     float64 `json:"savings"`
}

// Snapshot is the deterministic registry state: entries in sorted ID
// order plus fleet-wide totals.
type Snapshot struct {
	// Model is the cost model name.
	Model string `json:"model"`
	// Streams is the number of catalog entries; ActiveShared counts
	// entries currently referenced by at least two tenants.
	Streams      int `json:"streams"`
	ActiveShared int `json:"active_shared"`
	// Admissions / Evictions are lifetime totals over all entries.
	Admissions int `json:"admissions"`
	Evictions  int `json:"evictions"`
	// FullCost / ChargedCost / OriginSavings are the fleet-wide
	// accounting totals (origin cost units: scalar sums of server cost
	// vectors).
	FullCost      float64 `json:"full_cost"`
	ChargedCost   float64 `json:"charged_cost"`
	OriginSavings float64 `json:"origin_savings"`
	// Entries holds one snapshot per catalog stream, sorted by ID.
	Entries []EntrySnapshot `json:"entries"`
}

// snapshotLocked builds the snapshot on the owner goroutine.
func (r *Registry) snapshotLocked() *Snapshot {
	snap := &Snapshot{Model: r.model.Name(), Streams: len(r.order)}
	for _, id := range r.order {
		e := r.entries[id]
		es := EntrySnapshot{
			ID:          e.id,
			Refs:        len(e.holders),
			Holders:     append([]int(nil), e.holders...),
			Admissions:  e.admissions,
			Evictions:   e.evictions,
			FullCost:    e.fullCost,
			ChargedCost: e.chargedCost,
			Savings:     e.fullCost - e.chargedCost,
		}
		snap.Entries = append(snap.Entries, es)
		if es.Refs >= 2 {
			snap.ActiveShared++
		}
		snap.Admissions += es.Admissions
		snap.Evictions += es.Evictions
		snap.FullCost += es.FullCost
		snap.ChargedCost += es.ChargedCost
	}
	snap.OriginSavings = snap.FullCost - snap.ChargedCost
	return snap
}

// Render returns the snapshot as a deterministic text table.
func (s *Snapshot) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "catalog: %d streams, model %s\n", s.Streams, s.Model)
	fmt.Fprintf(&sb, "  shared     %d streams referenced by 2+ tenants\n", s.ActiveShared)
	fmt.Fprintf(&sb, "  admissions %d (%d evictions)\n", s.Admissions, s.Evictions)
	fmt.Fprintf(&sb, "  origin     %.3f full, %.3f charged, %.3f saved\n",
		s.FullCost, s.ChargedCost, s.OriginSavings)
	sb.WriteString("\ncatalog-id            refs  holders           admits  evicts  saved\n")
	for _, e := range s.Entries {
		holders := "-"
		if len(e.Holders) > 0 {
			holders = strings.Trim(strings.Join(strings.Fields(fmt.Sprint(e.Holders)), ","), "[]")
		}
		fmt.Fprintf(&sb, "%-20s  %4d  %-16s  %6d  %6d  %.3f\n",
			string(e.ID), e.Refs, holders, e.Admissions, e.Evictions, e.Savings)
	}
	return sb.String()
}
