package catalog

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func twoTenantRegistry(t *testing.T, model CostModel) *Registry {
	t.Helper()
	r, err := NewRegistry([]Binding{
		{ID: "espn", Local: map[int]int{0: 3, 1: 7}},
		{ID: "cnn", Local: map[int]int{0: 1}},
	}, model)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

func TestRegistryValidation(t *testing.T) {
	if _, err := NewRegistry([]Binding{{ID: ""}}, nil); err == nil {
		t.Fatal("empty id accepted")
	}
	if _, err := NewRegistry([]Binding{
		{ID: "x", Local: map[int]int{0: 0}},
		{ID: "x", Local: map[int]int{1: 0}},
	}, nil); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if _, err := NewRegistry([]Binding{{ID: "x", Local: map[int]int{-1: 0}}}, nil); err == nil {
		t.Fatal("negative tenant accepted")
	}
	if _, err := NewRegistry([]Binding{{ID: "x", Local: map[int]int{0: -2}}}, nil); err == nil {
		t.Fatal("negative stream accepted")
	}
}

func TestRegistryLookupErrors(t *testing.T) {
	r := twoTenantRegistry(t, nil)
	if _, err := r.Acquire("nope", 0); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("unknown id: %v", err)
	}
	if _, err := r.Acquire("cnn", 1); !errors.Is(err, ErrNotBound) {
		t.Fatalf("unbound tenant: %v", err)
	}
	if s, err := r.Lookup("espn", 1); err != nil || s != 7 {
		t.Fatalf("Lookup = %d, %v; want 7, nil", s, err)
	}
}

// TestSharedOriginLifecycle walks one full occupancy cycle under the
// SharedOrigin model: first admitter full price, second the fraction,
// departures refund in order, last departure evicts exactly once.
func TestSharedOriginLifecycle(t *testing.T) {
	r := twoTenantRegistry(t, SharedOrigin{ReplicationFraction: 0.25})

	tk0, err := r.Acquire("espn", 0)
	if err != nil {
		t.Fatal(err)
	}
	if tk0.Scale != 1 || tk0.Refs != 0 || tk0.Local != 3 || len(tk0.SharedWith) != 0 {
		t.Fatalf("first ticket = %+v", tk0)
	}
	if !tk0.OriginPayer {
		t.Fatalf("first ticket not origin payer: %+v", tk0)
	}
	if refs := r.Commit("espn", 0, 10, 10, tk0.OriginPayer); refs != 1 {
		t.Fatalf("refs after first commit = %d, want 1", refs)
	}

	tk1, err := r.Acquire("espn", 1)
	if err != nil {
		t.Fatal(err)
	}
	if tk1.Scale != 0.25 || tk1.Refs != 1 || tk1.Local != 7 {
		t.Fatalf("second ticket = %+v", tk1)
	}
	if len(tk1.SharedWith) != 1 || tk1.SharedWith[0] != 0 {
		t.Fatalf("SharedWith = %v, want [0]", tk1.SharedWith)
	}
	if tk1.OriginPayer {
		t.Fatalf("discounted ticket marked origin payer: %+v", tk1)
	}
	if refs := r.Commit("espn", 1, 10, 2.5, tk1.OriginPayer); refs != 2 {
		t.Fatalf("refs after second commit = %d, want 2", refs)
	}

	snap := r.Snapshot()
	if snap.ActiveShared != 1 || snap.Admissions != 2 || snap.OriginSavings != 7.5 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if e := snap.Entries[1]; e.ID != "espn" || e.Refs != 2 || e.Savings != 7.5 {
		t.Fatalf("espn entry = %+v (entries sorted by ID: cnn, espn)", e)
	}

	// The full payer departs first; the survivor keeps its discount
	// (charge fixed at admission time) and the origin stays up.
	if refs, evicted := r.Release("espn", 0, true, false); refs != 1 || evicted {
		t.Fatalf("first release = %d refs, evicted %v", refs, evicted)
	}
	// Re-offer by the remaining holder is flagged at full price, and
	// (like every acquisition) takes a provisional reference that must
	// be balanced — here by the rejection release.
	again, err := r.Acquire("espn", 1)
	if err != nil || !again.Already || again.Scale != 1 {
		t.Fatalf("re-acquire by holder = %+v, %v", again, err)
	}
	if _, evicted := r.Release("espn", 1, false, again.OriginPayer); evicted {
		t.Fatal("balancing a holder re-acquire must not evict (holder remains)")
	}
	// Last departure evicts, exactly once.
	if refs, evicted := r.Release("espn", 1, true, false); refs != 0 || !evicted {
		t.Fatalf("last release = %d refs, evicted %v", refs, evicted)
	}
	if _, evicted := r.Release("espn", 1, true, false); evicted {
		t.Fatal("eviction double-fired on a stray release")
	}
	snap = r.Snapshot()
	if e := snap.Entries[1]; e.Refs != 0 || e.Evictions != 1 {
		t.Fatalf("after drain: %+v", e)
	}
	// A fresh cycle starts at full price again.
	tk, err := r.Acquire("espn", 1)
	if err != nil || tk.Scale != 1 || tk.Refs != 0 {
		t.Fatalf("post-eviction ticket = %+v, %v", tk, err)
	}
}

// TestRejectedAdmissionReleasesPending: an Acquire balanced by a
// Release(held=false) leaves no trace, and a pending acquisition holds
// the origin open so a concurrent last-departure cannot evict an
// admission in flight out from under it.
func TestRejectedAdmissionReleasesPending(t *testing.T) {
	r := twoTenantRegistry(t, SharedOrigin{})

	tk0, err := r.Acquire("espn", 0)
	if err != nil {
		t.Fatal(err)
	}
	r.Commit("espn", 0, 10, 10, tk0.OriginPayer)
	// Tenant 1's admission is in flight while tenant 0 departs: no
	// eviction yet (pending holds the origin open).
	tk1, err := r.Acquire("espn", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, evicted := r.Release("espn", 0, true, false); evicted {
		t.Fatal("evicted with an admission in flight")
	}
	// The in-flight admission is rejected: now the origin drains.
	if _, evicted := r.Release("espn", 1, false, tk1.OriginPayer); !evicted {
		t.Fatal("expected eviction once pending drained")
	}
}

func TestIsolatedScaleAlwaysOne(t *testing.T) {
	m := Isolated{}
	for refs := 0; refs < 5; refs++ {
		if m.ScaleFor(refs) != 1 {
			t.Fatalf("Isolated.ScaleFor(%d) != 1", refs)
		}
	}
	s := SharedOrigin{} // zero value: default fraction
	if s.ScaleFor(0) != 1 || s.ScaleFor(1) != DefaultReplicationFraction {
		t.Fatalf("SharedOrigin zero value: %v, %v", s.ScaleFor(0), s.ScaleFor(1))
	}
}

func TestRegistryCloseIdempotent(t *testing.T) {
	r, err := NewRegistry([]Binding{{ID: "x", Local: map[int]int{0: 0}}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	r.Close()
	if _, err := r.Acquire("x", 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("acquire after close: %v", err)
	}
	if snap := r.Snapshot(); snap != nil {
		t.Fatalf("snapshot after close: %+v", snap)
	}
}

// TestRegistryConcurrentCycles hammers the owner with full
// acquire/commit/release cycles from many goroutines (run under -race):
// refcounts must end at zero, every occupancy cycle must fire exactly
// one eviction, and the accounting must balance.
func TestRegistryConcurrentCycles(t *testing.T) {
	const tenants, rounds = 8, 50
	local := make(map[int]int, tenants)
	for ti := 0; ti < tenants; ti++ {
		local[ti] = 0
	}
	r, err := NewRegistry([]Binding{{ID: "hot", Local: local}}, SharedOrigin{ReplicationFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	var wg sync.WaitGroup
	var mu sync.Mutex
	admissions, evictions := 0, 0
	for ti := 0; ti < tenants; ti++ {
		wg.Add(1)
		go func(tenant int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				tk, err := r.Acquire("hot", tenant)
				if err != nil {
					t.Error(err)
					return
				}
				if tk.Already {
					t.Errorf("tenant %d: impossible Already (it holds nothing)", tenant)
					return
				}
				if round%3 == 0 {
					// Simulate a rejected admission. Its release can be
					// the one that drains an occupied origin (the last
					// confirmed holder may already have departed), so it
					// counts toward the eviction tally too.
					if _, evicted := r.Release("hot", tenant, false, tk.OriginPayer); evicted {
						mu.Lock()
						evictions++
						mu.Unlock()
					}
					continue
				}
				r.Commit("hot", tenant, 4, tk.Scale*4, tk.OriginPayer)
				mu.Lock()
				admissions++
				mu.Unlock()
				_, evicted := r.Release("hot", tenant, true, false)
				if evicted {
					mu.Lock()
					evictions++
					mu.Unlock()
				}
			}
		}(ti)
	}
	wg.Wait()

	snap := r.Snapshot()
	e := snap.Entries[0]
	if e.Refs != 0 || len(e.Holders) != 0 {
		t.Fatalf("refcount leaked: %+v", e)
	}
	if e.Admissions != admissions {
		t.Fatalf("admissions = %d, callers saw %d", e.Admissions, admissions)
	}
	if e.Evictions != evictions {
		t.Fatalf("evictions = %d, callers saw %d (double- or under-fire)", e.Evictions, evictions)
	}
	if e.Evictions < 1 || e.Evictions > e.Admissions {
		t.Fatalf("evictions %d outside [1, %d]", e.Evictions, e.Admissions)
	}
	if e.Savings < 0 || e.ChargedCost > e.FullCost {
		t.Fatalf("accounting: %+v", e)
	}
	// After the storm the entry must admit a fresh cycle at full price.
	tk, err := r.Acquire("hot", 0)
	if err != nil || tk.Scale != 1 {
		t.Fatalf("post-storm ticket = %+v, %v", tk, err)
	}
	r.Release("hot", 0, false, tk.OriginPayer)
}

func TestSnapshotRenderDeterministic(t *testing.T) {
	r := twoTenantRegistry(t, SharedOrigin{ReplicationFraction: 0.25})
	tk, err := r.Acquire("espn", 0)
	if err != nil {
		t.Fatal(err)
	}
	r.Commit("espn", 0, 10, 10, tk.OriginPayer)
	a, b := r.Snapshot().Render(), r.Snapshot().Render()
	if a != b {
		t.Fatalf("render not deterministic:\n%s\nvs\n%s", a, b)
	}
	for _, want := range []string{"catalog: 2 streams", "shared-origin", "espn", "cnn"} {
		if !strings.Contains(a, want) {
			t.Fatalf("render missing %q:\n%s", want, a)
		}
	}
}

func ExampleSharedOrigin() {
	m := SharedOrigin{ReplicationFraction: 0.2}
	fmt.Println(m.ScaleFor(0), m.ScaleFor(1), m.ScaleFor(7))
	// Output: 1 0.2 0.2
}

// badModel violates the ScaleFor contract; the registry must clamp it
// to full price rather than hand the serving path an unusable scale.
type badModel struct{ scale float64 }

func (badModel) Name() string           { return "bad" }
func (m badModel) ScaleFor(int) float64 { return m.scale }

func TestScaleForContractClamped(t *testing.T) {
	for _, scale := range []float64{0, -1, 2.5} {
		r, err := NewRegistry([]Binding{{ID: "x", Local: map[int]int{0: 0}}}, badModel{scale})
		if err != nil {
			t.Fatal(err)
		}
		tk, err := r.Acquire("x", 0)
		if err != nil {
			t.Fatal(err)
		}
		if tk.Scale != 1 {
			t.Fatalf("ScaleFor %v not clamped: ticket scale %v", scale, tk.Scale)
		}
		r.Release("x", 0, false, tk.OriginPayer)
		r.Close()
	}
}

// TestStrayHeldReleaseIsNoOp pins the over-release contract the
// cluster's install-reconcile path relies on: a confirmed Release for a
// tenant that holds nothing — even one with an acquisition in flight —
// must leave no trace and must not poison that acquisition's later
// Commit.
func TestStrayHeldReleaseIsNoOp(t *testing.T) {
	r := twoTenantRegistry(t, SharedOrigin{ReplicationFraction: 0.25})

	tk, err := r.Acquire("espn", 0)
	if err != nil || tk.Scale != 1 {
		t.Fatalf("acquire = %+v, %v", tk, err)
	}
	// Stray confirmed release while the acquisition is in flight: no
	// refs, no eviction (pending gates it), and crucially no debt.
	if refs, evicted := r.Release("espn", 0, true, false); refs != 0 || evicted {
		t.Fatalf("stray release = %d refs, evicted %v", refs, evicted)
	}
	// The in-flight admission commits normally.
	if refs := r.Commit("espn", 0, 10, 10, tk.OriginPayer); refs != 1 {
		t.Fatalf("commit after stray release = %d refs, want 1", refs)
	}
	if refs, evicted := r.Release("espn", 0, true, false); refs != 0 || !evicted {
		t.Fatalf("real release = %d refs, evicted %v", refs, evicted)
	}
	snap := r.Snapshot()
	if e := snap.Entries[1]; e.Refs != 0 || e.Admissions != 1 || e.Evictions != 1 {
		t.Fatalf("after cycle: %+v", e)
	}
}

// TestConcurrentFirstAdmissionSingleOriginPayer pins the carried
// pricing bugfix: when many tenants race to admit a cold stream, the
// registry must quote exactly one of them the full origin cost — the
// in-flight full-priced acquisition counts toward the sharing degree
// of everyone quoted after it, even before the payer commits.
func TestConcurrentFirstAdmissionSingleOriginPayer(t *testing.T) {
	const tenants = 16
	local := make(map[int]int, tenants)
	for ti := 0; ti < tenants; ti++ {
		local[ti] = 0
	}
	r, err := NewRegistry([]Binding{{ID: "cold", Local: local}}, SharedOrigin{ReplicationFraction: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// All acquisitions race before any settlement; every one is priced
	// against a registry that has seen only pending state.
	tickets := make([]Ticket, tenants)
	var start, wg sync.WaitGroup
	start.Add(1)
	for ti := 0; ti < tenants; ti++ {
		wg.Add(1)
		go func(tenant int) {
			defer wg.Done()
			start.Wait()
			tk, err := r.Acquire("cold", tenant)
			if err != nil {
				t.Error(err)
				return
			}
			tickets[tenant] = tk
		}(ti)
	}
	start.Done()
	wg.Wait()

	payers := 0
	for ti, tk := range tickets {
		if tk.OriginPayer {
			payers++
			if tk.Scale != 1 {
				t.Fatalf("tenant %d: origin payer quoted scale %v, want 1", ti, tk.Scale)
			}
		} else if tk.Scale != 0.25 {
			t.Fatalf("tenant %d: non-payer quoted scale %v, want 0.25", ti, tk.Scale)
		}
	}
	if payers != 1 {
		t.Fatalf("%d origin payers, want exactly 1", payers)
	}

	// Everyone commits at the quoted price: total charged is one full
	// origin cost plus the replication fraction for each follower.
	const full = 8.0
	for ti, tk := range tickets {
		r.Commit("cold", ti, full, tk.Scale*full, tk.OriginPayer)
	}
	snap := r.Snapshot()
	e := snap.Entries[0]
	want := full + float64(tenants-1)*0.25*full
	if e.ChargedCost != want {
		t.Fatalf("charged = %v, want %v (exactly one full origin cost)", e.ChargedCost, want)
	}
}

// TestOriginPayerBailRequotesFull pins the quote-honoring stance: when
// the would-be origin payer bails (rejected admission), already-issued
// discounted quotes keep their price, and the next fresh acquisition is
// quoted full price again.
func TestOriginPayerBailRequotesFull(t *testing.T) {
	local := map[int]int{0: 0, 1: 0, 2: 0}
	r, err := NewRegistry([]Binding{{ID: "cold", Local: local}}, SharedOrigin{ReplicationFraction: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	payer, err := r.Acquire("cold", 0)
	if err != nil || !payer.OriginPayer || payer.Scale != 1 {
		t.Fatalf("payer ticket = %+v, %v", payer, err)
	}
	follower, err := r.Acquire("cold", 1)
	if err != nil || follower.OriginPayer || follower.Scale != 0.25 {
		t.Fatalf("follower ticket = %+v, %v", follower, err)
	}
	// The payer bails; the origin slot opens again.
	if _, evicted := r.Release("cold", 0, false, payer.OriginPayer); evicted {
		t.Fatal("bail of a pending acquisition evicted")
	}
	requote, err := r.Acquire("cold", 2)
	if err != nil || !requote.OriginPayer || requote.Scale != 1 {
		t.Fatalf("post-bail ticket = %+v, %v (full price must be requoted)", requote, err)
	}
	// The follower's discounted quote is honored regardless.
	if refs := r.Commit("cold", 1, 8, follower.Scale*8, follower.OriginPayer); refs != 1 {
		t.Fatalf("follower commit refs = %d, want 1", refs)
	}
	r.Commit("cold", 2, 8, requote.Scale*8, requote.OriginPayer)
	e := r.Snapshot().Entries[0]
	if want := 8 + 0.25*8.0; e.ChargedCost != want {
		t.Fatalf("charged = %v, want %v", e.ChargedCost, want)
	}
}

// TestAcquireBatch pins the pipelined batch-pricing semantics: each
// acquisition in the batch is priced as if the ones before it were
// already in flight, and the whole batch is one owner round trip.
func TestAcquireBatch(t *testing.T) {
	r, err := NewRegistry([]Binding{
		{ID: "a", Local: map[int]int{0: 1}},
		{ID: "b", Local: map[int]int{0: 2}},
	}, SharedOrigin{ReplicationFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Length mismatch and unknown ids fail before any state moves.
	if err := r.AcquireBatch(0, []ID{"a"}, make([]Ticket, 2)); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := r.AcquireBatch(0, []ID{"a", "nope"}, make([]Ticket, 2)); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("unknown id in batch: %v", err)
	}
	if r.Refs("a") != 0 {
		t.Fatal("failed batch leaked a pending acquisition")
	}
	if err := r.AcquireBatch(0, nil, nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}

	// The same ID twice in one batch: the second acquisition sees the
	// first's in-flight full-priced reference and is quoted discounted.
	tks := make([]Ticket, 3)
	if err := r.AcquireBatch(0, []ID{"a", "a", "b"}, tks); err != nil {
		t.Fatal(err)
	}
	if !tks[0].OriginPayer || tks[0].Scale != 1 {
		t.Fatalf("first acquisition = %+v, want origin payer at full price", tks[0])
	}
	if tks[1].OriginPayer || tks[1].Scale != 0.5 {
		t.Fatalf("second acquisition = %+v, want discounted follower", tks[1])
	}
	if !tks[2].OriginPayer || tks[2].Local != 2 {
		t.Fatalf("third acquisition = %+v, want fresh origin payer for b", tks[2])
	}

	// Settle all three in one round trip; out slots line up with ops.
	ops := []Settlement{
		{Op: SettleCommit, ID: "a", Tenant: 0, Full: 4, Charged: 4, Origin: tks[0].OriginPayer},
		{Op: SettleReleasePending, ID: "a", Tenant: 0, Origin: tks[1].OriginPayer},
		{Op: SettleCommit, ID: "b", Tenant: 0, Full: 6, Charged: 6, Origin: tks[2].OriginPayer},
	}
	out := make([]SettleResult, len(ops))
	if err := r.SettleBatch(ops, out); err != nil {
		t.Fatal(err)
	}
	if out[0].Refs != 1 || out[0].Evicted {
		t.Fatalf("commit a settled as %+v", out[0])
	}
	if out[1].Refs != 1 || out[1].Evicted {
		t.Fatalf("release-pending a settled as %+v (holder must survive)", out[1])
	}
	if out[2].Refs != 1 {
		t.Fatalf("commit b settled as %+v", out[2])
	}

	// SettleBatch with nil out is allowed: fire-and-forget settlement.
	if err := r.SettleBatch([]Settlement{
		{Op: SettleRelease, ID: "a", Tenant: 0},
		{Op: SettleRelease, ID: "b", Tenant: 0},
	}, nil); err != nil {
		t.Fatal(err)
	}
	if r.Refs("a") != 0 || r.Refs("b") != 0 {
		t.Fatal("refs leaked after batch release")
	}
	snap := r.Snapshot()
	for _, e := range snap.Entries {
		if e.Evictions != 1 {
			t.Fatalf("entry %s evictions = %d, want 1", e.ID, e.Evictions)
		}
	}
}

// TestSettleAdopt pins the install-reconcile settlement: an adopt picks
// up a confirmed reference at full price without a pending acquisition.
func TestSettleAdopt(t *testing.T) {
	r := twoTenantRegistry(t, SharedOrigin{ReplicationFraction: 0.25})
	out := make([]SettleResult, 1)
	if err := r.SettleBatch([]Settlement{
		{Op: SettleAdopt, ID: "espn", Tenant: 0, Full: 10, Charged: 10},
	}, out); err != nil {
		t.Fatal(err)
	}
	if out[0].Refs != 1 {
		t.Fatalf("adopt refs = %d, want 1", out[0].Refs)
	}
	// A follower is now priced against the adopted reference.
	tk, err := r.Acquire("espn", 1)
	if err != nil || tk.Scale != 0.25 {
		t.Fatalf("follower after adopt = %+v, %v", tk, err)
	}
	r.Release("espn", 1, false, tk.OriginPayer)
	if refs, evicted := r.Release("espn", 0, true, false); refs != 0 || !evicted {
		t.Fatalf("adopted ref release = %d, %v", refs, evicted)
	}
}
