package catalog

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func twoTenantRegistry(t *testing.T, model CostModel) *Registry {
	t.Helper()
	r, err := NewRegistry([]Binding{
		{ID: "espn", Local: map[int]int{0: 3, 1: 7}},
		{ID: "cnn", Local: map[int]int{0: 1}},
	}, model)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

func TestRegistryValidation(t *testing.T) {
	if _, err := NewRegistry([]Binding{{ID: ""}}, nil); err == nil {
		t.Fatal("empty id accepted")
	}
	if _, err := NewRegistry([]Binding{
		{ID: "x", Local: map[int]int{0: 0}},
		{ID: "x", Local: map[int]int{1: 0}},
	}, nil); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if _, err := NewRegistry([]Binding{{ID: "x", Local: map[int]int{-1: 0}}}, nil); err == nil {
		t.Fatal("negative tenant accepted")
	}
	if _, err := NewRegistry([]Binding{{ID: "x", Local: map[int]int{0: -2}}}, nil); err == nil {
		t.Fatal("negative stream accepted")
	}
}

func TestRegistryLookupErrors(t *testing.T) {
	r := twoTenantRegistry(t, nil)
	if _, err := r.Acquire("nope", 0); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("unknown id: %v", err)
	}
	if _, err := r.Acquire("cnn", 1); !errors.Is(err, ErrNotBound) {
		t.Fatalf("unbound tenant: %v", err)
	}
	if s, err := r.Lookup("espn", 1); err != nil || s != 7 {
		t.Fatalf("Lookup = %d, %v; want 7, nil", s, err)
	}
}

// TestSharedOriginLifecycle walks one full occupancy cycle under the
// SharedOrigin model: first admitter full price, second the fraction,
// departures refund in order, last departure evicts exactly once.
func TestSharedOriginLifecycle(t *testing.T) {
	r := twoTenantRegistry(t, SharedOrigin{ReplicationFraction: 0.25})

	tk0, err := r.Acquire("espn", 0)
	if err != nil {
		t.Fatal(err)
	}
	if tk0.Scale != 1 || tk0.Refs != 0 || tk0.Local != 3 || len(tk0.SharedWith) != 0 {
		t.Fatalf("first ticket = %+v", tk0)
	}
	if refs := r.Commit("espn", 0, 10, 10); refs != 1 {
		t.Fatalf("refs after first commit = %d, want 1", refs)
	}

	tk1, err := r.Acquire("espn", 1)
	if err != nil {
		t.Fatal(err)
	}
	if tk1.Scale != 0.25 || tk1.Refs != 1 || tk1.Local != 7 {
		t.Fatalf("second ticket = %+v", tk1)
	}
	if len(tk1.SharedWith) != 1 || tk1.SharedWith[0] != 0 {
		t.Fatalf("SharedWith = %v, want [0]", tk1.SharedWith)
	}
	if refs := r.Commit("espn", 1, 10, 2.5); refs != 2 {
		t.Fatalf("refs after second commit = %d, want 2", refs)
	}

	snap := r.Snapshot()
	if snap.ActiveShared != 1 || snap.Admissions != 2 || snap.OriginSavings != 7.5 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if e := snap.Entries[1]; e.ID != "espn" || e.Refs != 2 || e.Savings != 7.5 {
		t.Fatalf("espn entry = %+v (entries sorted by ID: cnn, espn)", e)
	}

	// The full payer departs first; the survivor keeps its discount
	// (charge fixed at admission time) and the origin stays up.
	if refs, evicted := r.Release("espn", 0, true); refs != 1 || evicted {
		t.Fatalf("first release = %d refs, evicted %v", refs, evicted)
	}
	// Re-offer by the remaining holder is flagged at full price, and
	// (like every acquisition) takes a provisional reference that must
	// be balanced — here by the rejection release.
	again, err := r.Acquire("espn", 1)
	if err != nil || !again.Already || again.Scale != 1 {
		t.Fatalf("re-acquire by holder = %+v, %v", again, err)
	}
	if _, evicted := r.Release("espn", 1, false); evicted {
		t.Fatal("balancing a holder re-acquire must not evict (holder remains)")
	}
	// Last departure evicts, exactly once.
	if refs, evicted := r.Release("espn", 1, true); refs != 0 || !evicted {
		t.Fatalf("last release = %d refs, evicted %v", refs, evicted)
	}
	if _, evicted := r.Release("espn", 1, true); evicted {
		t.Fatal("eviction double-fired on a stray release")
	}
	snap = r.Snapshot()
	if e := snap.Entries[1]; e.Refs != 0 || e.Evictions != 1 {
		t.Fatalf("after drain: %+v", e)
	}
	// A fresh cycle starts at full price again.
	tk, err := r.Acquire("espn", 1)
	if err != nil || tk.Scale != 1 || tk.Refs != 0 {
		t.Fatalf("post-eviction ticket = %+v, %v", tk, err)
	}
}

// TestRejectedAdmissionReleasesPending: an Acquire balanced by a
// Release(held=false) leaves no trace, and a pending acquisition holds
// the origin open so a concurrent last-departure cannot evict an
// admission in flight out from under it.
func TestRejectedAdmissionReleasesPending(t *testing.T) {
	r := twoTenantRegistry(t, SharedOrigin{})

	if _, err := r.Acquire("espn", 0); err != nil {
		t.Fatal(err)
	}
	r.Commit("espn", 0, 10, 10)
	// Tenant 1's admission is in flight while tenant 0 departs: no
	// eviction yet (pending holds the origin open).
	if _, err := r.Acquire("espn", 1); err != nil {
		t.Fatal(err)
	}
	if _, evicted := r.Release("espn", 0, true); evicted {
		t.Fatal("evicted with an admission in flight")
	}
	// The in-flight admission is rejected: now the origin drains.
	if _, evicted := r.Release("espn", 1, false); !evicted {
		t.Fatal("expected eviction once pending drained")
	}
}

func TestIsolatedScaleAlwaysOne(t *testing.T) {
	m := Isolated{}
	for refs := 0; refs < 5; refs++ {
		if m.ScaleFor(refs) != 1 {
			t.Fatalf("Isolated.ScaleFor(%d) != 1", refs)
		}
	}
	s := SharedOrigin{} // zero value: default fraction
	if s.ScaleFor(0) != 1 || s.ScaleFor(1) != DefaultReplicationFraction {
		t.Fatalf("SharedOrigin zero value: %v, %v", s.ScaleFor(0), s.ScaleFor(1))
	}
}

func TestRegistryCloseIdempotent(t *testing.T) {
	r, err := NewRegistry([]Binding{{ID: "x", Local: map[int]int{0: 0}}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	r.Close()
	if _, err := r.Acquire("x", 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("acquire after close: %v", err)
	}
	if snap := r.Snapshot(); snap != nil {
		t.Fatalf("snapshot after close: %+v", snap)
	}
}

// TestRegistryConcurrentCycles hammers the owner with full
// acquire/commit/release cycles from many goroutines (run under -race):
// refcounts must end at zero, every occupancy cycle must fire exactly
// one eviction, and the accounting must balance.
func TestRegistryConcurrentCycles(t *testing.T) {
	const tenants, rounds = 8, 50
	local := make(map[int]int, tenants)
	for ti := 0; ti < tenants; ti++ {
		local[ti] = 0
	}
	r, err := NewRegistry([]Binding{{ID: "hot", Local: local}}, SharedOrigin{ReplicationFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	var wg sync.WaitGroup
	var mu sync.Mutex
	admissions, evictions := 0, 0
	for ti := 0; ti < tenants; ti++ {
		wg.Add(1)
		go func(tenant int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				tk, err := r.Acquire("hot", tenant)
				if err != nil {
					t.Error(err)
					return
				}
				if tk.Already {
					t.Errorf("tenant %d: impossible Already (it holds nothing)", tenant)
					return
				}
				if round%3 == 0 {
					// Simulate a rejected admission. Its release can be
					// the one that drains an occupied origin (the last
					// confirmed holder may already have departed), so it
					// counts toward the eviction tally too.
					if _, evicted := r.Release("hot", tenant, false); evicted {
						mu.Lock()
						evictions++
						mu.Unlock()
					}
					continue
				}
				r.Commit("hot", tenant, 4, tk.Scale*4)
				mu.Lock()
				admissions++
				mu.Unlock()
				_, evicted := r.Release("hot", tenant, true)
				if evicted {
					mu.Lock()
					evictions++
					mu.Unlock()
				}
			}
		}(ti)
	}
	wg.Wait()

	snap := r.Snapshot()
	e := snap.Entries[0]
	if e.Refs != 0 || len(e.Holders) != 0 {
		t.Fatalf("refcount leaked: %+v", e)
	}
	if e.Admissions != admissions {
		t.Fatalf("admissions = %d, callers saw %d", e.Admissions, admissions)
	}
	if e.Evictions != evictions {
		t.Fatalf("evictions = %d, callers saw %d (double- or under-fire)", e.Evictions, evictions)
	}
	if e.Evictions < 1 || e.Evictions > e.Admissions {
		t.Fatalf("evictions %d outside [1, %d]", e.Evictions, e.Admissions)
	}
	if e.Savings < 0 || e.ChargedCost > e.FullCost {
		t.Fatalf("accounting: %+v", e)
	}
	// After the storm the entry must admit a fresh cycle at full price.
	tk, err := r.Acquire("hot", 0)
	if err != nil || tk.Scale != 1 {
		t.Fatalf("post-storm ticket = %+v, %v", tk, err)
	}
	r.Release("hot", 0, false)
}

func TestSnapshotRenderDeterministic(t *testing.T) {
	r := twoTenantRegistry(t, SharedOrigin{ReplicationFraction: 0.25})
	if _, err := r.Acquire("espn", 0); err != nil {
		t.Fatal(err)
	}
	r.Commit("espn", 0, 10, 10)
	a, b := r.Snapshot().Render(), r.Snapshot().Render()
	if a != b {
		t.Fatalf("render not deterministic:\n%s\nvs\n%s", a, b)
	}
	for _, want := range []string{"catalog: 2 streams", "shared-origin", "espn", "cnn"} {
		if !strings.Contains(a, want) {
			t.Fatalf("render missing %q:\n%s", want, a)
		}
	}
}

func ExampleSharedOrigin() {
	m := SharedOrigin{ReplicationFraction: 0.2}
	fmt.Println(m.ScaleFor(0), m.ScaleFor(1), m.ScaleFor(7))
	// Output: 1 0.2 0.2
}

// badModel violates the ScaleFor contract; the registry must clamp it
// to full price rather than hand the serving path an unusable scale.
type badModel struct{ scale float64 }

func (badModel) Name() string           { return "bad" }
func (m badModel) ScaleFor(int) float64 { return m.scale }

func TestScaleForContractClamped(t *testing.T) {
	for _, scale := range []float64{0, -1, 2.5} {
		r, err := NewRegistry([]Binding{{ID: "x", Local: map[int]int{0: 0}}}, badModel{scale})
		if err != nil {
			t.Fatal(err)
		}
		tk, err := r.Acquire("x", 0)
		if err != nil {
			t.Fatal(err)
		}
		if tk.Scale != 1 {
			t.Fatalf("ScaleFor %v not clamped: ticket scale %v", scale, tk.Scale)
		}
		r.Release("x", 0, false)
		r.Close()
	}
}

// TestStrayHeldReleaseIsNoOp pins the over-release contract the
// cluster's install-reconcile path relies on: a confirmed Release for a
// tenant that holds nothing — even one with an acquisition in flight —
// must leave no trace and must not poison that acquisition's later
// Commit.
func TestStrayHeldReleaseIsNoOp(t *testing.T) {
	r := twoTenantRegistry(t, SharedOrigin{ReplicationFraction: 0.25})

	tk, err := r.Acquire("espn", 0)
	if err != nil || tk.Scale != 1 {
		t.Fatalf("acquire = %+v, %v", tk, err)
	}
	// Stray confirmed release while the acquisition is in flight: no
	// refs, no eviction (pending gates it), and crucially no debt.
	if refs, evicted := r.Release("espn", 0, true); refs != 0 || evicted {
		t.Fatalf("stray release = %d refs, evicted %v", refs, evicted)
	}
	// The in-flight admission commits normally.
	if refs := r.Commit("espn", 0, 10, 10); refs != 1 {
		t.Fatalf("commit after stray release = %d refs, want 1", refs)
	}
	if refs, evicted := r.Release("espn", 0, true); refs != 0 || !evicted {
		t.Fatalf("real release = %d refs, evicted %v", refs, evicted)
	}
	snap := r.Snapshot()
	if e := snap.Entries[1]; e.Refs != 0 || e.Admissions != 1 || e.Evictions != 1 {
		t.Fatalf("after cycle: %+v", e)
	}
}
