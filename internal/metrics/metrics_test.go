package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Add(2)
	c.Inc()
	c.Add(-5) // ignored
	if got := c.Value(); got != 3 {
		t.Fatalf("Value() = %v, want 3", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Fatalf("Value() = %v, want 6", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("Value() = %v, want 8000", got)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram([]float64{1, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0.5, 1.5, 1.7, 3, 10} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("Count() = %d, want 5", got)
	}
	if got := h.Sum(); got != 16.7 {
		t.Fatalf("Sum() = %v, want 16.7", got)
	}
	if got := h.Mean(); got != 16.7/5 {
		t.Fatalf("Mean() = %v", got)
	}
	if got := h.Min(); got != 0.5 {
		t.Fatalf("Min() = %v, want 0.5", got)
	}
	if got := h.Max(); got != 10 {
		t.Fatalf("Max() = %v, want 10", got)
	}
	// Median of 5 observations falls in the (1,2] bucket.
	if got := h.Quantile(0.5); got != 2 {
		t.Fatalf("Quantile(0.5) = %v, want 2", got)
	}
	if got := h.Quantile(1); got != 10 {
		t.Fatalf("Quantile(1) = %v, want 10 (max seen)", got)
	}
}

func TestHistogramEmptyAndBadBounds(t *testing.T) {
	if _, err := NewHistogram([]float64{2, 1}); err == nil {
		t.Fatal("NewHistogram accepted descending bounds")
	}
	h, err := NewHistogram([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests").Inc()
	r.Counter("requests").Inc() // same instance
	r.Gauge("load").Set(0.7)
	h, err := r.Histogram("latency", []float64{1, 10})
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(5)

	snap := r.Snapshot()
	if snap["requests"] != 2 {
		t.Fatalf("requests = %v, want 2", snap["requests"])
	}
	if snap["load"] != 0.7 {
		t.Fatalf("load = %v, want 0.7", snap["load"])
	}
	if snap["latency.count"] != 1 || snap["latency.sum"] != 5 {
		t.Fatalf("latency = %v/%v", snap["latency.count"], snap["latency.sum"])
	}

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if !strings.Contains(text, "requests 2") || !strings.Contains(text, "load 0.7") {
		t.Fatalf("WriteText output missing entries:\n%s", text)
	}
	// Sorted output: "latency.count" precedes "load" precedes "requests".
	if strings.Index(text, "latency.count") > strings.Index(text, "load") {
		t.Fatal("WriteText output not sorted")
	}
}

func TestRegistryHistogramBoundsIgnoredOnSecondUse(t *testing.T) {
	r := NewRegistry()
	h1, err := r.Histogram("h", []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := r.Histogram("h", []float64{9, 8}) // bad bounds ignored: existing returned
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatal("Histogram returned a different instance for the same name")
	}
}
