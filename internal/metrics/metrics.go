// Package metrics provides the small, dependency-free instrumentation
// used by the simulator, the emulation, and the benchmark harness:
// counters, gauges, fixed-bucket histograms, and a registry that renders
// text snapshots. All types are safe for concurrent use (the live
// emulation updates them from many goroutines).
package metrics

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Counter is a monotonically increasing value.
type Counter struct {
	mu sync.Mutex
	v  float64
}

// Add increases the counter; negative deltas are ignored.
func (c *Counter) Add(delta float64) {
	if delta < 0 {
		return
	}
	c.mu.Lock()
	c.v += delta
	c.mu.Unlock()
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total.
func (c *Counter) Value() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a value that can move in both directions.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add shifts the value by delta (may be negative).
func (g *Gauge) Add(delta float64) {
	g.mu.Lock()
	g.v += delta
	g.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram counts observations into fixed buckets.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // upper bounds, ascending; implicit +Inf last
	counts  []uint64  // len(bounds)+1
	sum     float64
	total   uint64
	minSeen float64
	maxSeen float64
}

// NewHistogram builds a histogram with the given ascending upper bounds.
func NewHistogram(bounds []float64) (*Histogram, error) {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("metrics: bounds not ascending at %d", i)
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}, nil
}

// Observe records a value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	idx := sort.SearchFloat64s(h.bounds, v)
	h.counts[idx]++
	h.sum += v
	if h.total == 0 || v < h.minSeen {
		h.minSeen = v
	}
	if h.total == 0 || v > h.maxSeen {
		h.maxSeen = v
	}
	h.total++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Min and Max return the observed extremes (0 when empty).
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.minSeen
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.maxSeen
}

// Quantile returns an upper bound on the q-quantile (q in [0,1]) using
// bucket boundaries; +Inf-bucket observations report the max seen.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(h.total))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.maxSeen
		}
	}
	return h.maxSeen
}

// Registry names and collects metrics.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns (creating on first use) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating on first use) the named histogram with the
// given bounds; bounds are ignored if the histogram already exists.
func (r *Registry) Histogram(name string, bounds []float64) (*Histogram, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h, nil
	}
	h, err := NewHistogram(bounds)
	if err != nil {
		return nil, err
	}
	r.histograms[name] = h
	return h, nil
}

// Snapshot returns all scalar metric values by name (histograms export
// name.count, name.sum, name.mean).
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.counters)+len(r.gauges)+3*len(r.histograms))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.histograms {
		out[name+".count"] = float64(h.Count())
		out[name+".sum"] = h.Sum()
		out[name+".mean"] = h.Mean()
	}
	return out
}

// WriteText renders a sorted "name value" snapshot.
func (r *Registry) WriteText(w io.Writer) error {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "%s %g\n", name, snap[name]); err != nil {
			return fmt.Errorf("metrics: write snapshot: %w", err)
		}
	}
	return nil
}
