package metrics

import (
	"sort"
	"sync"
)

// Rolling is a sliding-window quantile estimator: a ring buffer of the
// last N observations. Unlike Histogram — cumulative since birth, for
// end-of-run reports — Rolling answers "what is the p99 right now",
// which is what an overload governor needs: observations age out, so
// the estimate recovers when the overload does. Quantile copies and
// sorts the window (O(N log N)), so keep windows modest (the default
// 256 is enough for a stable tail estimate) and call it at a sampled
// cadence, not per observation.
type Rolling struct {
	mu   sync.Mutex
	buf  []float64
	next int
	full bool
}

// NewRolling returns a Rolling over a window of the given size
// (default 256 when <= 0).
func NewRolling(window int) *Rolling {
	if window <= 0 {
		window = 256
	}
	return &Rolling{buf: make([]float64, window)}
}

// Observe records one value, evicting the oldest once the window is
// full.
func (r *Rolling) Observe(v float64) {
	r.mu.Lock()
	r.buf[r.next] = v
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Count returns how many observations the window currently holds.
func (r *Rolling) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Quantile returns the q-th quantile (0 <= q <= 1, nearest-rank) of
// the window, or 0 when empty.
func (r *Rolling) Quantile(q float64) float64 {
	r.mu.Lock()
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	if n == 0 {
		r.mu.Unlock()
		return 0
	}
	tmp := make([]float64, n)
	copy(tmp, r.buf[:n])
	r.mu.Unlock()
	sort.Float64s(tmp)
	idx := int(q*float64(n-1) + 0.5)
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return tmp[idx]
}
