package submodular

import (
	"fmt"

	"repro/internal/mmd"
)

// Coverage is weighted maximum coverage: the ground set is a collection
// of sets over weighted elements; f(T) is the total weight of the union
// of the chosen sets. Coverage functions are the canonical nonnegative
// nondecreasing submodular family.
type Coverage struct {
	// Sets[e] lists the element ids covered by ground-set member e.
	Sets [][]int
	// Weights[x] is the weight of element x.
	Weights []float64
}

var _ Func = (*Coverage)(nil)

// N implements Func.
func (c *Coverage) N() int { return len(c.Sets) }

// Eval implements Func. Summation runs in element-id order so results
// are bit-for-bit deterministic.
func (c *Coverage) Eval(set []int) float64 {
	covered := make([]bool, len(c.Weights))
	for _, e := range set {
		for _, x := range c.Sets[e] {
			covered[x] = true
		}
	}
	total := 0.0
	for x, ok := range covered {
		if ok {
			total += c.Weights[x]
		}
	}
	return total
}

// Validate checks element ids and weights.
func (c *Coverage) Validate() error {
	for e, set := range c.Sets {
		for _, x := range set {
			if x < 0 || x >= len(c.Weights) {
				return fmt.Errorf("submodular: set %d covers unknown element %d", e, x)
			}
		}
	}
	for x, w := range c.Weights {
		if w < 0 {
			return fmt.Errorf("submodular: element %d has negative weight %v", x, w)
		}
	}
	return nil
}

// MMDUtility adapts the Lemma 2.1 set function — the utility of serving
// a stream set to every interested user, with per-user caps — as a
// Func. The ground set is the stream catalog of the instance.
type MMDUtility struct {
	// Instance provides utilities; capacities other than the utility
	// caps are ignored (this is the semi-feasible valuation of §2).
	Instance *mmd.Instance
	// Caps[u] is W_u; nil means uncapped users.
	Caps []float64
}

var _ Func = (*MMDUtility)(nil)

// N implements Func.
func (m *MMDUtility) N() int { return m.Instance.NumStreams() }

// Eval implements Func.
func (m *MMDUtility) Eval(set []int) float64 {
	total := 0.0
	for u := range m.Instance.Users {
		sum := 0.0
		for _, s := range set {
			sum += m.Instance.Users[u].Utility[s]
		}
		if m.Caps != nil && sum > m.Caps[u] {
			sum = m.Caps[u]
		}
		total += sum
	}
	return total
}
