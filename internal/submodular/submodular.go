// Package submodular implements the closing remark of Section 4 of
// Patt-Shamir & Rawitz: the multi-budget-to-single-budget reduction plus
// greedy machinery maximizes ANY nonnegative, nondecreasing, submodular,
// polynomially computable set function under m knapsack constraints with
// an O(m) approximation factor — extending Sviridenko's single-knapsack
// result. The MMD utility (Lemma 2.1) is one such function; budgeted
// maximum coverage is another (both ship as Func implementations).
package submodular

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Func is a set function over the ground set {0..n-1}. Implementations
// must be nonnegative, nondecreasing, and submodular for the guarantee
// to hold; Maximize does not verify those properties (VerifySubmodular
// spot-checks them for tests).
type Func interface {
	// N returns the ground-set size.
	N() int
	// Eval returns f(set). set is sorted and duplicate-free.
	Eval(set []int) float64
}

// Problem is a multi-budget submodular maximization instance.
type Problem struct {
	// F is the objective.
	F Func
	// Costs[i][e] is element e's cost in measure i.
	Costs [][]float64
	// Budgets[i] caps measure i.
	Budgets []float64
}

// Validate checks dimensions and nonnegativity, and the standing
// assumption cost <= budget per element and measure.
func (p *Problem) Validate() error {
	if p.F == nil {
		return errors.New("submodular: nil objective")
	}
	n := p.F.N()
	if len(p.Costs) != len(p.Budgets) {
		return fmt.Errorf("submodular: %d cost rows for %d budgets", len(p.Costs), len(p.Budgets))
	}
	for i := range p.Costs {
		if len(p.Costs[i]) != n {
			return fmt.Errorf("submodular: cost row %d has %d entries, want %d", i, len(p.Costs[i]), n)
		}
		if p.Budgets[i] < 0 || math.IsNaN(p.Budgets[i]) {
			return fmt.Errorf("submodular: budget %d is %v", i, p.Budgets[i])
		}
		for e, c := range p.Costs[i] {
			if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
				return fmt.Errorf("submodular: cost[%d][%d] = %v", i, e, c)
			}
			if c > p.Budgets[i] {
				return fmt.Errorf("submodular: cost[%d][%d] = %v exceeds budget %v", i, e, c, p.Budgets[i])
			}
		}
	}
	return nil
}

// Result is the output of Maximize.
type Result struct {
	// Set is the chosen feasible set (sorted).
	Set []int
	// Value is f(Set).
	Value float64
	// GreedyValue is the value of the single-budget greedy before the
	// interval-decomposition repair (may be infeasible multi-budget).
	GreedyValue float64
	// Candidates is the number of repaired candidate sets considered.
	Candidates int
}

// Maximize runs the Section 4 recipe:
//
//  1. Merge the m budgets into one: c(e) = sum_i c_i(e)/B_i, budget m
//     (over finite measures).
//  2. Run the cost-effectiveness greedy with the best-singleton fix on
//     the merged instance (Sviridenko-style, constant factor).
//  3. Repair multi-budget feasibility by interval-decomposing the
//     greedy set into at most 2m-1 candidate sets, each feasible for
//     every original budget, and returning the best by f.
//
// The result is an O(m)-approximation of the multi-budget optimum.
func Maximize(p *Problem) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.F.N()
	var finite []int
	for i, b := range p.Budgets {
		if !math.IsInf(b, 1) {
			finite = append(finite, i)
		}
	}
	merged := make([]float64, n)
	for _, i := range finite {
		for e := 0; e < n; e++ {
			if p.Budgets[i] > 0 {
				merged[e] += p.Costs[i][e] / p.Budgets[i]
			}
		}
	}
	budget := float64(len(finite))
	if len(finite) == 0 {
		budget = math.Inf(1) // nothing constrains: take everything
	}

	greedySet, greedyVal := greedy(p.F, merged, budget)

	// Best singleton (always feasible: cost <= budget per measure).
	bestSingle, bestSingleVal := -1, 0.0
	for e := 0; e < n; e++ {
		if v := p.F.Eval([]int{e}); v > bestSingleVal {
			bestSingle, bestSingleVal = e, v
		}
	}

	// Repair: interval-decompose the greedy set under merged costs.
	candidates := decompose(greedySet, merged)
	if bestSingle >= 0 {
		candidates = append(candidates, []int{bestSingle})
	}
	res := &Result{GreedyValue: greedyVal, Candidates: len(candidates)}

	// Rank candidate sets by value, then greedily merge them while every
	// original budget still holds (mirrors reduction.LiftGreedy: the
	// best single set is admitted first, so the O(m) guarantee of the
	// single-set argument is preserved and the merge can only help).
	sort.SliceStable(candidates, func(i, j int) bool {
		return p.F.Eval(candidates[i]) > p.F.Eval(candidates[j])
	})
	inMerged := make([]bool, n)
	var mergedSet []int
	for _, cand := range candidates {
		if !feasible(p, cand) {
			continue // defensive; decomposed sets pass by construction
		}
		trial := mergedSet
		for _, e := range cand {
			if !inMerged[e] {
				trial = appendSorted(trial, e)
			}
		}
		if !feasible(p, trial) {
			continue
		}
		mergedSet = trial
		for _, e := range cand {
			inMerged[e] = true
		}
	}
	res.Set = mergedSet
	if res.Set == nil {
		res.Set = []int{}
	}
	res.Value = p.F.Eval(res.Set)
	return res, nil
}

// greedy maximizes f under a single knapsack by marginal value per unit
// cost, with zero-cost elements always admitted.
func greedy(f Func, cost []float64, budget float64) ([]int, float64) {
	n := f.N()
	var set []int
	inSet := make([]bool, n)
	spent := 0.0
	value := 0.0
	for {
		bestE, bestGain, bestCost := -1, 0.0, 0.0
		for e := 0; e < n; e++ {
			if inSet[e] || spent+cost[e] > budget+1e-12 {
				continue
			}
			gain := f.Eval(appendSorted(set, e)) - value
			if gain <= 0 {
				continue
			}
			// Compare gain/cost by cross-multiplication (zero cost =
			// infinite effectiveness).
			if bestE < 0 || gain*bestCost > bestGain*cost[e] ||
				(gain*bestCost == bestGain*cost[e] && gain > bestGain) {
				bestE, bestGain, bestCost = e, gain, cost[e]
			}
		}
		if bestE < 0 {
			return set, value
		}
		set = appendSorted(set, bestE)
		inSet[bestE] = true
		spent += cost[bestE]
		value += bestGain
	}
}

// appendSorted returns a new sorted slice with e inserted.
func appendSorted(set []int, e int) []int {
	out := make([]int, 0, len(set)+1)
	inserted := false
	for _, x := range set {
		if !inserted && e < x {
			out = append(out, e)
			inserted = true
		}
		out = append(out, x)
	}
	if !inserted {
		out = append(out, e)
	}
	return out
}

// decompose splits the set into subsets of merged cost <= 1 each
// (singletons for elements of cost >= 1, interval runs for the rest) —
// the Fig. 3 construction; at most 2m-1 subsets.
func decompose(set []int, cost []float64) [][]int {
	var big, small []int
	for _, e := range set {
		if cost[e] >= 1-1e-12 {
			big = append(big, e)
		} else {
			small = append(small, e)
		}
	}
	var out [][]int
	var run []int
	cum := 0.0
	for _, e := range small {
		start, end := cum, cum+cost[e]
		boundary := math.Floor(start) + 1
		if end > boundary+1e-12 {
			if len(run) > 0 {
				out = append(out, run)
				run = nil
			}
			out = append(out, []int{e})
		} else {
			run = append(run, e)
			if end >= boundary-1e-12 {
				out = append(out, run)
				run = nil
			}
		}
		cum = end
	}
	if len(run) > 0 {
		out = append(out, run)
	}
	for _, e := range big {
		out = append(out, []int{e})
	}
	return out
}

// feasible checks every original budget.
func feasible(p *Problem, set []int) bool {
	for i := range p.Budgets {
		total := 0.0
		for _, e := range set {
			total += p.Costs[i][e]
		}
		if total > p.Budgets[i]+1e-9 {
			return false
		}
	}
	return true
}

// VerifySubmodular spot-checks nonnegativity, monotonicity, and
// submodularity of f on the given set pairs; used by tests of Func
// implementations.
func VerifySubmodular(f Func, pairs [][2][]int) error {
	for _, pr := range pairs {
		a, b := pr[0], pr[1]
		union, inter := unionInter(a, b, f.N())
		fa, fb := f.Eval(a), f.Eval(b)
		fu, fi := f.Eval(union), f.Eval(inter)
		const tol = 1e-9
		if fa < -tol || fb < -tol {
			return fmt.Errorf("submodular: negative value")
		}
		if fu+tol < fa || fu+tol < fb {
			return fmt.Errorf("submodular: not nondecreasing")
		}
		if fa+fb+tol < fu+fi {
			return fmt.Errorf("submodular: f(A)+f(B) < f(AuB)+f(AnB)")
		}
	}
	return nil
}

func unionInter(a, b []int, n int) (union, inter []int) {
	inA := make([]bool, n)
	inB := make([]bool, n)
	for _, e := range a {
		inA[e] = true
	}
	for _, e := range b {
		inB[e] = true
	}
	for e := 0; e < n; e++ {
		if inA[e] || inB[e] {
			union = append(union, e)
		}
		if inA[e] && inB[e] {
			inter = append(inter, e)
		}
	}
	return union, inter
}
