package submodular

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/generator"
)

// randomCoverage builds a random weighted coverage instance.
func randomCoverage(r *rand.Rand, groundSets, elements int) *Coverage {
	c := &Coverage{
		Sets:    make([][]int, groundSets),
		Weights: make([]float64, elements),
	}
	for x := range c.Weights {
		c.Weights[x] = 1 + 9*r.Float64()
	}
	for e := range c.Sets {
		for x := 0; x < elements; x++ {
			if r.Float64() < 0.3 {
				c.Sets[e] = append(c.Sets[e], x)
			}
		}
	}
	return c
}

func randomProblem(r *rand.Rand, f Func, m int) *Problem {
	n := f.N()
	p := &Problem{F: f, Costs: make([][]float64, m), Budgets: make([]float64, m)}
	for i := 0; i < m; i++ {
		p.Costs[i] = make([]float64, n)
		total := 0.0
		for e := range p.Costs[i] {
			p.Costs[i][e] = 0.5 + r.Float64()
			total += p.Costs[i][e]
		}
		p.Budgets[i] = math.Max(0.4*total, maxOf(p.Costs[i]))
	}
	return p
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func TestCoverageIsSubmodular(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(131))}
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomCoverage(r, 6, 10)
		if c.Validate() != nil {
			return false
		}
		var a, b []int
		for e := 0; e < c.N(); e++ {
			if r.Float64() < 0.5 {
				a = append(a, e)
			}
			if r.Float64() < 0.5 {
				b = append(b, e)
			}
		}
		return VerifySubmodular(c, [][2][]int{{a, b}}) == nil
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMMDUtilityIsSubmodular(t *testing.T) {
	in, err := generator.RandomMMD{Streams: 8, Users: 4, M: 1, MC: 1, Seed: 132}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	caps := make([]float64, in.NumUsers())
	for u := range caps {
		caps[u] = 10
	}
	f := &MMDUtility{Instance: in, Caps: caps}
	r := rand.New(rand.NewSource(133))
	for trial := 0; trial < 50; trial++ {
		var a, b []int
		for e := 0; e < f.N(); e++ {
			if r.Float64() < 0.5 {
				a = append(a, e)
			}
			if r.Float64() < 0.5 {
				b = append(b, e)
			}
		}
		if err := VerifySubmodular(f, [][2][]int{{a, b}}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMaximizeFeasibleAndPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(134))
	for trial := 0; trial < 20; trial++ {
		c := randomCoverage(rng, 10, 15)
		p := randomProblem(rng, c, 1+trial%3)
		res, err := Maximize(p)
		if err != nil {
			t.Fatal(err)
		}
		if !feasible(p, res.Set) {
			t.Fatalf("trial %d: result infeasible", trial)
		}
		if res.Value != c.Eval(res.Set) {
			t.Fatalf("trial %d: value %v != Eval %v", trial, res.Value, c.Eval(res.Set))
		}
	}
}

// TestMaximizeRatioAgainstBruteForce: O(m) guarantee with the concrete
// constant (1-1/e)/3 per merged-budget greedy and 1/(2m-1) from the
// decomposition — check the (generous) combined bound.
func TestMaximizeRatioAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(135))
	for trial := 0; trial < 15; trial++ {
		m := 1 + trial%3
		c := randomCoverage(rng, 9, 12)
		p := randomProblem(rng, c, m)
		res, err := Maximize(p)
		if err != nil {
			t.Fatal(err)
		}
		opt := bruteForceOpt(p)
		if opt == 0 {
			continue
		}
		bound := float64(2*m-1) * 3 * math.E / (math.E - 1)
		if ratio := opt / math.Max(res.Value, 1e-12); ratio > bound+1e-9 {
			t.Fatalf("trial %d (m=%d): ratio %v exceeds bound %v", trial, m, ratio, bound)
		}
	}
}

func bruteForceOpt(p *Problem) float64 {
	n := p.F.N()
	best := 0.0
	for mask := 0; mask < 1<<uint(n); mask++ {
		var set []int
		for e := 0; e < n; e++ {
			if mask&(1<<uint(e)) != 0 {
				set = append(set, e)
			}
		}
		if !feasible(p, set) {
			continue
		}
		if v := p.F.Eval(set); v > best {
			best = v
		}
	}
	return best
}

func TestMaximizeRejectsInvalid(t *testing.T) {
	if _, err := Maximize(&Problem{}); err == nil {
		t.Fatal("Maximize accepted a nil objective")
	}
	c := randomCoverage(rand.New(rand.NewSource(136)), 4, 5)
	p := &Problem{F: c, Costs: [][]float64{{1, 1, 1}}, Budgets: []float64{2}}
	if _, err := Maximize(p); err == nil {
		t.Fatal("Maximize accepted a cost row shorter than the ground set")
	}
	p2 := &Problem{F: c, Costs: [][]float64{{1, 1, 1, 3}}, Budgets: []float64{2}}
	if _, err := Maximize(p2); err == nil {
		t.Fatal("Maximize accepted an element more expensive than its budget")
	}
}

func TestCoverageValidate(t *testing.T) {
	c := &Coverage{Sets: [][]int{{0, 7}}, Weights: []float64{1}}
	if err := c.Validate(); err == nil {
		t.Fatal("Validate accepted an out-of-range element")
	}
	c2 := &Coverage{Sets: [][]int{{0}}, Weights: []float64{-1}}
	if err := c2.Validate(); err == nil {
		t.Fatal("Validate accepted a negative weight")
	}
}

func TestAppendSorted(t *testing.T) {
	set := []int{1, 3, 5}
	got := appendSorted(set, 4)
	want := []int{1, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("appendSorted = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("appendSorted = %v, want %v", got, want)
		}
	}
	if got2 := appendSorted(nil, 2); len(got2) != 1 || got2[0] != 2 {
		t.Fatalf("appendSorted(nil) = %v", got2)
	}
}

func TestMaximizeUnconstrained(t *testing.T) {
	c := randomCoverage(rand.New(rand.NewSource(137)), 5, 8)
	p := &Problem{
		F:       c,
		Costs:   [][]float64{make([]float64, 5)},
		Budgets: []float64{math.Inf(1)},
	}
	for e := range p.Costs[0] {
		p.Costs[0][e] = 1
	}
	res, err := Maximize(p)
	if err != nil {
		t.Fatal(err)
	}
	all := []int{0, 1, 2, 3, 4}
	if res.Value < c.Eval(all)-1e-9 {
		t.Fatalf("unconstrained value %v < take-everything %v", res.Value, c.Eval(all))
	}
}
