package fleet

import (
	"strings"
	"testing"

	"repro/internal/cluster"
)

// mergeSnap builds a synthetic node snapshot: every node reports a row
// for every tenant (fleet nodes run full clusters), but only the rows
// of owned tenants carry that node's real counters — the merge must
// pick exactly those. mark disambiguates which node a row came from.
func mergeSnap(tenants, shards int, mark float64) *cluster.FleetSnapshot {
	fs := &cluster.FleetSnapshot{Shards: shards, AllFeasible: true}
	for t := 0; t < tenants; t++ {
		fs.Tenants = append(fs.Tenants, cluster.TenantSnapshot{
			Policy:  "test",
			Utility: mark + float64(t), StreamsOffered: t, StreamsAdmitted: t,
			ActiveStreams: 1, Pairs: 2, Feasible: true,
		})
	}
	for s := 0; s < shards; s++ {
		fs.ShardStats = append(fs.ShardStats, cluster.ShardStats{Shard: s, Events: int(mark)})
	}
	return fs
}

// TestMergeSnapshotsPicksOwners pins row selection and the recomputed
// sums: each tenant's row comes from its owning node, the fleet-wide
// sums are sums over the merged rows, and shard tables concatenate
// with globally renumbered indexes.
func TestMergeSnapshotsPicksOwners(t *testing.T) {
	plan := Plan{Nodes: 2, Shards: 4}
	const tenants = 6
	snaps := []*cluster.FleetSnapshot{
		mergeSnap(tenants, 4, 100),
		mergeSnap(tenants, 4, 200),
	}
	got, err := MergeSnapshots(plan, snaps, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantUtility := 0.0
	for tn := 0; tn < tenants; tn++ {
		mark := 100.0
		if plan.NodeOfTenant(tn) == 1 {
			mark = 200.0
		}
		if got.Tenants[tn].Utility != mark+float64(tn) {
			t.Errorf("tenant %d row from wrong node: utility %v, want %v",
				tn, got.Tenants[tn].Utility, mark+float64(tn))
		}
		wantUtility += mark + float64(tn)
	}
	if got.Utility != wantUtility {
		t.Errorf("merged utility %v, want %v", got.Utility, wantUtility)
	}
	if got.ActiveStreams != tenants || got.Pairs != 2*tenants || !got.AllFeasible {
		t.Errorf("merged sums wrong: %+v", got)
	}
	if got.Shards != 8 || len(got.ShardStats) != 8 {
		t.Fatalf("merged shard table: %d shards, %d stats", got.Shards, len(got.ShardStats))
	}
	for i, st := range got.ShardStats {
		if st.Shard != i {
			t.Errorf("shard stat %d renumbered to %d", i, st.Shard)
		}
	}
	if got.ShardStats[0].Events != 100 || got.ShardStats[4].Events != 200 {
		t.Errorf("shard tables not concatenated in node order: %+v", got.ShardStats)
	}
}

// TestMergeSnapshotsRejects pins the validation errors: wrong snapshot
// count, a missing node snapshot, and nodes that disagree on the
// tenant count (fleet nodes must share options).
func TestMergeSnapshotsRejects(t *testing.T) {
	plan := Plan{Nodes: 2, Shards: 2}
	ok := mergeSnap(4, 2, 0)
	cases := []struct {
		name  string
		snaps []*cluster.FleetSnapshot
		want  string
	}{
		{"count", []*cluster.FleetSnapshot{ok}, "2-node plan"},
		{"nil", []*cluster.FleetSnapshot{ok, nil}, "node 1 snapshot missing"},
		{"tenants", []*cluster.FleetSnapshot{ok, mergeSnap(3, 2, 0)}, "must share options"},
	}
	for _, tc := range cases {
		if _, err := MergeSnapshots(plan, tc.snaps, nil); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
	if _, err := MergeSnapshots(Plan{}, nil, nil); err == nil {
		t.Error("invalid plan accepted")
	}
}
