// Package fleet is the multi-process tier of the serving stack
// (serving API v7): a router that fans streaming ingestion sessions
// out across node processes and merges their snapshots back into one
// fleet view.
//
// The fleet splits the single-process cluster along its existing
// ownership seams. Each node process runs a full cluster (every tenant
// instantiated from the same options) but receives only the events of
// the tenants it owns; the catalog registry moves to its own process
// (internal/catalog/remote), so cross-node admissions still settle
// against one owner in one order. The router owns only transport
// state — client watermarks and per-node upstream sessions — and NEVER
// assignment state: no tenant tables, no refcounts, no feasibility
// ledgers. If the router dies, a new one pointed at the same nodes
// resumes service with nothing to recover.
//
// Routing is tenant → logical shard (tenant % Plan.Shards, the same
// pinning rule the cluster uses) → node (contiguous shard ranges).
// The plan's shard modulus is fixed at router startup and is routing
// state only: a live reshard (proxied to every node) changes each
// node's internal layout, which is safe precisely because per-tenant
// results are invariant under the shard count — the same invariance
// that pins the fleet's north-star property, that an N-node fleet
// lands bit-identical per-tenant snapshots to the 1-process cluster
// (node-count invariance, TestFleetMatchesSingleProcess).
package fleet

import "fmt"

// Plan maps tenants to nodes: tenant → logical shard (tenant %
// Shards) → node (contiguous shard ranges, node k owning shards
// [k·S/N, (k+1)·S/N)). Shards is the routing modulus pinned at router
// startup — it need not match any node's internal shard count, and a
// live reshard does not move tenants between nodes. More nodes than
// shards leaves the surplus nodes idle (their empty ranges own no
// tenants) — a degenerate but valid fleet, and the node-count
// invariance still holds.
type Plan struct {
	// Nodes is the node count; Shards the logical shard count (the
	// routing modulus).
	Nodes, Shards int
}

// Validate reports a usable plan.
func (p Plan) Validate() error {
	if p.Nodes <= 0 {
		return fmt.Errorf("fleet: plan needs at least one node, got %d", p.Nodes)
	}
	if p.Shards <= 0 {
		return fmt.Errorf("fleet: plan needs at least one shard, got %d", p.Shards)
	}
	return nil
}

// NodeOfShard returns the node owning logical shard s.
func (p Plan) NodeOfShard(s int) int {
	// Inverse of the contiguous split [k·S/N, (k+1)·S/N).
	return (s*p.Nodes + p.Nodes - 1) / p.Shards
}

// NodeOfTenant returns the node owning tenant t's events. Tenants the
// cluster would reject (negative) route to node 0, whose cluster
// produces the per-event error.
func (p Plan) NodeOfTenant(t int) int {
	if t < 0 {
		return 0
	}
	return p.NodeOfShard(t % p.Shards)
}

// OwnsTenant reports whether node owns tenant t under the plan.
func (p Plan) OwnsTenant(node, t int) bool {
	return p.NodeOfTenant(t) == node
}
