package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/cluster"
	"repro/streamclient"
)

// Options configures a Router.
type Options struct {
	// Plan maps tenants to nodes; Plan.Nodes must equal len(Nodes).
	Plan Plan
	// Nodes are the node base URLs in node-index order.
	Nodes []string
	// CatalogURL is the catalog service base URL, used for the merged
	// snapshot's registry section and the /v1/catalog proxy. Empty
	// falls back to the registry section the nodes themselves report
	// (each node's snapshot reads it through its remote client).
	CatalogURL string
	// ID prefixes the router's upstream session IDs. Distinct routers
	// sharing nodes must use distinct IDs; a restarted router reusing
	// its ID resumes its upstream watermarks. Default "router".
	ID string
	// Dial replaces net.Dial for router→node stream connections (the
	// chaos seam, see internal/chaos.Dialer).
	Dial func(network, addr string) (net.Conn, error)
}

// Router fans streaming ingestion out across the fleet's nodes. It
// holds transport state only — client watermarks and upstream
// sessions — never assignment state; killing a router loses no fleet
// state (clients resume through any router with the same upstream ID).
//
// Forwarding is serial per client connection: one event in flight at a
// time, its result written back before the next line is read. That
// serialization is what pins node-count invariance — the fleet-wide
// event order equals the client submission order, so every node and
// the catalog service observe exactly the order a 1-process cluster
// would.
type Router struct {
	opts Options

	mu       sync.Mutex
	sessions map[string]*routerSession
	connSeq  atomic.Uint64

	httpc *http.Client
}

// routerSession is the router-side state of one resumable client
// session: the dedup watermark and the persistent upstream sessions.
// Entries are never evicted (mirroring the node-side session table):
// dropping one would reset the watermark and break the exactly-once
// promise to a client that resumes later.
type routerSession struct {
	connMu    sync.Mutex // serializes connections claiming this session
	watermark uint64     // highest client seq answered (guarded by connMu)
	upstream  string     // upstream session ID prefix
	nodes     []*streamclient.Session
	nodeSeq   []uint64 // last upstream seq assigned per node
}

// NewRouter builds a router over the fleet's nodes.
func NewRouter(opts Options) (*Router, error) {
	if err := opts.Plan.Validate(); err != nil {
		return nil, err
	}
	if len(opts.Nodes) != opts.Plan.Nodes {
		return nil, fmt.Errorf("fleet: plan has %d nodes but %d node URLs given", opts.Plan.Nodes, len(opts.Nodes))
	}
	if opts.ID == "" {
		opts.ID = "router"
	}
	return &Router{
		opts:     opts,
		sessions: make(map[string]*routerSession),
		httpc:    &http.Client{Timeout: 60 * time.Second},
	}, nil
}

// Handler returns the router's HTTP surface: the v4 stream endpoint,
// the merged fleet snapshot, the catalog proxy, and the reshard
// fan-out.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/stream", rt.handleStream)
	mux.HandleFunc("GET /v1/fleet/snapshot", rt.handleSnapshot)
	mux.HandleFunc("GET /v1/catalog", rt.handleCatalog)
	mux.HandleFunc("POST /v1/admin/reshard", rt.handleReshard)
	return mux
}

// Close tears down the persistent upstream sessions. In-flight client
// connections fail over their own error paths.
func (rt *Router) Close() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, rs := range rt.sessions {
		for _, s := range rs.nodes {
			if s != nil {
				_ = s.Close()
			}
		}
	}
	rt.sessions = make(map[string]*routerSession)
}

// session returns (creating if needed) the state of client session id.
func (rt *Router) session(id string) *routerSession {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rs, ok := rt.sessions[id]
	if !ok {
		rs = rt.newSession(rt.opts.ID + "/" + id)
		rt.sessions[id] = rs
	}
	return rs
}

// newSession builds session state with the given upstream ID prefix.
func (rt *Router) newSession(upstream string) *routerSession {
	return &routerSession{
		upstream: upstream,
		nodes:    make([]*streamclient.Session, rt.opts.Plan.Nodes),
		nodeSeq:  make([]uint64, rt.opts.Plan.Nodes),
	}
}

// node returns (dialing lazily) the upstream session for node n.
// Called with rs.connMu held.
func (rt *Router) node(rs *routerSession, n int) (*streamclient.Session, error) {
	if rs.nodes[n] != nil {
		return rs.nodes[n], nil
	}
	s, err := streamclient.NewSession(rt.opts.Nodes[n], streamclient.SessionOptions{
		ID:   fmt.Sprintf("%s/n%d", rs.upstream, n),
		Dial: rt.opts.Dial,
	})
	if err != nil {
		return nil, err
	}
	rs.nodes[n] = s
	return s, nil
}

// forward routes one event to its owning node and waits for its
// result. Serial per session: the upstream session has exactly one
// event unacked, so the next result (dup acknowledgements included —
// the exactly-once handoff when a node died after applying but before
// answering) is this event's.
func (rt *Router) forward(rs *routerSession, ev streamclient.Event) (streamclient.Result, error) {
	n := rt.opts.Plan.NodeOfTenant(ev.Tenant)
	sess, err := rt.node(rs, n)
	if err != nil {
		return streamclient.Result{}, err
	}
	ev.Seq = 0 // the upstream session assigns its own seqs
	if err := sess.Send(ev); err != nil {
		return streamclient.Result{}, err
	}
	rs.nodeSeq[n]++
	want := rs.nodeSeq[n]
	for {
		res, err := sess.Recv()
		if err != nil {
			return streamclient.Result{}, err
		}
		if uint64(res.Seq) >= want {
			return res, nil
		}
		// A stale dup acknowledgement for an already-answered seq
		// (replayed window on a redial); the wanted result follows.
	}
}

// handleStream proxies one client stream session: Event lines in,
// Result lines out, in submission order, each event forwarded to its
// owning node before the next is read. The client-facing protocol is
// exactly the node's own /v1/stream — plain connections get 0-based
// response seqs, X-Stream-Session connections get client-seq echoes,
// contiguity checks, dup acknowledgements below the watermark, and an
// Error-only Seq -1 line on a protocol violation.
func (rt *Router) handleStream(w http.ResponseWriter, r *http.Request) {
	sid := r.Header.Get("X-Stream-Session")
	var rs *routerSession
	var base uint64
	ephemeral := sid == ""
	if ephemeral {
		rs = rt.newSession(fmt.Sprintf("%s/conn-%d", rt.opts.ID, rt.connSeq.Add(1)))
	} else {
		rs = rt.session(sid)
		rs.connMu.Lock()
		defer rs.connMu.Unlock()
		base = rs.watermark + 1
	}
	rc := http.NewResponseController(w)
	_ = rc.EnableFullDuplex()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	_ = rc.Flush()

	var protoErr error
	body := bufio.NewReaderSize(r.Body, 32<<10)
	outSeq := 0          // plain-mode response seq
	lastSeq := uint64(0) // last client seq read (session mode)
	var line []byte
	var out []byte
	for {
		var err error
		line, err = readStreamLine(body, line[:0])
		if len(line) > 0 {
			var ev streamclient.Event
			if uerr := json.Unmarshal(line, &ev); uerr != nil {
				protoErr = fmt.Errorf("bad event line: %w", uerr)
				break
			}
			dup := false
			if !ephemeral {
				var perr error
				switch {
				case ev.Seq == 0:
					perr = fmt.Errorf("session stream: line missing seq")
				case lastSeq == 0 && ev.Seq > base:
					perr = fmt.Errorf("session stream: seq %d skips past watermark %d", ev.Seq, base-1)
				case lastSeq != 0 && ev.Seq != lastSeq+1:
					perr = fmt.Errorf("session stream: seq %d after %d breaks contiguity", ev.Seq, lastSeq)
				}
				if perr != nil {
					protoErr = perr
					break
				}
				lastSeq = ev.Seq
				dup = ev.Seq < base
			}
			if dup {
				out = append(out[:0], `{"seq":`...)
				out = strconv.AppendUint(out, ev.Seq, 10)
				out = append(out, `,"dup":true}`+"\n"...)
			} else {
				res, ferr := rt.forward(rs, ev)
				if ferr != nil {
					protoErr = fmt.Errorf("node %d unreachable: %v", rt.opts.Plan.NodeOfTenant(ev.Tenant), ferr)
					break
				}
				if ephemeral {
					res.Seq = outSeq
					outSeq++
				} else {
					res.Seq = int(ev.Seq)
					rs.watermark = ev.Seq
				}
				out, _ = json.Marshal(res)
				out = append(out, '\n')
			}
			if _, werr := w.Write(out); werr != nil {
				break
			}
			if rc.Flush() != nil {
				break
			}
		}
		if err != nil {
			break // io.EOF is the client's CloseSend; else a dead conn
		}
	}
	if ephemeral {
		// Nothing is in flight (serial), so the upstream sessions can
		// close immediately; their node-side watermarks are garbage
		// after this (the conn ID is never reused).
		for _, s := range rs.nodes {
			if s != nil {
				_ = s.Close()
			}
		}
	}
	if protoErr != nil {
		_ = json.NewEncoder(w).Encode(streamclient.Result{Seq: -1, Error: protoErr.Error()})
		_ = rc.Flush()
	}
}

// readStreamLine reads one NDJSON line into buf, tolerating a final
// unterminated line.
func readStreamLine(br *bufio.Reader, buf []byte) ([]byte, error) {
	for {
		chunk, err := br.ReadSlice('\n')
		buf = append(buf, chunk...)
		if err == bufio.ErrBufferFull {
			continue
		}
		if n := len(buf); n > 0 && buf[n-1] == '\n' {
			buf = buf[:n-1]
		}
		return buf, err
	}
}

// handleSnapshot merges the nodes' barrier snapshots into the fleet
// view (see MergeSnapshots).
func (rt *Router) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	snaps := make([]*cluster.FleetSnapshot, len(rt.opts.Nodes))
	for n, base := range rt.opts.Nodes {
		var fs cluster.FleetSnapshot
		if err := rt.getJSON(base+"/v1/fleet/snapshot", &fs); err != nil {
			writeRouterError(w, http.StatusBadGateway, fmt.Errorf("node %d snapshot: %w", n, err))
			return
		}
		snaps[n] = &fs
	}
	var cat *catalog.Snapshot
	if rt.opts.CatalogURL != "" {
		cat = new(catalog.Snapshot)
		if err := rt.getJSON(rt.opts.CatalogURL+"/v1/catalog", cat); err != nil {
			writeRouterError(w, http.StatusBadGateway, fmt.Errorf("catalog service: %w", err))
			return
		}
	} else {
		for _, s := range snaps {
			if s.Catalog != nil {
				cat = s.Catalog
				break
			}
		}
	}
	merged, err := MergeSnapshots(rt.opts.Plan, snaps, cat)
	if err != nil {
		writeRouterError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(merged)
}

// handleCatalog proxies the registry snapshot from the catalog service
// (or node 0 when the fleet runs an in-process catalog).
func (rt *Router) handleCatalog(w http.ResponseWriter, r *http.Request) {
	base := rt.opts.CatalogURL
	if base == "" {
		base = rt.opts.Nodes[0]
	}
	resp, err := rt.httpc.Get(base + "/v1/catalog")
	if err != nil {
		writeRouterError(w, http.StatusBadGateway, err)
		return
	}
	defer resp.Body.Close()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// handleReshard fans the shard-count change out to every node and
// reports the summed post-cutover shard count. Any node refusing
// (409: no WAL to replay) fails the whole call — the fan-out is not
// atomic, so operators reshard one fleet configuration at a time.
func (rt *Router) handleReshard(w http.ResponseWriter, r *http.Request) {
	payload, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeRouterError(w, http.StatusBadRequest, err)
		return
	}
	total := 0
	for n, base := range rt.opts.Nodes {
		resp, err := rt.httpc.Post(base+"/v1/admin/reshard", "application/json", bytes.NewReader(payload))
		if err != nil {
			writeRouterError(w, http.StatusBadGateway, fmt.Errorf("node %d reshard: %w", n, err))
			return
		}
		bodyBytes, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(resp.StatusCode)
			_, _ = w.Write(bodyBytes)
			return
		}
		var out struct {
			Shards int `json:"shards"`
		}
		if err := json.Unmarshal(bodyBytes, &out); err != nil {
			writeRouterError(w, http.StatusBadGateway, fmt.Errorf("node %d reshard reply: %w", n, err))
			return
		}
		total += out.Shards
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"shards\":%d}\n", total)
}

// getJSON fetches url and decodes its JSON body into v.
func (rt *Router) getJSON(url string, v any) error {
	resp, err := rt.httpc.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return fmt.Errorf("status %s: %s", resp.Status, body)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// writeRouterError writes a JSON error body.
func writeRouterError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
