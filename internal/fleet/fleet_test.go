package fleet

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	videodist "repro"
	"repro/internal/catalog"
	"repro/internal/catalog/remote"
	"repro/internal/chaos"
	"repro/internal/generator"
	"repro/internal/httpserve"
	"repro/streamclient"
)

// fleetRig is one running fleet: a catalog service process stand-in,
// N node processes, and a router in front.
type fleetRig struct {
	router    *Router
	routerURL string
	catURL    string
}

const (
	rigTenants  = 6
	rigChannels = 8
	rigGateways = 3
	rigSeed     = 71
)

func rigChannelID(s int) catalog.ID { return catalog.ID(fmt.Sprintf("ch-%03d", s)) }

// buildCluster builds one same-shaped cluster (a node, or the
// 1-process reference when svc is nil — then the catalog registry is
// in-process).
func buildCluster(t *testing.T, shards int, model catalog.CostModel, svc catalog.Service) *videodist.Cluster {
	t.Helper()
	tenants := make([]videodist.ClusterTenant, rigTenants)
	for i := range tenants {
		in, err := generator.CableTV{
			Channels: rigChannels, Gateways: rigGateways,
			Seed: rigSeed + int64(i), EgressFraction: 0.25,
		}.Generate()
		if err != nil {
			t.Fatal(err)
		}
		tenants[i] = videodist.ClusterTenant{Instance: in}
	}
	c, err := videodist.NewCluster(tenants, videodist.ClusterOptions{
		Shards: shards, BatchSize: 4,
		Catalog: &videodist.CatalogOptions{
			Streams: videodist.IdentityCatalogBindings(rigTenants, rigChannels,
				func(s int) videodist.CatalogID { return videodist.CatalogID(rigChannelID(s)) }),
			CostModel: model,
			Remote:    svc,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// buildFleetDial assembles a catalog service, N nodes, and a router.
// dial, when non-nil, replaces net.Dial on the router→node stream path
// (the chaos seam).
func buildFleetDial(t *testing.T, nodes, shards int, model catalog.CostModel, dial func(network, addr string) (net.Conn, error)) *fleetRig {
	t.Helper()
	reg, err := catalog.NewRegistry(catalog.IdentityBindings(rigTenants, rigChannels, rigChannelID), model)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(reg.Close)
	catSrv := httptest.NewServer(remote.NewHandler(reg))
	t.Cleanup(catSrv.Close)

	urls := make([]string, nodes)
	for k := 0; k < nodes; k++ {
		rc, err := remote.Dial(catSrv.URL, remote.Options{})
		if err != nil {
			t.Fatal(err)
		}
		node := buildCluster(t, shards, model, rc)
		srv := httptest.NewServer(httpserve.NewHandler(node))
		t.Cleanup(srv.Close)
		urls[k] = srv.URL
	}
	rt, err := NewRouter(Options{
		Plan:       Plan{Nodes: nodes, Shards: shards},
		Nodes:      urls,
		CatalogURL: catSrv.URL,
		ID:         fmt.Sprintf("test-n%d-s%d-%s", nodes, shards, model.Name()),
		Dial:       dial,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	rtSrv := httptest.NewServer(rt.Handler())
	t.Cleanup(rtSrv.Close)
	return &fleetRig{router: rt, routerURL: rtSrv.URL, catURL: catSrv.URL}
}

// fleetSchedule derives a deterministic mixed workload: local offers
// and departs, catalog admissions and departures, user churn, and
// installing re-solves, across all tenants.
func fleetSchedule(events int, seed int64) []streamclient.Event {
	r := rand.New(rand.NewSource(seed))
	evs := make([]streamclient.Event, 0, events)
	for i := 0; i < events; i++ {
		ev := streamclient.Event{Tenant: r.Intn(rigTenants)}
		switch r.Intn(8) {
		case 0, 1:
			ev.Type, ev.Stream = "offer", r.Intn(rigChannels)
		case 2:
			ev.Type, ev.Stream = "depart", r.Intn(rigChannels)
		case 3:
			ev.Type, ev.CatalogID = "catalog-offer", string(rigChannelID(r.Intn(rigChannels)))
		case 4:
			ev.Type, ev.CatalogID = "catalog-depart", string(rigChannelID(r.Intn(rigChannels)))
		case 5:
			ev.Type, ev.User = "leave", r.Intn(rigGateways)
		case 6:
			ev.Type, ev.User = "join", r.Intn(rigGateways)
		case 7:
			ev.Type, ev.Install = "resolve", r.Intn(2) == 0
		}
		evs = append(evs, ev)
	}
	return evs
}

// driveConn pushes the schedule through one plain stream connection,
// serially (Send, Flush, Recv per event), returning the parsed results
// with seqs cleared (both sides number identically; the cleared form
// keeps the comparison about payloads).
func driveConn(t *testing.T, baseURL string, evs []streamclient.Event) []streamclient.Result {
	t.Helper()
	conn, err := streamclient.Dial(baseURL)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	out := make([]streamclient.Result, 0, len(evs))
	for i, ev := range evs {
		if err := conn.Send(ev); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		if err := conn.Flush(); err != nil {
			t.Fatalf("flush %d: %v", i, err)
		}
		res, err := conn.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if res.Seq != i {
			t.Fatalf("recv %d: seq %d", i, res.Seq)
		}
		res.Seq = 0
		out = append(out, res)
	}
	if err := conn.CloseSend(); err != nil {
		t.Fatal(err)
	}
	return out
}

// fetchSnapshot decodes GET /v1/fleet/snapshot.
func fetchSnapshot(t *testing.T, baseURL string) *videodist.FleetSnapshot {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/fleet/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: status %d", resp.StatusCode)
	}
	var fs videodist.FleetSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&fs); err != nil {
		t.Fatal(err)
	}
	return &fs
}

// TestFleetMatchesSingleProcess pins node-count invariance, the fleet
// tier's north-star property: for a deterministic submission sequence,
// an N-node fleet (nodes owning tenant partitions, the catalog
// registry in its own process, a router in front) lands bit-identical
// per-tenant snapshots — catalog refcounts and pricing included — to
// the 1-process cluster, at every node count × shard count × cost
// model.
func TestFleetMatchesSingleProcess(t *testing.T) {
	nodeCounts := []int{1, 2, 3}
	shardCounts := []int{1, 2, 4}
	if testing.Short() {
		nodeCounts = []int{1, 3}
		shardCounts = []int{4}
	}
	models := []catalog.CostModel{catalog.Isolated{}, catalog.SharedOrigin{ReplicationFraction: 0.25}}
	evs := fleetSchedule(160, 29)
	for _, model := range models {
		for _, shards := range shardCounts {
			// One reference per (model, shards): the 1-process cluster
			// with an in-process registry, served over the same wire.
			ref := buildCluster(t, shards, model, nil)
			refSrv := httptest.NewServer(httpserve.NewHandler(ref))
			refResults := driveConn(t, refSrv.URL, evs)
			refFS := fetchSnapshot(t, refSrv.URL)
			refSrv.Close()
			if refFS.Catalog == nil {
				t.Fatal("reference snapshot has no catalog section")
			}
			for _, nodes := range nodeCounts {
				t.Run(fmt.Sprintf("%s/shards=%d/nodes=%d", model.Name(), shards, nodes), func(t *testing.T) {
					rig := buildFleetDial(t, nodes, shards, model, nil)
					got := driveConn(t, rig.routerURL, evs)
					for i := range refResults {
						if !reflect.DeepEqual(got[i], refResults[i]) {
							t.Fatalf("event %d (%+v): fleet result %+v, 1-process %+v",
								i, evs[i], got[i], refResults[i])
						}
					}
					fs := fetchSnapshot(t, rig.routerURL)
					if fs.RenderTenants() != refFS.RenderTenants() {
						t.Fatalf("per-tenant tables diverge:\n--- %d-node fleet\n%s\n--- 1-process\n%s",
							nodes, fs.RenderTenants(), refFS.RenderTenants())
					}
					if fs.Catalog == nil {
						t.Fatal("merged snapshot has no catalog section")
					}
					if fs.Catalog.Render() != refFS.Catalog.Render() {
						t.Fatalf("catalog renders diverge:\n--- %d-node fleet\n%s\n--- 1-process\n%s",
							nodes, fs.Catalog.Render(), refFS.Catalog.Render())
					}
					for _, cmp := range []struct {
						name      string
						got, want any
					}{
						{"utility", fs.Utility, refFS.Utility},
						{"offered", fs.Offered, refFS.Offered},
						{"admitted", fs.Admitted, refFS.Admitted},
						{"active", fs.ActiveStreams, refFS.ActiveStreams},
						{"pairs", fs.Pairs, refFS.Pairs},
						{"feasible", fs.AllFeasible, refFS.AllFeasible},
					} {
						if cmp.got != cmp.want {
							t.Fatalf("merged %s = %v, 1-process %v", cmp.name, cmp.got, cmp.want)
						}
					}
				})
			}
		}
	}
}

// TestRouterSessionResume drives a resumable client session through
// the router across a client-side disconnect: the second connection
// replays into dup acknowledgements below the router's watermark, and
// the per-tenant outcome matches an uninterrupted 1-process run.
func TestRouterSessionResume(t *testing.T) {
	model := catalog.Isolated{}
	evs := fleetSchedule(60, 31)

	ref := buildCluster(t, 2, model, nil)
	refSrv := httptest.NewServer(httpserve.NewHandler(ref))
	driveConn(t, refSrv.URL, evs)
	refFS := fetchSnapshot(t, refSrv.URL)
	refSrv.Close()

	rig := buildFleetDial(t, 2, 2, model, nil)
	cut := 25 // events on the first client connection
	sess, err := streamclient.NewSession(rig.routerURL, streamclient.SessionOptions{ID: "resume-client"})
	if err != nil {
		t.Fatal(err)
	}
	for i, ev := range evs[:cut] {
		if err := sess.Send(ev); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		for {
			res, err := sess.Recv()
			if err != nil {
				t.Fatalf("recv %d: %v", i, err)
			}
			if res.Seq == i+1 {
				break
			}
		}
	}
	// Drop the client connection without CloseSend; the router's
	// watermark covers everything answered so far.
	_ = sess.Close()

	sess2, err := streamclient.NewSession(rig.routerURL, streamclient.SessionOptions{ID: "resume-client"})
	if err != nil {
		t.Fatal(err)
	}
	// A resumed session starts numbering at 1; pre-seed the replayed
	// prefix by resending the already-applied events — the router must
	// answer every one with a dup acknowledgement, applying nothing.
	dups := 0
	for i, ev := range evs {
		if err := sess2.Send(ev); err != nil {
			t.Fatalf("resend %d: %v", i, err)
		}
		for {
			res, err := sess2.Recv()
			if err != nil {
				t.Fatalf("re-recv %d: %v", i, err)
			}
			if res.Seq == i+1 {
				if res.Dup {
					dups++
				}
				break
			}
		}
	}
	if err := sess2.CloseSend(); err != nil {
		t.Fatal(err)
	}
	if dups != cut {
		t.Fatalf("resumed session saw %d dup acknowledgements, want %d (exactly the replayed prefix)", dups, cut)
	}
	fs := fetchSnapshot(t, rig.routerURL)
	if fs.RenderTenants() != refFS.RenderTenants() {
		t.Fatalf("resumed fleet diverges from uninterrupted reference:\n--- fleet\n%s\n--- reference\n%s",
			fs.RenderTenants(), refFS.RenderTenants())
	}
	_ = sess2.Close()
}

// TestRouterNodeFailure cuts router→node connections mid-stream with
// scripted chaos faults (ErrInjected-wrapped, injected at the router's
// upstream dial): the router's node sessions redial and replay, the
// client sees every result exactly once, no event double-applies, and
// the final state matches an unfaulted 1-process run.
func TestRouterNodeFailure(t *testing.T) {
	model := catalog.SharedOrigin{ReplicationFraction: 0.25}
	evs := fleetSchedule(80, 37)

	ref := buildCluster(t, 2, model, nil)
	refSrv := httptest.NewServer(httpserve.NewHandler(ref))
	driveConn(t, refSrv.URL, evs)
	refFS := fetchSnapshot(t, refSrv.URL)
	refSrv.Close()

	// The first two router→node connections die after 10 writes each;
	// replacements are clean.
	dial := chaos.Dialer(func(i int) chaos.ConnScript {
		if i < 2 {
			return chaos.ConnScript{CutAfterWrites: 10}
		}
		return chaos.ConnScript{}
	}, nil)
	rig := buildFleetDial(t, 2, 2, model, dial)

	// A session client, so the router's upstream sessions are
	// inspectable after the drive.
	sess, err := streamclient.NewSession(rig.routerURL, streamclient.SessionOptions{ID: "chaos-client"})
	if err != nil {
		t.Fatal(err)
	}
	for i, ev := range evs {
		if err := sess.Send(ev); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		for {
			res, err := sess.Recv()
			if err != nil {
				t.Fatalf("recv %d: %v", i, err)
			}
			if res.Error != "" {
				t.Fatalf("event %d: %s", i, res.Error)
			}
			if res.Seq == i+1 {
				break
			}
		}
	}
	if err := sess.CloseSend(); err != nil {
		t.Fatal(err)
	}
	_ = sess.Close()

	rig.router.mu.Lock()
	rs := rig.router.sessions["chaos-client"]
	rig.router.mu.Unlock()
	if rs == nil {
		t.Fatal("router kept no session state for the chaos client")
	}
	redials := 0
	for _, ns := range rs.nodes {
		if ns != nil {
			redials += ns.Redials()
		}
	}
	// Two scripted cuts: beyond the two first dials, every extra
	// connection is a fault-driven redial.
	if redials < 4 {
		t.Fatalf("router upstream sessions opened %d connections, want >= 4 (two scripted cuts)", redials)
	}

	fs := fetchSnapshot(t, rig.routerURL)
	if fs.RenderTenants() != refFS.RenderTenants() {
		t.Fatalf("chaos fleet diverges from unfaulted reference:\n--- fleet\n%s\n--- reference\n%s",
			fs.RenderTenants(), refFS.RenderTenants())
	}
	if fs.Catalog == nil || refFS.Catalog == nil || fs.Catalog.Render() != refFS.Catalog.Render() {
		t.Fatal("chaos fleet catalog diverges from unfaulted reference (a double-applied settlement would show here)")
	}
}

// TestPlanPartition pins the contiguous shard→node split: every shard
// has exactly one owner, ranges are contiguous, and every tenant
// routes to the node owning its pinned shard.
func TestPlanPartition(t *testing.T) {
	for _, nodes := range []int{1, 2, 3, 5} {
		for _, shards := range []int{1, 2, 3, 4, 8, 9} {
			p := Plan{Nodes: nodes, Shards: shards}
			if err := p.Validate(); err != nil {
				t.Fatal(err)
			}
			prev := 0
			counts := make([]int, nodes)
			for s := 0; s < shards; s++ {
				n := p.NodeOfShard(s)
				if n < 0 || n >= nodes {
					t.Fatalf("N=%d S=%d: shard %d → node %d out of range", nodes, shards, s, n)
				}
				if n < prev {
					t.Fatalf("N=%d S=%d: shard %d → node %d breaks contiguity (prev %d)", nodes, shards, s, n, prev)
				}
				prev = n
				counts[n]++
			}
			owned := 0
			for n, c := range counts {
				owned += c
				if shards >= nodes && c == 0 {
					t.Fatalf("N=%d S=%d: node %d owns no shards", nodes, shards, n)
				}
			}
			if owned != shards {
				t.Fatalf("N=%d S=%d: %d shards owned, want %d", nodes, shards, owned, shards)
			}
			for tn := 0; tn < 3*shards; tn++ {
				if got, want := p.NodeOfTenant(tn), p.NodeOfShard(tn%shards); got != want {
					t.Fatalf("N=%d S=%d: tenant %d → node %d, want %d", nodes, shards, tn, got, want)
				}
			}
			if p.NodeOfTenant(-1) != 0 {
				t.Fatal("negative tenant must route to node 0")
			}
		}
	}
}
