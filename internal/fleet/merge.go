package fleet

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/cluster"
)

// MergeSnapshots folds per-node snapshots into one fleet view. Every
// node runs a full cluster, so each snapshot has a row for every
// tenant; the merge takes each tenant's row from its owning node
// (the only node that received its events), recomputes the fleet-wide
// sums from the merged rows exactly as the cluster's barrier does, and
// concatenates the nodes' shard tables with globally renumbered shard
// indexes. cat, when non-nil, is the fleet catalog state read from the
// catalog service (the nodes' own snapshots carry no registry — it
// lives in its own process).
//
// The merged per-tenant section is the node-count-invariance artifact:
// for a deterministic submission sequence it is bit-identical to the
// 1-process cluster's, whatever the node count.
func MergeSnapshots(plan Plan, snaps []*cluster.FleetSnapshot, cat *catalog.Snapshot) (*cluster.FleetSnapshot, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if len(snaps) != plan.Nodes {
		return nil, fmt.Errorf("fleet: merge got %d snapshots for a %d-node plan", len(snaps), plan.Nodes)
	}
	tenants := -1
	for n, s := range snaps {
		if s == nil {
			return nil, fmt.Errorf("fleet: merge: node %d snapshot missing", n)
		}
		if tenants == -1 {
			tenants = len(s.Tenants)
		} else if len(s.Tenants) != tenants {
			return nil, fmt.Errorf("fleet: merge: node %d has %d tenants, node 0 has %d (fleet nodes must share options)", n, len(s.Tenants), tenants)
		}
	}
	fs := &cluster.FleetSnapshot{
		Tenants:     make([]cluster.TenantSnapshot, tenants),
		AllFeasible: true,
		Catalog:     cat,
	}
	for t := 0; t < tenants; t++ {
		fs.Tenants[t] = snaps[plan.NodeOfTenant(t)].Tenants[t]
	}
	for _, snap := range fs.Tenants {
		fs.Utility += snap.Utility
		fs.Offered += snap.StreamsOffered
		fs.Admitted += snap.StreamsAdmitted
		fs.Departed += snap.StreamsDeparted
		fs.Leaves += snap.UserLeaves
		fs.Joins += snap.UserJoins
		fs.Resolves += snap.Resolves
		fs.Installs += snap.Installs
		fs.ActiveStreams += snap.ActiveStreams
		fs.Pairs += snap.Pairs
		if !snap.Feasible {
			fs.AllFeasible = false
		}
	}
	for _, s := range snaps {
		offset := fs.Shards
		for _, st := range s.ShardStats {
			st.Shard += offset
			fs.ShardStats = append(fs.ShardStats, st)
		}
		fs.Shards += s.Shards
	}
	return fs, nil
}
