package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/bounds"
	"repro/internal/catalog"
	"repro/internal/cluster"
	"repro/internal/exact"
	"repro/internal/generator"
	"repro/internal/online"
)

// E16Config parameterizes E16.
type E16Config struct {
	// Tenants is the fleet size; Channels/Gateways shape each tenant.
	Tenants, Channels, Gateways int
	// Seed drives instance generation and both workload generators.
	Seed int64
	// ShardCounts are the serving layouts swept; renders must be
	// bit-identical across them per cost model.
	ShardCounts []int
}

// DefaultE16 returns the parameters used by EXPERIMENTS.md.
func DefaultE16() E16Config {
	return E16Config{
		Tenants: 6, Channels: 12, Gateways: 4, Seed: 161,
		ShardCounts: []int{1, 2, 4},
	}
}

// e16Schedule builds E16's merged workload — Zipf background traffic
// with the scheduled flash crowd, plus diurnal stream/gateway churn —
// and returns it with the crowd's CatalogID and the index of the last
// crowd offer (the spike's peak, where refcounts are sampled).
func e16Schedule(cfg E16Config) ([]generator.Event, string, int, error) {
	zipf := generator.ZipfFlashCrowd{
		Tenants: cfg.Tenants, Channels: cfg.Channels, Gateways: cfg.Gateways,
		Seed: cfg.Seed, Rounds: 4, HoldRounds: 1, ZipfS: 1.6,
	}
	background, err := zipf.Generate()
	if err != nil {
		return nil, "", 0, err
	}
	churn, err := generator.Diurnal{
		Tenants: cfg.Tenants, Channels: cfg.Channels, Gateways: cfg.Gateways,
		Seed: cfg.Seed + 1, Days: 1, HourStep: 0.25,
		ExcludeChannel: zipf.CrowdChannel, // the crowd owns its channel
	}.Generate()
	if err != nil {
		return nil, "", 0, err
	}
	events := generator.Merge(background, churn)
	crowdID := zipf.CrowdID()
	peak := -1
	for i, ev := range events {
		if ev.Type == generator.EventCatalogOffer && ev.CatalogID == crowdID {
			peak = i
		}
	}
	if peak < 0 {
		return nil, "", 0, fmt.Errorf("E16: schedule has no crowd offers")
	}
	return events, crowdID, peak, nil
}

// e16Apply applies one generator event through the typed serving API.
// The generator's event vocabulary matches the wire's, so this is the
// same dispatch as e15Apply without the streamclient detour.
func e16Apply(c *cluster.Cluster, ev generator.Event) error {
	ctx := context.Background()
	var err error
	switch ev.Type {
	case generator.EventOffer:
		_, err = c.OfferStream(ctx, ev.Tenant, ev.Stream)
	case generator.EventDepart:
		_, err = c.DepartStream(ctx, ev.Tenant, ev.Stream)
	case generator.EventLeave:
		_, err = c.UserLeave(ctx, ev.Tenant, ev.User)
	case generator.EventJoin:
		_, err = c.UserJoin(ctx, ev.Tenant, ev.User)
	case generator.EventCatalogOffer:
		_, err = c.OfferCatalogStream(ctx, ev.Tenant, catalog.ID(ev.CatalogID))
	case generator.EventCatalogDepart:
		_, err = c.DepartCatalogStream(ctx, ev.Tenant, catalog.ID(ev.CatalogID))
	default:
		err = fmt.Errorf("E16: unknown event type %q", ev.Type)
	}
	return err
}

// e16Tenants builds the fleet. Unlike the durability drills' 0.25,
// the egress fraction leaves headroom for the spike: the point of the
// flash crowd is concurrent admissions of one CatalogID across most of
// the fleet, which a budget already saturated by background Zipf
// traffic would refuse tenant by tenant.
func e16Tenants(cfg E16Config) ([]cluster.TenantConfig, error) {
	tenants := make([]cluster.TenantConfig, cfg.Tenants)
	for i := range tenants {
		in, err := generator.CableTV{
			Channels: cfg.Channels, Gateways: cfg.Gateways,
			Seed: cfg.Seed + int64(i), EgressFraction: 0.8,
		}.Generate()
		if err != nil {
			return nil, err
		}
		tenants[i] = cluster.TenantConfig{Instance: in}
	}
	return tenants, nil
}

// e16CrowdEntry finds the crowd's catalog entry in a snapshot.
func e16CrowdEntry(c *cluster.Cluster, crowdID string) (catalog.EntrySnapshot, error) {
	snap, err := c.CatalogSnapshot()
	if err != nil {
		return catalog.EntrySnapshot{}, err
	}
	for _, e := range snap.Entries {
		if string(e.ID) == crowdID {
			return e, nil
		}
	}
	return catalog.EntrySnapshot{}, fmt.Errorf("E16: crowd entry %s missing from catalog snapshot", crowdID)
}

// E16FlashCrowd drives the merged Zipf + flash-crowd + diurnal-churn
// workload through the full cluster/catalog stack at several shard
// counts under both cost models. The flash crowd makes one CatalogID
// spike across most of the fleet at once — the shared-origin sweet
// spot and the refcount stress the registry was built for. The claim
// holds when, for every (model, shards) cell: the fleet stays feasible
// with positive utility at the spike's peak, the crowd entry's
// refcount returns to zero and its eviction fires exactly once (the
// schedule gives it exactly one occupancy cycle), the drain audit
// settles every entry at zero references, and both the peak and final
// renders are bit-identical across shard counts.
func E16FlashCrowd(cfg E16Config) (*Table, error) {
	t := &Table{
		ID:    "E16",
		Title: "Flash-crowd and diurnal workload through the serving stack",
		Claim: "Skewed production-shaped traffic (Zipf popularity, a one-shot " +
			"flash crowd, day/night churn) keeps the fleet feasible; catalog " +
			"refcounts drain to zero, the crowd eviction fires exactly once, " +
			"and renders are shard-count invariant",
		Columns: []string{"cost model", "shards", "events", "peak utility",
			"peak crowd refs", "crowd evictions", "refs drained", "identical"},
	}
	events, crowdID, peak, err := e16Schedule(cfg)
	if err != nil {
		return nil, err
	}
	allOK := true
	for _, m := range e15Models {
		var refTables, refCat string
		for si, shards := range cfg.ShardCounts {
			tenants, err := e16Tenants(cfg)
			if err != nil {
				return nil, err
			}
			c, err := cluster.New(tenants, cluster.Options{
				Shards: shards, BatchSize: 8,
				Catalog: &cluster.CatalogOptions{
					Streams:   catalog.IdentityBindings(cfg.Tenants, cfg.Channels, e14ChannelID),
					CostModel: m.model,
				},
			})
			if err != nil {
				return nil, err
			}
			for _, ev := range events[:peak+1] {
				if err := e16Apply(c, ev); err != nil {
					_ = c.Close()
					return nil, err
				}
			}
			fs, err := c.Snapshot()
			if err != nil {
				_ = c.Close()
				return nil, err
			}
			peakUtility, peakFeasible := fs.Utility, fs.AllFeasible
			peakTables := fs.RenderTenants()
			crowdPeak, err := e16CrowdEntry(c, crowdID)
			if err != nil {
				_ = c.Close()
				return nil, err
			}
			for _, ev := range events[peak+1:] {
				if err := e16Apply(c, ev); err != nil {
					_ = c.Close()
					return nil, err
				}
			}
			crowdEnd, err := e16CrowdEntry(c, crowdID)
			if err != nil {
				_ = c.Close()
				return nil, err
			}
			drained, err := e15DrainRefs(c)
			if err != nil {
				_ = c.Close()
				return nil, err
			}
			endTables, endCat, err := e14Renders(c)
			if err != nil {
				_ = c.Close()
				return nil, err
			}
			_ = c.Close()

			identical := true
			if si == 0 {
				refTables, refCat = peakTables+endTables, endCat
			} else {
				identical = refTables == peakTables+endTables && refCat == endCat
			}
			ok := peakFeasible && peakUtility > 0 &&
				crowdPeak.Refs >= 2 && crowdEnd.Refs == 0 &&
				crowdEnd.Evictions == 1 && drained && identical
			if !ok {
				allOK = false
			}
			t.Rows = append(t.Rows, []string{
				m.name, d(shards), d(len(events)), f1(peakUtility),
				d(crowdPeak.Refs), d(crowdEnd.Evictions),
				fmt.Sprintf("%v", crowdEnd.Refs == 0 && drained),
				fmt.Sprintf("%v", identical),
			})
		}
	}
	t.Verdict = verdict(allOK)
	t.Notes = "The crowd CatalogID is excluded from background and churn sampling, " +
		"so its entry has exactly one occupancy cycle: refs 0 -> crowd size -> 0, " +
		"one eviction. Peak columns are sampled at the last crowd offer; renders " +
		"compare peak tables plus final tables and catalog across shard counts."
	return t, nil
}

// E17Config parameterizes E17.
type E17Config struct {
	// Streams and Users size each instance (small enough for the exact
	// solver to provide the reference optimum).
	Streams, Users int
	// Orders is the number of random arrival orders per instance.
	Orders int
	// Fractions is the stream-size sweep: each instance's largest
	// cost-to-budget ratio. Values at or below 1/log2(mu) are inside
	// the Section 5 small-streams hypothesis; larger values violate it.
	Fractions []float64
	// Seed drives instance generation and the arrival orders.
	Seed int64
}

// DefaultE17 returns the parameters used by EXPERIMENTS.md.
func DefaultE17() E17Config {
	return E17Config{
		Streams: 10, Users: 3, Orders: 4,
		Fractions: []float64{0.05, 0.1, 0.2, 0.3, 0.45, 0.6, 0.8, 0.95},
		Seed:      171,
	}
}

// E17CompetitiveStress measures where the online allocator's guarantee
// actually degrades. The LargeStreams generator pins each instance's
// largest cost as an exact fraction of the server budget — the knob the
// small-streams hypothesis turns on — and the sweep walks that fraction
// from well inside the regime to an outright violation. Every instance
// is solved exactly for the reference optimum (sanity-checked against
// the combinatorial upper bounds), then replayed through the online
// allocator under several random arrival orders. In-regime rows must
// respect Theorem 5.4 (worst ratio <= 1 + 2*log2(mu)) with zero
// feasibility violations; out-of-regime rows map the degradation curve
// and may legitimately exceed the bound or go infeasible — that is the
// measurement, not a failure.
func E17CompetitiveStress(cfg E17Config) (*Table, error) {
	t := &Table{
		ID:    "E17",
		Title: "Adversarial stream sizes: competitive ratio vs the hypothesis",
		Claim: "Theorem 5.4's ratio bound holds on every instance satisfying the " +
			"small-streams hypothesis; outside it the guarantee is void and the " +
			"measured ratio maps the degradation",
		Columns: []string{"size fraction", "regime", "mu", "bound",
			"worst ratio over orders", "violations"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	allOK := true
	inRegimeRows, outRegimeRows := 0, 0
	var xs, ys []float64
	for fi, fraction := range cfg.Fractions {
		in, err := generator.LargeStreams{
			Streams: cfg.Streams, Users: cfg.Users,
			Seed: cfg.Seed + int64(fi), SizeFraction: fraction,
		}.Generate()
		if err != nil {
			return nil, err
		}
		norm, err := online.Normalize(in)
		if err != nil {
			return nil, err
		}
		inRegime := online.CheckSmallStreams(norm.Instance, norm.Mu()) == nil
		opt, err := exact.Solve(in, exact.Options{})
		if err != nil {
			return nil, err
		}
		if opt.Value <= 0 {
			return nil, fmt.Errorf("E17: fraction %v produced a zero-optimum instance", fraction)
		}
		// The reference optimum is itself cross-checked: it can never
		// exceed the combinatorial upper bounds.
		if ub := bounds.UpperBound(in); opt.Value > ub+1e-9 {
			return nil, fmt.Errorf("E17: exact OPT %v exceeds upper bound %v", opt.Value, ub)
		}
		bound := norm.CompetitiveBound()
		worst := 0.0
		violations := 0
		for o := 0; o < cfg.Orders; o++ {
			al, err := online.NewAllocator(norm.Instance, norm.Mu())
			if err != nil {
				return nil, err
			}
			a := al.RunSequence(rng.Perm(in.NumStreams()))
			if a.CheckFeasible(in) != nil {
				violations++
			}
			r := opt.Value / math.Max(a.Utility(in), 1e-12)
			worst = math.Max(worst, r)
		}
		regime := "in"
		if inRegime {
			inRegimeRows++
			if violations > 0 || worst > bound+1e-9 {
				allOK = false
			}
		} else {
			regime = "OUT"
			outRegimeRows++
		}
		xs = append(xs, fraction)
		ys = append(ys, worst)
		t.Rows = append(t.Rows, []string{
			f(fraction), regime, f1(norm.Mu()), f1(bound), f(worst), d(violations),
		})
	}
	// The sweep must actually cross the hypothesis boundary, or the
	// experiment measured nothing.
	if inRegimeRows == 0 || outRegimeRows == 0 {
		return nil, fmt.Errorf("E17: sweep never crossed the regime boundary (%d in, %d out)",
			inRegimeRows, outRegimeRows)
	}
	t.Verdict = verdict(allOK)
	t.Notes = "Normalize preserves cost-to-budget ratios, so the size fraction alone " +
		"decides the regime (in iff fraction <= 1/log2(mu)); the regime column is " +
		"classified per instance by CheckSmallStreams, never analytically. OUT rows " +
		"void the Theorem 5.4 precondition: ratios above the bound there are the " +
		"degradation map, not violations."
	t.Figure = asciiLogLog("E17 worst competitive ratio vs stream size fraction",
		xs, ys, 0, 44, 10)
	return t, nil
}
