package experiments

import (
	"math/rand"

	"repro/internal/exact"
	"repro/internal/mmd"
	"repro/internal/reduction"
	"repro/internal/smd"
)

// Thin wrappers so the experiment files read declaratively.

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func generatorTightness(m, mc int) (*mmd.Instance, error) {
	return reduction.TightnessInstance(m, mc)
}

func smdFromMMD(in *mmd.Instance) *smd.Instance { return smd.FromMMD(in) }

func smdFixedGreedy(in *smd.Instance) (*smd.FixedResult, error) {
	return smd.FixedGreedy(in)
}

func exactValue(in *mmd.Instance) (float64, error) {
	res, err := exact.Solve(in, exact.Options{})
	if err != nil {
		return 0, err
	}
	return res.Value, nil
}
