package experiments

import (
	"strings"
	"testing"
)

func TestE1HoldsOnReducedConfig(t *testing.T) {
	tab, err := E1GreedyRatio(E1Config{Trials: 6, Sizes: []int{8}, Users: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Verdict != "HOLDS" {
		t.Fatalf("E1 verdict = %s", tab.Verdict)
	}
	if len(tab.Rows) != 1 || len(tab.Rows[0]) != len(tab.Columns) {
		t.Fatal("E1 table malformed")
	}
}

func TestE2HoldsOnReducedConfig(t *testing.T) {
	tab, err := E2ReducedBudget(E2Config{Trials: 8, Streams: 8, Users: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Verdict != "HOLDS" {
		t.Fatalf("E2 verdict = %s", tab.Verdict)
	}
}

func TestE3HoldsOnReducedConfig(t *testing.T) {
	tab, err := E3SkewSweep(E3Config{Alphas: []float64{1, 16}, Trials: 4, Streams: 8, Users: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Verdict != "HOLDS" {
		t.Fatalf("E3 verdict = %s", tab.Verdict)
	}
}

func TestE4HoldsOnReducedConfig(t *testing.T) {
	tab, err := E4PipelineRatio(E4Config{Ms: []int{1, 2}, MCs: []int{1}, Trials: 3, Streams: 8, Users: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Verdict != "HOLDS" {
		t.Fatalf("E4 verdict = %s", tab.Verdict)
	}
}

func TestE5HoldsOnReducedConfig(t *testing.T) {
	tab, err := E5Tightness(E5Config{Grid: [][2]int{{2, 2}, {3, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Verdict != "HOLDS" {
		t.Fatalf("E5 verdict = %s", tab.Verdict)
	}
}

func TestE6HoldsOnReducedConfig(t *testing.T) {
	tab, err := E6OnlineRatio(E6Config{Trials: 3, Streams: 8, Users: 3, M: 2, MC: 1, Orders: 3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Verdict != "HOLDS" {
		t.Fatalf("E6 verdict = %s", tab.Verdict)
	}
}

func TestE8AndE9AndE10Run(t *testing.T) {
	if _, err := E8PartialEnum(E8Config{Trials: 3, Streams: 8, Users: 3, Seeds: []int{0, 1}, Seed: 8}); err != nil {
		t.Fatal(err)
	}
	tab, err := E9VsThreshold(E9Config{Seeds: 3, Channels: 30, Gateways: 8, EgressFraction: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Verdict != "HOLDS" {
		t.Fatalf("E9 verdict = %s", tab.Verdict)
	}
	tab10, err := E10EndToEnd(E10Config{Channels: 25, Gateways: 6, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if tab10.Verdict != "HOLDS" {
		t.Fatalf("E10 verdict = %s", tab10.Verdict)
	}
}

func TestE12HoldsOnReducedConfig(t *testing.T) {
	tab, err := E12Cluster(E12Config{
		Tenants: 4, Channels: 12, Gateways: 4, Seed: 12,
		Rounds: 2, DepartEvery: 3, ChurnEvery: 5,
		ShardCounts: []int{1, 2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Verdict != "HOLDS" {
		t.Fatalf("E12 verdict = %s", tab.Verdict)
	}
	if len(tab.Rows) != 3 || len(tab.Rows[0]) != len(tab.Columns) {
		t.Fatal("E12 table malformed")
	}
}

func TestE14HoldsOnDefaultConfig(t *testing.T) {
	tab, err := E14CrashRecovery(DefaultE14())
	if err != nil {
		t.Fatal(err)
	}
	if tab.Verdict != "HOLDS" {
		t.Fatalf("E14 verdict = %s", tab.Verdict)
	}
	// 3 shard counts x 2 cost models, every row verified and identical.
	if len(tab.Rows) != 6 || len(tab.Rows[0]) != len(tab.Columns) {
		t.Fatalf("E14 table malformed: %v", tab.Rows)
	}
	for _, row := range tab.Rows {
		if row[4] != "true" || row[5] != "true" {
			t.Fatalf("E14 row not bit-identical: %v", row)
		}
	}
}

func TestE15HoldsOnDefaultConfig(t *testing.T) {
	cfg := DefaultE15()
	if testing.Short() {
		// The chaos smoke keeps one representative layout per drill.
		cfg.ShardCounts = []int{2, 4}
	}
	tab, err := E15ChaosDrills(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Verdict != "HOLDS" {
		t.Fatalf("E15 verdict = %s", tab.Verdict)
	}
	// Disconnect runs shard counts x both models; fsync and flash-crowd
	// run once per shard count; the multi-node fleet cell runs once.
	want := len(cfg.ShardCounts)*len(e15Models) + 2*len(cfg.ShardCounts) + 1
	if len(tab.Rows) != want || len(tab.Rows[0]) != len(tab.Columns) {
		t.Fatalf("E15 table malformed (%d rows, want %d): %v", len(tab.Rows), want, tab.Rows)
	}
	for _, row := range tab.Rows {
		if row[6] != "true" || row[7] != "true" {
			t.Fatalf("E15 row failed: %v", row)
		}
	}
}

func TestE16HoldsOnDefaultConfig(t *testing.T) {
	cfg := DefaultE16()
	if testing.Short() {
		// The workload smoke keeps two shard counts so shard-count
		// invariance is still compared, not vacuous.
		cfg.ShardCounts = []int{1, 2}
	}
	tab, err := E16FlashCrowd(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Verdict != "HOLDS" {
		t.Fatalf("E16 verdict = %s", tab.Verdict)
	}
	want := len(cfg.ShardCounts) * len(e15Models)
	if len(tab.Rows) != want || len(tab.Rows[0]) != len(tab.Columns) {
		t.Fatalf("E16 table malformed (%d rows, want %d): %v", len(tab.Rows), want, tab.Rows)
	}
	for _, row := range tab.Rows {
		if row[6] != "true" || row[7] != "true" {
			t.Fatalf("E16 row failed: %v", row)
		}
	}
}

func TestE17HoldsOnDefaultConfig(t *testing.T) {
	cfg := DefaultE17()
	if testing.Short() {
		// Keep both regimes represented with fewer sweep points.
		cfg.Fractions = []float64{0.05, 0.45, 0.95}
		cfg.Orders = 2
	}
	tab, err := E17CompetitiveStress(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Verdict != "HOLDS" {
		t.Fatalf("E17 verdict = %s", tab.Verdict)
	}
	if len(tab.Rows) != len(cfg.Fractions) || len(tab.Rows[0]) != len(tab.Columns) {
		t.Fatalf("E17 table malformed: %v", tab.Rows)
	}
	if tab.Figure == "" {
		t.Fatal("E17 degradation figure missing")
	}
	seen := map[string]bool{}
	for _, row := range tab.Rows {
		seen[row[1]] = true
	}
	if !seen["in"] || !seen["OUT"] {
		t.Fatalf("E17 sweep did not cross the regime boundary: %v", tab.Rows)
	}
}

func TestE13HoldsOnDefaultConfig(t *testing.T) {
	tab, err := E13SharedCatalog(DefaultE13())
	if err != nil {
		t.Fatal(err)
	}
	if tab.Verdict != "HOLDS" {
		t.Fatalf("E13 verdict = %s", tab.Verdict)
	}
	if len(tab.Rows) != 3 || len(tab.Rows[0]) != len(tab.Columns) {
		t.Fatal("E13 table malformed")
	}
	// The default config is chosen so the claim is not vacuous: at full
	// overlap the shared fleet strictly beats the isolated fleet and
	// saves strictly more origin cost than at half overlap.
	last, mid := tab.Rows[2], tab.Rows[1]
	if last[1] == last[2] {
		t.Fatalf("E13: shared utility did not strictly improve: %v", last)
	}
	if mid[3] == last[3] {
		t.Fatalf("E13: savings did not strictly grow with overlap: %v vs %v", mid, last)
	}
}

func TestAblationsRun(t *testing.T) {
	a1, err := A1LiftAblation(A1Config{Trials: 4, Streams: 8, Users: 3, M: 2, MC: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if a1.Verdict != "HOLDS" {
		t.Fatalf("A1 verdict = %s", a1.Verdict)
	}
	a2, err := A2BlockingFamily(A2Config{Gaps: []float64{10, 100}})
	if err != nil {
		t.Fatal(err)
	}
	if a2.Verdict != "HOLDS" {
		t.Fatalf("A2 verdict = %s", a2.Verdict)
	}
	a3, err := A3MuSensitivity(A3Config{Streams: 15, Users: 4, M: 2, MC: 1, Seed: 13,
		Factors: []float64{0.5, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if a3.Verdict != "HOLDS" {
		t.Fatalf("A3 verdict = %s", a3.Verdict)
	}
}

func TestMarkdownRendering(t *testing.T) {
	tab := &Table{
		ID:      "EX",
		Title:   "demo",
		Claim:   "claim text",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}},
		Verdict: "HOLDS",
		Notes:   "note",
	}
	md := tab.Markdown()
	for _, want := range []string{"### EX", "**Paper claim.** claim text", "| a | b |", "| 1 | 2 |", "HOLDS", "*note*"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestE7Scaling(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	tab, err := E7GreedyScaling(E7Config{
		Sizes: [][2]int{{40, 8}, {80, 16}}, Seed: 7, Repeats: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatal("E7 rows missing")
	}
}
