package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/catalog/remote"
	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/fleet"
	"repro/internal/httpserve"
	"repro/internal/wal"
	"repro/streamclient"
)

// E15Config parameterizes E15.
type E15Config struct {
	// Tenants is the fleet size (it must be at least the largest shard
	// count — the cluster clamps shards to tenants); Channels/Gateways
	// shape each tenant.
	Tenants, Channels, Gateways int
	// Seed drives instance generation and every chaos plan.
	Seed int64
	// ShardCounts are the serving layouts drilled; each crashed fleet
	// recovers into the NEXT count in the list (wrapping).
	ShardCounts []int
	// FailSyncAt is the fsync-fault drill's trigger: the Nth sync on
	// the shard-0 segment fails and latches (the count includes the
	// open-time preallocation sync).
	FailSyncAt int
}

// DefaultE15 returns the parameters used by EXPERIMENTS.md.
func DefaultE15() E15Config {
	return E15Config{
		Tenants: 8, Channels: 8, Gateways: 3, Seed: 151,
		ShardCounts: []int{1, 2, 4, 8},
		FailSyncAt:  40,
	}
}

// e15Models is the catalog cost-model sweep shared by the drills.
var e15Models = []struct {
	name  string
	model catalog.CostModel
}{
	{"isolated", catalog.Isolated{}},
	{"shared-origin", catalog.SharedOrigin{ReplicationFraction: 0.25}},
}

// e15Options builds the fleet options for one drill run.
func e15Options(cfg E15Config, shards int, model catalog.CostModel) cluster.Options {
	return cluster.Options{
		Shards: shards, BatchSize: 8,
		Catalog: &cluster.CatalogOptions{
			Streams:   catalog.IdentityBindings(cfg.Tenants, cfg.Channels, e14ChannelID),
			CostModel: model,
		},
	}
}

// e15Schedule is the deterministic serial drill schedule in wire form —
// the same interleaving of plain offers, catalog offers, departures,
// and gateway churn e14Drive submits, but as streamclient events so the
// disconnect drill can push it through the HTTP front end while the
// control fleet applies it directly.
func e15Schedule(cfg E15Config) []streamclient.Event {
	var out []streamclient.Event
	for round := 0; round < 2; round++ {
		for t := 0; t < cfg.Tenants; t++ {
			for s := 0; s < cfg.Channels; s++ {
				if s%3 == 0 {
					out = append(out, streamclient.Event{Tenant: t, Type: "catalog-offer", CatalogID: string(e14ChannelID(s))})
				} else {
					out = append(out, streamclient.Event{Tenant: t, Type: "offer", Stream: s})
				}
				if s%3 == 2 && s > 2 {
					if s%6 == 5 {
						out = append(out, streamclient.Event{Tenant: t, Type: "catalog-depart", CatalogID: string(e14ChannelID(s - 2))})
					} else {
						out = append(out, streamclient.Event{Tenant: t, Type: "depart", Stream: s - 1})
					}
				}
				if s%5 == 4 {
					out = append(out, streamclient.Event{Tenant: t, Type: "leave", User: (s + t) % cfg.Gateways})
					out = append(out, streamclient.Event{Tenant: t, Type: "join", User: (s + t) % cfg.Gateways})
				}
			}
		}
	}
	return out
}

// e15Apply applies one wire event through the typed serving API (the
// control fleets stand in for a client that never loses a connection).
func e15Apply(c *cluster.Cluster, ev streamclient.Event) error {
	ctx := context.Background()
	var err error
	switch ev.Type {
	case "offer":
		_, err = c.OfferStream(ctx, ev.Tenant, ev.Stream)
	case "depart":
		_, err = c.DepartStream(ctx, ev.Tenant, ev.Stream)
	case "leave":
		_, err = c.UserLeave(ctx, ev.Tenant, ev.User)
	case "join":
		_, err = c.UserJoin(ctx, ev.Tenant, ev.User)
	case "catalog-offer":
		_, err = c.OfferCatalogStream(ctx, ev.Tenant, catalog.ID(ev.CatalogID))
	case "catalog-depart":
		_, err = c.DepartCatalogStream(ctx, ev.Tenant, catalog.ID(ev.CatalogID))
	default:
		err = fmt.Errorf("e15: unknown wire type %q", ev.Type)
	}
	return err
}

// e15DrainRefs is the reference audit: depart every confirmed catalog
// holder on the recovered fleet and check the registry settles to zero
// references. A reference a crashed connection leaked, or one a
// replayed event double-acquired, cannot reach zero here.
func e15DrainRefs(c *cluster.Cluster) (bool, error) {
	snap, err := c.CatalogSnapshot()
	if err != nil {
		return false, err
	}
	ctx := context.Background()
	for _, e := range snap.Entries {
		for _, t := range e.Holders {
			if _, err := c.DepartCatalogStream(ctx, t, e.ID); err != nil {
				return false, fmt.Errorf("drain %s at tenant %d: %w", e.ID, t, err)
			}
		}
	}
	snap, err = c.CatalogSnapshot()
	if err != nil {
		return false, err
	}
	for _, e := range snap.Entries {
		if e.Refs != 0 {
			return false, nil
		}
	}
	return true, nil
}

// e15Control builds a fault-free fleet, applies the first n schedule
// events, and returns its renders.
func e15Control(cfg E15Config, shards int, model catalog.CostModel, schedule []streamclient.Event) (*cluster.Cluster, error) {
	tenants, err := e14Tenants(E14Config{
		Tenants: cfg.Tenants, Channels: cfg.Channels, Gateways: cfg.Gateways, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	c, err := cluster.New(tenants, e15Options(cfg, shards, model))
	if err != nil {
		return nil, err
	}
	for i, ev := range schedule {
		if err := e15Apply(c, ev); err != nil {
			_ = c.Close()
			return nil, fmt.Errorf("control event %d: %w", i, err)
		}
	}
	return c, nil
}

// e15Tenants regenerates the fleet (one call per simulated process
// lifetime, like e14Tenants).
func e15Tenants(cfg E15Config) ([]cluster.TenantConfig, error) {
	return e14Tenants(E14Config{
		Tenants: cfg.Tenants, Channels: cfg.Channels, Gateways: cfg.Gateways, Seed: cfg.Seed,
	})
}

// e15Disconnect is the disconnect-storm drill: the schedule is driven
// through the real HTTP front end by a resumable streamclient.Session
// while a seeded chaos listener cuts, stalls, and partial-writes the
// connections under it. The client reconnects with backoff and replays
// its unacked window; the server's session watermark turns replays of
// already-applied events into dup acknowledgements. The fleet is then
// abandoned (crash) and recovered into a different shard count; its
// renders must match a control fleet that applied the same schedule
// over a connection that never failed.
func e15Disconnect(cfg E15Config, shards, recoverShards int, mi int) ([]string, bool, error) {
	m := e15Models[mi]
	schedule := e15Schedule(cfg)

	control, err := e15Control(cfg, shards, m.model, schedule)
	if err != nil {
		return nil, false, err
	}
	wantTables, wantCat, err := e14Renders(control)
	if err != nil {
		return nil, false, err
	}
	if err := control.Close(); err != nil {
		return nil, false, err
	}

	dir, err := os.MkdirTemp("", "e15-storm-*")
	if err != nil {
		return nil, false, err
	}
	defer os.RemoveAll(dir)
	opts := e15Options(cfg, shards, m.model)
	opts.WAL = &cluster.WALOptions{Dir: dir, Sync: wal.SyncBatch}
	tenants, err := e15Tenants(cfg)
	if err != nil {
		return nil, false, err
	}
	doomed, err := cluster.New(tenants, opts)
	if err != nil {
		return nil, false, err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, false, err
	}
	scripts := chaos.PlanConnScripts(cfg.Seed+int64(shards)*31+int64(mi), 64)
	srv := &http.Server{Handler: httpserve.NewHandlerOpts(doomed, httpserve.Options{
		StreamWriteTimeout: 5 * time.Second,
	})}
	go func() {
		_ = srv.Serve(chaos.WrapListener(ln, func(i int) chaos.ConnScript { return scripts[i%len(scripts)] }))
	}()

	sid := fmt.Sprintf("e15-storm-%d-%s", shards, m.name)
	sess, err := streamclient.NewSession("http://"+ln.Addr().String(), streamclient.SessionOptions{
		ID: sid, Seed: cfg.Seed,
		MaxAttempts: 16,
		BaseDelay:   2 * time.Millisecond,
		MaxDelay:    50 * time.Millisecond,
	})
	if err != nil {
		return nil, false, err
	}
	for i, ev := range schedule {
		if err := sess.Send(ev); err != nil {
			return nil, false, fmt.Errorf("storm send %d: %w", i, err)
		}
		// Serial driving: wait for this event's ack (a typed result or a
		// dup acknowledgement) before the next submit, so the applied
		// order is the schedule order no matter where connections die.
		for budget := 0; ; budget++ {
			res, rerr := sess.Recv()
			if rerr != nil {
				return nil, false, fmt.Errorf("storm recv %d: %w", i, rerr)
			}
			if res.Error != "" {
				return nil, false, fmt.Errorf("storm event %d: server error %q", i, res.Error)
			}
			if res.Seq == i+1 {
				break
			}
			if budget > len(schedule) {
				return nil, false, fmt.Errorf("storm event %d: ack never arrived (last seq %d)", i, res.Seq)
			}
		}
	}
	if err := sess.CloseSend(); err != nil {
		return nil, false, err
	}
	for {
		if _, err := sess.Recv(); err == io.EOF {
			break
		} else if err != nil {
			return nil, false, fmt.Errorf("storm drain: %w", err)
		}
	}
	dups, redials := sess.Dups(), sess.Redials()
	_ = sess.Close()
	_ = srv.Close()
	// The fleet is abandoned here — no Close — modeling a crash right
	// after the last ack.

	tenants, err = e15Tenants(cfg)
	if err != nil {
		return nil, false, err
	}
	recOpts := opts
	recOpts.Shards = recoverShards
	recovered, rep, err := cluster.Recover(tenants, recOpts)
	if err != nil {
		return nil, false, fmt.Errorf("storm recover %d->%d (%s): %w", shards, recoverShards, m.name, err)
	}
	gotTables, gotCat, err := e14Renders(recovered)
	if err != nil {
		return nil, false, err
	}
	identical := gotTables == wantTables && gotCat == wantCat
	watermarkOK := rep.SessionWatermarks[sid] == uint64(len(schedule))
	refsZero, err := e15DrainRefs(recovered)
	if err != nil {
		return nil, false, err
	}
	if err := recovered.Close(); err != nil {
		return nil, false, err
	}

	ok := identical && watermarkOK && refsZero && redials >= 2
	row := []string{
		"disconnect", d(shards), d(recoverShards), m.name, d(len(schedule)),
		fmt.Sprintf("redials=%d dups=%d watermark=%v", redials, dups, watermarkOK),
		fmt.Sprintf("%v", identical),
		fmt.Sprintf("%v", refsZero),
	}
	return row, ok, nil
}

// e15Fsync is the fsync-fault drill: the shard-0 segment's Nth sync
// fails and latches, so under group commit the in-flight event's ack
// arrives as ErrNotDurable and every later submission fails fast. The
// abandoned log is recovered (clean disk) into a different shard
// count; because driving was serial with one event in flight, the
// recovered state must equal the control after k acked events or k+1 —
// the failed event's bytes reached the file even though its fsync
// lied, so it may legitimately survive. Nothing past the latch may.
func e15Fsync(cfg E15Config, recoverShards int, mi int) ([]string, bool, error) {
	m := e15Models[mi]
	schedule := e15Schedule(cfg)

	dir, err := os.MkdirTemp("", "e15-fsync-*")
	if err != nil {
		return nil, false, err
	}
	defer os.RemoveAll(dir)
	opts := e15Options(cfg, 1, m.model)
	opts.WAL = &cluster.WALOptions{
		Dir: dir, Sync: wal.SyncBatch,
		FS: chaos.NewFS(nil, chaos.FileFault{Match: "-s0.", FailSyncAt: cfg.FailSyncAt}),
	}
	tenants, err := e15Tenants(cfg)
	if err != nil {
		return nil, false, err
	}
	doomed, err := cluster.New(tenants, opts)
	if err != nil {
		return nil, false, err
	}

	acked := 0
	var firstErr error
	for _, ev := range schedule {
		if err := e15Apply(doomed, ev); err != nil {
			firstErr = err
			break
		}
		acked++
	}
	if firstErr == nil {
		return nil, false, fmt.Errorf("fsync fault at %d never fired over %d events", cfg.FailSyncAt, len(schedule))
	}
	notDurable := errors.Is(firstErr, cluster.ErrNotDurable)
	// Fail fast: the appender latched, so the next submissions must be
	// refused too — no ack may ever ride past a failed sync.
	failFast := true
	for i := acked + 1; i < len(schedule) && i <= acked+3; i++ {
		if err := e15Apply(doomed, schedule[i]); err == nil {
			failFast = false
		}
	}
	// Abandoned here — the latched fleet is dead hardware.

	control, err := e15Control(cfg, recoverShards, m.model, schedule[:acked])
	if err != nil {
		return nil, false, err
	}
	wantKTables, wantKCat, err := e14Renders(control)
	if err != nil {
		return nil, false, err
	}
	if err := e15Apply(control, schedule[acked]); err != nil {
		return nil, false, err
	}
	wantK1Tables, wantK1Cat, err := e14Renders(control)
	if err != nil {
		return nil, false, err
	}
	if err := control.Close(); err != nil {
		return nil, false, err
	}

	tenants, err = e15Tenants(cfg)
	if err != nil {
		return nil, false, err
	}
	recOpts := opts
	recOpts.Shards = recoverShards
	recOpts.WAL = &cluster.WALOptions{Dir: dir, Sync: wal.SyncBatch} // clean disk for the new generation
	recovered, rep, err := cluster.Recover(tenants, recOpts)
	if err != nil {
		return nil, false, fmt.Errorf("fsync recover into %d (%s): %w", recoverShards, m.name, err)
	}
	gotTables, gotCat, err := e14Renders(recovered)
	if err != nil {
		return nil, false, err
	}
	identical := (gotTables == wantKTables && gotCat == wantKCat) ||
		(gotTables == wantK1Tables && gotCat == wantK1Cat)
	refsZero, err := e15DrainRefs(recovered)
	if err != nil {
		return nil, false, err
	}
	if err := recovered.Close(); err != nil {
		return nil, false, err
	}

	ok := identical && notDurable && failFast && refsZero
	row := []string{
		"fsync-fault", "1", d(recoverShards), m.name, d(rep.Events),
		fmt.Sprintf("fsync@%d acked=%d not-durable=%v fail-fast=%v", cfg.FailSyncAt, acked, notDurable, failFast),
		fmt.Sprintf("%v", identical),
		fmt.Sprintf("%v", refsZero),
	}
	return row, ok, nil
}

// e15FlashCrowd is the queue-storm drill: seeded bursts of concurrent
// submitters hammer a fleet with a deliberately tiny shard queue under
// fail-fast backpressure, while a streaming connection's consumer
// stalls so the in-flight window takes pressure too. Rejected events
// vanish (fast 429-class failures); applied events are durable. The
// pre-crash barrier snapshot is the drill's own control: recovery into
// a different shard count must reproduce it bit-identically even
// though the schedule was a nondeterministic concurrent interleave —
// the WAL's log order is the truth the replay follows.
func e15FlashCrowd(cfg E15Config, shards, recoverShards int, mi int) ([]string, bool, error) {
	m := e15Models[mi]
	dir, err := os.MkdirTemp("", "e15-crowd-*")
	if err != nil {
		return nil, false, err
	}
	defer os.RemoveAll(dir)
	opts := e15Options(cfg, shards, m.model)
	opts.QueueDepth = 2
	opts.Backpressure = cluster.BackpressureReject
	opts.WAL = &cluster.WALOptions{Dir: dir, Sync: wal.SyncBatch}
	tenants, err := e15Tenants(cfg)
	if err != nil {
		return nil, false, err
	}
	doomed, err := cluster.New(tenants, opts)
	if err != nil {
		return nil, false, err
	}

	ctx := context.Background()
	sc, err := doomed.OpenStream(cluster.StreamOptions{Window: 64})
	if err != nil {
		return nil, false, err
	}
	var rejected atomic.Int64
	pending := 0
	bursts := chaos.PlanStorm(cfg.Seed+int64(shards)*17+int64(mi), 3)
	for bi, b := range bursts {
		if b.StallConsumer {
			// Pile events onto the stream while nothing Recvs: the
			// in-flight window, not just the shard queues, holds the
			// storm's state until the post-burst drain.
			for e := 0; e < 8; e++ {
				ev := cluster.Event{
					Type:   cluster.EventStreamArrival,
					Tenant: (bi + e) % cfg.Tenants, Stream: (bi*3 + e) % cfg.Channels,
				}
				if err := sc.Submit(ctx, ev); err != nil {
					if !errors.Is(err, cluster.ErrQueueFull) {
						return nil, false, fmt.Errorf("crowd stream submit: %w", err)
					}
					rejected.Add(1)
				} else {
					pending++
				}
			}
		}
		// A flash crowd is one concurrent caller per request, not a few
		// serial ones: every event of the burst races its own goroutine,
		// and the whole crowd lands on one hot tenant, so its shard queue
		// overflows even when the fleet has many shards. The typed API
		// blocks each caller until its ack, so the crowd's concurrency is
		// the real queue pressure.
		var wg sync.WaitGroup
		var bad atomic.Value
		for g := 0; g < b.Submitters; g++ {
			for e := 0; e < b.EventsPer; e++ {
				wg.Add(1)
				go func(g, e int) {
					defer wg.Done()
					s := (bi*7 + g*3 + e) % cfg.Channels
					var err error
					switch e % 3 {
					case 0:
						_, err = doomed.OfferCatalogStream(ctx, 0, e14ChannelID(s))
					case 1:
						_, err = doomed.OfferStream(ctx, 0, s)
					default:
						_, err = doomed.DepartStream(ctx, 0, s)
					}
					if errors.Is(err, cluster.ErrQueueFull) {
						rejected.Add(1)
					} else if errors.Is(err, cluster.ErrClosed) || errors.Is(err, cluster.ErrCanceled) {
						bad.Store(err) // transport-level failures are drill bugs; data-level rejects are the workload
					}
				}(g, e)
			}
		}
		wg.Wait()
		if err, _ := bad.Load().(error); err != nil {
			return nil, false, fmt.Errorf("crowd submitter: %w", err)
		}
	}
	for i := 0; i < pending; i++ {
		if _, err := sc.Recv(ctx); err != nil {
			return nil, false, fmt.Errorf("crowd stream drain: %w", err)
		}
	}
	sc.CloseSend()
	if err := sc.Close(); err != nil {
		return nil, false, err
	}

	// The barrier snapshot is the control: everything applied has
	// settled and, under group commit, is durable.
	fs, err := doomed.Snapshot()
	if err != nil {
		return nil, false, err
	}
	wantTables := fs.RenderTenants()
	wantCat := ""
	if fs.Catalog != nil {
		wantCat = fs.Catalog.Render()
	}
	// Abandoned here (crash).

	tenants, err = e15Tenants(cfg)
	if err != nil {
		return nil, false, err
	}
	recOpts := opts
	recOpts.Shards = recoverShards
	recovered, rep, err := cluster.Recover(tenants, recOpts)
	if err != nil {
		return nil, false, fmt.Errorf("crowd recover %d->%d (%s): %w", shards, recoverShards, m.name, err)
	}
	gotTables, gotCat, err := e14Renders(recovered)
	if err != nil {
		return nil, false, err
	}
	identical := gotTables == wantTables && gotCat == wantCat
	refsZero, err := e15DrainRefs(recovered)
	if err != nil {
		return nil, false, err
	}
	if err := recovered.Close(); err != nil {
		return nil, false, err
	}

	// The drill must actually overload: a crowd that never hit a full
	// queue proved nothing about rejected events vanishing cleanly.
	ok := identical && refsZero && rejected.Load() > 0
	row := []string{
		"flash-crowd", d(shards), d(recoverShards), m.name, d(rep.Events),
		fmt.Sprintf("bursts=%d rejected=%d", len(bursts), rejected.Load()),
		fmt.Sprintf("%v", identical),
		fmt.Sprintf("%v", refsZero),
	}
	return row, ok, nil
}

// e15MultiNode is the fleet drill: a catalog service, two node
// processes, and a router (serving API v7) serve the schedule while a
// chaos dialer cuts the router's first node connections mid-stream.
// The router's upstream sessions redial and replay their unacked
// window; the nodes' watermarks turn replays into dup acknowledgements,
// so no event is double-applied even though the fault hits after a node
// may have applied the in-flight event. The merged fleet snapshot must
// render bit-identical to a 1-process control, and the registry must
// drain to zero references through the router.
func e15MultiNode(cfg E15Config, nodes, shards, mi int) ([]string, bool, error) {
	m := e15Models[mi]
	schedule := e15Schedule(cfg)

	control, err := e15Control(cfg, shards, m.model, schedule)
	if err != nil {
		return nil, false, err
	}
	wantTables, wantCat, err := e14Renders(control)
	if err != nil {
		return nil, false, err
	}
	if err := control.Close(); err != nil {
		return nil, false, err
	}

	// The catalog service: one registry process owning every settlement.
	reg, err := catalog.NewRegistry(catalog.IdentityBindings(cfg.Tenants, cfg.Channels, e14ChannelID), m.model)
	if err != nil {
		return nil, false, err
	}
	defer reg.Close()
	catLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, false, err
	}
	catSrv := &http.Server{Handler: remote.NewHandler(reg)}
	go func() { _ = catSrv.Serve(catLn) }()
	defer catSrv.Close()
	catURL := "http://" + catLn.Addr().String()

	// The node processes: full clusters settling against the service.
	urls := make([]string, nodes)
	for k := 0; k < nodes; k++ {
		rc, err := remote.Dial(catURL, remote.Options{})
		if err != nil {
			return nil, false, err
		}
		tenants, err := e15Tenants(cfg)
		if err != nil {
			return nil, false, err
		}
		opts := e15Options(cfg, shards, m.model)
		opts.Catalog.Remote = rc
		node, err := cluster.New(tenants, opts)
		if err != nil {
			return nil, false, err
		}
		defer node.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, false, err
		}
		srv := &http.Server{Handler: httpserve.NewHandler(node)}
		go func() { _ = srv.Serve(ln) }()
		defer srv.Close()
		urls[k] = "http://" + ln.Addr().String()
	}

	// The router, with the chaos seam on its node dials: the first two
	// router→node connections die after 9 writes; replacements are
	// clean. The plan callback fires once per dial, so the count is the
	// redial evidence (first contact costs one dial per node touched).
	var dials atomic.Int64
	dial := chaos.Dialer(func(i int) chaos.ConnScript {
		dials.Add(1)
		if i < 2 {
			return chaos.ConnScript{CutAfterWrites: 9}
		}
		return chaos.ConnScript{}
	}, nil)
	rt, err := fleet.NewRouter(fleet.Options{
		Plan:       fleet.Plan{Nodes: nodes, Shards: shards},
		Nodes:      urls,
		CatalogURL: catURL,
		ID:         fmt.Sprintf("e15-mn-%d-%s", shards, m.name),
		Dial:       dial,
	})
	if err != nil {
		return nil, false, err
	}
	defer rt.Close()
	rtLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, false, err
	}
	rtSrv := &http.Server{Handler: rt.Handler()}
	go func() { _ = rtSrv.Serve(rtLn) }()
	defer rtSrv.Close()
	rtURL := "http://" + rtLn.Addr().String()

	drive := func(sid string, evs []streamclient.Event) (int, error) {
		sess, err := streamclient.NewSession(rtURL, streamclient.SessionOptions{
			ID: sid, Seed: cfg.Seed,
			MaxAttempts: 16,
			BaseDelay:   2 * time.Millisecond,
			MaxDelay:    50 * time.Millisecond,
		})
		if err != nil {
			return 0, err
		}
		defer sess.Close()
		for i, ev := range evs {
			if err := sess.Send(ev); err != nil {
				return 0, fmt.Errorf("%s send %d: %w", sid, i, err)
			}
			for budget := 0; ; budget++ {
				res, rerr := sess.Recv()
				if rerr != nil {
					return 0, fmt.Errorf("%s recv %d: %w", sid, i, rerr)
				}
				if res.Error != "" {
					return 0, fmt.Errorf("%s event %d: server error %q", sid, i, res.Error)
				}
				if res.Seq == i+1 {
					break
				}
				if budget > len(evs) {
					return 0, fmt.Errorf("%s event %d: ack never arrived (last seq %d)", sid, i, res.Seq)
				}
			}
		}
		if err := sess.CloseSend(); err != nil {
			return 0, err
		}
		for {
			if _, err := sess.Recv(); err == io.EOF {
				break
			} else if err != nil {
				return 0, fmt.Errorf("%s drain: %w", sid, err)
			}
		}
		return sess.Dups(), nil
	}
	dups, err := drive("e15-mn-client", schedule)
	if err != nil {
		return nil, false, err
	}
	baseline := dials.Load() // dials spent serving the schedule, cuts included

	// The merged fleet snapshot against the 1-process control.
	resp, err := http.Get(rtURL + "/v1/fleet/snapshot")
	if err != nil {
		return nil, false, err
	}
	var fs cluster.FleetSnapshot
	err = json.NewDecoder(resp.Body).Decode(&fs)
	_ = resp.Body.Close()
	if err != nil {
		return nil, false, fmt.Errorf("merged snapshot: %w", err)
	}
	gotTables, gotCat := fs.RenderTenants(), ""
	if fs.Catalog != nil {
		gotCat = fs.Catalog.Render()
	}
	identical := gotTables == wantTables && gotCat == wantCat

	// The reference audit, through the router: depart every confirmed
	// holder and require the registry to settle at zero.
	snap := reg.Snapshot()
	if snap == nil {
		return nil, false, fmt.Errorf("registry snapshot unavailable")
	}
	var drains []streamclient.Event
	for _, e := range snap.Entries {
		for _, t := range e.Holders {
			drains = append(drains, streamclient.Event{Tenant: t, Type: "catalog-depart", CatalogID: string(e.ID)})
		}
	}
	if _, err := drive("e15-mn-drain", drains); err != nil {
		return nil, false, err
	}
	refsZero := true
	if snap = reg.Snapshot(); snap == nil {
		return nil, false, fmt.Errorf("registry snapshot unavailable after drain")
	}
	for _, e := range snap.Entries {
		if e.Refs != 0 {
			refsZero = false
		}
	}

	// nodes dials reach the fleet fault-free; the two cut connections
	// force at least two more.
	redialed := baseline >= int64(nodes)+2
	ok := identical && refsZero && redialed
	row := []string{
		"multi-node", d(shards), fmt.Sprintf("%d-node fleet", nodes), m.name, d(len(schedule)),
		fmt.Sprintf("node-dials=%d dups=%d", baseline, dups),
		fmt.Sprintf("%v", identical),
		fmt.Sprintf("%v", refsZero),
	}
	return row, ok, nil
}

// E15ChaosDrills drills the chaos layer end to end: seeded disconnect
// storms against the HTTP front end with a reconnecting exactly-once
// client, latched fsync faults under group commit, and flash-crowd
// queue storms under fail-fast backpressure — each followed by a crash
// and a recovery into a different shard count — plus a multi-node
// fleet cell that cuts the router→node hop instead of the client hop.
// The claim holds when every recovery (and the merged fleet) renders
// bit-identical to its control, no event is ever double-applied
// (watermark dedup + reference audit), and post-fault submissions fail
// fast instead of acking non-durable state.
func E15ChaosDrills(cfg E15Config) (*Table, error) {
	t := &Table{
		ID:    "E15",
		Title: "Chaos drills: disconnect storms, fsync faults, flash crowds",
		Claim: "Under seeded fault injection — scripted connection cuts/stalls/partial " +
			"writes, latched fsync failures, and queue-full storms — the fleet " +
			"degrades without corrupting: recovery renders bit-identical at every " +
			"shard count under both cost models, reconnect replay applies every " +
			"event exactly once, references settle to zero, and nothing acks past " +
			"a failed sync",
		Columns: []string{"drill", "shards", "recovered into", "cost model",
			"events", "chaos", "bit-identical", "refs settle"},
	}

	allHold := true
	run := func(row []string, ok bool, err error) error {
		if err != nil {
			return err
		}
		allHold = allHold && ok
		t.Rows = append(t.Rows, row)
		return nil
	}

	for si, shards := range cfg.ShardCounts {
		recoverShards := cfg.ShardCounts[(si+1)%len(cfg.ShardCounts)]
		for mi := range e15Models {
			if err := run(e15Disconnect(cfg, shards, recoverShards, mi)); err != nil {
				return nil, fmt.Errorf("E15 disconnect: %w", err)
			}
		}
	}
	for si, recoverShards := range cfg.ShardCounts {
		if err := run(e15Fsync(cfg, recoverShards, si%len(e15Models))); err != nil {
			return nil, fmt.Errorf("E15 fsync: %w", err)
		}
	}
	for si, shards := range cfg.ShardCounts {
		recoverShards := cfg.ShardCounts[(si+1)%len(cfg.ShardCounts)]
		if err := run(e15FlashCrowd(cfg, shards, recoverShards, (si+1)%len(e15Models))); err != nil {
			return nil, fmt.Errorf("E15 flash-crowd: %w", err)
		}
	}
	// One fleet cell: the disconnect storm's exactly-once claim, but
	// with the cut on the router→node hop of a real multi-process fleet
	// (serving API v7) instead of the client→server hop.
	if err := run(e15MultiNode(cfg, 2, cfg.ShardCounts[len(cfg.ShardCounts)-1], 1)); err != nil {
		return nil, fmt.Errorf("E15 multi-node: %w", err)
	}
	t.Verdict = verdict(allHold)
	t.Notes = "Every drill is seeded and replayable: connection scripts, fsync " +
		"triggers, and burst shapes derive from the config seed. Crash = the " +
		"fleet is abandoned with no shutdown path run; each recovery replays " +
		"into a different shard count than the one that logged. The reference " +
		"audit departs every confirmed holder on the recovered fleet and " +
		"requires the registry to settle at zero — a leaked or double-applied " +
		"reference cannot."
	return t, nil
}
