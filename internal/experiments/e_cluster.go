package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/generator"
)

// E12Config parameterizes E12.
type E12Config struct {
	// Tenants is the fleet size; Channels/Gateways shape each tenant.
	Tenants, Channels, Gateways int
	// Seed drives instance generation and the workload.
	Seed int64
	// Rounds replays each tenant's catalog; DepartEvery/ChurnEvery
	// inject churn (see cluster.Workload).
	Rounds, DepartEvery, ChurnEvery int
	// ShardCounts are the shard configurations compared.
	ShardCounts []int
}

// DefaultE12 returns the parameters used by EXPERIMENTS.md.
func DefaultE12() E12Config {
	return E12Config{
		Tenants: 8, Channels: 20, Gateways: 6, Seed: 120,
		Rounds: 2, DepartEvery: 3, ChurnEvery: 5,
		ShardCounts: []int{1, 2, 4, 8},
	}
}

// E12Cluster exercises the sharded multi-tenant serving layer the
// paper's Fig. 1 implies: N independent head-ends operated as one
// fleet. The invariants checked are the cluster's contract — every
// tenant stays feasible under arrivals and churn, and the per-tenant
// results are bit-identical across shard counts (sharding changes only
// wall-clock, never outcomes).
func E12Cluster(cfg E12Config) (*Table, error) {
	t := &Table{
		ID:    "E12",
		Title: "Sharded multi-tenant head-end fleet",
		Claim: "Fig. 1 at fleet scale: independent tenants admit concurrently under " +
			"per-shard workers with batched admission; feasibility holds everywhere " +
			"and results are invariant under the shard count",
		Columns: []string{"shards", "fleet utility", "offered", "admitted", "departed",
			"churn events", "feasible", "tenant table identical"},
	}
	runOnce := func(shards int) (*cluster.FleetSnapshot, error) {
		tenants := make([]cluster.TenantConfig, cfg.Tenants)
		for i := range tenants {
			in, err := generator.CableTV{
				Channels: cfg.Channels, Gateways: cfg.Gateways,
				Seed: cfg.Seed + int64(i), EgressFraction: 0.25,
			}.Generate()
			if err != nil {
				return nil, err
			}
			tenants[i] = cluster.TenantConfig{Instance: in}
		}
		c, err := cluster.New(tenants, cluster.Options{Shards: shards, BatchSize: 8})
		if err != nil {
			return nil, err
		}
		defer c.Close()
		fs, _, err := c.RunWorkload(cluster.Workload{
			Seed: cfg.Seed, Rounds: cfg.Rounds,
			DepartEvery: cfg.DepartEvery, ChurnEvery: cfg.ChurnEvery,
		})
		return fs, err
	}

	ok := true
	base := ""
	for _, shards := range cfg.ShardCounts {
		fs, err := runOnce(shards)
		if err != nil {
			return nil, err
		}
		tenantTable := fs.RenderTenants()
		if base == "" {
			base = tenantTable
		}
		identical := tenantTable == base
		churn := fs.Departed + fs.Leaves + fs.Joins
		if !fs.AllFeasible || !identical || churn == 0 {
			ok = false
		}
		t.Rows = append(t.Rows, []string{
			d(shards), f1(fs.Utility), d(fs.Offered), d(fs.Admitted), d(fs.Departed),
			d(churn), fmt.Sprintf("%v", fs.AllFeasible), fmt.Sprintf("%v", identical),
		})
	}
	t.Verdict = verdict(ok)
	t.Notes = fmt.Sprintf("%d tenants, %d channels x %d gateways each; guarded online "+
		"admission; departures every %d arrivals, gateway churn every %d.",
		cfg.Tenants, cfg.Channels, cfg.Gateways, cfg.DepartEvery, cfg.ChurnEvery)
	return t, nil
}
