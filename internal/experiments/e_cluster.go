package experiments

import (
	"context"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/generator"
)

// E12Config parameterizes E12.
type E12Config struct {
	// Tenants is the fleet size; Channels/Gateways shape each tenant.
	Tenants, Channels, Gateways int
	// Seed drives instance generation and the workload.
	Seed int64
	// Rounds replays each tenant's catalog; DepartEvery/ChurnEvery
	// inject churn (see cluster.Workload).
	Rounds, DepartEvery, ChurnEvery int
	// ShardCounts are the shard configurations compared.
	ShardCounts []int
}

// DefaultE12 returns the parameters used by EXPERIMENTS.md.
func DefaultE12() E12Config {
	return E12Config{
		Tenants: 8, Channels: 20, Gateways: 6, Seed: 120,
		Rounds: 2, DepartEvery: 3, ChurnEvery: 5,
		ShardCounts: []int{1, 2, 4, 8},
	}
}

// e12Run is one shard-count configuration's result: the quiesced
// churn-phase snapshot, then the snapshot after every tenant installed
// a fresh offline re-solve through the request/response API.
type e12Run struct {
	churn, installed *cluster.FleetSnapshot
	installs         int
}

// E12Cluster exercises the sharded multi-tenant serving layer the
// paper's Fig. 1 implies: N independent head-ends operated as one
// fleet, driven through the serving API v2. The invariants checked are
// the cluster's contract — every tenant stays feasible under arrivals
// and churn, per-tenant results are bit-identical across shard counts
// (sharding changes only wall-clock, never outcomes), and an
// installing re-solve (Resolve with Install) never leaves the fleet
// below its drifted online (monitoring-only) utility.
func E12Cluster(cfg E12Config) (*Table, error) {
	t := &Table{
		ID:    "E12",
		Title: "Sharded multi-tenant head-end fleet",
		Claim: "Fig. 1 at fleet scale: independent tenants admit concurrently under " +
			"per-shard workers with batched admission; feasibility holds everywhere, " +
			"results are invariant under the shard count, and installing the offline " +
			"re-solve only improves fleet utility",
		Columns: []string{"shards", "online utility", "installed utility", "installs",
			"offered", "admitted", "churn events", "feasible", "tables identical"},
	}
	runOnce := func(shards int) (*e12Run, error) {
		tenants := make([]cluster.TenantConfig, cfg.Tenants)
		for i := range tenants {
			in, err := generator.CableTV{
				Channels: cfg.Channels, Gateways: cfg.Gateways,
				Seed: cfg.Seed + int64(i), EgressFraction: 0.25,
			}.Generate()
			if err != nil {
				return nil, err
			}
			tenants[i] = cluster.TenantConfig{Instance: in}
		}
		c, err := cluster.New(tenants, cluster.Options{Shards: shards, BatchSize: 8})
		if err != nil {
			return nil, err
		}
		defer c.Close()
		churnFS, _, err := c.RunWorkload(cluster.Workload{
			Seed: cfg.Seed, Rounds: cfg.Rounds,
			DepartEvery: cfg.DepartEvery, ChurnEvery: cfg.ChurnEvery,
		})
		if err != nil {
			return nil, err
		}
		run := &e12Run{churn: churnFS}
		ctx := context.Background()
		for ti := 0; ti < c.NumTenants(); ti++ {
			res, err := c.Resolve(ctx, ti, cluster.ResolveOptions{Install: true})
			if err != nil {
				return nil, err
			}
			if res.Installed {
				run.installs++
			}
		}
		if run.installed, err = c.Snapshot(); err != nil {
			return nil, err
		}
		return run, nil
	}

	ok := true
	baseChurn, baseInstalled := "", ""
	for _, shards := range cfg.ShardCounts {
		run, err := runOnce(shards)
		if err != nil {
			return nil, err
		}
		churnTable := run.churn.RenderTenants()
		installedTable := run.installed.RenderTenants()
		if baseChurn == "" {
			baseChurn, baseInstalled = churnTable, installedTable
		}
		identical := churnTable == baseChurn && installedTable == baseInstalled
		churn := run.churn.Departed + run.churn.Leaves + run.churn.Joins
		improved := run.installed.Utility >= run.churn.Utility
		if !run.churn.AllFeasible || !run.installed.AllFeasible ||
			!identical || !improved || churn == 0 {
			ok = false
		}
		t.Rows = append(t.Rows, []string{
			d(shards), f1(run.churn.Utility), f1(run.installed.Utility), d(run.installs),
			d(run.churn.Offered), d(run.churn.Admitted), d(churn),
			fmt.Sprintf("%v", run.churn.AllFeasible && run.installed.AllFeasible),
			fmt.Sprintf("%v", identical),
		})
	}
	t.Verdict = verdict(ok)
	t.Notes = fmt.Sprintf("%d tenants, %d channels x %d gateways each; guarded online "+
		"admission; departures every %d arrivals, gateway churn every %d; after the "+
		"churn phase every tenant re-solves with Install: the offline Theorem 1.1 "+
		"lineup replaces the drifted online assignment make-before-break.",
		cfg.Tenants, cfg.Channels, cfg.Gateways, cfg.DepartEvery, cfg.ChurnEvery)
	return t, nil
}
