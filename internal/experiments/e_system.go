package experiments

import (
	"fmt"
	"math"

	"repro/internal/baseline"
	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/generator"
	"repro/internal/headend"
)

// E9Config parameterizes E9.
type E9Config struct {
	// Seeds is the number of cable-TV workloads averaged.
	Seeds int
	// Channels/Gateways are workload dimensions.
	Channels, Gateways int
	// EgressFraction controls contention (smaller = more contended).
	EgressFraction float64
}

// DefaultE9 returns the parameters used by EXPERIMENTS.md.
func DefaultE9() E9Config {
	return E9Config{Seeds: 10, Channels: 50, Gateways: 12, EgressFraction: 0.2}
}

// E9VsThreshold reproduces the paper's motivating comparison: the
// utility-aware solver against utility-blind admission policies on the
// cable-TV workload.
func E9VsThreshold(cfg E9Config) (*Table, error) {
	t := &Table{
		ID:    "E9",
		Title: "Utility-aware solver vs deployed-world baselines (cable TV)",
		Claim: "Section 1: threshold admission \"ignores the possibly very different " +
			"utilities of different streams\" — the utility-aware solver should collect more value",
		Columns: []string{"policy", "mean utility", "vs threshold", "vs upper bound"},
	}
	solverVal, enumVal, thrVal, thr80Val, staticVal, cheapVal, ubVal := 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0
	for seed := 0; seed < cfg.Seeds; seed++ {
		in, err := generator.CableTV{
			Channels: cfg.Channels, Gateways: cfg.Gateways, Seed: int64(seed),
			EgressFraction: cfg.EgressFraction,
		}.Generate()
		if err != nil {
			return nil, err
		}
		a, _, err := core.Solve(in, core.Options{})
		if err != nil {
			return nil, err
		}
		solverVal += a.Utility(in)
		ae, _, err := core.Solve(in, core.Options{Algorithm: core.AlgoPartialEnum, SeedSize: 1})
		if err != nil {
			return nil, err
		}
		enumVal += ae.Utility(in)
		thr, err := baseline.Threshold(in, nil, 1)
		if err != nil {
			return nil, err
		}
		thrVal += thr.Utility(in)
		thr80, err := baseline.Threshold(in, nil, 0.8)
		if err != nil {
			return nil, err
		}
		thr80Val += thr80.Utility(in)
		st, err := baseline.StaticGreedy(in)
		if err != nil {
			return nil, err
		}
		staticVal += st.Utility(in)
		ch, err := baseline.CheapestFirst(in)
		if err != nil {
			return nil, err
		}
		cheapVal += ch.Utility(in)
		ubVal += bounds.UpperBound(in)
	}
	n := float64(cfg.Seeds)
	row := func(name string, v float64) []string {
		return []string{name, f1(v / n), f(v / thrVal), f(v / ubVal)}
	}
	t.Rows = append(t.Rows,
		row("theorem-1.1 pipeline", solverVal),
		row("pipeline + partial enum", enumVal),
		row("threshold (margin 1.0)", thrVal),
		row("threshold (margin 0.8)", thr80Val),
		row("static greedy", staticVal),
		row("cheapest first", cheapVal),
		row("fractional upper bound", ubVal),
	)
	t.Verdict = verdict(solverVal > thrVal)
	t.Notes = fmt.Sprintf("%d seeds, %d channels, %d gateways, egress budget %.0f%% of catalog.",
		cfg.Seeds, cfg.Channels, cfg.Gateways, 100*cfg.EgressFraction)
	return t, nil
}

// E10Config parameterizes E10.
type E10Config struct {
	// Channels/Gateways/Seed are workload parameters.
	Channels, Gateways int
	Seed               int64
}

// DefaultE10 returns the parameters used by EXPERIMENTS.md.
func DefaultE10() E10Config { return E10Config{Channels: 40, Gateways: 10, Seed: 110} }

// E10EndToEnd runs the full simulated head-end under three policies and
// verifies the system-level invariant: a policy that respects the
// budgets never overloads the multicast plant.
func E10EndToEnd(cfg E10Config) (*Table, error) {
	t := &Table{
		ID:    "E10",
		Title: "End-to-end head-end simulation",
		Claim: "An assignment satisfying the MMD constraints is deliverable: " +
			"zero overload samples in the multicast plant; utility ordering " +
			"oracle >= online >= threshold is the expected shape",
		Columns: []string{"policy", "utility", "admitted", "delivered Mb",
			"overload samples", "feasible"},
	}
	in, err := generator.CableTV{
		Channels: cfg.Channels, Gateways: cfg.Gateways, Seed: cfg.Seed,
		EgressFraction: 0.25,
	}.Generate()
	if err != nil {
		return nil, err
	}
	sc := &headend.Scenario{Instance: in, Seed: cfg.Seed}

	oracle, err := headend.NewOraclePolicy(in, core.Options{})
	if err != nil {
		return nil, err
	}
	onlinePol, err := headend.NewOnlinePolicy(in, true)
	if err != nil {
		return nil, err
	}
	thr, err := headend.NewThresholdPolicy(in, 1)
	if err != nil {
		return nil, err
	}

	ok := true
	var utilities []float64
	for _, pol := range []headend.Policy{oracle, onlinePol, thr} {
		res, err := sc.Run(pol, nil)
		if err != nil {
			return nil, err
		}
		feasible := res.FeasibilityErr == nil
		if !feasible || res.OverloadSamples != 0 {
			ok = false
		}
		utilities = append(utilities, res.Utility)
		t.Rows = append(t.Rows, []string{
			res.Policy, f1(res.Utility), d(res.StreamsAdmitted),
			f1(res.DeliveredMb), d(res.OverloadSamples), fmt.Sprintf("%v", feasible),
		})
	}
	// The oracle should not lose to the threshold baseline.
	if len(utilities) == 3 && utilities[0] < utilities[2]-1e-9 {
		// Not a theorem violation (arrival order matters for online
		// policies), but worth flagging in the verdict.
		ok = ok && utilities[0] >= utilities[2]*0.9
	}
	t.Verdict = verdict(ok)
	t.Notes = "Discrete-event simulation; delivery sampled on the virtual clock. " +
		"See also the live goroutine emulation exercised by the E10 integration test."
	return t, nil
}

// A1Config parameterizes A1.
type A1Config struct {
	// Trials and instance dimensions for the random half.
	Trials, Streams, Users, M, MC int
	// Seed drives workload generation.
	Seed int64
}

// DefaultA1 returns the parameters used by EXPERIMENTS.md.
func DefaultA1() A1Config {
	return A1Config{Trials: 12, Streams: 10, Users: 4, M: 3, MC: 2, Seed: 111}
}

// A1LiftAblation compares the paper-faithful single-set output
// transformation with the greedy-merging lift, on random instances and
// on the adversarial tightness family.
func A1LiftAblation(cfg A1Config) (*Table, error) {
	t := &Table{
		ID:    "A1",
		Title: "Ablation: paper-faithful lift vs greedy-merging lift",
		Claim: "The merging lift dominates pointwise (same worst-case guarantee) and " +
			"recovers the m*mc loss on non-adversarial inputs",
		Columns: []string{"workload", "mean value (paper)", "mean value (merged)", "merged/paper"},
	}
	var paperSum, mergedSum float64
	rng := newRand(cfg.Seed)
	for trial := 0; trial < cfg.Trials; trial++ {
		in, err := generator.RandomMMD{
			Streams: cfg.Streams, Users: cfg.Users, M: cfg.M, MC: cfg.MC,
			Seed: rng.Int63(), Skew: 4,
		}.Generate()
		if err != nil {
			return nil, err
		}
		ap, _, err := core.Solve(in, core.Options{PaperFaithfulLift: true})
		if err != nil {
			return nil, err
		}
		am, _, err := core.Solve(in, core.Options{})
		if err != nil {
			return nil, err
		}
		paperSum += ap.Utility(in)
		mergedSum += am.Utility(in)
	}
	n := float64(cfg.Trials)
	t.Rows = append(t.Rows, []string{
		"random MMD", f1(paperSum / n), f1(mergedSum / n), f(mergedSum / paperSum),
	})

	tin, err := generatorTightness(4, 3)
	if err != nil {
		return nil, err
	}
	ap, _, err := core.Solve(tin, core.Options{PaperFaithfulLift: true})
	if err != nil {
		return nil, err
	}
	am, _, err := core.Solve(tin, core.Options{})
	if err != nil {
		return nil, err
	}
	paperT, mergedT := ap.Utility(tin), am.Utility(tin)
	t.Rows = append(t.Rows, []string{
		"tightness m=4 mc=3", f1(paperT), f1(mergedT), f(mergedT / math.Max(paperT, 1e-12)),
	})
	t.Verdict = verdict(mergedSum >= paperSum-1e-9 && mergedT >= paperT-1e-9)
	return t, nil
}

// A2Config parameterizes A2.
type A2Config struct {
	// Gaps are the blocking-family utility gaps swept.
	Gaps []float64
}

// DefaultA2 returns the parameters used by EXPERIMENTS.md.
func DefaultA2() A2Config { return A2Config{Gaps: []float64{10, 100, 1000, 10000}} }

// A2BlockingFamily reproduces the Section 2.2 "hole": raw greedy's
// ratio grows without bound on the blocking family while the fixed
// greedy stays within its constant.
func A2BlockingFamily(cfg A2Config) (*Table, error) {
	t := &Table{
		ID:    "A2",
		Title: "Ablation: raw greedy vs fixed greedy on the blocking family",
		Claim: "Section 2.2: without the best-single-stream fix, greedy's ratio is unbounded",
		Columns: []string{"gap", "OPT", "raw greedy", "raw ratio",
			"fixed greedy", "fixed ratio"},
	}
	feasBound := 3*math.E/(math.E-1) + 1e-9
	ok := true
	for _, gap := range cfg.Gaps {
		min, err := generator.BlockingFamily(gap)
		if err != nil {
			return nil, err
		}
		in := smdFromMMD(min)
		res, err := smdFixedGreedy(in)
		if err != nil {
			return nil, err
		}
		opt, err := exactValue(min)
		if err != nil {
			return nil, err
		}
		rawRatio := opt / math.Max(res.Greedy.SemiValue, 1e-12)
		fixedRatio := opt / math.Max(res.BestValue, 1e-12)
		if fixedRatio > feasBound {
			ok = false
		}
		if rawRatio < gap/10 {
			ok = false // the hole must actually show up
		}
		t.Rows = append(t.Rows, []string{
			f1(gap), f1(opt), f(res.Greedy.SemiValue), f1(rawRatio),
			f(res.BestValue), f(fixedRatio),
		})
	}
	t.Verdict = verdict(ok)
	return t, nil
}
