package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/generator"
	"repro/internal/reduction"
	"repro/internal/skew"
	"repro/internal/smd"
)

// E1Config parameterizes E1.
type E1Config struct {
	// Trials per instance size.
	Trials int
	// Sizes are the stream counts swept.
	Sizes []int
	// Users per instance.
	Users int
	// Seed drives workload generation.
	Seed int64
}

// DefaultE1 returns the parameters used by EXPERIMENTS.md.
func DefaultE1() E1Config {
	return E1Config{Trials: 20, Sizes: []int{8, 10, 12}, Users: 4, Seed: 101}
}

// E1GreedyRatio measures the feasible (Theorem 2.8) and semi-feasible
// (Lemma 2.6) approximation ratios of the fixed greedy against exact
// optima on random unit-skew SMD instances.
func E1GreedyRatio(cfg E1Config) (*Table, error) {
	feasBound := 3 * math.E / (math.E - 1)
	semiBound := 2 * math.E / (math.E - 1)
	t := &Table{
		ID:    "E1",
		Title: "Fixed greedy on unit-skew SMD vs exact OPT",
		Claim: fmt.Sprintf("Theorem 2.8: feasible ratio <= 3e/(e-1) = %.3f; "+
			"Lemma 2.6: semi-feasible ratio <= 2e/(e-1) = %.3f", feasBound, semiBound),
		Columns: []string{"streams", "trials", "mean ratio", "max ratio",
			"mean semi ratio", "max semi ratio", "bound", "semi bound"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ok := true
	for _, n := range cfg.Sizes {
		var sumR, maxR, sumS, maxS float64
		trials := 0
		for trial := 0; trial < cfg.Trials; trial++ {
			min, err := generator.RandomSMD{
				Streams: n, Users: cfg.Users, Seed: rng.Int63(), Skew: 1,
			}.Generate()
			if err != nil {
				return nil, err
			}
			in := smd.FromMMD(min)
			res, err := smd.FixedGreedy(in)
			if err != nil {
				return nil, err
			}
			opt, err := exact.Solve(min, exact.Options{})
			if err != nil {
				return nil, err
			}
			if opt.Value == 0 {
				continue
			}
			trials++
			r := opt.Value / math.Max(res.BestValue, 1e-12)
			s := opt.Value / math.Max(res.SemiBestValue, 1e-12)
			sumR += r
			sumS += s
			maxR = math.Max(maxR, r)
			maxS = math.Max(maxS, s)
		}
		if maxR > feasBound+1e-9 || maxS > semiBound+1e-9 {
			ok = false
		}
		t.Rows = append(t.Rows, []string{
			d(n), d(trials), f(sumR / float64(trials)), f(maxR),
			f(sumS / float64(trials)), f(maxS), f(feasBound), f(semiBound),
		})
	}
	t.Verdict = verdict(ok)
	t.Notes = "OPT from branch-and-bound; ratios are OPT/value (>= 1, smaller is better)."
	return t, nil
}

// E2Config parameterizes E2.
type E2Config struct {
	// Trials and dimensions as in E1.
	Trials, Streams, Users int
	// Seed drives workload generation.
	Seed int64
}

// DefaultE2 returns the parameters used by EXPERIMENTS.md.
func DefaultE2() E2Config { return E2Config{Trials: 25, Streams: 10, Users: 4, Seed: 102} }

// E2ReducedBudget measures Theorem 2.5: greedy's semi-feasible value is
// at least (1-1/e) times the optimum with budget reduced by the largest
// stream cost.
func E2ReducedBudget(cfg E2Config) (*Table, error) {
	factor := 1 - 1/math.E
	t := &Table{
		ID:    "E2",
		Title: "Greedy vs optimum with reduced budget",
		Claim: fmt.Sprintf("Theorem 2.5: w(greedy) >= (1-1/e) = %.3f of OPT(B - c_max)", factor),
		Columns: []string{"trials", "mean w/OPT-", "min w/OPT-", "bound",
			"mean w(aug)/OPT", "min w(aug)/OPT"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var sum, minR, sumAug, minAug float64
	minR, minAug = math.Inf(1), math.Inf(1)
	trials := 0
	for trial := 0; trial < cfg.Trials; trial++ {
		min, err := generator.RandomSMD{
			Streams: cfg.Streams, Users: cfg.Users, Seed: rng.Int63(), Skew: 1,
		}.Generate()
		if err != nil {
			return nil, err
		}
		in := smd.FromMMD(min)
		res, err := smd.Greedy(in)
		if err != nil {
			return nil, err
		}
		// Reduced-budget optimum.
		reduced := min.Clone()
		cmax := 0.0
		for s := range reduced.Streams {
			cmax = math.Max(cmax, reduced.Streams[s].Costs[0])
		}
		reduced.Budgets[0] = math.Max(0, reduced.Budgets[0]-cmax)
		for s := range reduced.Streams {
			// Streams larger than the reduced budget cannot be chosen;
			// drop them to keep the instance valid.
			if reduced.Streams[s].Costs[0] > reduced.Budgets[0] {
				reduced.Streams[s].Costs[0] = reduced.Budgets[0]
				for u := range reduced.Users {
					reduced.Users[u].Utility[s] = 0
					for j := range reduced.Users[u].Loads {
						reduced.Users[u].Loads[j][s] = 0
					}
				}
			}
		}
		optReduced, err := exact.Solve(reduced, exact.Options{})
		if err != nil {
			return nil, err
		}
		opt, err := exact.Solve(min, exact.Options{})
		if err != nil {
			return nil, err
		}
		if opt.Value == 0 {
			continue
		}
		trials++
		if optReduced.Value > 0 {
			r := res.SemiValue / optReduced.Value
			sum += r
			minR = math.Min(minR, r)
		} else {
			sum += 1
			minR = math.Min(minR, 1)
		}
		aug := res.AugmentedValue / opt.Value
		sumAug += aug
		minAug = math.Min(minAug, aug)
	}
	ok := minR >= factor-1e-9 && minAug >= factor-1e-9
	t.Rows = append(t.Rows, []string{
		d(trials), f(sum / float64(trials)), f(minR), f(factor),
		f(sumAug / float64(trials)), f(minAug),
	})
	t.Verdict = verdict(ok)
	t.Notes = "w(aug) is w(A_k) + residual(S_{k+1}), the Lemma 2.2 quantity; " +
		"zero-utility pairs are forced on streams exceeding the reduced budget."
	return t, nil
}

// E3Config parameterizes E3.
type E3Config struct {
	// Alphas are the target skews swept.
	Alphas []float64
	// Trials per skew; Streams/Users are instance dimensions.
	Trials, Streams, Users int
	// Seed drives workload generation.
	Seed int64
}

// DefaultE3 returns the parameters used by EXPERIMENTS.md.
func DefaultE3() E3Config {
	return E3Config{Alphas: []float64{1, 4, 16, 64, 256}, Trials: 10, Streams: 10, Users: 4, Seed: 103}
}

// E3SkewSweep measures the classify-and-select ratio across local skew.
func E3SkewSweep(cfg E3Config) (*Table, error) {
	unitConst := 3 * math.E / (math.E - 1)
	t := &Table{
		ID:    "E3",
		Title: "Classify-and-select across local skew alpha",
		Claim: "Theorem 3.1: O(log 2*alpha)-approximation: ratio <= 2 * bands * (3e/(e-1))",
		Columns: []string{"target alpha", "measured alpha", "bands", "mean ratio",
			"max ratio", "bound"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ok := true
	for _, alpha := range cfg.Alphas {
		var sumR, maxR, measuredAlpha float64
		bands := 0
		trials := 0
		for trial := 0; trial < cfg.Trials; trial++ {
			in, err := generator.RandomSMD{
				Streams: cfg.Streams, Users: cfg.Users, Seed: rng.Int63(), Skew: alpha,
			}.Generate()
			if err != nil {
				return nil, err
			}
			a, rep, err := skew.Solve(in, nil)
			if err != nil {
				return nil, err
			}
			opt, err := exact.Solve(in, exact.Options{})
			if err != nil {
				return nil, err
			}
			if opt.Value == 0 {
				continue
			}
			trials++
			r := opt.Value / math.Max(a.Utility(in), 1e-12)
			sumR += r
			maxR = math.Max(maxR, r)
			measuredAlpha = math.Max(measuredAlpha, rep.Alpha)
			if rep.Bands > bands {
				bands = rep.Bands
			}
		}
		bound := 2 * float64(1+int(math.Floor(math.Log2(math.Max(measuredAlpha, 1))))) * unitConst
		if maxR > bound+1e-9 {
			ok = false
		}
		t.Rows = append(t.Rows, []string{
			f1(alpha), f1(measuredAlpha), d(bands), f(sumR / float64(trials)), f(maxR), f1(bound),
		})
	}
	t.Verdict = verdict(ok)
	return t, nil
}

// E4Config parameterizes E4.
type E4Config struct {
	// Ms and MCs are the grid of budget counts.
	Ms, MCs []int
	// Trials per cell; Streams/Users are instance dimensions.
	Trials, Streams, Users int
	// Seed drives workload generation.
	Seed int64
}

// DefaultE4 returns the parameters used by EXPERIMENTS.md.
func DefaultE4() E4Config {
	return E4Config{Ms: []int{1, 2, 3}, MCs: []int{1, 2}, Trials: 8, Streams: 9, Users: 4, Seed: 104}
}

// E4PipelineRatio measures the full Theorem 1.1 pipeline across (m, mc).
func E4PipelineRatio(cfg E4Config) (*Table, error) {
	t := &Table{
		ID:    "E4",
		Title: "Full pipeline across (m, mc)",
		Claim: "Theorem 4.4: O(m*mc*log(2*alpha*mc))-approximation in O(n^2) time",
		Columns: []string{"m", "mc", "mean ratio", "max ratio",
			"a-priori bound", "mean ratio (paper lift)"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ok := true
	for _, m := range cfg.Ms {
		for _, mc := range cfg.MCs {
			var sumR, maxR, bound, sumPaper float64
			trials := 0
			for trial := 0; trial < cfg.Trials; trial++ {
				in, err := generator.RandomMMD{
					Streams: cfg.Streams, Users: cfg.Users, M: m, MC: mc,
					Seed: rng.Int63(), Skew: 4,
				}.Generate()
				if err != nil {
					return nil, err
				}
				a, rep, err := core.Solve(in, core.Options{})
				if err != nil {
					return nil, err
				}
				ap, _, err := core.Solve(in, core.Options{PaperFaithfulLift: true})
				if err != nil {
					return nil, err
				}
				opt, err := exact.Solve(in, exact.Options{})
				if err != nil {
					return nil, err
				}
				if opt.Value == 0 {
					continue
				}
				trials++
				r := opt.Value / math.Max(a.Utility(in), 1e-12)
				sumR += r
				maxR = math.Max(maxR, r)
				sumPaper += opt.Value / math.Max(ap.Utility(in), 1e-12)
				bound = math.Max(bound, rep.ApproxFactor)
				if r > rep.ApproxFactor+1e-9 {
					ok = false
				}
			}
			t.Rows = append(t.Rows, []string{
				d(m), d(mc), f(sumR / float64(trials)), f(maxR), f1(bound),
				f(sumPaper / float64(trials)),
			})
		}
	}
	t.Verdict = verdict(ok)
	t.Notes = "Default pipeline uses the greedy-merging lift; the last column re-runs " +
		"with the paper-faithful single-set lift."
	return t, nil
}

// E5Config parameterizes E5.
type E5Config struct {
	// Grid of (m, mc) pairs.
	Grid [][2]int
}

// DefaultE5 returns the parameters used by EXPERIMENTS.md.
func DefaultE5() E5Config {
	return E5Config{Grid: [][2]int{{2, 2}, {3, 2}, {3, 3}, {4, 3}, {5, 4}}}
}

// E5Tightness reproduces Section 4.2: the paper-faithful output
// transformation loses a factor of about m*mc on the adversarial family.
func E5Tightness(cfg E5Config) (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "Tightness of the reduction (Section 4.2 family)",
		Claim:   "The Theorem 4.3 analysis is tight up to a constant: loss ~ m*mc",
		Columns: []string{"m", "mc", "OPT", "lifted value", "measured loss", "m*mc"},
	}
	ok := true
	for _, dims := range cfg.Grid {
		m, mc := dims[0], dims[1]
		in, err := reduction.TightnessInstance(m, mc)
		if err != nil {
			return nil, err
		}
		view, err := reduction.ToSMD(in)
		if err != nil {
			return nil, err
		}
		opt := reduction.TightnessOptimal(in)
		optVal := opt.Utility(in)
		lifted, rep, err := reduction.Lift(view, opt)
		if err != nil {
			return nil, err
		}
		if err := lifted.CheckFeasible(in); err != nil {
			return nil, fmt.Errorf("E5: lifted infeasible: %w", err)
		}
		loss := optVal / rep.Value
		want := float64(m * mc)
		if math.Abs(loss-want) > 0.75 {
			ok = false
		}
		t.Rows = append(t.Rows, []string{d(m), d(mc), f1(optVal), f(rep.Value), f(loss), f1(want)})
	}
	t.Verdict = verdict(ok)
	t.Notes = "Uses the paper-faithful lift; the greedy-merging lift defeats this family (see A1)."
	return t, nil
}

// E7Config parameterizes E7.
type E7Config struct {
	// Sizes are (streams, users) pairs swept.
	Sizes [][2]int
	// Seed drives workload generation; Repeats is the median-of count.
	Seed    int64
	Repeats int
}

// DefaultE7 returns the parameters used by EXPERIMENTS.md.
func DefaultE7() E7Config {
	return E7Config{
		Sizes:   [][2]int{{50, 10}, {100, 20}, {200, 40}, {400, 80}},
		Seed:    107,
		Repeats: 3,
	}
}

// E7GreedyScaling measures the fixed greedy's running time against the
// O(n^2) claim (n ~ streams * users).
func E7GreedyScaling(cfg E7Config) (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "Greedy running-time scaling",
		Claim:   "Section 2.1: Algorithm Greedy runs in O(|S| * n) = O(n^2) time",
		Columns: []string{"streams", "users", "n = |S|*|U|", "median time", "time/n^2 (ns)"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var firstNorm float64
	var xs, ys []float64
	ok := true
	for idx, size := range cfg.Sizes {
		nS, nU := size[0], size[1]
		min, err := generator.RandomSMD{
			Streams: nS, Users: nU, Seed: rng.Int63(), Skew: 1, Density: 0.5,
		}.Generate()
		if err != nil {
			return nil, err
		}
		in := smd.FromMMD(min)
		times := make([]time.Duration, 0, cfg.Repeats)
		for rep := 0; rep < cfg.Repeats; rep++ {
			start := time.Now()
			if _, err := smd.FixedGreedy(in); err != nil {
				return nil, err
			}
			times = append(times, time.Since(start))
		}
		med := medianDuration(times)
		n := float64(nS * nU)
		xs = append(xs, n)
		ys = append(ys, float64(med.Nanoseconds()))
		norm := float64(med.Nanoseconds()) / (n * n)
		if idx == 0 {
			firstNorm = norm
		} else if norm > 12*firstNorm {
			// time/n^2 should stay roughly flat; allow generous noise.
			ok = false
		}
		t.Rows = append(t.Rows, []string{
			d(nS), d(nU), d(nS * nU), med.String(), fmt.Sprintf("%.3f", norm),
		})
	}
	t.Verdict = verdict(ok)
	t.Notes = "time/n^2 staying roughly flat across a 64x growth in n^2 confirms the quadratic shape."
	t.Figure = asciiLogLog("greedy time vs n", xs, ys, 2, 48, 12)
	return t, nil
}

func medianDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[len(sorted)/2]
}

// E8Config parameterizes E8.
type E8Config struct {
	// Trials and instance dimensions.
	Trials, Streams, Users int
	// Seeds are partial-enumeration seed sizes swept.
	Seeds []int
	// Seed drives workload generation.
	Seed int64
}

// DefaultE8 returns the parameters used by EXPERIMENTS.md.
func DefaultE8() E8Config {
	return E8Config{Trials: 8, Streams: 10, Users: 4, Seeds: []int{0, 1, 2, 3}, Seed: 108}
}

// E8PartialEnum measures the Section 2.3 quality/time trade-off.
func E8PartialEnum(cfg E8Config) (*Table, error) {
	t := &Table{
		ID:    "E8",
		Title: "Partial enumeration quality/time trade-off",
		Claim: "Section 2.3: larger seeds sharpen the constant (e/(e-1) semi-feasible " +
			"at seed 3) at polynomially higher cost",
		Columns: []string{"seed size", "mean ratio", "max ratio", "mean time"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	type inst struct {
		in  *smd.Instance
		opt float64
	}
	instances := make([]inst, 0, cfg.Trials)
	for trial := 0; trial < cfg.Trials; trial++ {
		min, err := generator.RandomSMD{
			Streams: cfg.Streams, Users: cfg.Users, Seed: rng.Int63(), Skew: 1,
		}.Generate()
		if err != nil {
			return nil, err
		}
		opt, err := exact.Solve(min, exact.Options{})
		if err != nil {
			return nil, err
		}
		instances = append(instances, inst{in: smd.FromMMD(min), opt: opt.Value})
	}
	var prevMean float64
	ok := true
	for i, seedSize := range cfg.Seeds {
		var sumR, maxR float64
		var total time.Duration
		trials := 0
		for _, it := range instances {
			if it.opt == 0 {
				continue
			}
			start := time.Now()
			res, err := smd.PartialEnum(it.in, seedSize)
			if err != nil {
				return nil, err
			}
			total += time.Since(start)
			trials++
			r := it.opt / math.Max(res.BestValue, 1e-12)
			sumR += r
			maxR = math.Max(maxR, r)
		}
		mean := sumR / float64(trials)
		if i > 0 && mean > prevMean+0.25 {
			ok = false // quality should not degrade materially with seeds
		}
		prevMean = mean
		t.Rows = append(t.Rows, []string{
			d(seedSize), f(mean), f(maxR), (total / time.Duration(trials)).String(),
		})
	}
	t.Verdict = verdict(ok)
	return t, nil
}
