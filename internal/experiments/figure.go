package experiments

import (
	"fmt"
	"math"
	"strings"
)

// asciiLogLog renders a small log-log scatter of (x, y) points as a
// fenced text block — the repository's stand-in for a camera-ready
// scaling figure. A reference line of the given slope anchored at the
// first point is drawn with '.', the data with '*' ('@' where they
// coincide); for the E7 experiment slope 2 is the O(n^2) prediction.
func asciiLogLog(title string, xs, ys []float64, slope float64, width, height int) string {
	if len(xs) != len(ys) || len(xs) == 0 || width < 8 || height < 4 {
		return ""
	}
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return ""
		}
		lx[i] = math.Log10(xs[i])
		ly[i] = math.Log10(ys[i])
	}
	minX, maxX := lx[0], lx[0]
	minY, maxY := ly[0], ly[0]
	for i := range lx {
		minX, maxX = math.Min(minX, lx[i]), math.Max(maxX, lx[i])
		minY, maxY = math.Min(minY, ly[i]), math.Max(maxY, ly[i])
	}
	// Include the reference line's extent in the y-range.
	refAt := func(x float64) float64 { return ly[0] + slope*(x-lx[0]) }
	minY = math.Min(minY, math.Min(refAt(minX), refAt(maxX)))
	maxY = math.Max(maxY, math.Max(refAt(minX), refAt(maxX)))
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	put := func(x, y float64, ch byte) {
		col := int(math.Round((x - minX) / (maxX - minX) * float64(width-1)))
		row := height - 1 - int(math.Round((y-minY)/(maxY-minY)*float64(height-1)))
		if col < 0 || col >= width || row < 0 || row >= height {
			return
		}
		cur := grid[row][col]
		switch {
		case cur == ' ':
			grid[row][col] = ch
		case cur != ch:
			grid[row][col] = '@'
		}
	}
	// Reference line first, data on top.
	for c := 0; c < width*2; c++ {
		x := minX + (maxX-minX)*float64(c)/float64(width*2-1)
		put(x, refAt(x), '.')
	}
	for i := range lx {
		put(lx[i], ly[i], '*')
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%s  (log-log; '.' = slope-%.0f reference, '*' = measured)\n", title, slope)
	sb.WriteString("```\n")
	for _, row := range grid {
		sb.Write(row)
		sb.WriteByte('\n')
	}
	sb.WriteString("```\n")
	return sb.String()
}
