// Package experiments regenerates, as tables, every measurable claim of
// Patt-Shamir & Rawitz (the paper is theoretical — Figs. 1-3 are
// schematic and there is no empirical section, so the reproduction
// targets are the theorems themselves plus the motivating comparison
// against threshold admission). cmd/mmdbench renders the tables as
// Markdown for EXPERIMENTS.md; bench_test.go wraps the same runs as
// testing.B benchmarks.
//
// Experiment index (see DESIGN.md section 4):
//
//	E1  Theorem 2.8 / Lemma 2.6: greedy approximation ratios vs exact OPT
//	E2  Theorem 2.5: greedy vs optimum with reduced budget
//	E3  Theorem 3.1: classify-and-select across skew alpha
//	E4  Theorem 4.4: full pipeline across (m, mc)
//	E5  Section 4.2: tightness of the reduction (loss ~ m*mc)
//	E6  Theorem 5.4 / Lemma 5.1: online competitiveness and feasibility
//	E7  Section 2.1: O(n^2) greedy running time scaling
//	E8  Section 2.3: partial enumeration quality/time trade-off
//	E9  Section 1: utility-aware solver vs threshold admission
//	E10 end-to-end: simulated head-end, delivery, zero overload
//	E11 footnote 1: finite-duration streams and gateway churn
//	E12 fleet scale: sharded multi-tenant cluster, shard-count invariance
//	E13 fleet catalog: shared-origin pricing vs isolated tenants
//	E14 durability: crash recovery from the per-shard WAL, layout-free
//	E15 chaos: seeded fault drills — disconnects, fsync faults, flash crowds
//	E16 workload: Zipf flash crowd + diurnal churn through the serving stack
//	E17 adversarial: competitive ratio vs stream size, in/out of regime
//	A1  ablation: paper-faithful lift vs greedy-merging lift
//	A2  ablation: raw greedy vs fixed greedy on the blocking family
//	A3  ablation: online allocator sensitivity to mu
package experiments

import (
	"fmt"
	"strings"
)

// Table is one experiment's result.
type Table struct {
	// ID is the experiment identifier (E1..E10, A1..A3).
	ID string
	// Title is a one-line description.
	Title string
	// Claim states the paper claim being reproduced.
	Claim string
	// Columns are the column headers.
	Columns []string
	// Rows are the data rows, already formatted.
	Rows [][]string
	// Verdict summarizes bound-vs-measured ("HOLDS", "VIOLATED", ...).
	Verdict string
	// Notes carries caveats (substitutions, measurement details).
	Notes string
	// Figure is an optional pre-rendered text figure (fenced block).
	Figure string
}

// Markdown renders the table as a Markdown section.
func (t *Table) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(&sb, "**Paper claim.** %s\n\n", t.Claim)
	sb.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	fmt.Fprintf(&sb, "\n**Verdict:** %s\n", t.Verdict)
	if t.Notes != "" {
		fmt.Fprintf(&sb, "\n*%s*\n", t.Notes)
	}
	if t.Figure != "" {
		sb.WriteString("\n" + t.Figure)
	}
	return sb.String()
}

// f formats a float compactly.
func f(x float64) string { return fmt.Sprintf("%.3f", x) }

// f1 formats a float with one decimal.
func f1(x float64) string { return fmt.Sprintf("%.1f", x) }

// d formats an int.
func d(x int) string { return fmt.Sprintf("%d", x) }

// verdict returns HOLDS when ok, VIOLATED otherwise.
func verdict(ok bool) string {
	if ok {
		return "HOLDS"
	}
	return "VIOLATED"
}

// All runs every experiment with default parameters and returns the
// tables in index order. Failures abort with the experiment's error.
func All() ([]*Table, error) {
	runs := []struct {
		name string
		fn   func() (*Table, error)
	}{
		{"E1", func() (*Table, error) { return E1GreedyRatio(DefaultE1()) }},
		{"E2", func() (*Table, error) { return E2ReducedBudget(DefaultE2()) }},
		{"E3", func() (*Table, error) { return E3SkewSweep(DefaultE3()) }},
		{"E4", func() (*Table, error) { return E4PipelineRatio(DefaultE4()) }},
		{"E5", func() (*Table, error) { return E5Tightness(DefaultE5()) }},
		{"E6", func() (*Table, error) { return E6OnlineRatio(DefaultE6()) }},
		{"E7", func() (*Table, error) { return E7GreedyScaling(DefaultE7()) }},
		{"E8", func() (*Table, error) { return E8PartialEnum(DefaultE8()) }},
		{"E9", func() (*Table, error) { return E9VsThreshold(DefaultE9()) }},
		{"E10", func() (*Table, error) { return E10EndToEnd(DefaultE10()) }},
		{"E11", func() (*Table, error) { return E11Churn(DefaultE11()) }},
		{"E12", func() (*Table, error) { return E12Cluster(DefaultE12()) }},
		{"E13", func() (*Table, error) { return E13SharedCatalog(DefaultE13()) }},
		{"E14", func() (*Table, error) { return E14CrashRecovery(DefaultE14()) }},
		{"E15", func() (*Table, error) { return E15ChaosDrills(DefaultE15()) }},
		{"E16", func() (*Table, error) { return E16FlashCrowd(DefaultE16()) }},
		{"E17", func() (*Table, error) { return E17CompetitiveStress(DefaultE17()) }},
		{"A1", func() (*Table, error) { return A1LiftAblation(DefaultA1()) }},
		{"A2", func() (*Table, error) { return A2BlockingFamily(DefaultA2()) }},
		{"A3", func() (*Table, error) { return A3MuSensitivity(DefaultA3()) }},
	}
	out := make([]*Table, 0, len(runs))
	for _, r := range runs {
		t, err := r.fn()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", r.name, err)
		}
		out = append(out, t)
	}
	return out, nil
}
