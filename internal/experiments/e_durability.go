package experiments

import (
	"context"
	"fmt"
	"os"

	"repro/internal/catalog"
	"repro/internal/cluster"
	"repro/internal/generator"
	"repro/internal/wal"
)

// E14Config parameterizes E14.
type E14Config struct {
	// Tenants is the fleet size; Channels/Gateways shape each tenant.
	Tenants, Channels, Gateways int
	// Seed drives instance generation (tenant i uses Seed+i, the
	// mmdserve convention — recovery must regenerate the same fleet).
	Seed int64
	// ShardCounts are the serving layouts drilled; each crashed fleet
	// recovers into the NEXT count in the list (wrapping), so the drill
	// also exercises replaying a log across a layout change.
	ShardCounts []int
}

// DefaultE14 returns the parameters used by EXPERIMENTS.md.
func DefaultE14() E14Config {
	return E14Config{
		Tenants: 4, Channels: 12, Gateways: 4, Seed: 147,
		ShardCounts: []int{1, 2, 4},
	}
}

// e14Tenants regenerates the fleet's tenant configs — called once for
// the control fleet, once for the WAL fleet, and once more for
// recovery, standing in for three separate process lifetimes.
func e14Tenants(cfg E14Config) ([]cluster.TenantConfig, error) {
	tenants := make([]cluster.TenantConfig, cfg.Tenants)
	for i := range tenants {
		in, err := generator.CableTV{
			Channels: cfg.Channels, Gateways: cfg.Gateways,
			Seed: cfg.Seed + int64(i), EgressFraction: 0.25,
		}.Generate()
		if err != nil {
			return nil, err
		}
		tenants[i] = cluster.TenantConfig{Instance: in}
	}
	return tenants, nil
}

// e14Drive submits the drill's deterministic schedule: two rounds of
// interleaved plain offers, catalog offers (every third channel),
// departures, and gateway churn, serial per tenant — so per-tenant
// ordering, which the WAL must reproduce, is fixed. checkpoint, when
// non-nil, fires between the rounds (the recovery then verifies the
// mid-log manifest fence, not just the tail).
func e14Drive(c *cluster.Cluster, cfg E14Config, checkpoint func() error) (int, error) {
	ctx := context.Background()
	total := 0
	for round := 0; round < 2; round++ {
		for t := 0; t < cfg.Tenants; t++ {
			for s := 0; s < cfg.Channels; s++ {
				var err error
				if s%3 == 0 {
					_, err = c.OfferCatalogStream(ctx, t, e14ChannelID(s))
				} else {
					_, err = c.OfferStream(ctx, t, s)
				}
				if err != nil {
					return total, err
				}
				total++
				if s%3 == 2 && s > 2 {
					if s%6 == 5 {
						_, err = c.DepartCatalogStream(ctx, t, e14ChannelID(s-2))
					} else {
						_, err = c.DepartStream(ctx, t, s-1)
					}
					if err != nil {
						return total, err
					}
					total++
				}
				if s%5 == 4 {
					if _, err = c.UserLeave(ctx, t, (s+t)%cfg.Gateways); err != nil {
						return total, err
					}
					if _, err = c.UserJoin(ctx, t, (s+t)%cfg.Gateways); err != nil {
						return total, err
					}
					total += 2
				}
			}
		}
		if round == 0 && checkpoint != nil {
			if err := checkpoint(); err != nil {
				return total, err
			}
		}
	}
	return total, nil
}

func e14ChannelID(s int) catalog.ID {
	return catalog.ID(fmt.Sprintf("ch-%03d", s))
}

// e14Renders quiesces the fleet and returns its two canonical renders.
func e14Renders(c *cluster.Cluster) (tables, cat string, err error) {
	fs, err := c.Snapshot()
	if err != nil {
		return "", "", err
	}
	tables = fs.RenderTenants()
	if fs.Catalog != nil {
		cat = fs.Catalog.Render()
	}
	return tables, cat, nil
}

// E14CrashRecovery drills the durability subsystem: for each shard
// count and catalog cost model, a WAL-backed fleet serves a
// deterministic schedule under group commit, checkpoints mid-log, and
// is then abandoned without any shutdown — the in-process equivalent
// of SIGKILL, since under SyncBatch every acknowledged event is
// already fsynced. Recovery reopens the log in a freshly built fleet
// on a DIFFERENT shard count (the next in the sweep), replays it
// through the normal ingest path, and verifies against the mid-log
// checkpoint manifest. The claim holds when every recovered fleet's
// per-tenant tables and catalog registry render byte-identical to a
// control fleet that served the same schedule and never crashed.
func E14CrashRecovery(cfg E14Config) (*Table, error) {
	t := &Table{
		ID:    "E14",
		Title: "Crash recovery from the per-shard write-ahead log",
		Claim: "A fleet killed without warning and recovered from its WAL is " +
			"bit-identical to one that never crashed — per-tenant tables and " +
			"catalog registry — at every shard count, under either catalog cost " +
			"model, even recovering into a different shard count",
		Columns: []string{"shards", "recovered into", "cost model", "events",
			"ckpt verified", "bit-identical"},
	}

	models := []struct {
		name  string
		model catalog.CostModel
	}{
		{"isolated", catalog.Isolated{}},
		{"shared-origin", catalog.SharedOrigin{ReplicationFraction: 0.25}},
	}

	allHold := true
	for si, shards := range cfg.ShardCounts {
		recoverShards := cfg.ShardCounts[(si+1)%len(cfg.ShardCounts)]
		for _, m := range models {
			opts := cluster.Options{
				Shards: shards, BatchSize: 8,
				Catalog: &cluster.CatalogOptions{
					Streams:   catalog.IdentityBindings(cfg.Tenants, cfg.Channels, e14ChannelID),
					CostModel: m.model,
				},
			}

			// Control: same schedule, no WAL, never crashes.
			tenants, err := e14Tenants(cfg)
			if err != nil {
				return nil, err
			}
			control, err := cluster.New(tenants, opts)
			if err != nil {
				return nil, err
			}
			if _, err := e14Drive(control, cfg, nil); err != nil {
				return nil, err
			}
			wantTables, wantCat, err := e14Renders(control)
			if err != nil {
				return nil, err
			}
			if err := control.Close(); err != nil {
				return nil, err
			}

			// The fleet that crashes: WAL on, group commit, one explicit
			// mid-drive checkpoint. Abandoned without Close — the leaked
			// shard workers idle forever, exactly like a killed process's
			// threads never ran again.
			dir, err := os.MkdirTemp("", "e14-wal-*")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(dir)
			walOpts := opts
			walOpts.WAL = &cluster.WALOptions{Dir: dir, Sync: wal.SyncBatch}
			tenants, err = e14Tenants(cfg)
			if err != nil {
				return nil, err
			}
			doomed, err := cluster.New(tenants, walOpts)
			if err != nil {
				return nil, err
			}
			events, err := e14Drive(doomed, cfg, func() error {
				_, err := doomed.Checkpoint("drill")
				return err
			})
			if err != nil {
				return nil, err
			}

			// Recovery, into the next layout in the sweep.
			tenants, err = e14Tenants(cfg)
			if err != nil {
				return nil, err
			}
			recOpts := walOpts
			recOpts.Shards = recoverShards
			recovered, rep, err := cluster.Recover(tenants, recOpts)
			if err != nil {
				return nil, fmt.Errorf("E14: recover %d->%d shards (%s): %w",
					shards, recoverShards, m.name, err)
			}
			gotTables, gotCat, err := e14Renders(recovered)
			if err != nil {
				return nil, err
			}
			if err := recovered.Close(); err != nil {
				return nil, err
			}

			identical := gotTables == wantTables && gotCat == wantCat
			allHold = allHold && identical && rep.CheckpointVerified
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", shards),
				fmt.Sprintf("%d", recoverShards),
				m.name,
				fmt.Sprintf("%d", events),
				fmt.Sprintf("%v", rep.CheckpointVerified),
				fmt.Sprintf("%v", identical),
			})
		}
	}
	t.Verdict = verdict(allHold)
	t.Notes = "Crash = the fleet is abandoned mid-flight with no shutdown path run; " +
		"group commit (SyncBatch) makes every acknowledged event durable, so the " +
		"recovered state must equal the control's exactly. Each recovery replays " +
		"into a different shard count than the one that logged."
	return t, nil
}
