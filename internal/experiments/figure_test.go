package experiments

import (
	"strings"
	"testing"
)

func TestAsciiLogLogRendering(t *testing.T) {
	xs := []float64{100, 1000, 10000}
	ys := []float64{1e4, 1e6, 1e8} // perfect slope-2 data
	fig := asciiLogLog("demo", xs, ys, 2, 40, 10)
	if fig == "" {
		t.Fatal("empty figure for valid input")
	}
	if !strings.Contains(fig, "demo") || !strings.Contains(fig, "```") {
		t.Fatalf("figure missing title or fences:\n%s", fig)
	}
	// Perfect data lies on the reference line, so coincidence markers
	// or stars must appear.
	if !strings.ContainsAny(fig, "*@") {
		t.Fatalf("no data points rendered:\n%s", fig)
	}
	if !strings.Contains(fig, ".") {
		t.Fatalf("no reference line rendered:\n%s", fig)
	}
	lines := strings.Split(fig, "\n")
	rows := 0
	inBlock := false
	for _, l := range lines {
		if strings.HasPrefix(l, "```") {
			inBlock = !inBlock
			continue
		}
		if inBlock {
			rows++
		}
	}
	if rows != 10 {
		t.Fatalf("figure has %d rows, want 10", rows)
	}
}

func TestAsciiLogLogRejectsBadInput(t *testing.T) {
	if fig := asciiLogLog("x", []float64{1}, []float64{1, 2}, 2, 40, 10); fig != "" {
		t.Fatal("accepted mismatched lengths")
	}
	if fig := asciiLogLog("x", []float64{0}, []float64{1}, 2, 40, 10); fig != "" {
		t.Fatal("accepted non-positive x")
	}
	if fig := asciiLogLog("x", nil, nil, 2, 40, 10); fig != "" {
		t.Fatal("accepted empty data")
	}
	if fig := asciiLogLog("x", []float64{1}, []float64{1}, 2, 4, 2); fig != "" {
		t.Fatal("accepted degenerate canvas")
	}
}
