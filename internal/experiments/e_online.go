package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/exact"
	"repro/internal/generator"
	"repro/internal/online"
)

// E6Config parameterizes E6.
type E6Config struct {
	// Trials and instance dimensions.
	Trials, Streams, Users, M, MC int
	// Orders is the number of random arrival orders per instance.
	Orders int
	// Seed drives workload generation.
	Seed int64
}

// DefaultE6 returns the parameters used by EXPERIMENTS.md.
func DefaultE6() E6Config {
	return E6Config{Trials: 8, Streams: 10, Users: 3, M: 2, MC: 1, Orders: 5, Seed: 106}
}

// E6OnlineRatio measures the Section 5 online algorithm: feasibility
// under every arrival order (Lemma 5.1) and the competitive ratio
// against exact optima (Theorem 5.4).
func E6OnlineRatio(cfg E6Config) (*Table, error) {
	t := &Table{
		ID:    "E6",
		Title: "Online Allocate on small streams",
		Claim: "Lemma 5.1: no budget ever violated; Theorem 5.4: " +
			"competitive ratio <= 1 + 2*log2(mu)",
		Columns: []string{"trial", "mu", "bound", "worst ratio over orders",
			"violations"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ok := true
	for trial := 0; trial < cfg.Trials; trial++ {
		in, err := generator.SmallStreams{
			Base: generator.RandomMMD{
				Streams: cfg.Streams, Users: cfg.Users, M: cfg.M, MC: cfg.MC,
				Seed: rng.Int63(), Skew: 2,
			},
		}.Generate()
		if err != nil {
			return nil, err
		}
		norm, err := online.Normalize(in)
		if err != nil {
			return nil, err
		}
		if err := online.CheckSmallStreams(norm.Instance, norm.Mu()); err != nil {
			return nil, fmt.Errorf("E6: generator broke the hypothesis: %w", err)
		}
		opt, err := exact.Solve(in, exact.Options{})
		if err != nil {
			return nil, err
		}
		if opt.Value == 0 {
			continue
		}
		bound := norm.CompetitiveBound()
		worst := 0.0
		violations := 0
		for o := 0; o < cfg.Orders; o++ {
			al, err := online.NewAllocator(norm.Instance, norm.Mu())
			if err != nil {
				return nil, err
			}
			a := al.RunSequence(rng.Perm(in.NumStreams()))
			if a.CheckFeasible(in) != nil {
				violations++
			}
			r := opt.Value / math.Max(a.Utility(in), 1e-12)
			worst = math.Max(worst, r)
		}
		if violations > 0 || worst > bound+1e-9 {
			ok = false
		}
		t.Rows = append(t.Rows, []string{
			d(trial), f1(norm.Mu()), f1(bound), f(worst), d(violations),
		})
	}
	t.Verdict = verdict(ok)
	t.Notes = "Each trial replays the same instance under several random arrival orders."
	return t, nil
}

// A3Config parameterizes A3.
type A3Config struct {
	// Streams/Users/M/MC and Seed as in E6.
	Streams, Users, M, MC int
	Seed                  int64
	// Factors scale mu (1 is the paper's choice).
	Factors []float64
}

// DefaultA3 returns the parameters used by EXPERIMENTS.md.
func DefaultA3() A3Config {
	return A3Config{Streams: 30, Users: 6, M: 2, MC: 1, Seed: 113,
		Factors: []float64{0.25, 0.5, 1, 2, 4}}
}

// A3MuSensitivity measures the allocator's sensitivity to the
// exponential base: smaller mu admits more aggressively (risking budget
// violations once below the Lemma 5.1 threshold), larger mu is more
// conservative.
func A3MuSensitivity(cfg A3Config) (*Table, error) {
	t := &Table{
		ID:    "A3",
		Title: "Ablation: online allocator sensitivity to mu",
		Claim: "mu = 2*gamma*D + 2 balances admission aggressiveness against " +
			"the Lemma 5.1 feasibility guarantee",
		Columns: []string{"mu factor", "mu", "value", "feasible", "max server load"},
	}
	in, err := generator.SmallStreams{
		Base: generator.RandomMMD{
			Streams: cfg.Streams, Users: cfg.Users, M: cfg.M, MC: cfg.MC,
			Seed: cfg.Seed, Skew: 2,
		},
	}.Generate()
	if err != nil {
		return nil, err
	}
	norm, err := online.Normalize(in)
	if err != nil {
		return nil, err
	}
	ok := true
	for _, factor := range cfg.Factors {
		mu := norm.Mu() * factor
		if mu <= 1.5 {
			mu = 1.5
		}
		al, err := online.NewAllocator(norm.Instance, mu)
		if err != nil {
			return nil, err
		}
		a := al.RunSequence(nil)
		feasible := a.CheckFeasible(in) == nil
		maxLoad := 0.0
		for i := 0; i < norm.Instance.M(); i++ {
			maxLoad = math.Max(maxLoad, al.ServerLoad(i))
		}
		if factor >= 1 && !feasible {
			ok = false // at or above the paper's mu feasibility must hold
		}
		t.Rows = append(t.Rows, []string{
			f(factor), f1(mu), f1(a.Utility(in)), fmt.Sprintf("%v", feasible), f(maxLoad),
		})
	}
	t.Verdict = verdict(ok)
	t.Notes = "Factors < 1 void the Lemma 5.1 precondition; violations there are expected, " +
		"not a bug."
	return t, nil
}
