package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/catalog"
	"repro/internal/cluster"
	"repro/internal/generator"
)

// E13Config parameterizes E13.
type E13Config struct {
	// Tenants is the fleet size; Channels/Gateways shape each tenant
	// (every tenant is the same head-end shape and the same seed, so
	// overlapping catalog entries really are the same stream).
	Tenants, Channels, Gateways int
	// Seed drives instance generation and the offer order.
	Seed int64
	// EgressFraction makes the server budgets contended, so admission
	// pricing actually bites.
	EgressFraction float64
	// ReplicationFraction is the SharedOrigin discount.
	ReplicationFraction float64
	// Overlaps are the catalog-overlap fractions swept: at overlap f,
	// the first f×Channels streams carry fleet identity and are offered
	// through the catalog; the rest stay tenant-local.
	Overlaps []float64
}

// DefaultE13 returns the parameters used by EXPERIMENTS.md.
func DefaultE13() E13Config {
	return E13Config{
		Tenants: 6, Channels: 30, Gateways: 8, Seed: 132,
		EgressFraction: 0.15, ReplicationFraction: 0.25,
		Overlaps: []float64{0, 0.5, 1},
	}
}

// e13Run is one (overlap, cost model) configuration's quiesced state.
type e13Run struct {
	utility float64
	savings float64
	shared  int
}

// E13SharedCatalog measures the tentpole of the catalog redesign: on an
// egress-contended fleet whose tenants overlap in catalog content, the
// SharedOrigin cost model (transcode once at the regional origin, later
// tenants pay only the multicast-replication fraction) admits at least
// the fleet utility of fully isolated tenants, and the origin-cost
// savings grow monotonically with the tenant overlap. Isolated runs
// through the identical catalog machinery at full price — the
// differential tests pin it bit-identical to the pre-catalog path — so
// the comparison isolates the pricing, not the plumbing.
func E13SharedCatalog(cfg E13Config) (*Table, error) {
	t := &Table{
		ID:    "E13",
		Title: "Cross-shard shared streams under reference-counted admission",
		Claim: "Regional-CDN sharing: with SharedOrigin pricing, fleet utility is at " +
			"least the isolated fleet's and origin-cost savings are monotone in the " +
			"catalog overlap across tenants",
		Columns: []string{"overlap", "isolated utility", "shared utility",
			"origin savings", "shared streams", "utility >= isolated"},
	}

	runOnce := func(overlap float64, model catalog.CostModel) (*e13Run, error) {
		sharedStreams := int(overlap * float64(cfg.Channels))
		tenants := make([]cluster.TenantConfig, cfg.Tenants)
		for i := range tenants {
			in, err := generator.CableTV{
				Channels: cfg.Channels, Gateways: cfg.Gateways,
				Seed: cfg.Seed, EgressFraction: cfg.EgressFraction,
			}.Generate()
			if err != nil {
				return nil, err
			}
			tenants[i] = cluster.TenantConfig{Instance: in}
		}
		bindings := catalog.IdentityBindings(cfg.Tenants, sharedStreams, func(s int) catalog.ID {
			return catalog.ID(fmt.Sprintf("s-%03d", s))
		})
		c, err := cluster.New(tenants, cluster.Options{
			Shards: 4, BatchSize: 8,
			Catalog: &cluster.CatalogOptions{Streams: bindings, CostModel: model},
		})
		if err != nil {
			return nil, err
		}
		defer c.Close()

		// Offer every stream at every tenant, interleaved across tenants
		// in a seeded catalog order, so shared streams are concurrently
		// held and later tenants actually see a positive refcount.
		ctx := context.Background()
		rng := rand.New(rand.NewSource(cfg.Seed))
		for _, s := range rng.Perm(cfg.Channels) {
			for ti := 0; ti < cfg.Tenants; ti++ {
				if s < sharedStreams {
					if _, err := c.OfferCatalogStream(ctx, ti, bindings[s].ID); err != nil {
						return nil, err
					}
				} else {
					if _, err := c.OfferStream(ctx, ti, s); err != nil {
						return nil, err
					}
				}
			}
		}
		fs, err := c.Snapshot()
		if err != nil {
			return nil, err
		}
		if !fs.AllFeasible {
			return nil, fmt.Errorf("E13: fleet infeasible at overlap %.2f", overlap)
		}
		run := &e13Run{utility: fs.Utility}
		if fs.Catalog != nil {
			run.savings = fs.Catalog.OriginSavings
			run.shared = fs.Catalog.ActiveShared
		}
		return run, nil
	}

	ok := true
	prevSavings := -1.0
	for _, overlap := range cfg.Overlaps {
		iso, err := runOnce(overlap, catalog.Isolated{})
		if err != nil {
			return nil, err
		}
		shared, err := runOnce(overlap, catalog.SharedOrigin{ReplicationFraction: cfg.ReplicationFraction})
		if err != nil {
			return nil, err
		}
		if iso.savings != 0 {
			return nil, fmt.Errorf("E13: isolated model saved %v", iso.savings)
		}
		improved := shared.utility >= iso.utility
		if !improved || shared.savings < prevSavings {
			ok = false
		}
		if overlap == 0 && shared.savings != 0 {
			ok = false
		}
		if overlap > 0 && shared.savings <= 0 {
			ok = false
		}
		prevSavings = shared.savings
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", overlap), f1(iso.utility), f1(shared.utility),
			f1(shared.savings), d(shared.shared), fmt.Sprintf("%v", improved),
		})
	}
	t.Verdict = verdict(ok)
	t.Notes = fmt.Sprintf("%d identical tenants, %d channels x %d gateways, egress fraction "+
		"%.2f (contended); SharedOrigin replication fraction %.2f. At overlap f the first "+
		"f x channels streams are offered through the catalog by every tenant (interleaved, "+
		"so refcounts are live at admission time); the rest are offered tenant-locally. "+
		"Isolated runs the same catalog machinery at full price.",
		cfg.Tenants, cfg.Channels, cfg.Gateways, cfg.EgressFraction, cfg.ReplicationFraction)
	return t, nil
}
