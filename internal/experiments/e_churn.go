package experiments

import (
	"fmt"

	"repro/internal/generator"
	"repro/internal/headend"
)

// E11Config parameterizes E11.
type E11Config struct {
	// Channels/Gateways/Seed shape the workload.
	Channels, Gateways int
	Seed               int64
	// Rounds replays the catalog this many times so freed capacity is
	// actually contested.
	Rounds int
}

// DefaultE11 returns the parameters used by EXPERIMENTS.md.
func DefaultE11() E11Config { return E11Config{Channels: 35, Gateways: 9, Seed: 115, Rounds: 3} }

// E11Churn exercises the paper's footnote-1 dynamic extension: streams
// of finite duration departing and freeing resources. The invariants:
// the plant is never overloaded, and the utility-aware online policy
// accrues more utility-time than threshold admission.
func E11Churn(cfg E11Config) (*Table, error) {
	t := &Table{
		ID:    "E11",
		Title: "Dynamic streams (footnote 1): churn with departures",
		Claim: "Footnote 1: Allocate extends to streams of finite duration; released " +
			"resources are reused and budgets stay satisfied throughout",
		Columns: []string{"policy", "utility-seconds", "peak utility", "admissions",
			"departures", "overload samples"},
	}
	in, err := generator.CableTV{
		Channels: cfg.Channels, Gateways: cfg.Gateways, Seed: cfg.Seed,
		EgressFraction: 0.25,
	}.Generate()
	if err != nil {
		return nil, err
	}
	sc := &headend.ChurnScenario{Instance: in, Seed: cfg.Seed, Rounds: cfg.Rounds}

	onlinePol, err := headend.NewOnlinePolicy(in, true)
	if err != nil {
		return nil, err
	}
	thr, err := headend.NewThresholdPolicy(in, 1)
	if err != nil {
		return nil, err
	}

	ok := true
	run := func(pol headend.Policy, scenario *headend.ChurnScenario, label string) error {
		res, err := scenario.Run(pol, nil)
		if err != nil {
			return err
		}
		if res.OverloadSamples != 0 || res.Departures == 0 {
			ok = false
		}
		t.Rows = append(t.Rows, []string{
			label, f1(res.UtilitySeconds), f1(res.PeakUtility),
			d(res.Admissions), d(res.Departures), d(res.OverloadSamples),
		})
		return nil
	}
	if err := run(onlinePol, sc, onlinePol.Name()); err != nil {
		return nil, err
	}
	if err := run(thr, sc, thr.Name()); err != nil {
		return nil, err
	}
	// Third row: stream churn AND gateway churn together.
	onlineChurn, err := headend.NewOnlinePolicy(in, true)
	if err != nil {
		return nil, err
	}
	gw := *sc
	gw.MeanSessionTime = 8
	gw.MeanAwayTime = 3
	if err := run(onlineChurn, &gw, onlineChurn.Name()+"+gateway-churn"); err != nil {
		return nil, err
	}
	t.Verdict = verdict(ok)
	t.Notes = fmt.Sprintf("Exponential hold times, %d catalog rounds; utility-seconds integrates "+
		"live utility over virtual time. Competitive bounds do not formally carry over to "+
		"departures (the footnote sketches the mechanism, not a theorem).", cfg.Rounds)
	return t, nil
}
