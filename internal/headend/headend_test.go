package headend_test

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/generator"
	"repro/internal/headend"
	"repro/internal/trace"
)

func cableInstance(t *testing.T, seed int64) *generator.CableTV {
	t.Helper()
	return &generator.CableTV{Channels: 30, Gateways: 8, Seed: seed, EgressFraction: 0.3}
}

func TestScenarioThresholdFeasibleNoOverload(t *testing.T) {
	in, err := cableInstance(t, 1).Generate()
	if err != nil {
		t.Fatal(err)
	}
	sc := &headend.Scenario{Instance: in, Seed: 7}
	pol, err := headend.NewThresholdPolicy(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Run(pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.FeasibilityErr != nil {
		t.Fatalf("threshold produced infeasible assignment: %v", res.FeasibilityErr)
	}
	if res.OverloadSamples != 0 {
		t.Fatalf("feasible policy overloaded the network %d times", res.OverloadSamples)
	}
	if res.StreamsOffered != in.NumStreams() {
		t.Fatalf("offered %d, want %d", res.StreamsOffered, in.NumStreams())
	}
	if res.Utility <= 0 || res.DeliveredMb <= 0 {
		t.Fatalf("utility %v delivered %v, want positive", res.Utility, res.DeliveredMb)
	}
}

func TestScenarioOraclePolicy(t *testing.T) {
	in, err := cableInstance(t, 2).Generate()
	if err != nil {
		t.Fatal(err)
	}
	sc := &headend.Scenario{Instance: in, Seed: 8}
	pol, err := headend.NewOraclePolicy(in, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Run(pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.FeasibilityErr != nil {
		t.Fatalf("oracle infeasible: %v", res.FeasibilityErr)
	}
	if res.OverloadSamples != 0 {
		t.Fatalf("oracle overloaded the network %d times", res.OverloadSamples)
	}
	// The oracle must reveal exactly its precomputed assignment.
	if !res.Assignment.Equal(pol.Assignment()) {
		t.Fatal("revealed assignment differs from the precomputed one")
	}
}

func TestScenarioGuardedOnlineNeverOverloads(t *testing.T) {
	in, err := cableInstance(t, 3).Generate()
	if err != nil {
		t.Fatal(err)
	}
	sc := &headend.Scenario{Instance: in, Seed: 9}
	pol, err := headend.NewOnlinePolicy(in, true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Run(pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.FeasibilityErr != nil {
		t.Fatalf("guarded online infeasible: %v", res.FeasibilityErr)
	}
	if res.OverloadSamples != 0 {
		t.Fatalf("guarded online overloaded the network %d times", res.OverloadSamples)
	}
}

func TestScenarioOracleBeatsThresholdAggregate(t *testing.T) {
	oracleTotal, thresholdTotal := 0.0, 0.0
	for seed := int64(0); seed < 6; seed++ {
		in, err := (&generator.CableTV{
			Channels: 40, Gateways: 10, Seed: seed, EgressFraction: 0.2,
		}).Generate()
		if err != nil {
			t.Fatal(err)
		}
		sc := &headend.Scenario{Instance: in, Seed: seed}
		oracle, err := headend.NewOraclePolicy(in, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		thr, err := headend.NewThresholdPolicy(in, 1)
		if err != nil {
			t.Fatal(err)
		}
		or, err := sc.Run(oracle, nil)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := sc.Run(thr, nil)
		if err != nil {
			t.Fatal(err)
		}
		oracleTotal += or.Utility
		thresholdTotal += tr.Utility
	}
	if oracleTotal <= thresholdTotal {
		t.Fatalf("oracle %v did not beat threshold %v in aggregate", oracleTotal, thresholdTotal)
	}
}

func TestScenarioTraceOutput(t *testing.T) {
	in, err := cableInstance(t, 4).Generate()
	if err != nil {
		t.Fatal(err)
	}
	sc := &headend.Scenario{Instance: in, Seed: 10}
	pol, err := headend.NewThresholdPolicy(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tw := trace.NewWriter(&buf)
	if _, err := sc.Run(pol, tw); err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := trace.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Validate(events); err != nil {
		t.Fatal(err)
	}
	arrivals, decisions := 0, 0
	for _, e := range events {
		switch e.Type {
		case trace.EventStreamArrival:
			arrivals++
		case trace.EventDecision:
			decisions++
		}
	}
	if arrivals != in.NumStreams() || decisions != in.NumStreams() {
		t.Fatalf("trace has %d arrivals, %d decisions, want %d each",
			arrivals, decisions, in.NumStreams())
	}
}

func TestScenarioDeterministic(t *testing.T) {
	in, err := cableInstance(t, 5).Generate()
	if err != nil {
		t.Fatal(err)
	}
	sc := &headend.Scenario{Instance: in, Seed: 11}
	run := func() *headend.Result {
		pol, err := headend.NewThresholdPolicy(in, 1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sc.Run(pol, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := run(), run()
	if r1.Utility != r2.Utility || r1.DeliveredMb != r2.DeliveredMb ||
		r1.StreamsAdmitted != r2.StreamsAdmitted {
		t.Fatal("scenario not deterministic for fixed seeds")
	}
}

func TestStaticGreedyPolicy(t *testing.T) {
	in, err := cableInstance(t, 6).Generate()
	if err != nil {
		t.Fatal(err)
	}
	pol, err := headend.NewStaticGreedyPolicy(in)
	if err != nil {
		t.Fatal(err)
	}
	sc := &headend.Scenario{Instance: in, Seed: 12}
	res, err := sc.Run(pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.FeasibilityErr != nil {
		t.Fatalf("static greedy infeasible: %v", res.FeasibilityErr)
	}
}

func TestPolicyConstructorsReject(t *testing.T) {
	in, err := cableInstance(t, 7).Generate()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := headend.NewThresholdPolicy(in, 0); err == nil {
		t.Error("NewThresholdPolicy accepted margin 0")
	}
	if _, err := headend.NewThresholdPolicy(in, 2); err == nil {
		t.Error("NewThresholdPolicy accepted margin 2")
	}
}

func TestScenarioRejectsNilInstance(t *testing.T) {
	sc := &headend.Scenario{}
	pol := &headend.OraclePolicy{}
	if _, err := sc.Run(pol, nil); err == nil {
		t.Fatal("Run accepted a nil instance")
	}
}
