package headend

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mmd"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Scenario describes one head-end simulation run. The instance is
// expected to follow the cable-TV convention: server measure 0 is egress
// bandwidth in Mbps, each user's capacity measure 0 is its downlink in
// Mbps (generator.CableTV produces this shape).
type Scenario struct {
	// Instance is the workload.
	Instance *mmd.Instance
	// Seed drives arrival order and spacing.
	Seed int64
	// MeanInterarrival is the mean spacing between stream arrivals in
	// virtual seconds (default 1).
	MeanInterarrival float64
	// TailTime keeps the network running after the last arrival so
	// delivery accounting reflects the final assignment (default 10x
	// MeanInterarrival).
	TailTime float64
	// SampleInterval is the delivery sampling period (default
	// MeanInterarrival/4).
	SampleInterval float64
}

// Result summarizes a run.
type Result struct {
	// Policy is the policy name.
	Policy string
	// Utility is the total utility of the final assignment.
	Utility float64
	// Assignment is the final assignment (streams to users).
	Assignment *mmd.Assignment
	// FeasibilityErr is nil when the final assignment satisfies every
	// budget and capacity of the instance.
	FeasibilityErr error
	// StreamsOffered / StreamsAdmitted count arrivals and admissions.
	StreamsOffered, StreamsAdmitted int
	// DeliveredMb is megabits delivered across all gateways by the
	// network simulation.
	DeliveredMb float64
	// OverloadSamples counts sampling ticks during which some link was
	// over capacity (0 whenever the policy respected the budgets).
	OverloadSamples int
	// TotalSamples counts delivery sampling ticks.
	TotalSamples int
	// TrunkUtilization is the final trunk load over capacity.
	TrunkUtilization float64
	// EndTime is the virtual time when the run finished.
	EndTime float64
}

func (sc *Scenario) withDefaults() Scenario {
	out := *sc
	if out.MeanInterarrival == 0 {
		out.MeanInterarrival = 1
	}
	if out.TailTime == 0 {
		out.TailTime = 10 * out.MeanInterarrival
	}
	if out.SampleInterval == 0 {
		out.SampleInterval = out.MeanInterarrival / 4
	}
	return out
}

// Run executes the scenario under the given policy. When tw is non-nil
// the arrival and decision events are appended to it.
func (sc *Scenario) Run(policy Policy, tw *trace.Writer) (*Result, error) {
	cfg := sc.withDefaults()
	in := cfg.Instance
	if in == nil || in.M() < 1 {
		return nil, fmt.Errorf("headend: scenario needs an instance with at least one budget")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	engine := sim.NewEngine()

	access := make([]float64, in.NumUsers())
	for u := range in.Users {
		if len(in.Users[u].Capacities) > 0 {
			access[u] = in.Users[u].Capacities[0]
		} else {
			access[u] = math.Inf(1)
		}
	}
	net, err := netsim.NewTree(engine, in.Budgets[0], access)
	if err != nil {
		return nil, fmt.Errorf("headend: %w", err)
	}
	for s := range in.Streams {
		if err := net.RegisterStream(s, in.Streams[s].Costs[0]); err != nil {
			return nil, fmt.Errorf("headend: %w", err)
		}
	}

	tenant, err := NewTenant(in, policy)
	if err != nil {
		return nil, err
	}
	res := &Result{Policy: policy.Name(), Assignment: tenant.Assignment()}
	emit := func(e trace.Event) error {
		if tw == nil {
			return nil
		}
		if err := tw.Append(e); err != nil {
			return err
		}
		return nil
	}

	// Poisson-ish arrivals in a random stream order.
	order := rng.Perm(in.NumStreams())
	at := 0.0
	var lastArrival float64
	var scheduleErr error
	for _, s := range order {
		s := s
		at += rng.ExpFloat64() * cfg.MeanInterarrival
		lastArrival = at
		err := engine.ScheduleAt(at, func() {
			if err := emit(trace.Event{
				Time: engine.Now(), Type: trace.EventStreamArrival, Stream: s,
			}); err != nil && scheduleErr == nil {
				scheduleErr = err
			}
			users := tenant.OfferStream(s)
			if err := emit(trace.Event{
				Time: engine.Now(), Type: trace.EventDecision, Stream: s,
				Users: users, Value: utilityOf(in, s, users),
			}); err != nil && scheduleErr == nil {
				scheduleErr = err
			}
			for _, u := range users {
				if err := net.Subscribe(u, s); err != nil && scheduleErr == nil {
					scheduleErr = err
				}
			}
		})
		if err != nil {
			return nil, fmt.Errorf("headend: %w", err)
		}
	}

	end := lastArrival + cfg.TailTime
	if err := net.StartSampling(cfg.SampleInterval, end); err != nil {
		return nil, fmt.Errorf("headend: %w", err)
	}
	engine.RunUntil(end)
	if scheduleErr != nil {
		return nil, fmt.Errorf("headend: %w", scheduleErr)
	}

	snap := tenant.Snapshot()
	res.StreamsOffered = snap.StreamsOffered
	res.StreamsAdmitted = snap.StreamsAdmitted
	res.Utility = res.Assignment.Utility(in)
	res.FeasibilityErr = res.Assignment.CheckFeasible(in)
	res.DeliveredMb = net.TotalDeliveredMb()
	res.OverloadSamples = net.OverloadSamples()
	res.TotalSamples = net.TotalSamples()
	res.TrunkUtilization = net.TrunkUtilization()
	res.EndTime = engine.Now()
	return res, nil
}
