package headend

import (
	"fmt"
	"math/rand"

	"repro/internal/mmd"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/trace"
)

// DeparturePolicy is implemented by policies that track stream
// departures (the paper's footnote 1 extension: streams of finite
// duration). Policies that do not implement it simply keep stale state;
// the scenario still unsubscribes the plant.
type DeparturePolicy interface {
	Policy
	// OnStreamDeparture releases the stream's resources.
	OnStreamDeparture(s int)
}

// OnStreamDeparture implements DeparturePolicy for the online policy by
// releasing the stream from the allocator, the running assignment, and
// (guarded mode) the feasibility ledger — or, on the rescan reference
// path, the recorded charge scale (the refund side of a discounted
// admission, mirroring the ledger's scale bookkeeping).
func (p *OnlinePolicy) OnStreamDeparture(s int) {
	p.allocator.Release(s)
	for u := 0; u < p.assn.NumUsers(); u++ {
		if !p.assn.Has(u, s) {
			continue
		}
		p.assn.Remove(u, s)
		if p.ledger != nil {
			p.ledger.Remove(u, s)
		}
	}
	delete(p.scale, s)
}

// OnStreamDeparture implements DeparturePolicy for the threshold policy.
func (p *ThresholdPolicy) OnStreamDeparture(s int) {
	held := false
	for u := 0; u < p.assn.NumUsers(); u++ {
		if !p.assn.Has(u, s) {
			continue
		}
		held = true
		p.assn.Remove(u, s)
		usr := &p.in.Users[u]
		for j := range usr.Capacities {
			p.userLoad[u][j] -= usr.Loads[j][s]
			if p.userLoad[u][j] < 0 {
				p.userLoad[u][j] = 0
			}
		}
	}
	if held {
		for i, c := range p.in.Streams[s].Costs {
			p.serverCost[i] -= c
			if p.serverCost[i] < 0 {
				p.serverCost[i] = 0
			}
		}
	}
}

// ChurnScenario runs a head-end where every admitted stream departs
// after an exponentially distributed hold time — the dynamic setting of
// the paper's footnote 1. Admission decisions are never revoked early;
// departures free resources for later arrivals.
type ChurnScenario struct {
	// Instance is the workload (cable-TV conventions, see Scenario).
	Instance *mmd.Instance
	// Seed drives arrivals, hold times, and ordering.
	Seed int64
	// MeanInterarrival is the mean stream spacing (default 1).
	MeanInterarrival float64
	// MeanHoldTime is the mean stream lifetime (default 5x interarrival).
	MeanHoldTime float64
	// Rounds replays the whole catalog this many times (default 2), so
	// freed resources actually get reused.
	Rounds int
	// SampleInterval is the delivery sampling period (default
	// MeanInterarrival/4).
	SampleInterval float64
	// MeanSessionTime enables gateway churn when positive: each gateway
	// stays online for an exponential session, then goes away for an
	// exponential MeanAwayTime (default MeanSessionTime/4), and rejoins.
	MeanSessionTime float64
	// MeanAwayTime is the mean offline period (used only when
	// MeanSessionTime > 0).
	MeanAwayTime float64
}

// ChurnResult summarizes a churn run.
type ChurnResult struct {
	// Policy is the policy name.
	Policy string
	// UtilitySeconds integrates live utility over virtual time — the
	// natural objective when streams come and go.
	UtilitySeconds float64
	// PeakUtility is the largest instantaneous live utility.
	PeakUtility float64
	// Offers, Admissions, Departures count stream events.
	Offers, Admissions, Departures int
	// UserLeaves and UserJoins count gateway churn events.
	UserLeaves, UserJoins int
	// OverloadSamples counts plant overload ticks (0 for feasible
	// policies).
	OverloadSamples int
	// TotalSamples counts delivery sampling ticks.
	TotalSamples int
	// DeliveredMb is total delivered megabits.
	DeliveredMb float64
	// EndTime is the virtual end of the run.
	EndTime float64
}

func (sc *ChurnScenario) withDefaults() ChurnScenario {
	out := *sc
	if out.MeanInterarrival == 0 {
		out.MeanInterarrival = 1
	}
	if out.MeanHoldTime == 0 {
		out.MeanHoldTime = 5 * out.MeanInterarrival
	}
	if out.Rounds == 0 {
		out.Rounds = 2
	}
	if out.SampleInterval == 0 {
		out.SampleInterval = out.MeanInterarrival / 4
	}
	return out
}

// Run executes the churn scenario. When tw is non-nil, arrival,
// decision, and departure events are traced.
func (sc *ChurnScenario) Run(policy Policy, tw *trace.Writer) (*ChurnResult, error) {
	cfg := sc.withDefaults()
	in := cfg.Instance
	if in == nil || in.M() < 1 {
		return nil, fmt.Errorf("headend: churn scenario needs an instance with at least one budget")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	engine := sim.NewEngine()

	access := make([]float64, in.NumUsers())
	for u := range in.Users {
		if len(in.Users[u].Capacities) > 0 {
			access[u] = in.Users[u].Capacities[0]
		} else {
			access[u] = 1e18
		}
	}
	net, err := netsim.NewTree(engine, in.Budgets[0], access)
	if err != nil {
		return nil, fmt.Errorf("headend: %w", err)
	}
	for s := range in.Streams {
		if err := net.RegisterStream(s, in.Streams[s].Costs[0]); err != nil {
			return nil, fmt.Errorf("headend: %w", err)
		}
	}

	tenant, err := NewTenant(in, policy)
	if err != nil {
		return nil, err
	}
	res := &ChurnResult{Policy: policy.Name()}

	liveUtility := 0.0
	lastChange := 0.0
	accrue := func() {
		now := engine.Now()
		res.UtilitySeconds += liveUtility * (now - lastChange)
		lastChange = now
	}
	emit := func(e trace.Event) {
		if tw != nil {
			_ = tw.Append(e) // trace errors are surfaced at Flush time
		}
	}

	var lastArrival float64
	at := 0.0
	for round := 0; round < cfg.Rounds; round++ {
		for _, s := range rng.Perm(in.NumStreams()) {
			s := s
			at += rng.ExpFloat64() * cfg.MeanInterarrival
			hold := rng.ExpFloat64() * cfg.MeanHoldTime
			lastArrival = at
			err := engine.ScheduleAt(at, func() {
				emit(trace.Event{Time: engine.Now(), Type: trace.EventStreamArrival, Stream: s})
				if tenant.Carries(s) {
					tenant.OfferStream(s) // count the offer; still carried from a previous round
					return
				}
				users := tenant.OfferStream(s)
				emit(trace.Event{Time: engine.Now(), Type: trace.EventDecision,
					Stream: s, Users: users, Value: utilityOf(in, s, users)})
				if len(users) == 0 {
					return
				}
				accrue()
				for _, u := range users {
					_ = net.Subscribe(u, s)
					liveUtility += in.Users[u].Utility[s]
				}
				if liveUtility > res.PeakUtility {
					res.PeakUtility = liveUtility
				}
				// Schedule the departure.
				_ = engine.Schedule(hold, func() {
					if !tenant.Carries(s) {
						return
					}
					accrue()
					for _, u := range tenant.DepartStream(s) {
						net.Unsubscribe(u, s)
						liveUtility -= in.Users[u].Utility[s]
					}
					if liveUtility < 0 {
						liveUtility = 0
					}
					emit(trace.Event{Time: engine.Now(), Type: trace.EventStreamDeparture, Stream: s})
				})
			})
			if err != nil {
				return nil, fmt.Errorf("headend: %w", err)
			}
		}
	}

	// Tail long enough to drain typical hold times, but capped so
	// near-infinite hold times (a no-churn control run) stay tractable.
	tail := 3 * cfg.MeanHoldTime
	if max := 50 * cfg.MeanInterarrival; tail > max {
		tail = max
	}
	end := lastArrival + tail

	// Gateway churn: precompute each user's leave/join times up to the
	// horizon.
	if cfg.MeanSessionTime > 0 {
		awayTime := cfg.MeanAwayTime
		if awayTime == 0 {
			awayTime = cfg.MeanSessionTime / 4
		}
		for u := 0; u < in.NumUsers(); u++ {
			u := u
			t := rng.ExpFloat64() * cfg.MeanSessionTime
			for t < end {
				leaveAt := t
				if err := engine.ScheduleAt(leaveAt, func() {
					if tenant.Away(u) {
						return
					}
					accrue()
					for _, s := range tenant.UserLeave(u) {
						net.Unsubscribe(u, s)
						liveUtility -= in.Users[u].Utility[s]
					}
					if liveUtility < 0 {
						liveUtility = 0
					}
					emit(trace.Event{Time: engine.Now(), Type: trace.EventUserLeave,
						Stream: -1, Users: []int{u}})
				}); err != nil {
					return nil, fmt.Errorf("headend: %w", err)
				}
				t += rng.ExpFloat64() * awayTime
				joinAt := t
				if joinAt >= end {
					break
				}
				if err := engine.ScheduleAt(joinAt, func() {
					if !tenant.Away(u) {
						return
					}
					tenant.UserJoin(u)
					emit(trace.Event{Time: engine.Now(), Type: trace.EventUserJoin,
						Stream: -1, Users: []int{u}})
				}); err != nil {
					return nil, fmt.Errorf("headend: %w", err)
				}
				t += rng.ExpFloat64() * cfg.MeanSessionTime
			}
		}
	}
	if err := net.StartSampling(cfg.SampleInterval, end); err != nil {
		return nil, fmt.Errorf("headend: %w", err)
	}
	engine.RunUntil(end)
	accrue()

	snap := tenant.Snapshot()
	res.Offers = snap.StreamsOffered
	res.Admissions = snap.StreamsAdmitted
	res.Departures = snap.StreamsDeparted
	res.UserLeaves = snap.UserLeaves
	res.UserJoins = snap.UserJoins
	res.OverloadSamples = net.OverloadSamples()
	res.TotalSamples = net.TotalSamples()
	res.DeliveredMb = net.TotalDeliveredMb()
	res.EndTime = engine.Now()
	return res, nil
}
