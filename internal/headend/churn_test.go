package headend_test

import (
	"bytes"
	"testing"

	"repro/internal/generator"
	"repro/internal/headend"
	"repro/internal/trace"
)

func TestChurnScenarioOnlinePolicy(t *testing.T) {
	in, err := cableInstance(t, 21).Generate()
	if err != nil {
		t.Fatal(err)
	}
	pol, err := headend.NewOnlinePolicy(in, true)
	if err != nil {
		t.Fatal(err)
	}
	sc := &headend.ChurnScenario{Instance: in, Seed: 22, Rounds: 3}
	res, err := sc.Run(pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.OverloadSamples != 0 {
		t.Fatalf("guarded online overloaded the plant %d times under churn", res.OverloadSamples)
	}
	if res.Departures == 0 {
		t.Fatal("no departures in a churn scenario")
	}
	if res.UtilitySeconds <= 0 || res.PeakUtility <= 0 {
		t.Fatalf("no utility accrued: %v / %v", res.UtilitySeconds, res.PeakUtility)
	}
	// With three rounds, freed resources should allow strictly more
	// admissions than a single pass of the catalog could grant.
	if res.Admissions <= 0 || res.Offers != 3*in.NumStreams() {
		t.Fatalf("offers %d admissions %d", res.Offers, res.Admissions)
	}
}

func TestChurnScenarioThresholdPolicy(t *testing.T) {
	in, err := cableInstance(t, 23).Generate()
	if err != nil {
		t.Fatal(err)
	}
	pol, err := headend.NewThresholdPolicy(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	sc := &headend.ChurnScenario{Instance: in, Seed: 24, Rounds: 2}
	res, err := sc.Run(pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.OverloadSamples != 0 {
		t.Fatalf("threshold overloaded the plant %d times under churn", res.OverloadSamples)
	}
}

// TestChurnReusesFreedCapacity: the same catalog offered twice with
// departures in between must admit in round 2 streams that round 1's
// load would have blocked — measured as more admissions than a
// non-churning run of the same length.
func TestChurnReusesFreedCapacity(t *testing.T) {
	in, err := (&generator.CableTV{
		Channels: 30, Gateways: 8, Seed: 25, EgressFraction: 0.15, // tight
	}).Generate()
	if err != nil {
		t.Fatal(err)
	}
	makePol := func() headend.Policy {
		pol, err := headend.NewThresholdPolicy(in, 1)
		if err != nil {
			t.Fatal(err)
		}
		return pol
	}
	churn := &headend.ChurnScenario{Instance: in, Seed: 26, Rounds: 2, MeanHoldTime: 2}
	resChurn, err := churn.Run(makePol(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Same arrivals but effectively no departures during the run.
	still := &headend.ChurnScenario{Instance: in, Seed: 26, Rounds: 2, MeanHoldTime: 1e9}
	resStill, err := still.Run(makePol(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if resChurn.Admissions <= resStill.Admissions {
		t.Fatalf("churn admissions %d <= no-churn %d: freed capacity was not reused",
			resChurn.Admissions, resStill.Admissions)
	}
}

func TestChurnTrace(t *testing.T) {
	in, err := cableInstance(t, 27).Generate()
	if err != nil {
		t.Fatal(err)
	}
	pol, err := headend.NewOnlinePolicy(in, true)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tw := trace.NewWriter(&buf)
	sc := &headend.ChurnScenario{Instance: in, Seed: 28}
	if _, err := sc.Run(pol, tw); err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := trace.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Validate(events); err != nil {
		t.Fatal(err)
	}
	departures := 0
	for _, e := range events {
		if e.Type == trace.EventStreamDeparture {
			departures++
		}
	}
	if departures == 0 {
		t.Fatal("no departure events traced")
	}
}

func TestChurnRejectsNilInstance(t *testing.T) {
	sc := &headend.ChurnScenario{}
	pol := &headend.OraclePolicy{}
	if _, err := sc.Run(pol, nil); err == nil {
		t.Fatal("Run accepted a nil instance")
	}
}
