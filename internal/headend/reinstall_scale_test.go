package headend

// Regression tests for the install re-pricing bug: an installing
// re-solve used to reset every charge scale to 1, so a shared-catalog
// stream the new lineup *retained* was suddenly priced at full cost —
// overstating the budget draw (its origin is still paid for elsewhere)
// and desynchronizing the guard from the discounted refund recorded
// when the stream eventually departs. Retained streams must keep their
// earned discount; only dropped streams lose it, and fresh pickups are
// full price.

import (
	"testing"

	"repro/internal/generator"
	"repro/internal/mmd"
)

func scaleTestInstance(t *testing.T, seed int64) *mmd.Instance {
	t.Helper()
	in, err := generator.CableTV{Channels: 16, Gateways: 5, Seed: seed, EgressFraction: 0.3}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// admitScaled drives tn until at least one stream is admitted at the
// given discount, returning the admitted stream.
func admitScaled(t *testing.T, tn *Tenant, scale float64) int {
	t.Helper()
	for s := 0; s < tn.Instance().NumStreams(); s++ {
		if users := tn.OfferStreamScaled(s, scale); len(users) > 0 {
			return s
		}
	}
	t.Fatal("no stream admitted at a discount")
	return -1
}

// TestInstallRetainsEarnedDiscounts pins Tenant.install: the charge
// scale of a discounted stream the installed lineup retains survives,
// a dropped stream's entry is pruned, and the feasibility rescan keeps
// pricing the retained stream at its discount.
func TestInstallRetainsEarnedDiscounts(t *testing.T) {
	in := scaleTestInstance(t, 211)
	pol, err := NewOnlinePolicy(in, true)
	if err != nil {
		t.Fatal(err)
	}
	tn, err := NewTenant(in, pol)
	if err != nil {
		t.Fatal(err)
	}
	kept := admitScaled(t, tn, 0.25)
	var dropped int
	for s := 0; s < in.NumStreams(); s++ {
		if s == kept {
			continue
		}
		if users := tn.OfferStreamScaled(s, 0.5); len(users) > 0 {
			dropped = s
			break
		}
	}
	if tn.scale[kept] != 0.25 || tn.scale[dropped] != 0.5 {
		t.Fatalf("pre-install scales = %v", tn.scale)
	}

	// Install a lineup that retains kept and drops dropped.
	next := tn.Assignment().Clone()
	for _, u := range tn.live[dropped] {
		next.Remove(u, dropped)
	}
	if err := tn.install(next); err != nil {
		t.Fatal(err)
	}
	if got := tn.scale[kept]; got != 0.25 {
		t.Fatalf("retained stream %d re-priced: scale = %v, want 0.25", kept, got)
	}
	if _, ok := tn.scale[dropped]; ok {
		t.Fatalf("dropped stream %d kept a stale scale entry", dropped)
	}
	if !tn.feasible() {
		t.Fatal("installed lineup infeasible under retained discount pricing")
	}
}

// TestReinstallRetainsLedgerScales pins OnlinePolicy.Reinstall for the
// ledger guard: the rebuilt ledger prices a retained discounted stream
// at its recorded scale (so its eventual Remove refunds exactly what
// the rebuild charged), and prices dropped / fresh streams at 1.
func TestReinstallRetainsLedgerScales(t *testing.T) {
	in := scaleTestInstance(t, 223)
	pol, err := NewOnlinePolicy(in, true)
	if err != nil {
		t.Fatal(err)
	}
	if pol.ledger == nil {
		t.Fatal("guarded online policy has no ledger")
	}
	var kept int
	found := false
	for s := 0; s < in.NumStreams() && !found; s++ {
		if users := pol.OnStreamArrivalScaled(s, 0.25); len(users) > 0 {
			kept, found = s, true
		}
	}
	if !found {
		t.Fatal("no discounted admission")
	}
	if got := pol.ledger.ChargeScale(kept); got != 0.25 {
		t.Fatalf("pre-install ledger scale = %v", got)
	}
	fullBefore := pol.ledger.ServerCost(0)

	if err := pol.Reinstall(pol.assn.Clone()); err != nil {
		t.Fatal(err)
	}
	if got := pol.ledger.ChargeScale(kept); got != 0.25 {
		t.Fatalf("reinstall re-priced retained stream: ledger scale = %v, want 0.25", got)
	}
	if got := pol.ledger.ServerCost(0); got != fullBefore {
		t.Fatalf("reinstall changed the budget draw of an identical lineup: %v -> %v", fullBefore, got)
	}

	// Reinstalling a lineup without the stream drops its scale: a later
	// full-price re-admission must be charged (and refunded) at 1.
	empty := mmd.NewAssignment(in.NumUsers())
	if err := pol.Reinstall(empty); err != nil {
		t.Fatal(err)
	}
	if got := pol.ledger.ChargeScale(kept); got != 1 {
		t.Fatalf("dropped stream kept ledger scale %v", got)
	}
}

// TestReinstallRetainsRescanScales pins the rescan guard variant: the
// policy's own scale map keeps retained entries and prunes dropped
// ones across Reinstall.
func TestReinstallRetainsRescanScales(t *testing.T) {
	in := scaleTestInstance(t, 227)
	pol, err := NewRescanOnlinePolicy(in)
	if err != nil {
		t.Fatal(err)
	}
	if pol.ledger != nil {
		t.Fatal("rescan policy unexpectedly has a ledger")
	}
	var kept int
	found := false
	for s := 0; s < in.NumStreams() && !found; s++ {
		if users := pol.OnStreamArrivalScaled(s, 0.25); len(users) > 0 {
			kept, found = s, true
		}
	}
	if !found {
		t.Fatal("no discounted admission")
	}
	if err := pol.Reinstall(pol.assn.Clone()); err != nil {
		t.Fatal(err)
	}
	if got := pol.scale[kept]; got != 0.25 {
		t.Fatalf("rescan guard re-priced retained stream: scale = %v, want 0.25", got)
	}
	if err := pol.Reinstall(mmd.NewAssignment(in.NumUsers())); err != nil {
		t.Fatal(err)
	}
	if _, ok := pol.scale[kept]; ok {
		t.Fatal("dropped stream kept a stale rescan scale entry")
	}
}
