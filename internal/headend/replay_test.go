package headend_test

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/headend"
	"repro/internal/trace"
)

// TestReplaySameWorkloadDifferentPolicies records a threshold run and
// replays the identical arrival schedule against the oracle, comparing
// apples to apples.
func TestReplaySameWorkloadDifferentPolicies(t *testing.T) {
	in, err := cableInstance(t, 31).Generate()
	if err != nil {
		t.Fatal(err)
	}
	thr, err := headend.NewThresholdPolicy(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tw := trace.NewWriter(&buf)
	sc := &headend.Scenario{Instance: in, Seed: 32}
	orig, err := sc.Run(thr, tw)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := trace.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Replaying against a fresh threshold policy reproduces the run.
	thr2, err := headend.NewThresholdPolicy(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	same, err := headend.Replay(in, events, thr2)
	if err != nil {
		t.Fatal(err)
	}
	if same.Utility != orig.Utility || same.StreamsAdmitted != orig.StreamsAdmitted {
		t.Fatalf("replay of same policy diverged: %v/%d vs %v/%d",
			same.Utility, same.StreamsAdmitted, orig.Utility, orig.StreamsAdmitted)
	}

	// Replaying against the oracle is feasible and never overloads.
	oracle, err := headend.NewOraclePolicy(in, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	or, err := headend.Replay(in, events, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if or.FeasibilityErr != nil || or.OverloadSamples != 0 {
		t.Fatalf("oracle replay infeasible (%v) or overloaded (%d)",
			or.FeasibilityErr, or.OverloadSamples)
	}
	if or.StreamsOffered != orig.StreamsOffered {
		t.Fatalf("replay offered %d streams, original %d", or.StreamsOffered, orig.StreamsOffered)
	}
}

func TestReplayHandlesDepartures(t *testing.T) {
	in, err := cableInstance(t, 33).Generate()
	if err != nil {
		t.Fatal(err)
	}
	pol, err := headend.NewOnlinePolicy(in, true)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tw := trace.NewWriter(&buf)
	churn := &headend.ChurnScenario{Instance: in, Seed: 34, Rounds: 2}
	if _, err := churn.Run(pol, tw); err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := trace.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}

	fresh, err := headend.NewOnlinePolicy(in, true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := headend.Replay(in, events, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if res.FeasibilityErr != nil {
		t.Fatalf("replay with departures infeasible: %v", res.FeasibilityErr)
	}
	if res.OverloadSamples != 0 {
		t.Fatalf("replay overloaded %d times", res.OverloadSamples)
	}
}

func TestReplayRejectsBadTrace(t *testing.T) {
	in, err := cableInstance(t, 35).Generate()
	if err != nil {
		t.Fatal(err)
	}
	pol, err := headend.NewThresholdPolicy(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := []trace.Event{{Time: 2, Type: trace.EventStreamArrival}, {Time: 1, Type: trace.EventStreamArrival}}
	if _, err := headend.Replay(in, bad, pol); err == nil {
		t.Fatal("Replay accepted an out-of-order trace")
	}
	if _, err := headend.Replay(nil, nil, pol); err == nil {
		t.Fatal("Replay accepted a nil instance")
	}
}
