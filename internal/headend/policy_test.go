package headend_test

import (
	"testing"

	"repro/internal/generator"
	"repro/internal/headend"
)

// TestNewPolicyByName is the table-driven contract of the single
// name-to-policy factory: every named kind builds, reports the right
// name, and makes feasible decisions; unknown kinds and nil instances
// are rejected.
func TestNewPolicyByName(t *testing.T) {
	in, err := generator.CableTV{Channels: 15, Gateways: 5, Seed: 61, EgressFraction: 0.3}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		kind     string
		wantName string
		// feasible: the policy guarantees true-constraint feasibility
		// (the unguarded allocator intentionally does not when the
		// small-streams hypothesis fails).
		feasible bool
	}{
		{"", "online-allocate-guarded", true},
		{"online", "online-allocate-guarded", true},
		{"online-unguarded", "online-allocate", false},
		{"threshold", "threshold", true},
		{"oracle", "offline-oracle", true},
		{"static", "static-greedy", true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run("kind="+tc.kind, func(t *testing.T) {
			pol, err := headend.NewPolicyByName(in, tc.kind)
			if err != nil {
				t.Fatal(err)
			}
			if pol.Name() != tc.wantName {
				t.Fatalf("Name() = %q, want %q", pol.Name(), tc.wantName)
			}
			// Every built-in policy is installable (serving API v2
			// re-solves depend on it).
			if _, ok := pol.(headend.ReinstallablePolicy); !ok {
				t.Fatalf("policy %q does not implement ReinstallablePolicy", tc.wantName)
			}
			// Drive it through a tenant: offers must keep feasibility.
			tn, err := headend.NewTenant(in, pol)
			if err != nil {
				t.Fatal(err)
			}
			offered := 0
			for s := 0; s < in.NumStreams(); s++ {
				if users := tn.OfferStream(s); len(users) > 0 {
					offered++
				}
			}
			if offered == 0 {
				t.Fatalf("policy %q admitted nothing", tc.wantName)
			}
			if tc.feasible {
				if err := tn.Assignment().CheckFeasible(in); err != nil {
					t.Fatalf("policy %q went infeasible: %v", tc.wantName, err)
				}
			}
		})
	}

	if _, err := headend.NewPolicyByName(in, "nope"); err == nil {
		t.Fatal("unknown policy kind accepted")
	}
	for _, kind := range []string{"", "online", "threshold", "oracle", "static", "nope"} {
		if _, err := headend.NewPolicyByName(nil, kind); err == nil {
			t.Fatalf("nil instance accepted for kind %q", kind)
		}
	}
}
