package headend_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/generator"
	"repro/internal/headend"
)

// The ledger-based guarded online policy must be bit-for-bit
// indistinguishable from the retained pre-ledger implementation (trial
// Add + full CheckFeasible rescan, NewRescanOnlinePolicy): identical
// admission decisions, identical assignments, identical snapshots. These
// tests drive both implementations through the same E10-style arrival
// scenario and through a churn + make-before-break install sequence and
// require exact equality — including float64 utilities, which only match
// bitwise when the decisions and the summation orders match.

func diffCableInstance(t testing.TB, channels, gateways int, seed int64) *generator.CableTV {
	t.Helper()
	return &generator.CableTV{
		Channels: channels, Gateways: gateways, Seed: seed, EgressFraction: 0.25,
	}
}

func TestLedgerPolicyMatchesRescanE10(t *testing.T) {
	for _, seed := range []int64{110, 7, 999} {
		in, err := diffCableInstance(t, 40, 10, seed).Generate()
		if err != nil {
			t.Fatal(err)
		}
		ledgerPol, err := headend.NewOnlinePolicy(in, true)
		if err != nil {
			t.Fatal(err)
		}
		rescanPol, err := headend.NewRescanOnlinePolicy(in)
		if err != nil {
			t.Fatal(err)
		}
		sc := &headend.Scenario{Instance: in, Seed: seed}
		ledgerRes, err := sc.Run(ledgerPol, nil)
		if err != nil {
			t.Fatal(err)
		}
		rescanRes, err := sc.Run(rescanPol, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !ledgerRes.Assignment.Equal(rescanRes.Assignment) {
			t.Fatalf("seed %d: assignments diverged: %v vs %v",
				seed, ledgerRes.Assignment, rescanRes.Assignment)
		}
		if math.Float64bits(ledgerRes.Utility) != math.Float64bits(rescanRes.Utility) {
			t.Fatalf("seed %d: utility %v != reference %v", seed, ledgerRes.Utility, rescanRes.Utility)
		}
		if ledgerRes.StreamsAdmitted != rescanRes.StreamsAdmitted ||
			ledgerRes.StreamsOffered != rescanRes.StreamsOffered {
			t.Fatalf("seed %d: admission counts diverged: %d/%d vs %d/%d", seed,
				ledgerRes.StreamsAdmitted, ledgerRes.StreamsOffered,
				rescanRes.StreamsAdmitted, rescanRes.StreamsOffered)
		}
		if ledgerRes.FeasibilityErr != nil {
			t.Fatalf("seed %d: ledger policy infeasible: %v", seed, ledgerRes.FeasibilityErr)
		}
	}
}

// TestLedgerPolicyMatchesRescanChurnInstall replays an E12-shaped event
// sequence — arrivals, stream departures, gateway leaves/joins, and an
// installing re-solve mid-stream — on two tenants in lockstep and
// requires bit-identical per-step results and snapshots.
func TestLedgerPolicyMatchesRescanChurnInstall(t *testing.T) {
	in, err := diffCableInstance(t, 24, 8, 120).Generate()
	if err != nil {
		t.Fatal(err)
	}
	ledgerPol, err := headend.NewOnlinePolicy(in, true)
	if err != nil {
		t.Fatal(err)
	}
	rescanPol, err := headend.NewRescanOnlinePolicy(in)
	if err != nil {
		t.Fatal(err)
	}
	ledgerTen, err := headend.NewTenant(in, ledgerPol)
	if err != nil {
		t.Fatal(err)
	}
	rescanTen, err := headend.NewTenant(in, rescanPol)
	if err != nil {
		t.Fatal(err)
	}

	compare := func(step string) {
		t.Helper()
		ls, rs := ledgerTen.Snapshot(), rescanTen.Snapshot()
		if ls != rs {
			t.Fatalf("%s: snapshots diverged:\nledger: %+v\nrescan: %+v", step, ls, rs)
		}
		if !ledgerTen.Assignment().Equal(rescanTen.Assignment()) {
			t.Fatalf("%s: assignments diverged", step)
		}
	}

	rng := rand.New(rand.NewSource(120))
	arrivals := 0
	var carried []int
	var away []int
	for round := 0; round < 2; round++ {
		for _, s := range rng.Perm(in.NumStreams()) {
			lu := ledgerTen.OfferStream(s)
			ru := rescanTen.OfferStream(s)
			if len(lu) != len(ru) {
				t.Fatalf("offer %d: delivered %v vs %v", s, lu, ru)
			}
			for i := range lu {
				if lu[i] != ru[i] {
					t.Fatalf("offer %d: delivered %v vs %v", s, lu, ru)
				}
			}
			arrivals++
			carried = append(carried, s)
			if arrivals%3 == 0 {
				d := carried[0]
				carried = carried[1:]
				ledgerTen.DepartStream(d)
				rescanTen.DepartStream(d)
			}
			if arrivals%5 == 0 {
				if len(away) > 0 {
					u := away[0]
					away = away[1:]
					ledgerTen.UserJoin(u)
					rescanTen.UserJoin(u)
				} else {
					u := rng.Intn(in.NumUsers())
					away = append(away, u)
					ledgerTen.UserLeave(u)
					rescanTen.UserLeave(u)
				}
			}
		}
		compare("after round")
		// Mid-stream installing re-solve: both tenants rebuild their
		// policy state make-before-break around the same offline lineup.
		lOut, err := ledgerTen.Resolve(core.Options{}, true)
		if err != nil {
			t.Fatal(err)
		}
		rOut, err := rescanTen.Resolve(core.Options{}, true)
		if err != nil {
			t.Fatal(err)
		}
		if lOut != rOut {
			t.Fatalf("resolve outcomes diverged: %+v vs %+v", lOut, rOut)
		}
		compare("after install")
	}
	compare("final")
}
