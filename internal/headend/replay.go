package headend

import (
	"fmt"
	"math"

	"repro/internal/mmd"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Replay re-runs a recorded arrival/departure schedule against a
// (possibly different) admission policy — the standard way to compare
// policies on exactly the same workload: record one run with a trace
// writer, then Replay the events under each contender.
//
// Only EventStreamArrival and EventStreamDeparture drive the replay;
// recorded decisions are ignored (the new policy makes its own).
func Replay(in *mmd.Instance, events []trace.Event, policy Policy) (*Result, error) {
	if in == nil || in.M() < 1 {
		return nil, fmt.Errorf("headend: replay needs an instance with at least one budget")
	}
	if err := trace.Validate(events); err != nil {
		return nil, fmt.Errorf("headend: replay: %w", err)
	}
	engine := sim.NewEngine()
	access := make([]float64, in.NumUsers())
	for u := range in.Users {
		if len(in.Users[u].Capacities) > 0 {
			access[u] = in.Users[u].Capacities[0]
		} else {
			access[u] = math.Inf(1)
		}
	}
	net, err := netsim.NewTree(engine, in.Budgets[0], access)
	if err != nil {
		return nil, fmt.Errorf("headend: replay: %w", err)
	}
	for s := range in.Streams {
		if err := net.RegisterStream(s, in.Streams[s].Costs[0]); err != nil {
			return nil, fmt.Errorf("headend: replay: %w", err)
		}
	}

	res := &Result{Policy: policy.Name() + "-replay", Assignment: mmd.NewAssignment(in.NumUsers())}
	departer, canDepart := policy.(DeparturePolicy)
	end := 0.0
	for _, e := range events {
		e := e
		if e.Time > end {
			end = e.Time
		}
		switch e.Type {
		case trace.EventStreamArrival:
			err = engine.ScheduleAt(e.Time, func() {
				res.StreamsOffered++
				users := policy.OnStreamArrival(e.Stream)
				if len(users) == 0 {
					return
				}
				res.StreamsAdmitted++
				for _, u := range users {
					res.Assignment.Add(u, e.Stream)
					_ = net.Subscribe(u, e.Stream)
				}
			})
		case trace.EventStreamDeparture:
			err = engine.ScheduleAt(e.Time, func() {
				for u := 0; u < in.NumUsers(); u++ {
					if res.Assignment.Has(u, e.Stream) {
						res.Assignment.Remove(u, e.Stream)
						net.Unsubscribe(u, e.Stream)
					}
				}
				if canDepart {
					departer.OnStreamDeparture(e.Stream)
				}
			})
		default:
			// Decisions and churn markers in the recording are ignored.
		}
		if err != nil {
			return nil, fmt.Errorf("headend: replay: %w", err)
		}
	}

	tail := end/4 + 1
	if err := net.StartSampling(math.Max(tail/40, 1e-3), end+tail); err != nil {
		return nil, fmt.Errorf("headend: replay: %w", err)
	}
	engine.RunUntil(end + tail)

	res.Utility = res.Assignment.Utility(in)
	res.FeasibilityErr = res.Assignment.CheckFeasible(in)
	res.DeliveredMb = net.TotalDeliveredMb()
	res.OverloadSamples = net.OverloadSamples()
	res.TotalSamples = net.TotalSamples()
	res.TrunkUtilization = net.TrunkUtilization()
	res.EndTime = engine.Now()
	return res, nil
}
