package headend_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/generator"
	"repro/internal/headend"
)

// driftTenant builds a tenant, drives it through a churny event
// sequence (offers, departures, a gateway leave/join), and returns it
// in a deliberately drifted state.
func driftTenant(t *testing.T, policy string, seed int64) *headend.Tenant {
	t.Helper()
	in, err := generator.CableTV{Channels: 20, Gateways: 6, Seed: seed, EgressFraction: 0.25}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	pol, err := headend.NewPolicyByName(in, policy)
	if err != nil {
		t.Fatal(err)
	}
	tn, err := headend.NewTenant(in, pol)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i, s := range rng.Perm(in.NumStreams()) {
		tn.OfferStream(s)
		if i%3 == 2 {
			tn.DepartStream(s)
		}
	}
	tn.UserLeave(1)
	tn.UserJoin(1)
	tn.UserLeave(2) // stays away through the resolve
	return tn
}

// TestResolveMonitoringDoesNotTouchState pins the install=false
// contract: the running assignment is untouched and both values are
// reported.
func TestResolveMonitoringDoesNotTouchState(t *testing.T) {
	tn := driftTenant(t, "online", 31)
	before := tn.Assignment().Clone()
	out, err := tn.Resolve(core.Options{}, false)
	if err != nil {
		t.Fatal(err)
	}
	if out.Installed {
		t.Fatal("monitoring resolve installed")
	}
	if out.OfflineValue <= 0 {
		t.Fatalf("offline value = %v", out.OfflineValue)
	}
	if math.Abs(out.OnlineValue-before.Utility(tn.Instance())) > 1e-9 {
		t.Fatalf("online value = %v, want %v", out.OnlineValue, before.Utility(tn.Instance()))
	}
	if !tn.Assignment().Equal(before) {
		t.Fatal("monitoring resolve mutated the running assignment")
	}
	snap := tn.Snapshot()
	if snap.Resolves != 1 || snap.Installs != 0 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

// TestResolveInstall pins the install path for every installable
// policy: the offline lineup replaces the drifted one, utility does not
// drop, feasibility holds, away gateways receive nothing, and the
// rebuilt policy keeps serving consistently.
func TestResolveInstall(t *testing.T) {
	for _, policy := range []string{"online", "threshold", "oracle", "static"} {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			tn := driftTenant(t, policy, 47)
			onlineValue := tn.Assignment().Utility(tn.Instance())
			out, err := tn.Resolve(core.Options{}, true)
			if err != nil {
				t.Fatal(err)
			}
			if !out.Installed && out.OfflineValue >= out.OnlineValue {
				t.Fatalf("offline %.3f >= online %.3f but not installed", out.OfflineValue, out.OnlineValue)
			}
			got := tn.Assignment().Utility(tn.Instance())
			if got+1e-9 < onlineValue {
				t.Fatalf("post-resolve utility %.3f < online %.3f", got, onlineValue)
			}
			if err := tn.Assignment().CheckFeasible(tn.Instance()); err != nil {
				t.Fatalf("installed assignment infeasible: %v", err)
			}
			if out.Installed {
				if math.Abs(got-out.OfflineValue) > 1e-6 {
					t.Fatalf("installed utility %.6f != offline value %.6f", got, out.OfflineValue)
				}
				if streams := tn.Assignment().UserStreams(2); len(streams) != 0 {
					t.Fatalf("away gateway serves %v after install", streams)
				}
				// Carried set must mirror the installed assignment.
				for _, s := range tn.Assignment().Range() {
					if !tn.Carries(s) {
						t.Fatalf("installed stream %d not marked carried", s)
					}
				}
				if snap := tn.Snapshot(); snap.Installs != 1 {
					t.Fatalf("snapshot installs = %d", snap.Installs)
				}
			}
			// The tenant keeps serving on the rebuilt policy state:
			// further offers and churn must preserve feasibility.
			for s := 0; s < tn.Instance().NumStreams(); s++ {
				tn.OfferStream(s)
			}
			tn.UserJoin(2)
			tn.UserLeave(0)
			if err := tn.Assignment().CheckFeasible(tn.Instance()); err != nil {
				t.Fatalf("post-install serving infeasible: %v", err)
			}
		})
	}
}

// nonInstallablePolicy admits nothing and cannot rebuild its state.
type nonInstallablePolicy struct{}

func (nonInstallablePolicy) Name() string                { return "test-static-state" }
func (nonInstallablePolicy) OnStreamArrival(s int) []int { return nil }

// TestResolveInstallRequiresReinstallablePolicy pins the error path: a
// policy without Reinstall refuses the install and leaves state alone.
func TestResolveInstallRequiresReinstallablePolicy(t *testing.T) {
	in, err := generator.CableTV{Channels: 10, Gateways: 4, Seed: 52}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	tn, err := headend.NewTenant(in, nonInstallablePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	before := tn.Assignment().Clone()
	if _, err := tn.Resolve(core.Options{}, true); err == nil {
		t.Fatal("install accepted on a policy without Reinstall")
	}
	if !tn.Assignment().Equal(before) {
		t.Fatal("failed install mutated the running assignment")
	}
}
