package headend

// Gateway churn: users (neighborhood gateways) leave and rejoin. A
// leaving gateway tears down its subscriptions and frees its capacity;
// while away it must not be assigned new streams; on rejoin it becomes
// eligible again (it does not automatically recover old streams — a
// gateway rebooting into the current lineup).

// UserChurnPolicy is implemented by policies that track gateway churn.
type UserChurnPolicy interface {
	Policy
	// OnUserLeave releases everything user u holds and stops assigning
	// to it.
	OnUserLeave(u int)
	// OnUserJoin makes user u eligible again.
	OnUserJoin(u int)
}

// OnUserLeave implements UserChurnPolicy for the online policy: the
// allocator releases the user's resources, and the user's utility row
// in the normalized instance is zeroed so Offer never selects it while
// away (the allocator reads utilities live).
func (p *OnlinePolicy) OnUserLeave(u int) {
	if u < 0 || u >= p.in.NumUsers() {
		return
	}
	if p.savedUtility == nil {
		p.savedUtility = make(map[int][]float64)
	}
	if _, away := p.savedUtility[u]; away {
		return
	}
	row := p.norm.Instance.Users[u].Utility
	p.savedUtility[u] = append([]float64(nil), row...)
	for s := range row {
		row[s] = 0
	}
	_, _ = p.allocator.ReleaseUser(u)
	for _, s := range p.assn.UserStreams(u) {
		p.assn.Remove(u, s)
		if p.ledger != nil {
			p.ledger.Remove(u, s)
		}
	}
}

// OnUserJoin implements UserChurnPolicy for the online policy.
func (p *OnlinePolicy) OnUserJoin(u int) {
	saved, away := p.savedUtility[u]
	if !away {
		return
	}
	copy(p.norm.Instance.Users[u].Utility, saved)
	delete(p.savedUtility, u)
}

// OnUserLeave implements UserChurnPolicy for the threshold policy.
func (p *ThresholdPolicy) OnUserLeave(u int) {
	if u < 0 || u >= p.in.NumUsers() {
		return
	}
	if p.away == nil {
		p.away = make(map[int]bool)
	}
	if p.away[u] {
		return
	}
	p.away[u] = true
	for _, s := range p.assn.UserStreams(u) {
		p.assn.Remove(u, s)
		if !p.assn.InRange(s) {
			// Last holder gone: the stream leaves the server lineup.
			for i, c := range p.in.Streams[s].Costs {
				p.serverCost[i] -= c
				if p.serverCost[i] < 0 {
					p.serverCost[i] = 0
				}
			}
		}
	}
	for j := range p.userLoad[u] {
		p.userLoad[u][j] = 0
	}
}

// OnUserJoin implements UserChurnPolicy for the threshold policy.
func (p *ThresholdPolicy) OnUserJoin(u int) {
	delete(p.away, u)
}
