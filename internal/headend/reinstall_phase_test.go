package headend_test

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/generator"
	"repro/internal/headend"
)

// TestReinstallRestartsExponentialPhase pins the PR 2 nuance documented
// on ReinstallablePolicy: on Resolve(Install: true) the online policy's
// allocator restarts its exponential-cost phase from the installed load
// — a fresh competitive phase, as if the installed lineup had been the
// initial state — rather than replaying the arrival history that
// preceded the install.
//
// Restart semantics means the post-install state is a pure function of
// (instance, installed assignment): a tenant that saw a long, churny
// arrival history and then installed must behave identically to a
// tenant that installed the same lineup with no history at all. The
// replay alternative (re-offering the historical arrivals into a fresh
// allocator) produces a different state, which the third tenant below
// demonstrates — so the equality in part one is not vacuous.
func TestReinstallRestartsExponentialPhase(t *testing.T) {
	in, err := generator.CableTV{Channels: 40, Gateways: 10, Seed: 83, EgressFraction: 0.2}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	newTenant := func() *headend.Tenant {
		t.Helper()
		pol, err := headend.NewOnlinePolicy(in, true)
		if err != nil {
			t.Fatal(err)
		}
		tn, err := headend.NewTenant(in, pol)
		if err != nil {
			t.Fatal(err)
		}
		return tn
	}
	// The pre-install history: two thirds of the catalog, every third
	// offer departed again.
	history := func(tn *headend.Tenant) {
		for s := 0; s < 2*in.NumStreams()/3; s++ {
			tn.OfferStream(s)
			if s%3 == 2 {
				tn.DepartStream(s)
			}
		}
	}
	futures := func(tn *headend.Tenant) [][]int {
		var out [][]int
		for s := 0; s < in.NumStreams(); s++ {
			out = append(out, append([]int(nil), tn.OfferStream(s)...))
		}
		return out
	}

	// Tenant A: history, then an installing re-solve.
	a := newTenant()
	history(a)
	outA, err := a.Resolve(core.Options{}, true)
	if err != nil {
		t.Fatal(err)
	}
	if !outA.Installed {
		t.Fatalf("install skipped (offline %.3f < online %.3f); pick a churnier history",
			outA.OfflineValue, outA.OnlineValue)
	}

	// Tenant B: no history at all, same installing re-solve. With no
	// away gateways the offline pipeline is a pure function of the
	// instance, so both tenants install the identical lineup.
	b := newTenant()
	outB, err := b.Resolve(core.Options{}, true)
	if err != nil {
		t.Fatal(err)
	}
	if !outB.Installed {
		t.Fatalf("fresh install skipped: %+v", outB)
	}
	if outA.OfflineValue != outB.OfflineValue {
		t.Fatalf("offline values differ: %v vs %v", outA.OfflineValue, outB.OfflineValue)
	}
	if !a.Assignment().Equal(b.Assignment()) {
		t.Fatal("installed assignments differ")
	}

	// Part one — restart: the histories were different (A churned, B
	// did nothing) yet every post-install decision must be identical.
	futA, futB := futures(a), futures(b)
	if !reflect.DeepEqual(futA, futB) {
		for s := range futA {
			if !reflect.DeepEqual(futA[s], futB[s]) {
				t.Fatalf("post-install decisions diverge at stream %d: %v vs %v — the "+
					"allocator phase depends on pre-install history", s, futA[s], futB[s])
			}
		}
	}

	// Part two — not replay: a tenant that merely replayed A's history
	// (no install) is in a genuinely different state, so the equality
	// above is a real constraint, not a fixed point of this workload.
	c := newTenant()
	history(c)
	futC := futures(c)
	if reflect.DeepEqual(futC, futB) {
		t.Fatal("replayed-history tenant matches the installed tenant everywhere; " +
			"the workload cannot distinguish restart from replay — tighten it")
	}
}

// TestScaledAdmissionAdmitsMore pins the point of the shared-origin
// discount: on a budget-contended instance the guarded online policy
// admits strictly more (user, stream) pairs when arrivals are priced at
// the replication fraction than at full price, and the tenant snapshot
// prices feasibility at the recorded charge scales (the origin work
// happens at another head-end).
func TestScaledAdmissionAdmitsMore(t *testing.T) {
	in, err := generator.CableTV{Channels: 60, Gateways: 15, Seed: 91, EgressFraction: 0.03}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	sweep := func(scale float64) headend.TenantSnapshot {
		t.Helper()
		pol, err := headend.NewOnlinePolicy(in, true)
		if err != nil {
			t.Fatal(err)
		}
		tn, err := headend.NewTenant(in, pol)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < in.NumStreams(); s++ {
			tn.OfferStreamScaled(s, scale)
		}
		return tn.Snapshot()
	}
	iso, shared := sweep(1), sweep(0.25)
	if shared.Pairs < iso.Pairs || shared.Utility < iso.Utility {
		t.Fatalf("discount lost ground: shared %d pairs / %.3f vs isolated %d pairs / %.3f",
			shared.Pairs, shared.Utility, iso.Pairs, iso.Utility)
	}
	if shared.Pairs == iso.Pairs {
		t.Fatalf("discount changed nothing (%d pairs both ways); the instance is not contended", shared.Pairs)
	}
	if !iso.Feasible || !shared.Feasible {
		t.Fatalf("feasibility: isolated %v, shared %v (shared must be priced at its charge scales)",
			iso.Feasible, shared.Feasible)
	}
}
