package headend_test

import (
	"bytes"
	"testing"

	"repro/internal/headend"
	"repro/internal/trace"
)

func TestUserChurnOnlinePolicy(t *testing.T) {
	in, err := cableInstance(t, 51).Generate()
	if err != nil {
		t.Fatal(err)
	}
	pol, err := headend.NewOnlinePolicy(in, true)
	if err != nil {
		t.Fatal(err)
	}
	sc := &headend.ChurnScenario{
		Instance: in, Seed: 52, Rounds: 3,
		MeanSessionTime: 8, MeanAwayTime: 3,
	}
	res, err := sc.Run(pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.UserLeaves == 0 || res.UserJoins == 0 {
		t.Fatalf("no gateway churn happened: leaves %d joins %d", res.UserLeaves, res.UserJoins)
	}
	if res.OverloadSamples != 0 {
		t.Fatalf("plant overloaded %d times under gateway churn", res.OverloadSamples)
	}
	if res.UtilitySeconds <= 0 {
		t.Fatal("no utility accrued")
	}
}

func TestUserChurnThresholdPolicy(t *testing.T) {
	in, err := cableInstance(t, 53).Generate()
	if err != nil {
		t.Fatal(err)
	}
	pol, err := headend.NewThresholdPolicy(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	sc := &headend.ChurnScenario{
		Instance: in, Seed: 54, Rounds: 3,
		MeanSessionTime: 6, MeanAwayTime: 2,
	}
	res, err := sc.Run(pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.OverloadSamples != 0 {
		t.Fatalf("plant overloaded %d times", res.OverloadSamples)
	}
	if res.UserLeaves == 0 {
		t.Fatal("no gateway left")
	}
}

func TestUserChurnTraceEvents(t *testing.T) {
	in, err := cableInstance(t, 55).Generate()
	if err != nil {
		t.Fatal(err)
	}
	pol, err := headend.NewOnlinePolicy(in, true)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tw := trace.NewWriter(&buf)
	sc := &headend.ChurnScenario{
		Instance: in, Seed: 56, MeanSessionTime: 5, MeanAwayTime: 2,
	}
	if _, err := sc.Run(pol, tw); err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := trace.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Validate(events); err != nil {
		t.Fatal(err)
	}
	leaves, joins := 0, 0
	for _, e := range events {
		switch e.Type {
		case trace.EventUserLeave:
			leaves++
		case trace.EventUserJoin:
			joins++
		}
	}
	if leaves == 0 || joins == 0 {
		t.Fatalf("churn events missing from trace: %d leaves, %d joins", leaves, joins)
	}
}

// TestUserChurnIdempotentCallbacks: double leave/join notifications must
// not corrupt policy state.
func TestUserChurnIdempotentCallbacks(t *testing.T) {
	in, err := cableInstance(t, 57).Generate()
	if err != nil {
		t.Fatal(err)
	}
	onl, err := headend.NewOnlinePolicy(in, true)
	if err != nil {
		t.Fatal(err)
	}
	onl.OnStreamArrival(0)
	onl.OnUserLeave(0)
	onl.OnUserLeave(0) // double leave
	onl.OnUserJoin(0)
	onl.OnUserJoin(0) // double join
	users := onl.OnStreamArrival(1)
	_ = users
	if err := onl.Assignment().CheckFeasible(in); err != nil {
		t.Fatal(err)
	}

	thr, err := headend.NewThresholdPolicy(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	thr.OnStreamArrival(0)
	thr.OnUserLeave(2)
	thr.OnUserLeave(2)
	thr.OnUserJoin(2)
	thr.OnUserJoin(2)
	thr.OnStreamArrival(1)
	if err := thr.Assignment().CheckFeasible(in); err != nil {
		t.Fatal(err)
	}
}

// TestAwayUserReceivesNothing: while a gateway is away the online policy
// must not assign to it.
func TestAwayUserReceivesNothing(t *testing.T) {
	in, err := cableInstance(t, 58).Generate()
	if err != nil {
		t.Fatal(err)
	}
	pol, err := headend.NewOnlinePolicy(in, true)
	if err != nil {
		t.Fatal(err)
	}
	pol.OnUserLeave(0)
	for s := 0; s < in.NumStreams(); s++ {
		for _, u := range pol.OnStreamArrival(s) {
			if u == 0 {
				t.Fatalf("away gateway 0 was assigned stream %d", s)
			}
		}
	}
	pol.OnUserJoin(0)
	assigned := false
	for s := 0; s < in.NumStreams(); s++ {
		for _, u := range pol.OnStreamArrival(s) {
			if u == 0 {
				assigned = true
			}
		}
	}
	_ = assigned // rejoining restores eligibility; assignment depends on load
}
