package headend_test

import (
	"testing"

	"repro/internal/benchkit"
)

// BenchmarkGuardedAdmission compares the two guard implementations on a
// CableTV-sized instance (120 channels × 40 gateways, 3 budgets, 2
// capacities per gateway): "rescan" is the retained pre-ledger
// reference — trial Add + full CheckFeasible per candidate — and
// "ledger" is the O(measures) LoadLedger delta query. Both sweeps admit
// bit-identically (differential tests); the ratio is the serving-path
// win. Bodies live in internal/benchkit so `mmdbench -json` snapshots
// the same numbers into BENCH_serving.json.
func BenchmarkGuardedAdmission(b *testing.B) {
	b.Run("rescan", benchkit.GuardedAdmissionRescan)
	b.Run("ledger", benchkit.GuardedAdmissionLedger)
}

// BenchmarkOnlinePolicySweep is the end-to-end variant: the full
// guarded online policy (Section 5 allocator + guard) offered the whole
// catalog, with only the guard implementation differing.
func BenchmarkOnlinePolicySweep(b *testing.B) {
	b.Run("rescan", func(b *testing.B) { benchkit.OnlinePolicySweep(b, false) })
	b.Run("ledger", func(b *testing.B) { benchkit.OnlinePolicySweep(b, true) })
}
