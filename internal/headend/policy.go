// Package headend ties the pieces into the system of Fig. 1: a cable
// head-end with a stream catalog, neighborhood gateways, an admission
// policy (the paper's algorithms or the deployed-world threshold
// baseline), and the simulated multicast plant underneath. Streams
// arrive over virtual time; the policy decides, subscriptions are
// installed in the network, and delivery is accounted.
package headend

import (
	"fmt"
	"math"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/mmd"
	"repro/internal/online"
)

// Policy decides, at stream-arrival time, which users receive the
// stream. Implementations may keep state; they are driven from the
// single simulation thread.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// OnStreamArrival returns the users that should receive stream s
	// (empty or nil when the stream is rejected).
	OnStreamArrival(s int) []int
}

// ReinstallablePolicy is implemented by policies that can rebuild their
// internal state around an externally installed assignment — the
// make-before-break half of Tenant.Resolve with install. Reinstall must
// leave the policy untouched when it returns an error, and afterwards
// the policy's view of live load must match assn (so future arrival
// decisions price the installed lineup correctly).
type ReinstallablePolicy interface {
	Policy
	// Reinstall rebuilds the policy state around assn. The policy must
	// not retain assn; it clones what it keeps.
	Reinstall(assn *mmd.Assignment) error
}

// OnlinePolicy drives the Section 5 Allocate algorithm. When Guarded,
// any assignment that would violate a true budget or capacity is
// filtered before commitment — the physical-world backstop for
// instances that do not satisfy the small-streams hypothesis (a policy
// server would never oversubscribe the plant).
type OnlinePolicy struct {
	in        *mmd.Instance
	norm      *online.Normalization
	allocator *online.Allocator
	guarded   bool
	assn      *mmd.Assignment
	// savedUtility keeps the zeroed utility rows of away users (gateway
	// churn, see UserChurnPolicy).
	savedUtility map[int][]float64
}

var _ Policy = (*OnlinePolicy)(nil)

// NewOnlinePolicy builds the policy for the instance. guarded should be
// true unless the instance satisfies online.CheckSmallStreams.
func NewOnlinePolicy(in *mmd.Instance, guarded bool) (*OnlinePolicy, error) {
	norm, err := online.Normalize(in)
	if err != nil {
		return nil, fmt.Errorf("headend: online policy: %w", err)
	}
	al, err := online.NewAllocator(norm.Instance, norm.Mu())
	if err != nil {
		return nil, fmt.Errorf("headend: online policy: %w", err)
	}
	return &OnlinePolicy{
		in:        in,
		norm:      norm,
		allocator: al,
		guarded:   guarded,
		assn:      mmd.NewAssignment(in.NumUsers()),
	}, nil
}

// Name implements Policy.
func (p *OnlinePolicy) Name() string {
	if p.guarded {
		return "online-allocate-guarded"
	}
	return "online-allocate"
}

// OnStreamArrival implements Policy.
func (p *OnlinePolicy) OnStreamArrival(s int) []int {
	users := p.allocator.Offer(s)
	if !p.guarded {
		for _, u := range users {
			p.assn.Add(u, s)
		}
		return users
	}
	// Guarded mode: admit users one by one, dropping any that would
	// break a true constraint.
	var kept []int
	for _, u := range users {
		p.assn.Add(u, s)
		if p.assn.CheckFeasible(p.in) != nil {
			p.assn.Remove(u, s)
			continue
		}
		kept = append(kept, u)
	}
	return kept
}

// Assignment returns the running assignment.
func (p *OnlinePolicy) Assignment() *mmd.Assignment { return p.assn }

// Normalization exposes mu and the competitive bound for reports.
func (p *OnlinePolicy) Normalization() *online.Normalization { return p.norm }

// Reinstall implements ReinstallablePolicy: a fresh allocator is built
// over the same normalized instance (away users keep their zeroed
// utility rows) and charged with the installed assignment, so the
// exponential costs restart from the installed load rather than the
// accumulated online history. Only after the new allocator is ready is
// the policy state swapped.
func (p *OnlinePolicy) Reinstall(assn *mmd.Assignment) error {
	al, err := online.NewAllocator(p.norm.Instance, p.norm.Mu())
	if err != nil {
		return fmt.Errorf("headend: online reinstall: %w", err)
	}
	al.Install(assn)
	p.allocator = al
	p.assn = assn.Clone()
	return nil
}

// ThresholdPolicy is the deployed-world baseline: admit a stream while
// every budget stays under margin*B_i, deliver to every interested user
// with headroom, utilities ignored.
type ThresholdPolicy struct {
	in         *mmd.Instance
	margin     float64
	serverCost []float64
	userLoad   [][]float64
	assn       *mmd.Assignment
	// away marks gateways currently offline (see UserChurnPolicy).
	away map[int]bool
}

var _ Policy = (*ThresholdPolicy)(nil)

// NewThresholdPolicy builds the baseline with the given safety margin in
// (0, 1].
func NewThresholdPolicy(in *mmd.Instance, margin float64) (*ThresholdPolicy, error) {
	if margin <= 0 || margin > 1 {
		return nil, fmt.Errorf("headend: threshold margin must be in (0, 1]; got %v", margin)
	}
	p := &ThresholdPolicy{
		in:         in,
		margin:     margin,
		serverCost: make([]float64, in.M()),
		userLoad:   make([][]float64, in.NumUsers()),
		assn:       mmd.NewAssignment(in.NumUsers()),
	}
	for u := range p.userLoad {
		p.userLoad[u] = make([]float64, len(in.Users[u].Capacities))
	}
	return p, nil
}

// Name implements Policy.
func (p *ThresholdPolicy) Name() string { return "threshold" }

// OnStreamArrival implements Policy.
func (p *ThresholdPolicy) OnStreamArrival(s int) []int {
	for i, c := range p.in.Streams[s].Costs {
		if p.serverCost[i]+c > p.margin*p.in.Budgets[i]+1e-12 {
			return nil
		}
	}
	var kept []int
	for u := range p.in.Users {
		usr := &p.in.Users[u]
		if usr.Utility[s] <= 0 || p.away[u] {
			continue
		}
		fits := true
		for j := range usr.Capacities {
			if p.userLoad[u][j]+usr.Loads[j][s] > p.margin*usr.Capacities[j]+1e-12 {
				fits = false
				break
			}
		}
		if !fits {
			continue
		}
		for j := range usr.Capacities {
			p.userLoad[u][j] += usr.Loads[j][s]
		}
		p.assn.Add(u, s)
		kept = append(kept, u)
	}
	if len(kept) > 0 {
		for i, c := range p.in.Streams[s].Costs {
			p.serverCost[i] += c
		}
	}
	return kept
}

// Assignment returns the running assignment.
func (p *ThresholdPolicy) Assignment() *mmd.Assignment { return p.assn }

// Reinstall implements ReinstallablePolicy: server costs and per-user
// loads are recomputed from scratch for the installed assignment, then
// swapped in together with a clone of it. Away gateways stay away.
func (p *ThresholdPolicy) Reinstall(assn *mmd.Assignment) error {
	serverCost := make([]float64, p.in.M())
	userLoad := make([][]float64, p.in.NumUsers())
	for u := range userLoad {
		userLoad[u] = make([]float64, len(p.in.Users[u].Capacities))
	}
	for _, s := range assn.Range() {
		if s < 0 || s >= p.in.NumStreams() {
			return fmt.Errorf("headend: threshold reinstall: stream %d out of range", s)
		}
		for i, c := range p.in.Streams[s].Costs {
			serverCost[i] += c
		}
		for u := 0; u < assn.NumUsers() && u < p.in.NumUsers(); u++ {
			if !assn.Has(u, s) {
				continue
			}
			for j := range p.in.Users[u].Capacities {
				userLoad[u][j] += p.in.Users[u].Loads[j][s]
			}
		}
	}
	p.assn = assn.Clone()
	p.serverCost = serverCost
	p.userLoad = userLoad
	return nil
}

// OraclePolicy solves the whole instance offline with the Theorem 1.1
// pipeline and reveals the precomputed assignment as streams arrive —
// the natural upper reference for online policies.
type OraclePolicy struct {
	name string
	assn *mmd.Assignment
}

var _ Policy = (*OraclePolicy)(nil)

// NewOraclePolicy precomputes the offline solution.
func NewOraclePolicy(in *mmd.Instance, opts core.Options) (*OraclePolicy, error) {
	a, _, err := core.Solve(in, opts)
	if err != nil {
		return nil, fmt.Errorf("headend: oracle policy: %w", err)
	}
	return &OraclePolicy{name: "offline-oracle", assn: a}, nil
}

// Name implements Policy.
func (p *OraclePolicy) Name() string { return p.name }

// OnStreamArrival implements Policy.
func (p *OraclePolicy) OnStreamArrival(s int) []int {
	var users []int
	for u := 0; u < p.assn.NumUsers(); u++ {
		if p.assn.Has(u, s) {
			users = append(users, u)
		}
	}
	return users
}

// Assignment returns the precomputed assignment.
func (p *OraclePolicy) Assignment() *mmd.Assignment { return p.assn }

// Reinstall implements ReinstallablePolicy: the oracle reveals the
// installed assignment for future arrivals instead of its original
// offline precomputation.
func (p *OraclePolicy) Reinstall(assn *mmd.Assignment) error {
	p.assn = assn.Clone()
	return nil
}

// StaticGreedyPolicy replays the utility-blind static-density baseline
// as an arrival policy (it pre-ranks using full knowledge, making it a
// strong-ish baseline despite ignoring residual utilities).
type StaticGreedyPolicy struct {
	assn *mmd.Assignment
}

var _ Policy = (*StaticGreedyPolicy)(nil)

// NewStaticGreedyPolicy precomputes the static-greedy assignment.
func NewStaticGreedyPolicy(in *mmd.Instance) (*StaticGreedyPolicy, error) {
	a, err := baseline.StaticGreedy(in)
	if err != nil {
		return nil, fmt.Errorf("headend: static greedy policy: %w", err)
	}
	return &StaticGreedyPolicy{assn: a}, nil
}

// Name implements Policy.
func (p *StaticGreedyPolicy) Name() string { return "static-greedy" }

// Reinstall implements ReinstallablePolicy (see OraclePolicy.Reinstall).
func (p *StaticGreedyPolicy) Reinstall(assn *mmd.Assignment) error {
	p.assn = assn.Clone()
	return nil
}

// OnStreamArrival implements Policy.
func (p *StaticGreedyPolicy) OnStreamArrival(s int) []int {
	var users []int
	for u := 0; u < p.assn.NumUsers(); u++ {
		if p.assn.Has(u, s) {
			users = append(users, u)
		}
	}
	return users
}

// NewPolicyByName builds a named admission policy for an instance:
// "online" (guarded Section 5 Allocate, the default for an empty
// name), "online-unguarded", "threshold" (margin 1), "oracle"
// (offline Theorem 1.1), or "static" (static-density greedy). It is
// the single name-to-policy factory shared by cmd/vodsim, the
// cluster, and the public API.
func NewPolicyByName(in *mmd.Instance, name string) (Policy, error) {
	if in == nil {
		return nil, fmt.Errorf("headend: policy %q: nil instance", name)
	}
	switch name {
	case "", "online":
		return NewOnlinePolicy(in, true)
	case "online-unguarded":
		return NewOnlinePolicy(in, false)
	case "threshold":
		return NewThresholdPolicy(in, 1)
	case "oracle":
		return NewOraclePolicy(in, core.Options{})
	case "static":
		return NewStaticGreedyPolicy(in)
	default:
		return nil, fmt.Errorf("headend: unknown policy %q", name)
	}
}

// utilityOf sums the instance utility of delivering stream s to users.
func utilityOf(in *mmd.Instance, s int, users []int) float64 {
	total := 0.0
	for _, u := range users {
		total += in.Users[u].Utility[s]
	}
	if math.IsNaN(total) {
		return 0
	}
	return total
}
