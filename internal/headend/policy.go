// Package headend ties the pieces into the system of Fig. 1: a cable
// head-end with a stream catalog, neighborhood gateways, an admission
// policy (the paper's algorithms or the deployed-world threshold
// baseline), and the simulated multicast plant underneath. Streams
// arrive over virtual time; the policy decides, subscriptions are
// installed in the network, and delivery is accounted. Tenant is the
// event-facing step core the sharded cluster (internal/cluster)
// drives; see ARCHITECTURE.md at the repo root for the layer map.
package headend

import (
	"fmt"
	"math"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/mmd"
	"repro/internal/online"
)

// Policy decides, at stream-arrival time, which users receive the
// stream. Implementations may keep state; they are driven from the
// single simulation thread.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// OnStreamArrival returns the users that should receive stream s
	// (empty or nil when the stream is rejected). The returned slice
	// may alias policy-internal state (reveal policies serve from
	// precomputed delivery lists); callers must not mutate it.
	OnStreamArrival(s int) []int
}

// ReinstallablePolicy is implemented by policies that can rebuild their
// internal state around an externally installed assignment — the
// make-before-break half of Tenant.Resolve with install. Reinstall must
// leave the policy untouched when it returns an error, and afterwards
// the policy's view of live load must match assn (so future arrival
// decisions price the installed lineup correctly).
//
// Reinstall restarts, not replays: the rebuilt state reflects only the
// installed assignment, never the arrival history that preceded it. For
// the online policy this means the allocator's exponential-cost phase
// begins afresh from the installed load — a fresh competitive phase, as
// if the installed lineup had been the initial state — rather than
// re-running the offers that were seen before the install
// (TestReinstallRestartsExponentialPhase pins this down).
type ReinstallablePolicy interface {
	Policy
	// Reinstall rebuilds the policy state around assn. The policy must
	// not retain assn; it clones what it keeps.
	Reinstall(assn *mmd.Assignment) error
}

// ScaledAdmissionPolicy is implemented by policies whose admission
// guard can price an arrival's server-cost delta at a fraction of the
// catalog cost — the hook the fleet catalog (internal/catalog via
// Tenant.OfferStreamScaled) uses for the SharedOrigin cost model: a
// tenant admitting a stream whose origin another tenant already pays
// charges only the multicast-replication fraction against its own
// budgets. serverCostScale 1 must decide bit-identically to
// OnStreamArrival. Policies that do not implement it admit at full
// price; the discount then affects only the catalog's accounting.
type ScaledAdmissionPolicy interface {
	Policy
	// OnStreamArrivalScaled is OnStreamArrival with the guard's
	// server-cost delta scaled by serverCostScale.
	OnStreamArrivalScaled(s int, serverCostScale float64) []int
}

// OnlinePolicy drives the Section 5 Allocate algorithm. When Guarded,
// any assignment that would violate a true budget or capacity is
// filtered before commitment — the physical-world backstop for
// instances that do not satisfy the small-streams hypothesis (a policy
// server would never oversubscribe the plant). The guard is answered by
// an incremental mmd.LoadLedger in O(measures) per candidate; the
// full-rescan CheckFeasible it replaced survives as the reference the
// differential tests compare against.
type OnlinePolicy struct {
	in        *mmd.Instance
	norm      *online.Normalization
	allocator *online.Allocator
	guarded   bool
	assn      *mmd.Assignment
	// ledger mirrors assn (guarded mode only; nil otherwise) so guarded
	// admission is a delta query instead of a fleet rescan.
	ledger *mmd.LoadLedger
	// scale records the server-cost charge scale of streams admitted at
	// a discount by the rescan reference guard (ledger == nil; the
	// ledger path records its own scales). Absent streams were charged
	// full price. It keeps the reference guard's scaled rescans
	// comparable to LoadLedger.FitsDeltaScaled, so differential tests
	// can compare the two paths under SharedOrigin, not just Isolated.
	scale map[int]float64
	// kept is the guarded-admission scratch buffer, reused across
	// arrivals: the caller (Tenant.OfferStreamScaled) filters the
	// returned users into its own slice before storing, so the policy
	// never needs a fresh allocation per admission.
	kept []int
	// savedUtility keeps the zeroed utility rows of away users (gateway
	// churn, see UserChurnPolicy).
	savedUtility map[int][]float64
}

var (
	_ Policy                = (*OnlinePolicy)(nil)
	_ ScaledAdmissionPolicy = (*OnlinePolicy)(nil)
	_ ReinstallablePolicy   = (*OnlinePolicy)(nil)
)

// NewOnlinePolicy builds the policy for the instance. guarded should be
// true unless the instance satisfies online.CheckSmallStreams.
func NewOnlinePolicy(in *mmd.Instance, guarded bool) (*OnlinePolicy, error) {
	return newOnlinePolicy(in, guarded, guarded)
}

// NewRescanOnlinePolicy builds the guarded online policy with the
// retained pre-ledger guard: every candidate is trial-added and the
// whole fleet state is re-verified with Assignment.CheckFeasibleScaled
// (full price under Isolated; recorded charge scales under a shared
// catalog, mirroring the ledger's accounting). It is kept (not deleted)
// as the reference implementation the differential determinism tests
// and BenchmarkGuardedAdmission compare the ledger path against —
// under both the Isolated and SharedOrigin cost models; production
// callers should use NewOnlinePolicy.
func NewRescanOnlinePolicy(in *mmd.Instance) (*OnlinePolicy, error) {
	return newOnlinePolicy(in, true, false)
}

// newOnlinePolicy is the shared constructor; withLedger selects the
// incremental guard (guarded mode only), and a guarded policy without a
// ledger runs the reference full-rescan guard.
func newOnlinePolicy(in *mmd.Instance, guarded, withLedger bool) (*OnlinePolicy, error) {
	norm, err := online.Normalize(in)
	if err != nil {
		return nil, fmt.Errorf("headend: online policy: %w", err)
	}
	al, err := online.NewAllocator(norm.Instance, norm.Mu())
	if err != nil {
		return nil, fmt.Errorf("headend: online policy: %w", err)
	}
	p := &OnlinePolicy{
		in:        in,
		norm:      norm,
		allocator: al,
		guarded:   guarded,
		assn:      mmd.NewAssignment(in.NumUsers()),
	}
	if guarded && withLedger {
		p.ledger = mmd.NewLoadLedger(in)
	}
	return p, nil
}

// Name implements Policy.
func (p *OnlinePolicy) Name() string {
	if p.guarded {
		return "online-allocate-guarded"
	}
	return "online-allocate"
}

// OnStreamArrival implements Policy.
func (p *OnlinePolicy) OnStreamArrival(s int) []int {
	return p.OnStreamArrivalScaled(s, 1)
}

// OnStreamArrivalScaled implements ScaledAdmissionPolicy: the guard's
// server-cost delta is priced at serverCostScale (the shared-catalog
// discount; see mmd.LoadLedger.AddScaled). The allocator's competitive
// pricing is unchanged — the discount is a physical-plant fact (the
// origin is already transcoded elsewhere), not a utility signal — only
// the feasibility backstop prices the cheaper delta. Scale 1 is
// bit-identical to the PR 3 path. The retained rescan reference
// (NewRescanOnlinePolicy) guards the same way at scale: each trial
// rescan prices every carried stream at its recorded charge scale and
// the candidate at serverCostScale (Assignment.CheckFeasibleScaled), so
// the differential tests compare the two guards under SharedOrigin as
// well as Isolated.
func (p *OnlinePolicy) OnStreamArrivalScaled(s int, serverCostScale float64) []int {
	users := p.allocator.Offer(s)
	if !p.guarded {
		for _, u := range users {
			p.assn.Add(u, s)
		}
		return users
	}
	if p.ledger == nil {
		// Reference path (NewRescanOnlinePolicy): trial-add each
		// candidate and rescan the whole fleet state. With no discounts
		// anywhere the walk is exactly the pre-catalog CheckFeasible.
		var scaleOf func(int) float64
		if serverCostScale != 1 || len(p.scale) > 0 {
			scaleOf = func(stream int) float64 {
				if stream == s {
					return serverCostScale
				}
				if sc, ok := p.scale[stream]; ok {
					return sc
				}
				return 1
			}
		}
		kept := p.kept[:0]
		for _, u := range users {
			p.assn.Add(u, s)
			if p.assn.CheckFeasibleScaled(p.in, scaleOf) != nil {
				p.assn.Remove(u, s)
				continue
			}
			kept = append(kept, u)
		}
		p.kept = kept
		if len(kept) > 0 && serverCostScale != 1 {
			if p.scale == nil {
				p.scale = make(map[int]float64)
			}
			p.scale[s] = serverCostScale
		}
		return kept
	}
	// Guarded mode: admit users one by one, dropping any that would
	// break a true constraint. The running assignment is always
	// feasible (it starts empty, admissions are guarded, and removals
	// only shed load), so the ledger's O(measures) delta query decides
	// the same question a full CheckFeasible rescan after a trial Add
	// would — up to float accumulation order (the ledger sums in event
	// order, the rescan in stream order; see the LoadLedger doc). The
	// differential tests pin the two paths to identical decisions on
	// the E10/E12 workloads.
	kept := p.kept[:0]
	for _, u := range users {
		if !p.ledger.FitsDeltaScaled(u, s, serverCostScale) {
			continue
		}
		p.ledger.AddScaled(u, s, serverCostScale)
		p.assn.Add(u, s)
		kept = append(kept, u)
	}
	p.kept = kept
	return kept
}

// Assignment returns the running assignment.
func (p *OnlinePolicy) Assignment() *mmd.Assignment { return p.assn }

// Normalization exposes mu and the competitive bound for reports.
func (p *OnlinePolicy) Normalization() *online.Normalization { return p.norm }

// Reinstall implements ReinstallablePolicy: a fresh allocator is built
// over the same normalized instance (away users keep their zeroed
// utility rows) and charged with the installed assignment, so the
// exponential costs restart from the installed load rather than the
// accumulated online history. Only after the new allocator is ready is
// the policy state swapped; the guard ledger is rebuilt from the
// installed assignment in the same step.
func (p *OnlinePolicy) Reinstall(assn *mmd.Assignment) error {
	al, err := online.NewAllocator(p.norm.Instance, p.norm.Mu())
	if err != nil {
		return fmt.Errorf("headend: online reinstall: %w", err)
	}
	al.Install(assn)
	p.allocator = al
	// Streams the new lineup retains keep the charge scale they were
	// admitted at: their shared-catalog origin is still paid for
	// elsewhere, so re-pricing them at full cost would overstate the
	// budget draw and desynchronize the guard from the refund recorded
	// at departure. Only streams the install dropped lose their entry;
	// fresh pickups are full price until a scaled admission says
	// otherwise.
	for s := range p.scale {
		if !assn.InRange(s) {
			delete(p.scale, s)
		}
	}
	if p.ledger != nil {
		// The ledger variant records its scales internally: capture the
		// retained ones before the rebuild wipes them.
		var retained map[int]float64
		for _, s := range assn.Range() {
			if sc := p.ledger.ChargeScale(s); sc != 1 {
				if retained == nil {
					retained = make(map[int]float64)
				}
				retained[s] = sc
			}
		}
		scaleOf := func(s int) float64 {
			if sc, ok := retained[s]; ok {
				return sc
			}
			return 1
		}
		if retained == nil {
			scaleOf = nil
		}
		p.assn = assn.Clone()
		p.ledger.RebuildScaled(p.assn, scaleOf)
		return nil
	}
	p.assn = assn.Clone()
	return nil
}

// ThresholdPolicy is the deployed-world baseline: admit a stream while
// every budget stays under margin*B_i, deliver to every interested user
// with headroom, utilities ignored.
type ThresholdPolicy struct {
	in         *mmd.Instance
	margin     float64
	serverCost []float64
	userLoad   [][]float64
	assn       *mmd.Assignment
	// interested[s] lists the users with positive utility for stream s
	// in increasing index order — the delivery list an arrival walks
	// instead of scanning all |U| users.
	interested [][]int
	// away marks gateways currently offline (see UserChurnPolicy).
	away map[int]bool
}

var _ Policy = (*ThresholdPolicy)(nil)

// NewThresholdPolicy builds the baseline with the given safety margin in
// (0, 1].
func NewThresholdPolicy(in *mmd.Instance, margin float64) (*ThresholdPolicy, error) {
	if margin <= 0 || margin > 1 {
		return nil, fmt.Errorf("headend: threshold margin must be in (0, 1]; got %v", margin)
	}
	p := &ThresholdPolicy{
		in:         in,
		margin:     margin,
		serverCost: make([]float64, in.M()),
		userLoad:   make([][]float64, in.NumUsers()),
		assn:       mmd.NewAssignment(in.NumUsers()),
		interested: in.InterestedUsers(),
	}
	for u := range p.userLoad {
		p.userLoad[u] = make([]float64, len(in.Users[u].Capacities))
	}
	return p, nil
}

// Name implements Policy.
func (p *ThresholdPolicy) Name() string { return "threshold" }

// OnStreamArrival implements Policy.
func (p *ThresholdPolicy) OnStreamArrival(s int) []int {
	for i, c := range p.in.Streams[s].Costs {
		if p.serverCost[i]+c > p.margin*p.in.Budgets[i]+1e-12 {
			return nil
		}
	}
	var kept []int
	for _, u := range p.interested[s] {
		usr := &p.in.Users[u]
		if p.away[u] {
			continue
		}
		fits := true
		for j := range usr.Capacities {
			if p.userLoad[u][j]+usr.Loads[j][s] > p.margin*usr.Capacities[j]+1e-12 {
				fits = false
				break
			}
		}
		if !fits {
			continue
		}
		for j := range usr.Capacities {
			p.userLoad[u][j] += usr.Loads[j][s]
		}
		p.assn.Add(u, s)
		kept = append(kept, u)
	}
	if len(kept) > 0 {
		for i, c := range p.in.Streams[s].Costs {
			p.serverCost[i] += c
		}
	}
	return kept
}

// Assignment returns the running assignment.
func (p *ThresholdPolicy) Assignment() *mmd.Assignment { return p.assn }

// Reinstall implements ReinstallablePolicy: server costs and per-user
// loads are recomputed from scratch for the installed assignment —
// each user's own stream set is walked directly (O(pairs) instead of
// the old range × users × Has scan) — then swapped in together with a
// clone of it. Away gateways stay away.
func (p *ThresholdPolicy) Reinstall(assn *mmd.Assignment) error {
	serverCost := make([]float64, p.in.M())
	userLoad := make([][]float64, p.in.NumUsers())
	for u := range userLoad {
		userLoad[u] = make([]float64, len(p.in.Users[u].Capacities))
	}
	for _, s := range assn.Range() {
		if s < 0 || s >= p.in.NumStreams() {
			return fmt.Errorf("headend: threshold reinstall: stream %d out of range", s)
		}
		for i, c := range p.in.Streams[s].Costs {
			serverCost[i] += c
		}
	}
	for u := 0; u < assn.NumUsers() && u < p.in.NumUsers(); u++ {
		usr := &p.in.Users[u]
		for _, s := range assn.UserStreams(u) {
			for j := range usr.Capacities {
				userLoad[u][j] += usr.Loads[j][s]
			}
		}
	}
	p.assn = assn.Clone()
	p.serverCost = serverCost
	p.userLoad = userLoad
	return nil
}

// deliveryLists inverts a precomputed assignment into per-stream
// delivery lists: deliver[s] holds the users assigned stream s in
// increasing index order. Reveal-style policies (oracle, static greedy)
// serve arrivals from these lists in O(|deliver[s]|) instead of an
// O(|U|) Has scan per event. The lists share no memory with assn.
func deliveryLists(assn *mmd.Assignment) [][]int {
	n := 0
	if r := assn.Range(); len(r) > 0 {
		n = r[len(r)-1] + 1
	}
	deliver := make([][]int, n)
	for u := 0; u < assn.NumUsers(); u++ {
		for _, s := range assn.UserStreams(u) {
			deliver[s] = append(deliver[s], u)
		}
	}
	return deliver
}

// deliverFrom returns the delivery list for stream s (nil when s is
// outside the precomputed lineup).
func deliverFrom(deliver [][]int, s int) []int {
	if s < 0 || s >= len(deliver) {
		return nil
	}
	return deliver[s]
}

// OraclePolicy solves the whole instance offline with the Theorem 1.1
// pipeline and reveals the precomputed assignment as streams arrive —
// the natural upper reference for online policies.
type OraclePolicy struct {
	name    string
	assn    *mmd.Assignment
	deliver [][]int
}

var _ Policy = (*OraclePolicy)(nil)

// NewOraclePolicy precomputes the offline solution.
func NewOraclePolicy(in *mmd.Instance, opts core.Options) (*OraclePolicy, error) {
	a, _, err := core.Solve(in, opts)
	if err != nil {
		return nil, fmt.Errorf("headend: oracle policy: %w", err)
	}
	return &OraclePolicy{name: "offline-oracle", assn: a, deliver: deliveryLists(a)}, nil
}

// Name implements Policy.
func (p *OraclePolicy) Name() string { return p.name }

// OnStreamArrival implements Policy. The returned slice is shared
// between calls for the same stream; callers must not mutate it.
func (p *OraclePolicy) OnStreamArrival(s int) []int {
	return deliverFrom(p.deliver, s)
}

// Assignment returns the precomputed assignment.
func (p *OraclePolicy) Assignment() *mmd.Assignment { return p.assn }

// Reinstall implements ReinstallablePolicy: the oracle reveals the
// installed assignment for future arrivals instead of its original
// offline precomputation.
func (p *OraclePolicy) Reinstall(assn *mmd.Assignment) error {
	p.assn = assn.Clone()
	p.deliver = deliveryLists(p.assn)
	return nil
}

// StaticGreedyPolicy replays the utility-blind static-density baseline
// as an arrival policy (it pre-ranks using full knowledge, making it a
// strong-ish baseline despite ignoring residual utilities).
type StaticGreedyPolicy struct {
	assn    *mmd.Assignment
	deliver [][]int
}

var _ Policy = (*StaticGreedyPolicy)(nil)

// NewStaticGreedyPolicy precomputes the static-greedy assignment.
func NewStaticGreedyPolicy(in *mmd.Instance) (*StaticGreedyPolicy, error) {
	a, err := baseline.StaticGreedy(in)
	if err != nil {
		return nil, fmt.Errorf("headend: static greedy policy: %w", err)
	}
	return &StaticGreedyPolicy{assn: a, deliver: deliveryLists(a)}, nil
}

// Name implements Policy.
func (p *StaticGreedyPolicy) Name() string { return "static-greedy" }

// Reinstall implements ReinstallablePolicy (see OraclePolicy.Reinstall).
func (p *StaticGreedyPolicy) Reinstall(assn *mmd.Assignment) error {
	p.assn = assn.Clone()
	p.deliver = deliveryLists(p.assn)
	return nil
}

// OnStreamArrival implements Policy. The returned slice is shared
// between calls for the same stream; callers must not mutate it.
func (p *StaticGreedyPolicy) OnStreamArrival(s int) []int {
	return deliverFrom(p.deliver, s)
}

// NewPolicyByName builds a named admission policy for an instance:
// "online" (guarded Section 5 Allocate, the default for an empty
// name), "online-unguarded", "threshold" (margin 1), "oracle"
// (offline Theorem 1.1), or "static" (static-density greedy). It is
// the single name-to-policy factory shared by cmd/vodsim, the
// cluster, and the public API.
func NewPolicyByName(in *mmd.Instance, name string) (Policy, error) {
	if in == nil {
		return nil, fmt.Errorf("headend: policy %q: nil instance", name)
	}
	switch name {
	case "", "online":
		return NewOnlinePolicy(in, true)
	case "online-unguarded":
		return NewOnlinePolicy(in, false)
	case "threshold":
		return NewThresholdPolicy(in, 1)
	case "oracle":
		return NewOraclePolicy(in, core.Options{})
	case "static":
		return NewStaticGreedyPolicy(in)
	default:
		return nil, fmt.Errorf("headend: unknown policy %q", name)
	}
}

// utilityOf sums the instance utility of delivering stream s to users.
func utilityOf(in *mmd.Instance, s int, users []int) float64 {
	total := 0.0
	for _, u := range users {
		total += in.Users[u].Utility[s]
	}
	if math.IsNaN(total) {
		return 0
	}
	return total
}
