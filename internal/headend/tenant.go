package headend

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/mmd"
)

// Tenant is one head-end instance driven step by step: an admission
// policy plus the authoritative running assignment, stream lifetimes,
// and gateway availability. It is the event-facing core of Scenario.Run
// extracted so callers that bring their own event loop (the discrete
// simulators here, the sharded cluster in internal/cluster) can drive
// admission without the virtual-time engine.
//
// A Tenant is not safe for concurrent use; callers serialize all step
// calls (the cluster pins each tenant to one shard worker).
type Tenant struct {
	in     *mmd.Instance
	policy Policy
	assn   *mmd.Assignment
	// live maps a carried stream to the users admitted for it; a stream
	// stays carried (and further offers are no-ops) until DepartStream.
	live map[int][]int
	// scale records the server-cost charge scale of live streams
	// admitted at a discount (OfferStreamScaled with scale != 1; the
	// shared-catalog path). Absent streams were charged at full price.
	// Snapshot feasibility prices these streams at their recorded scale.
	scale map[int]float64
	// away marks gateways currently offline.
	away []bool

	offered, admitted, departed int
	leaves, joins, resolves     int
	installs                    int
	lastResolve                 float64
	hasResolve                  bool
}

// TenantSnapshot is a deterministic summary of a tenant's state.
type TenantSnapshot struct {
	// Policy is the admission policy name.
	Policy string
	// Utility is the total utility of the current assignment.
	Utility float64
	// StreamsOffered / StreamsAdmitted / StreamsDeparted count events.
	StreamsOffered, StreamsAdmitted, StreamsDeparted int
	// UserLeaves / UserJoins count gateway churn events.
	UserLeaves, UserJoins int
	// Resolves counts offline re-solves; Installs counts the ones that
	// replaced the running assignment; LastResolveValue is the offline
	// pipeline value observed by the most recent one (0 when none ran).
	Resolves, Installs int
	LastResolveValue   float64
	// ActiveStreams is the number of streams currently transmitted;
	// Pairs is the number of (user, stream) deliveries.
	ActiveStreams, Pairs int
	// Feasible reports whether the current assignment satisfies every
	// budget and capacity.
	Feasible bool
}

// NewTenant builds a tenant around an instance and a policy.
func NewTenant(in *mmd.Instance, policy Policy) (*Tenant, error) {
	if in == nil || in.M() < 1 {
		return nil, fmt.Errorf("headend: tenant needs an instance with at least one budget")
	}
	if policy == nil {
		return nil, fmt.Errorf("headend: tenant needs a policy")
	}
	return &Tenant{
		in:     in,
		policy: policy,
		assn:   mmd.NewAssignment(in.NumUsers()),
		live:   make(map[int][]int),
		away:   make([]bool, in.NumUsers()),
	}, nil
}

// Instance returns the tenant's instance.
func (t *Tenant) Instance() *mmd.Instance { return t.in }

// Policy returns the tenant's policy.
func (t *Tenant) Policy() Policy { return t.policy }

// Assignment returns the authoritative running assignment. The caller
// must not mutate it.
func (t *Tenant) Assignment() *mmd.Assignment { return t.assn }

// OfferStream presents stream s to the policy and commits the decision.
// It returns the users that now receive s (nil when the stream is
// rejected, out of range, or already carried). Users that are away are
// filtered defensively even if a churn-unaware policy selected them.
func (t *Tenant) OfferStream(s int) []int { return t.OfferStreamScaled(s, 1) }

// OfferStreamScaled is OfferStream with the admission guard's
// server-cost delta priced at serverCostScale — the admit hook the
// fleet catalog (internal/catalog) calls into so a SharedOrigin
// admission asks the feasibility ledger with the discounted delta. The
// scale reaches the policy only when it implements
// ScaledAdmissionPolicy (the guarded online policy does); other
// policies admit at full price and the discount affects only the
// catalog's accounting. Scale 1 is identical to OfferStream. The
// matching release hook is DepartStream: the ledger refunds the scale
// the stream was charged at.
func (t *Tenant) OfferStreamScaled(s int, serverCostScale float64) []int {
	if s < 0 || s >= t.in.NumStreams() {
		return nil
	}
	t.offered++
	if _, alive := t.live[s]; alive {
		return nil
	}
	var users []int
	if sp, ok := t.policy.(ScaledAdmissionPolicy); ok {
		users = sp.OnStreamArrivalScaled(s, serverCostScale)
	} else {
		users = t.policy.OnStreamArrival(s)
	}
	kept := make([]int, 0, len(users))
	for _, u := range users {
		if u >= 0 && u < len(t.away) && !t.away[u] {
			kept = append(kept, u)
		}
	}
	if len(kept) == 0 {
		return nil
	}
	t.admitted++
	t.live[s] = kept
	if serverCostScale != 1 {
		if t.scale == nil {
			t.scale = make(map[int]float64)
		}
		t.scale[s] = serverCostScale
	}
	for _, u := range kept {
		t.assn.Add(u, s)
	}
	return kept
}

// DepartStream removes a carried stream, releasing its users and (for
// departure-aware policies) the policy's resources. Departing a stream
// that is not carried is a no-op.
func (t *Tenant) DepartStream(s int) []int {
	users, alive := t.live[s]
	if !alive {
		return nil
	}
	t.departed++
	delete(t.live, s)
	delete(t.scale, s)
	for _, u := range users {
		t.assn.Remove(u, s)
	}
	if dp, ok := t.policy.(DeparturePolicy); ok {
		dp.OnStreamDeparture(s)
	}
	return users
}

// Carries reports whether stream s is currently carried (admitted and
// not yet departed; it stays carried even if every holder has left).
func (t *Tenant) Carries(s int) bool {
	_, alive := t.live[s]
	return alive
}

// Away reports whether gateway u is currently offline.
func (t *Tenant) Away(u int) bool {
	return u >= 0 && u < len(t.away) && t.away[u]
}

// UserLeave takes gateway u offline: its subscriptions are torn down
// and it receives nothing until UserJoin. It returns the streams u was
// receiving, in increasing index order. Leaving twice is a no-op.
func (t *Tenant) UserLeave(u int) []int {
	if u < 0 || u >= len(t.away) || t.away[u] {
		return nil
	}
	t.leaves++
	t.away[u] = true
	var removed []int
	for s, held := range t.live {
		for i, holder := range held {
			if holder == u {
				t.live[s] = append(held[:i:i], held[i+1:]...)
				t.assn.Remove(u, s)
				removed = append(removed, s)
				break
			}
		}
	}
	sort.Ints(removed)
	if cp, ok := t.policy.(UserChurnPolicy); ok {
		cp.OnUserLeave(u)
	}
	return removed
}

// UserJoin brings gateway u back online (eligible for future streams;
// it does not recover old subscriptions). Joining while online is a
// no-op.
func (t *Tenant) UserJoin(u int) {
	if u < 0 || u >= len(t.away) || !t.away[u] {
		return
	}
	t.joins++
	t.away[u] = false
	if cp, ok := t.policy.(UserChurnPolicy); ok {
		cp.OnUserJoin(u)
	}
}

// ResolveOutcome reports one offline re-solve of a tenant.
type ResolveOutcome struct {
	// OnlineValue is the utility of the running assignment at the
	// moment of the re-solve (the drifted online state).
	OnlineValue float64
	// OfflineValue is the value of the fresh offline Theorem 1.1
	// solution over the same (away-zeroed) instance.
	OfflineValue float64
	// Installed reports whether the offline assignment replaced the
	// running one (install requested AND the offline solution was at
	// least as good as the running assignment).
	Installed bool
}

// Resolve runs the offline Theorem 1.1 pipeline on the tenant's
// instance (with away gateways' utilities zeroed). With install false it
// is a monitoring step — the running assignment and policy state are not
// replaced; the outcome measures how far the online assignment has
// drifted from a fresh offline solution. With install true the offline
// assignment is installed via a make-before-break swap (see install),
// but only when it is at least as good as the running assignment — a
// re-solve never downgrades the lineup it replaces.
func (t *Tenant) Resolve(opts core.Options, install bool) (ResolveOutcome, error) {
	in := t.in
	anyAway := false
	for _, a := range t.away {
		if a {
			anyAway = true
			break
		}
	}
	if anyAway {
		in = t.in.Clone()
		for u := range in.Users {
			if t.away[u] {
				for s := range in.Users[u].Utility {
					in.Users[u].Utility[s] = 0
				}
			}
		}
	}
	assn, rep, err := core.Solve(in, opts)
	if err != nil {
		return ResolveOutcome{}, fmt.Errorf("headend: tenant resolve: %w", err)
	}
	out := ResolveOutcome{
		OnlineValue:  t.assn.Utility(t.in),
		OfflineValue: rep.Value,
	}
	if install && out.OfflineValue >= out.OnlineValue {
		if err := t.install(assn); err != nil {
			return out, err
		}
		out.Installed = true
		t.installs++
	}
	t.resolves++
	t.lastResolve = rep.Value
	t.hasResolve = true
	return out, nil
}

// install swaps the running assignment for a fresh offline solution,
// make before break: away gateways are stripped from the candidate, it
// is feasibility-checked against the true instance, and the policy's
// internal state is rebuilt around it (ReinstallablePolicy) — only when
// all of that succeeds are the tenant's assignment and live-stream
// table replaced. On any error the old state is untouched. Installing
// adopts the offline lineup over the full catalog: the head-end retunes
// to the Theorem 1.1 solution, dropping carried streams outside it and
// picking up catalog streams inside it.
func (t *Tenant) install(assn *mmd.Assignment) error {
	assn = assn.Restrict(func(u, s int) bool {
		return u < len(t.away) && !t.away[u]
	})
	if err := assn.CheckFeasible(t.in); err != nil {
		return fmt.Errorf("headend: install: offline assignment infeasible: %w", err)
	}
	rp, ok := t.policy.(ReinstallablePolicy)
	if !ok {
		return fmt.Errorf("headend: install: policy %q cannot rebuild its state", t.policy.Name())
	}
	if err := rp.Reinstall(assn); err != nil {
		return fmt.Errorf("headend: install: %w", err)
	}
	live := make(map[int][]int, assn.RangeSize())
	for u := 0; u < assn.NumUsers(); u++ {
		for _, s := range assn.UserStreams(u) {
			live[s] = append(live[s], u)
		}
	}
	t.assn = assn
	t.live = live
	// Streams the install retains keep the charge scale they were
	// admitted at — their shared-catalog origin is still paid for
	// elsewhere, and the fleet reference survives the install, so the
	// feasibility rescan must keep pricing them at the discount. Only
	// streams the new lineup dropped lose their entry; pickups are full
	// price (the cluster's reconcile adopts their reference at full
	// cost).
	for s := range t.scale {
		if !assn.InRange(s) {
			delete(t.scale, s)
		}
	}
	return nil
}

// Snapshot summarizes the tenant deterministically.
func (t *Tenant) Snapshot() TenantSnapshot {
	return TenantSnapshot{
		Policy:           t.policy.Name(),
		Utility:          t.assn.Utility(t.in),
		StreamsOffered:   t.offered,
		StreamsAdmitted:  t.admitted,
		StreamsDeparted:  t.departed,
		UserLeaves:       t.leaves,
		UserJoins:        t.joins,
		Resolves:         t.resolves,
		Installs:         t.installs,
		LastResolveValue: t.lastResolve,
		ActiveStreams:    t.assn.RangeSize(),
		Pairs:            t.assn.Pairs(),
		Feasible:         t.feasible(),
	}
}

// feasible verifies the running assignment against the instance's
// budgets and capacities. Streams admitted at a shared-catalog discount
// are priced at their recorded charge scale (the origin work happens at
// another head-end); with no discounted streams this is exactly the
// full-price CheckFeasible rescan the pre-catalog snapshots ran.
func (t *Tenant) feasible() bool {
	if len(t.scale) == 0 {
		return t.assn.CheckFeasible(t.in) == nil
	}
	return t.assn.CheckFeasibleScaled(t.in, func(s int) float64 {
		if sc, ok := t.scale[s]; ok {
			return sc
		}
		return 1
	}) == nil
}
