//go:build !unix

package benchkit

// drainDisk is a no-op where the whole-filesystem sync syscall is
// unavailable; the WAL benchmarks just run with more variance there.
func drainDisk() {}
