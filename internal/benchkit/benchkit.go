// Package benchkit holds the serving-path benchmark bodies in plain
// functions so they run both as `go test -bench` benchmarks (the root
// bench_test.go and internal/headend wrap them) and programmatically via
// testing.Benchmark from `mmdbench -json`, which snapshots ns/op and
// allocs/op into BENCH_serving.json — the machine-readable perf baseline
// future PRs diff against.
package benchkit

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"

	videodist "repro"
	"repro/internal/catalog"
	"repro/internal/cluster"
	"repro/internal/generator"
	"repro/internal/headend"
	"repro/internal/httpserve"
	"repro/internal/loaddrive"
	"repro/internal/mmd"
	"repro/streamclient"
)

// admissionInstance is the CableTV-sized workload the guarded-admission
// benchmarks sweep: 3 server budgets, 2 capacities per gateway, Zipf
// popularity, contended egress.
func admissionInstance(b *testing.B) *mmd.Instance {
	b.Helper()
	in, err := generator.CableTV{
		Channels: 120, Gateways: 40, Seed: 300, EgressFraction: 0.25,
	}.Generate()
	if err != nil {
		b.Fatal(err)
	}
	return in
}

// admissionCandidates precomputes the per-stream candidate lists (users
// with positive utility, increasing index) shared by both guard paths —
// the same inversion ThresholdPolicy walks per arrival.
func admissionCandidates(in *mmd.Instance) [][]int {
	return in.InterestedUsers()
}

// GuardedAdmissionRescan sweeps every (stream, candidate) admission
// through the retained reference guard — trial Add + full
// Assignment.CheckFeasible rescan per candidate, the pre-ledger
// serving-path behavior — then tears the lineup back down, so each op
// is one admit-everything/depart-everything cycle on warm state and the
// reported allocs are the guard's own.
func GuardedAdmissionRescan(b *testing.B) {
	in := admissionInstance(b)
	cand := admissionCandidates(in)
	assn := mmd.NewAssignment(in.NumUsers())
	var admitted [][2]int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		admitted = admitted[:0]
		for s := range cand {
			for _, u := range cand[s] {
				assn.Add(u, s)
				if assn.CheckFeasible(in) != nil {
					assn.Remove(u, s)
					continue
				}
				admitted = append(admitted, [2]int{u, s})
			}
		}
		if len(admitted) == 0 {
			b.Fatal("nothing admitted")
		}
		for _, p := range admitted {
			assn.Remove(p[0], p[1])
		}
	}
}

// GuardedAdmissionLedger runs the identical admit/depart cycle through
// the incremental LoadLedger delta query.
func GuardedAdmissionLedger(b *testing.B) {
	in := admissionInstance(b)
	cand := admissionCandidates(in)
	assn := mmd.NewAssignment(in.NumUsers())
	ledger := mmd.NewLoadLedger(in)
	var admitted [][2]int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		admitted = admitted[:0]
		for s := range cand {
			for _, u := range cand[s] {
				if !ledger.FitsDelta(u, s) {
					continue
				}
				ledger.Add(u, s)
				assn.Add(u, s)
				admitted = append(admitted, [2]int{u, s})
			}
		}
		if len(admitted) == 0 {
			b.Fatal("nothing admitted")
		}
		for _, p := range admitted {
			ledger.Remove(p[0], p[1])
			assn.Remove(p[0], p[1])
		}
	}
}

// CatalogAdmissionLedger sweeps the identical admit/depart cycle as
// GuardedAdmissionLedger through the *scaled* guard path — the
// admission fast path of the fleet catalog (serving API v3):
// FitsDeltaScaled prices the server-cost delta at the shared-origin
// replication fraction, AddScaled records the charge scale for the
// eventual refund. scale 1 is the Isolated cost model (bit-identical
// decisions to the unscaled path); scale 0.25 is the SharedOrigin
// discount, which admits more pairs per sweep on the contended
// instance. Both must stay allocation-free — the catalog's registry
// round trip happens outside this path, once per fleet admission, not
// per candidate.
func CatalogAdmissionLedger(b *testing.B, scale float64) {
	in := admissionInstance(b)
	cand := admissionCandidates(in)
	assn := mmd.NewAssignment(in.NumUsers())
	ledger := mmd.NewLoadLedger(in)
	var admitted [][2]int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		admitted = admitted[:0]
		for s := range cand {
			for _, u := range cand[s] {
				if !ledger.FitsDeltaScaled(u, s, scale) {
					continue
				}
				ledger.AddScaled(u, s, scale)
				assn.Add(u, s)
				admitted = append(admitted, [2]int{u, s})
			}
		}
		if len(admitted) == 0 {
			b.Fatal("nothing admitted")
		}
		for _, p := range admitted {
			ledger.Remove(p[0], p[1])
			assn.Remove(p[0], p[1])
		}
	}
}

// OnlinePolicySweep offers the full catalog to the guarded Section 5
// online policy end to end (allocator + guard); ledger selects the
// incremental guard, rescan the retained reference guard. The two runs
// admit bit-identically (see the differential tests), so the delta is
// pure guard cost.
func OnlinePolicySweep(b *testing.B, ledger bool) {
	in := admissionInstance(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		var pol *headend.OnlinePolicy
		var err error
		if ledger {
			pol, err = headend.NewOnlinePolicy(in, true)
		} else {
			pol, err = headend.NewRescanOnlinePolicy(in)
		}
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for s := 0; s < in.NumStreams(); s++ {
			pol.OnStreamArrival(s)
		}
	}
}

// clusterTenants builds the 8-tenant fleet shared by the cluster
// benchmarks.
func clusterTenants(b *testing.B) []*videodist.Instance {
	b.Helper()
	instances, err := clusterInstances()
	if err != nil {
		b.Fatal(err)
	}
	return instances
}

// clusterInstances is the non-testing form of clusterTenants, shared
// with the saturation harness (which runs outside testing.Benchmark).
func clusterInstances() ([]*videodist.Instance, error) {
	instances := make([]*videodist.Instance, 8)
	for i := range instances {
		in, err := generator.CableTV{
			Channels: 40, Gateways: 10, Seed: 200 + int64(i), EgressFraction: 0.25,
		}.Generate()
		if err != nil {
			return nil, err
		}
		instances[i] = in
	}
	return instances, nil
}

// ClusterWorkload drives one full workload (arrivals, departures,
// gateway churn) over 8 tenants on the given shard count and reports
// events/op — the body of BenchmarkClusterSerial/Sharded.
func ClusterWorkload(b *testing.B, shards int) {
	instances := clusterTenants(b)
	events := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tenants := make([]videodist.ClusterTenant, len(instances))
		for j, in := range instances {
			tenants[j] = videodist.ClusterTenant{Instance: in}
		}
		c, err := videodist.NewCluster(tenants, videodist.ClusterOptions{
			Shards: shards, BatchSize: 16,
		})
		if err != nil {
			b.Fatal(err)
		}
		fs, total, err := c.RunWorkload(videodist.ClusterWorkload{
			Seed: 200, Rounds: 2, DepartEvery: 3, ChurnEvery: 8,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Close(); err != nil {
			b.Fatal(err)
		}
		if !fs.AllFeasible {
			b.Fatal("fleet infeasible")
		}
		events = total
	}
	b.ReportMetric(float64(events), "events/op")
}

// ClusterAck drives the same 8-tenant workload through the serving API
// v2 session methods — every event carries a completion channel and the
// caller blocks for its typed result — the body of BenchmarkClusterAck.
// The fleet is built (and torn down) outside the timer, exactly like
// StreamIngest: a production cluster is constructed once and serves
// events for its lifetime, so ns/op and allocs/op measure the serving
// hot path alone — the regression bar the AllocsPerRun tests pin.
func ClusterAck(b *testing.B) {
	instances := clusterTenants(b)
	ctx := context.Background()
	events := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tenants := make([]videodist.ClusterTenant, len(instances))
		for j, in := range instances {
			tenants[j] = videodist.ClusterTenant{Instance: in}
		}
		c, err := videodist.NewCluster(tenants, videodist.ClusterOptions{
			Shards: 8, BatchSize: 16,
		})
		if err != nil {
			b.Fatal(err)
		}
		w := videodist.ClusterWorkload{Seed: 200, Rounds: 2, DepartEvery: 3, ChurnEvery: 8}
		schedules := make([][]videodist.ClusterEvent, c.NumTenants())
		for ti := range schedules {
			schedules[ti] = w.Events(c, ti)
		}
		// Collect the construction garbage now so marking debt from the
		// (untimed) fleet build does not spill into the timed section.
		runtime.GC()
		b.StartTimer()

		total := 0
		for ti := 0; ti < c.NumTenants(); ti++ {
			for _, ev := range schedules[ti] {
				switch ev.Type {
				case cluster.EventStreamArrival:
					_, err = c.OfferStream(ctx, ev.Tenant, ev.Stream)
				case cluster.EventStreamDeparture:
					_, err = c.DepartStream(ctx, ev.Tenant, ev.Stream)
				case cluster.EventUserLeave:
					_, err = c.UserLeave(ctx, ev.Tenant, ev.User)
				case cluster.EventUserJoin:
					_, err = c.UserJoin(ctx, ev.Tenant, ev.User)
				case cluster.EventResolve:
					_, err = c.Resolve(ctx, ev.Tenant, videodist.ResolveOptions{})
				}
				if err != nil {
					b.Fatal(err)
				}
				total++
			}
		}

		b.StopTimer()
		fs, err := c.Snapshot()
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Close(); err != nil {
			b.Fatal(err)
		}
		if !fs.AllFeasible {
			b.Fatal("fleet infeasible")
		}
		events = total
		b.StartTimer()
	}
	b.ReportMetric(float64(events), "events/op")
}

// ClusterCatalog drives the 8-tenant fleet entirely through the
// catalog surface: every stream is fleet-bound at every tenant, each
// event is an OfferCatalogStream/DepartCatalogStream session call (the
// three-step acquire/admit/commit protocol per admission), and shared
// selects SharedOrigin pricing over Isolated. events/op counts session
// calls — the end-to-end cost of fleet-identified admission.
func ClusterCatalog(b *testing.B, shared bool) {
	instances := clusterTenants(b)
	channels := instances[0].NumStreams()
	bindings := catalog.IdentityBindings(len(instances), channels, func(s int) videodist.CatalogID {
		return videodist.CatalogID(fmt.Sprintf("s-%03d", s))
	})
	var model videodist.CatalogCostModel = videodist.CatalogIsolated{}
	if shared {
		model = videodist.CatalogSharedOrigin{ReplicationFraction: 0.25}
	}
	// Real callers hold stable CatalogIDs; formatting them inside the
	// timed loop would charge ID construction to the catalog path.
	ids := make([]videodist.CatalogID, channels)
	for s := range ids {
		ids[s] = bindings[s].ID
	}
	ctx := context.Background()
	events := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tenants := make([]videodist.ClusterTenant, len(instances))
		for j, in := range instances {
			tenants[j] = videodist.ClusterTenant{Instance: in}
		}
		c, err := videodist.NewCluster(tenants, videodist.ClusterOptions{
			Shards: 8, BatchSize: 16,
			Catalog: &videodist.CatalogOptions{Streams: bindings, CostModel: model},
		})
		if err != nil {
			b.Fatal(err)
		}
		total := 0
		for ti := 0; ti < c.NumTenants(); ti++ {
			for s := 0; s < channels; s++ {
				if _, err := c.OfferCatalogStream(ctx, ti, ids[s]); err != nil {
					b.Fatal(err)
				}
				total++
				if s%3 == 2 {
					if _, err := c.DepartCatalogStream(ctx, ti, ids[s]); err != nil {
						b.Fatal(err)
					}
					total++
				}
			}
		}
		fs, err := c.Snapshot()
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Close(); err != nil {
			b.Fatal(err)
		}
		if !fs.AllFeasible {
			b.Fatal("fleet infeasible")
		}
		events = total
	}
	b.ReportMetric(float64(events), "events/op")
}

// streamIngestEvents derives the ~10k-event StreamIngest workload (8
// tenants x 40 channels x 24 rounds of arrivals with departures every
// third) as per-tenant wire-form schedules.
func streamIngestEvents(instances []*videodist.Instance) [][]streamclient.Event {
	w := videodist.ClusterWorkload{Seed: 200, Rounds: 24, DepartEvery: 3}
	out := make([][]streamclient.Event, len(instances))
	for ti, in := range instances {
		for _, ev := range w.EventsForInstance(in, ti) {
			typ := "offer"
			if ev.Type == cluster.EventStreamDeparture {
				typ = "depart"
			}
			out[ti] = append(out[ti], streamclient.Event{Tenant: ti, Type: typ, Stream: ev.Stream})
		}
	}
	return out
}

// StreamIngest measures remote ingestion throughput through the real
// HTTP front end (internal/httpserve behind an httptest listener): the
// same ~10k-event workload is submitted via one persistent /v1/stream
// connection ("stream"), as :batch posts of 16 events round-robin
// across tenants ("batch"), or as one POST per event ("single") — all
// through internal/loaddrive, the same driver code mmdserve -stream
// runs, so the benchmark measures exactly the CLI's protocol. The
// fleet and listener are built outside the timer, so ns/op — and the
// derived events/sec metric — is pure ingestion cost; all three paths
// preserve per-tenant order and land the fleet in the identical final
// state (pinned by TestDriveParityAcrossVias and the CI smoke). The
// acceptance bar for serving API v4 is stream >= 2x the per-request
// paths on events/sec.
func StreamIngest(b *testing.B, via string) {
	instances := clusterTenants(b)
	seqs := streamIngestEvents(instances)
	events := loaddrive.Interleave(seqs)
	total := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tenants := make([]videodist.ClusterTenant, len(instances))
		for j, in := range instances {
			tenants[j] = videodist.ClusterTenant{Instance: in}
		}
		c, err := videodist.NewCluster(tenants, videodist.ClusterOptions{Shards: 8, BatchSize: 16})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(httpserve.NewHandler(c))
		// Collect the construction garbage now: without this, marking
		// debt from the (untimed) fleet build spills into whichever
		// timed ingestion section the GC happens to interrupt.
		runtime.GC()
		b.StartTimer()

		n := 0
		switch via {
		case "stream":
			n, err = loaddrive.Stream(ts.URL, events)
		case "batch":
			n, err = loaddrive.Batch(ts.URL, seqs, 16)
		case "single":
			n, err = loaddrive.Single(ts.URL, events)
		default:
			b.Fatalf("unknown via %q", via)
		}
		if err != nil {
			b.Fatal(err)
		}
		if n != len(events) {
			b.Fatalf("submitted %d of %d events", n, len(events))
		}
		total = n

		b.StopTimer()
		ts.Close()
		if err := c.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(total), "events/op")
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(total*b.N)/secs, "events/sec")
	}
}

// StreamIngestWAL reruns the StreamIngest "stream" workload with the
// durability subsystem on: the same ~10k events arrive over one
// persistent /v1/stream connection, but every shard journals each
// event to its per-shard WAL segment under the given sync policy
// before acking, so the gap to StreamIngest/stream is the WAL's whole
// price on the hot ingest path. Each iteration logs into a fresh
// directory, created and deleted outside the timer, so segment growth
// from prior iterations never pollutes the measurement. The
// durability acceptance bar is sync=batch (group commit — an acked
// event survives power loss) sustaining >= 70% of WAL-off events/sec
// on hosts where the committer's fsync can overlap the apply loop
// (num_cpu > 1), and >= 45% on a single-CPU host, where the device
// flush stalls the only core (see bench_baseline_test.go).
func StreamIngestWAL(b *testing.B, sync videodist.WALSyncPolicy) {
	instances := clusterTenants(b)
	seqs := streamIngestEvents(instances)
	events := loaddrive.Interleave(seqs)
	total := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir, err := os.MkdirTemp("", "benchwal-*")
		if err != nil {
			b.Fatal(err)
		}
		tenants := make([]videodist.ClusterTenant, len(instances))
		for j, in := range instances {
			tenants[j] = videodist.ClusterTenant{Instance: in}
		}
		c, err := videodist.NewCluster(tenants, videodist.ClusterOptions{
			Shards: 8, BatchSize: 16,
			WAL: &videodist.WALOptions{Dir: dir, Sync: sync},
		})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(httpserve.NewHandler(c))
		// Collect construction garbage and drain the filesystem's
		// pending journal work (segment creates, the previous
		// iteration's unlinks) before the timer starts — otherwise
		// that debt is paid inside whichever timed fsync the kernel
		// happens to fold it into, and run-to-run variance swamps the
		// steady-state ingest cost this benchmark exists to measure.
		runtime.GC()
		drainDisk()
		b.StartTimer()

		n, err := loaddrive.Stream(ts.URL, events)
		if err != nil {
			b.Fatal(err)
		}
		if n != len(events) {
			b.Fatalf("submitted %d of %d events", n, len(events))
		}
		total = n

		b.StopTimer()
		ts.Close()
		if err := c.Close(); err != nil {
			b.Fatal(err)
		}
		if err := os.RemoveAll(dir); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(total), "events/op")
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(total*b.N)/secs, "events/sec")
	}
}

// Bench names one serving benchmark for programmatic runs.
type Bench struct {
	// Name keys the benchmark in BENCH_serving.json.
	Name string
	// F is the benchmark body.
	F func(*testing.B)
}

// ServingBenchmarks returns the suite snapshotted by `mmdbench -json`:
// the guarded-admission pair (reference rescan vs ledger), the
// catalog-admission pair (isolated vs shared-origin pricing), the
// end-to-end online policy pair, the cluster throughput trio, the
// catalog session workloads, and the HTTP ingestion trio (persistent
// stream vs batch posts vs single posts).
func ServingBenchmarks() []Bench {
	return []Bench{
		{Name: "GuardedAdmission/rescan", F: GuardedAdmissionRescan},
		{Name: "GuardedAdmission/ledger", F: GuardedAdmissionLedger},
		{Name: "CatalogAdmission/isolated", F: func(b *testing.B) { CatalogAdmissionLedger(b, 1) }},
		{Name: "CatalogAdmission/shared", F: func(b *testing.B) { CatalogAdmissionLedger(b, 0.25) }},
		{Name: "OnlinePolicySweep/rescan", F: func(b *testing.B) { OnlinePolicySweep(b, false) }},
		{Name: "OnlinePolicySweep/ledger", F: func(b *testing.B) { OnlinePolicySweep(b, true) }},
		{Name: "ClusterSerial", F: func(b *testing.B) { ClusterWorkload(b, 1) }},
		{Name: "ClusterSharded", F: func(b *testing.B) { ClusterWorkload(b, 8) }},
		{Name: "ClusterAck", F: ClusterAck},
		{Name: "ClusterCatalog/isolated", F: func(b *testing.B) { ClusterCatalog(b, false) }},
		{Name: "ClusterCatalog/shared", F: func(b *testing.B) { ClusterCatalog(b, true) }},
		{Name: "StreamIngest/stream", F: func(b *testing.B) { StreamIngest(b, "stream") }},
		{Name: "StreamIngest/batch16", F: func(b *testing.B) { StreamIngest(b, "batch") }},
		{Name: "StreamIngest/single", F: func(b *testing.B) { StreamIngest(b, "single") }},
	}
}

// DurabilityBenchmarks returns the WAL-on ingestion runs snapshotted
// into the baseline's "durability" section: StreamIngest/stream with
// each sync policy, measured against the WAL-off run for the ratio the
// acceptance bar (batch >= 0.70) is read from.
func DurabilityBenchmarks() []Bench {
	return []Bench{
		{Name: "StreamIngestWAL/none", F: func(b *testing.B) { StreamIngestWAL(b, videodist.WALSyncNone) }},
		{Name: "StreamIngestWAL/interval", F: func(b *testing.B) { StreamIngestWAL(b, videodist.WALSyncInterval) }},
		{Name: "StreamIngestWAL/batch", F: func(b *testing.B) { StreamIngestWAL(b, videodist.WALSyncBatch) }},
	}
}
