package benchkit

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	videodist "repro"
	"repro/internal/cluster"
	"repro/internal/metrics"
)

// The saturation harness answers the question the per-op benchmarks
// cannot: how does acked serving throughput scale with shard count and
// scheduler parallelism when every tenant submits concurrently? One
// submitter goroutine per tenant drives the deterministic session
// workload, every ack's latency lands in a metrics.Histogram, and each
// (shards, GOMAXPROCS) cell reports events/sec plus p50/p99 ack
// latency. mmdbench -json sweeps the grid into the "saturation"
// section of BENCH_serving.json — the checked-in scaling curve.

// ackLatencyBounds are the histogram bucket upper bounds for ack
// latency, in microseconds: roughly 1-2-5 decades from 1µs to 1s, so
// p50/p99 resolve to a factor of ~2.5 anywhere a session call can land.
var ackLatencyBounds = []float64{
	1, 2, 5, 10, 20, 50, 100, 200, 500,
	1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000,
	200_000, 500_000, 1_000_000,
}

// SaturationPoint is one cell of the saturation grid: the measured
// steady-state throughput and ack-latency quantiles of the 8-tenant
// session workload at one (shards, GOMAXPROCS) setting.
type SaturationPoint struct {
	// Shards is the fleet's shard-worker count; GoMaxProcs the
	// scheduler parallelism the cell ran under.
	Shards     int
	GoMaxProcs int
	// Submitters is the number of concurrent submitter goroutines (one
	// per tenant); Events the total acked session calls.
	Submitters int
	Events     int
	// ElapsedSec is the wall-clock of the concurrent drive section;
	// EventsPerSec the headline throughput (Events / ElapsedSec).
	ElapsedSec   float64
	EventsPerSec float64
	// AckP50Micros and AckP99Micros are histogram-quantile upper
	// bounds on per-call ack latency, in microseconds.
	AckP50Micros float64
	AckP99Micros float64
}

// Saturate measures one saturation cell: it builds the 8-tenant fleet
// at the given shard count, pins runtime.GOMAXPROCS to procs for the
// duration (restoring it on return), and drives every tenant's
// deterministic workload (rounds catalog replays with departures and
// gateway churn) from its own goroutine through the acked session
// calls — the same per-event surface ClusterAck times serially. Fleet
// construction and teardown stay outside the measured window.
func Saturate(shards, procs, rounds int) (SaturationPoint, error) {
	if shards < 1 || procs < 1 || rounds < 1 {
		return SaturationPoint{}, fmt.Errorf("benchkit: bad saturation cell shards=%d procs=%d rounds=%d", shards, procs, rounds)
	}
	instances, err := clusterInstances()
	if err != nil {
		return SaturationPoint{}, err
	}
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)

	tenants := make([]videodist.ClusterTenant, len(instances))
	for i, in := range instances {
		tenants[i] = videodist.ClusterTenant{Instance: in}
	}
	c, err := videodist.NewCluster(tenants, videodist.ClusterOptions{Shards: shards, BatchSize: 16})
	if err != nil {
		return SaturationPoint{}, err
	}
	defer c.Close()

	w := videodist.ClusterWorkload{Seed: 200, Rounds: rounds, DepartEvery: 3, ChurnEvery: 8}
	schedules := make([][]videodist.ClusterEvent, c.NumTenants())
	events := 0
	for ti := range schedules {
		schedules[ti] = w.Events(c, ti)
		events += len(schedules[ti])
	}
	hist, err := metrics.NewHistogram(ackLatencyBounds)
	if err != nil {
		return SaturationPoint{}, err
	}

	// Collect construction garbage before the measured window so fleet
	// build debt does not distort the drive section (same discipline as
	// ClusterAck).
	runtime.GC()

	ctx := context.Background()
	errs := make([]error, len(schedules))
	var wg sync.WaitGroup
	start := time.Now()
	for ti := range schedules {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			for _, ev := range schedules[ti] {
				t0 := time.Now()
				var err error
				switch ev.Type {
				case cluster.EventStreamArrival:
					_, err = c.OfferStream(ctx, ev.Tenant, ev.Stream)
				case cluster.EventStreamDeparture:
					_, err = c.DepartStream(ctx, ev.Tenant, ev.Stream)
				case cluster.EventUserLeave:
					_, err = c.UserLeave(ctx, ev.Tenant, ev.User)
				case cluster.EventUserJoin:
					_, err = c.UserJoin(ctx, ev.Tenant, ev.User)
				case cluster.EventResolve:
					_, err = c.Resolve(ctx, ev.Tenant, videodist.ResolveOptions{})
				default:
					err = fmt.Errorf("benchkit: unknown workload event type %v", ev.Type)
				}
				if err != nil {
					errs[ti] = err
					return
				}
				hist.Observe(time.Since(t0).Seconds() * 1e6)
			}
		}(ti)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := errors.Join(errs...); err != nil {
		return SaturationPoint{}, err
	}
	if got := int(hist.Count()); got != events {
		return SaturationPoint{}, fmt.Errorf("benchkit: acked %d of %d events", got, events)
	}

	fs, err := c.Snapshot()
	if err != nil {
		return SaturationPoint{}, err
	}
	if !fs.AllFeasible {
		return SaturationPoint{}, fmt.Errorf("benchkit: fleet infeasible after saturation drive")
	}
	if err := c.Close(); err != nil {
		return SaturationPoint{}, err
	}
	return SaturationPoint{
		Shards:       shards,
		GoMaxProcs:   procs,
		Submitters:   len(schedules),
		Events:       events,
		ElapsedSec:   elapsed.Seconds(),
		EventsPerSec: float64(events) / elapsed.Seconds(),
		AckP50Micros: hist.Quantile(0.50),
		AckP99Micros: hist.Quantile(0.99),
	}, nil
}

// SaturationGrid sweeps Saturate over every (shards, procs) pair —
// the scaling curve mmdbench -json checks into BENCH_serving.json.
func SaturationGrid(shards, procs []int, rounds int) ([]SaturationPoint, error) {
	var out []SaturationPoint
	for _, s := range shards {
		for _, p := range procs {
			pt, err := Saturate(s, p, rounds)
			if err != nil {
				return nil, fmt.Errorf("saturation shards=%d procs=%d: %w", s, p, err)
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// SaturationBench wraps one saturation cell as a testing benchmark —
// the BenchmarkSaturation body — so `go test -bench` (and CI's
// -benchtime=1x smoke) exercises the concurrent-submitter harness
// with GOMAXPROCS>1 on every run.
func SaturationBench(b *testing.B, shards, procs int) {
	events := 0
	var pt SaturationPoint
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		pt, err = Saturate(shards, procs, 2)
		if err != nil {
			b.Fatal(err)
		}
		events = pt.Events
	}
	b.ReportMetric(float64(events), "events/op")
	b.ReportMetric(pt.EventsPerSec, "events/sec")
	b.ReportMetric(pt.AckP50Micros, "ack-p50-µs")
	b.ReportMetric(pt.AckP99Micros, "ack-p99-µs")
}
