package benchkit

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	videodist "repro"
	"repro/internal/catalog"
	"repro/internal/generator"
	"repro/internal/httpserve"
	"repro/internal/loaddrive"
	"repro/internal/metrics"
	"repro/streamclient"
)

// The workload benchmarks drive the generator subsystem's skewed
// traffic — Zipf popularity with a flash crowd, diurnal churn — through
// the same measured surfaces as the uniform StreamIngest/Saturate
// workloads, so BENCH_serving.json records how the serving path holds
// up when traffic stops being uniform. Unlike StreamIngest's fleet,
// these fleets run with the catalog enabled (SharedOrigin pricing):
// skewed catalog traffic is the whole point.

// WorkloadKinds names the generator-driven ingestion workloads, the
// keys of the baseline's "workloads" section.
func WorkloadKinds() []string { return []string{"zipf-flash", "diurnal"} }

// workloadEvents builds the named generator schedule over the standard
// 8-tenant benchmark fleet shape (40 channels, 10 gateways).
func workloadEvents(kind string) ([]generator.Event, error) {
	switch kind {
	case "zipf-flash":
		return generator.ZipfFlashCrowd{
			Tenants: 8, Channels: 40, Gateways: 10, Seed: 400, Rounds: 6,
		}.Generate()
	case "diurnal":
		return generator.Diurnal{
			Tenants: 8, Channels: 40, Gateways: 10, Seed: 401, Days: 2,
		}.Generate()
	default:
		return nil, fmt.Errorf("benchkit: unknown workload kind %q", kind)
	}
}

// workloadSeqs converts the schedule to per-tenant wire form for the
// loaddrive/HTTP path. Per-tenant order is the schedule's order, the
// invariant all three ingestion vias preserve.
func workloadSeqs(kind string) ([][]streamclient.Event, error) {
	events, err := workloadEvents(kind)
	if err != nil {
		return nil, err
	}
	out := make([][]streamclient.Event, 8)
	for _, ev := range events {
		out[ev.Tenant] = append(out[ev.Tenant], streamclient.Event{
			Tenant: ev.Tenant, Type: string(ev.Type), Stream: ev.Stream,
			User: ev.User, CatalogID: ev.CatalogID,
		})
	}
	return out, nil
}

// workloadCatalog is the catalog configuration the workload fleets run
// under: every channel fleet-identified under the generator's ch-%03d
// convention, SharedOrigin pricing.
func workloadCatalog(tenants, channels int) *videodist.CatalogOptions {
	return &videodist.CatalogOptions{
		Streams: catalog.IdentityBindings(tenants, channels, func(s int) videodist.CatalogID {
			return videodist.CatalogID(fmt.Sprintf("ch-%03d", s))
		}),
		CostModel: videodist.CatalogSharedOrigin{ReplicationFraction: 0.25},
	}
}

// WorkloadIngest measures skewed-traffic ingestion end to end: the
// named generator workload is submitted through one persistent
// /v1/stream connection against a catalog-enabled fleet — the
// StreamIngest discipline (fleet and listener outside the timer), but
// with catalog offers, the flash crowd, and gateway churn in the event
// mix instead of uniform plain offers.
func WorkloadIngest(b *testing.B, kind string) {
	instances := clusterTenants(b)
	seqs, err := workloadSeqs(kind)
	if err != nil {
		b.Fatal(err)
	}
	events := loaddrive.Interleave(seqs)
	total := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tenants := make([]videodist.ClusterTenant, len(instances))
		for j, in := range instances {
			tenants[j] = videodist.ClusterTenant{Instance: in}
		}
		c, err := videodist.NewCluster(tenants, videodist.ClusterOptions{
			Shards: 8, BatchSize: 16,
			Catalog: workloadCatalog(len(instances), instances[0].NumStreams()),
		})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(httpserve.NewHandler(c))
		// Same discipline as StreamIngest: construction garbage must not
		// spill into the timed ingestion section.
		runtime.GC()
		b.StartTimer()

		n, err := loaddrive.Stream(ts.URL, events)
		if err != nil {
			b.Fatal(err)
		}
		if n != len(events) {
			b.Fatalf("submitted %d of %d events", n, len(events))
		}
		total = n

		b.StopTimer()
		ts.Close()
		if err := c.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(total), "events/op")
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(total*b.N)/secs, "events/sec")
	}
}

// WorkloadBenchmarks returns the generator-workload suite snapshotted
// into the baseline's "workloads" section.
func WorkloadBenchmarks() []Bench {
	out := make([]Bench, 0, len(WorkloadKinds()))
	for _, kind := range WorkloadKinds() {
		kind := kind
		out = append(out, Bench{
			Name: "WorkloadIngest/" + kind,
			F:    func(b *testing.B) { WorkloadIngest(b, kind) },
		})
	}
	return out
}

// SaturateWorkload measures one saturation cell under a generator
// workload: like Saturate, but every tenant's submitter goroutine
// drives the named skewed schedule (repeated rounds times) through the
// acked session calls of a catalog-enabled fleet. kind "" falls back to
// Saturate's uniform session workload.
func SaturateWorkload(shards, procs, rounds int, kind string) (SaturationPoint, error) {
	if kind == "" {
		return Saturate(shards, procs, rounds)
	}
	if shards < 1 || procs < 1 || rounds < 1 {
		return SaturationPoint{}, fmt.Errorf("benchkit: bad saturation cell shards=%d procs=%d rounds=%d", shards, procs, rounds)
	}
	instances, err := clusterInstances()
	if err != nil {
		return SaturationPoint{}, err
	}
	seqs, err := workloadSeqs(kind)
	if err != nil {
		return SaturationPoint{}, err
	}
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)

	tenants := make([]videodist.ClusterTenant, len(instances))
	for i, in := range instances {
		tenants[i] = videodist.ClusterTenant{Instance: in}
	}
	c, err := videodist.NewCluster(tenants, videodist.ClusterOptions{
		Shards: shards, BatchSize: 16,
		Catalog: workloadCatalog(len(instances), instances[0].NumStreams()),
	})
	if err != nil {
		return SaturationPoint{}, err
	}
	defer c.Close()

	events := 0
	for ti := range seqs {
		events += len(seqs[ti]) * rounds
	}
	hist, err := metrics.NewHistogram(ackLatencyBounds)
	if err != nil {
		return SaturationPoint{}, err
	}
	runtime.GC()

	ctx := context.Background()
	errs := make([]error, len(seqs))
	var wg sync.WaitGroup
	start := time.Now()
	for ti := range seqs {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for _, ev := range seqs[ti] {
					t0 := time.Now()
					var err error
					switch ev.Type {
					case "offer":
						_, err = c.OfferStream(ctx, ev.Tenant, ev.Stream)
					case "depart":
						_, err = c.DepartStream(ctx, ev.Tenant, ev.Stream)
					case "leave":
						_, err = c.UserLeave(ctx, ev.Tenant, ev.User)
					case "join":
						_, err = c.UserJoin(ctx, ev.Tenant, ev.User)
					case "catalog-offer":
						_, err = c.OfferCatalogStream(ctx, ev.Tenant, videodist.CatalogID(ev.CatalogID))
					case "catalog-depart":
						_, err = c.DepartCatalogStream(ctx, ev.Tenant, videodist.CatalogID(ev.CatalogID))
					default:
						err = fmt.Errorf("benchkit: unknown workload event type %q", ev.Type)
					}
					if err != nil {
						errs[ti] = err
						return
					}
					hist.Observe(time.Since(t0).Seconds() * 1e6)
				}
			}
		}(ti)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := errors.Join(errs...); err != nil {
		return SaturationPoint{}, err
	}
	if got := int(hist.Count()); got != events {
		return SaturationPoint{}, fmt.Errorf("benchkit: acked %d of %d events", got, events)
	}

	fs, err := c.Snapshot()
	if err != nil {
		return SaturationPoint{}, err
	}
	if !fs.AllFeasible {
		return SaturationPoint{}, fmt.Errorf("benchkit: fleet infeasible after saturation drive")
	}
	if err := c.Close(); err != nil {
		return SaturationPoint{}, err
	}
	return SaturationPoint{
		Shards:       shards,
		GoMaxProcs:   procs,
		Submitters:   len(seqs),
		Events:       events,
		ElapsedSec:   elapsed.Seconds(),
		EventsPerSec: float64(events) / elapsed.Seconds(),
		AckP50Micros: hist.Quantile(0.50),
		AckP99Micros: hist.Quantile(0.99),
	}, nil
}
