//go:build unix

package benchkit

import "syscall"

// drainDisk flushes all pending filesystem writeback and journal
// activity so a WAL benchmark's timed window starts from a quiet disk.
// Called between StopTimer and StartTimer only — never on a serving
// path.
func drainDisk() { syscall.Sync() }
