// Package online implements Section 5 of Patt-Shamir & Rawitz: the
// online algorithm Allocate for MMD instances whose streams are "small"
// relative to every budget and capacity.
//
// Allocate processes streams in arrival order. Each budget — the m server
// budgets and every user capacity, treated as a virtual budget — carries
// an exponential cost C_A(i) = B_i (mu^{L_A(i)} - 1), where L_A(i) is the
// normalized load. A stream is assigned to the maximal set of interested
// users whose aggregate utility covers the marginal exponential cost
// (Algorithm 2). When every stream costs at most B_i/log2(mu) in each
// measure, no budget is ever violated (Lemma 5.1) and the algorithm is
// (1 + 2*log2(mu))-competitive (Theorem 5.4), where
// mu = 2*gamma*D + 2, D is the total budget count, and gamma is the
// global skew of equation (1).
package online

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sort"

	"repro/internal/mmd"
)

// ErrNotNormalized is returned by NewAllocator when the instance does not
// satisfy the lower bound of equation (1); run Normalize first.
var ErrNotNormalized = errors.New("online: instance does not satisfy the eq. (1) lower bound")

// Normalization holds a globally normalized instance and its skew.
type Normalization struct {
	// Instance is the rescaled copy satisfying equation (1): for every
	// stream S, nonempty user set X within its support, and measure i
	// with c_i(S) > 0,
	//   1 <= (1/D) * sum_{u in X} w_u(S) / c_i(S) <= Gamma.
	Instance *mmd.Instance
	// Gamma is the global skew: the smallest upper bound in eq. (1).
	Gamma float64
	// D is the number of budgets: finite server measures plus every
	// user's finite capacity measures (the paper's m + |U| for mc = 1,
	// generalized to m + sum_u mc_u).
	D int
}

// Mu returns the exponential base mu = 2*Gamma*D + 2 of Section 5.
func (n *Normalization) Mu() float64 { return 2*n.Gamma*float64(n.D) + 2 }

// CompetitiveBound returns the Theorem 5.4 guarantee 1 + 2*log2(mu).
func (n *Normalization) CompetitiveBound() float64 { return 1 + 2*math.Log2(n.Mu()) }

// minMaxSupportUtility returns the smallest positive utility and the
// total utility over the support of stream s, or ok=false when no user
// wants the stream.
func minMaxSupportUtility(in *mmd.Instance, s int) (minW, sumW float64, ok bool) {
	minW = math.Inf(1)
	for u := range in.Users {
		if w := in.Users[u].Utility[s]; w > 0 {
			sumW += w
			if w < minW {
				minW = w
			}
			ok = true
		}
	}
	return minW, sumW, ok
}

// Normalize rescales every cost measure (server budgets and user
// capacities alike) so that equation (1) holds with the smallest possible
// gamma, and returns the normalization. Scaling a cost function together
// with its budget preserves the feasible set and all assignment values.
//
// Measures on which no supported stream has positive cost are left
// untouched (they never constrain an assignment of utility-bearing
// streams). Zero budgets are also left untouched: validation guarantees
// only zero-cost streams exist on such measures.
func Normalize(in *mmd.Instance) (*Normalization, error) {
	out := in.Clone()
	d := 0
	for _, b := range out.Budgets {
		if !math.IsInf(b, 1) {
			d++
		}
	}
	for u := range out.Users {
		for _, k := range out.Users[u].Capacities {
			if !math.IsInf(k, 1) {
				d++
			}
		}
	}
	if d == 0 {
		return nil, ErrNotNormalized
	}
	df := float64(d)

	gamma := 1.0
	// scaleMeasure normalizes one cost row (cost(s) for each stream) and
	// its budget in place, returning the measure's contribution to gamma.
	scaleMeasure := func(cost func(s int) float64, setCost func(s int, v float64), budget *float64) float64 {
		ratio := math.Inf(1) // min over supported streams of minW/(D*c)
		for s := 0; s < out.NumStreams(); s++ {
			c := cost(s)
			if c <= 0 {
				continue
			}
			minW, _, ok := minMaxSupportUtility(out, s)
			if !ok {
				continue
			}
			if r := minW / (df * c); r < ratio {
				ratio = r
			}
		}
		if math.IsInf(ratio, 1) {
			return 1 // measure never constrains supported streams
		}
		for s := 0; s < out.NumStreams(); s++ {
			setCost(s, cost(s)*ratio)
		}
		if !math.IsInf(*budget, 1) {
			*budget *= ratio
		}
		g := 1.0
		for s := 0; s < out.NumStreams(); s++ {
			c := cost(s)
			if c <= 0 {
				continue
			}
			_, sumW, ok := minMaxSupportUtility(out, s)
			if !ok {
				continue
			}
			if r := sumW / (df * c); r > g {
				g = r
			}
		}
		return g
	}

	for i := range out.Budgets {
		i := i
		g := scaleMeasure(
			func(s int) float64 { return out.Streams[s].Costs[i] },
			func(s int, v float64) { out.Streams[s].Costs[i] = v },
			&out.Budgets[i],
		)
		gamma = math.Max(gamma, g)
	}
	for u := range out.Users {
		usr := &out.Users[u]
		for j := range usr.Loads {
			j := j
			g := scaleMeasure(
				func(s int) float64 { return usr.Loads[j][s] },
				func(s int, v float64) { usr.Loads[j][s] = v },
				&usr.Capacities[j],
			)
			gamma = math.Max(gamma, g)
		}
	}
	return &Normalization{Instance: out, Gamma: gamma, D: d}, nil
}

// SmallStreamError reports a stream too large for the Lemma 5.1
// feasibility guarantee.
type SmallStreamError struct {
	// Stream is the offending stream index.
	Stream int
	// Server reports whether a server budget (true) or a user capacity
	// (false) is exceeded.
	Server bool
	// User is the offending user (when Server is false).
	User int
	// Measure is the measure index.
	Measure int
	// Cost and Limit are the stream's cost and the allowed maximum
	// B_i/log2(mu).
	Cost, Limit float64
}

// Error implements the error interface.
func (e *SmallStreamError) Error() string {
	if e.Server {
		return fmt.Sprintf("online: stream %d cost %v on server measure %d exceeds B/log2(mu) = %v",
			e.Stream, e.Cost, e.Measure, e.Limit)
	}
	return fmt.Sprintf("online: stream %d load %v on user %d measure %d exceeds K/log2(mu) = %v",
		e.Stream, e.Cost, e.User, e.Measure, e.Limit)
}

// CheckSmallStreams verifies the small-streams hypothesis of Theorem 5.4
// on a (normalized) instance: c_i(S) <= B_i/log2(mu) for every server
// measure and k^u_j(S) <= K^u_j/log2(mu) for every user measure. It
// returns nil when the hypothesis holds.
func CheckSmallStreams(in *mmd.Instance, mu float64) error {
	logMu := math.Log2(mu)
	for s := range in.Streams {
		for i, c := range in.Streams[s].Costs {
			if limit := in.Budgets[i] / logMu; c > limit+1e-12 {
				return &SmallStreamError{Stream: s, Server: true, Measure: i, Cost: c, Limit: limit}
			}
		}
	}
	for u := range in.Users {
		usr := &in.Users[u]
		for j := range usr.Loads {
			limit := usr.Capacities[j] / logMu
			for s, k := range usr.Loads[j] {
				if usr.Utility[s] > 0 && k > limit+1e-12 {
					return &SmallStreamError{Stream: s, Measure: j, User: u, Cost: k, Limit: limit}
				}
			}
		}
	}
	return nil
}

// Allocator runs Algorithm 2 over a normalized instance.
//
// Allocator is not safe for concurrent use.
type Allocator struct {
	in *mmd.Instance
	mu float64

	serverLoad []float64   // L(i) for server budgets
	userLoad   [][]float64 // L(u,j) for user capacities

	assn  *mmd.Assignment
	value float64

	// cands and users are Offer's scratch buffers, reused across calls
	// so the serving hot path considers (and usually rejects) a stream
	// without allocating. users doubles as the returned slice — see the
	// ownership note on Offer.
	cands []offerCand
	users []int
}

// offerCand is one candidate row of Algorithm 2's maximal-subset
// selection: a user, its utility for the offered stream, and its
// marginal exponential cost.
type offerCand struct {
	u        int
	w        float64
	marginal float64
}

// NewAllocator builds an allocator for a normalized instance with the
// given exponential base mu (use Normalization.Mu()).
func NewAllocator(in *mmd.Instance, mu float64) (*Allocator, error) {
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("online: %w", err)
	}
	if mu <= 1 {
		return nil, fmt.Errorf("online: mu must exceed 1; got %v", mu)
	}
	al := &Allocator{
		in:         in,
		mu:         mu,
		serverLoad: make([]float64, in.M()),
		userLoad:   make([][]float64, in.NumUsers()),
		assn:       mmd.NewAssignment(in.NumUsers()),
	}
	for u := range al.userLoad {
		al.userLoad[u] = make([]float64, len(in.Users[u].Capacities))
	}
	return al, nil
}

// exponentialCost returns C(i) = B * (mu^L - 1) for one budget.
func (al *Allocator) exponentialCost(budget, load float64) float64 {
	return budget * (math.Pow(al.mu, load) - 1)
}

// serverMarginal returns sum_i (c_i(S)/B_i) * C(i) over finite server
// budgets with positive budget.
func (al *Allocator) serverMarginal(s int) float64 {
	total := 0.0
	for i, b := range al.in.Budgets {
		c := al.in.Streams[s].Costs[i]
		if c <= 0 || b <= 0 || math.IsInf(b, 1) {
			continue
		}
		total += c / b * al.exponentialCost(b, al.serverLoad[i])
	}
	return total
}

// userMarginal returns sum_j (k^u_j(S)/K^u_j) * C(u,j) over user u's
// finite positive capacities.
func (al *Allocator) userMarginal(u, s int) float64 {
	usr := &al.in.Users[u]
	total := 0.0
	for j, capJ := range usr.Capacities {
		k := usr.Loads[j][s]
		if k <= 0 || capJ <= 0 || math.IsInf(capJ, 1) {
			continue
		}
		total += k / capJ * al.exponentialCost(capJ, al.userLoad[u][j])
	}
	return total
}

// Offer considers stream s (Algorithm 2 lines 3-8) and returns the users
// it was assigned to, in increasing order, or nil if the stream was
// rejected. Offering the same stream again considers only users that do
// not already hold it.
//
// The returned slice is a scratch buffer owned by the allocator: it is
// valid until the next Offer call, and callers that retain the user set
// must copy it. (Every current caller filters it into its own slice
// before storing.) Offer itself allocates nothing once the buffers are
// warm, which is what keeps the serving hot path allocation-free.
func (al *Allocator) Offer(s int) []int {
	cands := al.cands[:0]
	for u := range al.in.Users {
		w := al.in.Users[u].Utility[s]
		if w <= 0 || al.assn.Has(u, s) {
			continue
		}
		cands = append(cands, offerCand{u: u, w: w, marginal: al.userMarginal(u, s)})
	}
	al.cands = cands
	if len(cands) == 0 {
		return nil
	}
	// Remove users in decreasing order of marginal-cost-to-utility ratio
	// until the aggregate condition holds (the paper's recipe for the
	// maximal subset).
	slices.SortFunc(cands, func(a, b offerCand) int {
		ra := a.marginal * b.w
		rb := b.marginal * a.w
		switch {
		case ra < rb: // keep cheap users first
			return -1
		case ra > rb:
			return 1
		default:
			return a.u - b.u
		}
	})
	serverCost := al.serverMarginal(s)
	sumW, sumMarginal := 0.0, 0.0
	for _, c := range cands {
		sumW += c.w
		sumMarginal += c.marginal
	}
	n := len(cands)
	for n > 0 && serverCost+sumMarginal > sumW {
		n--
		sumW -= cands[n].w
		sumMarginal -= cands[n].marginal
	}
	if n == 0 {
		return nil
	}

	users := al.users[:0]
	for _, c := range cands[:n] {
		users = append(users, c.u)
	}
	sort.Ints(users)
	al.users = users
	al.commit(s, users)
	return users
}

// commit assigns stream s to the given users and updates all loads.
func (al *Allocator) commit(s int, users []int) {
	first := !al.assn.InRange(s)
	for _, u := range users {
		al.assn.Add(u, s)
		al.value += al.in.Users[u].Utility[s]
		usr := &al.in.Users[u]
		for j, capJ := range usr.Capacities {
			if capJ > 0 && !math.IsInf(capJ, 1) {
				al.userLoad[u][j] += usr.Loads[j][s] / capJ
			}
		}
	}
	if first {
		for i, b := range al.in.Budgets {
			if b > 0 && !math.IsInf(b, 1) {
				al.serverLoad[i] += al.in.Streams[s].Costs[i] / b
			}
		}
	}
}

// Assignment returns the current assignment. The caller must not mutate
// it; Clone first.
func (al *Allocator) Assignment() *mmd.Assignment { return al.assn }

// Value returns the utility accumulated so far.
func (al *Allocator) Value() float64 { return al.value }

// ServerLoad returns the normalized load L(i) of server measure i.
func (al *Allocator) ServerLoad(i int) float64 { return al.serverLoad[i] }

// UserLoad returns the normalized load of user u's capacity measure j.
func (al *Allocator) UserLoad(u, j int) float64 { return al.userLoad[u][j] }

// RunSequence offers every stream once in the given order (all streams,
// in index order, when order is nil) and returns the final assignment.
func (al *Allocator) RunSequence(order []int) *mmd.Assignment {
	if order == nil {
		order = make([]int, al.in.NumStreams())
		for s := range order {
			order[s] = s
		}
	}
	for _, s := range order {
		al.Offer(s)
	}
	return al.assn
}

// Solve is a convenience wrapper: normalize the instance, build an
// allocator with mu from the normalization, offer all streams in index
// order, and return the assignment translated back to the original
// instance (assignments are index-based, so no translation is needed
// beyond feasibility checking against the original).
func Solve(in *mmd.Instance) (*mmd.Assignment, *Normalization, error) {
	norm, err := Normalize(in)
	if err != nil {
		return nil, nil, err
	}
	al, err := NewAllocator(norm.Instance, norm.Mu())
	if err != nil {
		return nil, nil, err
	}
	a := al.RunSequence(nil)
	if err := a.CheckFeasible(in); err != nil {
		return nil, nil, fmt.Errorf("online: solve produced infeasible assignment (are streams small?): %w", err)
	}
	return a, norm, nil
}
