package online_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bounds"
	"repro/internal/exact"
	"repro/internal/generator"
	"repro/internal/mmd"
	"repro/internal/online"
)

func smallInstance(seed int64, streams, users, m, mc int) *mmd.Instance {
	in, err := generator.SmallStreams{
		Base: generator.RandomMMD{
			Streams: streams, Users: users, M: m, MC: mc, Seed: seed, Skew: 2,
		},
	}.Generate()
	if err != nil {
		panic(err)
	}
	return in
}

// TestNormalizeEquationOne verifies both sides of equation (1) on the
// normalized instance: for every stream with support and every measure
// with positive cost, 1 <= minW/(D*c) and sumW/(D*c) <= gamma.
func TestNormalizeEquationOne(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(41))}
	property := func(seed int64) bool {
		in, err := generator.RandomMMD{
			Streams: 7, Users: 4, M: 2, MC: 2, Seed: seed, Skew: 4,
		}.Generate()
		if err != nil {
			return false
		}
		norm, err := online.Normalize(in)
		if err != nil {
			return false
		}
		df := float64(norm.D)
		ni := norm.Instance
		const tol = 1e-9
		check := func(cost func(s int) float64) bool {
			for s := 0; s < ni.NumStreams(); s++ {
				c := cost(s)
				if c <= 0 {
					continue
				}
				minW, sumW, ok := online.MinMaxSupportUtility(ni, s)
				if !ok {
					continue
				}
				if minW/(df*c) < 1-tol {
					return false
				}
				if sumW/(df*c) > norm.Gamma+tol {
					return false
				}
			}
			return true
		}
		for i := 0; i < ni.M(); i++ {
			i := i
			if !check(func(s int) float64 { return ni.Streams[s].Costs[i] }) {
				return false
			}
		}
		for u := range ni.Users {
			for j := range ni.Users[u].Loads {
				u, j := u, j
				if !check(func(s int) float64 { return ni.Users[u].Loads[j][s] }) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestNormalizePreservesFeasibility: scaling costs together with budgets
// preserves the feasible set.
func TestNormalizePreservesFeasibility(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(42))}
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in, err := generator.RandomMMD{
			Streams: 6, Users: 3, M: 2, MC: 1, Seed: seed, Skew: 3,
		}.Generate()
		if err != nil {
			return false
		}
		norm, err := online.Normalize(in)
		if err != nil {
			return false
		}
		a := mmd.NewAssignment(in.NumUsers())
		for u := 0; u < in.NumUsers(); u++ {
			for s := 0; s < in.NumStreams(); s++ {
				if r.Float64() < 0.4 {
					a.Add(u, s)
				}
			}
		}
		return (a.CheckFeasible(in) == nil) == (a.CheckFeasible(norm.Instance) == nil)
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeGammaAtLeastOne(t *testing.T) {
	in := smallInstance(43, 8, 4, 2, 1)
	norm, err := online.Normalize(in)
	if err != nil {
		t.Fatal(err)
	}
	if norm.Gamma < 1 {
		t.Fatalf("gamma = %v < 1", norm.Gamma)
	}
	if norm.Mu() <= 2 {
		t.Fatalf("mu = %v, want > 2", norm.Mu())
	}
	if norm.CompetitiveBound() <= 1 {
		t.Fatalf("competitive bound = %v, want > 1", norm.CompetitiveBound())
	}
}

// TestLemma51NoViolation: with small streams, Allocate never violates
// any budget or capacity — across many random arrival orders.
func TestLemma51NoViolation(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 20; trial++ {
		in := smallInstance(rng.Int63(), 20, 5, 2, 1)
		norm, err := online.Normalize(in)
		if err != nil {
			t.Fatal(err)
		}
		if err := online.CheckSmallStreams(norm.Instance, norm.Mu()); err != nil {
			t.Fatalf("trial %d: generator violated small-streams: %v", trial, err)
		}
		al, err := online.NewAllocator(norm.Instance, norm.Mu())
		if err != nil {
			t.Fatal(err)
		}
		order := rng.Perm(in.NumStreams())
		a := al.RunSequence(order)
		if err := a.CheckFeasible(in); err != nil {
			t.Fatalf("trial %d: Lemma 5.1 violated: %v", trial, err)
		}
	}
}

// TestTheorem54Competitive: the online value is within (1 + 2 log2 mu)
// of the optimum (measured against the polynomial upper bound, which can
// only make the test stricter... looser; and against exact OPT on small
// instances for strictness).
func TestTheorem54Competitive(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 10; trial++ {
		in := smallInstance(rng.Int63(), 10, 3, 2, 1)
		a, norm, err := online.Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := exact.Solve(in, exact.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if opt.Value == 0 {
			continue
		}
		bound := norm.CompetitiveBound()
		got := a.Utility(in)
		if got*bound < opt.Value-1e-9 {
			t.Fatalf("trial %d: online %v * bound %v < OPT %v", trial, got, bound, opt.Value)
		}
	}
}

// TestOnlineAgainstUpperBound exercises larger instances where exact
// search is infeasible, using the fractional upper bound.
func TestOnlineAgainstUpperBound(t *testing.T) {
	in := smallInstance(46, 60, 12, 3, 2)
	a, norm, err := online.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	ub := bounds.UpperBound(in)
	got := a.Utility(in)
	if got == 0 && ub > 0 {
		t.Fatalf("online got zero utility with upper bound %v", ub)
	}
	if got*norm.CompetitiveBound() < ub/4-1e-9 {
		// The competitive bound is against OPT <= UB; allow slack since
		// UB can overestimate OPT, but catch gross failures.
		t.Fatalf("online %v too far below upper bound %v (bound %v)", got, ub, norm.CompetitiveBound())
	}
}

func TestOfferIdempotentPerUser(t *testing.T) {
	in := smallInstance(47, 8, 3, 1, 1)
	norm, err := online.Normalize(in)
	if err != nil {
		t.Fatal(err)
	}
	al, err := online.NewAllocator(norm.Instance, norm.Mu())
	if err != nil {
		t.Fatal(err)
	}
	first := al.Offer(0)
	second := al.Offer(0)
	for _, u := range second {
		for _, v := range first {
			if u == v {
				t.Fatalf("user %d assigned stream 0 twice", u)
			}
		}
	}
}

func TestCheckSmallStreamsDetects(t *testing.T) {
	in := smallInstance(48, 6, 3, 2, 1)
	norm, err := online.Normalize(in)
	if err != nil {
		t.Fatal(err)
	}
	// Blow up one cost: must be detected.
	ni := norm.Instance.Clone()
	ni.Streams[0].Costs[0] = ni.Budgets[0]
	err = online.CheckSmallStreams(ni, norm.Mu())
	if err == nil {
		t.Fatal("CheckSmallStreams missed an oversized stream")
	}
	var sse *online.SmallStreamError
	if !asSmallStreamError(err, &sse) {
		t.Fatalf("error type = %T, want *online.SmallStreamError", err)
	}
	if sse.Stream != 0 || !sse.Server {
		t.Fatalf("wrong violation: %+v", sse)
	}
	if sse.Error() == "" {
		t.Fatal("empty error message")
	}
}

func asSmallStreamError(err error, target **online.SmallStreamError) bool {
	e, ok := err.(*online.SmallStreamError)
	if ok {
		*target = e
	}
	return ok
}

func TestNewAllocatorRejectsBadMu(t *testing.T) {
	in := smallInstance(49, 4, 2, 1, 1)
	if _, err := online.NewAllocator(in, 1); err == nil {
		t.Fatal("NewAllocator accepted mu = 1")
	}
}

func TestAllocatorLoadAccessors(t *testing.T) {
	in := smallInstance(50, 10, 3, 2, 1)
	norm, err := online.Normalize(in)
	if err != nil {
		t.Fatal(err)
	}
	al, err := online.NewAllocator(norm.Instance, norm.Mu())
	if err != nil {
		t.Fatal(err)
	}
	al.RunSequence(nil)
	for i := 0; i < norm.Instance.M(); i++ {
		if l := al.ServerLoad(i); l < 0 || l > 1+1e-9 {
			t.Fatalf("server load %d = %v outside [0,1]", i, l)
		}
	}
	for u := range norm.Instance.Users {
		for j := range norm.Instance.Users[u].Capacities {
			if l := al.UserLoad(u, j); l < 0 || l > 1+1e-9 {
				t.Fatalf("user %d load %d = %v outside [0,1]", u, j, l)
			}
		}
	}
	if al.Value() != al.Assignment().Utility(norm.Instance) {
		t.Fatalf("Value() = %v, assignment utility = %v",
			al.Value(), al.Assignment().Utility(norm.Instance))
	}
}

// TestOnlineOrderInvariantFeasibility: feasibility holds for every
// arrival order (value may differ — that is inherent to online).
func TestOnlineOrderInvariantFeasibility(t *testing.T) {
	in := smallInstance(51, 15, 4, 2, 2)
	norm, err := online.Normalize(in)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 10; trial++ {
		al, err := online.NewAllocator(norm.Instance, norm.Mu())
		if err != nil {
			t.Fatal(err)
		}
		a := al.RunSequence(rng.Perm(in.NumStreams()))
		if err := a.CheckFeasible(in); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestMuMonotoneInGamma(t *testing.T) {
	n1 := &online.Normalization{Gamma: 1, D: 3}
	n2 := &online.Normalization{Gamma: 10, D: 3}
	if n1.Mu() >= n2.Mu() {
		t.Fatalf("Mu not monotone: %v vs %v", n1.Mu(), n2.Mu())
	}
	if math.Abs(n1.Mu()-(2*1*3+2)) > 1e-12 {
		t.Fatalf("Mu = %v, want 8", n1.Mu())
	}
}
