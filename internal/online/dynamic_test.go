package online_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mmd"
	"repro/internal/online"
)

func dynamicAllocator(t *testing.T, seed int64) (*mmd.Instance, *online.Allocator) {
	t.Helper()
	in := smallInstance(seed, 20, 4, 2, 1)
	norm, err := online.Normalize(in)
	if err != nil {
		t.Fatal(err)
	}
	al, err := online.NewAllocator(norm.Instance, norm.Mu())
	if err != nil {
		t.Fatal(err)
	}
	return norm.Instance, al
}

func TestReleaseRestoresLoads(t *testing.T) {
	in, al := dynamicAllocator(t, 201)
	al.RunSequence(nil)
	valueBefore := al.Value()

	// Pick an assigned stream and release it.
	var target = -1
	for s := 0; s < in.NumStreams(); s++ {
		if al.Assignment().InRange(s) {
			target = s
			break
		}
	}
	if target < 0 {
		t.Skip("no stream assigned")
	}
	loadBefore := al.ServerLoad(0)
	if !al.Release(target) {
		t.Fatal("Release returned false for an assigned stream")
	}
	if al.Assignment().InRange(target) {
		t.Fatal("stream still in range after Release")
	}
	if al.Value() >= valueBefore {
		t.Fatalf("value did not drop: %v -> %v", valueBefore, al.Value())
	}
	if b := in.Budgets[0]; b > 0 && !math.IsInf(b, 1) && in.Streams[target].Costs[0] > 0 {
		if al.ServerLoad(0) >= loadBefore {
			t.Fatalf("server load did not drop: %v -> %v", loadBefore, al.ServerLoad(0))
		}
	}
	// Releasing again is a no-op.
	if al.Release(target) {
		t.Fatal("Release returned true for an absent stream")
	}
}

func TestReleaseThenReoffer(t *testing.T) {
	// Releasing the LAST admitted stream restores the exact state from
	// just before its admission, so re-offering it must admit the same
	// users again (determinism of the admission rule).
	in, al := dynamicAllocator(t, 202)
	last, lastUsers := -1, []int(nil)
	for s := 0; s < in.NumStreams(); s++ {
		if users := al.Offer(s); len(users) > 0 {
			last, lastUsers = s, users
		}
	}
	if last < 0 {
		t.Skip("no stream admitted")
	}
	al.Release(last)
	again := al.Offer(last)
	if len(again) != len(lastUsers) {
		t.Fatalf("re-offer admitted %v, originally %v", again, lastUsers)
	}
	for i := range again {
		if again[i] != lastUsers[i] {
			t.Fatalf("re-offer admitted %v, originally %v", again, lastUsers)
		}
	}
	if err := al.Assignment().CheckFeasible(in); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseUserPrunesServer(t *testing.T) {
	in, al := dynamicAllocator(t, 203)
	al.RunSequence(nil)
	// Find a user holding something.
	target := -1
	for u := 0; u < in.NumUsers(); u++ {
		if al.Assignment().UserCount(u) > 0 {
			target = u
			break
		}
	}
	if target < 0 {
		t.Skip("no user assigned")
	}
	before := al.Assignment().RangeSize()
	pruned, err := al.ReleaseUser(target)
	if err != nil {
		t.Fatal(err)
	}
	if al.Assignment().UserCount(target) != 0 {
		t.Fatal("user still holds streams after ReleaseUser")
	}
	if al.Assignment().RangeSize() != before-pruned {
		t.Fatalf("range size %d, want %d - %d", al.Assignment().RangeSize(), before, pruned)
	}
	if _, err := al.ReleaseUser(99); err == nil {
		t.Fatal("ReleaseUser accepted an out-of-range user")
	}
}

// TestChurnNeverViolates: under heavy arrival/departure churn the
// allocator keeps every budget satisfied at all times.
func TestChurnNeverViolates(t *testing.T) {
	in, al := dynamicAllocator(t, 204)
	rng := rand.New(rand.NewSource(205))
	live := make(map[int]bool)
	for step := 0; step < 500; step++ {
		s := rng.Intn(in.NumStreams())
		if live[s] && rng.Float64() < 0.5 {
			al.Release(s)
			live[s] = false
		} else {
			if len(al.Offer(s)) > 0 {
				live[s] = true
			}
		}
		if err := al.Assignment().CheckFeasible(in); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

// TestChurnValueAccounting: value always equals the assignment's true
// utility, no matter the churn history.
func TestChurnValueAccounting(t *testing.T) {
	in, al := dynamicAllocator(t, 206)
	rng := rand.New(rand.NewSource(207))
	for step := 0; step < 300; step++ {
		s := rng.Intn(in.NumStreams())
		switch rng.Intn(3) {
		case 0:
			al.Offer(s)
		case 1:
			al.Release(s)
		case 2:
			_, _ = al.ReleaseUser(rng.Intn(in.NumUsers()))
		}
		want := al.Assignment().Utility(in)
		if math.Abs(al.Value()-want) > 1e-6 {
			t.Fatalf("step %d: Value() = %v, assignment utility = %v", step, al.Value(), want)
		}
	}
}
