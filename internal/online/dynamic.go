package online

import (
	"fmt"
	"math"

	"repro/internal/mmd"
)

// Dynamic extension (footnote 1 of the paper): "The algorithm can also
// be extended to scenarios where streams have dynamic resource
// requirements, so long as their requirements are known when they
// arrive. This includes, for example, streams of finite duration." The
// natural mechanism is releasing a departed stream's resources so the
// exponential costs reflect only live load; Release implements that.
// The competitive analysis of Theorem 5.4 applies verbatim only to the
// arrival-only setting; with departures the algorithm becomes the
// heuristic the footnote sketches (exercised by the churn scenario and
// its tests).

// Release withdraws stream s entirely: every user holding it drops it
// and all budget loads are credited back. It reports whether the stream
// was actually held by anyone. Re-offering the stream later is allowed.
func (al *Allocator) Release(s int) bool {
	if !al.assn.InRange(s) {
		return false
	}
	for u := range al.in.Users {
		if !al.assn.Has(u, s) {
			continue
		}
		al.assn.Remove(u, s)
		al.value -= al.in.Users[u].Utility[s]
		usr := &al.in.Users[u]
		for j, capJ := range usr.Capacities {
			if capJ > 0 && !math.IsInf(capJ, 1) {
				al.userLoad[u][j] -= usr.Loads[j][s] / capJ
				if al.userLoad[u][j] < 0 {
					al.userLoad[u][j] = 0 // clamp fp residue
				}
			}
		}
	}
	for i, b := range al.in.Budgets {
		if b > 0 && !math.IsInf(b, 1) {
			al.serverLoad[i] -= al.in.Streams[s].Costs[i] / b
			if al.serverLoad[i] < 0 {
				al.serverLoad[i] = 0
			}
		}
	}
	return true
}

// ReleaseUser withdraws user u from every stream it holds (gateway
// churn). Streams kept alive by other subscribers retain their server
// load; a stream whose last subscriber leaves is pruned from the server
// too. It returns the number of streams dropped from the server.
func (al *Allocator) ReleaseUser(u int) (pruned int, err error) {
	if u < 0 || u >= al.in.NumUsers() {
		return 0, fmt.Errorf("online: release user %d: out of range", u)
	}
	usr := &al.in.Users[u]
	for _, s := range al.assn.UserStreams(u) {
		al.assn.Remove(u, s)
		al.value -= usr.Utility[s]
		for j, capJ := range usr.Capacities {
			if capJ > 0 && !math.IsInf(capJ, 1) {
				al.userLoad[u][j] -= usr.Loads[j][s] / capJ
				if al.userLoad[u][j] < 0 {
					al.userLoad[u][j] = 0
				}
			}
		}
		if !al.assn.InRange(s) {
			pruned++
			for i, b := range al.in.Budgets {
				if b > 0 && !math.IsInf(b, 1) {
					al.serverLoad[i] -= al.in.Streams[s].Costs[i] / b
					if al.serverLoad[i] < 0 {
						al.serverLoad[i] = 0
					}
				}
			}
		}
	}
	return pruned, nil
}

// Install charges an externally computed assignment into the allocator's
// load state, bypassing the admission rule: every (user, stream) pair of
// a not already held is committed, with loads and utilities read from
// the allocator's (normalized) instance. It is the mechanism behind
// re-solve installation — a fresh offline solution becomes the
// allocator's notion of live load, so the exponential costs of future
// offers price the installed lineup correctly. Pairs referencing users
// or streams outside the instance are skipped.
func (al *Allocator) Install(a *mmd.Assignment) {
	numUsers := al.in.NumUsers()
	nS := al.in.NumStreams()
	// Invert the assignment once — O(pairs) instead of an O(|S(A)|·|U|)
	// Has scan — then commit in increasing stream order with users in
	// increasing index order, the exact order the scan produced, so the
	// allocator's accumulated state is unchanged bit for bit.
	users := make([][]int, nS)
	for u := 0; u < a.NumUsers() && u < numUsers; u++ {
		for _, s := range a.UserStreams(u) {
			if s >= 0 && s < nS && !al.assn.Has(u, s) {
				users[s] = append(users[s], u)
			}
		}
	}
	for _, s := range a.Range() {
		if s < 0 || s >= nS {
			continue
		}
		if len(users[s]) > 0 {
			al.commit(s, users[s])
		}
	}
}
