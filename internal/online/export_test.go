package online

// MinMaxSupportUtility exposes minMaxSupportUtility to the external test
// package.
var MinMaxSupportUtility = minMaxSupportUtility
