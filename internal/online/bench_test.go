package online_test

import (
	"testing"

	"repro/internal/online"
)

func BenchmarkNormalize(b *testing.B) {
	in := smallInstance(301, 100, 20, 3, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := online.Normalize(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOfferSequence(b *testing.B) {
	in := smallInstance(302, 100, 20, 2, 1)
	norm, err := online.Normalize(in)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		al, err := online.NewAllocator(norm.Instance, norm.Mu())
		if err != nil {
			b.Fatal(err)
		}
		al.RunSequence(nil)
	}
}

func BenchmarkChurnCycle(b *testing.B) {
	in := smallInstance(303, 50, 10, 2, 1)
	norm, err := online.Normalize(in)
	if err != nil {
		b.Fatal(err)
	}
	al, err := online.NewAllocator(norm.Instance, norm.Mu())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := i % in.NumStreams()
		al.Offer(s)
		al.Release(s)
	}
}
