package mmd

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestCodecRoundTrip(t *testing.T) {
	in := twoStreamInstance()
	in.Budgets[0] = math.Inf(1)
	in.Users[1].Capacities[0] = math.Inf(1)

	var buf bytes.Buffer
	if err := Encode(&buf, in); err != nil {
		t.Fatalf("Encode() = %v", err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("Decode() = %v", err)
	}

	if got.NumStreams() != in.NumStreams() || got.NumUsers() != in.NumUsers() || got.M() != in.M() {
		t.Fatalf("dimensions changed: %d/%d/%d vs %d/%d/%d",
			got.NumStreams(), got.NumUsers(), got.M(),
			in.NumStreams(), in.NumUsers(), in.M())
	}
	if !math.IsInf(got.Budgets[0], 1) {
		t.Errorf("infinite budget not preserved: %v", got.Budgets[0])
	}
	if got.Budgets[1] != in.Budgets[1] {
		t.Errorf("budget 1 = %v, want %v", got.Budgets[1], in.Budgets[1])
	}
	if !math.IsInf(got.Users[1].Capacities[0], 1) {
		t.Errorf("infinite capacity not preserved: %v", got.Users[1].Capacities[0])
	}
	for s := range in.Streams {
		if got.Streams[s].Name != in.Streams[s].Name {
			t.Errorf("stream %d name = %q, want %q", s, got.Streams[s].Name, in.Streams[s].Name)
		}
		for i := range in.Streams[s].Costs {
			if got.Streams[s].Costs[i] != in.Streams[s].Costs[i] {
				t.Errorf("stream %d cost %d mismatch", s, i)
			}
		}
	}
	for u := range in.Users {
		for s := range in.Users[u].Utility {
			if got.Users[u].Utility[s] != in.Users[u].Utility[s] {
				t.Errorf("user %d utility %d mismatch", u, s)
			}
			if got.Users[u].Loads[0][s] != in.Users[u].Loads[0][s] {
				t.Errorf("user %d load %d mismatch", u, s)
			}
		}
	}
}

func TestDecodeRejectsInvalid(t *testing.T) {
	// A negative cost must be rejected at decode time.
	const bad = `{
		"streams": [{"name": "x", "costs": [-1]}],
		"users": [],
		"budgets": [1]
	}`
	if _, err := Decode(strings.NewReader(bad)); err == nil {
		t.Fatal("Decode accepted an invalid instance")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(strings.NewReader("{nope")); err == nil {
		t.Fatal("Decode accepted malformed JSON")
	}
}

func TestDecodeRejectsBadNumber(t *testing.T) {
	const bad = `{
		"streams": [{"name": "x", "costs": [1]}],
		"users": [],
		"budgets": ["huge"]
	}`
	if _, err := Decode(strings.NewReader(bad)); err == nil {
		t.Fatal(`Decode accepted budget "huge"`)
	}
}
