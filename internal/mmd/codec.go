package mmd

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// The JSON codec round-trips instances including infinite budgets and
// capacities, which encoding/json cannot represent as numbers. Infinities
// are encoded as the string "inf".

// jsonNumber wraps a float64 that may be +Inf.
type jsonNumber float64

// MarshalJSON implements json.Marshaler.
func (n jsonNumber) MarshalJSON() ([]byte, error) {
	f := float64(n)
	if math.IsInf(f, 1) {
		return []byte(`"inf"`), nil
	}
	if math.IsNaN(f) || math.IsInf(f, -1) {
		return nil, fmt.Errorf("mmd: cannot encode %v", f)
	}
	return []byte(strconv.FormatFloat(f, 'g', -1, 64)), nil
}

// UnmarshalJSON implements json.Unmarshaler.
func (n *jsonNumber) UnmarshalJSON(data []byte) error {
	if string(data) == `"inf"` {
		*n = jsonNumber(math.Inf(1))
		return nil
	}
	f, err := strconv.ParseFloat(string(data), 64)
	if err != nil {
		return fmt.Errorf("mmd: decode number %q: %w", data, err)
	}
	*n = jsonNumber(f)
	return nil
}

type jsonStream struct {
	Name  string    `json:"name"`
	Costs []float64 `json:"costs"`
}

type jsonUser struct {
	Name       string       `json:"name"`
	Utility    []float64    `json:"utility"`
	Loads      [][]float64  `json:"loads"`
	Capacities []jsonNumber `json:"capacities"`
}

type jsonInstance struct {
	Streams []jsonStream `json:"streams"`
	Users   []jsonUser   `json:"users"`
	Budgets []jsonNumber `json:"budgets"`
}

func toWire(in *Instance) *jsonInstance {
	w := &jsonInstance{
		Streams: make([]jsonStream, len(in.Streams)),
		Users:   make([]jsonUser, len(in.Users)),
		Budgets: make([]jsonNumber, len(in.Budgets)),
	}
	for s := range in.Streams {
		w.Streams[s] = jsonStream{Name: in.Streams[s].Name, Costs: in.Streams[s].Costs}
	}
	for u := range in.Users {
		usr := &in.Users[u]
		caps := make([]jsonNumber, len(usr.Capacities))
		for j, c := range usr.Capacities {
			caps[j] = jsonNumber(c)
		}
		w.Users[u] = jsonUser{
			Name:       usr.Name,
			Utility:    usr.Utility,
			Loads:      usr.Loads,
			Capacities: caps,
		}
	}
	for i, b := range in.Budgets {
		w.Budgets[i] = jsonNumber(b)
	}
	return w
}

func fromWire(w *jsonInstance) *Instance {
	in := &Instance{
		Streams: make([]Stream, len(w.Streams)),
		Users:   make([]User, len(w.Users)),
		Budgets: make([]float64, len(w.Budgets)),
	}
	for s := range w.Streams {
		in.Streams[s] = Stream{Name: w.Streams[s].Name, Costs: w.Streams[s].Costs}
	}
	for u := range w.Users {
		src := &w.Users[u]
		caps := make([]float64, len(src.Capacities))
		for j, c := range src.Capacities {
			caps[j] = float64(c)
		}
		in.Users[u] = User{
			Name:       src.Name,
			Utility:    src.Utility,
			Loads:      src.Loads,
			Capacities: caps,
		}
	}
	for i, b := range w.Budgets {
		in.Budgets[i] = float64(b)
	}
	return in
}

// Encode writes the instance as indented JSON.
func Encode(w io.Writer, in *Instance) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(toWire(in)); err != nil {
		return fmt.Errorf("mmd: encode instance: %w", err)
	}
	return nil
}

// Decode reads a JSON instance and validates it.
func Decode(r io.Reader) (*Instance, error) {
	var wire jsonInstance
	if err := json.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("mmd: decode instance: %w", err)
	}
	in := fromWire(&wire)
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("mmd: decoded instance invalid: %w", err)
	}
	return in, nil
}
