package mmd

// LoadLedger maintains the aggregate feasibility state of one running
// assignment incrementally: the per-measure server cost of the range and
// every user's per-measure load. Add and Remove are O(m + m_c) in the
// number of measures — the guarded-admission question "does delivering
// stream s to user u keep every budget and capacity?" is answered by
// FitsDelta/CanAdmit in O(m + m_c) instead of the full O(|S(A)|·m +
// Σ_u |A(u)|·m_c) rescan that Assignment.CheckFeasible performs. The
// paper's own algorithms are linear-time per event (the Section 2 greedy
// maintains residuals incrementally; the Section 5 allocator charges
// exponential costs incrementally); the ledger gives the admission
// backstop the same per-event cost profile.
//
// The ledger is bookkeeping alongside an Assignment, not a replacement
// for it: callers mirror every Assignment.Add/Remove with the matching
// ledger call (or Rebuild from the assignment wholesale, as the
// make-before-break Reinstall paths do). Invariant expected by the delta
// queries: the mirrored assignment is feasible — policies that only ever
// admit through FitsDelta and remove freely preserve it, because costs
// and loads are nonnegative.
//
// Like every incremental accumulator (compare ThresholdPolicy's running
// costs), the ledger sums floats in event order rather than sorted
// stream order, so totals can differ from a fresh rescan in the last
// ulp. Rebuild re-sums in sorted order, matching CheckFeasible
// bit-for-bit; the differential tests in internal/headend pin the
// policy-level decisions to the reference rescan implementation.
//
// A LoadLedger is not safe for concurrent use.
type LoadLedger struct {
	in *Instance
	// holders[s] counts users currently holding stream s; the stream
	// contributes its server costs while the count is positive.
	holders []int
	// chargeScale[s] is the server-cost scale stream s was charged at
	// when it entered the range (1 outside the shared-catalog path). The
	// refund on the last holder's Remove uses the recorded scale, so
	// charge and credit always cancel exactly.
	chargeScale []float64
	// serverCost[i] is c_i(S(A)), the range cost in measure i.
	serverCost []float64
	// userLoad[u][j] is k^u_j(A(u)), user u's load in capacity measure j.
	userLoad [][]float64
}

// NewLoadLedger returns an empty ledger for the instance.
func NewLoadLedger(in *Instance) *LoadLedger {
	l := &LoadLedger{
		in:          in,
		holders:     make([]int, in.NumStreams()),
		chargeScale: make([]float64, in.NumStreams()),
		serverCost:  make([]float64, in.M()),
		userLoad:    make([][]float64, in.NumUsers()),
	}
	for i := range l.chargeScale {
		l.chargeScale[i] = 1
	}
	for u := range l.userLoad {
		l.userLoad[u] = make([]float64, len(in.Users[u].Capacities))
	}
	return l
}

// Add charges the delivery of stream s to user u: the user's loads
// always, the server costs only when s enters the range. Mirror it with
// Assignment.Add; never double-charge a pair the assignment already
// holds. O(m + m_c).
func (l *LoadLedger) Add(u, s int) { l.AddScaled(u, s, 1) }

// AddScaled is Add with the server-cost delta priced at serverScale —
// the shared-catalog discount: a head-end admitting a stream whose
// origin another tenant already pays charges only the multicast-
// replication fraction of the stream's cost vector against its own
// budgets. User loads are never scaled (each gateway still receives the
// full stream over its own downlink). The scale applies only when s
// enters the range and is recorded so the eventual refund matches;
// serverScale 1 is bit-identical to Add.
func (l *LoadLedger) AddScaled(u, s int, serverScale float64) {
	if l.holders[s]++; l.holders[s] == 1 {
		l.chargeScale[s] = serverScale
		for i, c := range l.in.Streams[s].Costs {
			if serverScale != 1 {
				c *= serverScale
			}
			l.serverCost[i] += c
		}
	}
	usr := &l.in.Users[u]
	for j := range usr.Capacities {
		l.userLoad[u][j] += usr.Loads[j][s]
	}
}

// Remove credits back the delivery of stream s to user u, releasing the
// server costs (at the scale they were charged at) when the last holder
// leaves. Small negative floating-point residues are clamped to zero.
// O(m + m_c).
func (l *LoadLedger) Remove(u, s int) {
	if l.holders[s]--; l.holders[s] == 0 {
		scale := l.chargeScale[s]
		l.chargeScale[s] = 1
		for i, c := range l.in.Streams[s].Costs {
			if scale != 1 {
				c *= scale
			}
			l.serverCost[i] -= c
			if l.serverCost[i] < 0 {
				l.serverCost[i] = 0
			}
		}
	}
	usr := &l.in.Users[u]
	for j := range usr.Capacities {
		l.userLoad[u][j] -= usr.Loads[j][s]
		if l.userLoad[u][j] < 0 {
			l.userLoad[u][j] = 0
		}
	}
}

// FitsDelta reports whether delivering stream s to user u keeps every
// server budget and every capacity of u, under the same tolerance as
// CheckFeasible. Assuming the mirrored assignment is feasible, this is
// exactly the guarded-admission question: the delta touches only the
// server measures (when s is not yet in the range) and u's own
// capacities, so no other constraint can newly fail. O(m + m_c),
// allocation-free (use CanAdmit for a diagnosed rejection).
func (l *LoadLedger) FitsDelta(u, s int) bool { return l.FitsDeltaScaled(u, s, 1) }

// FitsDeltaScaled is FitsDelta with the server-cost delta priced at
// serverScale (see AddScaled). When s is already in the range the server
// side was charged at admission time, so only u's capacities are
// checked; serverScale 1 is bit-identical to FitsDelta. O(m + m_c),
// allocation-free.
func (l *LoadLedger) FitsDeltaScaled(u, s int, serverScale float64) bool {
	if l.holders[s] == 0 {
		for i, c := range l.in.Streams[s].Costs {
			if serverScale != 1 {
				c *= serverScale
			}
			if exceedsLimit(l.serverCost[i]+c, l.in.Budgets[i]) {
				return false
			}
		}
	}
	usr := &l.in.Users[u]
	for j := range usr.Capacities {
		if exceedsLimit(l.userLoad[u][j]+usr.Loads[j][s], usr.Capacities[j]) {
			return false
		}
	}
	return true
}

// CanAdmit is FitsDelta with a diagnosis: it returns nil when the pair
// fits and a *FeasibilityError describing the first violated constraint
// otherwise (server budgets in measure order, then u's capacities).
func (l *LoadLedger) CanAdmit(u, s int) error {
	if l.holders[s] == 0 {
		for i, c := range l.in.Streams[s].Costs {
			if total, limit := l.serverCost[i]+c, l.in.Budgets[i]; exceedsLimit(total, limit) {
				return &FeasibilityError{Server: true, Measure: i, Total: total, Limit: limit}
			}
		}
	}
	usr := &l.in.Users[u]
	for j := range usr.Capacities {
		if total, limit := l.userLoad[u][j]+usr.Loads[j][s], usr.Capacities[j]; exceedsLimit(total, limit) {
			return &FeasibilityError{User: u, Measure: j, Total: total, Limit: limit}
		}
	}
	return nil
}

// Rebuild resets the ledger to the aggregate state of assn, summing in
// increasing stream order so the totals are bit-identical to a fresh
// CheckFeasible accumulation over the same assignment, with every
// charge scale reset to 1 (full isolated pricing). It is
// RebuildScaled(assn, nil); use RebuildScaled to preserve earned
// discounts across a reinstall. O(instance).
func (l *LoadLedger) Rebuild(assn *Assignment) { l.RebuildScaled(assn, nil) }

// RebuildScaled resets the ledger to the aggregate state of assn with
// each in-range stream's server cost priced at scaleOf(s) (nil scaleOf
// means full price everywhere, exactly Rebuild). The make-before-break
// reinstall paths pass the charge scales their previous lineup had
// earned for the streams the new lineup retains: a retained
// shared-catalog stream keeps its discount across an install — its
// origin is still paid for elsewhere, so re-pricing it at full cost
// would both overstate the budget draw and desynchronize the ledger
// from the refund recorded at its eventual departure. Streams the new
// lineup picks up fresh carry scale 1 unless the caller says otherwise.
// O(instance).
func (l *LoadLedger) RebuildScaled(assn *Assignment, scaleOf func(s int) float64) {
	clear(l.holders)
	clear(l.serverCost)
	for s := range l.chargeScale {
		l.chargeScale[s] = 1
	}
	for u := range l.userLoad {
		clear(l.userLoad[u])
	}
	for u, set := range assn.sets {
		if u >= len(l.userLoad) {
			break
		}
		usr := &l.in.Users[u]
		for _, s := range set {
			if s >= len(l.holders) {
				continue
			}
			l.holders[s]++
			for j := range usr.Capacities {
				l.userLoad[u][j] += usr.Loads[j][s]
			}
		}
	}
	for _, s := range assn.rangeList {
		if s < len(l.holders) && l.holders[s] > 0 {
			scale := 1.0
			if scaleOf != nil {
				scale = scaleOf(s)
			}
			l.chargeScale[s] = scale
			for i, c := range l.in.Streams[s].Costs {
				if scale != 1 {
					c *= scale
				}
				l.serverCost[i] += c
			}
		}
	}
}

// ServerCost returns the maintained c_i(S(A)) for measure i.
func (l *LoadLedger) ServerCost(i int) float64 { return l.serverCost[i] }

// UserLoad returns the maintained k^u_j(A(u)).
func (l *LoadLedger) UserLoad(u, j int) float64 { return l.userLoad[u][j] }

// Holders returns the number of users currently holding stream s.
func (l *LoadLedger) Holders(s int) int { return l.holders[s] }

// ChargeScale returns the server-cost scale stream s was charged at (1
// when s is not in the range or was admitted outside the catalog path).
func (l *LoadLedger) ChargeScale(s int) float64 { return l.chargeScale[s] }

// StreamCostSum returns the scalar sum of stream s's server cost vector
// — the "origin cost units" the shared-catalog accounting reports
// savings in.
func (in *Instance) StreamCostSum(s int) float64 {
	total := 0.0
	for _, c := range in.Streams[s].Costs {
		total += c
	}
	return total
}
