package mmd

import (
	"bytes"
	"math/rand"
	"testing"
)

func benchInstance(b *testing.B, streams, users int) *Instance {
	b.Helper()
	return randomInstance(rand.New(rand.NewSource(7)), streams, users)
}

func BenchmarkAssignmentAddRemove(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := NewAssignment(20)
		for u := 0; u < 20; u++ {
			for s := 0; s < 50; s++ {
				a.Add(u, s)
			}
		}
		for u := 0; u < 20; u++ {
			for s := 0; s < 50; s += 2 {
				a.Remove(u, s)
			}
		}
	}
}

// BenchmarkCheckFeasible compares the full-rescan feasibility check
// (the retained reference) against the incremental ledger on the same
// assignment: "rescan" re-verifies everything, "ledger/fitsdelta"
// answers the per-admission question from maintained sums, and
// "ledger/rebuild" is the make-before-break resync cost.
func BenchmarkCheckFeasible(b *testing.B) {
	in := benchInstance(b, 100, 20)
	a := NewAssignment(in.NumUsers())
	setup := NewLoadLedger(in)
	rng := rand.New(rand.NewSource(8))
	for u := 0; u < in.NumUsers(); u++ {
		for s := 0; s < in.NumStreams(); s++ {
			// Guarded fill: the assignment stays feasible, so the rescan
			// sub-benchmark measures a full verification pass rather than
			// an early-exit on the first violation.
			if rng.Float64() < 0.2 && setup.FitsDelta(u, s) {
				setup.Add(u, s)
				a.Add(u, s)
			}
		}
	}
	if err := a.CheckFeasible(in); err != nil {
		b.Fatal(err)
	}
	b.Run("rescan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = a.CheckFeasible(in)
		}
	})
	b.Run("ledger/fitsdelta", func(b *testing.B) {
		l := NewLoadLedger(in)
		l.Rebuild(a)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = l.FitsDelta(i%in.NumUsers(), i%in.NumStreams())
		}
	})
	b.Run("ledger/rebuild", func(b *testing.B) {
		l := NewLoadLedger(in)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l.Rebuild(a)
		}
	})
}

// BenchmarkAssignmentReads covers the hot read surface the serving path
// leans on; with the sorted-slice representation every sub-benchmark is
// a straight walk (UserStreams/Range are the single-alloc copies, the
// value methods are allocation-free).
func BenchmarkAssignmentReads(b *testing.B) {
	in := benchInstance(b, 100, 20)
	a := NewAssignment(in.NumUsers())
	rng := rand.New(rand.NewSource(9))
	for u := 0; u < in.NumUsers(); u++ {
		for s := 0; s < in.NumStreams(); s++ {
			if rng.Float64() < 0.2 {
				a.Add(u, s)
			}
		}
	}
	b.Run("Range", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = a.Range()
		}
	})
	b.Run("UserStreams", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = a.UserStreams(i % in.NumUsers())
		}
	})
	b.Run("Utility", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = a.Utility(in)
		}
	})
	b.Run("ServerCost", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = a.ServerCost(in, 0)
		}
	})
	b.Run("Has", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = a.Has(i%in.NumUsers(), i%in.NumStreams())
		}
	})
}

func BenchmarkUtility(b *testing.B) {
	in := benchInstance(b, 100, 20)
	a := NewAssignment(in.NumUsers())
	for u := 0; u < in.NumUsers(); u++ {
		for s := 0; s < in.NumStreams(); s += 3 {
			a.Add(u, s)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Utility(in)
	}
}

func BenchmarkNormalizeLoads(b *testing.B) {
	in := benchInstance(b, 100, 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NormalizeLoads(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecRoundTrip(b *testing.B) {
	in := benchInstance(b, 50, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Encode(&buf, in); err != nil {
			b.Fatal(err)
		}
		if _, err := Decode(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
