package mmd

import (
	"bytes"
	"math/rand"
	"testing"
)

func benchInstance(b *testing.B, streams, users int) *Instance {
	b.Helper()
	return randomInstance(rand.New(rand.NewSource(7)), streams, users)
}

func BenchmarkAssignmentAddRemove(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := NewAssignment(20)
		for u := 0; u < 20; u++ {
			for s := 0; s < 50; s++ {
				a.Add(u, s)
			}
		}
		for u := 0; u < 20; u++ {
			for s := 0; s < 50; s += 2 {
				a.Remove(u, s)
			}
		}
	}
}

func BenchmarkCheckFeasible(b *testing.B) {
	in := benchInstance(b, 100, 20)
	a := NewAssignment(in.NumUsers())
	rng := rand.New(rand.NewSource(8))
	for u := 0; u < in.NumUsers(); u++ {
		for s := 0; s < in.NumStreams(); s++ {
			if rng.Float64() < 0.2 {
				a.Add(u, s)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.CheckFeasible(in)
	}
}

func BenchmarkUtility(b *testing.B) {
	in := benchInstance(b, 100, 20)
	a := NewAssignment(in.NumUsers())
	for u := 0; u < in.NumUsers(); u++ {
		for s := 0; s < in.NumStreams(); s += 3 {
			a.Add(u, s)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Utility(in)
	}
}

func BenchmarkNormalizeLoads(b *testing.B) {
	in := benchInstance(b, 100, 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NormalizeLoads(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecRoundTrip(b *testing.B) {
	in := benchInstance(b, 50, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Encode(&buf, in); err != nil {
			b.Fatal(err)
		}
		if _, err := Decode(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
