package mmd

import (
	"fmt"
	"sort"
)

// Assignment maps each user to a set of streams. The server transmits the
// union of all per-user sets (the range S(A)). An Assignment is tied to
// the stream/user indexing of the instance it was created for.
//
// Assignment is not safe for concurrent mutation.
type Assignment struct {
	// sets[u] holds the stream indices assigned to user u.
	sets []map[int]struct{}
	// rangeCount[s] counts how many users hold stream s; a stream is in
	// the range while its count is positive.
	rangeCount map[int]int
}

// NewAssignment returns an empty assignment for an instance with
// numUsers users.
func NewAssignment(numUsers int) *Assignment {
	sets := make([]map[int]struct{}, numUsers)
	for u := range sets {
		sets[u] = make(map[int]struct{})
	}
	return &Assignment{sets: sets, rangeCount: make(map[int]int)}
}

// NumUsers returns the number of users the assignment was created for.
func (a *Assignment) NumUsers() int { return len(a.sets) }

// Add assigns stream s to user u. Adding an already-assigned pair is a
// no-op.
func (a *Assignment) Add(u, s int) {
	if _, ok := a.sets[u][s]; ok {
		return
	}
	a.sets[u][s] = struct{}{}
	a.rangeCount[s]++
}

// Remove unassigns stream s from user u. Removing an absent pair is a
// no-op.
func (a *Assignment) Remove(u, s int) {
	if _, ok := a.sets[u][s]; !ok {
		return
	}
	delete(a.sets[u], s)
	if a.rangeCount[s]--; a.rangeCount[s] == 0 {
		delete(a.rangeCount, s)
	}
}

// Has reports whether stream s is assigned to user u.
func (a *Assignment) Has(u, s int) bool {
	_, ok := a.sets[u][s]
	return ok
}

// UserStreams returns the streams assigned to user u in increasing index
// order. The returned slice is owned by the caller.
func (a *Assignment) UserStreams(u int) []int {
	out := make([]int, 0, len(a.sets[u]))
	for s := range a.sets[u] {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// UserCount returns |A(u)|.
func (a *Assignment) UserCount(u int) int { return len(a.sets[u]) }

// Range returns S(A), the set of streams assigned to at least one user,
// in increasing index order. The returned slice is owned by the caller.
func (a *Assignment) Range() []int {
	out := make([]int, 0, len(a.rangeCount))
	for s := range a.rangeCount {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// InRange reports whether stream s is assigned to at least one user.
func (a *Assignment) InRange(s int) bool { return a.rangeCount[s] > 0 }

// RangeSize returns |S(A)|.
func (a *Assignment) RangeSize() int { return len(a.rangeCount) }

// Pairs returns the total number of assigned (user, stream) pairs.
func (a *Assignment) Pairs() int {
	n := 0
	for u := range a.sets {
		n += len(a.sets[u])
	}
	return n
}

// Clone returns a deep copy.
func (a *Assignment) Clone() *Assignment {
	out := NewAssignment(len(a.sets))
	for u := range a.sets {
		for s := range a.sets[u] {
			out.sets[u][s] = struct{}{}
		}
	}
	for s, c := range a.rangeCount {
		out.rangeCount[s] = c
	}
	return out
}

// Utility returns w(A) = sum_u sum_{S in A(u)} w_u(S) for the given
// instance. All value methods sum in increasing index order so results
// are bit-for-bit deterministic across runs.
func (a *Assignment) Utility(in *Instance) float64 {
	total := 0.0
	for u := range a.sets {
		total += a.UserUtility(in, u)
	}
	return total
}

// UserUtility returns w_u(A) = sum_{S in A(u)} w_u(S).
func (a *Assignment) UserUtility(in *Instance, u int) float64 {
	total := 0.0
	usr := &in.Users[u]
	for _, s := range a.UserStreams(u) {
		total += usr.Utility[s]
	}
	return total
}

// ServerCost returns c_i(A), the cost of the range of A in measure i.
func (a *Assignment) ServerCost(in *Instance, i int) float64 {
	total := 0.0
	for _, s := range a.Range() {
		total += in.Streams[s].Costs[i]
	}
	return total
}

// UserLoad returns k^u_j(A), the load of A(u) on capacity measure j of
// user u.
func (a *Assignment) UserLoad(in *Instance, u, j int) float64 {
	total := 0.0
	loads := in.Users[u].Loads[j]
	for _, s := range a.UserStreams(u) {
		total += loads[s]
	}
	return total
}

// Restrict removes every assigned pair (u, s) for which keep returns
// false. It mutates the assignment in place and returns it.
func (a *Assignment) Restrict(keep func(u, s int) bool) *Assignment {
	for u := range a.sets {
		for s := range a.sets[u] {
			if !keep(u, s) {
				a.Remove(u, s)
			}
		}
	}
	return a
}

// RestrictToStreams removes every assigned stream not present in the
// given set. It mutates the assignment in place and returns it.
func (a *Assignment) RestrictToStreams(allowed map[int]struct{}) *Assignment {
	return a.Restrict(func(_, s int) bool {
		_, ok := allowed[s]
		return ok
	})
}

// feasibilityTolerance absorbs floating-point accumulation error when
// comparing sums against budgets and capacities.
const feasibilityTolerance = 1e-9

// FeasibilityError describes a violated constraint.
type FeasibilityError struct {
	// Server reports whether a server budget (true) or user capacity
	// (false) is violated.
	Server bool
	// User is the violating user index (meaningful when Server is false).
	User int
	// Measure is the violated budget or capacity measure index.
	Measure int
	// Total is the accumulated cost or load.
	Total float64
	// Limit is the budget or capacity that Total exceeds.
	Limit float64
}

// Error implements the error interface.
func (e *FeasibilityError) Error() string {
	if e.Server {
		return fmt.Sprintf("mmd: server budget %d violated: cost %v > budget %v",
			e.Measure, e.Total, e.Limit)
	}
	return fmt.Sprintf("mmd: user %d capacity %d violated: load %v > capacity %v",
		e.User, e.Measure, e.Total, e.Limit)
}

// CheckFeasible verifies that the assignment satisfies every server
// budget and every user capacity of the instance, within a small
// floating-point tolerance. It returns nil when feasible and a
// *FeasibilityError describing the first violation otherwise.
func (a *Assignment) CheckFeasible(in *Instance) error {
	for i := range in.Budgets {
		cost := a.ServerCost(in, i)
		if limit := in.Budgets[i]; cost > limit*(1+feasibilityTolerance)+feasibilityTolerance {
			return &FeasibilityError{Server: true, Measure: i, Total: cost, Limit: limit}
		}
	}
	for u := range a.sets {
		usr := &in.Users[u]
		for j := range usr.Capacities {
			load := a.UserLoad(in, u, j)
			if limit := usr.Capacities[j]; load > limit*(1+feasibilityTolerance)+feasibilityTolerance {
				return &FeasibilityError{User: u, Measure: j, Total: load, Limit: limit}
			}
		}
	}
	return nil
}

// Equal reports whether two assignments contain exactly the same pairs.
func (a *Assignment) Equal(b *Assignment) bool {
	if len(a.sets) != len(b.sets) {
		return false
	}
	for u := range a.sets {
		if len(a.sets[u]) != len(b.sets[u]) {
			return false
		}
		for s := range a.sets[u] {
			if _, ok := b.sets[u][s]; !ok {
				return false
			}
		}
	}
	return true
}

// String renders a compact human-readable description.
func (a *Assignment) String() string {
	return fmt.Sprintf("Assignment{users: %d, range: %d, pairs: %d}",
		len(a.sets), len(a.rangeCount), a.Pairs())
}
