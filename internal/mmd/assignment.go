package mmd

import (
	"fmt"
	"sort"
)

// Assignment maps each user to a set of streams. The server transmits the
// union of all per-user sets (the range S(A)). An Assignment is tied to
// the stream/user indexing of the instance it was created for.
//
// Internally every per-user set and the range are maintained as sorted
// int slices, so the read paths (UserStreams, Range, the value methods,
// Equal, Clone) walk memory in increasing stream order without hashing,
// re-sorting, or allocating — the representation the serving hot path
// leans on (see LoadLedger). Add and Remove are O(log k) to locate plus
// O(k) to shift within the touched set; per-user sets are small in every
// workload here, so the shift is cache-friendly and beats the old
// map-of-sets on both time and allocations.
//
// Stream indices must be nonnegative; Add ignores negative indices.
// Assignment is not safe for concurrent mutation.
type Assignment struct {
	// sets[u] holds the stream indices assigned to user u, sorted
	// ascending.
	sets [][]int
	// rangeCount[s] counts how many users hold stream s (grown on
	// demand); a stream is in the range while its count is positive.
	rangeCount []int
	// rangeList is S(A): the streams with a positive count, sorted
	// ascending.
	rangeList []int
}

// NewAssignment returns an empty assignment for an instance with
// numUsers users.
func NewAssignment(numUsers int) *Assignment {
	return &Assignment{sets: make([][]int, numUsers)}
}

// insertSorted inserts v into the ascending slice if absent. It returns
// the slice and whether v was inserted.
func insertSorted(sorted []int, v int) ([]int, bool) {
	i := sort.SearchInts(sorted, v)
	if i < len(sorted) && sorted[i] == v {
		return sorted, false
	}
	if len(sorted) == cap(sorted) {
		// Grow with a floor of 8 slots: user stream sets and range
		// lists start tiny, and the default 1->2->4 doubling charges
		// the serving hot path several reallocations per set before
		// amortization kicks in.
		grown := make([]int, len(sorted), max(8, 2*cap(sorted)))
		copy(grown, sorted)
		sorted = grown
	}
	sorted = append(sorted, 0)
	copy(sorted[i+1:], sorted[i:])
	sorted[i] = v
	return sorted, true
}

// removeSorted deletes v from the ascending slice if present. It returns
// the slice and whether v was removed.
func removeSorted(sorted []int, v int) ([]int, bool) {
	i := sort.SearchInts(sorted, v)
	if i >= len(sorted) || sorted[i] != v {
		return sorted, false
	}
	return append(sorted[:i], sorted[i+1:]...), true
}

// NumUsers returns the number of users the assignment was created for.
func (a *Assignment) NumUsers() int { return len(a.sets) }

// Add assigns stream s to user u. Adding an already-assigned pair is a
// no-op, as is a negative stream index.
func (a *Assignment) Add(u, s int) {
	if s < 0 {
		return
	}
	set, inserted := insertSorted(a.sets[u], s)
	if !inserted {
		return
	}
	a.sets[u] = set
	if s >= len(a.rangeCount) {
		// append-grow so ascending insertion (the common solver order)
		// amortizes instead of reallocating on every new maximum.
		a.rangeCount = append(a.rangeCount, make([]int, s+1-len(a.rangeCount))...)
	}
	if a.rangeCount[s]++; a.rangeCount[s] == 1 {
		a.rangeList, _ = insertSorted(a.rangeList, s)
	}
}

// Remove unassigns stream s from user u. Removing an absent pair is a
// no-op.
func (a *Assignment) Remove(u, s int) {
	set, removed := removeSorted(a.sets[u], s)
	if !removed {
		return
	}
	a.sets[u] = set
	if a.rangeCount[s]--; a.rangeCount[s] == 0 {
		a.rangeList, _ = removeSorted(a.rangeList, s)
	}
}

// Has reports whether stream s is assigned to user u.
func (a *Assignment) Has(u, s int) bool {
	set := a.sets[u]
	i := sort.SearchInts(set, s)
	return i < len(set) && set[i] == s
}

// UserStreams returns the streams assigned to user u in increasing index
// order. The returned slice is owned by the caller (one allocation, no
// sort — the set is kept sorted).
func (a *Assignment) UserStreams(u int) []int {
	return append([]int(nil), a.sets[u]...)
}

// UserCount returns |A(u)|.
func (a *Assignment) UserCount(u int) int { return len(a.sets[u]) }

// Range returns S(A), the set of streams assigned to at least one user,
// in increasing index order. The returned slice is owned by the caller
// (one allocation, no sort).
func (a *Assignment) Range() []int {
	return append([]int(nil), a.rangeList...)
}

// InRange reports whether stream s is assigned to at least one user.
func (a *Assignment) InRange(s int) bool {
	return s >= 0 && s < len(a.rangeCount) && a.rangeCount[s] > 0
}

// RangeSize returns |S(A)|.
func (a *Assignment) RangeSize() int { return len(a.rangeList) }

// Pairs returns the total number of assigned (user, stream) pairs.
func (a *Assignment) Pairs() int {
	n := 0
	for u := range a.sets {
		n += len(a.sets[u])
	}
	return n
}

// Clone returns a deep copy.
func (a *Assignment) Clone() *Assignment {
	out := &Assignment{
		sets:       make([][]int, len(a.sets)),
		rangeCount: append([]int(nil), a.rangeCount...),
		rangeList:  append([]int(nil), a.rangeList...),
	}
	for u := range a.sets {
		if len(a.sets[u]) > 0 {
			out.sets[u] = append([]int(nil), a.sets[u]...)
		}
	}
	return out
}

// Utility returns w(A) = sum_u sum_{S in A(u)} w_u(S) for the given
// instance. All value methods sum in increasing index order so results
// are bit-for-bit deterministic across runs.
func (a *Assignment) Utility(in *Instance) float64 {
	total := 0.0
	for u := range a.sets {
		total += a.UserUtility(in, u)
	}
	return total
}

// UserUtility returns w_u(A) = sum_{S in A(u)} w_u(S).
func (a *Assignment) UserUtility(in *Instance, u int) float64 {
	total := 0.0
	usr := &in.Users[u]
	for _, s := range a.sets[u] {
		total += usr.Utility[s]
	}
	return total
}

// ServerCost returns c_i(A), the cost of the range of A in measure i.
func (a *Assignment) ServerCost(in *Instance, i int) float64 {
	total := 0.0
	for _, s := range a.rangeList {
		total += in.Streams[s].Costs[i]
	}
	return total
}

// UserLoad returns k^u_j(A), the load of A(u) on capacity measure j of
// user u.
func (a *Assignment) UserLoad(in *Instance, u, j int) float64 {
	total := 0.0
	loads := in.Users[u].Loads[j]
	for _, s := range a.sets[u] {
		total += loads[s]
	}
	return total
}

// Restrict removes every assigned pair (u, s) for which keep returns
// false. It mutates the assignment in place and returns it.
func (a *Assignment) Restrict(keep func(u, s int) bool) *Assignment {
	for u := range a.sets {
		kept := a.sets[u][:0]
		for _, s := range a.sets[u] {
			if keep(u, s) {
				kept = append(kept, s)
				continue
			}
			if a.rangeCount[s]--; a.rangeCount[s] == 0 {
				a.rangeList, _ = removeSorted(a.rangeList, s)
			}
		}
		a.sets[u] = kept
	}
	return a
}

// RestrictToStreams removes every assigned stream not present in the
// given set. It mutates the assignment in place and returns it.
func (a *Assignment) RestrictToStreams(allowed map[int]struct{}) *Assignment {
	return a.Restrict(func(_, s int) bool {
		_, ok := allowed[s]
		return ok
	})
}

// feasibilityTolerance absorbs floating-point accumulation error when
// comparing sums against budgets and capacities.
const feasibilityTolerance = 1e-9

// exceedsLimit is the single comparison shared by CheckFeasible and the
// LoadLedger delta queries, so their accept/reject semantics cannot
// drift apart.
func exceedsLimit(total, limit float64) bool {
	return total > limit*(1+feasibilityTolerance)+feasibilityTolerance
}

// FeasibilityError describes a violated constraint.
type FeasibilityError struct {
	// Server reports whether a server budget (true) or user capacity
	// (false) is violated.
	Server bool
	// User is the violating user index (meaningful when Server is false).
	User int
	// Measure is the violated budget or capacity measure index.
	Measure int
	// Total is the accumulated cost or load.
	Total float64
	// Limit is the budget or capacity that Total exceeds.
	Limit float64
}

// Error implements the error interface.
func (e *FeasibilityError) Error() string {
	if e.Server {
		return fmt.Sprintf("mmd: server budget %d violated: cost %v > budget %v",
			e.Measure, e.Total, e.Limit)
	}
	return fmt.Sprintf("mmd: user %d capacity %d violated: load %v > capacity %v",
		e.User, e.Measure, e.Total, e.Limit)
}

// CheckFeasible verifies that the assignment satisfies every server
// budget and every user capacity of the instance, within a small
// floating-point tolerance. It returns nil when feasible and a
// *FeasibilityError describing the first violation otherwise.
//
// CheckFeasible is a full rescan — O(|S(A)|·m + Σ_u |A(u)|·m_c) — and is
// retained as the reference the incremental LoadLedger is tested
// against. Serving paths should answer the per-admission question with
// LoadLedger.FitsDelta instead of calling this per candidate.
func (a *Assignment) CheckFeasible(in *Instance) error {
	return a.CheckFeasibleScaled(in, nil)
}

// CheckFeasibleScaled is CheckFeasible with each carried stream's
// server cost priced at scaleOf(s) — the shared-catalog accounting,
// where a stream whose origin another tenant pays consumes only the
// replication fraction of this head-end's budgets. User capacities are
// checked at full load (each gateway receives the whole stream).
// scaleOf nil (how CheckFeasible delegates here — this function is the
// single copy of the feasibility walk) or ≡ 1 is full price; the
// accumulation always walks the range in ascending stream order, so
// the two pricings are bit-identical up to the scale factors.
func (a *Assignment) CheckFeasibleScaled(in *Instance, scaleOf func(s int) float64) error {
	for i := range in.Budgets {
		cost := 0.0
		for _, s := range a.rangeList {
			c := in.Streams[s].Costs[i]
			if scaleOf != nil {
				if scale := scaleOf(s); scale != 1 {
					c *= scale
				}
			}
			cost += c
		}
		if limit := in.Budgets[i]; exceedsLimit(cost, limit) {
			return &FeasibilityError{Server: true, Measure: i, Total: cost, Limit: limit}
		}
	}
	for u := range a.sets {
		usr := &in.Users[u]
		for j := range usr.Capacities {
			load := a.UserLoad(in, u, j)
			if limit := usr.Capacities[j]; exceedsLimit(load, limit) {
				return &FeasibilityError{User: u, Measure: j, Total: load, Limit: limit}
			}
		}
	}
	return nil
}

// Equal reports whether two assignments contain exactly the same pairs.
func (a *Assignment) Equal(b *Assignment) bool {
	if len(a.sets) != len(b.sets) {
		return false
	}
	for u := range a.sets {
		as, bs := a.sets[u], b.sets[u]
		if len(as) != len(bs) {
			return false
		}
		for i := range as {
			if as[i] != bs[i] {
				return false
			}
		}
	}
	return true
}

// String renders a compact human-readable description.
func (a *Assignment) String() string {
	return fmt.Sprintf("Assignment{users: %d, range: %d, pairs: %d}",
		len(a.sets), len(a.rangeList), a.Pairs())
}
