package mmd

import (
	"errors"
	"testing"
)

func TestAssignmentBasicOps(t *testing.T) {
	a := NewAssignment(2)
	if a.NumUsers() != 2 {
		t.Fatalf("NumUsers() = %d, want 2", a.NumUsers())
	}
	a.Add(0, 1)
	a.Add(1, 1)
	a.Add(0, 0)
	if !a.Has(0, 1) || !a.Has(1, 1) || !a.Has(0, 0) || a.Has(1, 0) {
		t.Fatal("Has() inconsistent after Add")
	}
	if got := a.Pairs(); got != 3 {
		t.Errorf("Pairs() = %d, want 3", got)
	}
	if got := a.RangeSize(); got != 2 {
		t.Errorf("RangeSize() = %d, want 2", got)
	}
	a.Add(0, 1) // idempotent
	if got := a.Pairs(); got != 3 {
		t.Errorf("Pairs() after duplicate Add = %d, want 3", got)
	}

	a.Remove(0, 1)
	if a.Has(0, 1) {
		t.Error("pair still present after Remove")
	}
	if !a.InRange(1) {
		t.Error("stream 1 should remain in range (user 1 holds it)")
	}
	a.Remove(1, 1)
	if a.InRange(1) {
		t.Error("stream 1 should have left the range")
	}
	a.Remove(1, 1) // idempotent
	if got := a.RangeSize(); got != 1 {
		t.Errorf("RangeSize() = %d, want 1", got)
	}
}

func TestAssignmentRangeSorted(t *testing.T) {
	a := NewAssignment(1)
	for _, s := range []int{5, 1, 3} {
		a.Add(0, s)
	}
	r := a.Range()
	want := []int{1, 3, 5}
	if len(r) != len(want) {
		t.Fatalf("Range() = %v, want %v", r, want)
	}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("Range() = %v, want %v", r, want)
		}
	}
	us := a.UserStreams(0)
	for i := range want {
		if us[i] != want[i] {
			t.Fatalf("UserStreams(0) = %v, want %v", us, want)
		}
	}
}

func TestAssignmentValues(t *testing.T) {
	in := twoStreamInstance()
	a := NewAssignment(in.NumUsers())
	a.Add(0, 0)
	a.Add(0, 1)
	a.Add(1, 1)
	if got := a.Utility(in); got != 5+7+4 {
		t.Errorf("Utility() = %v, want 16", got)
	}
	if got := a.UserUtility(in, 0); got != 12 {
		t.Errorf("UserUtility(0) = %v, want 12", got)
	}
	if got := a.ServerCost(in, 0); got != 5 {
		t.Errorf("ServerCost(0) = %v, want 5", got)
	}
	if got := a.ServerCost(in, 1); got != 3 {
		t.Errorf("ServerCost(1) = %v, want 3", got)
	}
	if got := a.UserLoad(in, 0, 0); got != 3 {
		t.Errorf("UserLoad(0,0) = %v, want 3", got)
	}
}

func TestAssignmentFeasibility(t *testing.T) {
	in := twoStreamInstance()
	a := NewAssignment(in.NumUsers())
	a.Add(0, 0)
	a.Add(0, 1) // loads 1+2 = 3 = capacity: feasible
	a.Add(1, 1)
	if err := a.CheckFeasible(in); err != nil {
		t.Fatalf("CheckFeasible() = %v, want nil", err)
	}

	// Shrink user 0's capacity: now infeasible.
	in.Users[0].Capacities[0] = 2.5
	err := a.CheckFeasible(in)
	var fe *FeasibilityError
	if !errors.As(err, &fe) {
		t.Fatalf("CheckFeasible() = %v, want *FeasibilityError", err)
	}
	if fe.Server || fe.User != 0 || fe.Measure != 0 {
		t.Errorf("violation = %+v, want user 0 measure 0", fe)
	}

	// Restore and shrink a server budget instead.
	in.Users[0].Capacities[0] = 3
	in.Budgets[1] = 2.5
	err = a.CheckFeasible(in)
	if !errors.As(err, &fe) {
		t.Fatalf("CheckFeasible() = %v, want *FeasibilityError", err)
	}
	if !fe.Server || fe.Measure != 1 {
		t.Errorf("violation = %+v, want server measure 1", fe)
	}
	if fe.Error() == "" {
		t.Error("FeasibilityError.Error() is empty")
	}
}

func TestAssignmentCloneEqualRestrict(t *testing.T) {
	a := NewAssignment(2)
	a.Add(0, 0)
	a.Add(0, 2)
	a.Add(1, 2)

	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal to original")
	}
	b.Remove(1, 2)
	if a.Equal(b) {
		t.Fatal("Equal() true after divergence")
	}
	if a.Has(1, 2) != true {
		t.Fatal("clone mutation leaked into original")
	}

	a.RestrictToStreams(map[int]struct{}{2: {}})
	if a.Has(0, 0) || !a.Has(0, 2) || !a.Has(1, 2) {
		t.Fatalf("RestrictToStreams kept wrong pairs: %v", a)
	}

	a.Restrict(func(u, _ int) bool { return u == 0 })
	if a.Has(1, 2) || !a.Has(0, 2) {
		t.Fatal("Restrict kept wrong pairs")
	}
}

func TestEmptyAssignmentFeasible(t *testing.T) {
	in := twoStreamInstance()
	a := NewAssignment(in.NumUsers())
	if err := a.CheckFeasible(in); err != nil {
		t.Fatalf("empty assignment infeasible: %v", err)
	}
	if got := a.Utility(in); got != 0 {
		t.Fatalf("empty assignment utility = %v, want 0", got)
	}
}
