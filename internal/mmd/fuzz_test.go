package mmd

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecode ensures the JSON codec never panics and that everything it
// accepts re-encodes and decodes to an equally valid instance.
func FuzzDecode(f *testing.F) {
	var seedBuf bytes.Buffer
	if err := Encode(&seedBuf, twoStreamInstance()); err != nil {
		f.Fatal(err)
	}
	f.Add(seedBuf.String())
	f.Add(`{"streams":[],"users":[],"budgets":[]}`)
	f.Add(`{"streams":[{"name":"x","costs":["inf"]}],"users":[],"budgets":["inf"]}`)
	f.Add(`{broken`)
	f.Add(`{"streams":[{"name":"x","costs":[-1]}],"users":[],"budgets":[1]}`)

	f.Fuzz(func(t *testing.T, data string) {
		in, err := Decode(strings.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Accepted input must be valid and must round-trip.
		if err := in.Validate(); err != nil {
			t.Fatalf("Decode accepted an invalid instance: %v", err)
		}
		var buf bytes.Buffer
		if err := Encode(&buf, in); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := Decode(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.NumStreams() != in.NumStreams() || again.NumUsers() != in.NumUsers() {
			t.Fatal("round-trip changed dimensions")
		}
	})
}
