package mmd

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// skewInstance has a known local skew: user 0 has ratios {1x, 4x} on its
// single measure (skew 4), user 1 has ratio {2x} (skew 1).
func skewInstance() *Instance {
	return &Instance{
		Streams: []Stream{
			{Name: "a", Costs: []float64{1}},
			{Name: "b", Costs: []float64{1}},
		},
		Users: []User{
			{
				Name:       "u0",
				Utility:    []float64{2, 8},
				Loads:      [][]float64{{2, 2}}, // ratios 1 and 4
				Capacities: []float64{4},
			},
			{
				Name:       "u1",
				Utility:    []float64{6, 0},
				Loads:      [][]float64{{3, 1}}, // ratio 2 (stream b unused)
				Capacities: []float64{3},
			},
		},
		Budgets: []float64{2},
	}
}

func TestLocalSkew(t *testing.T) {
	alpha, err := LocalSkew(skewInstance())
	if err != nil {
		t.Fatalf("LocalSkew() error: %v", err)
	}
	if math.Abs(alpha-4) > 1e-12 {
		t.Fatalf("LocalSkew() = %v, want 4", alpha)
	}
}

func TestLocalSkewUnit(t *testing.T) {
	in := skewInstance()
	// Make every load proportional to utility: skew must be exactly 1.
	for u := range in.Users {
		for s := range in.Users[u].Utility {
			in.Users[u].Loads[0][s] = in.Users[u].Utility[s] / 2
		}
	}
	in.Users[1].Loads[0][1] = 1 // zero-utility stream load is ignored
	alpha, err := LocalSkew(in)
	if err != nil {
		t.Fatalf("LocalSkew() error: %v", err)
	}
	if alpha != 1 {
		t.Fatalf("LocalSkew() = %v, want 1", alpha)
	}
}

func TestLocalSkewInfinite(t *testing.T) {
	in := skewInstance()
	in.Users[0].Loads[0][0] = 0 // positive utility, zero load
	if _, err := LocalSkew(in); !errors.Is(err, ErrInfiniteSkew) {
		t.Fatalf("LocalSkew() = %v, want ErrInfiniteSkew", err)
	}
	if _, err := NormalizeLoads(in); !errors.Is(err, ErrInfiniteSkew) {
		t.Fatalf("NormalizeLoads() = %v, want ErrInfiniteSkew", err)
	}
}

func TestNormalizeLoadsProperties(t *testing.T) {
	in := skewInstance()
	norm, err := NormalizeLoads(in)
	if err != nil {
		t.Fatalf("NormalizeLoads() error: %v", err)
	}
	// Minimum utility-per-load ratio is exactly 1 on every used measure.
	for u := range norm.Users {
		usr := &norm.Users[u]
		for j := range usr.Loads {
			minRatio := math.Inf(1)
			for s, w := range usr.Utility {
				if w > 0 {
					if r := w / usr.Loads[j][s]; r < minRatio {
						minRatio = r
					}
				}
			}
			if math.Abs(minRatio-1) > 1e-12 {
				t.Errorf("user %d measure %d: min ratio %v, want 1", u, j, minRatio)
			}
		}
	}
	// Skew is preserved by normalization.
	a1, _ := LocalSkew(in)
	a2, _ := LocalSkew(norm)
	if math.Abs(a1-a2) > 1e-9 {
		t.Errorf("skew changed by normalization: %v -> %v", a1, a2)
	}
	// The original instance is untouched.
	if in.Users[0].Loads[0][0] != 2 {
		t.Error("NormalizeLoads mutated its input")
	}
}

func TestNormalizePreservesFeasibility(t *testing.T) {
	// Property: an assignment is feasible for the original instance iff
	// it is feasible for the normalized instance.
	rng := rand.New(rand.NewSource(7))
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomInstance(r, 4, 3)
		norm, err := NormalizeLoads(in)
		if err != nil {
			return true // infinite-skew instances are excluded
		}
		a := NewAssignment(in.NumUsers())
		for u := 0; u < in.NumUsers(); u++ {
			for s := 0; s < in.NumStreams(); s++ {
				if r.Float64() < 0.4 {
					a.Add(u, s)
				}
			}
		}
		origOK := a.CheckFeasible(in) == nil
		normOK := a.CheckFeasible(norm) == nil
		return origOK == normOK
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSanitizeLoads(t *testing.T) {
	in := skewInstance()
	in.Users[0].Loads[0][0] = 0
	n := SanitizeLoads(in)
	if n != 1 {
		t.Fatalf("SanitizeLoads() = %d, want 1", n)
	}
	if _, err := LocalSkew(in); err != nil {
		t.Fatalf("LocalSkew after sanitize: %v", err)
	}
	if in.Users[0].Loads[0][0] <= 0 {
		t.Fatal("sanitized load not positive")
	}
}

func TestSanitizeLoadsNoFiniteRatio(t *testing.T) {
	in := &Instance{
		Streams: []Stream{{Name: "a", Costs: []float64{1}}},
		Users: []User{{
			Name:       "u",
			Utility:    []float64{5},
			Loads:      [][]float64{{0}},
			Capacities: []float64{10},
		}},
		Budgets: []float64{1},
	}
	if n := SanitizeLoads(in); n != 1 {
		t.Fatalf("SanitizeLoads() = %d, want 1", n)
	}
	if in.Users[0].Loads[0][0] != 5 {
		t.Fatalf("fallback unit-ratio load = %v, want 5", in.Users[0].Loads[0][0])
	}
}

// randomInstance builds a small random instance for property tests. All
// positive-utility pairs get positive loads.
func randomInstance(r *rand.Rand, nStreams, nUsers int) *Instance {
	in := &Instance{
		Streams: make([]Stream, nStreams),
		Users:   make([]User, nUsers),
		Budgets: []float64{0},
	}
	total := 0.0
	for s := range in.Streams {
		c := 0.5 + r.Float64()
		total += c
		in.Streams[s] = Stream{Costs: []float64{c}}
	}
	in.Budgets[0] = total/2 + 1
	for u := range in.Users {
		usr := User{
			Utility:    make([]float64, nStreams),
			Loads:      [][]float64{make([]float64, nStreams)},
			Capacities: []float64{2 + 3*r.Float64()},
		}
		for s := range usr.Utility {
			if r.Float64() < 0.7 {
				usr.Utility[s] = 1 + r.Float64()*5
				usr.Loads[0][s] = 0.1 + r.Float64()
			}
		}
		in.Users[u] = usr
	}
	in.ZeroOverloadedUtilities()
	return in
}
