package mmd

import (
	"errors"
	"fmt"
	"math"
)

// Stream is a single multicast stream in the server catalog.
type Stream struct {
	// Name identifies the stream in reports and traces.
	Name string `json:"name"`
	// Costs[i] is the server-side cost c_i(S) in measure i. Its length
	// must equal the number of server budgets of the enclosing instance.
	Costs []float64 `json:"costs"`
}

// User is a client (household or neighborhood video gateway).
type User struct {
	// Name identifies the user in reports and traces.
	Name string `json:"name"`
	// Utility[s] is w_u(S) for stream index s. Length must equal the
	// number of streams of the enclosing instance.
	Utility []float64 `json:"utility"`
	// Loads[j][s] is the load k^u_j(S) of stream s on capacity measure j.
	Loads [][]float64 `json:"loads"`
	// Capacities[j] is the cap K^u_j of capacity measure j. Length must
	// equal len(Loads). math.Inf(1) denotes an unconstrained measure.
	Capacities []float64 `json:"capacities"`
}

// Instance is a complete MMD problem instance.
//
// The zero value is an empty instance with no streams, users, or budgets.
// Instances handed to solvers should first pass Validate.
type Instance struct {
	// Streams is the server catalog.
	Streams []Stream `json:"streams"`
	// Users are the clients.
	Users []User `json:"users"`
	// Budgets[i] is the server budget B_i. math.Inf(1) denotes an
	// unconstrained measure.
	Budgets []float64 `json:"budgets"`
}

// NumStreams returns |S|.
func (in *Instance) NumStreams() int { return len(in.Streams) }

// NumUsers returns |U|.
func (in *Instance) NumUsers() int { return len(in.Users) }

// M returns the number of server cost measures, m.
func (in *Instance) M() int { return len(in.Budgets) }

// MC returns the maximal number of capacity constraints at a user, m_c.
func (in *Instance) MC() int {
	mc := 0
	for u := range in.Users {
		if n := len(in.Users[u].Capacities); n > mc {
			mc = n
		}
	}
	return mc
}

// InputLength returns the input length n: the total number of scalars in
// the instance description. The paper states ratios in terms of log n for
// inputs whose numbers are polynomial in n.
func (in *Instance) InputLength() int {
	n := len(in.Budgets)
	for s := range in.Streams {
		n += len(in.Streams[s].Costs)
	}
	for u := range in.Users {
		usr := &in.Users[u]
		n += len(usr.Utility) + len(usr.Capacities)
		for j := range usr.Loads {
			n += len(usr.Loads[j])
		}
	}
	return n
}

// StreamUtility returns the standalone total utility of stream s,
// w(S) = sum_u w_u(S), ignoring all capacity constraints.
func (in *Instance) StreamUtility(s int) float64 {
	total := 0.0
	for u := range in.Users {
		total += in.Users[u].Utility[s]
	}
	return total
}

// TotalUtility returns the sum of all utilities in the instance, an
// (extremely loose) upper bound on any assignment value.
func (in *Instance) TotalUtility() float64 {
	total := 0.0
	for u := range in.Users {
		for _, w := range in.Users[u].Utility {
			total += w
		}
	}
	return total
}

// Clone returns a deep copy of the instance. Mutating the copy never
// affects the original.
func (in *Instance) Clone() *Instance {
	out := &Instance{
		Streams: make([]Stream, len(in.Streams)),
		Users:   make([]User, len(in.Users)),
		Budgets: append([]float64(nil), in.Budgets...),
	}
	for s := range in.Streams {
		out.Streams[s] = Stream{
			Name:  in.Streams[s].Name,
			Costs: append([]float64(nil), in.Streams[s].Costs...),
		}
	}
	for u := range in.Users {
		src := &in.Users[u]
		dst := &out.Users[u]
		dst.Name = src.Name
		dst.Utility = append([]float64(nil), src.Utility...)
		dst.Capacities = append([]float64(nil), src.Capacities...)
		dst.Loads = make([][]float64, len(src.Loads))
		for j := range src.Loads {
			dst.Loads[j] = append([]float64(nil), src.Loads[j]...)
		}
	}
	return out
}

// Validation errors returned by Validate. Use errors.Is to classify.
var (
	// ErrShape indicates mismatched slice lengths (for example a stream
	// whose cost vector does not match the number of budgets).
	ErrShape = errors.New("mmd: malformed instance shape")
	// ErrNegative indicates a negative cost, load, utility, budget, or
	// capacity.
	ErrNegative = errors.New("mmd: negative value")
	// ErrCostExceedsBudget indicates a stream whose cost exceeds a budget
	// on its own; the paper assumes c_i(S) <= B_i for all i and S.
	ErrCostExceedsBudget = errors.New("mmd: stream cost exceeds budget")
	// ErrNonFinite indicates a NaN or an infinity where a finite number is
	// required (costs, loads, and utilities must be finite; budgets and
	// capacities may be +Inf).
	ErrNonFinite = errors.New("mmd: non-finite value")
)

// Validate checks structural well-formedness: consistent dimensions,
// nonnegative finite costs/loads/utilities, nonnegative budgets and
// capacities, and the paper's standing assumption c_i(S) <= B_i.
//
// It also enforces the paper's convention that w_u(S) = 0 whenever
// k^u_j(S) > K^u_j for some j (a stream a user cannot hold must carry no
// utility for that user); use ZeroOverloadedUtilities to repair an
// instance that violates it.
func (in *Instance) Validate() error {
	m := len(in.Budgets)
	for i, b := range in.Budgets {
		if math.IsNaN(b) || b < 0 {
			return fmt.Errorf("budget %d is %v: %w", i, b, ErrNegative)
		}
	}
	for s := range in.Streams {
		st := &in.Streams[s]
		if len(st.Costs) != m {
			return fmt.Errorf("stream %d (%s) has %d costs, want %d: %w",
				s, st.Name, len(st.Costs), m, ErrShape)
		}
		for i, c := range st.Costs {
			switch {
			case math.IsNaN(c) || math.IsInf(c, 0):
				return fmt.Errorf("stream %d cost %d is %v: %w", s, i, c, ErrNonFinite)
			case c < 0:
				return fmt.Errorf("stream %d cost %d is %v: %w", s, i, c, ErrNegative)
			case c > in.Budgets[i]:
				return fmt.Errorf("stream %d cost %d is %v > budget %v: %w",
					s, i, c, in.Budgets[i], ErrCostExceedsBudget)
			}
		}
	}
	for u := range in.Users {
		if err := in.validateUser(u); err != nil {
			return err
		}
	}
	return nil
}

func (in *Instance) validateUser(u int) error {
	usr := &in.Users[u]
	nS := len(in.Streams)
	if len(usr.Utility) != nS {
		return fmt.Errorf("user %d (%s) has %d utilities, want %d: %w",
			u, usr.Name, len(usr.Utility), nS, ErrShape)
	}
	if len(usr.Loads) != len(usr.Capacities) {
		return fmt.Errorf("user %d has %d load rows but %d capacities: %w",
			u, len(usr.Loads), len(usr.Capacities), ErrShape)
	}
	for s, w := range usr.Utility {
		switch {
		case math.IsNaN(w) || math.IsInf(w, 0):
			return fmt.Errorf("user %d utility for stream %d is %v: %w", u, s, w, ErrNonFinite)
		case w < 0:
			return fmt.Errorf("user %d utility for stream %d is %v: %w", u, s, w, ErrNegative)
		}
	}
	for j := range usr.Loads {
		if len(usr.Loads[j]) != nS {
			return fmt.Errorf("user %d load row %d has %d entries, want %d: %w",
				u, j, len(usr.Loads[j]), nS, ErrShape)
		}
		cap := usr.Capacities[j]
		if math.IsNaN(cap) || cap < 0 {
			return fmt.Errorf("user %d capacity %d is %v: %w", u, j, cap, ErrNegative)
		}
		for s, k := range usr.Loads[j] {
			switch {
			case math.IsNaN(k) || math.IsInf(k, 0):
				return fmt.Errorf("user %d load[%d][%d] is %v: %w", u, j, s, k, ErrNonFinite)
			case k < 0:
				return fmt.Errorf("user %d load[%d][%d] is %v: %w", u, j, s, k, ErrNegative)
			case k > cap && usr.Utility[s] > 0:
				return fmt.Errorf(
					"user %d stream %d: load %v exceeds capacity %v but utility %v > 0 (run ZeroOverloadedUtilities): %w",
					u, s, k, cap, usr.Utility[s], ErrShape)
			}
		}
	}
	return nil
}

// ZeroOverloadedUtilities enforces, in place, the paper's assumption that
// w_u(S) = 0 whenever some load of S exceeds the corresponding capacity
// of u. It returns the number of utilities zeroed.
func (in *Instance) ZeroOverloadedUtilities() int {
	zeroed := 0
	for u := range in.Users {
		usr := &in.Users[u]
		for s := range usr.Utility {
			if usr.Utility[s] == 0 {
				continue
			}
			for j := range usr.Loads {
				if usr.Loads[j][s] > usr.Capacities[j] {
					usr.Utility[s] = 0
					zeroed++
					break
				}
			}
		}
	}
	return zeroed
}

// AddUtilityCapMeasure appends to every user a capacity measure whose
// load function is the user's utility function and whose cap is the given
// per-user bound W_u. This is how the paper's "bounded utility per
// client" constraint is expressed as a capacity measure; the resulting
// measure has unit skew by construction.
//
// caps must have one entry per user; math.Inf(1) leaves a user unbounded.
func (in *Instance) AddUtilityCapMeasure(caps []float64) error {
	if len(caps) != len(in.Users) {
		return fmt.Errorf("got %d caps for %d users: %w", len(caps), len(in.Users), ErrShape)
	}
	for u := range in.Users {
		usr := &in.Users[u]
		usr.Loads = append(usr.Loads, append([]float64(nil), usr.Utility...))
		usr.Capacities = append(usr.Capacities, caps[u])
	}
	return nil
}

// InterestedUsers inverts the demand graph: out[s] lists the users with
// positive utility for stream s in increasing index order — the
// delivery candidate list an arrival-driven policy walks instead of
// scanning all users per event.
func (in *Instance) InterestedUsers() [][]int {
	out := make([][]int, len(in.Streams))
	for u := range in.Users {
		for s, w := range in.Users[u].Utility {
			if w > 0 {
				out[s] = append(out[s], u)
			}
		}
	}
	return out
}

// SupportSize returns the number of (user, stream) pairs with positive
// utility — the edge count of the bipartite demand graph.
func (in *Instance) SupportSize() int {
	edges := 0
	for u := range in.Users {
		for _, w := range in.Users[u].Utility {
			if w > 0 {
				edges++
			}
		}
	}
	return edges
}

// IsSMD reports whether the instance is a Single-Budget Multi-Client
// Distribution (SMD) instance: one server budget and at most one capacity
// constraint per user.
func (in *Instance) IsSMD() bool {
	if len(in.Budgets) != 1 {
		return false
	}
	for u := range in.Users {
		if len(in.Users[u].Capacities) > 1 {
			return false
		}
	}
	return true
}
