package mmd

import (
	"errors"
	"fmt"
	"math"
)

// ErrInfiniteSkew is returned when a user derives positive utility from a
// stream that places zero load on one of the user's capacity measures:
// the utility-per-load ratio is unbounded and the classify-and-select
// reduction of Section 3 does not apply. SanitizeLoads repairs such
// instances.
var ErrInfiniteSkew = errors.New("mmd: infinite local skew (positive utility with zero load)")

// NormalizeLoads returns a copy of the instance in which every user's
// load functions and capacities are rescaled so that, for each user u and
// capacity measure j, min over streams with w_u(S) > 0 of
// w_u(S)/k^u_j(S) equals 1. This is the normalization under which the
// paper defines the local skew (Section 3). Scaling a load row and its
// capacity by the same factor preserves feasibility exactly, so the
// normalized instance has the same feasible assignments and values.
//
// Capacity measures for which no stream has positive utility are left
// untouched. It returns ErrInfiniteSkew if some user has w_u(S) > 0 but
// k^u_j(S) = 0.
func NormalizeLoads(in *Instance) (*Instance, error) {
	out := in.Clone()
	for u := range out.Users {
		usr := &out.Users[u]
		for j := range usr.Loads {
			minRatio := math.Inf(1)
			for s, w := range usr.Utility {
				if w <= 0 {
					continue
				}
				k := usr.Loads[j][s]
				if k == 0 {
					return nil, fmt.Errorf("user %d, measure %d, stream %d: %w", u, j, s, ErrInfiniteSkew)
				}
				if r := w / k; r < minRatio {
					minRatio = r
				}
			}
			if math.IsInf(minRatio, 1) {
				continue // no supported stream on this measure
			}
			// Scale loads and capacity by minRatio so that the smallest
			// utility-per-load ratio becomes exactly 1.
			for s := range usr.Loads[j] {
				usr.Loads[j][s] *= minRatio
			}
			if !math.IsInf(usr.Capacities[j], 1) {
				usr.Capacities[j] *= minRatio
			}
		}
	}
	return out, nil
}

// LocalSkew returns the local skew alpha of the instance: the maximum,
// over users u and capacity measures j, of the ratio between the largest
// and smallest utility-per-load ratios w_u(S)/k^u_j(S) among streams with
// w_u(S) > 0. It equals 1 exactly when every user's load functions are
// proportional to its utility function, and is >= 1 otherwise.
//
// It returns ErrInfiniteSkew if some pair has positive utility and zero
// load.
func LocalSkew(in *Instance) (float64, error) {
	alpha := 1.0
	for u := range in.Users {
		usr := &in.Users[u]
		for j := range usr.Loads {
			minRatio, maxRatio := math.Inf(1), 0.0
			for s, w := range usr.Utility {
				if w <= 0 {
					continue
				}
				k := usr.Loads[j][s]
				if k == 0 {
					return 0, fmt.Errorf("user %d, measure %d, stream %d: %w", u, j, s, ErrInfiniteSkew)
				}
				r := w / k
				if r < minRatio {
					minRatio = r
				}
				if r > maxRatio {
					maxRatio = r
				}
			}
			if maxRatio == 0 {
				continue
			}
			if ratio := maxRatio / minRatio; ratio > alpha {
				alpha = ratio
			}
		}
	}
	return alpha, nil
}

// SanitizeLoads repairs, in place, every (user, measure, stream) triple
// with positive utility but zero load by setting the load to
// w_u(S)/maxRatio, where maxRatio is the largest finite utility-per-load
// ratio observed on that (user, measure). The repaired stream becomes the
// most load-efficient stream on the measure without changing the skew,
// and the added load is at most w_u(S)/maxRatio, which is negligible for
// high-skew measures. If a measure has no finite ratio at all, loads are
// set to the utilities (unit ratio).
//
// It returns the number of repaired entries.
func SanitizeLoads(in *Instance) int {
	repaired := 0
	for u := range in.Users {
		usr := &in.Users[u]
		for j := range usr.Loads {
			maxRatio := 0.0
			for s, w := range usr.Utility {
				if w <= 0 {
					continue
				}
				if k := usr.Loads[j][s]; k > 0 {
					if r := w / k; r > maxRatio {
						maxRatio = r
					}
				}
			}
			if maxRatio == 0 {
				maxRatio = 1
			}
			for s, w := range usr.Utility {
				if w > 0 && usr.Loads[j][s] == 0 {
					usr.Loads[j][s] = w / maxRatio
					repaired++
				}
			}
		}
	}
	return repaired
}
