package mmd

import (
	"errors"
	"math"
	"testing"
)

// twoStreamInstance is a tiny hand-checked instance used across tests:
// two streams, two users, two server measures, one capacity each.
func twoStreamInstance() *Instance {
	return &Instance{
		Streams: []Stream{
			{Name: "a", Costs: []float64{2, 1}},
			{Name: "b", Costs: []float64{3, 2}},
		},
		Users: []User{
			{
				Name:       "u0",
				Utility:    []float64{5, 7},
				Loads:      [][]float64{{1, 2}},
				Capacities: []float64{3},
			},
			{
				Name:       "u1",
				Utility:    []float64{0, 4},
				Loads:      [][]float64{{1, 1}},
				Capacities: []float64{2},
			},
		},
		Budgets: []float64{5, 3},
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := twoStreamInstance().Validate(); err != nil {
		t.Fatalf("Validate() = %v, want nil", err)
	}
}

func TestValidateRejectsShape(t *testing.T) {
	in := twoStreamInstance()
	in.Streams[0].Costs = []float64{1}
	if err := in.Validate(); !errors.Is(err, ErrShape) {
		t.Fatalf("Validate() = %v, want ErrShape", err)
	}
}

func TestValidateRejectsUtilityLengthMismatch(t *testing.T) {
	in := twoStreamInstance()
	in.Users[0].Utility = []float64{1}
	if err := in.Validate(); !errors.Is(err, ErrShape) {
		t.Fatalf("Validate() = %v, want ErrShape", err)
	}
}

func TestValidateRejectsNegativeCost(t *testing.T) {
	in := twoStreamInstance()
	in.Streams[1].Costs[0] = -1
	if err := in.Validate(); !errors.Is(err, ErrNegative) {
		t.Fatalf("Validate() = %v, want ErrNegative", err)
	}
}

func TestValidateRejectsNegativeBudget(t *testing.T) {
	in := twoStreamInstance()
	in.Budgets[0] = -2
	if err := in.Validate(); !errors.Is(err, ErrNegative) {
		t.Fatalf("Validate() = %v, want ErrNegative", err)
	}
}

func TestValidateRejectsCostAboveBudget(t *testing.T) {
	in := twoStreamInstance()
	in.Streams[0].Costs[0] = 100
	if err := in.Validate(); !errors.Is(err, ErrCostExceedsBudget) {
		t.Fatalf("Validate() = %v, want ErrCostExceedsBudget", err)
	}
}

func TestValidateRejectsNaN(t *testing.T) {
	in := twoStreamInstance()
	in.Users[0].Utility[0] = math.NaN()
	if err := in.Validate(); err == nil {
		t.Fatal("Validate() = nil, want error for NaN utility")
	}
}

func TestValidateRejectsOverloadedUtility(t *testing.T) {
	in := twoStreamInstance()
	in.Users[0].Loads[0][0] = 10 // exceeds capacity 3 while utility > 0
	if err := in.Validate(); !errors.Is(err, ErrShape) {
		t.Fatalf("Validate() = %v, want ErrShape", err)
	}
}

func TestValidateAllowsInfiniteBudget(t *testing.T) {
	in := twoStreamInstance()
	in.Budgets[0] = math.Inf(1)
	if err := in.Validate(); err != nil {
		t.Fatalf("Validate() = %v, want nil with infinite budget", err)
	}
}

func TestZeroOverloadedUtilities(t *testing.T) {
	in := twoStreamInstance()
	in.Users[0].Loads[0][0] = 10
	if n := in.ZeroOverloadedUtilities(); n != 1 {
		t.Fatalf("ZeroOverloadedUtilities() = %d, want 1", n)
	}
	if in.Users[0].Utility[0] != 0 {
		t.Fatalf("utility not zeroed: %v", in.Users[0].Utility[0])
	}
	if err := in.Validate(); err != nil {
		t.Fatalf("Validate() after repair = %v, want nil", err)
	}
}

func TestDimensions(t *testing.T) {
	in := twoStreamInstance()
	if got := in.NumStreams(); got != 2 {
		t.Errorf("NumStreams() = %d, want 2", got)
	}
	if got := in.NumUsers(); got != 2 {
		t.Errorf("NumUsers() = %d, want 2", got)
	}
	if got := in.M(); got != 2 {
		t.Errorf("M() = %d, want 2", got)
	}
	if got := in.MC(); got != 1 {
		t.Errorf("MC() = %d, want 1", got)
	}
	if got := in.SupportSize(); got != 3 {
		t.Errorf("SupportSize() = %d, want 3", got)
	}
}

func TestInputLength(t *testing.T) {
	in := twoStreamInstance()
	// budgets 2 + costs 4 + (utilities 2 + loads 2 + caps 1) * 2 users.
	want := 2 + 4 + 2*(2+2+1)
	if got := in.InputLength(); got != want {
		t.Errorf("InputLength() = %d, want %d", got, want)
	}
}

func TestStreamUtility(t *testing.T) {
	in := twoStreamInstance()
	if got := in.StreamUtility(0); got != 5 {
		t.Errorf("StreamUtility(0) = %v, want 5", got)
	}
	if got := in.StreamUtility(1); got != 11 {
		t.Errorf("StreamUtility(1) = %v, want 11", got)
	}
	if got := in.TotalUtility(); got != 16 {
		t.Errorf("TotalUtility() = %v, want 16", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	in := twoStreamInstance()
	cp := in.Clone()
	cp.Streams[0].Costs[0] = 99
	cp.Users[0].Utility[0] = 99
	cp.Users[0].Loads[0][0] = 99
	cp.Budgets[0] = 99
	if in.Streams[0].Costs[0] == 99 || in.Users[0].Utility[0] == 99 ||
		in.Users[0].Loads[0][0] == 99 || in.Budgets[0] == 99 {
		t.Fatal("Clone shares memory with the original")
	}
}

func TestIsSMD(t *testing.T) {
	if twoStreamInstance().IsSMD() {
		t.Error("two-budget instance reported as SMD")
	}
	single := twoStreamInstance()
	single.Budgets = []float64{5}
	for s := range single.Streams {
		single.Streams[s].Costs = single.Streams[s].Costs[:1]
	}
	if !single.IsSMD() {
		t.Error("single-budget single-capacity instance not reported as SMD")
	}
}

func TestAddUtilityCapMeasure(t *testing.T) {
	in := twoStreamInstance()
	if err := in.AddUtilityCapMeasure([]float64{10, math.Inf(1)}); err != nil {
		t.Fatalf("AddUtilityCapMeasure() = %v", err)
	}
	if got := in.MC(); got != 2 {
		t.Fatalf("MC() after adding cap measure = %d, want 2", got)
	}
	u0 := &in.Users[0]
	for s := range u0.Utility {
		if u0.Loads[1][s] != u0.Utility[s] {
			t.Fatalf("cap measure load mismatch at stream %d: %v vs %v", s, u0.Loads[1][s], u0.Utility[s])
		}
	}
	if err := in.Validate(); err != nil {
		t.Fatalf("Validate() = %v", err)
	}
	if err := in.AddUtilityCapMeasure([]float64{1}); err == nil {
		t.Fatal("AddUtilityCapMeasure with wrong length should fail")
	}
}
