// Package mmd defines the Multi-Budget Multi-Client Distribution problem
// (MMD) of Patt-Shamir and Rawitz, "Video distribution under multiple
// constraints" (ICDCS 2008; TCS 412, 2011), together with the data types
// shared by every algorithm in this repository.
//
// An MMD instance consists of a catalog of streams, a set of users, and
// two families of resource constraints:
//
//   - The server pays a cost c_i(S) in each of m cost measures for every
//     stream S it transmits (egress bandwidth, processing, input ports,
//     ...). Measure i has a budget B_i that the total cost of the
//     transmitted set may not exceed.
//   - Each user u pays a load k^u_j(S) in each of its capacity measures j
//     for every stream assigned to it (downlink bandwidth, decoder
//     slots, ...). Capacity measure j of user u has a cap K^u_j.
//
// Every (user, stream) pair has a utility w_u(S) >= 0; w_u(S) = 0 means
// the user cannot or does not want to receive the stream. An assignment
// gives each user a subset of the transmitted streams. Its value is the
// plain sum of utilities of all assigned pairs. The paper's "bound on the
// utility a client can generate" is modeled as a capacity measure whose
// load function equals the utility function (see AddUtilityCapMeasure);
// this is exactly the unit-skew special case the paper builds on.
//
// The package provides instance construction and validation, assignments
// with feasibility checking, the local-skew normalization of Section 3,
// and a JSON codec used by the command-line tools.
package mmd
