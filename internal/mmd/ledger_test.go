package mmd

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// TestLedgerRebuildBitIdentical: Rebuild sums in increasing stream
// order, exactly like the Assignment value methods, so the maintained
// totals must equal the rescan totals bit-for-bit — the property the
// make-before-break Reinstall paths rely on.
func TestLedgerRebuildBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 25; trial++ {
		in := randomInstance(rng, 2+rng.Intn(20), 1+rng.Intn(8))
		a := NewAssignment(in.NumUsers())
		for u := 0; u < in.NumUsers(); u++ {
			for s := 0; s < in.NumStreams(); s++ {
				if rng.Float64() < 0.3 {
					a.Add(u, s)
				}
			}
		}
		l := NewLoadLedger(in)
		l.Rebuild(a)
		for i := 0; i < in.M(); i++ {
			if got, want := l.ServerCost(i), a.ServerCost(in, i); got != want {
				t.Fatalf("trial %d: ServerCost(%d) = %v, want %v (bit-identical)", trial, i, got, want)
			}
		}
		for u := 0; u < in.NumUsers(); u++ {
			for j := range in.Users[u].Capacities {
				if got, want := l.UserLoad(u, j), a.UserLoad(in, u, j); got != want {
					t.Fatalf("trial %d: UserLoad(%d,%d) = %v, want %v", trial, u, j, got, want)
				}
			}
		}
		for s := 0; s < in.NumStreams(); s++ {
			holders := 0
			for u := 0; u < in.NumUsers(); u++ {
				if a.Has(u, s) {
					holders++
				}
			}
			if l.Holders(s) != holders {
				t.Fatalf("trial %d: Holders(%d) = %d, want %d", trial, s, l.Holders(s), holders)
			}
		}
	}
}

// TestLedgerMatchesCheckFeasible is the differential test the tentpole
// hinges on: over long random mutation sequences where every admission
// is decided by the retained reference (trial Add + full CheckFeasible
// rescan), the incremental ledger must agree with the reference on
// every single candidate, and its maintained totals must track the
// rescan totals.
func TestLedgerMatchesCheckFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 15; trial++ {
		in := randomInstance(rng, 3+rng.Intn(15), 1+rng.Intn(6))
		a := NewAssignment(in.NumUsers())
		l := NewLoadLedger(in)
		for step := 0; step < 300; step++ {
			u := rng.Intn(in.NumUsers())
			s := rng.Intn(in.NumStreams())
			if a.Has(u, s) {
				a.Remove(u, s)
				l.Remove(u, s)
				continue
			}
			// Reference decision: trial Add, full rescan, roll back.
			a.Add(u, s)
			refFits := a.CheckFeasible(in) == nil
			a.Remove(u, s)
			if got := l.FitsDelta(u, s); got != refFits {
				t.Fatalf("trial %d step %d: FitsDelta(%d,%d) = %v, reference rescan = %v",
					trial, step, u, s, got, refFits)
			}
			if refFits {
				a.Add(u, s)
				l.Add(u, s)
			}
		}
		// The guarded invariant held throughout, so the final state is
		// feasible by the reference's account too.
		if err := a.CheckFeasible(in); err != nil {
			t.Fatalf("trial %d: final assignment infeasible: %v", trial, err)
		}
		const tol = 1e-9
		for i := 0; i < in.M(); i++ {
			if diff := l.ServerCost(i) - a.ServerCost(in, i); diff > tol || diff < -tol {
				t.Fatalf("trial %d: ServerCost(%d) drifted by %v", trial, i, diff)
			}
		}
		for u := 0; u < in.NumUsers(); u++ {
			for j := range in.Users[u].Capacities {
				if diff := l.UserLoad(u, j) - a.UserLoad(in, u, j); diff > tol || diff < -tol {
					t.Fatalf("trial %d: UserLoad(%d,%d) drifted by %v", trial, u, j, diff)
				}
			}
		}
	}
}

// TestLedgerAddRemoveRoundTrip: removing everything returns the ledger
// to (clamped) zero.
func TestLedgerAddRemoveRoundTrip(t *testing.T) {
	in := twoStreamInstance()
	l := NewLoadLedger(in)
	pairs := [][2]int{{0, 0}, {0, 1}, {1, 1}}
	for _, p := range pairs {
		l.Add(p[0], p[1])
	}
	if l.Holders(1) != 2 || l.Holders(0) != 1 {
		t.Fatalf("holders = %d,%d, want 1,2", l.Holders(0), l.Holders(1))
	}
	if got := l.ServerCost(0); got != 5 {
		t.Fatalf("ServerCost(0) = %v, want 5", got)
	}
	for _, p := range pairs {
		l.Remove(p[0], p[1])
	}
	for i := 0; i < in.M(); i++ {
		if l.ServerCost(i) != 0 {
			t.Fatalf("ServerCost(%d) = %v after full removal", i, l.ServerCost(i))
		}
	}
	for u := 0; u < in.NumUsers(); u++ {
		for j := range in.Users[u].Capacities {
			if l.UserLoad(u, j) != 0 {
				t.Fatalf("UserLoad(%d,%d) = %v after full removal", u, j, l.UserLoad(u, j))
			}
		}
	}
}

// TestLedgerCanAdmitDiagnosis: CanAdmit reports the violated constraint
// with the same shape CheckFeasible would.
func TestLedgerCanAdmitDiagnosis(t *testing.T) {
	in := twoStreamInstance()
	l := NewLoadLedger(in)
	l.Add(0, 0) // server costs now {2, 1}; user 0 load 1

	// Stream 1 costs {3, 2}: measure 1 would reach 3 = budget (fits),
	// measure 0 would reach 5 = budget (fits) — user 1 fits too.
	if err := l.CanAdmit(1, 1); err != nil {
		t.Fatalf("CanAdmit(1,1) = %v, want nil", err)
	}

	// Shrink budget 0 so stream 1 no longer fits the server.
	in.Budgets[0] = 4
	err := l.CanAdmit(1, 1)
	var fe *FeasibilityError
	if !errors.As(err, &fe) || !fe.Server || fe.Measure != 0 {
		t.Fatalf("CanAdmit(1,1) = %v, want server measure 0 violation", err)
	}
	in.Budgets[0] = 5

	// User 0 holds load 1 of capacity 3; stream 1 loads 2 → exactly 3,
	// fits. Shrink the capacity: now it must report user 0 measure 0.
	in.Users[0].Capacities[0] = 2.5
	err = l.CanAdmit(0, 1)
	if !errors.As(err, &fe) || fe.Server || fe.User != 0 || fe.Measure != 0 {
		t.Fatalf("CanAdmit(0,1) = %v, want user 0 measure 0 violation", err)
	}
}

// TestAssignmentNegativeAddIgnored: negative stream indices are ignored
// by Add (the sorted-slice representation indexes by stream).
func TestAssignmentNegativeAddIgnored(t *testing.T) {
	a := NewAssignment(1)
	a.Add(0, -3)
	if a.Pairs() != 0 || a.RangeSize() != 0 || a.Has(0, -3) || a.InRange(-3) {
		t.Fatalf("negative Add leaked state: %v", a)
	}
	a.Remove(0, -3) // no-op, must not panic
}

// TestLedgerScaledPathBitIdenticalAtScaleOne: the scaled entry points
// with serverScale 1 must be indistinguishable from the unscaled ones —
// same decisions, bit-identical totals — because the catalog's Isolated
// cost model routes every admission through them.
func TestLedgerScaledPathBitIdenticalAtScaleOne(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20; trial++ {
		in := randomInstance(rng, 2+rng.Intn(15), 1+rng.Intn(6))
		plain, scaled := NewLoadLedger(in), NewLoadLedger(in)
		for step := 0; step < 300; step++ {
			u, s := rng.Intn(in.NumUsers()), rng.Intn(in.NumStreams())
			if rng.Float64() < 0.6 {
				p, q := plain.FitsDelta(u, s), scaled.FitsDeltaScaled(u, s, 1)
				if p != q {
					t.Fatalf("trial %d step %d: FitsDelta=%v FitsDeltaScaled(1)=%v", trial, step, p, q)
				}
				if p {
					plain.Add(u, s)
					scaled.AddScaled(u, s, 1)
				}
			} else if plain.Holders(s) > 0 {
				plain.Remove(u, s)
				scaled.Remove(u, s)
			}
			for i := 0; i < in.M(); i++ {
				if plain.ServerCost(i) != scaled.ServerCost(i) {
					t.Fatalf("trial %d step %d: ServerCost diverged: %v vs %v",
						trial, step, plain.ServerCost(i), scaled.ServerCost(i))
				}
			}
		}
	}
}

// TestLedgerScaledChargeAndRefund: a discounted admission charges
// scale×cost against the budgets, records the scale, and the last
// holder's Remove credits back exactly what was charged — the ledger
// returns to zero even when charge scales vary stream to stream.
func TestLedgerScaledChargeAndRefund(t *testing.T) {
	in := &Instance{
		Streams: []Stream{{Costs: []float64{8, 2}}, {Costs: []float64{4, 4}}},
		Users: []User{{
			Utility:    []float64{1, 1},
			Loads:      [][]float64{{1, 1}},
			Capacities: []float64{10},
		}, {
			Utility:    []float64{1, 1},
			Loads:      [][]float64{{1, 1}},
			Capacities: []float64{10},
		}},
		Budgets: []float64{10, 10},
	}
	l := NewLoadLedger(in)

	// Stream 0 at full price: 8 of the 10-budget gone.
	l.AddScaled(0, 0, 1)
	if got := l.ServerCost(0); got != 8 {
		t.Fatalf("ServerCost(0) = %v, want 8", got)
	}
	if got := l.ChargeScale(0); got != 1 {
		t.Fatalf("ChargeScale(0) = %v, want 1", got)
	}
	// Stream 1 at full price would blow measure 0 (8+4 > 10)…
	if l.FitsDeltaScaled(0, 1, 1) {
		t.Fatal("full-price stream 1 should not fit")
	}
	// …but at the shared-origin fraction it fits (8 + 0.25×4 = 9).
	if !l.FitsDeltaScaled(0, 1, 0.25) {
		t.Fatal("discounted stream 1 should fit")
	}
	l.AddScaled(0, 1, 0.25)
	if got := l.ServerCost(0); got != 9 {
		t.Fatalf("ServerCost(0) after discounted add = %v, want 9", got)
	}
	if got := l.ChargeScale(1); got != 0.25 {
		t.Fatalf("ChargeScale(1) = %v, want 0.25", got)
	}
	// A second holder of the discounted stream adds no server cost and
	// keeps the recorded scale.
	l.AddScaled(1, 1, 1)
	if got := l.ServerCost(0); got != 9 {
		t.Fatalf("ServerCost(0) after second holder = %v, want 9", got)
	}
	if got := l.ChargeScale(1); got != 0.25 {
		t.Fatalf("ChargeScale(1) after second holder = %v, want 0.25", got)
	}
	// Refunds: the last holder releases 0.25×cost, not the full cost.
	l.Remove(0, 1)
	if got := l.ServerCost(0); got != 9 {
		t.Fatalf("ServerCost(0) after first release = %v, want 9", got)
	}
	l.Remove(1, 1)
	if got := l.ServerCost(0); got != 8 {
		t.Fatalf("ServerCost(0) after last release = %v, want 8", got)
	}
	if got := l.ChargeScale(1); got != 1 {
		t.Fatalf("ChargeScale(1) after eviction = %v, want 1 (reset)", got)
	}
	l.Remove(0, 0)
	for i := 0; i < in.M(); i++ {
		if got := l.ServerCost(i); got != 0 {
			t.Fatalf("ServerCost(%d) after draining = %v, want 0", i, got)
		}
	}
}

// TestLedgerRebuildResetsChargeScales: Rebuild re-prices at full cost,
// so a pre-rebuild discount must not leak into post-rebuild refunds.
func TestLedgerRebuildResetsChargeScales(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	in := randomInstance(rng, 6, 3)
	l := NewLoadLedger(in)
	l.AddScaled(0, 2, 0.25)
	a := NewAssignment(in.NumUsers())
	a.Add(0, 2)
	l.Rebuild(a)
	if got := l.ChargeScale(2); got != 1 {
		t.Fatalf("ChargeScale(2) after Rebuild = %v, want 1", got)
	}
	if got, want := l.ServerCost(0), a.ServerCost(in, 0); got != want {
		t.Fatalf("ServerCost(0) after Rebuild = %v, want %v", got, want)
	}
}

// TestLedgerRebuildScaledRetainsDiscounts: RebuildScaled prices each
// in-range stream at the caller's scale — the reinstall paths pass the
// scales the previous lineup earned for retained streams — and the
// eventual Remove refunds exactly what the rebuild charged.
func TestLedgerRebuildScaledRetainsDiscounts(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	in := randomInstance(rng, 6, 3)
	l := NewLoadLedger(in)
	l.AddScaled(0, 2, 0.25)
	l.Add(1, 4)
	a := NewAssignment(in.NumUsers())
	a.Add(0, 2)
	a.Add(1, 4)
	l.RebuildScaled(a, func(s int) float64 {
		if s == 2 {
			return 0.25
		}
		return 1
	})
	if got := l.ChargeScale(2); got != 0.25 {
		t.Fatalf("ChargeScale(2) after RebuildScaled = %v, want 0.25", got)
	}
	if got := l.ChargeScale(4); got != 1 {
		t.Fatalf("ChargeScale(4) after RebuildScaled = %v, want 1", got)
	}
	// Removing the retained discounted stream refunds at its scale:
	// the ledger lands exactly on the state of the remaining lineup.
	l.Remove(0, 2)
	rest := NewAssignment(in.NumUsers())
	rest.Add(1, 4)
	for i := 0; i < in.M(); i++ {
		if got, want := l.ServerCost(i), rest.ServerCost(in, i); math.Abs(got-want) > 1e-12 {
			t.Fatalf("ServerCost(%d) after discounted refund = %v, want %v", i, got, want)
		}
	}
}

// TestLedgerRebuildScaledNilIsRebuild: a nil scaleOf is bit-identical
// to Rebuild.
func TestLedgerRebuildScaledNilIsRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	in := randomInstance(rng, 8, 2)
	a := NewAssignment(in.NumUsers())
	for u := 0; u < in.NumUsers(); u++ {
		for s := 0; s < in.NumStreams(); s++ {
			if rng.Float64() < 0.4 {
				a.Add(u, s)
			}
		}
	}
	l1, l2 := NewLoadLedger(in), NewLoadLedger(in)
	l1.Rebuild(a)
	l2.RebuildScaled(a, nil)
	for i := 0; i < in.M(); i++ {
		if l1.ServerCost(i) != l2.ServerCost(i) {
			t.Fatalf("ServerCost(%d): %v vs %v", i, l1.ServerCost(i), l2.ServerCost(i))
		}
	}
}
