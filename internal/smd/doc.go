// Package smd implements Section 2 of Patt-Shamir & Rawitz: approximation
// algorithms for the Single-Budget Multi-Client Distribution problem with
// unit skew. In this special case each stream has a single server cost
// c(S) subject to one budget B, and the only client-side constraint is a
// cap W_u on the utility counted from each user u (with unit skew the
// user's load function coincides with its utility function, so the
// utility cap IS the capacity constraint).
//
// The package provides:
//
//   - Greedy: Algorithm 1 — iteratively pick the stream with maximum cost
//     effectiveness (fractional residual utility per unit cost) and give
//     it to every unsaturated interested user. The output is
//     semi-feasible: a user's cap may be overshot by its last stream.
//   - FixedGreedy: the Theorem 2.8 construction — split the greedy
//     assignment into A1 (all but each user's last stream) and A2 (the
//     last streams), add the best single-stream assignment Amax, and
//     return the best of the three. Feasible, 3e/(e-1)-approximate, and
//     2e/(e-1)-approximate in the semi-feasible (resource augmentation)
//     model via max(Greedy, Amax) (Lemma 2.6, Corollary 2.7).
//   - PartialEnum: the Section 2.3 algorithm after Sviridenko — complete
//     every small seed set greedily and keep the best, for the sharper
//     e/(e-1) (augmented) and 2e/(e-1) (feasible) guarantees at higher
//     polynomial cost.
//
// All entry points run in the O(n^2) time the paper claims for Greedy,
// except PartialEnum which is O(n^{d+2}) for seed size d.
package smd
