package smd

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Instance is a unit-skew SMD instance: one server budget, and per-user
// utility caps as the only client-side constraint.
type Instance struct {
	// StreamNames are optional labels used in reports; may be nil.
	StreamNames []string
	// Costs[s] is the server cost c(S) of stream s.
	Costs []float64
	// Budget is the server budget B.
	Budget float64
	// Utility[u][s] is w_u(S).
	Utility [][]float64
	// Caps[u] is the utility cap W_u; math.Inf(1) leaves u uncapped.
	Caps []float64
}

// NumStreams returns |S|.
func (in *Instance) NumStreams() int { return len(in.Costs) }

// NumUsers returns |U|.
func (in *Instance) NumUsers() int { return len(in.Utility) }

// Validation errors. Use errors.Is to classify.
var (
	// ErrShape indicates inconsistent dimensions.
	ErrShape = errors.New("smd: malformed instance shape")
	// ErrNegative indicates a negative cost, utility, budget, or cap.
	ErrNegative = errors.New("smd: negative value")
	// ErrCostExceedsBudget indicates a stream with c(S) > B.
	ErrCostExceedsBudget = errors.New("smd: stream cost exceeds budget")
	// ErrUtilityExceedsCap indicates a pair with w_u(S) > W_u, which
	// violates the paper's assumption that a stream a user cannot hold
	// carries no utility. Repair with ZeroOverloaded.
	ErrUtilityExceedsCap = errors.New("smd: single-stream utility exceeds user cap")
)

// Validate checks structural well-formedness.
func (in *Instance) Validate() error {
	if math.IsNaN(in.Budget) || in.Budget < 0 {
		return fmt.Errorf("budget is %v: %w", in.Budget, ErrNegative)
	}
	if in.StreamNames != nil && len(in.StreamNames) != len(in.Costs) {
		return fmt.Errorf("%d names for %d streams: %w", len(in.StreamNames), len(in.Costs), ErrShape)
	}
	for s, c := range in.Costs {
		switch {
		case math.IsNaN(c) || math.IsInf(c, 0):
			return fmt.Errorf("stream %d cost is %v: %w", s, c, ErrNegative)
		case c < 0:
			return fmt.Errorf("stream %d cost is %v: %w", s, c, ErrNegative)
		case c > in.Budget:
			return fmt.Errorf("stream %d cost %v > budget %v: %w", s, c, in.Budget, ErrCostExceedsBudget)
		}
	}
	if len(in.Caps) != len(in.Utility) {
		return fmt.Errorf("%d caps for %d users: %w", len(in.Caps), len(in.Utility), ErrShape)
	}
	for u := range in.Utility {
		if len(in.Utility[u]) != len(in.Costs) {
			return fmt.Errorf("user %d has %d utilities, want %d: %w",
				u, len(in.Utility[u]), len(in.Costs), ErrShape)
		}
		if math.IsNaN(in.Caps[u]) || in.Caps[u] < 0 {
			return fmt.Errorf("user %d cap is %v: %w", u, in.Caps[u], ErrNegative)
		}
		for s, w := range in.Utility[u] {
			switch {
			case math.IsNaN(w) || math.IsInf(w, 0) || w < 0:
				return fmt.Errorf("user %d utility for stream %d is %v: %w", u, s, w, ErrNegative)
			case w > in.Caps[u]:
				return fmt.Errorf("user %d stream %d: utility %v > cap %v: %w",
					u, s, w, in.Caps[u], ErrUtilityExceedsCap)
			}
		}
	}
	return nil
}

// ZeroOverloaded zeroes, in place, every utility w_u(S) > W_u (the paper
// assumes such streams carry no utility for the user). It returns the
// number of zeroed entries.
func (in *Instance) ZeroOverloaded() int {
	zeroed := 0
	for u := range in.Utility {
		for s, w := range in.Utility[u] {
			if w > in.Caps[u] {
				in.Utility[u][s] = 0
				zeroed++
			}
		}
	}
	return zeroed
}

// StreamValue returns w(S) = sum_u min(W_u, w_u(S)): the utility of a
// solution that transmits only stream S.
func (in *Instance) StreamValue(s int) float64 {
	total := 0.0
	for u := range in.Utility {
		total += math.Min(in.Caps[u], in.Utility[u][s])
	}
	return total
}

// SetValue returns the submodular set-function value w(T) =
// sum_u min(W_u, sum_{S in T} w_u(S)) of providing the stream set T —
// the utility achieved by the best semi-feasible assignment with range T
// (Lemma 2.1).
func (in *Instance) SetValue(streams []int) float64 {
	total := 0.0
	for u := range in.Utility {
		sum := 0.0
		for _, s := range streams {
			sum += in.Utility[u][s]
		}
		total += math.Min(in.Caps[u], sum)
	}
	return total
}

// Assignment maps users to streams for an SMD instance.
type Assignment struct {
	sets       []map[int]struct{}
	rangeCount map[int]int
}

// NewAssignment returns an empty assignment for numUsers users.
func NewAssignment(numUsers int) *Assignment {
	sets := make([]map[int]struct{}, numUsers)
	for u := range sets {
		sets[u] = make(map[int]struct{})
	}
	return &Assignment{sets: sets, rangeCount: make(map[int]int)}
}

// Add assigns stream s to user u (idempotent).
func (a *Assignment) Add(u, s int) {
	if _, ok := a.sets[u][s]; ok {
		return
	}
	a.sets[u][s] = struct{}{}
	a.rangeCount[s]++
}

// Remove unassigns stream s from user u (idempotent).
func (a *Assignment) Remove(u, s int) {
	if _, ok := a.sets[u][s]; !ok {
		return
	}
	delete(a.sets[u], s)
	if a.rangeCount[s]--; a.rangeCount[s] == 0 {
		delete(a.rangeCount, s)
	}
}

// Has reports whether stream s is assigned to user u.
func (a *Assignment) Has(u, s int) bool {
	_, ok := a.sets[u][s]
	return ok
}

// NumUsers returns the number of users.
func (a *Assignment) NumUsers() int { return len(a.sets) }

// UserStreams returns A(u) in increasing order; the slice is the caller's.
func (a *Assignment) UserStreams(u int) []int {
	out := make([]int, 0, len(a.sets[u]))
	for s := range a.sets[u] {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// Range returns S(A) in increasing order; the slice is the caller's.
func (a *Assignment) Range() []int {
	out := make([]int, 0, len(a.rangeCount))
	for s := range a.rangeCount {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// InRange reports whether stream s is in S(A).
func (a *Assignment) InRange(s int) bool { return a.rangeCount[s] > 0 }

// Clone returns a deep copy.
func (a *Assignment) Clone() *Assignment {
	out := NewAssignment(len(a.sets))
	for u := range a.sets {
		for s := range a.sets[u] {
			out.Add(u, s)
		}
	}
	return out
}

// Cost returns c(A) = c(S(A)). Summation follows increasing stream
// index so results are bit-for-bit deterministic.
func (a *Assignment) Cost(in *Instance) float64 {
	total := 0.0
	for _, s := range a.Range() {
		total += in.Costs[s]
	}
	return total
}

// UserSum returns the uncapped per-user utility sum w_u(A). Summation
// follows increasing stream index so results are bit-for-bit
// deterministic.
func (a *Assignment) UserSum(in *Instance, u int) float64 {
	sum := 0.0
	for _, s := range a.UserStreams(u) {
		sum += in.Utility[u][s]
	}
	return sum
}

// Value returns the capped utility w(A) = sum_u min(W_u, w_u(A(u))).
// For feasible assignments this coincides with the plain sum; for
// semi-feasible assignments it is the paper's extended valuation.
func (a *Assignment) Value(in *Instance) float64 {
	total := 0.0
	for u := range a.sets {
		total += math.Min(in.Caps[u], a.UserSum(in, u))
	}
	return total
}

// capTolerance absorbs floating-point accumulation when comparing sums
// against budgets and caps.
const capTolerance = 1e-9

// CheckFeasible verifies the server budget and every user cap (recall
// that with unit skew the cap is the capacity constraint). nil means
// feasible.
func (a *Assignment) CheckFeasible(in *Instance) error {
	if cost := a.Cost(in); cost > in.Budget*(1+capTolerance)+capTolerance {
		return fmt.Errorf("smd: cost %v exceeds budget %v", cost, in.Budget)
	}
	for u := range a.sets {
		if sum := a.UserSum(in, u); sum > in.Caps[u]*(1+capTolerance)+capTolerance {
			return fmt.Errorf("smd: user %d sum %v exceeds cap %v", u, sum, in.Caps[u])
		}
	}
	return nil
}

// CheckSemiFeasible verifies the server budget and that each user
// overshoots its cap by at most one stream: removing the user's largest
// assigned stream must bring the sum back within the cap.
func (a *Assignment) CheckSemiFeasible(in *Instance) error {
	if cost := a.Cost(in); cost > in.Budget*(1+capTolerance)+capTolerance {
		return fmt.Errorf("smd: cost %v exceeds budget %v", cost, in.Budget)
	}
	for u := range a.sets {
		sum := a.UserSum(in, u)
		if sum <= in.Caps[u]*(1+capTolerance)+capTolerance {
			continue
		}
		largest := 0.0
		for s := range a.sets[u] {
			if w := in.Utility[u][s]; w > largest {
				largest = w
			}
		}
		if sum-largest > in.Caps[u]*(1+capTolerance)+capTolerance {
			return fmt.Errorf("smd: user %d oversaturated by more than one stream (sum %v, largest %v, cap %v)",
				u, sum, largest, in.Caps[u])
		}
	}
	return nil
}
