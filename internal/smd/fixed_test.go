package smd

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/exact"
	"repro/internal/generator"
)

// optimal returns the exact optimum of an SMD instance via the MMD
// branch-and-bound solver.
func optimal(t *testing.T, in *Instance) float64 {
	t.Helper()
	res, err := exact.Solve(in.ToMMD(), exact.Options{})
	if err != nil {
		t.Fatalf("exact.Solve: %v", err)
	}
	return res.Value
}

func TestFixedGreedyFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		in := randomSMDInstance(rng, 10, 4)
		res, err := FixedGreedy(in)
		if err != nil {
			t.Fatal(err)
		}
		for name, a := range map[string]*Assignment{"A1": res.A1, "A2": res.A2, "AMax": res.AMax, "Best": res.Best} {
			if err := a.CheckFeasible(in); err != nil {
				t.Fatalf("trial %d: %s infeasible: %v", trial, name, err)
			}
		}
		if res.BestValue+1e-9 < res.A1.Value(in) || res.BestValue+1e-9 < res.A2.Value(in) ||
			res.BestValue+1e-9 < res.AMax.Value(in) {
			t.Fatalf("trial %d: Best is not the max of the candidates", trial)
		}
	}
}

// TestTheorem28Ratio verifies the feasible guarantee of Theorem 2.8:
// FixedGreedy's value is at least (e-1)/(3e) of the optimum.
func TestTheorem28Ratio(t *testing.T) {
	const factor = (math.E - 1) / (3 * math.E)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 25; trial++ {
		in := randomSMDInstance(rng, 9, 4)
		res, err := FixedGreedy(in)
		if err != nil {
			t.Fatal(err)
		}
		opt := optimal(t, in)
		if res.BestValue < factor*opt-1e-9 {
			t.Fatalf("trial %d: FixedGreedy %v < %v * OPT %v", trial, res.BestValue, factor, opt)
		}
	}
}

// TestLemma26SemiRatio verifies the semi-feasible guarantee of Lemma
// 2.6: max(w(greedy), w(AMax)) >= (e-1)/(2e) * OPT.
func TestLemma26SemiRatio(t *testing.T) {
	const factor = (math.E - 1) / (2 * math.E)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		in := randomSMDInstance(rng, 9, 4)
		res, err := FixedGreedy(in)
		if err != nil {
			t.Fatal(err)
		}
		opt := optimal(t, in)
		if res.SemiBestValue < factor*opt-1e-9 {
			t.Fatalf("trial %d: semi value %v < %v * OPT %v", trial, res.SemiBestValue, factor, opt)
		}
	}
}

// TestLemma22AugmentedRatio verifies w(A_k) + residual(S_{k+1}) >=
// (1 - 1/e) * OPT (Lemma 2.2 with SF = the optimal assignment).
func TestLemma22AugmentedRatio(t *testing.T) {
	factor := 1 - 1/math.E
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 25; trial++ {
		in := randomSMDInstance(rng, 9, 4)
		res, err := Greedy(in)
		if err != nil {
			t.Fatal(err)
		}
		opt := optimal(t, in)
		if res.AugmentedValue < factor*opt-1e-9 {
			t.Fatalf("trial %d: augmented %v < %v * OPT %v", trial, res.AugmentedValue, factor, opt)
		}
	}
}

// TestBlockingFamily reproduces the Section 2.2 "hole": raw greedy is
// fooled by a tiny high-effectiveness stream, while the fixed algorithm
// recovers via AMax.
func TestBlockingFamily(t *testing.T) {
	const gap = 100.0
	min, err := generator.BlockingFamily(gap)
	if err != nil {
		t.Fatal(err)
	}
	in := FromMMD(min)
	res, err := FixedGreedy(in)
	if err != nil {
		t.Fatal(err)
	}
	// Raw greedy gets only the tiny stream's ~1 utility...
	if res.Greedy.SemiValue > gap/2 {
		t.Fatalf("raw greedy unexpectedly good: %v", res.Greedy.SemiValue)
	}
	// ...but AMax recovers the huge stream.
	if res.BestValue < gap {
		t.Fatalf("FixedGreedy %v < %v: the Section 2.2 fix failed", res.BestValue, gap)
	}
}

func TestPartialEnumAtLeastGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		in := randomSMDInstance(rng, 9, 3)
		fixed, err := FixedGreedy(in)
		if err != nil {
			t.Fatal(err)
		}
		pe, err := PartialEnum(in, 2)
		if err != nil {
			t.Fatal(err)
		}
		if pe.SemiBestValue < fixed.Greedy.SemiValue-1e-9 {
			t.Fatalf("trial %d: partial enum semi %v < greedy semi %v",
				trial, pe.SemiBestValue, fixed.Greedy.SemiValue)
		}
		if err := pe.Best.CheckFeasible(in); err != nil {
			t.Fatalf("trial %d: partial enum infeasible: %v", trial, err)
		}
	}
}

// TestTheorem29SemiRatio verifies the sharper partial-enumeration
// guarantee: the semi-feasible value is at least (1 - 1/e) * OPT
// (Theorem 2.9) with seed size 3.
func TestTheorem29SemiRatio(t *testing.T) {
	factor := 1 - 1/math.E
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 8; trial++ {
		in := randomSMDInstance(rng, 8, 3)
		pe, err := PartialEnum(in, 3)
		if err != nil {
			t.Fatal(err)
		}
		opt := optimal(t, in)
		if pe.SemiBestValue < factor*opt-1e-9 {
			t.Fatalf("trial %d: semi %v < %v * OPT %v", trial, pe.SemiBestValue, factor, opt)
		}
	}
}

func TestPartialEnumSeedZeroEqualsGreedy(t *testing.T) {
	in := randomSMDInstance(rand.New(rand.NewSource(7)), 10, 4)
	fixed, err := FixedGreedy(in)
	if err != nil {
		t.Fatal(err)
	}
	pe, err := PartialEnum(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pe.BestValue != fixed.BestValue {
		t.Fatalf("seed-0 partial enum %v != fixed greedy %v", pe.BestValue, fixed.BestValue)
	}
}

func TestPartialEnumRejectsNegativeSeed(t *testing.T) {
	in := randomSMDInstance(rand.New(rand.NewSource(8)), 4, 2)
	if _, err := PartialEnum(in, -1); err == nil {
		t.Fatal("PartialEnum accepted a negative seed size")
	}
}

func TestFixedGreedyEmptyInstance(t *testing.T) {
	res, err := FixedGreedy(&Instance{Budget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestValue != 0 {
		t.Fatalf("empty instance BestValue = %v, want 0", res.BestValue)
	}
}
