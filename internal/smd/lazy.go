package smd

import (
	"container/heap"
	"fmt"
)

// LazyGreedy is Algorithm 1 with lazy evaluation (the classic CELF
// optimization): because the utility of semi-feasible assignments is
// submodular (Lemma 2.1), a stream's fractional residual utility only
// decreases as the assignment grows, so a stale residual is a valid
// upper bound on the current one. Streams sit in a max-heap keyed by
// (possibly stale) effectiveness; only the heap top is refreshed. When
// a refreshed stream stays on top it is a true argmax — every other key
// still upper-bounds its own current effectiveness — so the selection
// sequence matches Greedy's under the same tie-breaking, and all
// Section 2 guarantees carry over unchanged.
func LazyGreedy(in *Instance) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("smd: lazy greedy: %w", err)
	}
	e := newGreedyEngine(in)
	nS := in.NumStreams()

	pq := make(lazyHeap, 0, nS)
	for s := 0; s < nS; s++ {
		if e.resid[s] > 0 {
			pq = append(pq, lazyItem{stream: s, resid: e.resid[s], cost: in.Costs[s], round: 0})
		}
	}
	heap.Init(&pq)

	round := 0
	for pq.Len() > 0 {
		top := &pq[0]
		if e.done[top.stream] {
			heap.Pop(&pq)
			continue
		}
		if top.round != round {
			// Refresh the stale key and re-heapify; whatever ends up on
			// top next iteration is examined then.
			stream := top.stream
			top.resid = e.resid[stream]
			top.round = round
			if top.resid <= 0 {
				heap.Pop(&pq)
				continue
			}
			heap.Fix(&pq, 0)
			if pq[0].stream != stream {
				continue
			}
		}
		it := heap.Pop(&pq).(lazyItem)
		s := it.stream
		if e.resid[s] <= 0 {
			continue
		}
		e.iters++
		if e.cost+in.Costs[s] <= in.Budget+capTolerance {
			e.assign(s)
			round++
		} else {
			if !e.blocked {
				e.blocked = true
				e.augmented = e.value + e.resid[s]
			}
			e.done[s] = true
		}
	}
	if !e.blocked {
		e.augmented = e.value
	}
	return &Result{
		Semi:           e.assn,
		SemiValue:      e.value,
		LastAssigned:   e.last,
		AugmentedValue: e.augmented,
		Iterations:     e.iters,
		Order:          e.order,
	}, nil
}

// lazyItem carries a possibly stale residual for one stream. cost is
// immutable and cached for the effectiveness comparison.
type lazyItem struct {
	stream int
	resid  float64
	cost   float64
	round  int
}

// lazyHeap orders by effectiveness resid/cost descending using
// cross-multiplication (zero-cost streams sort first), with Greedy's
// tie-breaks: larger residual, then smaller stream index.
type lazyHeap []lazyItem

func (h lazyHeap) Len() int { return len(h) }

func (h lazyHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	left := a.resid * b.cost
	right := b.resid * a.cost
	if left != right {
		return left > right
	}
	if a.resid != b.resid {
		return a.resid > b.resid
	}
	return a.stream < b.stream
}

func (h lazyHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *lazyHeap) Push(x any) { *h = append(*h, x.(lazyItem)) }

func (h *lazyHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
