package smd

import (
	"math"
	"math/rand"
	"testing"
)

// handInstance is worked out by hand:
//
//	streams: a (cost 1), b (cost 2), c (cost 2); budget 3
//	u0: w(a)=4, w(b)=6, w(c)=0, cap 8
//	u1: w(a)=0, w(b)=2, w(c)=5, cap 5
//
// Effectiveness round 1: a: 4/1 = 4, b: 8/2 = 4, c: 5/2 = 2.5.
// Tie between a and b broken toward larger residual -> b assigned
// (u0 and u1; value 8). Round 2: a: min(4, residual cap 2)/1 = 2,
// c: min(5, 5-2)/2 = 1.5 -> a assigned (u0 saturates; value 10). Budget
// is exhausted (3), c is dropped with residual 3: augmented value 13.
func handInstance() *Instance {
	return &Instance{
		StreamNames: []string{"a", "b", "c"},
		Costs:       []float64{1, 2, 2},
		Budget:      3,
		Utility: [][]float64{
			{4, 6, 0},
			{0, 2, 5},
		},
		Caps: []float64{8, 5},
	}
}

func TestGreedyHandInstance(t *testing.T) {
	res, err := Greedy(handInstance())
	if err != nil {
		t.Fatalf("Greedy() error: %v", err)
	}
	in := handInstance()
	if !res.Semi.Has(0, 1) || !res.Semi.Has(1, 1) {
		t.Error("stream b should go to both users first")
	}
	if !res.Semi.Has(0, 0) {
		t.Error("stream a should go to u0 second")
	}
	if res.Semi.Has(1, 2) || res.Semi.Has(0, 2) {
		t.Error("stream c does not fit the residual budget")
	}
	if got := res.SemiValue; got != 10 {
		t.Errorf("SemiValue = %v, want 10", got)
	}
	// c was dropped while it still had residual utility 3 (u1's cap
	// leaves 5-2=3), so the augmented value is 10 + 3.
	if got := res.AugmentedValue; got != 13 {
		t.Errorf("AugmentedValue = %v, want 13", got)
	}
	if err := res.Semi.CheckSemiFeasible(in); err != nil {
		t.Errorf("greedy output not semi-feasible: %v", err)
	}
}

func TestGreedySaturation(t *testing.T) {
	// One user with a small cap: greedy may overshoot it exactly once.
	in := &Instance{
		Costs:   []float64{1, 1, 1},
		Budget:  3,
		Utility: [][]float64{{4, 4, 4}},
		Caps:    []float64{6},
	}
	res, err := Greedy(in)
	if err != nil {
		t.Fatalf("Greedy() error: %v", err)
	}
	// Two streams assigned (4 + 4 = 8 > 6 saturates the user); value is
	// capped at 6; the third stream adds nothing.
	if got := res.Semi.UserSum(in, 0); got != 8 {
		t.Errorf("user sum = %v, want 8 (one overshoot)", got)
	}
	if got := res.SemiValue; got != 6 {
		t.Errorf("SemiValue = %v, want capped 6", got)
	}
	if err := res.Semi.CheckSemiFeasible(in); err != nil {
		t.Errorf("not semi-feasible: %v", err)
	}
	if err := res.Semi.CheckFeasible(in); err == nil {
		t.Error("oversaturated assignment unexpectedly feasible")
	}
	if res.LastAssigned[0] < 0 {
		t.Error("LastAssigned not recorded")
	}
}

func TestGreedyZeroCostStream(t *testing.T) {
	in := &Instance{
		Costs:   []float64{0, 5},
		Budget:  5,
		Utility: [][]float64{{1, 10}},
		Caps:    []float64{20},
	}
	res, err := Greedy(in)
	if err != nil {
		t.Fatalf("Greedy() error: %v", err)
	}
	if !res.Semi.Has(0, 0) || !res.Semi.Has(0, 1) {
		t.Errorf("both streams fit (free + budget-sized); got %v", res.Semi.Range())
	}
	if got := res.SemiValue; got != 11 {
		t.Errorf("SemiValue = %v, want 11", got)
	}
}

func TestGreedyEmptyInstance(t *testing.T) {
	res, err := Greedy(&Instance{Budget: 1})
	if err != nil {
		t.Fatalf("Greedy() on empty instance: %v", err)
	}
	if res.SemiValue != 0 || res.AugmentedValue != 0 {
		t.Errorf("empty instance value = %v/%v, want 0/0", res.SemiValue, res.AugmentedValue)
	}
}

func TestGreedyRejectsInvalid(t *testing.T) {
	in := handInstance()
	in.Costs[0] = -1
	if _, err := Greedy(in); err == nil {
		t.Fatal("Greedy accepted a negative cost")
	}
}

func TestGreedyDeterministic(t *testing.T) {
	in := randomSMDInstance(rand.New(rand.NewSource(42)), 12, 5)
	r1, err := Greedy(in)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Greedy(in)
	if err != nil {
		t.Fatal(err)
	}
	if r1.SemiValue != r2.SemiValue {
		t.Fatalf("greedy not deterministic: %v vs %v", r1.SemiValue, r2.SemiValue)
	}
	for u := 0; u < in.NumUsers(); u++ {
		s1, s2 := r1.Semi.UserStreams(u), r2.Semi.UserStreams(u)
		if len(s1) != len(s2) {
			t.Fatalf("user %d streams differ", u)
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("user %d streams differ", u)
			}
		}
	}
}

func TestGreedyBudgetNeverViolated(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		in := randomSMDInstance(rng, 10, 4)
		res, err := Greedy(in)
		if err != nil {
			t.Fatal(err)
		}
		if cost := res.Semi.Cost(in); cost > in.Budget+1e-9 {
			t.Fatalf("trial %d: cost %v exceeds budget %v", trial, cost, in.Budget)
		}
		if err := res.Semi.CheckSemiFeasible(in); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// randomSMDInstance builds a random unit-skew SMD instance for tests.
func randomSMDInstance(r *rand.Rand, nStreams, nUsers int) *Instance {
	in := &Instance{
		Costs:   make([]float64, nStreams),
		Utility: make([][]float64, nUsers),
		Caps:    make([]float64, nUsers),
	}
	total := 0.0
	for s := range in.Costs {
		in.Costs[s] = 0.5 + 1.5*r.Float64()
		total += in.Costs[s]
	}
	in.Budget = math.Max(0.35*total, maxFloat(in.Costs))
	for u := range in.Utility {
		row := make([]float64, nStreams)
		sum := 0.0
		maxW := 0.0
		for s := range row {
			if r.Float64() < 0.6 {
				row[s] = 1 + 9*r.Float64()
				sum += row[s]
				if row[s] > maxW {
					maxW = row[s]
				}
			}
		}
		in.Utility[u] = row
		in.Caps[u] = math.Max(0.5*sum, maxW)
		if sum == 0 {
			in.Caps[u] = 1
		}
	}
	return in
}

func maxFloat(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
