package smd

import (
	"math"

	"repro/internal/mmd"
)

// ToMMD converts the unit-skew SMD instance into an equivalent MMD
// instance: one server budget and, per user, a single capacity measure
// whose load function is the utility function and whose cap is W_u.
// Feasible assignments and their values coincide.
func (in *Instance) ToMMD() *mmd.Instance {
	out := &mmd.Instance{
		Streams: make([]mmd.Stream, in.NumStreams()),
		Users:   make([]mmd.User, in.NumUsers()),
		Budgets: []float64{in.Budget},
	}
	for s := range out.Streams {
		name := ""
		if in.StreamNames != nil {
			name = in.StreamNames[s]
		}
		out.Streams[s] = mmd.Stream{Name: name, Costs: []float64{in.Costs[s]}}
	}
	for u := range out.Users {
		out.Users[u] = mmd.User{
			Utility:    append([]float64(nil), in.Utility[u]...),
			Loads:      [][]float64{append([]float64(nil), in.Utility[u]...)},
			Capacities: []float64{in.Caps[u]},
		}
	}
	return out
}

// FromMMD converts a single-budget MMD instance with unit-skew users
// (each user's single load row proportional to its utility) into an SMD
// instance, using the capacity scaled into utility units as the cap. It
// is the inverse of ToMMD up to load scaling. Users with no capacity
// measure get an infinite cap.
//
// The caller is responsible for only passing unit-skew instances;
// non-proportional loads are not detected here (use mmd.LocalSkew).
func FromMMD(in *mmd.Instance) *Instance {
	out := &Instance{
		StreamNames: make([]string, in.NumStreams()),
		Costs:       make([]float64, in.NumStreams()),
		Budget:      in.Budgets[0],
		Utility:     make([][]float64, in.NumUsers()),
		Caps:        make([]float64, in.NumUsers()),
	}
	for s := range in.Streams {
		out.StreamNames[s] = in.Streams[s].Name
		out.Costs[s] = in.Streams[s].Costs[0]
	}
	for u := range in.Users {
		usr := &in.Users[u]
		out.Utility[u] = append([]float64(nil), usr.Utility...)
		if len(usr.Capacities) == 0 {
			out.Caps[u] = math.Inf(1)
			continue
		}
		// Scale the capacity into utility units using the (constant)
		// utility-per-load ratio of the user's supported streams.
		ratio := 1.0
		for s, w := range usr.Utility {
			if w > 0 && usr.Loads[0][s] > 0 {
				ratio = w / usr.Loads[0][s]
				break
			}
		}
		out.Caps[u] = usr.Capacities[0] * ratio
	}
	return out
}
