package smd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestCorollary27SemiFeasibleIsAugmentedFeasible: greedy's semi-feasible
// output is strictly feasible once each user's capacity grows by its
// largest single-stream load — exactly Corollary 2.7's augmentation.
func TestCorollary27SemiFeasibleIsAugmentedFeasible(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(151))}
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomSMDInstance(r, 2+r.Intn(12), 1+r.Intn(5))
		res, err := Greedy(in)
		if err != nil {
			return false
		}
		aug := in.AugmentedInstance()
		return res.Semi.CheckFeasible(aug) == nil
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestAugmentedInstanceShape(t *testing.T) {
	in := handInstance()
	aug := in.AugmentedInstance()
	// u0: cap 8 + max utility 6 = 14; u1: cap 5 + max 5 = 10.
	if aug.Caps[0] != 14 || aug.Caps[1] != 10 {
		t.Fatalf("augmented caps = %v, want [14 10]", aug.Caps)
	}
	// Original untouched, deep copy confirmed.
	aug.Utility[0][0] = 99
	aug.Costs[0] = 99
	if in.Utility[0][0] == 99 || in.Costs[0] == 99 {
		t.Fatal("AugmentedInstance shares memory with the original")
	}
	if in.Caps[0] != 8 {
		t.Fatal("original caps mutated")
	}
}

func TestAugmentedInstanceInfiniteCap(t *testing.T) {
	in := handInstance()
	in.Caps[0] = math.Inf(1)
	aug := in.AugmentedInstance()
	if !math.IsInf(aug.Caps[0], 1) {
		t.Fatalf("infinite cap not preserved: %v", aug.Caps[0])
	}
}

// TestTheorem29AugmentedValue: partial enumeration's semi-feasible
// solution, viewed in the augmented model, achieves (1-1/e) of the
// ORIGINAL optimum (Theorem 2.9).
func TestTheorem29AugmentedValue(t *testing.T) {
	factor := 1 - 1/math.E
	rng := rand.New(rand.NewSource(152))
	for trial := 0; trial < 6; trial++ {
		in := randomSMDInstance(rng, 8, 3)
		pe, err := PartialEnum(in, 3)
		if err != nil {
			t.Fatal(err)
		}
		opt := optimal(t, in)
		aug := in.AugmentedInstance()
		if err := pe.Greedy.Semi.CheckFeasible(aug); err != nil {
			t.Fatalf("trial %d: winning seed run not augmented-feasible: %v", trial, err)
		}
		if pe.SemiBestValue < factor*opt-1e-9 {
			t.Fatalf("trial %d: augmented value %v < %v * OPT %v", trial, pe.SemiBestValue, factor, opt)
		}
	}
}
